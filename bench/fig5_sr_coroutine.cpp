// Fig. 5 reproduction: senders & receivers vs future + coroutine on RISC-V.
//
// The paper could only run these two C++20-based implementations on the
// RISC-V board (the Intel/AMD systems lacked a C++20 compiler), so Fig. 5
// shows the U74-MC alone, 1..4 cores. The paper found the S&R variant
// slightly faster than the coroutine variant.

#include <iostream>

#include "bench/fig4_maclaurin.hpp"

int main() {
  bench_common::banner("Fig 5",
                       "senders&receivers vs future+coroutine on RISC-V");

  const auto sr =
      fig4::run_and_price(&rveval::bench::run_sender_receiver, 4'000'000);
  const auto coro =
      fig4::run_and_price(&rveval::bench::run_coroutine, 4'000'000);
  // Table-2 order: index 3 = RISC-V U74-MC.
  const auto& sr_rv = sr[3];
  const auto& coro_rv = coro[3];

  rveval::report::Table t("Fig 5: RISC-V U74-MC, GFLOP/s vs cores");
  t.headers({"cores", "senders&receivers", "future+coroutine"});
  for (std::size_t i = 0; i < sr_rv.cores.size(); ++i) {
    t.row({std::to_string(sr_rv.cores[i]),
           rveval::report::Table::num(sr_rv.gflops[i], 4),
           rveval::report::Table::num(coro_rv.gflops[i], 4)});
  }
  t.print(std::cout);

  std::cout << "shape check: S&R >= coroutine at 4 cores: "
            << (sr_rv.gflops[3] >= coro_rv.gflops[3] * 0.98 ? "yes" : "NO")
            << "  (paper: S&R slightly better)\n";
  return 0;
}
