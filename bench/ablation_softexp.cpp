// Ablation A2 (paper §8): software vs hardware exponentiation.
//
// "Exponentiation in RISC-V is performed in software ... Adding hardware
// support for exponents can reduce the number of floating point operations
// from approximately ceil((2*e)+3) down to 4."
// This binary shows the FLOP-count model, the measured host cost of
// std::pow relative to a multiply, and the projected effect of a hardware
// exponent unit on the Maclaurin benchmark for each architecture.

#include <chrono>
#include <cmath>
#include <iostream>

#include "core/arch/cpu_model.hpp"
#include "core/perf/flops.hpp"
#include "core/report/table.hpp"

namespace {

/// Average ns per call of f over n iterations (keeps a live dependency).
template <typename F>
double measure_ns(F&& f, int n) {
  volatile double sink = 1.0000001;
  double x = static_cast<double>(sink);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    x = f(x);
  }
  const auto t1 = std::chrono::steady_clock::now();
  sink = x;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / n;
}

}  // namespace

int main() {
  std::cout << "### Ablation A2: software vs hardware exponentiation\n\n";

  rveval::report::Table model("FLOP model per Maclaurin term");
  model.headers({"path", "pow flops", "term flops", "total (n=1e9)"});
  model.row({"software pow (measured libm)",
             rveval::report::Table::num(rveval::perf::software_pow_flops, 0),
             rveval::report::Table::num(rveval::perf::term_flops_software, 0),
             rveval::report::Table::num(
                 rveval::perf::maclaurin_flops(1'000'000'000ull), 0)});
  model.row({"hardware exponent unit (paper: 4)",
             rveval::report::Table::num(rveval::perf::hardware_pow_flops, 0),
             rveval::report::Table::num(rveval::perf::term_flops_hardware, 0),
             rveval::report::Table::num(
                 rveval::perf::maclaurin_flops_hardware_exp(1'000'000'000ull),
                 0)});
  model.print(std::cout);

  // Host measurement: pow vs multiply cost ratio.
  const int n = 2'000'000;
  const double pow_ns =
      measure_ns([](double x) { return std::pow(x, 1.0000001); }, n);
  const double mul_ns =
      measure_ns([](double x) { return x * 1.0000000001; }, n);
  rveval::report::Table host("host measurement (this machine)");
  host.headers({"operation", "ns/op", "ratio vs multiply"});
  host.row({"std::pow", rveval::report::Table::num(pow_ns, 2),
            rveval::report::Table::num(pow_ns / mul_ns, 1)});
  host.row({"multiply", rveval::report::Table::num(mul_ns, 2), "1.0"});
  host.print(std::cout);

  // Projection: a hardware exponent unit shrinks per-term work by the flop
  // ratio; the benchmark run time scales with it on every architecture.
  rveval::report::Table proj(
      "projected Maclaurin speed-up with a hardware exponent unit");
  proj.headers({"CPU", "speed-up"});
  const double ratio = rveval::perf::term_flops_software /
                       rveval::perf::term_flops_hardware;
  for (const auto& cpu : rveval::arch::table2_cpus()) {
    proj.row({cpu.name, rveval::report::Table::num(ratio, 1) + "x"});
  }
  proj.print(std::cout);

  std::cout << "paper form ceil(2e)+3 at e = Euler's number: "
            << rveval::perf::softexp_flops_estimate(2.718281828) << " flops\n";
  return 0;
}
