#pragma once

/// \file fig4_maclaurin.hpp
/// Shared machinery for Figs. 4a/4b/5/6a/6b: run one Maclaurin-benchmark
/// variant on the host, capture its task trace, and price it per
/// architecture and core count — reproducing the paper's node-level
/// scaling series.

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/rveval.hpp"

namespace fig4 {

using Runner =
    rveval::bench::MaclaurinResult (*)(const rveval::bench::MaclaurinConfig&);

struct Series {
  std::string cpu;
  std::vector<unsigned> cores;
  std::vector<double> gflops;  ///< measured-rate series (Fig. 4 y-axis)
  std::vector<double> normalized;  ///< Eq. 3 series (Fig. 6 y-axis)
};

/// Execute the variant once (real code, host), then price the trace on
/// every Table-2 CPU for 1..min(10, cores) cores — the paper's "capped at
/// ten cores" sweep. The executed term count is host-sized; rates are
/// per-term and carry over to the paper's n = 1e9 runs (constant work per
/// term).
inline std::vector<Series> run_and_price(Runner runner,
                                         std::uint64_t executed_terms) {
  rveval::bench::MaclaurinConfig cfg;
  cfg.terms = executed_terms;
  cfg.tasks = 40;  // 4 tasks per core at the 10-core cap

  double sum = 0.0;
  const auto phases = bench_common::capture_trace(4, [&](auto& trace) {
    trace.begin_phase("maclaurin");
    sum = runner(cfg).sum;
  });
  const double err = std::abs(sum - rveval::bench::reference(cfg.x));
  if (err > 1e-10) {
    std::cerr << "WARNING: series sum off by " << err << "\n";
  }

  const double executed_flops =
      rveval::perf::maclaurin_flops(executed_terms);
  std::vector<Series> out;
  for (const auto& cpu : rveval::arch::table2_cpus()) {
    Series s;
    s.cpu = cpu.name;
    rveval::sim::CoreSimulator sim(cpu);
    const unsigned max_cores = std::min(10u, cpu.cores);
    for (unsigned c = 1; c <= max_cores; ++c) {
      rveval::sim::SimOptions opt;
      opt.cores = c;
      const double seconds = sim.total_seconds(phases, opt);
      s.cores.push_back(c);
      s.gflops.push_back(bench_common::gflops(executed_flops, seconds));
      s.normalized.push_back(rveval::perf::normalized_performance(
          executed_flops / seconds, cpu.peak_gflops(c)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Print the series as the figure's data table.
inline void print_series(const std::string& title,
                         const std::vector<Series>& series,
                         bool normalized) {
  rveval::report::Table t(title);
  t.headers({"CPU", "cores", normalized ? "Perf_norm [-]" : "GFLOP/s"});
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.cores.size(); ++i) {
      t.row({s.cpu, std::to_string(s.cores[i]),
             normalized ? rveval::report::Table::sci(s.normalized[i], 3)
                        : rveval::report::Table::num(s.gflops[i], 3)});
    }
  }
  t.print(std::cout);
}

}  // namespace fig4
