// Fig. 4b reproduction: FLOP/s of the Maclaurin series implemented with the
// parallel algorithm (hpx::for_each with the par execution policy),
// node-level scaling on all four Table-2 architectures.

#include <iostream>

#include "bench/fig4_maclaurin.hpp"

int main() {
  bench_common::banner(
      "Fig 4b", "Maclaurin series via parallel algorithm (for_each, par)");
  const auto series =
      fig4::run_and_price(&rveval::bench::run_parallel_algorithm, 4'000'000);
  fig4::print_series("Fig 4b: parallel algorithm (hpx::for_each, par)",
                     series, /*normalized=*/false);

  const auto& amd = series[1];
  const auto& intel = series[2];
  std::cout << "shape check: AMD highest, Intel second at 4 cores: "
            << (amd.gflops[3] > intel.gflops[3] ? "yes" : "NO") << "\n";
  return 0;
}
