// Ablation A3 (paper §3.2/§6.2.1): execution-space sweep for one fixed
// kernel workload.
//
// The paper's reasoning: with one kernel per sub-grid, concurrent Serial
// kernels already use all cores; the HPX space (splitting each kernel into
// tasks) only pays off when there are too few concurrent kernels to fill
// the machine. This ablation runs the same cell-update work through every
// minikokkos space — Serial, Threads (the conflicting-pool anti-pattern),
// Hpx, and the modelled Device streams — in both shapes the paper cares
// about: many concurrent small kernels vs one big fused kernel.
//
// The Device rows add the axis DESIGN.md §9 models: device kernels are
// *priced*, not timed, so their wall column is just dispatch cost and the
// story moves to the modelled makespan/energy columns — and to how the
// makespan shrinks when launches spread across streams.
//
// Gate (exercised by the bench_exec_space_smoke ctest entry): an
// async_deep_copy must overlap host compute on the modelled timeline. The
// copy's modelled [begin, end] and a host compute's wall [begin, end] are
// laid on the shared trace clock and must intersect; exit 1 if not.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/report/bench_report.hpp"
#include "minihpx/apex/task_trace.hpp"
#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"
#include "minikokkos/minikokkos.hpp"

namespace {

using mkk::device::Device;
using mkk::device::OpRecord;
using rveval::report::Table;

struct Shape {
  std::size_t kernels = 32;     ///< concurrent launches ("sub-grids")
  std::size_t cells = 4096;     ///< cells per kernel
  double device_flops = 3.0e8;  ///< modelled work hint per device launch
  int reps = 3;                 ///< wall-time repetitions (best-of)
  [[nodiscard]] std::size_t total_cells() const { return kernels * cells; }
};

// The per-cell update — the same body across every space, so the sweep
// isolates dispatch cost. Pure assignment: idempotent under device replay.
double cell_work(std::size_t i) {
  return std::sqrt(static_cast<double>(i) + 1.5) * 1.0000001;
}

double wall_seconds(const std::function<void()>& body, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Modelled makespan of everything currently on the device timeline.
double device_makespan() {
  const auto ops = Device::instance().timeline();
  if (ops.empty()) {
    return 0.0;
  }
  double lo = 1e300;
  double hi = 0.0;
  for (const auto& op : ops) {
    lo = std::min(lo, op.model_begin);
    hi = std::max(hi, op.model_end);
  }
  return hi - lo;
}

struct SpaceRow {
  std::string config;
  std::size_t launches = 0;
  double wall_s = 0.0;
  double model_s = -1.0;   ///< < 0: host space, no modelled clock
  double energy_j = -1.0;  ///< < 0: host space
};

}  // namespace

int main(int argc, char** argv) {
  bench_common::banner(
      "Ablation A3",
      "execution spaces: Serial vs Threads vs Hpx vs modelled Device");

  std::vector<std::string> args(argv + 1, argv + argc);
  const auto io =
      bench_common::parse_io(args, "BENCH_ablation_exec_space.json");
  Shape shape;
  for (const auto& a : args) {
    if (a == "--quick") {
      shape.kernels = 8;
      shape.cells = 1024;
      shape.reps = 1;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return 2;
    }
  }

  rveval::report::BenchReport report(
      "ablation_exec_space",
      "Ablation A3 — execution spaces and modelled device streams");
  std::vector<double> out(shape.total_cells(), 0.0);
  auto body_for = [&out, &shape](std::size_t k) {
    const std::size_t base = k * shape.cells;
    return [&out, base](std::size_t i) { out[base + i] = cell_work(i); };
  };

  // ------------------------------------------------ part 1: space sweep
  std::vector<SpaceRow> rows;

  {  // Host spaces need the ambient runtime (Hpx space, concurrent tasks).
    mhpx::Runtime rt{{4, 256 * 1024}};

    rows.push_back({"Serial, one big kernel", 1,
                    wall_seconds(
                        [&] {
                          mkk::parallel_for(
                              mkk::RangePolicy<mkk::Serial>(
                                  mkk::Serial{}, 0, shape.total_cells()),
                              [&out](std::size_t i) { out[i] = cell_work(i); });
                        },
                        shape.reps)});

    rows.push_back({"Serial kernels, concurrent HPX tasks", shape.kernels,
                    wall_seconds(
                        [&] {
                          std::vector<mhpx::future<void>> futs;
                          futs.reserve(shape.kernels);
                          for (std::size_t k = 0; k < shape.kernels; ++k) {
                            futs.push_back(mkk::async_parallel_for(
                                mkk::RangePolicy<mkk::Serial>(
                                    mkk::Serial{}, 0, shape.cells),
                                body_for(k)));
                          }
                          for (auto& f : futs) {
                            f.get();
                          }
                        },
                        shape.reps)});

    rows.push_back({"Threads space (conflicting pool), per kernel",
                    shape.kernels,
                    wall_seconds(
                        [&] {
                          for (std::size_t k = 0; k < shape.kernels; ++k) {
                            mkk::parallel_for(
                                mkk::RangePolicy<mkk::Threads>(
                                    mkk::Threads{2}, 0, shape.cells),
                                body_for(k));
                          }
                        },
                        shape.reps)});

    rows.push_back({"Hpx space, one big kernel", 1,
                    wall_seconds(
                        [&] {
                          mkk::async_parallel_for(
                              mkk::RangePolicy<mkk::Hpx>(
                                  mkk::Hpx{16}, 0, shape.total_cells()),
                              [&out](std::size_t i) { out[i] = cell_work(i); })
                              .get();
                        },
                        shape.reps)});

    rows.push_back({"Hpx space, concurrent kernels", shape.kernels,
                    wall_seconds(
                        [&] {
                          std::vector<mhpx::future<void>> futs;
                          futs.reserve(shape.kernels);
                          for (std::size_t k = 0; k < shape.kernels; ++k) {
                            futs.push_back(mkk::async_parallel_for(
                                mkk::RangePolicy<mkk::Hpx>(mkk::Hpx{4}, 0,
                                                           shape.cells),
                                body_for(k)));
                          }
                          for (auto& f : futs) {
                            f.get();
                          }
                        },
                        shape.reps)});
  }

  // Device rows run without an ambient runtime: streams execute inline at
  // enqueue, so the wall column is pure dispatch cost and the modelled
  // columns carry the accelerator story. One rep — the modelled clock is
  // deterministic, repetition adds nothing.
  auto run_device = [&](const std::string& label, unsigned streams_used,
                        std::size_t launches) {
    auto& dev = Device::instance();
    dev.reset();
    const double wall = wall_seconds(
        [&] {
          for (std::size_t k = 0; k < launches; ++k) {
            const mkk::DeviceExec space{
                static_cast<unsigned>(k % streams_used), shape.device_flops,
                0.0, "ablation.cell_update"};
            mkk::parallel_for(
                mkk::RangePolicy<mkk::DeviceExec>(space, 0, shape.cells),
                body_for(k % shape.kernels));
          }
          dev.fence();
        },
        1);
    rows.push_back({label, launches, wall, device_makespan(),
                    dev.totals().energy_joules});
  };
  run_device("Device, one big kernel", 1, 1);
  run_device("Device, concurrent kernels on 4 streams", 4, shape.kernels);

  Table sweep("A3 — same workload through every execution space (" +
              std::to_string(shape.kernels) + " kernels x " +
              std::to_string(shape.cells) + " cells)");
  sweep.headers(
      {"configuration", "launches", "wall [ms]", "model [ms]", "energy [mJ]"});
  for (const auto& r : rows) {
    sweep.row({r.config, std::to_string(r.launches),
               Table::num(r.wall_s * 1e3),
               r.model_s < 0.0 ? "-" : Table::num(r.model_s * 1e3),
               r.energy_j < 0.0 ? "-" : Table::num(r.energy_j * 1e3)});
    if (r.config == "Hpx space, concurrent kernels") {
      report.metric("hpx_concurrent_wall_ms", r.wall_s * 1e3);
    } else if (r.config == "Serial, one big kernel") {
      report.metric("serial_one_big_wall_ms", r.wall_s * 1e3);
    }
  }
  sweep.print(std::cout);
  report.add_table(sweep);

  // ------------------------------------- part 2: device stream scaling
  // The same launches spread over more streams: modelled busy time is
  // invariant, the makespan shrinks — the cross-stream concurrency the
  // FIFO/event machinery exists to preserve.
  Table scaling("A3 — device stream scaling (" +
                std::to_string(shape.kernels) + " launches)");
  scaling.headers(
      {"streams", "busy [ms]", "makespan [ms]", "speedup", "energy [mJ]"});
  double makespan1 = 0.0;
  double makespan_wide = 0.0;
  const unsigned max_streams = Device::instance().num_streams();
  for (unsigned s = 1; s <= max_streams; s *= 2) {
    auto& dev = Device::instance();
    dev.reset();
    for (std::size_t k = 0; k < shape.kernels; ++k) {
      const mkk::DeviceExec space{static_cast<unsigned>(k % s),
                                  shape.device_flops, 0.0,
                                  "ablation.cell_update"};
      mkk::parallel_for(
          mkk::RangePolicy<mkk::DeviceExec>(space, 0, shape.cells),
          body_for(k % shape.kernels));
    }
    dev.fence();
    const double makespan = device_makespan();
    if (s == 1) {
      makespan1 = makespan;
    }
    makespan_wide = makespan;
    scaling.row({std::to_string(s),
                 Table::num(dev.totals().kernel_seconds * 1e3),
                 Table::num(makespan * 1e3),
                 Table::num(makespan1 / makespan, 2),
                 Table::num(dev.totals().energy_joules * 1e3)});
  }
  std::cout << "\n";
  scaling.print(std::cout);
  report.metric("device_stream_speedup", makespan1 / makespan_wide);
  report.add_table(scaling);

  // -------------------------------------- part 3: async-copy overlap gate
  // Enqueue one large h2d transfer, then do host compute while the copy is
  // in flight on the modelled link. Under an ambient runtime the copy body
  // runs on a worker, so its modelled interval starts while the host loop
  // is running; both intervals sit on the shared trace clock and must
  // intersect, or async mirroring buys nothing.
  auto& dev = Device::instance();
  dev.reset();
  constexpr std::size_t copy_n = std::size_t{2} << 20;  // 16 MiB of doubles
  mkk::View<double, 1> host_buf("overlap.src", copy_n);
  host_buf.fill(1.25);
  auto dev_buf = mkk::create_mirror_view(mkk::DeviceSpace{}, host_buf);

  double host_begin = 0.0;
  double host_end = 0.0;
  double acc = 0.0;
  {
    mhpx::Runtime rt{{2, 256 * 1024}};
    auto copy_done =
        mkk::async_deep_copy(mkk::DeviceExec{0}, dev_buf, host_buf);
    host_begin = mhpx::apex::trace::now_seconds();
    // Keep the host window tens of milliseconds even in --quick mode, so
    // worker pickup latency under load cannot push the copy past it.
    const std::size_t host_iters =
        std::max(shape.total_cells() * 64, std::size_t{4} << 20);
    for (std::size_t i = 0; i < host_iters; ++i) {
      acc += cell_work(i & 0xffff);
    }
    host_end = mhpx::apex::trace::now_seconds();
    copy_done.get();
    dev.fence();
  }
  if (acc < 0.0) {  // keep the compute loop observable
    std::cout << acc;
  }

  double copy_begin = 0.0;
  double copy_end = 0.0;
  for (const auto& op : dev.timeline()) {
    if (op.kind == OpRecord::Kind::copy_h2d) {
      copy_begin = op.model_begin;
      copy_end = op.model_end;
    }
  }
  const double copy_ms = (copy_end - copy_begin) * 1e3;
  const double host_ms = (host_end - host_begin) * 1e3;
  const double overlap_s =
      std::min(copy_end, host_end) - std::max(copy_begin, host_begin);
  const double overlap_ms = std::max(0.0, overlap_s) * 1e3;
  const bool gate_ok = overlap_s > 0.0;

  Table overlap("A3 — async deep_copy vs host compute (shared trace clock)");
  overlap.headers({"interval", "begin [ms]", "end [ms]", "length [ms]"});
  overlap.row({"modelled h2d copy (16 MiB)", Table::num(copy_begin * 1e3),
               Table::num(copy_end * 1e3), Table::num(copy_ms)});
  overlap.row({"host compute (wall)", Table::num(host_begin * 1e3),
               Table::num(host_end * 1e3), Table::num(host_ms)});
  std::cout << "\n";
  overlap.print(std::cout);
  std::cout << "\noverlap: " << Table::num(overlap_ms) << " ms ("
            << (gate_ok ? "PASS" : "FAIL")
            << ": async copy must overlap host compute)\n";

  report.metric("copy_model_ms", copy_ms);
  report.metric("host_compute_ms", host_ms);
  report.metric("overlap_ms", overlap_ms);
  report.metric("overlap_gate", gate_ok ? "pass" : "fail");
  report.add_table(overlap);
  report.note(
      "Device rows are priced on the modelled V100-class accelerator "
      "(DESIGN.md §9); host rows are wall clocks on the build host.");
  report.note(
      "Gate: the async h2d copy's modelled interval must intersect the "
      "host compute's wall interval on the shared trace clock.");

  bench_common::finish_io(io, report);
  dev.reset();
  return gate_ok ? 0 : 1;
}
