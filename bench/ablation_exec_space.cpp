// Ablation A3 (paper §3.2/§6.2.1): Kokkos Serial vs HPX execution space.
//
// The paper's reasoning: with one kernel per sub-grid, concurrent Serial
// kernels already use all cores; the HPX space (splitting each kernel into
// tasks) only pays off when there are too few concurrent kernels to fill
// the machine. This microbenchmark runs the same total work as
//   (a) many concurrent Serial kernels,
//   (b) many concurrent HPX-space kernels (extra task overhead),
//   (c) one big Serial kernel (single core),
//   (d) one big HPX-space kernel (intra-kernel parallelism).

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"
#include "minikokkos/minikokkos.hpp"

namespace {

constexpr std::size_t kCellsPerKernel = 4096;
constexpr int kKernels = 32;

double cell_work(std::size_t i) {
  return std::sqrt(static_cast<double>(i) + 1.5) * 1.0000001;
}

template <typename Space>
void one_kernel(Space space, std::vector<double>& out, std::size_t n) {
  mkk::parallel_for(mkk::RangePolicy<Space>(space, 0, n),
                    [&](std::size_t i) { out[i] = cell_work(i); });
}

void BM_ManyConcurrentSerialKernels(benchmark::State& state) {
  mhpx::Runtime rt{{4, 128 * 1024}};
  std::vector<std::vector<double>> outs(
      kKernels, std::vector<double>(kCellsPerKernel));
  for (auto _ : state) {
    std::vector<mhpx::future<void>> futs;
    futs.reserve(kKernels);
    for (int k = 0; k < kKernels; ++k) {
      futs.push_back(mkk::async_parallel_for(
          mkk::RangePolicy<mkk::Serial>(0, kCellsPerKernel),
          [&outs, k](std::size_t i) { outs[k][i] = cell_work(i); }));
    }
    for (auto& f : futs) {
      f.get();
    }
  }
  state.SetLabel("one task per kernel; cores fill via concurrency");
}
BENCHMARK(BM_ManyConcurrentSerialKernels)->UseRealTime();

void BM_ManyConcurrentHpxKernels(benchmark::State& state) {
  mhpx::Runtime rt{{4, 128 * 1024}};
  std::vector<std::vector<double>> outs(
      kKernels, std::vector<double>(kCellsPerKernel));
  for (auto _ : state) {
    std::vector<mhpx::future<void>> futs;
    futs.reserve(kKernels);
    for (int k = 0; k < kKernels; ++k) {
      futs.push_back(mkk::async_parallel_for(
          mkk::RangePolicy<mkk::Hpx>(mkk::Hpx{4}, 0, kCellsPerKernel),
          [&outs, k](std::size_t i) { outs[k][i] = cell_work(i); }));
    }
    for (auto& f : futs) {
      f.get();
    }
  }
  state.SetLabel("each kernel split into HPX tasks (extra overhead)");
}
BENCHMARK(BM_ManyConcurrentHpxKernels)->UseRealTime();

void BM_OneBigSerialKernel(benchmark::State& state) {
  mhpx::Runtime rt{{4, 128 * 1024}};
  std::vector<double> out(kCellsPerKernel * kKernels);
  for (auto _ : state) {
    one_kernel(mkk::Serial{}, out, out.size());
  }
  state.SetLabel("single kernel, single core (no concurrency to exploit)");
}
BENCHMARK(BM_OneBigSerialKernel)->UseRealTime();

void BM_OneBigHpxKernel(benchmark::State& state) {
  mhpx::Runtime rt{{4, 128 * 1024}};
  std::vector<double> out(kCellsPerKernel * kKernels);
  for (auto _ : state) {
    one_kernel(mkk::Hpx{16}, out, out.size());
  }
  state.SetLabel("single kernel split across workers (HPX space pays off)");
}
BENCHMARK(BM_OneBigHpxKernel)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
