// Fig. 4a reproduction: FLOP/s of the Maclaurin ln(1+x) series implemented
// with asynchronous programming (hpx::async + hpx::future analogues),
// node-level scaling from 1 core up to 10 (4 on the 4-core parts), on all
// four Table-2 architectures.

#include <iostream>

#include "bench/fig4_maclaurin.hpp"

int main() {
  bench_common::banner(
      "Fig 4a", "Maclaurin series via async + futures, FLOP/s vs cores");
  const auto series =
      fig4::run_and_price(&rveval::bench::run_async, 4'000'000);
  fig4::print_series("Fig 4a: asynchronous programming (hpx::async)", series,
                     /*normalized=*/false);

  // The paper's qualitative findings, re-derived from the rows above.
  const auto& amd = series[1];
  const auto& intel = series[2];
  const auto& a64fx = series[0];
  const auto& riscv = series[3];
  const double ratio = a64fx.gflops[3] / riscv.gflops[3];  // at 4 cores
  std::cout << "shape checks: AMD > Intel at 4 cores: "
            << (amd.gflops[3] > intel.gflops[3] ? "yes" : "NO") << "\n"
            << "  A64FX / RISC-V at 4 cores: " << ratio
            << "x  (paper: ~5x)\n";
  return 0;
}
