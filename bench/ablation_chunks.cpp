// Ablation: task granularity — the knob §3.2 highlights for the Kokkos HPX
// execution space ("fine-grained control regarding the number of tasks that
// are required for each kernel").
//
// The same Maclaurin workload is split into 1..4096 chunk tasks and priced
// on the U74-MC at 4 cores: too few tasks starve cores (Amdahl), too many
// drown in per-task spawn overhead. The sweet spot — a small multiple of
// the core count — is why minihpx (like HPX) defaults to 4 x workers.

#include <iostream>

#include "bench/common.hpp"
#include "core/rveval.hpp"

int main() {
  bench_common::banner("Ablation chunks",
                       "task-granularity sweep (Kokkos-HPX space knob)");

  const auto cpu = rveval::arch::u74_mc();
  rveval::sim::CoreSimulator sim(cpu);

  rveval::report::Table t(
      "Maclaurin (4e6 terms) on the U74-MC, 4 cores, by task count");
  t.headers({"tasks", "priced time [s]", "efficiency vs best"});

  std::vector<std::pair<unsigned, double>> results;
  for (const unsigned tasks : {1u, 2u, 4u, 8u, 16u, 64u, 256u, 1024u, 4096u}) {
    rveval::bench::MaclaurinConfig cfg;
    cfg.terms = 4'000'000;
    cfg.tasks = tasks;
    const auto phases = bench_common::capture_trace(4, [&](auto& trace) {
      trace.begin_phase("maclaurin");
      (void)rveval::bench::run_async(cfg);
    });
    rveval::sim::SimOptions opt;
    opt.cores = 4;
    results.emplace_back(tasks, sim.total_seconds(phases, opt));
  }
  double best = results.front().second;
  for (const auto& [tasks, secs] : results) {
    best = std::min(best, secs);
  }
  for (const auto& [tasks, secs] : results) {
    t.row({std::to_string(tasks), rveval::report::Table::num(secs, 4),
           rveval::report::Table::num(100.0 * best / secs, 1) + "%"});
  }
  t.print(std::cout);

  std::cout << "reading: 1 task uses one core (4x slower); thousands of\n"
               "tiny tasks pay the ~"
            << rveval::report::Table::num(
                   rveval::arch::runtime_overheads(cpu).task_spawn_seconds *
                       1e6,
                   1)
            << " us spawn cost per task. The 8-64 range\n(2-16 tasks per "
               "core) is the plateau minihpx's 4x-workers default targets.\n";
  return 0;
}
