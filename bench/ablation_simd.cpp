// Ablation A9: the simd ABI sweep that gates the rveval::simd subsystem.
//
// Every other rveval figure *prices* vector width on modelled CPUs; this
// bench measures it for real on the build host. The hydro RHS kernel and
// the FMM gravity solve run at every runtime-selectable ABI (scalar /
// sse2 / avx2 / native) — the same single-source line kernels, the same
// bit-identical answers (tests/octotiger/test_simd_kernels.cpp), only the
// lane width changes. The measured AVX2-vs-scalar hydro speedup is the
// gate: >= 2.0x (>= 1.2x under --quick, where the run is too short for a
// clean ratio on a loaded 1-core CI host), exit nonzero otherwise. The
// measured host speedup is then projected onto the paper's modelled RVV
// widths through the same lane-efficiency model the Table-2 pricing uses
// (core/simd/pricing.hpp::project_speedup).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/simd/detect.hpp"
#include "core/simd/pricing.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/gravity/solver.hpp"
#include "octotiger/hydro/kernels.hpp"

namespace {

namespace rs = rveval::simd;

double wall_seconds(const std::function<void()>& body, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void fill_wavy(octo::SubGrid& g, double shift) {
  for (std::size_t i = 0; i < octo::NXE; ++i) {
    for (std::size_t j = 0; j < octo::NXE; ++j) {
      for (std::size_t k = 0; k < octo::NXE; ++k) {
        const double x = static_cast<double>(i) / octo::NXE + shift;
        const double y = static_cast<double>(j) / octo::NXE;
        const double z = static_cast<double>(k) / octo::NXE;
        const double rho = 1.0 + 0.3 * std::sin(6 * x) * std::cos(5 * y);
        const double vx = 0.2 * std::sin(4 * z);
        g.ue(octo::f_rho, i, j, k) = rho;
        g.ue(octo::f_sx, i, j, k) = rho * vx;
        g.ue(octo::f_sy, i, j, k) = 0.1 * rho;
        g.ue(octo::f_sz, i, j, k) = -0.05 * rho * std::cos(3 * y);
        g.ue(octo::f_egas, i, j, k) = 1.5 + 0.5 * rho * vx * vx;
      }
    }
  }
}

struct AbiRow {
  rs::AbiKind abi;
  double seconds = 0.0;
  double speedup = 1.0;  ///< vs the scalar row of the same sweep
};

const std::vector<rs::AbiKind> kSweep = {rs::AbiKind::scalar, rs::AbiKind::sse2,
                                         rs::AbiKind::avx2};

}  // namespace

int main(int argc, char** argv) {
  bench_common::banner("Ablation simd (A9)",
                       "measured ABI sweep of the hydro and gravity "
                       "kernels + modelled RVV projection");

  std::vector<std::string> args(argv + 1, argv + argc);
  const auto io = bench_common::parse_io(args, "BENCH_ablation_simd.json");
  bool quick = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--quick") {
      quick = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }

  const int reps = quick ? 3 : 7;
  const std::size_t hydro_grids = quick ? 64 : 256;
  const double gate = quick ? 1.2 : 2.0;

  const rs::AbiKind resolved_native = rs::detect::resolve(rs::AbiKind::native);
  std::cout << "host: native ABI resolves to "
            << rs::to_string(resolved_native) << " ("
            << rs::detect::resolved_width(rs::AbiKind::native)
            << " double lanes); AVX2 compiled in: "
            << (RVEVAL_SIMD_HAS_AVX2 ? "yes" : "no") << ", CPU has AVX2: "
            << (rs::detect::cpu_has_avx2() ? "yes" : "no") << "\n\n";

  mhpx::Runtime rt{{2, 256 * 1024}};

  // ---- hydro RHS sweep ------------------------------------------------
  // A batch of wavy sub-grids large enough to time; the kernel is the
  // ABI-templated line kernel routed through kokkos_serial placement.
  std::vector<octo::SubGrid> grids;
  grids.reserve(hydro_grids);
  for (std::size_t n = 0; n < hydro_grids; ++n) {
    grids.emplace_back(octo::Vec3{0, 0, 0}, 0.1);
    fill_wavy(grids.back(), 0.01 * static_cast<double>(n));
  }

  std::vector<AbiRow> hydro;
  for (const rs::AbiKind abi : kSweep) {
    AbiRow row{abi};
    row.seconds = wall_seconds(
        [&] {
          for (const octo::SubGrid& g : grids) {
            octo::hydro::compute_rhs(g, mkk::KernelType::kokkos_serial, abi);
          }
        },
        reps);
    row.speedup = hydro.empty() ? 1.0 : hydro.front().seconds / row.seconds;
    hydro.push_back(row);
  }

  // ---- gravity FMM sweep ----------------------------------------------
  // Mixed-level rotating-star tree (coarse P2P exercised); the vectorized
  // P2P/M2P line kernels dominate the solve.
  octo::Options star;
  star.max_level = 2;
  star.refine_radius = 0.45;
  star.threads = 2;
  octo::Simulation sim(star);

  std::vector<AbiRow> grav;
  for (const rs::AbiKind abi : kSweep) {
    AbiRow row{abi};
    row.seconds = wall_seconds(
        [&] {
          octo::gravity::solve_all(sim.tree(), 0.5,
                                   mkk::KernelType::kokkos_serial,
                                   mkk::KernelType::kokkos_serial, abi);
        },
        reps);
    row.speedup = grav.empty() ? 1.0 : grav.front().seconds / row.seconds;
    grav.push_back(row);
  }

  auto sweep_table = [](const std::string& title,
                        const std::vector<AbiRow>& rows) {
    rveval::report::Table t(title);
    t.headers({"ABI", "lanes", "best-of time [ms]", "speedup vs scalar"});
    for (const AbiRow& r : rows) {
      t.row({std::string(rs::to_string(r.abi)),
             std::to_string(rs::requested_width(r.abi)),
             rveval::report::Table::num(r.seconds * 1e3, 2),
             rveval::report::Table::num(r.speedup, 2) + "x"});
    }
    return t;
  };
  const auto th = sweep_table("hydro RHS, measured on the host "
                              "(kokkos_serial placement)",
                              hydro);
  const auto tg = sweep_table("gravity FMM solve, measured on the host "
                              "(kokkos_serial placement)",
                              grav);
  th.print(std::cout);
  tg.print(std::cout);

  const double hydro_avx2 = hydro.back().speedup;
  const double grav_avx2 = grav.back().speedup;

  // ---- modelled RVV projection ----------------------------------------
  // Transfer the measured 4-lane host speedup onto the RVV widths the
  // paper's models carry: the SG2042's real vector unit and a hypothetical
  // RVV-512 part, via the same linear lane-efficiency model as the
  // Table-2 pricing.
  const auto sg = rveval::arch::sg2042();
  struct Projection {
    std::string target;
    unsigned width;
    double speedup;
  };
  std::vector<Projection> proj = {
      {"SG2042 (" + rs::isa_label(sg, sg.vector_length) + ")",
       sg.vector_length, rs::project_speedup(hydro_avx2, 4, sg.vector_length)},
      {"hypothetical rvv-modelled-512", 8,
       rs::project_speedup(hydro_avx2, 4, 8)},
  };
  rveval::report::Table tp(
      "modelled RVV projection of the measured hydro speedup");
  tp.headers({"target", "lanes", "projected kernel speedup"});
  for (const Projection& p : proj) {
    tp.row({p.target, std::to_string(p.width),
            rveval::report::Table::num(p.speedup, 2) + "x"});
  }
  tp.print(std::cout);

  // ---- gate ------------------------------------------------------------
  // Only meaningful where the avx2 backend actually runs 4-wide
  // intrinsics; on a non-AVX2 build/CPU the sweep still ran (portable
  // fallback, bit-identical) but a speed gate would be noise.
  const bool avx2_real = RVEVAL_SIMD_HAS_AVX2 && rs::detect::cpu_has_avx2();
  bool pass = true;
  if (avx2_real) {
    pass = hydro_avx2 >= gate;
    std::cout << "\ngate: hydro avx2-vs-scalar "
              << rveval::report::Table::num(hydro_avx2, 2) << "x >= "
              << rveval::report::Table::num(gate, 1) << "x ("
              << (quick ? "quick" : "full") << "): "
              << (pass ? "PASS" : "FAIL") << "\n";
  } else {
    std::cout << "\ngate: skipped (avx2 backend not live on this host; "
                 "sweep ran the portable fallback)\n";
  }

  rveval::report::BenchReport report(
      "ablation_simd",
      "measured simd ABI sweep (hydro RHS, gravity FMM) + RVV projection");
  report.metric("quick", quick ? 1.0 : 0.0)
      .metric("reps", static_cast<double>(reps))
      .metric("hydro_grids", static_cast<double>(hydro_grids))
      .metric("native_abi", std::string(rs::to_string(resolved_native)))
      .metric("hydro_speedup_sse2", hydro[1].speedup)
      .metric("hydro_speedup_avx2", hydro_avx2)
      .metric("gravity_speedup_sse2", grav[1].speedup)
      .metric("gravity_speedup_avx2", grav_avx2)
      .metric("gate_threshold", avx2_real ? gate : 0.0)
      .metric("gate", avx2_real ? (pass ? "pass" : "fail") : "skipped")
      .metric("rvv_projected_speedup_sg2042", proj[0].speedup)
      .metric("rvv_projected_speedup_512", proj[1].speedup)
      .add_table(th)
      .add_table(tg)
      .add_table(tp);
  report.note(
      "every row computes bit-identical results (the simd ABI is a pure "
      "speed knob — see test_simd_kernels); times are best-of-" +
      std::to_string(reps) + " wall clocks on the build host");
  report.note(
      "RVV rows transfer the measured 4-lane speedup through the "
      "lane-efficiency model of core/simd/pricing.hpp onto modelled "
      "RISC-V vector widths; no RVV silicon was executed");
  bench_common::finish_io(io, report);
  return pass ? 0 : 1;
}
