// Fig. 9 / §7 reproduction: power and energy of the rotating-star run on
// the RISC-V boards (wall power meter) vs Fugaku's A64FX (PowerAPI), for
// one and two nodes.
//
// Paper readings: 3.19 W under `stress --cpu 4`, 3.22 W under Octo-Tiger;
// RISC-V draws less power but uses *more energy* because the runs are ~7x
// longer. Both instruments are modelled (core/power), and the run times
// come from the same priced traces as Fig. 8.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/power/energy.hpp"
#include "core/simd/pricing.hpp"
#include "minikokkos/minikokkos.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace {

namespace md = mhpx::dist;

std::vector<rveval::sim::Phase> run_single(const octo::Options& base) {
  return bench_common::capture_trace(base.threads, [&](auto& trace) {
    octo::Simulation sim(base);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });
    sim.run();
  });
}

std::vector<rveval::sim::Phase> run_two(const octo::Options& base) {
  rveval::sim::TraceCollector trace;
  {
    octo::Options opt = base;
    opt.localities = 2;
    octo::dist::DistSimulation sim(opt, md::FabricKind::tcp);
    trace.map_scheduler(&sim.runtime().locality(0).scheduler(), 0);
    trace.map_scheduler(&sim.runtime().locality(1).scheduler(), 1);
    sim.run();
    sim.runtime().wait_all_idle();
    for (unsigned i = 0; i < sim.runtime().num_localities(); ++i) {
      bench_common::accumulate_task_wait(
          sim.runtime().locality(i).histograms().snapshot(
              "/threads/default/task-wait"));
    }
  }
  return trace.finish();
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::banner("Fig 9", "energy consumption, RISC-V vs A64FX");

  octo::Options base;
  base.max_level = 3;
  base.stop_step = 5;
  base.threads = 4;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto io = bench_common::parse_io(args, "BENCH_fig9.json");
  base.parse_cli(args);

  const auto board = rveval::power::visionfive2_board();
  const auto chip = rveval::power::a64fx_powerapi();

  // §7 instrument check: the modelled wall-meter readings.
  rveval::report::Table pw("power draw (instrument models vs paper readings)");
  pw.headers({"load", "model [W]", "paper [W]"});
  pw.row({"VisionFive2, stress --cpu 4",
          rveval::report::Table::num(board.watts(4, false), 2), "3.19"});
  pw.row({"VisionFive2, Octo-Tiger 4 cores",
          rveval::report::Table::num(board.watts(4, true), 2), "3.22"});
  pw.row({"A64FX 4-core slice (PowerAPI)",
          rveval::report::Table::num(chip.watts(4), 2), "(chip-isolated)"});
  pw.print(std::cout);

  // Run times from the priced traces (same machinery as Fig. 8).
  const auto single = run_single(base);
  const auto two = run_two(base);

  const auto rv = rveval::arch::jh7110();
  const auto fx = rveval::arch::a64fx();
  rveval::sim::SimOptions rv_opt;
  rv_opt.cores = 4;
  rv_opt.simd_speedup =
      rveval::simd::speedup_at_width(rv, rv.vector_length);
  rveval::sim::SimOptions fx_opt;
  fx_opt.cores = 4;
  fx_opt.simd_speedup =  // SVE on the kernels
      rveval::simd::speedup_at_width(fx, fx.vector_length);

  const double t_rv1 =
      rveval::sim::CoreSimulator(rv).total_seconds(single, rv_opt);
  const double t_rv2 = rveval::sim::CoreSimulator(rv).total_seconds_distributed(
      two, 2, rveval::arch::gbe_tcp(), rv_opt);
  const double t_fx1 =
      rveval::sim::CoreSimulator(fx).total_seconds(single, fx_opt);
  const double t_fx2 = rveval::sim::CoreSimulator(fx).total_seconds_distributed(
      two, 2, rveval::arch::tofu_d(), fx_opt);

  rveval::report::Table t("Fig 9: energy for the 5-step rotating-star run");
  t.headers({"system", "nodes", "power [W]", "time [s]", "energy [J]"});
  auto add = [&](const std::string& name, unsigned nodes, double watts,
                 double seconds) {
    rveval::power::PowerMeter meter;
    meter.record(watts * nodes, seconds);
    t.row({name, std::to_string(nodes),
           rveval::report::Table::num(watts * nodes, 2),
           rveval::report::Table::num(seconds, 2),
           rveval::report::Table::num(meter.energy_joules(), 1)});
    return meter.energy_joules();
  };
  const double e_rv1 = add("VisionFive2 (wall meter)", 1,
                           board.watts(4, true), t_rv1);
  add("VisionFive2 (wall meter)", 2, board.watts(4, true), t_rv2);
  const double e_fx1 = add("A64FX (PowerAPI)", 1, chip.watts(4), t_fx1);
  add("A64FX (PowerAPI)", 2, chip.watts(4), t_fx2);
  t.print(std::cout);

  std::cout << "shape checks (paper: RISC-V lower power, higher energy):\n"
            << "  RISC-V power < A64FX power: "
            << (board.watts(4, true) < chip.watts(4) ? "yes" : "NO") << "\n"
            << "  RISC-V energy > A64FX energy (1 node): "
            << (e_rv1 > e_fx1 ? "yes" : "NO") << " (" << e_rv1 / e_fx1
            << "x)\n";

  // Per-phase P×t: price every single-node phase on both instruments, so
  // the energy trade-off is visible phase by phase instead of only
  // end-to-end (the apex energy-attribution story of DESIGN.md
  // §observability, on modelled time).
  rveval::report::Table pp("Fig 9: energy per phase (1 node, modelled time)");
  pp.headers({"phase", "RISC-V [s]", "RISC-V [J]", "A64FX [s]", "A64FX [J]"});
  const rveval::sim::CoreSimulator rv_sim(rv);
  const rveval::sim::CoreSimulator fx_sim(fx);
  const double rv_watts = board.watts(4, true);
  const double fx_watts = chip.watts(4);
  for (const rveval::sim::Phase& phase : single) {
    const double t_rv = rv_sim.simulate(phase, rv_opt).total_seconds;
    const double t_fx = fx_sim.simulate(phase, fx_opt).total_seconds;
    pp.row({phase.name, rveval::report::Table::num(t_rv, 3),
            rveval::report::Table::num(rv_watts * t_rv, 1),
            rveval::report::Table::num(t_fx, 4),
            rveval::report::Table::num(fx_watts * t_fx, 2)});
  }
  pp.print(std::cout);

  // Host-vs-device placement: the same single-node run with the hydro and
  // gravity kernels placed on the modelled device streams (DESIGN.md §9).
  // The kernels execute the same serial bodies on the host, so the science
  // is bit-identical; what changes is where their cost lands — per-kernel
  // modelled device time/energy plus the staged host<->device transfers
  // the placement has to pay for.
  auto& dev = mkk::device::Device::instance();
  dev.reset();
  octo::Options placed = base;
  placed.hydro_kernel = mkk::KernelType::kokkos_device;
  placed.multipole_kernel = mkk::KernelType::kokkos_device;
  placed.monopole_kernel = mkk::KernelType::kokkos_device;
  (void)run_single(placed);

  struct KernelAgg {
    unsigned launches = 0;
    double seconds = 0.0;
    double energy_j = 0.0;
  };
  std::map<std::string, KernelAgg> per_kernel;
  KernelAgg transfers;
  using OpRecord = mkk::device::OpRecord;
  for (const OpRecord& op : dev.timeline()) {
    const double len = op.model_end - op.model_begin;
    if (op.kind == OpRecord::Kind::kernel) {
      KernelAgg& a = per_kernel[op.name];
      ++a.launches;
      a.seconds += len;
      a.energy_j += op.energy_j;
    } else if (op.kind == OpRecord::Kind::copy_h2d ||
               op.kind == OpRecord::Kind::copy_d2h) {
      ++transfers.launches;
      transfers.seconds += len;
      transfers.energy_j += op.energy_j;
    }
  }
  const auto dev_totals = dev.totals();

  rveval::report::Table dv(
      "Fig 9 (device placement): per-kernel modelled device energy, 1 node");
  dv.headers({"kernel", "launches", "model [ms]", "energy [mJ]"});
  for (const auto& [name, a] : per_kernel) {
    dv.row({name, std::to_string(a.launches),
            rveval::report::Table::num(a.seconds * 1e3),
            rveval::report::Table::num(a.energy_j * 1e3)});
  }
  dv.row({"host<->device transfers", std::to_string(transfers.launches),
          rveval::report::Table::num(transfers.seconds * 1e3),
          rveval::report::Table::num(transfers.energy_j * 1e3)});
  std::cout << "\n";
  dv.print(std::cout);
  dev.reset();

  rveval::report::BenchReport report(
      "fig9_energy", "energy consumption, RISC-V vs A64FX");
  report.metric("scenario", octo::scenario::for_options(base).name)
      .metric("max_level", static_cast<double>(base.max_level))
      .metric("stop_step", static_cast<double>(base.stop_step))
      .metric("riscv_watts_model", rv_watts)
      .metric("a64fx_watts_model", fx_watts)
      .metric("riscv_energy_j_1node", e_rv1)
      .metric("a64fx_energy_j_1node", e_fx1)
      .metric("riscv_over_a64fx_energy", e_rv1 / e_fx1)
      .metric("device_energy_j", dev_totals.energy_joules)
      .metric("device_kernel_seconds", dev_totals.kernel_seconds)
      .metric("device_copy_seconds", dev_totals.copy_seconds)
      .metric("device_copy_bytes", dev_totals.copy_bytes)
      .metric("device_launches", static_cast<double>(dev_totals.launches))
      .metric("task_wait_p50_seconds",
              bench_common::task_wait_accumulator().quantile(0.5))
      .metric("task_wait_p99_seconds",
              bench_common::task_wait_accumulator().quantile(0.99))
      .metric("task_wait_events",
              static_cast<double>(bench_common::task_wait_accumulator().count))
      .add_table(pw)
      .add_table(t)
      .add_table(pp)
      .add_table(dv);
  report.note(
      "power values are instrument models (wall meter / PowerAPI); run "
      "times priced on the Table-2 architecture models from real traces");
  report.note(
      "device placement rows price the same kernels on the modelled "
      "V100-class accelerator and its board power model; the science "
      "stays bit-identical to the host run (see test_device_placement)");
  bench_common::finish_io(io, report);
  return 0;
}
