// Chrome-trace post-processing CLI over core/report/trace_tools:
//
//   trace_tool lint <trace.json> [--min-pids=N]
//     Structural gate for CI: span balance, flow s/f pairing, parent/id
//     resolution, minimum distinct-pid count. Exit 1 on any violation.
//
//   trace_tool merge <out.json> <in1.json> [in2.json ...]
//     Clock-skew-corrected merge: estimates each input's clock offset from
//     cross-trace parcel flow pairs, shifts, concatenates and re-emits one
//     Perfetto-loadable file.
//
//   trace_tool flamegraph <trace.json> [out.folded]
//     Fold the trace's duration spans into collapsed-stack text (self-time
//     weights in microseconds, one root per locality pid) — pipe into
//     flamegraph.pl / inferno / speedscope. Writes stdout when no output
//     path is given.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report/trace_tools.hpp"

namespace {

namespace tt = rveval::report::tracetools;

int usage() {
  std::cerr << "usage: trace_tool lint <trace.json> [--min-pids=N]\n"
            << "       trace_tool merge <out.json> <in.json> [in.json ...]\n"
            << "       trace_tool flamegraph <trace.json> [out.folded]\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int run_lint(const std::vector<std::string>& args) {
  std::string path;
  std::size_t min_pids = 1;
  for (const std::string& a : args) {
    if (a.rfind("--min-pids=", 0) == 0) {
      min_pids = static_cast<std::size_t>(std::stoul(a.substr(11)));
    } else if (path.empty()) {
      path = a;
    } else {
      return usage();
    }
  }
  if (path.empty()) {
    return usage();
  }
  const tt::ParsedTrace trace = tt::parse_chrome(slurp(path));
  const std::vector<std::string> errors = tt::lint(trace, min_pids);
  if (errors.empty()) {
    std::cout << "trace_tool: " << path << " clean (" << trace.events.size()
              << " events)\n";
    return 0;
  }
  std::cerr << "trace_tool: " << path << ": " << errors.size()
            << " violation(s)\n";
  for (const std::string& e : errors) {
    std::cerr << "  " << e << "\n";
  }
  return 1;
}

int run_merge(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return usage();
  }
  const std::string& out_path = args[0];
  std::vector<tt::ParsedTrace> traces;
  for (std::size_t i = 1; i < args.size(); ++i) {
    traces.push_back(tt::parse_chrome(slurp(args[i])));
  }
  const tt::ParsedTrace merged = tt::merge(traces);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "trace_tool: cannot write " << out_path << "\n";
    return 1;
  }
  out << tt::to_chrome_json(merged);
  std::cout << "trace_tool: merged " << (args.size() - 1) << " trace(s), "
            << merged.events.size() << " events -> " << out_path << "\n";
  return out ? 0 : 1;
}

int run_flamegraph(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) {
    return usage();
  }
  const tt::ParsedTrace trace = tt::parse_chrome(slurp(args[0]));
  const std::vector<tt::FoldedStack> folds = tt::fold_stacks(trace);
  const std::string text = tt::to_collapsed(folds);
  if (args.size() == 2) {
    std::ofstream out(args[1], std::ios::binary);
    if (!out) {
      std::cerr << "trace_tool: cannot write " << args[1] << "\n";
      return 1;
    }
    out << text;
    std::cout << "trace_tool: folded " << trace.events.size() << " events, "
              << folds.size() << " stack(s) -> " << args[1] << "\n";
    return out ? 0 : 1;
  }
  std::cout << text;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return usage();
  }
  const std::string cmd = args.front();
  args.erase(args.begin());
  try {
    if (cmd == "lint") {
      return run_lint(args);
    }
    if (cmd == "merge") {
      return run_merge(args);
    }
    if (cmd == "flamegraph") {
      return run_flamegraph(args);
    }
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
