// Ablation: the FMM opening parameter theta (the paper's --theta=0.5).
//
// theta trades gravity accuracy for cost: a larger theta accepts multipole
// approximations at shorter range (fewer P2P pairs, more M2P evaluations of
// nearer — less converged — expansions). This bench sweeps theta on the
// rotating star, measuring interaction counts, force error against the
// direct O(N^2) reference, and the priced time on the VisionFive2 model.

#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/simd/pricing.hpp"
#include "minihpx/futures/future.hpp"
#include "octotiger/gravity/solver.hpp"
#include "octotiger/init/rotating_star.hpp"

int main() {
  bench_common::banner("Ablation theta",
                       "FMM opening-criterion sweep (accuracy vs cost)");

  octo::Options opt;
  opt.max_level = 2;
  opt.refine_radius = 10.0;  // uniform 64-leaf mesh

  // Direct reference on three representative leaves.
  octo::Octree ref_tree(opt.max_level, opt.refine_radius);
  octo::init::rotating_star(ref_tree, opt);
  const std::vector<std::size_t> targets{0, ref_tree.leaf_count() / 2,
                                         ref_tree.leaf_count() - 1};
  octo::gravity::direct_solve(ref_tree, targets);

  rveval::report::Table t("theta sweep (rotating star, level 2)");
  t.headers({"theta", "M2P nodes", "P2P pairs", "max |g| rel err",
             "priced time on JH7110 [ms]"});

  const auto cpu = rveval::arch::jh7110();
  for (const double theta : {0.3, 0.4, 0.5, 0.7, 1.0}) {
    octo::Octree tree(opt.max_level, opt.refine_radius);
    octo::init::rotating_star(tree, opt);

    std::size_t m2p = 0;
    std::size_t p2p = 0;
    const auto phases = bench_common::capture_trace(2, [&](auto& trace) {
      trace.begin_phase("gravity");
      mhpx::async([&] {
        octo::gravity::compute_moments(tree.root());
        for (octo::TreeNode* leaf : tree.leaves()) {
          const auto stats = octo::gravity::solve_leaf(
              tree.root(), *leaf, theta, mkk::KernelType::legacy,
              mkk::KernelType::legacy);
          m2p += stats.m2p_nodes;
          p2p += stats.p2p_table_pairs + stats.p2p_coarse_pairs;
        }
      }).get();
    });

    double max_err = 0.0;
    for (const std::size_t l : targets) {
      const octo::SubGrid& a = tree.leaves()[l]->grid;
      const octo::SubGrid& b = ref_tree.leaves()[l]->grid;
      for (std::size_t i = 0; i < octo::NX; ++i) {
        for (std::size_t j = 0; j < octo::NX; ++j) {
          for (std::size_t k = 0; k < octo::NX; ++k) {
            const octo::Vec3 ga{a.g(0, i, j, k), a.g(1, i, j, k),
                                a.g(2, i, j, k)};
            const octo::Vec3 gb{b.g(0, i, j, k), b.g(1, i, j, k),
                                b.g(2, i, j, k)};
            const double scale = std::max(gb.norm(), 1e-3);
            max_err = std::max(max_err, (ga - gb).norm() / scale);
          }
        }
      }
    }

    rveval::sim::CoreSimulator sim(cpu);
    rveval::sim::SimOptions sopt;
    sopt.cores = 4;
    sopt.simd_speedup =
        rveval::simd::speedup_at_width(cpu, cpu.vector_length);
    const double ms = sim.total_seconds(phases, sopt) * 1e3;

    t.row({rveval::report::Table::num(theta, 1), std::to_string(m2p),
           std::to_string(p2p), rveval::report::Table::sci(max_err, 2),
           rveval::report::Table::num(ms, 1)});
  }
  t.print(std::cout);

  std::cout
      << "reading: below theta = 1 the classification is stable on this\n"
         "uniform mesh (adjacent leaves are always near-field; non-adjacent\n"
         "same-level leaves fall back to M2P), giving sub-0.1% force errors;\n"
         "theta = 1.0 starts accepting coarser nodes, trading ~25% of the\n"
         "near-field cost for 2x the error. The paper's theta = 0.5 sits\n"
         "comfortably on the accurate plateau.\n";
  return 0;
}
