// Fig. 6a reproduction: performance of the async/futures Maclaurin
// benchmark normalized by theoretical peak (Eq. 2/Eq. 3), per architecture
// and core count. The paper's observation: normalized efficiency is low
// everywhere (the benchmark is a serial dependency chain of software pows)
// and auto-vectorisation has no significant effect.

#include <iostream>

#include "bench/fig4_maclaurin.hpp"

int main() {
  bench_common::banner("Fig 6a",
                       "normalized performance (Eq. 3), async + futures");
  const auto series =
      fig4::run_and_price(&rveval::bench::run_async, 4'000'000);
  fig4::print_series("Fig 6a: Perf_norm = FLOPs / Perf_peak (async)", series,
                     /*normalized=*/true);

  // RISC-V has no vector unit, so its tiny peak makes its *normalized*
  // value the highest — the counter-intuitive inversion visible in the
  // paper's Fig. 6.
  const double rv = series[3].normalized[3];
  const double fx = series[0].normalized[3];
  std::cout << "shape check: normalized RISC-V > normalized A64FX: "
            << (rv > fx ? "yes" : "NO") << "\n";
  return 0;
}
