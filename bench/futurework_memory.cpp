// Future-work reproduction (paper §8): "memory system benchmarks (GUPS,
// STREAM, STREAM-Triad, and LINPACK) to grade the relative performance of
// RISC-V, development board hardware, and HPC-grade devices."
//
// All three benchmark families run for real on the host (validated in the
// test suite) and are priced on every modelled CPU — including the SG2042
// (Milk-V Pioneer) the paper anticipates.

#include <iostream>

#include "bench/common.hpp"
#include "core/bench/memory_benchmarks.hpp"
#include "core/simd/pricing.hpp"
#include "minihpx/futures/future.hpp"

namespace {

using rveval::report::Table;

std::vector<rveval::arch::CpuModel> graded_cpus() {
  auto cpus = rveval::arch::table2_cpus();
  cpus.push_back(rveval::arch::jh7110());
  cpus.push_back(rveval::arch::sg2042());
  return cpus;
}

}  // namespace

int main() {
  bench_common::banner(
      "Future work (§8)",
      "STREAM / GUPS / LINPACK grading of dev boards vs HPC devices");

  // ---- STREAM --------------------------------------------------------
  constexpr std::size_t n = 2'000'000;
  const auto stream_phases = bench_common::capture_trace(4, [&](auto& trace) {
    rveval::bench::StreamArrays arrays(n);
    trace.begin_phase("copy");
    rveval::bench::stream_copy(arrays);
    trace.begin_phase("scale");
    rveval::bench::stream_scale(arrays, 3.0);
    trace.begin_phase("add");
    rveval::bench::stream_add(arrays);
    trace.begin_phase("triad");
    rveval::bench::stream_triad(arrays, 3.0);
  });

  Table stream("STREAM at full core count (GB/s)");
  stream.headers({"CPU", "cores", "copy", "triad",
                  "model bw [GiB/s]"});
  for (const auto& cpu : graded_cpus()) {
    rveval::sim::CoreSimulator sim(cpu);
    rveval::sim::SimOptions opt;
    opt.cores = cpu.cores;
    opt.charge_spawn_overhead = false;
    double rates[4] = {0, 0, 0, 0};
    for (std::size_t k = 0; k < stream_phases.size() && k < 4; ++k) {
      const double secs = sim.simulate(stream_phases[k], opt).total_seconds;
      const double bytes = stream_phases[k].total_task_bytes();
      rates[k] = bytes / secs / 1e9;
    }
    stream.row({cpu.name, std::to_string(cpu.cores),
                Table::num(rates[0], 1), Table::num(rates[3], 1),
                Table::num(cpu.mem_bw_gib, 1)});
  }
  stream.print(std::cout);

  // ---- GUPS ----------------------------------------------------------
  constexpr std::size_t updates = 1'000'000;
  const auto gups_phases = bench_common::capture_trace(2, [&](auto& trace) {
    trace.begin_phase("gups");
    // Run as a task so the kernel's annotation lands in the trace.
    const auto checksum =
        mhpx::async([&] { return rveval::bench::gups_kernel(20, updates); })
            .get();
    if (checksum == 0) {
      std::cerr << "suspicious zero GUPS checksum\n";
    }
  });
  Table gups("GUPS (giga-updates per second, random-access grading)");
  gups.headers({"CPU", "GUPS"});
  for (const auto& cpu : graded_cpus()) {
    rveval::sim::CoreSimulator sim(cpu);
    rveval::sim::SimOptions opt;
    opt.cores = 1;  // the HPCC update stream is one dependent chain
    opt.charge_spawn_overhead = false;
    const double secs = sim.total_seconds(gups_phases, opt);
    gups.row({cpu.name,
              Table::sci(static_cast<double>(updates) / secs / 1e9, 2)});
  }
  gups.print(std::cout);

  // ---- LINPACK-class LU ----------------------------------------------
  constexpr std::size_t order = 256;
  const auto lu_phases = bench_common::capture_trace(4, [&](auto& trace) {
    trace.begin_phase("lu");
    mkk::View<double, 2> a("A", order, order);
    // Diagonally dominant random-ish matrix.
    for (std::size_t i = 0; i < order; ++i) {
      for (std::size_t j = 0; j < order; ++j) {
        a(i, j) = (i == j) ? static_cast<double>(order)
                           : 1.0 / (1.0 + static_cast<double>(i + j));
      }
    }
    // Run as a task so the factorisation's annotations land in the trace.
    mhpx::async([&] { (void)rveval::bench::lu_factor(a); }).get();
  });
  Table lin("LINPACK-class LU (GFLOP/s at 4 cores, 2/3 n^3 flops)");
  lin.headers({"CPU", "GFLOP/s", "% of 4-core peak"});
  for (const auto& cpu : graded_cpus()) {
    rveval::sim::CoreSimulator sim(cpu);
    rveval::sim::SimOptions opt;
    opt.cores = 4;
    opt.simd_speedup =  // BLAS-style kernels SIMD
        rveval::simd::speedup_at_width(cpu, cpu.vector_length);
    const double secs = sim.total_seconds(lu_phases, opt);
    const double gf = rveval::bench::lu_flops(order) / secs / 1e9;
    lin.row({cpu.name, Table::num(gf, 2),
             Table::num(100.0 * gf / cpu.peak_gflops(4), 1)});
  }
  lin.print(std::cout);

  std::cout << "grading summary: the JH7110's ~"
            << rveval::arch::jh7110().mem_bw_gib
            << " GiB/s memory system sits ~20x below the A64FX 4-core\n"
            << "slice — the §6.2.1 observation ('the slow connection to "
               "the memory kicks in')\nmade quantitative.\n";
  return 0;
}
