// CLI wrapper around rveval::report::validate_bench_v1: check that every
// BENCH_*.json given on the command line is a well-formed rveval-bench-v1
// document. Exit 0 when all pass; nonzero with one line per violation
// otherwise. CI chains this after the bench smoke runs (FIXTURES_REQUIRED)
// so a malformed report fails the pipeline at the producer, not in the
// plotting scripts.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report/bench_report.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: validate_report <report.json> [more.json ...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      ++failures;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();

    std::vector<std::string> problems;
    try {
      const auto doc = rveval::report::json::parse(text.str());
      problems = rveval::report::validate_bench_v1(doc);
    } catch (const std::exception& e) {
      problems.push_back(std::string("JSON parse error: ") + e.what());
    }
    if (problems.empty()) {
      std::cout << path << ": ok\n";
    } else {
      for (const auto& p : problems) {
        std::cerr << path << ": " << p << "\n";
      }
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
