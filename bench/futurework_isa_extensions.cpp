// Future-work reproduction (paper §8): the ISA extensions the paper argues
// would benefit HPX and other AMTs on RISC-V —
//   "one-cycle context switches, extended atomics, hardware support for
//    global address space, and possibly hardware support for thread
//    scheduling (hardware queues)".
//
// What-if analysis: re-price a fine-grained task workload (many small
// Maclaurin chunks — the regime where runtime overhead matters) and the
// distributed rotating star under reduced overhead models:
//   A: baseline U74 overheads (measured constants, DESIGN.md §4)
//   B: one-cycle context switches (suspend/resume ~ free)
//   C: hardware task queues (spawn cost ~ 50 cycles)
//   D: B + C combined
//   E: hardware global address space (parcel latency ~ NIC-direct, 5 us)

#include <iostream>

#include "bench/common.hpp"
#include "core/rveval.hpp"

namespace {

using rveval::report::Table;

/// Price a phase set with explicit overhead substitution: the simulator
/// charges task_spawn via the CPU model, so emulate reduced spawn cost by
/// rescaling the per-task constant through a modified model.
double priced_seconds(const std::vector<rveval::sim::Phase>& phases,
                      const rveval::arch::CpuModel& cpu, unsigned cores,
                      double spawn_seconds) {
  // Rebuild a pricing by hand: LPT over task costs with substituted spawn.
  rveval::sim::CoreSimulator sim(cpu);
  rveval::sim::SimOptions no_spawn;
  no_spawn.cores = cores;
  no_spawn.charge_spawn_overhead = false;
  double total = 0.0;
  for (const auto& p : phases) {
    const double compute = sim.simulate(p, no_spawn).total_seconds;
    // Spawn overhead: tasks / cores posts on the critical path.
    const double spawn = spawn_seconds *
                         static_cast<double>(p.tasks.size()) /
                         static_cast<double>(cores);
    total += compute + spawn;
  }
  return total;
}

}  // namespace

int main() {
  bench_common::banner("Future work (§8)",
                       "ISA-extension what-if: context switches, hardware "
                       "task queues, hardware GAS");

  // Fine-grained workload: 4096 tiny chunks of the series — each task only
  // ~1k terms, so per-task runtime overhead is a visible fraction.
  rveval::bench::MaclaurinConfig cfg;
  cfg.terms = 4'000'000;
  cfg.tasks = 4096;
  const auto phases = bench_common::capture_trace(4, [&](auto& trace) {
    trace.begin_phase("fine-grained");
    (void)rveval::bench::run_async(cfg);
  });

  const auto cpu = rveval::arch::u74_mc();
  const auto base_ovh = rveval::arch::runtime_overheads(cpu);
  const double cycle = 1.0 / (cpu.clock_ghz * 1e9);

  struct Scenario {
    const char* label;
    double spawn_seconds;
  };
  const Scenario scenarios[] = {
      {"A: baseline (software runtime)", base_ovh.task_spawn_seconds},
      {"B: one-cycle context switches",
       base_ovh.task_spawn_seconds - base_ovh.context_switch_seconds + cycle},
      {"C: hardware task queues (50-cycle spawn)", 50.0 * cycle},
      {"D: B + C combined", 50.0 * cycle},  // switch cost inside spawn gone
  };

  Table t("fine-grained Maclaurin (4096 tasks) on the U74-MC, 4 cores");
  t.headers({"scenario", "time [s]", "speed-up vs A"});
  const double base_time =
      priced_seconds(phases, cpu, 4, scenarios[0].spawn_seconds);
  for (const auto& s : scenarios) {
    const double secs = priced_seconds(phases, cpu, 4, s.spawn_seconds);
    t.row({s.label, Table::num(secs, 4), Table::num(base_time / secs, 3)});
  }
  t.print(std::cout);

  // Hardware GAS: price a two-board message pattern with NIC-direct
  // latency instead of the kernel TCP stack.
  Table gas("hardware global address space: per-message cost on GbE");
  gas.headers({"path", "64 B [us]", "4 KiB [us]"});
  const auto tcp = rveval::arch::gbe_tcp();
  rveval::arch::NetworkModel hw_gas = tcp;
  hw_gas.name = "GbE + hardware GAS";
  hw_gas.latency_seconds = 5e-6;  // xBGAS-style direct remote access
  for (const auto& net : {tcp, hw_gas}) {
    gas.row({net.name, Table::num(net.message_seconds(64) * 1e6, 1),
             Table::num(net.message_seconds(4096) * 1e6, 1)});
  }
  gas.print(std::cout);

  std::cout << "reading: with software overheads the fine-grained run loses\n"
            << Table::num(
                   100.0 * (1.0 - priced_seconds(phases, cpu, 4, 0.0) /
                                      base_time),
                   1)
            << "% of its time to task management on the U74 — the headroom\n"
            << "the paper's proposed ISA extensions target; hardware GAS\n"
            << "cuts small-parcel cost ~24x (xBGAS, paper ref [36]).\n";
  return 0;
}
