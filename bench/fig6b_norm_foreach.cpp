// Fig. 6b reproduction: normalized performance (Eq. 3) of the parallel
// algorithm variant, including the vectorisation comparison the paper ran:
// on Intel/AMD the parallel for loop shows some auto-vectorisation effect,
// on A64FX and RISC-V none.

#include <iostream>

#include "bench/fig4_maclaurin.hpp"

int main() {
  bench_common::banner("Fig 6b",
                       "normalized performance (Eq. 3), parallel algorithm");
  const auto series =
      fig4::run_and_price(&rveval::bench::run_parallel_algorithm, 4'000'000);
  fig4::print_series("Fig 6b: Perf_norm (for_each, par)", series,
                     /*normalized=*/true);

  // Vectorisation discussion (paper §6.1): auto-vectorisation showed no
  // significant effect on this benchmark on any CPU — the series is a
  // chain of dependent software pow calls, which does not vectorise. The
  // table contrasts that with what *explicitly SIMD-typed* kernels
  // achieve on the same CPUs (the Octo-Tiger kernel situation; Fig. 7-9
  // pricing uses these factors).
  rveval::report::Table t("kernel vectorisability by CPU");
  t.headers({"CPU", "autovec on Maclaurin", "SIMD-typed kernel speed-up"});
  for (const auto& cpu : rveval::arch::table2_cpus()) {
    t.row({cpu.name, "none (dependent pow chain)",
           rveval::report::Table::num(cpu.simd_kernel_speedup, 1) + "x"});
  }
  t.print(std::cout);
  return 0;
}
