// Ablation A4 (paper §3.1/§6.2.2): parcelport comparison.
//
// HPX lets the application choose its communication backend; Fig. 8's
// TCP-vs-MPI difference motivated the paper's "needs further investigation"
// note. This binary measures, on the host, the round-trip latency and bulk
// throughput of the three fabrics (inproc handoff, real loopback TCP
// sockets, MPI-protocol simulation), plus the modelled per-message costs
// the Fig. 8 pricing uses for the boards' GbE link.

#include <chrono>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/arch/network_model.hpp"
#include "core/report/parcel_report.hpp"
#include "core/report/table.hpp"
#include "minihpx/distributed/runtime.hpp"

namespace {

namespace md = mhpx::dist;

struct EchoAction {
  static constexpr std::string_view name = "ablation::echo";
  static std::vector<double> invoke(md::Locality&, std::vector<double> v) {
    return v;
  }
};
MHPX_REGISTER_ACTION(EchoAction);

struct Measured {
  double rtt_us;
  double throughput_mb_s;
};

Measured measure(md::FabricKind kind) {
  md::DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.fabric = kind;
  md::DistributedRuntime rt(cfg);

  // Warm up.
  rt.locality(0).call<EchoAction>(md::locality_gid(1),
                                  std::vector<double>{1.0}).get();

  // Round-trip latency: tiny payload, many pings.
  constexpr int kPings = 200;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kPings; ++i) {
    rt.locality(0)
        .call<EchoAction>(md::locality_gid(1), std::vector<double>{1.0})
        .get();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double rtt_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kPings;

  // Bulk throughput: 4 MB payload echoed a few times.
  std::vector<double> big(512 * 1024);
  std::iota(big.begin(), big.end(), 0.0);
  constexpr int kBulk = 5;
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBulk; ++i) {
    rt.locality(0).call<EchoAction>(md::locality_gid(1), big).get();
  }
  const auto t3 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t3 - t2).count();
  const double bytes_moved =
      2.0 * kBulk * static_cast<double>(big.size()) * sizeof(double);
  return Measured{rtt_us, bytes_moved / secs / 1e6};
}

}  // namespace

int main() {
  std::cout << "### Ablation A4: parcelport latency and throughput\n\n";

  rveval::report::Table t("host-measured fabric performance (2 localities)");
  t.headers({"parcelport", "round-trip [us]", "throughput [MB/s]"});
  for (const auto kind : {md::FabricKind::inproc, md::FabricKind::tcp,
                          md::FabricKind::mpisim}) {
    const auto m = measure(kind);
    t.row({std::string(md::to_string(kind)),
           rveval::report::Table::num(m.rtt_us, 1),
           rveval::report::Table::num(m.throughput_mb_s, 1)});
  }
  t.print(std::cout);

  rveval::report::network_cost_table(
      "modelled per-message cost on the boards' GbE link (Fig. 8 pricing)",
      {rveval::arch::gbe_tcp(), rveval::arch::gbe_mpi(),
       rveval::arch::tofu_d()},
      {64, 64 * 1024, 1 << 20})
      .print(std::cout);

  std::cout << "note: GbE/MPI > GbE/TCP per message at every size — the\n"
            << "protocol-cost hypothesis behind the paper's observation that\n"
            << "TCP scaled better (1.85x) than MPI (1.55x) across the two\n"
            << "boards.\n";
  return 0;
}
