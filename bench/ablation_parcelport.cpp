// Ablation A4 (paper §3.1/§6.2.2): parcelport comparison.
//
// HPX lets the application choose its communication backend; Fig. 8's
// TCP-vs-MPI difference motivated the paper's "needs further investigation"
// note. This binary measures, on the host, the round-trip latency and bulk
// throughput of the three fabrics (inproc handoff, real loopback TCP
// sockets, MPI-protocol simulation), the modelled per-message costs the
// Fig. 8 pricing uses for the boards' GbE link, and — the knob this
// ablation sweeps — what send-side parcel coalescing does to the wire:
// the Fig. 8 rotating-star exchange is re-run over each fabric with
// RVEVAL_COALESCE on and off, counting wire-level flushes (one flush = one
// sendmsg() for TCP, one modelled MPI message for mpisim).
//
// Flags: --quick shrinks the star runs for CI smoke use;
//        --json-out=<path> writes the rveval-bench-v1 report
//        (default BENCH_ablation_parcelport.json).

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/arch/network_model.hpp"
#include "core/report/parcel_report.hpp"
#include "core/report/table.hpp"
#include "minihpx/distributed/runtime.hpp"
#include "octotiger/distributed/dist_driver.hpp"

namespace {

namespace md = mhpx::dist;

struct EchoAction {
  static constexpr std::string_view name = "ablation::echo";
  static std::vector<double> invoke(md::Locality&, std::vector<double> v) {
    return v;
  }
};
MHPX_REGISTER_ACTION(EchoAction);

struct Measured {
  double rtt_us;
  double throughput_mb_s;
};

Measured measure(md::FabricKind kind) {
  md::DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.fabric = kind;
  md::DistributedRuntime rt(cfg);

  // Warm up.
  rt.locality(0).call<EchoAction>(md::locality_gid(1),
                                  std::vector<double>{1.0}).get();

  // Round-trip latency: tiny payload, many pings.
  constexpr int kPings = 200;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kPings; ++i) {
    rt.locality(0)
        .call<EchoAction>(md::locality_gid(1), std::vector<double>{1.0})
        .get();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double rtt_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kPings;

  // Bulk throughput: 4 MB payload echoed a few times.
  std::vector<double> big(512 * 1024);
  std::iota(big.begin(), big.end(), 0.0);
  constexpr int kBulk = 5;
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBulk; ++i) {
    rt.locality(0).call<EchoAction>(md::locality_gid(1), big).get();
  }
  const auto t3 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t3 - t2).count();
  const double bytes_moved =
      2.0 * kBulk * static_cast<double>(big.size()) * sizeof(double);
  return Measured{rtt_us, bytes_moved / secs / 1e6};
}

/// Scoped RVEVAL_COALESCE override (the fabric reads it at connect time).
class CoalesceSwitch {
 public:
  explicit CoalesceSwitch(bool on) {
    if (const char* old = std::getenv("RVEVAL_COALESCE")) {
      old_ = old;
    }
    ::setenv("RVEVAL_COALESCE", on ? "1" : "0", 1);
  }
  ~CoalesceSwitch() {
    if (old_) {
      ::setenv("RVEVAL_COALESCE", old_->c_str(), 1);
    } else {
      ::unsetenv("RVEVAL_COALESCE");
    }
  }

 private:
  std::optional<std::string> old_;
};

struct StarWire {
  md::Fabric::Stats stats;
  std::size_t cells = 0;
};

/// The Fig. 8 rotating-star exchange, two localities over \p kind, with
/// coalescing forced on or off. Returns the fabric's wire statistics.
StarWire run_star(md::FabricKind kind, const octo::Options& base,
                  bool coalesce) {
  CoalesceSwitch guard(coalesce);
  octo::Options opt = base;
  opt.localities = 2;
  octo::dist::DistSimulation sim(opt, kind);
  sim.run();
  sim.runtime().wait_all_idle();
  sim.runtime().fabric().flush();
  return StarWire{sim.runtime().fabric().stats(),
                  sim.stats().cells_processed};
}

std::string num(double v, int digits = 1) {
  return rveval::report::Table::num(v, digits);
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "### Ablation A4: parcelport latency, throughput and "
               "coalescing\n\n";

  std::vector<std::string> args(argv + 1, argv + argc);
  bool quick = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--quick") {
      quick = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  const auto io =
      bench_common::parse_io(args, "BENCH_ablation_parcelport.json");

  rveval::report::BenchReport report(
      "ablation_parcelport",
      "parcelport latency, throughput and send-side coalescing");

  rveval::report::Table t("host-measured fabric performance (2 localities)");
  t.headers({"parcelport", "round-trip [us]", "throughput [MB/s]"});
  for (const auto kind : {md::FabricKind::inproc, md::FabricKind::tcp,
                          md::FabricKind::mpisim}) {
    const auto m = measure(kind);
    t.row({std::string(md::to_string(kind)), num(m.rtt_us),
           num(m.throughput_mb_s)});
  }
  t.print(std::cout);

  // ---- coalescing sweep on the Fig. 8 rotating-star exchange ----------
  octo::Options star;
  star.max_level = quick ? 2 : 3;
  star.stop_step = quick ? 2 : 5;
  star.threads = 4;
  star.parse_cli(args);

  rveval::report::Table c(
      "send-side coalescing on the rotating-star exchange (RVEVAL_COALESCE)");
  c.headers({"parcelport", "coalescing", "parcels", "wire flushes",
             "frames/flush", "KiB/flush", "rendezvous"});
  for (const auto kind : {md::FabricKind::inproc, md::FabricKind::tcp,
                          md::FabricKind::mpisim}) {
    double reduction = 0.0;
    std::uint64_t flushes_on = 0;
    for (const bool coalesce : {true, false}) {
      const auto wire = run_star(kind, star, coalesce);
      const auto& s = wire.stats;
      const double flushes = static_cast<double>(s.flushes);
      c.row({std::string(md::to_string(kind)), coalesce ? "on" : "off",
             std::to_string(s.messages), std::to_string(s.flushes),
             num(flushes > 0 ? static_cast<double>(s.messages) / flushes : 0,
                 2),
             num(flushes > 0
                     ? static_cast<double>(s.flushed_bytes) / flushes / 1024
                     : 0,
                 1),
             std::to_string(s.rendezvous_messages)});
      if (coalesce) {
        flushes_on = s.flushes;
      } else if (flushes_on > 0) {
        reduction = static_cast<double>(s.flushes) /
                    static_cast<double>(flushes_on);
      }
    }
    report.metric(std::string(md::to_string(kind)) + "_flush_reduction",
                  reduction);
    if (kind == md::FabricKind::tcp) {
      std::cout << "\ncoalescing cut TCP wire sends by " << num(reduction, 2)
                << "x (target: >= 2x fewer sendmsg syscalls)\n\n";
    }
  }
  c.print(std::cout);

  const auto net = rveval::report::network_cost_table(
      "modelled per-message cost on the boards' GbE link (Fig. 8 pricing)",
      {rveval::arch::gbe_tcp(), rveval::arch::gbe_mpi(),
       rveval::arch::tofu_d()},
      {64, 64 * 1024, 1 << 20});
  net.print(std::cout);

  std::cout << "note: GbE/MPI > GbE/TCP per message at every size — the\n"
            << "protocol-cost hypothesis behind the paper's observation that\n"
            << "TCP scaled better (1.85x) than MPI (1.55x) across the two\n"
            << "boards. Coalescing attacks exactly this per-message cost:\n"
            << "fewer, larger wire messages amortise the protocol overhead\n"
            << "the GbE models price.\n";

  report.metric("quick", quick ? 1.0 : 0.0)
      .metric("star_max_level", static_cast<double>(star.max_level))
      .metric("star_stop_step", static_cast<double>(star.stop_step))
      .add_table(t)
      .add_table(c)
      .add_table(net)
      .note("one wire flush = one sendmsg() for tcp, one modelled MPI "
            "message for mpisim")
      .note("flush_reduction = flushes(coalescing off) / flushes(on) on the "
            "same workload");
  bench_common::finish_io(io, report);
  return 0;
}
