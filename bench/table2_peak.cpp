// Table 2 reproduction: CPU characteristics and theoretical peak
// performance (paper Eq. 2) for the four evaluated architectures.

#include <iostream>

#include "core/arch/cpu_model.hpp"
#include "core/report/table.hpp"

int main() {
  std::cout << "### Table 2: clock speed, vector length, FPU units, FMA, "
               "cores, and peak performance (Eq. 2)\n\n";

  rveval::report::Table t("Table 2 (paper values derived from the models)");
  t.headers({"CPU", "Clock [GHz]", "Vector length", "FPU/core", "FMA",
             "Cores", "Peak [GFLOP/s]"});
  for (const auto& cpu : rveval::arch::table2_cpus()) {
    t.row({cpu.name, rveval::report::Table::num(cpu.clock_ghz, 1),
           cpu.vector_length == 1 ? "NA" : std::to_string(cpu.vector_length),
           std::to_string(cpu.fpu_per_core), cpu.fma ? "yes" : "no (FP32 only)",
           std::to_string(cpu.cores),
           rveval::report::Table::num(cpu.peak_gflops(), 1)});
  }
  t.print(std::cout);

  std::cout << "paper Table 2 peaks: A64FX 2764.8 | EPYC 7543 2867.2 | "
               "Xeon 6140 1324.8 | U74-MC 9.6  (all reproduced)\n";
  return 0;
}
