// Table 2 reproduction: CPU characteristics and theoretical peak
// performance (paper Eq. 2) for the four evaluated architectures — plus
// the width-aware per-ISA ladder the rveval::simd subsystem adds: Eq. 2
// evaluated at every power-of-two lane width a kernel can actually use on
// each CPU, with the modelled realised kernel speedup at that width
// (core/simd/pricing.hpp). The U74-MC collapses to a single scalar row —
// Table 2's "NA" vector length made quantitative.

#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/arch/cpu_model.hpp"
#include "core/simd/pricing.hpp"

int main(int argc, char** argv) {
  bench_common::banner(
      "Table 2", "CPU characteristics and peak performance (Eq. 2), "
                 "plus per-ISA width ladders");

  std::vector<std::string> args(argv + 1, argv + argc);
  const auto io = bench_common::parse_io(args, "BENCH_table2.json");

  rveval::report::Table t("Table 2 (paper values derived from the models)");
  t.headers({"CPU", "Clock [GHz]", "Vector length", "FPU/core", "FMA",
             "Cores", "Peak [GFLOP/s]"});
  for (const auto& cpu : rveval::arch::table2_cpus()) {
    t.row({cpu.name, rveval::report::Table::num(cpu.clock_ghz, 1),
           cpu.vector_length == 1 ? "NA" : std::to_string(cpu.vector_length),
           std::to_string(cpu.fpu_per_core), cpu.fma ? "yes" : "no (FP32 only)",
           std::to_string(cpu.cores),
           rveval::report::Table::num(cpu.peak_gflops(), 1)});
  }
  t.print(std::cout);

  std::cout << "paper Table 2 peaks: A64FX 2764.8 | EPYC 7543 2867.2 | "
               "Xeon 6140 1324.8 | U74-MC 9.6  (all reproduced)\n\n";

  // Per-ISA ladder: the table2 CPUs plus the SG2042 the paper's §8
  // anticipates (its RVV-modelled rows are what ablation_simd projects the
  // measured host speedup onto).
  auto ladder_cpus = rveval::arch::table2_cpus();
  ladder_cpus.push_back(rveval::arch::sg2042());

  rveval::report::Table lad(
      "per-ISA peak ladder (Eq. 2 at each usable lane width)");
  lad.headers({"CPU", "ABI", "lanes", "peak [GFLOP/s]",
               "modelled kernel speedup"});
  rveval::report::BenchReport report(
      "table2_peak",
      "Table 2 CPU characteristics, Eq. 2 peaks, per-ISA width ladders");
  for (const auto& cpu : ladder_cpus) {
    for (const rveval::simd::IsaPeakRow& row :
         rveval::simd::isa_peak_rows(cpu)) {
      lad.row({cpu.name, row.abi, std::to_string(row.width),
               rveval::report::Table::num(row.peak_gflops, 1),
               rveval::report::Table::num(row.kernel_speedup, 2) + "x"});
    }
    // Machine-readable: full-width peak and top-rung label per CPU.
    const auto rows = rveval::simd::isa_peak_rows(cpu);
    report.metric("peak_gflops/" + cpu.name, cpu.peak_gflops())
        .metric("vector_length/" + cpu.name,
                static_cast<double>(cpu.vector_length))
        .metric("kernel_speedup_at_vl/" + cpu.name,
                rows.back().kernel_speedup);
  }
  lad.print(std::cout);

  std::cout
      << "reading: peaks scale linearly in lane count up to the hardware\n"
         "vector length (Eq. 2 with the width factor explicit); realised\n"
         "kernel speedups use the calibrated lane-efficiency model, so the\n"
         "top rung of each ladder equals the simd_kernel_speedup the fig7/\n"
         "fig9 pricing applies. The U74-MC ladder is one scalar rung.\n";

  report.add_table(t).add_table(lad);
  report.note(
      "peaks are paper Eq. 2 (2 x clock x lanes x FPU x cores) with the "
      "lane count an explicit input clamped to the hardware vector length; "
      "kernel speedups are the lane-efficiency interpolation of "
      "core/simd/pricing.hpp");
  bench_common::finish_io(io, report);
  return 0;
}
