// Ablation A8: observability overhead and what the trace buys.
//
// The paper's community tunes HPX applications with APEX: counter
// sampling, task timelines, critical-path analysis. mhpx::apex is the
// miniapp analogue, and this ablation answers the two questions any
// always-on observability layer must: (1) what does tracing cost
// end-to-end (target: < 5% on the rotating-star workload), and (2) what
// does the captured task DAG reveal — the critical path, its per-category
// attribution, and the Brent's-theorem speedup ceiling it implies
// (rveval::sim::span_lower_bound).
//
// Workload: rotating star, max_level=2, 5 steps, Kokkos-HPX kernels — one
// task per sub-grid per solver stage, phases marked by the driver. The
// traced run also exercises the counter registry and the background
// sampler, and the emitted Chrome trace is validated in-process (JSON
// parses; every GUID's B/E events balance) before it is written for
// Perfetto.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "minihpx/apex/apex.hpp"
#include "octotiger/driver.hpp"

namespace {

namespace apex = mhpx::apex;

octo::Options workload_options() {
  octo::Options opt;
  opt.max_level = 2;
  opt.stop_step = 5;
  opt.threads = 4;
  opt.hydro_kernel = mkk::KernelType::kokkos_hpx;
  opt.multipole_kernel = mkk::KernelType::kokkos_hpx;
  opt.monopole_kernel = mkk::KernelType::kokkos_hpx;
  return opt;
}

/// One full run; returns wall seconds (runtime construction excluded —
/// both arms pay it identically, and the question is tracing overhead on
/// the solve itself).
double run_once(const octo::Options& opt) {
  mhpx::Runtime rt{{opt.threads, 256 * 1024}};
  octo::Simulation sim(opt);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  rt.scheduler().wait_idle();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double min_of_reps(const octo::Options& opt, int reps) {
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    apex::trace::clear();
    best = std::min(best, run_once(opt));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::banner(
      "A8", "observability ablation: tracing overhead, critical path, "
            "counter registry (rotating star, level 2, 5 steps)");

  octo::Options opt = workload_options();
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto io =
      bench_common::parse_io(args, "BENCH_A8_observability.json",
                             "TRACE_A8_observability.json");
  opt.parse_cli(args);

  constexpr int reps = 5;

  // --- 1. Overhead: tracing off vs on, min over reps. -------------------
  apex::trace::enable(false);
  const double wall_off = min_of_reps(opt, reps);

  apex::trace::enable(true);
  const double wall_on = min_of_reps(opt, reps);
  // The last traced rep's events stay buffered for the analysis below.

  const double overhead_pct = (wall_on - wall_off) / wall_off * 100.0;
  rveval::report::Table t_over("A8.1: end-to-end tracing overhead (min of " +
                               std::to_string(reps) + " reps)");
  t_over.headers({"tracing", "wall [ms]", "overhead"});
  t_over.row({"off", rveval::report::Table::num(wall_off * 1e3, 2), "-"});
  t_over.row({"on", rveval::report::Table::num(wall_on * 1e3, 2),
              rveval::report::Table::num(overhead_pct, 2) + "%"});
  t_over.print(std::cout);
  std::cout << "check: overhead < 5%: "
            << (overhead_pct < 5.0 ? "yes" : "NO") << "\n\n";

  // --- 2. Validate the captured trace. ----------------------------------
  const auto events = apex::trace::snapshot();
  std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> be_counts;
  std::size_t tasks_with_parent = 0;
  std::size_t task_events = 0;
  for (const auto& ev : events) {
    if (ev.ph == apex::trace::EventPhase::begin) {
      ++be_counts[ev.guid].first;
      if (std::string_view(ev.category) == "task") {
        ++task_events;
        if (ev.parent != 0) {
          ++tasks_with_parent;
        }
      }
    } else if (ev.ph == apex::trace::EventPhase::end) {
      ++be_counts[ev.guid].second;
    }
  }
  std::size_t unbalanced = 0;
  for (const auto& [guid, counts] : be_counts) {
    if (counts.first != counts.second) {
      ++unbalanced;
    }
  }
  bool json_valid = false;
  std::size_t parsed_events = 0;
  try {
    const auto doc = rveval::report::json::parse(apex::trace::chrome_json());
    const auto* te = doc.find("traceEvents");
    json_valid = te != nullptr && te->is_array();
    if (json_valid) {
      parsed_events = te->size();
    }
  } catch (const std::exception& e) {
    std::cout << "chrome JSON FAILED to parse: " << e.what() << "\n";
  }

  rveval::report::Table t_trace("A8.2: trace validity (last traced rep)");
  t_trace.headers({"check", "value", "ok"});
  auto yes = [](bool b) { return std::string(b ? "yes" : "NO"); };
  t_trace.row({"events recorded", std::to_string(events.size()),
               yes(!events.empty())});
  t_trace.row({"events dropped",
               std::to_string(apex::trace::dropped_count()),
               yes(apex::trace::dropped_count() == 0)});
  t_trace.row({"chrome JSON parses", std::to_string(parsed_events),
               yes(json_valid && parsed_events == events.size())});
  t_trace.row({"GUIDs with unbalanced B/E", std::to_string(unbalanced),
               yes(unbalanced == 0)});
  t_trace.row({"task slices traced", std::to_string(task_events),
               yes(task_events > 0)});
  t_trace.row({"task slices with a parent", std::to_string(tasks_with_parent),
               yes(tasks_with_parent > 0)});
  t_trace.print(std::cout);

  // --- 3. Critical path and the speedup ceiling it implies. -------------
  const auto cp = apex::analyze(events, opt.threads);
  std::cout << "\n";
  cp.print(std::cout);
  std::cout << "check: critical path <= traced wall: "
            << (cp.critical_path_seconds <= cp.wall_seconds + 1e-9 ? "yes"
                                                                   : "NO")
            << "\n\n";

  rveval::report::Table t_span(
      "A8.3: Brent's-theorem wall-time floor from the measured trace "
      "(T1 = busy, T_inf = critical path)");
  t_span.headers({"cores", "floor [ms]", "speedup ceiling"});
  for (const unsigned cores : {1u, 2u, 4u, 8u, 16u}) {
    const double floor = rveval::sim::span_lower_bound(
        cp.busy_seconds, cp.critical_path_seconds, cores);
    t_span.row({std::to_string(cores),
                rveval::report::Table::num(floor * 1e3, 2),
                rveval::report::Table::num(
                    floor > 0.0 ? cp.busy_seconds / floor : 0.0, 2)});
  }
  t_span.print(std::cout);

  // --- 4. Histogram record-path overhead gate. ---------------------------
  // Same workload, tracing off both arms; the only difference is the
  // latency-histogram record path (scheduler task-wait/task-run, step
  // timer). set_enabled(false) short-circuits record_ns() at its first
  // branch — the same early-out the -DMHPX_HISTOGRAMS_DISABLED build
  // compiles away entirely — so this prices the enabled path against the
  // ablated one. Gate: < 5% wall-time delta, nonzero exit on failure.
  apex::trace::enable(false);
  // Min-of-5: the record path costs nanoseconds per event, so the signal
  // is small — more reps keep a single descheduled rep from reading as
  // overhead (the ctest registration additionally runs this RUN_SERIAL).
  constexpr int hist_reps = 5;
  apex::Histogram::set_enabled(false);
  const double wall_hist_off = min_of_reps(opt, hist_reps);
  apex::Histogram::set_enabled(true);
  const double wall_hist_on = min_of_reps(opt, hist_reps);
  const double hist_overhead_pct =
      (wall_hist_on - wall_hist_off) / wall_hist_off * 100.0;
  const bool hist_gate_ok = hist_overhead_pct < 5.0;
  rveval::report::Table t_hist(
      "A8.4: latency-histogram record-path overhead (min of " +
      std::to_string(hist_reps) + " reps, tracing off)");
  t_hist.headers({"histograms", "wall [ms]", "overhead"});
  t_hist.row({"disabled", rveval::report::Table::num(wall_hist_off * 1e3, 2),
              "-"});
  t_hist.row({"enabled", rveval::report::Table::num(wall_hist_on * 1e3, 2),
              rveval::report::Table::num(hist_overhead_pct, 2) + "%"});
  t_hist.print(std::cout);
  std::cout << "check: histogram overhead < 5%: "
            << (hist_gate_ok ? "yes" : "NO") << "\n\n";

  // --- 5. Counter registry + sampler, on a live traced run. -------------
  rveval::report::Table t_counters("A8.5: counter registry after one run");
  t_counters.headers({"counter", "kind", "value"});
  rveval::report::Table t_sampler("A8.6: sampled counter timeseries");
  t_sampler.headers({"counter", "samples", "last value"});
  std::size_t n_counters = 0;
  double task_wait_p50 = 0.0;
  double task_wait_p99 = 0.0;
  {
    mhpx::Runtime rt{{opt.threads, 256 * 1024}};
    apex::Sampler sampler;
    apex::SamplerConfig scfg;
    scfg.interval_seconds = 0.002;
    scfg.patterns = {"/threads/default/**", "/threads/default/idle-rate"};
    scfg.emit_trace_counters = true;
    sampler.start(scfg);
    octo::Simulation sim(opt);
    sim.run();
    rt.scheduler().wait_idle();
    sampler.stop();

    for (const auto& [name, value] :
         apex::CounterRegistry::instance().read_matching("**")) {
      const auto infos = apex::CounterRegistry::instance().discover(name);
      const char* kind =
          !infos.empty() && infos.front().kind == apex::CounterKind::gauge
              ? "gauge"
              : "monotonic";
      t_counters.row({name, kind, rveval::report::Table::num(value, 3)});
      ++n_counters;
    }
    for (const auto& s : sampler.series()) {
      t_sampler.row({s.name, std::to_string(s.v.size()),
                     rveval::report::Table::num(
                         s.v.empty() ? 0.0 : s.v.back(), 3)});
    }
    // Percentile leaves the HistogramRegistry derived from the scheduler's
    // task-wait histogram — read while the runtime (and histogram) lives.
    task_wait_p50 = apex::CounterRegistry::instance()
                        .read("/threads/default/task-wait/p50")
                        .value_or(0.0);
    task_wait_p99 = apex::CounterRegistry::instance()
                        .read("/threads/default/task-wait/p99")
                        .value_or(0.0);
  }
  t_counters.print(std::cout);
  t_sampler.print(std::cout);

  // --- Report. -----------------------------------------------------------
  rveval::report::BenchReport report(
      "ablation_observability",
      "A8: apex observability — tracing overhead, trace validity, critical "
      "path, counters");
  report.metric("wall_off_seconds", wall_off)
      .metric("wall_on_seconds", wall_on)
      .metric("overhead_percent", overhead_pct)
      .metric("events", static_cast<double>(events.size()))
      .metric("unbalanced_guids", static_cast<double>(unbalanced))
      .metric("task_slices", static_cast<double>(task_events))
      .metric("task_slices_with_parent",
              static_cast<double>(tasks_with_parent))
      .metric("critical_path_seconds", cp.critical_path_seconds)
      .metric("traced_wall_seconds", cp.wall_seconds)
      .metric("busy_seconds", cp.busy_seconds)
      .metric("utilization", cp.utilization)
      .metric("counters_registered", static_cast<double>(n_counters))
      .metric("hist_wall_off_seconds", wall_hist_off)
      .metric("hist_wall_on_seconds", wall_hist_on)
      .metric("hist_overhead_percent", hist_overhead_pct)
      .metric("task_wait_p50_seconds", task_wait_p50)
      .metric("task_wait_p99_seconds", task_wait_p99)
      .add_table(t_over)
      .add_table(t_trace)
      .add_table(t_span)
      .add_table(t_hist)
      .add_table(t_counters)
      .add_table(t_sampler);
  {
    std::ostringstream cp_note;
    cp.print(cp_note);
    report.note(cp_note.str());
  }
  bench_common::finish_io(io, report);
  if (!hist_gate_ok) {
    std::cerr << "ablation_observability: histogram record-path overhead "
              << hist_overhead_pct << "% exceeds the 5% gate\n";
    return 1;
  }
  return 0;
}
