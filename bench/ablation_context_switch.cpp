// Ablation A1 (paper §5/§8): the cost of user-space context switching.
//
// The paper notes HPX's context switches go through Boost.Context on
// RISC-V, and lists "one-cycle context switches" among the ISA extensions
// that would benefit AMTs. This microbenchmark measures, on the host:
//   - a fiber suspend/resume round trip (the ucontext path),
//   - task post + execution through the full scheduler,
//   - an OS-thread create/join for contrast,
//   - hardware vs software timer reads (the RDTIME porting story).

#include <benchmark/benchmark.h>

#include <thread>

#include "minihpx/chrono/clocks.hpp"
#include "minihpx/fiber/fiber.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"

namespace {

void BM_FiberSuspendResume(benchmark::State& state) {
  // One fiber that yields back and forth with the driver: each iteration is
  // a full switch-out + switch-in pair.
  mhpx::fiber::Fiber* self = nullptr;
  bool stop = false;
  mhpx::fiber::Fiber fib(
      [&] {
        while (!stop) {
          self->set_state(mhpx::fiber::FiberState::ready);
          self->suspend_to_owner();
        }
      },
      mhpx::fiber::Stack(64 * 1024));
  self = &fib;
  for (auto _ : state) {
    fib.resume();
  }
  stop = true;
  fib.resume();  // let the entry return
  state.SetLabel("ucontext swap pair (Boost.Context analogue)");
}
BENCHMARK(BM_FiberSuspendResume);

void BM_FiberCreateRun(benchmark::State& state) {
  mhpx::fiber::StackPool pool(64 * 1024, 8);
  for (auto _ : state) {
    mhpx::fiber::Fiber fib([] {}, pool.acquire());
    fib.resume();
    pool.release(fib.take_stack());
  }
  state.SetLabel("fiber create + run + recycle stack");
}
BENCHMARK(BM_FiberCreateRun);

void BM_SchedulerPostAndRun(benchmark::State& state) {
  mhpx::threads::Scheduler sched({1, 64 * 1024});
  for (auto _ : state) {
    mhpx::sync::latch done(1);
    sched.post([&] { done.count_down(); });
    done.wait();
  }
  state.SetLabel("task spawn through the work-stealing scheduler");
}
BENCHMARK(BM_SchedulerPostAndRun);

void BM_OsThreadCreateJoin(benchmark::State& state) {
  for (auto _ : state) {
    std::thread t([] {});
    t.join();
  }
  state.SetLabel("OS thread create+join (what tasks avoid)");
}
BENCHMARK(BM_OsThreadCreateJoin);

void BM_HardwareTimerRead(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mhpx::chrono::hardware_clock::now_ticks());
  }
  state.SetLabel("RDTSC/RDTIME-class read");
}
BENCHMARK(BM_HardwareTimerRead);

void BM_SoftwareTimerRead(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mhpx::chrono::software_clock::now_ticks());
  }
  state.SetLabel("ISO C++ steady_clock read (HPX software path)");
}
BENCHMARK(BM_SoftwareTimerRead);

}  // namespace

BENCHMARK_MAIN();
