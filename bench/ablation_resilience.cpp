// Ablation A7: resilience overhead vs fault rate.
//
// The paper's target platform is a cluster of cheap SBC boards (two
// VisionFive2 over GbE) — exactly the regime where transient faults,
// flaky links and outright board lockups are operational reality rather
// than tail risk. This ablation measures what the minihpx resilience
// subsystem costs to tolerate them:
//   1. task replay      (mhpx::resilience::async_replay)    vs fault rate,
//   2. replicate+vote   (async_replicate_vote, 3 replicas)  vs silent-
//      corruption rate,
//   3. the self-healing distributed Octo-Tiger driver over the
//      fault-injecting parcelport vs drop rate: cells/s plus the modelled
//      extra time the retries would cost on the boards' real GbE link
//      (VisionFive2 network model, same pricing as Fig. 8).
// All fault injection is seeded, so every table is reproducible.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "core/arch/network_model.hpp"
#include "core/report/parcel_report.hpp"
#include "core/report/table.hpp"
#include "minihpx/minihpx.hpp"
#include "octotiger/distributed/dist_driver.hpp"

namespace {

namespace mres = mhpx::resilience;

double wall_seconds(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A unit of work sized so retry overhead is visible but the whole series
/// stays under a second.
double work_unit(std::uint64_t salt) {
  double acc = 0.0;
  for (int i = 1; i <= 2000; ++i) {
    acc += 1.0 / (static_cast<double>(i) + static_cast<double>(salt % 7));
  }
  return acc;
}

/// Per-task injector seed: tasks run concurrently, so a *shared* decision
/// stream would hand out draws in scheduling order and the per-rate fault
/// counts would wobble run to run. One stream per task keeps every table
/// bit-reproducible.
std::uint64_t task_seed(std::uint64_t base, std::uint64_t i) {
  return base ^ (i * 0x9e3779b97f4a7c15ULL);
}

void replay_series() {
  rveval::report::Table t(
      "async_replay(n=4) overhead vs injected task-fault rate (1000 tasks)");
  t.headers({"fault rate", "retries", "exhausted", "wall [ms]",
             "overhead vs 0%"});
  double base_ms = 0.0;
  for (const double rate : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    mhpx::Runtime rt({4});
    mhpx::instrument::reset_resilience_counters();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<mhpx::future<double>> futs;
    futs.reserve(1000);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      auto inj = std::make_shared<mres::FaultInjector>(
          mres::FaultInjector::Config{rate, 0.0, task_seed(0x5eed, i)});
      futs.push_back(mres::async_replay(4, [inj, i] {
        if (inj->inject_fault()) {
          throw mres::injected_fault();
        }
        return work_unit(i);
      }));
    }
    for (auto& f : futs) {
      try {
        f.get();
      } catch (const mres::injected_fault&) {
        // All 4 attempts failed — counted in the "exhausted" column.
      }
    }
    const double ms = wall_seconds(t0) * 1e3;
    if (rate == 0.0) {
      base_ms = ms;
    }
    const auto c = mhpx::instrument::resilience_counters();
    t.row({rveval::report::Table::num(rate * 100, 0) + " %",
           std::to_string(c.task_retries), std::to_string(c.replays_exhausted),
           rveval::report::Table::num(ms, 1),
           rveval::report::Table::num(ms / base_ms, 2) + "x"});
  }
  t.print(std::cout);
}

void replicate_series() {
  rveval::report::Table t(
      "async_replicate_vote(n=3) overhead vs silent-corruption rate "
      "(300 tasks)");
  t.headers({"corrupt rate", "votes", "vote failures", "wall [ms]",
             "overhead vs 0%"});
  double base_ms = 0.0;
  for (const double rate : {0.0, 0.02, 0.05, 0.10}) {
    mhpx::Runtime rt({4});
    mhpx::instrument::reset_resilience_counters();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<mhpx::future<double>> futs;
    futs.reserve(300);
    for (std::uint64_t i = 0; i < 300; ++i) {
      auto inj = std::make_shared<mres::FaultInjector>(
          mres::FaultInjector::Config{0.0, rate, task_seed(0xfeed, i)});
      futs.push_back(mres::async_replicate_vote(3, [inj, i] {
        double v = work_unit(i);
        if (inj->inject_corruption()) {
          mres::corrupt_value(v, inj->corruption_mask());
        }
        return v;
      }));
    }
    for (auto& f : futs) {
      try {
        f.get();
      } catch (const mres::vote_failed&) {
        // 2 of 3 replicas corrupted differently — "vote failures" column.
      }
    }
    const double ms = wall_seconds(t0) * 1e3;
    if (rate == 0.0) {
      base_ms = ms;
    }
    const auto c = mhpx::instrument::resilience_counters();
    t.row({rveval::report::Table::num(rate * 100, 0) + " %",
           std::to_string(c.replicate_votes),
           std::to_string(c.replicate_vote_failures),
           rveval::report::Table::num(ms, 1),
           rveval::report::Table::num(ms / base_ms, 2) + "x"});
  }
  t.print(std::cout);
}

void distributed_series() {
  // Small rotating star, 2 localities — the paper's two-board setup.
  octo::Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;
  opt.stop_step = 2;
  opt.threads = 2;
  opt.localities = 2;

  const auto net = rveval::arch::gbe_tcp();  // VisionFive2 GbE link model
  // A boundary-exchange parcel: one leaf's interior fields.
  const std::size_t parcel_bytes =
      octo::NF * octo::CELLS_PER_GRID * sizeof(double);

  rveval::report::Table t(
      "self-healing distributed driver vs parcel drop rate "
      "(2 localities, seeded faults)");
  t.headers({"drop rate", "dropped", "retries", "cells/s",
             "modelled retry cost [ms]", "sim-time overhead"});
  double base_wall = 0.0;
  for (const double rate : {0.0, 0.01, 0.03}) {
    octo::dist::ResilienceConfig res;
    res.enabled = true;
    res.rpc_timeout_s = 0.05;
    mhpx::instrument::reset_resilience_counters();
    const auto t0 = std::chrono::steady_clock::now();
    octo::dist::DistSimulation sim(
        opt, mhpx::dist::FabricKind::inproc, res, [rate] {
          mres::FaultConfig fc;
          fc.drop_rate = rate;
          fc.seed = 0xd15c;
          return mres::make_faulty_fabric(mhpx::dist::FabricKind::inproc, fc);
        });
    sim.run();
    const double wall = wall_seconds(t0);
    if (rate == 0.0) {
      base_wall = wall;
    }
    const auto c = mhpx::instrument::resilience_counters();
    // What the retries would cost on the boards' real link: each retry is
    // one extra request/reply exchange of a boundary-sized parcel.
    const double modelled_ms =
        static_cast<double>(c.task_retries) *
        (2.0 * net.message_seconds(parcel_bytes)) * 1e3;
    t.row({rveval::report::Table::num(rate * 100, 0) + " %",
           std::to_string(c.parcels_dropped), std::to_string(c.task_retries),
           rveval::report::Table::num(
               static_cast<double>(sim.stats().cells_processed) / wall, 0),
           rveval::report::Table::num(modelled_ms, 2),
           rveval::report::Table::num(wall / base_wall, 2) + "x"});
  }
  t.print(std::cout);

  rveval::report::network_cost_table(
      "modelled per-message cost on the boards' GbE link (shared with A4)",
      {net, rveval::arch::gbe_mpi()}, {64, parcel_bytes, 64 * 1024})
      .print(std::cout);
}

}  // namespace

int main() {
  std::cout << "### Ablation A7: resilience overhead vs fault rate\n\n";
  replay_series();
  replicate_series();
  distributed_series();
  std::cout << "note: replay costs nothing at 0% fault rate and grows\n"
            << "linearly with it; replicate pays ~n x up front but masks\n"
            << "silent corruption replay cannot see. The distributed driver\n"
            << "turns parcel loss into bounded retry latency instead of a\n"
            << "hung run.\n";
  return 0;
}
