// Table 1 reproduction: the software stack and its versions.
//
// The paper's Table 1 records compiler and dependency versions for the
// SiFive/StarFive boards. Our reproduction's stack is built from scratch, so
// this binary reports the equivalent provenance: the component inventory of
// this repository, what each substitutes, and the build environment.

#include <iostream>

#include "core/report/table.hpp"
#include "minihpx/config.hpp"

int main() {
  std::cout << "### Table 1: software stack and versions\n\n";

  rveval::report::Table t("Software stack (this reproduction vs. paper)");
  t.headers({"component", "paper used", "this repo provides", "version"});
  t.row({"compiler", "gcc 11.3.0 / 12.2.0", "see build (C++20)",
#if defined(__GNUC__)
         std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
             "." + std::to_string(__GNUC_PATCHLEVEL__)
#else
         "unknown"
#endif
  });
  const std::string v = std::to_string(mhpx::version_major) + "." +
                        std::to_string(mhpx::version_minor) + "." +
                        std::to_string(mhpx::version_patch);
  t.row({"AMT runtime", "HPX d1042a9 (v1.9)", "minihpx (src/minihpx)", v});
  t.row({"portability layer", "Kokkos 7a18e97", "minikokkos (src/minikokkos)",
         v});
  t.row({"integration", "HPX-Kokkos 246b4b8", "mkk::Hpx space + futures", v});
  t.row({"allocator", "tcmalloc 9.9.5 / jemalloc 5.2.1", "system malloc",
         "n/a"});
  t.row({"topology", "hwloc 2.7.0/2.10", "std::thread::hardware_concurrency",
         "n/a"});
  t.row({"application", "Octo-Tiger (Kokkos kernels)",
         "octotiger miniapp (src/octotiger)", v});
  t.row({"context switching", "Boost.Context 1.79/1.82",
         "POSIX ucontext fibers (src/minihpx/fiber)", v});
  t.print(std::cout);
  return 0;
}
