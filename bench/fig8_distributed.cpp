// Fig. 8 reproduction: distributed scaling of the rotating star.
//
// The paper compares cells/s on one VisionFive2 board (4 cores) against two
// boards (4+4 cores) with the TCP and MPI parcelports, plus one and two
// Supercomputer-Fugaku nodes restricted to 4 cores each. Observed: TCP
// speed-up 1.85x, MPI 1.55x, and A64FX ~7x faster than the boards on this
// memory-intense workload.
//
// We execute the real single- and two-locality runs (parcels included) on
// the host, capture per-locality traces, and price them on the JH7110 and
// A64FX models with the GbE-TCP / GbE-MPI / Tofu-D network models.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <sys/wait.h>

#include "bench/common.hpp"
#include "core/power/attribution.hpp"
#include "core/simd/pricing.hpp"
#include "core/power/energy.hpp"
#include "minihpx/apex/remote.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace {

namespace md = mhpx::dist;

struct Captured {
  std::vector<rveval::sim::Phase> phases;
  std::size_t cells = 0;
  octo::Cons totals;      ///< conserved totals (process-leg oracle)
  double last_dt = 0.0;
};

/// What the federated sampler saw during a run: final value of every
/// sampled "/loc<i>..." counter, read from locality 0 via apex::remote.
struct FederationSnapshot {
  std::vector<std::pair<std::string, double>> finals;
  std::size_t rounds = 0;
};

Captured run_single(const octo::Options& base) {
  Captured out;
  out.phases = bench_common::capture_trace(base.threads, [&](auto& trace) {
    octo::Simulation sim(base);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });
    sim.run();
    out.cells = sim.stats().cells_processed;
  });
  return out;
}

Captured run_distributed(const octo::Options& base, md::FabricKind fabric,
                         FederationSnapshot* federation = nullptr) {
  Captured out;
  rveval::sim::TraceCollector trace;
  {
    octo::Options opt = base;
    opt.localities = 2;
    octo::dist::DistSimulation sim(opt, fabric);
    trace.map_scheduler(&sim.runtime().locality(0).scheduler(), 0);
    trace.map_scheduler(&sim.runtime().locality(1).scheduler(), 1);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });

    std::unique_ptr<mhpx::apex::remote::FederatedSampler> sampler;
    if (federation != nullptr) {
      // Per-board power counters in each locality's own registry, so the
      // federation reads modelled joules the way the paper reads one wall
      // meter per board; the sampler mirrors every sample into the trace
      // as a counter lane on the owning locality's pid.
      const auto board = rveval::power::visionfive2_board();
      for (unsigned i = 0; i < sim.runtime().num_localities(); ++i) {
        auto& loc = sim.runtime().locality(i);
        rveval::power::register_power_counters(loc.counters_block(),
                                               loc.scheduler(), board, i);
      }
      sampler =
          std::make_unique<mhpx::apex::remote::FederatedSampler>(sim.runtime());
      mhpx::apex::remote::FederatedSamplerConfig cfg;
      cfg.interval_seconds = 0.005;
      cfg.patterns = {"/threads/**", "/parcels/**", "/power/**"};
      cfg.emit_trace_counters = true;
      sampler->start(cfg);
    }

    sim.run();
    out.cells = sim.stats().cells_processed;
    out.totals = sim.totals();
    out.last_dt = sim.stats().last_dt;
    sim.runtime().wait_all_idle();
    for (unsigned i = 0; i < sim.runtime().num_localities(); ++i) {
      bench_common::accumulate_task_wait(
          sim.runtime().locality(i).histograms().snapshot(
              "/threads/default/task-wait"));
    }
    if (sampler != nullptr) {
      sampler->stop();
      federation->rounds = sampler->samples();
      for (const mhpx::apex::Series& s : sampler->series()) {
        federation->finals.emplace_back(s.name,
                                        s.v.empty() ? 0.0 : s.v.back());
      }
    }
  }
  out.phases = trace.finish();
  return out;
}

double price_single(const Captured& cap, const rveval::arch::CpuModel& cpu,
                    unsigned cores) {
  rveval::sim::CoreSimulator sim(cpu);
  rveval::sim::SimOptions opt;
  opt.cores = cores;
  opt.simd_speedup =
      rveval::simd::speedup_at_width(cpu, cpu.vector_length);
  return static_cast<double>(cap.cells) / sim.total_seconds(cap.phases, opt);
}

/// Run a command, capturing stdout (stderr passes through to the console).
struct RunOutput {
  int exit_code = -1;
  std::string out;
};

RunOutput run_cmd(const std::string& cmd) {
  RunOutput r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return r;
  }
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    r.out += buf;
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  }
  return r;
}

/// Parse the worker's "TOTAL <name> <decimal> 0x<bits>" lines into raw
/// IEEE-754 bits, so the cross-process comparison needs no decimal
/// round-trip.
std::map<std::string, std::uint64_t> parse_totals(const std::string& out) {
  std::map<std::string, std::uint64_t> bits;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    std::string name;
    std::string dec;
    std::string hex;
    if (ls >> tag >> name >> dec >> hex && tag == "TOTAL") {
      bits[name] = std::stoull(hex, nullptr, 16);
    }
  }
  return bits;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double price_distributed(const Captured& cap,
                         const rveval::arch::CpuModel& cpu,
                         const rveval::arch::NetworkModel& net,
                         unsigned cores_per_node) {
  rveval::sim::CoreSimulator sim(cpu);
  rveval::sim::SimOptions opt;
  opt.cores = cores_per_node;
  opt.simd_speedup =
      rveval::simd::speedup_at_width(cpu, cpu.vector_length);
  return static_cast<double>(cap.cells) /
         sim.total_seconds_distributed(cap.phases, 2, net, opt);
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::banner("Fig 8",
                       "distributed scaling: 1 vs 2 boards (TCP/MPI) and "
                       "1 vs 2 Fugaku nodes at 4 cores");

  octo::Options base;
  base.max_level = 3;
  base.stop_step = 5;
  base.threads = 4;
  std::vector<std::string> args(argv + 1, argv + argc);
  // --launch=process adds a leg where both localities live in separate OS
  // processes (spawned rveval_locality workers over the tcp-multiproc
  // parcelport); its totals must match the in-process TCP leg bit for bit.
  bool launch_process = false;
  args.erase(std::remove_if(args.begin(), args.end(),
                            [&](const std::string& a) {
                              if (a == "--launch=process") {
                                launch_process = true;
                                return true;
                              }
                              return false;
                            }),
             args.end());
  const auto io = bench_common::parse_io(args, "BENCH_fig8.json");
  base.parse_cli(args);
  std::cout << "mesh: max_level=" << base.max_level << "\n";

  // Real executions: single-locality, and two-locality over each fabric
  // (the TCP one sends real loopback-socket parcels; mpisim models the MPI
  // protocol — see DESIGN.md).
  const Captured single = run_single(base);
  if (mhpx::apex::trace::enabled()) {
    // Start the exported trace at the distributed runs: the merged fig8
    // Perfetto file tells the cross-locality story (two pids, parcel flow
    // arrows, per-locality counter lanes).
    mhpx::apex::trace::clear();
  }
  FederationSnapshot federation;
  const Captured dist_tcp =
      run_distributed(base, md::FabricKind::tcp, &federation);
  const std::vector<mhpx::apex::trace::Event> tcp_events =
      mhpx::apex::trace::snapshot();
  const Captured dist_mpi = run_distributed(base, md::FabricKind::mpisim);

  // The --launch=process leg: the same two-locality TCP run, but every
  // locality in its own OS process. Worker options are re-derived from the
  // scenario name plus the numeric mesh fields, so only scenario /
  // max_level / stop_step / threads propagate (exotic parse_cli overrides
  // such as --theta do not — the legs would diverge silently otherwise).
  int process_bitwise_match = -1;  // -1 = leg not run
  if (launch_process) {
    std::ostringstream cmd;
    cmd << RVEVAL_WORKER_BIN << " --spawn --localities=2"
        << " --threads=" << base.threads
        << " --scenario=" << octo::scenario::for_options(base).name
        << " --steps=" << base.stop_step
        << " --max-level=" << base.max_level;
    std::cout << "\n--launch=process leg: " << cmd.str() << "\n";
    const RunOutput proc = run_cmd(cmd.str());
    if (proc.exit_code != 0) {
      std::cerr << "process leg FAILED (exit " << proc.exit_code << "):\n"
                << proc.out;
      return 1;
    }
    const auto bits = parse_totals(proc.out);
    const std::vector<std::pair<std::string, double>> expect = {
        {"rho", dist_tcp.totals.rho},   {"sx", dist_tcp.totals.sx},
        {"sy", dist_tcp.totals.sy},     {"sz", dist_tcp.totals.sz},
        {"egas", dist_tcp.totals.egas}, {"last_dt", dist_tcp.last_dt}};
    process_bitwise_match = 1;
    for (const auto& [name, value] : expect) {
      const auto it = bits.find(name);
      const bool ok = it != bits.end() && it->second == bits_of(value);
      if (!ok) {
        process_bitwise_match = 0;
      }
      std::cout << "  " << name << ": "
                << (ok ? "bitwise identical to in-process TCP"
                       : "MISMATCH vs in-process TCP")
                << "\n";
    }
    if (process_bitwise_match != 1) {
      std::cerr << "process leg totals diverged from in-process TCP:\n"
                << proc.out;
      return 1;
    }
    std::cout << "  all conserved totals + last_dt bitwise identical "
                 "across OS processes\n";
  }

  const auto rv = rveval::arch::jh7110();
  const auto fx = rveval::arch::a64fx();

  const double rv1 = price_single(single, rv, 4);
  const double rv2_tcp =
      price_distributed(dist_tcp, rv, rveval::arch::gbe_tcp(), 4);
  const double rv2_mpi =
      price_distributed(dist_mpi, rv, rveval::arch::gbe_mpi(), 4);
  const double fx1 = price_single(single, fx, 4);
  const double fx2 =
      price_distributed(dist_tcp, fx, rveval::arch::tofu_d(), 4);

  rveval::report::Table t("Fig 8: cells processed per second");
  t.headers({"system", "nodes", "parcelport", "cells/s", "speed-up vs 1"});
  auto num = [](double v) { return rveval::report::Table::num(v, 0); };
  t.row({"VisionFive2", "1", "-", num(rv1), "1.00"});
  t.row({"VisionFive2", "2", "TCP", num(rv2_tcp),
         rveval::report::Table::num(rv2_tcp / rv1, 2)});
  t.row({"VisionFive2", "2", "MPI", num(rv2_mpi),
         rveval::report::Table::num(rv2_mpi / rv1, 2)});
  t.row({"Fugaku A64FX (4 cores)", "1", "-", num(fx1),
         rveval::report::Table::num(fx1 / rv1, 2)});
  t.row({"Fugaku A64FX (4 cores)", "2", "Tofu-D", num(fx2),
         rveval::report::Table::num(fx2 / rv1, 2)});
  t.print(std::cout);

  std::cout << "shape checks (paper: TCP 1.85x, MPI 1.55x, A64FX ~7x "
               "faster on 1 node):\n"
            << "  TCP speed-up:  " << rv2_tcp / rv1 << "x\n"
            << "  MPI speed-up:  " << rv2_mpi / rv1 << "x\n"
            << "  TCP > MPI:     " << (rv2_tcp > rv2_mpi ? "yes" : "NO")
            << "\n"
            << "  A64FX / RISC-V (1 node): " << fx1 / rv1 << "x\n";

  // Federated-counter digest: the final sample of every power counter plus
  // the headline scheduler/parcelport state, all read from locality 0
  // through the apex::remote protocol during the TCP run.
  rveval::report::Table fed(
      "federated counters (TCP run; locality 0 reads every locality via "
      "apex::remote)");
  fed.headers({"counter", "final value"});
  for (const auto& [name, value] : federation.finals) {
    if (name.find("/power/") != std::string::npos ||
        name.find("idle-rate") != std::string::npos ||
        name.find("count/sent") != std::string::npos ||
        name.find("count/executed") != std::string::npos) {
      fed.row({name, rveval::report::Table::num(value, 3)});
    }
  }
  fed.print(std::cout);
  std::cout << "federation rounds: " << federation.rounds << "\n";

  // Per-phase energy attribution over the traced TCP run: each phase
  // window priced on the board model from the per-locality busy time the
  // trace recorded (empty when run without --trace-out).
  const auto board = rveval::power::visionfive2_board();
  const auto phase_energy =
      rveval::power::attribute_phase_energy(tcp_events, board, 2);
  rveval::report::Table en(
      "per-phase energy attribution (TCP run, 2x VisionFive2 board model)");
  en.headers({"phase", "time [s]", "busy core-s loc0", "busy core-s loc1",
              "energy [J]"});
  double tcp_joules = 0.0;
  for (const rveval::power::PhaseEnergy& pe : phase_energy) {
    tcp_joules += pe.joules;
    en.row({pe.phase, rveval::report::Table::num(pe.seconds, 4),
            rveval::report::Table::num(
                pe.busy_core_seconds.empty() ? 0.0 : pe.busy_core_seconds[0],
                4),
            rveval::report::Table::num(pe.busy_core_seconds.size() > 1
                                           ? pe.busy_core_seconds[1]
                                           : 0.0,
                                       4),
            rveval::report::Table::num(pe.joules, 3)});
  }
  if (!phase_energy.empty()) {
    en.print(std::cout);
  }

  rveval::report::BenchReport report(
      "fig8_distributed",
      "distributed scaling: 1 vs 2 boards (TCP/MPI) and 1 vs 2 Fugaku "
      "nodes at 4 cores");
  report.metric("scenario", octo::scenario::for_options(base).name)
      .metric("max_level", static_cast<double>(base.max_level))
      .metric("stop_step", static_cast<double>(base.stop_step))
      .metric("tcp_speedup", rv2_tcp / rv1)
      .metric("mpi_speedup", rv2_mpi / rv1)
      .metric("a64fx_over_riscv_1node", fx1 / rv1)
      .metric("federation_rounds", static_cast<double>(federation.rounds))
      .metric("tcp_run_energy_j_host_attributed", tcp_joules)
      .metric("process_launch", launch_process ? 1.0 : 0.0)
      .metric("process_bitwise_match",
              static_cast<double>(process_bitwise_match))
      .metric("task_wait_p50_seconds",
              bench_common::task_wait_accumulator().quantile(0.5))
      .metric("task_wait_p99_seconds",
              bench_common::task_wait_accumulator().quantile(0.99))
      .metric("task_wait_events",
              static_cast<double>(bench_common::task_wait_accumulator().count))
      .add_table(t)
      .add_table(fed)
      .add_table(en);
  report.note(
      "federated counters sampled via apex::remote from locality 0; "
      "per-phase joules attribute the host-side traced busy time on the "
      "VisionFive2 board model (modelled instrument, not silicon)");
  bench_common::finish_io(io, report);
  return 0;
}
