// Fig. 8 reproduction: distributed scaling of the rotating star.
//
// The paper compares cells/s on one VisionFive2 board (4 cores) against two
// boards (4+4 cores) with the TCP and MPI parcelports, plus one and two
// Supercomputer-Fugaku nodes restricted to 4 cores each. Observed: TCP
// speed-up 1.85x, MPI 1.55x, and A64FX ~7x faster than the boards on this
// memory-intense workload.
//
// We execute the real single- and two-locality runs (parcels included) on
// the host, capture per-locality traces, and price them on the JH7110 and
// A64FX models with the GbE-TCP / GbE-MPI / Tofu-D network models.

#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/driver.hpp"

namespace {

namespace md = mhpx::dist;

struct Captured {
  std::vector<rveval::sim::Phase> phases;
  std::size_t cells = 0;
};

Captured run_single(const octo::Options& base) {
  Captured out;
  out.phases = bench_common::capture_trace(base.threads, [&](auto& trace) {
    octo::Simulation sim(base);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });
    sim.run();
    out.cells = sim.stats().cells_processed;
  });
  return out;
}

Captured run_distributed(const octo::Options& base, md::FabricKind fabric) {
  Captured out;
  rveval::sim::TraceCollector trace;
  {
    octo::Options opt = base;
    opt.localities = 2;
    octo::dist::DistSimulation sim(opt, fabric);
    trace.map_scheduler(&sim.runtime().locality(0).scheduler(), 0);
    trace.map_scheduler(&sim.runtime().locality(1).scheduler(), 1);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });
    sim.run();
    out.cells = sim.stats().cells_processed;
    sim.runtime().wait_all_idle();
  }
  out.phases = trace.finish();
  return out;
}

double price_single(const Captured& cap, const rveval::arch::CpuModel& cpu,
                    unsigned cores) {
  rveval::sim::CoreSimulator sim(cpu);
  rveval::sim::SimOptions opt;
  opt.cores = cores;
  opt.simd_speedup = cpu.simd_kernel_speedup;  // SIMD-typed kernels
  return static_cast<double>(cap.cells) / sim.total_seconds(cap.phases, opt);
}

double price_distributed(const Captured& cap,
                         const rveval::arch::CpuModel& cpu,
                         const rveval::arch::NetworkModel& net,
                         unsigned cores_per_node) {
  rveval::sim::CoreSimulator sim(cpu);
  rveval::sim::SimOptions opt;
  opt.cores = cores_per_node;
  opt.simd_speedup = cpu.simd_kernel_speedup;  // SIMD-typed kernels
  return static_cast<double>(cap.cells) /
         sim.total_seconds_distributed(cap.phases, 2, net, opt);
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::banner("Fig 8",
                       "distributed scaling: 1 vs 2 boards (TCP/MPI) and "
                       "1 vs 2 Fugaku nodes at 4 cores");

  octo::Options base;
  base.max_level = 3;
  base.stop_step = 5;
  base.threads = 4;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto io = bench_common::parse_io(args, "BENCH_fig8.json");
  base.parse_cli(args);
  std::cout << "mesh: max_level=" << base.max_level << "\n";

  // Real executions: single-locality, and two-locality over each fabric
  // (the TCP one sends real loopback-socket parcels; mpisim models the MPI
  // protocol — see DESIGN.md).
  const Captured single = run_single(base);
  const Captured dist_tcp = run_distributed(base, md::FabricKind::tcp);
  const Captured dist_mpi = run_distributed(base, md::FabricKind::mpisim);

  const auto rv = rveval::arch::jh7110();
  const auto fx = rveval::arch::a64fx();

  const double rv1 = price_single(single, rv, 4);
  const double rv2_tcp =
      price_distributed(dist_tcp, rv, rveval::arch::gbe_tcp(), 4);
  const double rv2_mpi =
      price_distributed(dist_mpi, rv, rveval::arch::gbe_mpi(), 4);
  const double fx1 = price_single(single, fx, 4);
  const double fx2 =
      price_distributed(dist_tcp, fx, rveval::arch::tofu_d(), 4);

  rveval::report::Table t("Fig 8: cells processed per second");
  t.headers({"system", "nodes", "parcelport", "cells/s", "speed-up vs 1"});
  auto num = [](double v) { return rveval::report::Table::num(v, 0); };
  t.row({"VisionFive2", "1", "-", num(rv1), "1.00"});
  t.row({"VisionFive2", "2", "TCP", num(rv2_tcp),
         rveval::report::Table::num(rv2_tcp / rv1, 2)});
  t.row({"VisionFive2", "2", "MPI", num(rv2_mpi),
         rveval::report::Table::num(rv2_mpi / rv1, 2)});
  t.row({"Fugaku A64FX (4 cores)", "1", "-", num(fx1),
         rveval::report::Table::num(fx1 / rv1, 2)});
  t.row({"Fugaku A64FX (4 cores)", "2", "Tofu-D", num(fx2),
         rveval::report::Table::num(fx2 / rv1, 2)});
  t.print(std::cout);

  std::cout << "shape checks (paper: TCP 1.85x, MPI 1.55x, A64FX ~7x "
               "faster on 1 node):\n"
            << "  TCP speed-up:  " << rv2_tcp / rv1 << "x\n"
            << "  MPI speed-up:  " << rv2_mpi / rv1 << "x\n"
            << "  TCP > MPI:     " << (rv2_tcp > rv2_mpi ? "yes" : "NO")
            << "\n"
            << "  A64FX / RISC-V (1 node): " << fx1 / rv1 << "x\n";

  rveval::report::BenchReport report(
      "fig8_distributed",
      "distributed scaling: 1 vs 2 boards (TCP/MPI) and 1 vs 2 Fugaku "
      "nodes at 4 cores");
  report.metric("max_level", static_cast<double>(base.max_level))
      .metric("stop_step", static_cast<double>(base.stop_step))
      .metric("tcp_speedup", rv2_tcp / rv1)
      .metric("mpi_speedup", rv2_mpi / rv1)
      .metric("a64fx_over_riscv_1node", fx1 / rv1)
      .add_table(t);
  bench_common::finish_io(io, report);
  return 0;
}
