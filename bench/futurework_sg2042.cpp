// Future-work reproduction (paper §8): project Octo-Tiger onto the 64-core
// SOPHON SG2042 (Milk-V Pioneer), the RISC-V desktop part the paper
// anticipates "will have 64 cores for larger scaling runs and improved
// memory and network controllers".
//
// The same captured rotating-star trace as Fig. 7 is priced on the SG2042
// model across 4..64 cores and compared against the VisionFive2 and the
// A64FX 4-core slice.

#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/simd/pricing.hpp"
#include "octotiger/driver.hpp"

int main(int argc, char** argv) {
  bench_common::banner("Future work (§8)",
                       "Octo-Tiger projected onto the Milk-V Pioneer "
                       "(SG2042, 64 RISC-V cores)");

  octo::Options base;
  base.max_level = 3;
  base.stop_step = 5;
  base.threads = 4;
  std::vector<std::string> args(argv + 1, argv + argc);
  base.parse_cli(args);

  std::size_t cells = 0;
  const auto phases = bench_common::capture_trace(base.threads, [&](auto& trace) {
    octo::Simulation sim(base);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });
    sim.run();
    cells = sim.stats().cells_processed;
  });

  auto rate = [&](const rveval::arch::CpuModel& cpu, unsigned cores) {
    rveval::sim::CoreSimulator sim(cpu);
    rveval::sim::SimOptions opt;
    opt.cores = cores;
    opt.simd_speedup =
        rveval::simd::speedup_at_width(cpu, cpu.vector_length);
    return static_cast<double>(cells) / sim.total_seconds(phases, opt);
  };

  const auto vf2 = rveval::arch::jh7110();
  const auto sg = rveval::arch::sg2042();
  const auto fx = rveval::arch::a64fx();
  const double baseline = rate(vf2, 4);

  rveval::report::Table t("rotating star, cells/s (projected)");
  t.headers({"system", "cores", "cells/s", "vs VisionFive2(4c)"});
  auto add = [&](const rveval::arch::CpuModel& cpu, unsigned cores) {
    const double r = rate(cpu, cores);
    t.row({cpu.name, std::to_string(cores),
           rveval::report::Table::num(r, 0),
           rveval::report::Table::num(r / baseline, 2) + "x"});
  };
  add(vf2, 4);
  for (const unsigned c : {4u, 8u, 16u, 32u, 64u}) {
    add(sg, c);
  }
  add(fx, 4);
  t.print(std::cout);

  std::cout << "shape: per-core the C920 is ~"
            << rveval::report::Table::num(
                   sg.scalar_flops_per_core() / vf2.scalar_flops_per_core(),
                   1)
            << "x a U74 core; at 64 cores the Pioneer overtakes the A64FX\n"
            << "4-core slice on this workload if the task supply keeps all "
               "cores busy\n(bounded here by the "
            << cells / 5 / octo::CELLS_PER_GRID
            << "-leaf mesh's task parallelism per phase).\n";
  return 0;
}
