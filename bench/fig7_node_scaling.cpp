// Fig. 7 reproduction: Octo-Tiger node-level scaling on a VisionFive2.
//
// The paper runs the rotating star (refinement level 4: 1184 leaves,
// 606208 cells) for five time steps, from one core to all four, in three
// kernel configurations: the old pure-HPX kernels ("legacy"), Kokkos with
// the Serial execution space, and Kokkos with the HPX execution space.
// Reported metric: cells processed per second.
//
// We execute the same problem end-to-end on the host (level 3 by default so
// the binary stays ~1 minute; pass --max_level=4 for the paper's exact
// mesh — the cells/s metric is per-cell normalized and level-independent),
// capture one trace per kernel configuration, and price it on the JH7110
// model at 1..4 cores.

#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/simd/pricing.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace {

std::vector<rveval::sim::Phase> run_config(const octo::Options& base,
                                           mkk::KernelType kind,
                                           std::size_t& cells_out) {
  octo::Options opt = base;
  opt.hydro_kernel = kind;
  opt.multipole_kernel = kind;
  opt.monopole_kernel = kind;
  std::size_t cells = 0;
  auto phases = bench_common::capture_trace(opt.threads, [&](auto& trace) {
    octo::Simulation sim(opt);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });
    sim.run();
    cells = sim.stats().cells_processed;
  });
  cells_out = cells;
  return phases;
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::banner("Fig 7",
                       "Octo-Tiger node-level scaling (rotating star, 5 "
                       "steps) on the VisionFive2 model");

  octo::Options base;
  base.max_level = 3;  // default host-sized mesh; --max_level=4 = paper mesh
  base.stop_step = 5;
  base.threads = 4;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto io = bench_common::parse_io(args, "BENCH_fig7.json");
  base.parse_cli(args);
  std::cout << "mesh: max_level=" << base.max_level << "\n";

  const struct {
    const char* label;
    mkk::KernelType kind;
  } configs[] = {
      {"legacy (no Kokkos)", mkk::KernelType::legacy},
      {"Kokkos Serial space", mkk::KernelType::kokkos_serial},
      {"Kokkos HPX space", mkk::KernelType::kokkos_hpx},
  };

  const auto cpu = rveval::arch::jh7110();
  rveval::sim::CoreSimulator sim(cpu);
  rveval::report::Table t("Fig 7: cells processed per second vs cores (" +
                          cpu.name + ")");
  t.headers({"configuration", "cores", "cells/s"});

  std::vector<std::vector<double>> all_rates;
  for (const auto& config : configs) {
    std::size_t cells = 0;
    const auto phases = run_config(base, config.kind, cells);
    std::vector<double> rates;
    for (unsigned c = 1; c <= 4; ++c) {
      rveval::sim::SimOptions opt;
      opt.cores = c;
      // Octo-Tiger's Kokkos kernels use explicit SIMD types; price them
      // at the CPU's full hardware lane width (width-aware Eq. 2 hook —
      // identical to the historical calibrated constant at full width).
      opt.simd_speedup =
          rveval::simd::speedup_at_width(cpu, cpu.vector_length);
      const double seconds = sim.total_seconds(phases, opt);
      const double rate = static_cast<double>(cells) / seconds;
      rates.push_back(rate);
      t.row({config.label, std::to_string(c),
             rveval::report::Table::num(rate, 0)});
    }
    all_rates.push_back(std::move(rates));
  }
  t.print(std::cout);

  const double legacy4 = all_rates[0][3];
  const double serial4 = all_rates[1][3];
  const double hpx4 = all_rates[2][3];
  std::cout << "shape checks (paper: all three scale; Kokkos-Serial >= "
               "Kokkos-HPX):\n"
            << "  scaling 1->4 cores (Kokkos Serial): "
            << all_rates[1][3] / all_rates[1][0] << "x\n"
            << "  Kokkos-Serial >= Kokkos-HPX at 4 cores: "
            << (serial4 >= hpx4 ? "yes" : "NO") << "\n"
            << "  legacy ~ Kokkos-Serial at 4 cores (miniapp shares the "
               "kernel math): "
            << legacy4 / serial4 << "\n";

  rveval::report::BenchReport report(
      "fig7_node_scaling",
      "Octo-Tiger node-level scaling (rotating star, 5 steps) on the "
      "VisionFive2 model");
  report.metric("scenario", octo::scenario::for_options(base).name)
      .metric("max_level", static_cast<double>(base.max_level))
      .metric("stop_step", static_cast<double>(base.stop_step))
      .metric("cpu_model", cpu.name)
      .metric("scaling_1_to_4_kokkos_serial", all_rates[1][3] / all_rates[1][0])
      .metric("serial_over_hpx_at_4", serial4 / hpx4)
      .metric("legacy_over_serial_at_4", legacy4 / serial4)
      .metric("task_wait_p50_seconds",
              bench_common::task_wait_accumulator().quantile(0.5))
      .metric("task_wait_p99_seconds",
              bench_common::task_wait_accumulator().quantile(0.99))
      .metric("task_wait_events",
              static_cast<double>(bench_common::task_wait_accumulator().count))
      .add_table(t);
  bench_common::finish_io(io, report);
  return 0;
}
