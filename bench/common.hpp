#pragma once

/// \file common.hpp
/// Shared helpers for the figure/table reproduction binaries: run the real
/// workload under a trace collector, then price the trace on the modelled
/// architectures (DESIGN.md §1 explains why pricing replaces wall clocks:
/// the build host has neither RISC-V/A64FX silicon nor multiple cores).

#include <iostream>
#include <string>
#include <vector>

#include "core/rveval.hpp"
#include "minihpx/runtime.hpp"

namespace bench_common {

/// Execute \p workload under a fresh minihpx runtime and trace collector;
/// returns the captured phases.
template <typename Workload>
std::vector<rveval::sim::Phase> capture_trace(unsigned threads,
                                              Workload&& workload) {
  rveval::sim::TraceCollector trace;
  {
    mhpx::Runtime rt{{threads, 256 * 1024}};
    trace.map_scheduler(&rt.scheduler(), 0);
    workload(trace);
    rt.scheduler().wait_idle();
  }
  return trace.finish();
}

/// GFLOP/s of an analytic FLOP total over a simulated duration.
inline double gflops(double flops, double seconds) {
  return flops / seconds / 1e9;
}

/// Print the standard bench banner so every binary's output is
/// self-describing in bench_output.txt.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "### " << id << ": " << what << "\n"
            << "### (real code executed on the build host; rates priced on "
               "the paper's Table-2 architecture models — see DESIGN.md)\n\n";
}

}  // namespace bench_common
