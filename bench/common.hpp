#pragma once

/// \file common.hpp
/// Shared helpers for the figure/table reproduction binaries: run the real
/// workload under a trace collector, then price the trace on the modelled
/// architectures (DESIGN.md §1 explains why pricing replaces wall clocks:
/// the build host has neither RISC-V/A64FX silicon nor multiple cores).

#include <iostream>
#include <string>
#include <vector>

#include "core/rveval.hpp"
#include "minihpx/apex/histogram.hpp"
#include "minihpx/apex/task_trace.hpp"
#include "minihpx/runtime.hpp"

namespace bench_common {

/// Merged /threads/default/task-wait distribution across every runtime this
/// bench process has retired so far. Scheduler histograms die with their
/// runtime, so each run's buckets are folded in here before teardown; the
/// report chains read p50/p99 off the merged snapshot at the end (bucket
/// merges are exact integer adds, so run order does not matter).
inline mhpx::apex::HistogramSnapshot& task_wait_accumulator() {
  static mhpx::apex::HistogramSnapshot acc;
  return acc;
}

/// Fold one run's task-wait snapshot into the process accumulator.
inline void accumulate_task_wait(const mhpx::apex::HistogramSnapshot& s) {
  task_wait_accumulator().merge(s);
}

/// Execute \p workload under a fresh minihpx runtime and trace collector;
/// returns the captured phases.
template <typename Workload>
std::vector<rveval::sim::Phase> capture_trace(unsigned threads,
                                              Workload&& workload) {
  rveval::sim::TraceCollector trace;
  {
    mhpx::Runtime rt{{threads, 256 * 1024}};
    trace.map_scheduler(&rt.scheduler(), 0);
    workload(trace);
    rt.scheduler().wait_idle();
    accumulate_task_wait(mhpx::apex::HistogramRegistry::instance().snapshot(
        "/threads/default/task-wait"));
  }
  return trace.finish();
}

/// GFLOP/s of an analytic FLOP total over a simulated duration.
inline double gflops(double flops, double seconds) {
  return flops / seconds / 1e9;
}

/// Machine-readable output destinations shared by every bench binary.
struct BenchIo {
  std::string json_out;   ///< bench report path ("" = don't write)
  std::string trace_out;  ///< Chrome-trace path ("" = don't write)
};

/// Consume `--json-out=<path>` / `--trace-out=<path>` from \p args (so the
/// strict octo::Options::parse_cli never sees them) and fill the defaults.
/// A value of "none" disables that output. When a trace path is requested,
/// tracing is switched on so there is something to export.
inline BenchIo parse_io(std::vector<std::string>& args,
                        std::string default_json = "",
                        std::string default_trace = "") {
  BenchIo io{std::move(default_json), std::move(default_trace)};
  auto consume = [&args](const std::string& prefix, std::string& slot) {
    for (auto it = args.begin(); it != args.end();) {
      if (it->rfind(prefix, 0) == 0) {
        slot = it->substr(prefix.size());
        it = args.erase(it);
      } else {
        ++it;
      }
    }
  };
  consume("--json-out=", io.json_out);
  consume("--trace-out=", io.trace_out);
  if (io.json_out == "none") {
    io.json_out.clear();
  }
  if (io.trace_out == "none") {
    io.trace_out.clear();
  }
  if (!io.trace_out.empty()) {
    mhpx::apex::trace::enable(true);
  }
  return io;
}

/// Write the report and/or trace selected by \p io; prints one line per
/// artifact so bench_output.txt records where they went.
inline void finish_io(const BenchIo& io,
                      const rveval::report::BenchReport& report) {
  if (!io.json_out.empty()) {
    if (report.write(io.json_out)) {
      std::cout << "\nwrote report: " << io.json_out << "\n";
    } else {
      std::cout << "\nFAILED to write report: " << io.json_out << "\n";
    }
  }
  if (!io.trace_out.empty()) {
    if (mhpx::apex::trace::export_chrome_file(io.trace_out)) {
      std::cout << "wrote trace:  " << io.trace_out << " ("
                << mhpx::apex::trace::event_count() << " events)\n";
    } else {
      std::cout << "FAILED to write trace: " << io.trace_out << "\n";
    }
  }
}

/// Print the standard bench banner so every binary's output is
/// self-describing in bench_output.txt.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "### " << id << ": " << what << "\n"
            << "### (real code executed on the build host; rates priced on "
               "the paper's Table-2 architecture models — see DESIGN.md)\n\n";
}

}  // namespace bench_common
