/// \file rveval_locality.cpp
/// One locality as one OS process (--launch=process mode, DESIGN.md §13).
///
/// Worker (--rank=i, i > 0): join the cluster through the rendezvous
/// endpoint, host locality i (components arrive as create parcels from the
/// orchestrator — the scenario never needs to be repeated on the command
/// line), and block until rank 0's runtime broadcasts shutdown.
///
/// Orchestrator (--rank=0, the default): drive a DistSimulation over the
/// multi-process cluster and print the conserved totals in both decimal and
/// raw IEEE-754 bits — the lines the bitwise cross-process oracle greps.
/// With --spawn it forks its own workers (re-exec'ing this binary), so
///
///   rveval_locality --spawn --localities=3 --scenario=rotating_star
///
/// is a complete three-process run. Without --spawn, start the workers by
/// hand first:
///
///   rveval_locality --rank=1 --localities=3 --rendezvous=127.0.0.1:7000 &
///   rveval_locality --rank=2 --localities=3 --rendezvous=127.0.0.1:7000 &
///   rveval_locality --rank=0 --localities=3 --rendezvous=127.0.0.1:7000

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "core/power/attribution.hpp"
#include "core/power/energy.hpp"
#include "minihpx/apex/remote.hpp"
#include "minihpx/distributed/launch.hpp"
#include "minihpx/distributed/runtime.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/options.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace md = mhpx::dist;

namespace {

struct Cli {
  unsigned rank = 0;
  unsigned localities = 3;
  unsigned threads = 2;
  std::string rendezvous = "127.0.0.1:0";
  double bootstrap_timeout_s = 30.0;
  bool spawn = false;            ///< rank 0: fork the workers myself
  unsigned start_delay_ms = 0;   ///< slow-starter injection (tests)
  std::string scenario = "rotating_star";
  unsigned steps = 2;
  unsigned max_level = 1;
  std::string write_checkpoint;  ///< rank 0: write a restart file after run
  std::string restore;           ///< rank 0: restore before running
  bool print_counters = false;   ///< rank 0: federated apex digest
};

bool parse_flag(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--rank=N] --localities=N [--threads=T]\n"
      "          [--rendezvous=host:port] [--bootstrap-timeout=S]\n"
      "          [--spawn] [--start-delay-ms=D]\n"
      "          [--scenario=NAME] [--steps=N] [--max-level=L]\n"
      "          [--write-checkpoint=PATH] [--restore=PATH]\n"
      "          [--print-counters]\n",
      argv0);
  return 2;
}

/// Path of this binary, for --spawn re-exec.
std::string self_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

void print_double(const char* name, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  std::printf("TOTAL %s %.17g 0x%016" PRIx64 "\n", name, v, bits);
}

int run_worker(const Cli& cli) {
  if (cli.start_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cli.start_delay_ms));
  }
  md::ProcessLaunchConfig lc;
  lc.enabled = true;
  lc.rank = cli.rank;
  lc.rendezvous = cli.rendezvous;
  lc.bootstrap_timeout_s = cli.bootstrap_timeout_s;

  md::DistributedRuntime::Config rcfg;
  rcfg.num_localities = cli.localities;
  rcfg.threads_per_locality = cli.threads;
  rcfg.fabric = md::FabricKind::tcp;
  rcfg.launch = lc;
  md::DistributedRuntime rt(rcfg);

  // The modelled board meter for this rank, in the locality's own registry
  // so the orchestrator's federated /power/** reads cross the process
  // boundary exactly like they cross localities in-process.
  auto& loc = rt.local_locality();
  rveval::power::register_power_counters(loc.counters_block(),
                                         loc.scheduler(),
                                         rveval::power::visionfive2_board(),
                                         rt.local_rank());
  std::fprintf(stderr, "rveval_locality: rank %u up (%u localities)\n",
               cli.rank, cli.localities);
  rt.wait_for_remote_shutdown();
  std::fprintf(stderr, "rveval_locality: rank %u shutting down\n", cli.rank);
  return 0;
}

int run_orchestrator(const Cli& cli, const char* argv0) {
  octo::Options opt;
  octo::scenario::apply(opt, cli.scenario);
  opt.max_level = cli.max_level;
  opt.stop_step = cli.steps;
  opt.threads = cli.threads;
  opt.localities = cli.localities;

  md::WorkerGroup group;
  md::ProcessLaunchConfig lc;
  lc.enabled = true;
  lc.rank = 0;
  lc.bootstrap_timeout_s = cli.bootstrap_timeout_s;
  if (cli.spawn) {
    std::vector<std::string> extra;
    if (cli.start_delay_ms > 0) {
      // Forwarded to every worker: the slow-starter injection the
      // bootstrap's retry path is tested against.
      extra.push_back("--start-delay-ms=" +
                      std::to_string(cli.start_delay_ms));
    }
    group = md::WorkerGroup::spawn(self_path(argv0), cli.localities,
                                   cli.threads, extra);
    lc = group.take_rank0_config();
  } else {
    lc.rendezvous = cli.rendezvous;
  }
  md::ScopedProcessLaunch guard(lc);
  {
    octo::dist::DistSimulation sim(opt, md::FabricKind::tcp);
    if (!cli.restore.empty()) {
      sim.restore_from(cli.restore);
    }
    sim.run();
    if (!cli.write_checkpoint.empty()) {
      sim.write_checkpoint(cli.write_checkpoint);
    }
    const octo::Cons t = sim.totals();
    std::printf("SCENARIO %s steps %u localities %u\n", cli.scenario.c_str(),
                sim.stats().steps, cli.localities);
    print_double("rho", t.rho);
    print_double("sx", t.sx);
    print_double("sy", t.sy);
    print_double("sz", t.sz);
    print_double("egas", t.egas);
    print_double("last_dt", sim.stats().last_dt);
    if (cli.print_counters) {
      // Federated digest: every rank's counters read from locality 0
      // through the apex::remote actions — over the wire for ranks hosted
      // by other processes.
      auto& from = sim.runtime().local_locality();
      for (unsigned l = 0; l < cli.localities; ++l) {
        for (const char* pattern : {"/threads/**", "/power/**"}) {
          for (const auto& [name, value] : mhpx::apex::remote::read_matching(
                   from, l, pattern)) {
            std::printf("COUNTER loc%u %s %.17g\n", l, name.c_str(), value);
          }
        }
      }
    }
    // sim's destructor tears the runtime down, broadcasting shutdown to the
    // workers — which must happen before wait_all() below can return.
  }
  if (cli.spawn && !group.wait_all()) {
    std::fprintf(stderr, "rveval_locality: a worker exited nonzero\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (parse_flag(arg, "--rank", v)) {
      cli.rank = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--localities", v)) {
      cli.localities = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--threads", v)) {
      cli.threads = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--rendezvous", v)) {
      cli.rendezvous = v;
    } else if (parse_flag(arg, "--bootstrap-timeout", v)) {
      cli.bootstrap_timeout_s = std::stod(v);
    } else if (arg == "--spawn") {
      cli.spawn = true;
    } else if (parse_flag(arg, "--start-delay-ms", v)) {
      cli.start_delay_ms = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--scenario", v)) {
      cli.scenario = v;
    } else if (parse_flag(arg, "--steps", v)) {
      cli.steps = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--max-level", v)) {
      cli.max_level = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--write-checkpoint", v)) {
      cli.write_checkpoint = v;
    } else if (parse_flag(arg, "--restore", v)) {
      cli.restore = v;
    } else if (arg == "--print-counters") {
      cli.print_counters = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.localities < 1 || cli.rank >= cli.localities) {
    std::fprintf(stderr, "rveval_locality: need 0 <= rank < localities\n");
    return 2;
  }
  try {
    return cli.rank == 0 ? run_orchestrator(cli, argv[0]) : run_worker(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rveval_locality: rank %u failed: %s\n", cli.rank,
                 e.what());
    return 1;
  }
}
