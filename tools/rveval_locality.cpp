/// \file rveval_locality.cpp
/// One locality as one OS process (--launch=process mode, DESIGN.md §13).
///
/// Worker (--rank=i, i > 0): join the cluster through the rendezvous
/// endpoint, host locality i (components arrive as create parcels from the
/// orchestrator — the scenario never needs to be repeated on the command
/// line), and block until rank 0's runtime broadcasts shutdown.
///
/// Orchestrator (--rank=0, the default): drive a DistSimulation over the
/// multi-process cluster and print the conserved totals in both decimal and
/// raw IEEE-754 bits — the lines the bitwise cross-process oracle greps.
/// With --spawn it forks its own workers (re-exec'ing this binary), so
///
///   rveval_locality --spawn --localities=3 --scenario=rotating_star
///
/// is a complete three-process run. Without --spawn, start the workers by
/// hand first:
///
///   rveval_locality --rank=1 --localities=3 --rendezvous=127.0.0.1:7000 &
///   rveval_locality --rank=2 --localities=3 --rendezvous=127.0.0.1:7000 &
///   rveval_locality --rank=0 --localities=3 --rendezvous=127.0.0.1:7000

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "core/power/attribution.hpp"
#include "core/power/energy.hpp"
#include "minihpx/apex/metrics_http.hpp"
#include "minihpx/apex/remote.hpp"
#include "minihpx/distributed/launch.hpp"
#include "minihpx/distributed/runtime.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/options.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace md = mhpx::dist;

namespace {

struct Cli {
  unsigned rank = 0;
  unsigned localities = 3;
  unsigned threads = 2;
  std::string rendezvous = "127.0.0.1:0";
  double bootstrap_timeout_s = 30.0;
  bool spawn = false;            ///< rank 0: fork the workers myself
  unsigned start_delay_ms = 0;   ///< slow-starter injection (tests)
  std::string scenario = "rotating_star";
  unsigned steps = 2;
  unsigned max_level = 1;
  std::string write_checkpoint;  ///< rank 0: write a restart file after run
  std::string restore;           ///< rank 0: restore before running
  bool print_counters = false;   ///< rank 0: federated apex digest
  bool serve_metrics = false;    ///< rank 0: expose /metrics after the run
  unsigned metrics_port = 0;     ///< 0 = ephemeral (printed as METRICS line)
  double metrics_hold_s = 0.0;   ///< keep serving this long (curl window)
  bool metrics_selftest = false; ///< rank 0: scrape own endpoint + verify
};

bool parse_flag(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--rank=N] --localities=N [--threads=T]\n"
      "          [--rendezvous=host:port] [--bootstrap-timeout=S]\n"
      "          [--spawn] [--start-delay-ms=D]\n"
      "          [--scenario=NAME] [--steps=N] [--max-level=L]\n"
      "          [--write-checkpoint=PATH] [--restore=PATH]\n"
      "          [--print-counters]\n"
      "          [--metrics-port=P] [--metrics-hold=S] [--metrics-selftest]\n",
      argv0);
  return 2;
}

/// Path of this binary, for --spawn re-exec.
std::string self_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

void print_double(const char* name, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  std::printf("TOTAL %s %.17g 0x%016" PRIx64 "\n", name, v, bits);
}

/// Minimal HTTP/1.0 GET against the local metrics endpoint; returns the
/// body. Throws on connect failure or a non-200 status.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("metrics scrape: socket failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("metrics scrape: connect failed");
  }
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("metrics scrape: send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) {
    throw std::runtime_error("metrics scrape: malformed response");
  }
  if (response.find(" 200 ") == std::string::npos ||
      response.find(" 200 ") > split) {
    throw std::runtime_error("metrics scrape: non-200 status for " + path);
  }
  return response.substr(split + 4);
}

/// Scrape-vs-federation self-test (--metrics-selftest): with recording
/// frozen cluster-wide, the raw-bucket series in the served document must
/// equal the buckets shipped by apex::remote bit-exactly, and the served
/// cluster p99 must equal the offline merged-bucket quantile.
int verify_metrics(mhpx::dist::DistributedRuntime& rt, std::uint16_t port,
                   unsigned localities) {
  namespace apx = mhpx::apex;
  auto& from = rt.local_locality();
  const std::string hist_name = "/threads/default/task-wait";
  apx::remote::set_histograms_enabled(from, localities, false);
  int failures = 0;
  if (http_get(port, "/healthz") != "ok\n") {
    std::fprintf(stderr, "SELFTEST FAIL /healthz body mismatch\n");
    ++failures;
  }
  const std::string text = http_get(port, "/metrics");
  if (text.find("# TYPE") == std::string::npos ||
      text.find("_raw_bucket") == std::string::npos) {
    std::fprintf(stderr, "SELFTEST FAIL /metrics not Prometheus text\n");
    ++failures;
  }
  const std::string fam = apx::sanitize_metric_name(hist_name);
  apx::HistogramSnapshot merged;
  std::size_t compared = 0;
  for (unsigned l = 0; l < localities; ++l) {
    const apx::HistogramSnapshot snap =
        apx::remote::histogram(from, l, hist_name);
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) {
        continue;
      }
      const std::string metric = fam + "_raw_bucket{locality=\"" +
                                 std::to_string(l) + "\",idx=\"" +
                                 std::to_string(i) + "\"}";
      const double scraped = apx::parse_prom_value(text, metric);
      if (scraped != static_cast<double>(snap.buckets[i])) {
        std::fprintf(stderr,
                     "SELFTEST FAIL %s scraped %.17g != federation %" PRIu64
                     "\n",
                     metric.c_str(), scraped, snap.buckets[i]);
        ++failures;
      }
      ++compared;
    }
    merged.merge(snap);
  }
  if (compared == 0) {
    std::fprintf(stderr, "SELFTEST FAIL no nonzero task-wait buckets\n");
    ++failures;
  }
  const double scraped_p99 = apx::parse_prom_value(
      text, fam + "_quantile_seconds{locality=\"all\",q=\"0.99\"}");
  const double offline_p99 = merged.quantile(0.99);
  // %.17g round-trips doubles exactly, so equality here is bitwise.
  if (scraped_p99 != offline_p99) {
    std::fprintf(stderr, "SELFTEST FAIL p99 scraped %.17g != offline %.17g\n",
                 scraped_p99, offline_p99);
    ++failures;
  }
  apx::remote::set_histograms_enabled(from, localities, true);
  if (failures == 0) {
    std::printf("SELFTEST metrics ok: %zu bucket(s) bit-exact, p99 %.17g s "
                "over %" PRIu64 " event(s)\n",
                compared, offline_p99, merged.count);
  }
  return failures;
}

int run_worker(const Cli& cli) {
  if (cli.start_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cli.start_delay_ms));
  }
  md::ProcessLaunchConfig lc;
  lc.enabled = true;
  lc.rank = cli.rank;
  lc.rendezvous = cli.rendezvous;
  lc.bootstrap_timeout_s = cli.bootstrap_timeout_s;

  md::DistributedRuntime::Config rcfg;
  rcfg.num_localities = cli.localities;
  rcfg.threads_per_locality = cli.threads;
  rcfg.fabric = md::FabricKind::tcp;
  rcfg.launch = lc;
  md::DistributedRuntime rt(rcfg);

  // The modelled board meter for this rank, in the locality's own registry
  // so the orchestrator's federated /power/** reads cross the process
  // boundary exactly like they cross localities in-process.
  auto& loc = rt.local_locality();
  rveval::power::register_power_counters(loc.counters_block(),
                                         loc.scheduler(),
                                         rveval::power::visionfive2_board(),
                                         rt.local_rank());
  std::fprintf(stderr, "rveval_locality: rank %u up (%u localities)\n",
               cli.rank, cli.localities);
  rt.wait_for_remote_shutdown();
  std::fprintf(stderr, "rveval_locality: rank %u shutting down\n", cli.rank);
  return 0;
}

int run_orchestrator(const Cli& cli, const char* argv0) {
  octo::Options opt;
  octo::scenario::apply(opt, cli.scenario);
  opt.max_level = cli.max_level;
  opt.stop_step = cli.steps;
  opt.threads = cli.threads;
  opt.localities = cli.localities;

  md::WorkerGroup group;
  md::ProcessLaunchConfig lc;
  lc.enabled = true;
  lc.rank = 0;
  lc.bootstrap_timeout_s = cli.bootstrap_timeout_s;
  if (cli.spawn) {
    std::vector<std::string> extra;
    if (cli.start_delay_ms > 0) {
      // Forwarded to every worker: the slow-starter injection the
      // bootstrap's retry path is tested against.
      extra.push_back("--start-delay-ms=" +
                      std::to_string(cli.start_delay_ms));
    }
    group = md::WorkerGroup::spawn(self_path(argv0), cli.localities,
                                   cli.threads, extra);
    lc = group.take_rank0_config();
  } else {
    lc.rendezvous = cli.rendezvous;
  }
  md::ScopedProcessLaunch guard(lc);
  int rc = 0;
  {
    octo::dist::DistSimulation sim(opt, md::FabricKind::tcp);
    if (!cli.restore.empty()) {
      sim.restore_from(cli.restore);
    }
    sim.run();
    if (!cli.write_checkpoint.empty()) {
      sim.write_checkpoint(cli.write_checkpoint);
    }
    const octo::Cons t = sim.totals();
    std::printf("SCENARIO %s steps %u localities %u\n", cli.scenario.c_str(),
                sim.stats().steps, cli.localities);
    print_double("rho", t.rho);
    print_double("sx", t.sx);
    print_double("sy", t.sy);
    print_double("sz", t.sz);
    print_double("egas", t.egas);
    print_double("last_dt", sim.stats().last_dt);
    if (cli.print_counters) {
      // Federated digest: every rank's counters read from locality 0
      // through the apex::remote actions — over the wire for ranks hosted
      // by other processes.
      auto& from = sim.runtime().local_locality();
      for (unsigned l = 0; l < cli.localities; ++l) {
        for (const char* pattern : {"/threads/**", "/power/**"}) {
          for (const auto& [name, value] : mhpx::apex::remote::read_matching(
                   from, l, pattern)) {
            std::printf("COUNTER loc%u %s %.17g\n", l, name.c_str(), value);
          }
        }
      }
    }
    if (cli.serve_metrics || cli.metrics_selftest) {
      auto& rt = sim.runtime();
      mhpx::apex::MetricsServer server(
          [&rt] { return mhpx::apex::federated_prometheus(rt); },
          static_cast<std::uint16_t>(cli.metrics_port));
      std::printf("METRICS http://127.0.0.1:%u/metrics\n",
                  static_cast<unsigned>(server.port()));
      std::fflush(stdout);
      if (cli.metrics_selftest) {
        rc = verify_metrics(rt, server.port(), cli.localities) == 0 ? rc : 1;
      }
      if (cli.metrics_hold_s > 0.0) {
        // The curl window: keep the cluster and the endpoint alive so an
        // outside scraper can hit a *running* federation.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(cli.metrics_hold_s));
      }
      server.stop();
    }
    // sim's destructor tears the runtime down, broadcasting shutdown to the
    // workers — which must happen before wait_all() below can return.
  }
  if (cli.spawn && !group.wait_all()) {
    std::fprintf(stderr, "rveval_locality: a worker exited nonzero\n");
    return 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (parse_flag(arg, "--rank", v)) {
      cli.rank = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--localities", v)) {
      cli.localities = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--threads", v)) {
      cli.threads = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--rendezvous", v)) {
      cli.rendezvous = v;
    } else if (parse_flag(arg, "--bootstrap-timeout", v)) {
      cli.bootstrap_timeout_s = std::stod(v);
    } else if (arg == "--spawn") {
      cli.spawn = true;
    } else if (parse_flag(arg, "--start-delay-ms", v)) {
      cli.start_delay_ms = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--scenario", v)) {
      cli.scenario = v;
    } else if (parse_flag(arg, "--steps", v)) {
      cli.steps = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--max-level", v)) {
      cli.max_level = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--write-checkpoint", v)) {
      cli.write_checkpoint = v;
    } else if (parse_flag(arg, "--restore", v)) {
      cli.restore = v;
    } else if (arg == "--print-counters") {
      cli.print_counters = true;
    } else if (parse_flag(arg, "--metrics-port", v)) {
      cli.serve_metrics = true;
      cli.metrics_port = static_cast<unsigned>(std::stoul(v));
    } else if (parse_flag(arg, "--metrics-hold", v)) {
      cli.serve_metrics = true;
      cli.metrics_hold_s = std::stod(v);
    } else if (arg == "--metrics-selftest") {
      cli.metrics_selftest = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.localities < 1 || cli.rank >= cli.localities) {
    std::fprintf(stderr, "rveval_locality: need 0 <= rank < localities\n");
    return 2;
  }
  try {
    return cli.rank == 0 ? run_orchestrator(cli, argv[0]) : run_worker(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rveval_locality: rank %u failed: %s\n", cli.rank,
                 e.what());
    return 1;
  }
}
