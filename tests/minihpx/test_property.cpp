// Property-based test library (mhpx::testing::prop).

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "minihpx/resilience/fault_injector.hpp"
#include "minihpx/testing/property.hpp"

namespace prop = mhpx::testing::prop;

namespace {

TEST(Property, GeneratorIsDeterministicInItsSeed) {
  prop::Gen a(7);
  prop::Gen b(7);
  prop::Gen c(8);
  std::vector<std::uint64_t> av;
  std::vector<std::uint64_t> bv;
  std::vector<std::uint64_t> cv;
  for (int i = 0; i < 16; ++i) {
    av.push_back(a.u64());
    bv.push_back(b.u64());
    cv.push_back(c.u64());
  }
  EXPECT_EQ(av, bv);
  EXPECT_NE(av, cv);
}

TEST(Property, GeneratorRangesAreRespected) {
  prop::Gen g(1);
  for (int i = 0; i < 200; ++i) {
    const auto v = g.int_in(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    const auto r = g.real_in(0.25, 0.75);
    EXPECT_GE(r, 0.25);
    EXPECT_LT(r, 0.75);
    EXPECT_LT(g.index(4), 4u);
  }
  const auto v = g.vec(2, 5, [](prop::Gen& gen) { return gen.u64(); });
  EXPECT_GE(v.size(), 2u);
  EXPECT_LE(v.size(), 5u);
}

TEST(Property, ForAllPassesWhenThePropertyHolds) {
  const auto result = prop::for_all(0x5eed, 50, [](prop::Gen& g) {
    const auto x = g.int_in(0, 1000);
    prop::require(x + x == 2 * x, "arithmetic broke");
  });
  EXPECT_TRUE(result);
  EXPECT_EQ(result.cases_run, 50u);
}

TEST(Property, ForAllReportsFailingSeedAndReplayLine) {
  const auto result = prop::for_all(0x5eed, 200, [](prop::Gen& g) {
    const auto x = g.int_in(0, 99);
    prop::require(x != 42, "hit the planted magic number");
  });
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.message.find("planted magic number"), std::string::npos);
  EXPECT_NE(result.message.find("RVEVAL_PROP_SEED="), std::string::npos);

  // The printed seed must reproduce exactly that failing case alone.
  const std::string seed = std::to_string(result.failing_seed);
  ASSERT_EQ(setenv("RVEVAL_PROP_SEED", seed.c_str(), 1), 0);
  const auto replay = prop::for_all(0x5eed, 200, [](prop::Gen& g) {
    const auto x = g.int_in(0, 99);
    prop::require(x != 42, "hit the planted magic number");
  });
  unsetenv("RVEVAL_PROP_SEED");
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.failing_seed, result.failing_seed);
  EXPECT_EQ(replay.cases_run, 0u);
}

TEST(Property, CaseSeedsAreDecorrelated) {
  std::set<std::uint64_t> seeds;
  for (unsigned i = 0; i < 100; ++i) {
    seeds.insert(prop::detail::mix_case_seed(0x5eed, i));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(Property, FaultPlanGeneratorDrivesTheInjectorDeterministically) {
  const auto result = prop::for_all(0x5eed, 20, [](prop::Gen& g) {
    const auto cfg = prop::gen_fault_plan(g);
    mhpx::resilience::FaultInjector a(cfg);
    mhpx::resilience::FaultInjector b(cfg);
    // Same plan, same decision sequence — the reproducibility contract the
    // resilience tests rely on.
    for (int i = 0; i < 64; ++i) {
      prop::require(a.inject_fault() == b.inject_fault(),
                    "fault decisions diverged for one plan");
      prop::require(a.inject_corruption() == b.inject_corruption(),
                    "corruption decisions diverged for one plan");
    }
  });
  EXPECT_TRUE(result) << result.message;
}

TEST(Property, ParcelTraceGeneratorProducesValidEvents) {
  const auto result = prop::for_all(0x5eed, 30, [](prop::Gen& g) {
    const std::uint32_t localities = static_cast<std::uint32_t>(
        g.int_in(2, 6));
    const auto trace = prop::gen_parcel_trace(g, localities);
    prop::require(!trace.empty(), "empty trace");
    prop::require(trace.size() <= 64, "trace over the cap");
    for (const auto& e : trace) {
      prop::require(e.src < localities, "src out of range");
      prop::require(e.dst < localities, "dst out of range");
      prop::require(e.src != e.dst, "self-send generated");
      prop::require(e.bytes >= 1 && e.bytes <= 256 * 1024,
                    "parcel size out of range");
    }
  });
  EXPECT_TRUE(result) << result.message;
}

}  // namespace
