// Regression stress for the FiberCv parking protocol.
//
// The Octo-Tiger level-4 + Kokkos-HPX configuration exposed a race in the
// original FiberCv hand-off (the suspend hook manipulated the waiter's
// unique_lock from the worker thread; under a thousand concurrent
// outer-task latch waits with nested inner fan-outs, a waiter could be
// observed before the cross-thread unlock completed). This test recreates
// that shape — many outer tasks, each suspending on a latch joined by a
// nested task fan-out — at a size that made the old protocol fail within a
// few runs.

#include <gtest/gtest.h>

#include <atomic>

#include "minihpx/parallel/algorithms.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"

namespace {

TEST(NestedFanOutStress, ManyOuterTasksWithInnerBulkJoins) {
  mhpx::Runtime rt{{4, 128 * 1024}};
  constexpr int kOuter = 600;
  constexpr int kRounds = 3;
  std::atomic<long> total{0};

  for (int round = 0; round < kRounds; ++round) {
    mhpx::sync::latch outer_done(kOuter);
    for (int o = 0; o < kOuter; ++o) {
      mhpx::post([&total, &outer_done] {
        // Nested fan-out: the outer fiber suspends on the inner join
        // (exactly the Kokkos-HPX execution-space shape).
        std::atomic<long> local{0};
        mhpx::for_loop(mhpx::execution::par.with_chunks(8), 0, 64,
                       [&local](std::size_t i) {
                         local.fetch_add(static_cast<long>(i));
                       });
        total.fetch_add(local.load());
        outer_done.count_down();
      });
    }
    outer_done.wait();
  }
  EXPECT_EQ(total.load(),
            static_cast<long>(kRounds) * kOuter * (63 * 64 / 2));
}

TEST(NestedFanOutStress, RepeatedLatchReuseAtSameStackDepth) {
  // Back-to-back nested joins from the same fiber: each round constructs a
  // fresh latch at the same stack address — the reuse pattern of
  // consecutive kernel launches inside one leaf task.
  mhpx::Runtime rt{{3, 128 * 1024}};
  std::atomic<int> done{0};
  mhpx::sync::latch all(100);
  for (int o = 0; o < 100; ++o) {
    mhpx::post([&done, &all] {
      for (int k = 0; k < 10; ++k) {
        mhpx::sync::latch inner(4);
        for (int i = 0; i < 4; ++i) {
          mhpx::post([&inner] { inner.count_down(); });
        }
        inner.wait();
      }
      done.fetch_add(1);
      all.count_down();
    });
  }
  all.wait();
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
