// Regression stress for the FiberCv parking protocol.
//
// The Octo-Tiger level-4 + Kokkos-HPX configuration exposed a race in the
// original FiberCv hand-off (the suspend hook manipulated the waiter's
// unique_lock from the worker thread; under a thousand concurrent
// outer-task latch waits with nested inner fan-outs, a waiter could be
// observed before the cross-thread unlock completed).
//
// Ported onto the deterministic harness: instead of brute-forcing the shape
// with thousands of wall-clock tasks and hoping the bad interleaving shows
// up, the explorer drives many adversarial schedules of a much smaller
// nested-join graph — deterministic, seed-replayable, and an order of
// magnitude faster. A reduced wall-clock smoke keeps the genuinely
// cross-thread hand-off covered.

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "minihpx/parallel/algorithms.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"
#include "minihpx/testing/explorer.hpp"

namespace {

using mhpx::testing::ExploreConfig;
using mhpx::testing::explore;

TEST(NestedFanOutStress, ExploredNestedBulkJoins) {
  ExploreConfig cfg;
  cfg.schedules = 12;
  cfg.race_check = false;  // the counters are atomics by design
  const auto result = explore(cfg, [] {
    constexpr int kOuter = 12;
    constexpr long kInner = 16;
    std::atomic<long> total{0};
    mhpx::sync::latch outer_done(kOuter);
    for (int o = 0; o < kOuter; ++o) {
      mhpx::post([&total, &outer_done] {
        // Nested fan-out: the outer fiber suspends on the inner join
        // (exactly the Kokkos-HPX execution-space shape).
        mhpx::testing::preemption_point(0x51);
        std::atomic<long> local{0};
        mhpx::for_loop(mhpx::execution::par.with_chunks(4), 0, kInner,
                       [&local](std::size_t i) {
                         local.fetch_add(static_cast<long>(i));
                       });
        total.fetch_add(local.load());
        outer_done.count_down();
      });
    }
    outer_done.wait();
    const long want = kOuter * ((kInner - 1) * kInner / 2);
    mhpx::testing::check(total.load() == want,
                         "nested joins lost work: " +
                             std::to_string(total.load()) + " != " +
                             std::to_string(want));
  });
  EXPECT_FALSE(result.failed) << result.replay_recipe;
}

TEST(NestedFanOutStress, ExploredLatchReuseAtSameStackDepth) {
  // Back-to-back nested joins from the same fiber: each round constructs a
  // fresh latch at the same stack address — the reuse pattern of
  // consecutive kernel launches inside one leaf task. The explorer slices
  // between rounds so stale-waiter bugs get their window.
  ExploreConfig cfg;
  cfg.schedules = 12;
  cfg.race_check = false;
  const auto result = explore(cfg, [] {
    constexpr int kOuter = 8;
    std::atomic<int> done{0};
    mhpx::sync::latch all(kOuter);
    for (int o = 0; o < kOuter; ++o) {
      mhpx::post([&done, &all] {
        for (int k = 0; k < 4; ++k) {
          mhpx::sync::latch inner(3);
          for (int i = 0; i < 3; ++i) {
            mhpx::post([&inner] { inner.count_down(); });
          }
          mhpx::testing::preemption_point(0x52);
          inner.wait();
        }
        done.fetch_add(1);
        all.count_down();
      });
    }
    all.wait();
    mhpx::testing::check(done.load() == kOuter, "a reused latch lost a round");
  });
  EXPECT_FALSE(result.failed) << result.replay_recipe;
}

TEST(NestedFanOutStress, WallClockSmokeKeepsCrossThreadHandOff) {
  // The original cross-thread unlock race needs real worker threads; keep a
  // slimmed wall-clock run of the historical reproducer shape.
  mhpx::Runtime rt{{4, 128 * 1024}};
  constexpr int kOuter = 60;
  std::atomic<long> total{0};

  mhpx::sync::latch outer_done(kOuter);
  for (int o = 0; o < kOuter; ++o) {
    mhpx::post([&total, &outer_done] {
      std::atomic<long> local{0};
      mhpx::for_loop(mhpx::execution::par.with_chunks(8), 0, 64,
                     [&local](std::size_t i) {
                       local.fetch_add(static_cast<long>(i));
                     });
      total.fetch_add(local.load());
      outer_done.count_down();
    });
  }
  outer_done.wait();
  EXPECT_EQ(total.load(), static_cast<long>(kOuter) * (63 * 64 / 2));
}

}  // namespace
