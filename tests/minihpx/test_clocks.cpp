// Unit tests for the hardware/software timer split (the RDTIME analogue).

#include <gtest/gtest.h>

#include <thread>

#include "minihpx/chrono/clocks.hpp"

namespace mc = mhpx::chrono;

TEST(HardwareClock, TicksAreMonotonic) {
  const auto a = mc::hardware_clock::now_ticks();
  const auto b = mc::hardware_clock::now_ticks();
  EXPECT_LE(a, b);
}

TEST(HardwareClock, CalibratedRateIsPlausible) {
  const double rate = mc::hardware_clock::ticks_per_second();
  // Anything from a 32 kHz RTC-style counter to a 10 GHz TSC is plausible;
  // zero or negative is not.
  EXPECT_GT(rate, 1e3);
  EXPECT_LT(rate, 1e11);
}

TEST(HardwareClock, MeasuresElapsedTime) {
  const double t0 = mc::hardware_clock::now_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double t1 = mc::hardware_clock::now_seconds();
  EXPECT_GE(t1 - t0, 0.020);
  EXPECT_LT(t1 - t0, 5.0);
}

TEST(SoftwareClock, MeasuresElapsedTime) {
  const double t0 = mc::software_clock::now_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double t1 = mc::software_clock::now_seconds();
  EXPECT_GE(t1 - t0, 0.020);
  EXPECT_LT(t1 - t0, 5.0);
}

TEST(SoftwareClock, AlwaysAvailable) {
  EXPECT_TRUE(mc::software_clock::available());
  EXPECT_GT(mc::software_clock::ticks_per_second(), 0.0);
}

TEST(Timer, MeasuresAndRestarts) {
  mc::timer<> t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double first = t.elapsed_seconds();
  EXPECT_GE(first, 0.010);
  t.restart();
  const double second = t.elapsed_seconds();
  EXPECT_LT(second, first);
}

TEST(ClockAgreement, HardwareAndSoftwareAgreeOnDuration) {
  const double h0 = mc::hardware_clock::now_seconds();
  const double s0 = mc::software_clock::now_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double h1 = mc::hardware_clock::now_seconds();
  const double s1 = mc::software_clock::now_seconds();
  const double dh = h1 - h0;
  const double ds = s1 - s0;
  // Same order of magnitude: the calibration window is short and the build
  // host is a loaded single-core box, so allow generous slack; the point is
  // that the hardware path measures *time*, not garbage.
  EXPECT_GT(dh, 0.25 * ds);
  EXPECT_LT(dh, 4.0 * ds);
}
