// Unit tests for the senders & receivers layer (P2300-style).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "minihpx/execution/sender_receiver.hpp"
#include "minihpx/runtime.hpp"

namespace {

namespace ex = mhpx::ex;

struct SenderTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST(SenderNoRuntime, JustThenSyncWait) {
  auto s = ex::just(20) | ex::then([](int v) { return v + 1; });
  auto r = ex::sync_wait_one<int>(std::move(s));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 21);
}

TEST(SenderNoRuntime, JustMultipleValues) {
  auto s = ex::just(2, 3) | ex::then([](int a, int b) { return a * b; });
  EXPECT_EQ(ex::sync_wait_one<int>(std::move(s)).value(), 6);
}

TEST(SenderNoRuntime, ThenChain) {
  auto s = ex::just(std::string("a")) |
           ex::then([](std::string v) { return v + "b"; }) |
           ex::then([](std::string v) { return v + "c"; });
  EXPECT_EQ(ex::sync_wait_one<std::string>(std::move(s)).value(), "abc");
}

TEST(SenderNoRuntime, ThenVoidResult) {
  std::atomic<int> seen{0};
  auto s = ex::just(5) | ex::then([&](int v) { seen.store(v); });
  EXPECT_TRUE(ex::sync_wait_void(std::move(s)));
  EXPECT_EQ(seen.load(), 5);
}

TEST(SenderNoRuntime, ErrorPropagates) {
  auto s = ex::just(1) | ex::then([](int) -> int {
             throw std::runtime_error("sr-fail");
           }) |
           ex::then([](int v) { return v; });
  EXPECT_THROW(ex::sync_wait_one<int>(std::move(s)), std::runtime_error);
}

TEST_F(SenderTest, ScheduleRunsOnWorker) {
  std::atomic<bool> on_worker{false};
  auto s = ex::schedule(ex::ambient_sched()) | ex::then([&] {
             on_worker.store(mhpx::threads::Scheduler::inside_task());
             return 1;
           });
  EXPECT_EQ(ex::sync_wait_one<int>(std::move(s)).value(), 1);
  EXPECT_TRUE(on_worker.load());
}

TEST_F(SenderTest, ScheduleWithoutRuntimeErrors) {
  auto s = ex::schedule(ex::scheduler{nullptr});
  EXPECT_THROW(ex::sync_wait_void(std::move(s)), std::runtime_error);
}

TEST_F(SenderTest, BulkVisitsFullShape) {
  std::vector<std::atomic<int>> hits(500);
  auto s = ex::schedule(ex::ambient_sched()) |
           ex::bulk(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(ex::sync_wait_void(std::move(s)));
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(SenderTest, BulkForwardsUpstreamValue) {
  std::atomic<long> sum{0};
  auto s = ex::just(10) | ex::bulk(5, [&](std::size_t i, int base) {
             sum.fetch_add(base + static_cast<long>(i));
           }) |
           ex::then([](int base) { return base; });
  EXPECT_EQ(ex::sync_wait_one<int>(std::move(s)).value(), 10);
  EXPECT_EQ(sum.load(), 60);  // 10*5 + (0+1+2+3+4)
}

TEST_F(SenderTest, BulkZeroShape) {
  auto s = ex::just(3) | ex::bulk(0, [](std::size_t, int) { FAIL(); });
  EXPECT_EQ(ex::sync_wait_one<int>(std::move(s)).value(), 3);
}

TEST_F(SenderTest, BulkPropagatesBodyError) {
  auto s = ex::schedule(ex::ambient_sched()) | ex::bulk(10, [](std::size_t i) {
             if (i == 7) {
               throw std::domain_error("bulk-fail");
             }
           });
  EXPECT_THROW(ex::sync_wait_void(std::move(s)), std::domain_error);
}

TEST_F(SenderTest, TransferMovesExecution) {
  std::atomic<bool> downstream_on_worker{false};
  auto s = ex::just(4) | ex::transfer(ex::ambient_sched()) |
           ex::then([&](int v) {
             downstream_on_worker.store(
                 mhpx::threads::Scheduler::inside_task());
             return v * 2;
           });
  EXPECT_EQ(ex::sync_wait_one<int>(std::move(s)).value(), 8);
  EXPECT_TRUE(downstream_on_worker.load());
}

TEST_F(SenderTest, WhenAllOfJoinsResults) {
  auto s = ex::when_all_of<int>(
      ex::schedule(ex::ambient_sched()) | ex::then([] { return 1; }),
      ex::schedule(ex::ambient_sched()) | ex::then([] { return 2; }),
      ex::just(3));
  auto r = ex::sync_wait_one<std::vector<int>>(std::move(s));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (std::vector<int>{1, 2, 3}));
}

TEST_F(SenderTest, WhenAllOfPropagatesError) {
  auto s = ex::when_all_of<int>(
      ex::just(1),
      ex::just(0) | ex::then([](int) -> int {
        throw std::runtime_error("child");
      }));
  EXPECT_THROW(ex::sync_wait_one<std::vector<int>>(std::move(s)),
               std::runtime_error);
}

TEST_F(SenderTest, SyncWaitInsideTaskSuspends) {
  // sync_wait from within a task must suspend the fiber, not deadlock the
  // worker pool.
  auto outer = ex::schedule(ex::ambient_sched()) | ex::then([] {
                 auto inner = ex::schedule(ex::ambient_sched()) |
                              ex::then([] { return 5; });
                 return ex::sync_wait_one<int>(std::move(inner)).value();
               });
  EXPECT_EQ(ex::sync_wait_one<int>(std::move(outer)).value(), 5);
}

}  // namespace
