// Integration tests for the distributed layer: localities, components,
// actions and all three parcelports (inproc / tcp / mpisim).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "minihpx/distributed/runtime.hpp"
#include "minihpx/futures/future.hpp"

namespace {

using namespace mhpx::dist;

// ------------------------------------------------------------- test actions

struct PingAction {
  static constexpr std::string_view name = "test::ping";
  static int invoke(Locality& /*here*/, int x) { return x + 1; }
};
MHPX_REGISTER_ACTION(PingAction);

struct WhereAmIAction {
  static constexpr std::string_view name = "test::where";
  static std::uint32_t invoke(Locality& here) { return here.id(); }
};
MHPX_REGISTER_ACTION(WhereAmIAction);

struct ThrowingAction {
  static constexpr std::string_view name = "test::throws";
  static int invoke(Locality&, int) {
    throw std::runtime_error("remote boom");
  }
};
MHPX_REGISTER_ACTION(ThrowingAction);

struct SumVectorAction {
  static constexpr std::string_view name = "test::sum_vector";
  static double invoke(Locality&, std::vector<double> v) {
    return std::accumulate(v.begin(), v.end(), 0.0);
  }
};
MHPX_REGISTER_ACTION(SumVectorAction);

// ----------------------------------------------------------- test component

class Counter : public Component {
 public:
  static constexpr std::string_view type_name = "test::Counter";
  using ctor_args = std::tuple<long>;

  Counter(Locality& /*here*/, long initial) : value_(initial) {}

  long add(long delta) { return value_ += delta; }
  [[nodiscard]] long value() const { return value_; }

 private:
  long value_;
};
MHPX_REGISTER_COMPONENT(Counter);

struct CounterAdd {
  static constexpr std::string_view name = "test::Counter::add";
  static long invoke(Locality&, Counter& self, long delta) {
    return self.add(delta);
  }
};
MHPX_REGISTER_ACTION(CounterAdd);

struct CounterGet {
  static constexpr std::string_view name = "test::Counter::get";
  static long invoke(Locality&, Counter& self) { return self.value(); }
};
MHPX_REGISTER_ACTION(CounterGet);

// -------------------------------------------------------- parameterised rig

class DistributedTest : public ::testing::TestWithParam<FabricKind> {
 protected:
  DistributedRuntime::Config config(unsigned localities = 2) const {
    DistributedRuntime::Config cfg;
    cfg.num_localities = localities;
    cfg.threads_per_locality = 2;
    cfg.stack_size = 64 * 1024;
    cfg.fabric = GetParam();
    return cfg;
  }
};

TEST_P(DistributedTest, LocalityBasics) {
  DistributedRuntime rt(config());
  EXPECT_EQ(rt.num_localities(), 2u);
  EXPECT_EQ(rt.locality(0).id(), 0u);
  EXPECT_EQ(rt.locality(1).id(), 1u);
  EXPECT_EQ(rt.fabric().name(), to_string(GetParam()));
}

TEST_P(DistributedTest, RemoteActionRoundTrip) {
  DistributedRuntime rt(config());
  auto f = rt.locality(0).call<PingAction>(locality_gid(1), 41);
  EXPECT_EQ(f.get(), 42);
}

TEST_P(DistributedTest, LocalCallShortCircuits) {
  DistributedRuntime rt(config());
  const auto before = rt.fabric().stats().messages;
  auto f = rt.locality(0).call<PingAction>(locality_gid(0), 1);
  EXPECT_EQ(f.get(), 2);
  // inproc counts local sends too only when routed via fabric; a local call
  // must not touch the fabric at all.
  EXPECT_EQ(rt.fabric().stats().messages, before);
}

TEST_P(DistributedTest, ActionRunsOnTargetLocality) {
  DistributedRuntime rt(config());
  EXPECT_EQ(rt.locality(0).call<WhereAmIAction>(locality_gid(1)).get(), 1u);
  EXPECT_EQ(rt.locality(1).call<WhereAmIAction>(locality_gid(0)).get(), 0u);
  EXPECT_EQ(rt.locality(0).call<WhereAmIAction>(locality_gid(0)).get(), 0u);
}

TEST_P(DistributedTest, RemoteExceptionPropagates) {
  DistributedRuntime rt(config());
  auto f = rt.locality(0).call<ThrowingAction>(locality_gid(1), 0);
  try {
    f.get();
    FAIL() << "expected remote_error";
  } catch (const remote_error& e) {
    EXPECT_STREQ(e.what(), "remote boom");
  }
}

TEST_P(DistributedTest, LargePayloadRoundTrip) {
  DistributedRuntime rt(config());
  std::vector<double> big(200000);  // 1.6 MB: exceeds the mpisim eager limit
  std::iota(big.begin(), big.end(), 0.0);
  const double expected = std::accumulate(big.begin(), big.end(), 0.0);
  auto f = rt.locality(0).call<SumVectorAction>(locality_gid(1), big);
  EXPECT_DOUBLE_EQ(f.get(), expected);
}

TEST_P(DistributedTest, ComponentCreateLocal) {
  DistributedRuntime rt(config());
  auto& loc = rt.locality(0);
  const gid g = loc.create_local<Counter>(10L);
  EXPECT_EQ(g.locality, 0u);
  EXPECT_EQ(loc.local<Counter>(g).value(), 10);
  EXPECT_EQ(loc.component_count(), 1u);
  loc.destroy(g);
  EXPECT_EQ(loc.component_count(), 0u);
}

TEST_P(DistributedTest, ComponentCreateRemote) {
  DistributedRuntime rt(config());
  auto g = rt.locality(0).create_on<Counter>(1, 100L).get();
  EXPECT_EQ(g.locality, 1u);
  EXPECT_EQ(rt.locality(1).component_count(), 1u);
  EXPECT_EQ(rt.locality(0).call<CounterGet>(g).get(), 100);
}

TEST_P(DistributedTest, ComponentActionsMutateRemoteState) {
  DistributedRuntime rt(config());
  auto g = rt.locality(0).create_on<Counter>(1, 0L).get();
  for (long i = 1; i <= 10; ++i) {
    rt.locality(0).call<CounterAdd>(g, i).get();
  }
  EXPECT_EQ(rt.locality(0).call<CounterGet>(g).get(), 55);
}

TEST_P(DistributedTest, ManyConcurrentRemoteCalls) {
  DistributedRuntime rt(config());
  std::vector<mhpx::future<int>> futs;
  futs.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futs.push_back(rt.locality(0).call<PingAction>(locality_gid(1), i));
  }
  long sum = 0;
  for (auto& f : futs) {
    sum += f.get();
  }
  EXPECT_EQ(sum, 5050);  // sum of 1..100
}

TEST_P(DistributedTest, BidirectionalTraffic) {
  DistributedRuntime rt(config());
  auto f01 = rt.locality(0).call<PingAction>(locality_gid(1), 1);
  auto f10 = rt.locality(1).call<PingAction>(locality_gid(0), 2);
  EXPECT_EQ(f01.get(), 2);
  EXPECT_EQ(f10.get(), 3);
}

TEST_P(DistributedTest, FourLocalities) {
  DistributedRuntime rt(config(4));
  for (locality_id src = 0; src < 4; ++src) {
    for (locality_id dst = 0; dst < 4; ++dst) {
      auto v = rt.locality(src)
                   .call<WhereAmIAction>(locality_gid(dst))
                   .get();
      EXPECT_EQ(v, dst);
    }
  }
}

TEST_P(DistributedTest, FabricCountsTraffic) {
  DistributedRuntime rt(config());
  rt.locality(0).call<PingAction>(locality_gid(1), 1).get();
  const auto stats = rt.fabric().stats();
  EXPECT_GE(stats.messages, 2u);  // request + reply
  EXPECT_GT(stats.bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFabrics, DistributedTest,
                         ::testing::Values(FabricKind::inproc, FabricKind::tcp,
                                           FabricKind::mpisim),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(DistributedMpiSim, RendezvousCountsLargeMessages) {
  DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.stack_size = 64 * 1024;
  cfg.fabric = FabricKind::mpisim;
  DistributedRuntime rt(cfg);

  // Small message: eager, no rendezvous.
  rt.locality(0).call<PingAction>(locality_gid(1), 1).get();
  EXPECT_EQ(rt.fabric().stats().rendezvous_messages, 0u);

  // Large message: must pay the rendezvous round trip.
  std::vector<double> big(20000);  // 160 KB > 64 KiB eager limit
  rt.locality(0).call<SumVectorAction>(locality_gid(1), big).get();
  const auto stats = rt.fabric().stats();
  EXPECT_EQ(stats.rendezvous_messages, 1u);
  EXPECT_EQ(stats.control_messages, 2u);
}

}  // namespace
