// Unit tests for the work-stealing fiber scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "minihpx/threads/scheduler.hpp"

namespace mt = mhpx::threads;

TEST(Scheduler, RunsPostedTasks) {
  mt::Scheduler sched({2, 64 * 1024});
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    sched.post([&] { count.fetch_add(1); });
  }
  sched.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, SingleWorkerRunsEverything) {
  mt::Scheduler sched({1, 64 * 1024});
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    sched.post([&] { count.fetch_add(1); });
  }
  sched.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(Scheduler, NestedPostsAreExecuted) {
  mt::Scheduler sched({2, 64 * 1024});
  std::atomic<int> count{0};
  sched.post([&] {
    for (int i = 0; i < 10; ++i) {
      sched.post([&] { count.fetch_add(1); });
    }
  });
  sched.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(Scheduler, CurrentIsNullOutsideWorkers) {
  EXPECT_EQ(mt::Scheduler::current(), nullptr);
  EXPECT_FALSE(mt::Scheduler::inside_task());
}

TEST(Scheduler, CurrentIsSetInsideTasks) {
  mt::Scheduler sched({1, 64 * 1024});
  std::atomic<bool> inside{false};
  std::atomic<mt::Scheduler*> seen{nullptr};
  sched.post([&] {
    inside.store(mt::Scheduler::inside_task());
    seen.store(mt::Scheduler::current());
  });
  sched.wait_idle();
  EXPECT_TRUE(inside.load());
  EXPECT_EQ(seen.load(), &sched);
}

TEST(Scheduler, YieldInterleavesTasks) {
  mt::Scheduler sched({1, 64 * 1024});
  std::atomic<int> progress_a{0};
  std::atomic<int> progress_b{0};
  sched.post([&] {
    for (int i = 0; i < 5; ++i) {
      progress_a.fetch_add(1);
      mt::Scheduler::yield();
    }
  });
  sched.post([&] {
    for (int i = 0; i < 5; ++i) {
      progress_b.fetch_add(1);
      mt::Scheduler::yield();
    }
  });
  sched.wait_idle();
  EXPECT_EQ(progress_a.load(), 5);
  EXPECT_EQ(progress_b.load(), 5);
}

TEST(Scheduler, SuspendResumeFromAnotherThread) {
  mt::Scheduler sched({1, 64 * 1024});
  std::atomic<mt::TaskHandle> handle{nullptr};
  std::atomic<bool> resumed{false};
  sched.post([&] {
    sched.suspend_current([&](mt::TaskHandle h) { handle.store(h); });
    resumed.store(true);
  });
  // Wait for the task to park itself.
  while (handle.load() == nullptr) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(resumed.load());
  sched.resume(handle.load());
  sched.wait_idle();
  EXPECT_TRUE(resumed.load());
}

TEST(Scheduler, SuspendResumeImmediatelyFromHook) {
  // The hook may resume the task before it even leaves the worker: the
  // protocol must tolerate "resume raced ahead".
  mt::Scheduler sched({2, 64 * 1024});
  std::atomic<int> stage{0};
  sched.post([&] {
    stage.store(1);
    sched.suspend_current([&](mt::TaskHandle h) { sched.resume(h); });
    stage.store(2);
  });
  sched.wait_idle();
  EXPECT_EQ(stage.load(), 2);
}

TEST(Scheduler, ManySuspensions) {
  mt::Scheduler sched({2, 64 * 1024});
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    sched.post([&] {
      for (int k = 0; k < 10; ++k) {
        sched.suspend_current(
            [&](mt::TaskHandle h) { sched.resume(h); });
      }
      done.fetch_add(1);
    });
  }
  sched.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(Scheduler, FibersAreRecycled) {
  mt::Scheduler sched({1, 64 * 1024});
  for (int i = 0; i < 20; ++i) {
    sched.post([] {});
  }
  sched.wait_idle();
  EXPECT_GT(sched.recycled_fibers(), 0u);
}

TEST(Scheduler, LiveTaskCountDrainsToZero) {
  mt::Scheduler sched({2, 64 * 1024});
  for (int i = 0; i < 10; ++i) {
    sched.post([] { std::this_thread::sleep_for(std::chrono::milliseconds(1)); });
  }
  sched.wait_idle();
  EXPECT_EQ(sched.live_tasks(), 0u);
}

TEST(Scheduler, PostFromExternalThread) {
  mt::Scheduler sched({2, 64 * 1024});
  std::atomic<int> count{0};
  std::thread external([&] {
    for (int i = 0; i < 25; ++i) {
      sched.post([&] { count.fetch_add(1); });
    }
  });
  external.join();
  sched.wait_idle();
  EXPECT_EQ(count.load(), 25);
}

TEST(Scheduler, TwoSchedulersCoexist) {
  mt::Scheduler a({1, 64 * 1024});
  mt::Scheduler b({1, 64 * 1024});
  std::atomic<int> ca{0};
  std::atomic<int> cb{0};
  a.post([&] { ca.fetch_add(1); });
  b.post([&] { cb.fetch_add(1); });
  a.wait_idle();
  b.wait_idle();
  EXPECT_EQ(ca.load(), 1);
  EXPECT_EQ(cb.load(), 1);
}

TEST(Scheduler, CrossSchedulerResume) {
  // A worker of scheduler A resumes a task parked in scheduler B.
  mt::Scheduler a({1, 64 * 1024});
  mt::Scheduler b({1, 64 * 1024});
  std::atomic<mt::TaskHandle> parked{nullptr};
  std::atomic<bool> finished{false};
  b.post([&] {
    b.suspend_current([&](mt::TaskHandle h) { parked.store(h); });
    finished.store(true);
  });
  while (parked.load() == nullptr) {
    std::this_thread::yield();
  }
  a.post([&] { b.resume(parked.load()); });
  a.wait_idle();
  b.wait_idle();
  EXPECT_TRUE(finished.load());
}

TEST(SchedulerInstrument, SpawnAndFinishHooksFire) {
  struct Counters {
    std::atomic<int> spawned{0};
    std::atomic<int> finished{0};
    std::atomic<double> flops{0.0};
  } counters;
  mhpx::instrument::Hooks hooks;
  hooks.ctx = &counters;
  hooks.on_task_spawn = [](void* ctx) {
    static_cast<Counters*>(ctx)->spawned.fetch_add(1);
  };
  hooks.on_task_finish = [](void* ctx, const mhpx::instrument::TaskWork& w) {
    auto* c = static_cast<Counters*>(ctx);
    c->finished.fetch_add(1);
    double old = c->flops.load();
    while (!c->flops.compare_exchange_weak(old, old + w.flops)) {
    }
  };
  mhpx::instrument::set_hooks(hooks);

  {
    mt::Scheduler sched({1, 64 * 1024});
    for (int i = 0; i < 5; ++i) {
      sched.post([] { mhpx::instrument::annotate(100.0, 800.0); });
    }
    sched.wait_idle();
  }
  mhpx::instrument::set_hooks({});

  EXPECT_EQ(counters.spawned.load(), 5);
  EXPECT_EQ(counters.finished.load(), 5);
  EXPECT_DOUBLE_EQ(counters.flops.load(), 500.0);
}

TEST(SchedulerInstrument, WorkSurvivesSuspension) {
  struct Ctx {
    std::atomic<double> flops{0.0};
  } ctx;
  mhpx::instrument::Hooks hooks;
  hooks.ctx = &ctx;
  hooks.on_task_finish = [](void* c, const mhpx::instrument::TaskWork& w) {
    auto* cc = static_cast<Ctx*>(c);
    double old = cc->flops.load();
    while (!cc->flops.compare_exchange_weak(old, old + w.flops)) {
    }
  };
  mhpx::instrument::set_hooks(hooks);
  {
    mt::Scheduler sched({2, 64 * 1024});
    sched.post([&] {
      mhpx::instrument::annotate(10.0, 0.0);
      sched.suspend_current([&](mt::TaskHandle h) { sched.resume(h); });
      mhpx::instrument::annotate(32.0, 0.0);
    });
    sched.wait_idle();
  }
  mhpx::instrument::set_hooks({});
  EXPECT_DOUBLE_EQ(ctx.flops.load(), 42.0);
}
