// Unit tests for C++20 coroutine integration (future as coroutine return
// type + co_await on futures) — the Fig. 5 "future + coroutine" model.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "minihpx/coroutine/task.hpp"
#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"

namespace {

struct CoroutineTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

mhpx::future<int> coro_return_immediate() { co_return 17; }

mhpx::future<int> coro_await_ready() {
  const int v = co_await mhpx::make_ready_future(20);
  co_return v + 1;
}

mhpx::future<int> coro_await_async() {
  const int a = co_await mhpx::async([] { return 10; });
  const int b = co_await mhpx::async([a] { return a * 3; });
  co_return a + b;
}

mhpx::future<void> coro_void(std::atomic<int>& out) {
  const int v = co_await mhpx::async([] { return 5; });
  out.store(v);
  co_return;
}

mhpx::future<int> coro_throws() {
  co_await mhpx::make_ready_future();
  throw std::runtime_error("coro-fail");
}

mhpx::future<int> coro_await_throwing() {
  const int v = co_await mhpx::async([]() -> int {
    throw std::domain_error("awaited-fail");
  });
  co_return v;
}

mhpx::future<long> coro_loop(int n) {
  long sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += co_await mhpx::async([i] { return i; });
  }
  co_return sum;
}

TEST_F(CoroutineTest, CoReturnImmediate) {
  EXPECT_EQ(coro_return_immediate().get(), 17);
}

TEST_F(CoroutineTest, AwaitReadyFuture) {
  EXPECT_EQ(coro_await_ready().get(), 21);
}

TEST_F(CoroutineTest, AwaitAsyncChain) {
  EXPECT_EQ(coro_await_async().get(), 40);
}

TEST_F(CoroutineTest, VoidCoroutine) {
  std::atomic<int> out{0};
  coro_void(out).get();
  EXPECT_EQ(out.load(), 5);
}

TEST_F(CoroutineTest, ExceptionInBodyPropagates) {
  EXPECT_THROW(coro_throws().get(), std::runtime_error);
}

TEST_F(CoroutineTest, ExceptionInAwaitedFuturePropagates) {
  EXPECT_THROW(coro_await_throwing().get(), std::domain_error);
}

TEST_F(CoroutineTest, LoopOfAwaits) {
  EXPECT_EQ(coro_loop(50).get(), 1225);
}

TEST_F(CoroutineTest, ManyConcurrentCoroutines) {
  std::vector<mhpx::future<long>> futs;
  futs.reserve(20);
  for (int i = 0; i < 20; ++i) {
    futs.push_back(coro_loop(10));
  }
  for (auto& f : futs) {
    EXPECT_EQ(f.get(), 45);
  }
}

}  // namespace
