// Unit and property tests for the parallel algorithms.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "minihpx/parallel/algorithms.hpp"
#include "minihpx/runtime.hpp"

namespace {

namespace ex = mhpx::execution;

struct ParallelTest : ::testing::Test {
  mhpx::Runtime runtime{{3, 64 * 1024}};
};

TEST_F(ParallelTest, ForEachSeq) {
  std::vector<int> v(100, 1);
  mhpx::for_each(ex::seq, v.begin(), v.end(), [](int& x) { x *= 2; });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 200);
}

TEST_F(ParallelTest, ForEachPar) {
  std::vector<int> v(10000, 1);
  mhpx::for_each(ex::par, v.begin(), v.end(), [](int& x) { x += 1; });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0L), 20000);
}

TEST_F(ParallelTest, ForEachParUnseq) {
  std::vector<double> v(5000, 0.5);
  mhpx::for_each(ex::par_unseq, v.begin(), v.end(),
                 [](double& x) { x = x * x; });
  EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0), 1250.0, 1e-9);
}

TEST_F(ParallelTest, ForEachEmptyRange) {
  std::vector<int> v;
  mhpx::for_each(ex::par, v.begin(), v.end(), [](int&) { FAIL(); });
}

TEST_F(ParallelTest, ForEachVisitsEachElementOnce) {
  std::vector<std::atomic<int>> counts(1000);
  std::vector<std::size_t> idx(1000);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  mhpx::for_each(ex::par, idx.begin(), idx.end(),
                 [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST_F(ParallelTest, ForEachCustomChunks) {
  std::atomic<int> sum{0};
  std::vector<int> v(100, 1);
  mhpx::for_each(ex::par.with_chunks(7), v.begin(), v.end(),
                 [&](int x) { sum.fetch_add(x); });
  EXPECT_EQ(sum.load(), 100);
}

TEST_F(ParallelTest, ForEachPropagatesException) {
  std::vector<int> v(100, 1);
  EXPECT_THROW(mhpx::for_each(ex::par, v.begin(), v.end(),
                              [](int x) {
                                if (x == 1) {
                                  throw std::runtime_error("boom");
                                }
                              }),
               std::runtime_error);
}

TEST_F(ParallelTest, ForLoopSeqAndParAgree) {
  std::vector<long> a(2000, 0);
  std::vector<long> b(2000, 0);
  mhpx::for_loop(ex::seq, 0, a.size(), [&](std::size_t i) {
    a[i] = static_cast<long>(i) * 3;
  });
  mhpx::for_loop(ex::par, 0, b.size(), [&](std::size_t i) {
    b[i] = static_cast<long>(i) * 3;
  });
  EXPECT_EQ(a, b);
}

TEST_F(ParallelTest, ForLoopSubRange) {
  std::atomic<long> sum{0};
  mhpx::for_loop(ex::par, 10, 20,
                 [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST_F(ParallelTest, ReduceSum) {
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 1);
  const long seq = mhpx::reduce(ex::seq, v.begin(), v.end(), 0L,
                                [](long a, long b) { return a + b; });
  const long par = mhpx::reduce(ex::par, v.begin(), v.end(), 0L,
                                [](long a, long b) { return a + b; });
  EXPECT_EQ(seq, 500500);
  EXPECT_EQ(par, 500500);
}

TEST_F(ParallelTest, ReduceInitUsedExactlyOnce) {
  std::vector<int> v(100, 0);
  const long r = mhpx::reduce(ex::par.with_chunks(10), v.begin(), v.end(),
                              1000L, [](long a, long b) { return a + b; });
  EXPECT_EQ(r, 1000);
}

TEST_F(ParallelTest, TransformReduceMatchesManual) {
  std::vector<double> v(500);
  std::iota(v.begin(), v.end(), 1.0);
  const double par = mhpx::transform_reduce(
      ex::par, v.begin(), v.end(), 0.0,
      [](double a, double b) { return a + b; },
      [](double x) { return x * x; });
  double expected = 0.0;
  for (double x : v) {
    expected += x * x;
  }
  EXPECT_NEAR(par, expected, expected * 1e-12);
}

TEST_F(ParallelTest, TransformReduceIdxMaclaurinShape) {
  // sum over n of (-1)^(n+1) x^n / n converges to ln(1+x): the shape of the
  // paper's benchmark kernel expressed through the parallel reduction.
  const double x = 0.5;
  const std::size_t terms = 200000;
  const double total = mhpx::transform_reduce_idx(
      ex::par, 1, terms + 1, 0.0,
      [](double a, double b) { return a + b; },
      [x](std::size_t n) {
        const double sign = (n % 2 == 1) ? 1.0 : -1.0;
        return sign * std::pow(x, static_cast<double>(n)) /
               static_cast<double>(n);
      });
  EXPECT_NEAR(total, std::log1p(x), 1e-12);
}

TEST_F(ParallelTest, TransformReduceIdxEmpty) {
  const double r = mhpx::transform_reduce_idx(
      ex::par, 5, 5, 42.0, [](double a, double b) { return a + b; },
      [](std::size_t) { return 1.0; });
  EXPECT_EQ(r, 42.0);
}

// Property sweep: parallel results match sequential across sizes and chunk
// counts.
class ParallelSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {
 protected:
  mhpx::Runtime runtime{{3, 64 * 1024}};
};

TEST_P(ParallelSweep, ForLoopSumMatches) {
  const auto [n, chunks] = GetParam();
  std::atomic<long> par_sum{0};
  mhpx::for_loop(ex::par.with_chunks(chunks), 0, n, [&](std::size_t i) {
    par_sum.fetch_add(static_cast<long>(i));
  });
  long seq_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    seq_sum += static_cast<long>(i);
  }
  EXPECT_EQ(par_sum.load(), seq_sum);
}

TEST_P(ParallelSweep, TransformReduceMatches) {
  const auto [n, chunks] = GetParam();
  const double par = mhpx::transform_reduce_idx(
      ex::par.with_chunks(chunks), 0, n, 0.0,
      [](double a, double b) { return a + b; },
      [](std::size_t i) { return static_cast<double>(i % 7); });
  double seq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    seq += static_cast<double>(i % 7);
  }
  EXPECT_DOUBLE_EQ(par, seq);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndChunks, ParallelSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 17, 256, 4099),
                       ::testing::Values<unsigned>(1, 2, 3, 8, 64)));

}  // namespace
