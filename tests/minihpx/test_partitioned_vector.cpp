// Tests for the distributed partitioned vector.

#include <gtest/gtest.h>

#include "minihpx/distributed/partitioned_vector.hpp"

namespace {

namespace md = mhpx::dist;

class PartitionedVectorTest : public ::testing::TestWithParam<md::FabricKind> {
 protected:
  md::DistributedRuntime::Config config(unsigned n = 3) const {
    md::DistributedRuntime::Config cfg;
    cfg.num_localities = n;
    cfg.threads_per_locality = 2;
    cfg.stack_size = 64 * 1024;
    cfg.fabric = GetParam();
    return cfg;
  }
};

TEST_P(PartitionedVectorTest, SegmentsSplitAcrossLocalities) {
  md::DistributedRuntime rt(config(3));
  md::PartitionedVector v(rt, 10, 0.0);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.segment_count(), 3u);
  // 10 over 3: segments of 3/4/3 (floor split): owners by index.
  EXPECT_EQ(v.owner(0), 0u);
  EXPECT_EQ(v.owner(9), 2u);
  EXPECT_THROW((void)v.owner(10), std::out_of_range);
}

TEST_P(PartitionedVectorTest, GetSetRoundTrip) {
  md::DistributedRuntime rt(config(2));
  md::PartitionedVector v(rt, 8, 1.5);
  EXPECT_DOUBLE_EQ(v.get(0).get(), 1.5);
  EXPECT_DOUBLE_EQ(v.get(7).get(), 1.5);
  v.set(5, 42.0).get();
  EXPECT_DOUBLE_EQ(v.get(5).get(), 42.0);
  EXPECT_DOUBLE_EQ(v.get(4).get(), 1.5);
}

TEST_P(PartitionedVectorTest, IotaAndSum) {
  md::DistributedRuntime rt(config(3));
  md::PartitionedVector v(rt, 100, 0.0);
  v.iota(1.0);
  EXPECT_DOUBLE_EQ(v.get(0).get(), 1.0);
  EXPECT_DOUBLE_EQ(v.get(99).get(), 100.0);
  // Cross-segment continuity.
  EXPECT_DOUBLE_EQ(v.get(33).get(), 34.0);
  EXPECT_DOUBLE_EQ(v.get(34).get(), 35.0);
  EXPECT_DOUBLE_EQ(v.sum(), 5050.0);
}

TEST_P(PartitionedVectorTest, ScaleIsGlobal) {
  md::DistributedRuntime rt(config(2));
  md::PartitionedVector v(rt, 50, 2.0);
  v.scale(3.0);
  EXPECT_DOUBLE_EQ(v.sum(), 50 * 6.0);
  EXPECT_DOUBLE_EQ(v.get(49).get(), 6.0);
}

TEST_P(PartitionedVectorTest, SingleLocalityDegenerateCase) {
  md::DistributedRuntime rt(config(1));
  md::PartitionedVector v(rt, 5, 7.0);
  EXPECT_EQ(v.segment_count(), 1u);
  EXPECT_DOUBLE_EQ(v.sum(), 35.0);
}

INSTANTIATE_TEST_SUITE_P(Fabrics, PartitionedVectorTest,
                         ::testing::Values(md::FabricKind::inproc,
                                           md::FabricKind::tcp),
                         [](const auto& param_info) {
                           return std::string(md::to_string(param_info.param));
                         });

}  // namespace
