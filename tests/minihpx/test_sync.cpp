// Unit tests for fiber-aware synchronisation primitives.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/channel.hpp"
#include "minihpx/sync/latch.hpp"
#include "minihpx/sync/mutex.hpp"

namespace {

struct SyncTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_F(SyncTest, MutexProvidesMutualExclusion) {
  mhpx::sync::mutex m;
  long counter = 0;  // guarded by m
  std::vector<mhpx::future<void>> futs;
  for (int t = 0; t < 8; ++t) {
    futs.push_back(mhpx::async([&] {
      for (int i = 0; i < 200; ++i) {
        std::lock_guard lk(m);
        ++counter;
      }
    }));
  }
  for (auto& f : futs) {
    f.get();
  }
  EXPECT_EQ(counter, 1600);
}

TEST_F(SyncTest, MutexTryLock) {
  mhpx::sync::mutex m;
  EXPECT_TRUE(m.try_lock());
  EXPECT_FALSE(m.try_lock());
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST_F(SyncTest, MutexDoesNotBlockWorkerThreads) {
  // With a single worker: task A holds the mutex and waits for task B to
  // run. If lock() blocked the OS thread, B could never run -> deadlock.
  mhpx::Runtime* outer = mhpx::Runtime::instance();
  ASSERT_NE(outer, nullptr);
  mhpx::sync::mutex m;
  std::atomic<bool> b_ran{false};
  mhpx::promise<void> b_done;

  auto a = mhpx::async([&] {
    std::lock_guard lk(m);
    auto f = b_done.get_future();
    f.get();  // suspends fiber A while holding m
  });
  auto b = mhpx::async([&] {
    std::lock_guard lk(m);  // must suspend, not block the worker
    b_ran.store(true);
  });
  // b cannot have the mutex yet; release A.
  b_done.set_value();
  a.get();
  b.get();
  EXPECT_TRUE(b_ran.load());
}

TEST_F(SyncTest, ConditionVariableAnySignals) {
  mhpx::sync::mutex m;
  mhpx::sync::condition_variable_any cv;
  bool flag = false;  // guarded by m

  auto waiter = mhpx::async([&] {
    std::unique_lock lk(m);
    cv.wait(lk, [&] { return flag; });
    return 7;
  });
  auto signaler = mhpx::async([&] {
    std::lock_guard lk(m);
    flag = true;
    cv.notify_all();
  });
  signaler.get();
  EXPECT_EQ(waiter.get(), 7);
}

TEST_F(SyncTest, LatchCountsDown) {
  mhpx::sync::latch l(3);
  EXPECT_FALSE(l.try_wait());
  l.count_down();
  l.count_down(2);
  EXPECT_TRUE(l.try_wait());
  l.wait();  // returns immediately
}

TEST_F(SyncTest, LatchNegativeThrows) {
  EXPECT_THROW(mhpx::sync::latch l(-1), std::invalid_argument);
  mhpx::sync::latch l(1);
  EXPECT_THROW(l.count_down(2), std::logic_error);
}

TEST_F(SyncTest, LatchJoinsTaskFanOut) {
  constexpr int kTasks = 32;
  mhpx::sync::latch done(kTasks);
  std::atomic<int> count{0};
  for (int i = 0; i < kTasks; ++i) {
    mhpx::post([&] {
      count.fetch_add(1);
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST_F(SyncTest, BarrierSynchronisesPhases) {
  constexpr int kParties = 4;
  mhpx::sync::barrier bar(kParties);
  std::atomic<int> phase0{0};
  std::atomic<int> phase1_saw_full_phase0{0};
  std::vector<mhpx::future<void>> futs;
  for (int t = 0; t < kParties; ++t) {
    futs.push_back(mhpx::async([&] {
      phase0.fetch_add(1);
      bar.arrive_and_wait();
      if (phase0.load() == kParties) {
        phase1_saw_full_phase0.fetch_add(1);
      }
      bar.arrive_and_wait();  // reusable
    }));
  }
  for (auto& f : futs) {
    f.get();
  }
  EXPECT_EQ(phase1_saw_full_phase0.load(), kParties);
}

TEST_F(SyncTest, BarrierInvalidParties) {
  EXPECT_THROW(mhpx::sync::barrier b(0), std::invalid_argument);
}

TEST_F(SyncTest, SemaphoreLimitsConcurrency) {
  mhpx::sync::counting_semaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<mhpx::future<void>> futs;
  for (int t = 0; t < 10; ++t) {
    futs.push_back(mhpx::async([&] {
      sem.acquire();
      const int now = inside.fetch_add(1) + 1;
      int seen = max_inside.load();
      while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
      }
      mhpx::threads::Scheduler::yield();
      inside.fetch_sub(1);
      sem.release();
    }));
  }
  for (auto& f : futs) {
    f.get();
  }
  EXPECT_LE(max_inside.load(), 2);
  EXPECT_EQ(sem.value(), 2);
}

TEST_F(SyncTest, SemaphoreTryAcquire) {
  mhpx::sync::counting_semaphore sem(1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  sem.release();
}

TEST_F(SyncTest, ChannelRoundTrip) {
  mhpx::sync::channel<int> ch(4);
  auto producer = mhpx::async([&] {
    for (int i = 0; i < 100; ++i) {
      ch.send(i);
    }
    ch.close();
  });
  auto consumer = mhpx::async([&] {
    long sum = 0;
    while (auto v = ch.receive()) {
      sum += *v;
    }
    return sum;
  });
  producer.get();
  EXPECT_EQ(consumer.get(), 4950);
}

TEST_F(SyncTest, ChannelBackpressure) {
  // Capacity-1 channel: the producer cannot run ahead of the consumer.
  mhpx::sync::channel<int> ch(1);
  std::atomic<int> sent{0};
  auto producer = mhpx::async([&] {
    for (int i = 0; i < 10; ++i) {
      ch.send(i);
      sent.fetch_add(1);
    }
    ch.close();
  });
  auto consumer = mhpx::async([&] {
    int received = 0;
    while (auto v = ch.receive()) {
      // sent can exceed received by at most capacity + 1 in flight
      EXPECT_LE(sent.load(), received + 2);
      ++received;
    }
    return received;
  });
  producer.get();
  EXPECT_EQ(consumer.get(), 10);
}

TEST_F(SyncTest, ChannelSendOnClosedThrows) {
  mhpx::sync::channel<int> ch(2);
  ch.close();
  EXPECT_THROW(ch.send(1), mhpx::sync::channel_closed);
  EXPECT_FALSE(ch.try_send(1));
}

TEST_F(SyncTest, ChannelDrainsAfterClose) {
  mhpx::sync::channel<int> ch(4);
  ch.send(1);
  ch.send(2);
  ch.close();
  EXPECT_EQ(ch.receive(), std::optional<int>(1));
  EXPECT_EQ(ch.receive(), std::optional<int>(2));
  EXPECT_EQ(ch.receive(), std::nullopt);
}

TEST_F(SyncTest, ChannelTryOperations) {
  mhpx::sync::channel<int> ch(1);
  EXPECT_EQ(ch.try_receive(), std::nullopt);
  EXPECT_TRUE(ch.try_send(5));
  EXPECT_FALSE(ch.try_send(6));  // full
  EXPECT_EQ(ch.try_receive(), std::optional<int>(5));
}

TEST_F(SyncTest, ChannelZeroCapacityThrows) {
  EXPECT_THROW(mhpx::sync::channel<int> ch(0), std::invalid_argument);
}

TEST_F(SyncTest, ChannelMpmcStress) {
  mhpx::sync::channel<int> ch(8);
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 50;
  std::vector<mhpx::future<void>> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.push_back(mhpx::async([&] {
      for (int i = 0; i < kItemsEach; ++i) {
        ch.send(1);
      }
    }));
  }
  std::vector<mhpx::future<long>> consumers;
  std::atomic<int> consumed{0};
  for (int c = 0; c < 2; ++c) {
    consumers.push_back(mhpx::async([&] {
      long sum = 0;
      while (consumed.fetch_add(1) < kProducers * kItemsEach) {
        auto v = ch.receive();
        if (!v) {
          break;
        }
        sum += *v;
      }
      return sum;
    }));
  }
  for (auto& f : producers) {
    f.get();
  }
  long total = 0;
  for (auto& f : consumers) {
    total += f.get();
  }
  EXPECT_EQ(total, kProducers * kItemsEach);
}

}  // namespace
