// Schedule-permutation explorer (mhpx::testing::explore).
//
// Acceptance test for the testing subsystem: a planted unsynchronized-
// counter bug (classic lost update, invisible under plain serial runs of a
// single-worker scheduler) must be found within the 64-interleaving budget,
// shrink to a minimal preemption trace, and replay bit-identically from the
// printed RVEVAL_SCHED_SEED / RVEVAL_SCHED_PREEMPTS recipe.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"
#include "minihpx/sync/mutex.hpp"
#include "minihpx/testing/explorer.hpp"

namespace {

using mhpx::testing::DetConfig;
using mhpx::testing::det_run;
using mhpx::testing::ExploreConfig;
using mhpx::testing::explore;

/// The planted bug: two tasks increment a shared counter with a
/// read-modify-write window. On the serialized det scheduler the window
/// only matters when the explorer forces a yield inside it.
void lost_update_body() {
  static int counter;
  counter = 0;
  mhpx::sync::latch done(2);
  for (int t = 0; t < 2; ++t) {
    mhpx::post([&done] {
      mhpx::testing::annotate_read(&counter, "counter load");
      const int v = counter;
      mhpx::testing::preemption_point(0xC0);
      mhpx::testing::annotate_write(&counter, "counter store");
      counter = v + 1;
      done.count_down();
    });
  }
  done.wait();
  mhpx::testing::check(counter == 2,
                       "lost update: counter == " + std::to_string(counter));
}

TEST(Explorer, FindsPlantedLostUpdateWithin64Schedules) {
  ExploreConfig cfg;
  cfg.schedules = 64;
  cfg.race_check = false;  // hunt the assertion failure, not the race report
  const auto result = explore(cfg, lost_update_body);

  ASSERT_TRUE(result.failed) << "planted bug not found in 64 schedules";
  EXPECT_LE(result.schedules_run, 64u + 8u);  // budget + shrink reruns
  EXPECT_NE(result.replay_recipe.find("lost update"), std::string::npos);
  EXPECT_NE(result.replay_recipe.find("RVEVAL_SCHED_SEED="),
            std::string::npos);
  EXPECT_NE(result.replay_recipe.find("RVEVAL_SCHED_PREEMPTS="),
            std::string::npos);
  // Shrinking must reduce the schedule to the single decisive preemption.
  ASSERT_EQ(result.failing.preempts_taken.size(), 1u);
}

TEST(Explorer, ShrunkRecipeReplaysBitIdentically) {
  ExploreConfig cfg;
  cfg.schedules = 64;
  cfg.race_check = false;
  const auto found = explore(cfg, lost_update_body);
  ASSERT_TRUE(found.failed);

  // Rebuild the exact schedule from the recipe's (seed, plan) pair and run
  // it twice: every observable of the run must match.
  DetConfig replay;
  replay.seed = found.failing.seed;
  for (const auto& p : found.failing.preempts_taken) {
    replay.preempts.push_back(p.visit);
  }
  const auto a = det_run(replay, lost_update_body);
  const auto b = det_run(replay, lost_update_body);
  EXPECT_TRUE(a.failed);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.points_visited, b.points_visited);
  ASSERT_EQ(a.preempts_taken.size(), b.preempts_taken.size());
  for (std::size_t i = 0; i < a.preempts_taken.size(); ++i) {
    EXPECT_EQ(a.preempts_taken[i].visit, b.preempts_taken[i].visit);
    EXPECT_EQ(a.preempts_taken[i].tag, b.preempts_taken[i].tag);
  }
  EXPECT_EQ(a.failures, found.failing.failures);
}

TEST(Explorer, EnvRecipeDrivesSingleScheduleReplay) {
  ExploreConfig cfg;
  cfg.schedules = 64;
  cfg.race_check = false;
  const auto found = explore(cfg, lost_update_body);
  ASSERT_TRUE(found.failed);
  ASSERT_EQ(found.failing.preempts_taken.size(), 1u);

  const std::string seed = std::to_string(found.failing.seed);
  const std::string preempts =
      std::to_string(found.failing.preempts_taken[0].visit);
  ASSERT_EQ(setenv("RVEVAL_SCHED_SEED", seed.c_str(), 1), 0);
  ASSERT_EQ(setenv("RVEVAL_SCHED_PREEMPTS", preempts.c_str(), 1), 0);
  const auto replayed = explore(cfg, lost_update_body);
  unsetenv("RVEVAL_SCHED_SEED");
  unsetenv("RVEVAL_SCHED_PREEMPTS");

  EXPECT_EQ(replayed.schedules_run, 1u);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.failing.failures, found.failing.failures);
}

TEST(Explorer, MutexProtectedCounterSurvivesTheFullBudget) {
  const auto body = [] {
    static int counter;
    static mhpx::sync::mutex guard;
    counter = 0;
    mhpx::sync::latch done(2);
    for (int t = 0; t < 2; ++t) {
      mhpx::post([&done] {
        guard.lock();
        mhpx::testing::annotate_read(&counter, "counter load");
        const int v = counter;
        mhpx::testing::preemption_point(0xC1);
        mhpx::testing::annotate_write(&counter, "counter store");
        counter = v + 1;
        guard.unlock();
        done.count_down();
      });
    }
    done.wait();
    mhpx::testing::check(counter == 2, "mutex failed to protect counter");
  };
  ExploreConfig cfg;
  cfg.schedules = 64;
  cfg.race_check = true;  // the lock edges must also satisfy the checker
  const auto result = explore(cfg, body);
  EXPECT_FALSE(result.failed) << result.replay_recipe;
  EXPECT_EQ(result.schedules_run, 64u);
}

TEST(Explorer, RaceCheckerFlagsTheBugEvenWithoutTheDecisivePreemption) {
  // With the happens-before checker on, the unsynchronized accesses are
  // reported even on schedules whose outcome happened to be correct — the
  // explorer then fails on the very first schedule.
  ExploreConfig cfg;
  cfg.schedules = 64;
  cfg.race_check = true;
  const auto result = explore(cfg, lost_update_body);
  ASSERT_TRUE(result.failed);
  EXPECT_LE(result.schedules_run, 3u);  // first schedule + shrink reruns
  EXPECT_NE(result.replay_recipe.find("data race"), std::string::npos);
}

}  // namespace
