// mhpx::apex metrics exposition: Prometheus rendering (families, labels,
// cumulative le buckets, the exact raw-bucket family, merged "all" series),
// name sanitization, the text-sample parser, and the loopback MetricsServer
// (ephemeral bind, /metrics, /healthz, 404, body-exception → 500).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "minihpx/apex/counters.hpp"
#include "minihpx/apex/histogram.hpp"
#include "minihpx/apex/metrics_http.hpp"

namespace apex = mhpx::apex;

namespace {

/// Blocking loopback HTTP/1.0 GET; returns "<status-line>\n<body>".
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("connect");
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string reply;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto header_end = reply.find("\r\n\r\n");
  const auto line_end = reply.find("\r\n");
  if (header_end == std::string::npos || line_end == std::string::npos) {
    throw std::runtime_error("malformed reply");
  }
  return reply.substr(0, line_end) + "\n" + reply.substr(header_end + 4);
}

apex::MetricsLocality one_locality(unsigned id) {
  apex::MetricsLocality loc;
  loc.id = id;
  loc.counters.emplace_back("/threads/default/tasks", 10.0 * (id + 1),
                            apex::CounterKind::monotonic);
  loc.counters.emplace_back("/threads/default/idle-rate", 0.25,
                            apex::CounterKind::gauge);
  apex::Histogram h;
  for (unsigned i = 0; i <= id; ++i) {
    h.record_ns(1000);
  }
  loc.histograms.emplace_back("/threads/default/task-wait", h.snapshot());
  return loc;
}

}  // namespace

TEST(MetricNames, SanitizeFoldsNonAlnumRuns) {
  EXPECT_EQ(apex::sanitize_metric_name("/threads/default/task-wait"),
            "rveval_threads_default_task_wait");
  EXPECT_EQ(apex::sanitize_metric_name("/parcels/tcp/send-flush"),
            "rveval_parcels_tcp_send_flush");
  EXPECT_EQ(apex::sanitize_metric_name("a//b..c"), "rveval_a_b_c");
}

TEST(PromParse, ExactSampleMatchAndAbsence) {
  const std::string text =
      "# TYPE rveval_x counter\n"
      "rveval_x{locality=\"0\"} 41.5\n"
      "rveval_x{locality=\"1\"} 2\n";
  EXPECT_DOUBLE_EQ(apex::parse_prom_value(text, "rveval_x{locality=\"0\"}"),
                   41.5);
  EXPECT_DOUBLE_EQ(apex::parse_prom_value(text, "rveval_x{locality=\"1\"}"),
                   2.0);
  EXPECT_TRUE(
      std::isnan(apex::parse_prom_value(text, "rveval_x{locality=\"2\"}")));
}

TEST(PromRender, CountersCarryTypeAndLocalityLabels) {
  const std::string text =
      apex::render_prometheus({one_locality(0), one_locality(1)});
  EXPECT_NE(text.find("# TYPE rveval_threads_default_tasks counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rveval_threads_default_idle_rate gauge"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(apex::parse_prom_value(
                       text, "rveval_threads_default_tasks{locality=\"0\"}"),
                   10.0);
  EXPECT_DOUBLE_EQ(apex::parse_prom_value(
                       text, "rveval_threads_default_tasks{locality=\"1\"}"),
                   20.0);
}

TEST(PromRender, RawBucketsAreExactAndMergedSeriesSum) {
  const auto l0 = one_locality(0);  // 1 event at 1000 ns
  const auto l1 = one_locality(1);  // 2 events at 1000 ns
  const std::string text = apex::render_prometheus({l0, l1});

  // 1000 ns → bucket 190; raw-bucket samples are exact integers.
  const std::string fam = "rveval_threads_default_task_wait_raw_bucket";
  EXPECT_NE(text.find("# TYPE " + fam + " gauge"), std::string::npos);
  EXPECT_DOUBLE_EQ(
      apex::parse_prom_value(text, fam + "{locality=\"0\",idx=\"190\"}"), 1.0);
  EXPECT_DOUBLE_EQ(
      apex::parse_prom_value(text, fam + "{locality=\"1\",idx=\"190\"}"), 2.0);
  EXPECT_DOUBLE_EQ(
      apex::parse_prom_value(text, fam + "{locality=\"all\",idx=\"190\"}"),
      3.0);

  // The merged quantile in the document equals the offline merge of the
  // same snapshots, bit-exactly (%.17g round-trips doubles).
  apex::HistogramSnapshot merged = l0.histograms[0].second;
  merged.merge(l1.histograms[0].second);
  const std::string qfam =
      "rveval_threads_default_task_wait_quantile_seconds";
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    const double scraped = apex::parse_prom_value(
        text, qfam + std::string("{locality=\"all\",q=\"") + q + "\"}");
    EXPECT_EQ(scraped, merged.quantile(std::strtod(q, nullptr)))
        << "q=" << q;
  }

  // Histogram-family plumbing: cumulative le buckets end at +Inf == count.
  const std::string hfam = "rveval_threads_default_task_wait_seconds";
  EXPECT_NE(text.find("# TYPE " + hfam + " histogram"), std::string::npos);
  EXPECT_DOUBLE_EQ(apex::parse_prom_value(
                       text, hfam + "_count{locality=\"all\"}"),
                   3.0);
  EXPECT_DOUBLE_EQ(
      apex::parse_prom_value(
          text, hfam + "_bucket{locality=\"all\",le=\"+Inf\"}"),
      3.0);
}

TEST(PromRender, CollectMetricsSeesRegistries) {
  apex::CounterRegistry counters;
  apex::HistogramRegistry hists(counters);
  double v = 7.0;
  ASSERT_TRUE(counters.add("/test/v", "", apex::CounterKind::gauge,
                           [&v] { return v; }));
  hists.get_or_create("/test/lat").record_ns(10);
  const apex::MetricsLocality loc = apex::collect_metrics(counters, hists, 3);
  EXPECT_EQ(loc.id, 3u);
  // The histogram's derived leaves (count/mean/p50/...) are counters too,
  // so expect the explicit gauge plus seven leaves.
  EXPECT_EQ(loc.counters.size(), 8u);
  ASSERT_EQ(loc.histograms.size(), 1u);
  EXPECT_EQ(loc.histograms[0].first, "/test/lat");
  EXPECT_EQ(loc.histograms[0].second.count, 1u);
}

TEST(MetricsServer, ServesMetricsHealthzAnd404) {
  apex::MetricsServer server([] { return std::string("# TYPE x gauge\nx 1\n"); });
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("x 1"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  server.stop();
  server.stop();  // idempotent
  EXPECT_THROW(http_get(server.port(), "/healthz"), std::runtime_error);
}

TEST(MetricsServer, BodyExceptionBecomes500) {
  apex::MetricsServer server(
      []() -> std::string { throw std::runtime_error("boom"); });
  const std::string reply = http_get(server.port(), "/metrics");
  EXPECT_NE(reply.find("HTTP/1.0 500"), std::string::npos);
  // /healthz never runs the body and stays alive.
  EXPECT_NE(http_get(server.port(), "/healthz").find("200"),
            std::string::npos);
}
