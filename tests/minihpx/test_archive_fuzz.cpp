// Property/fuzz test: deserialising arbitrary bytes must either produce a
// value or throw archive_error — never crash, never allocate unboundedly.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "minihpx/distributed/parcel.hpp"
#include "minihpx/serialization/archive.hpp"

namespace {

namespace ser = mhpx::serialization;

template <typename T>
void try_decode(const std::vector<std::byte>& bytes) {
  try {
    (void)ser::from_bytes<T>(bytes);
  } catch (const ser::archive_error&) {
    // expected for malformed input
  }
}

std::vector<std::byte> random_bytes(std::mt19937& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) {
    b = static_cast<std::byte>(rng() & 0xFF);
  }
  return out;
}

TEST(ArchiveFuzz, RandomBuffersNeverCrash) {
  std::mt19937 rng(20260707);
  for (int trial = 0; trial < 300; ++trial) {
    const auto bytes = random_bytes(rng, rng() % 256);
    try_decode<std::string>(bytes);
    try_decode<std::vector<double>>(bytes);
    try_decode<std::vector<std::string>>(bytes);
    try_decode<std::map<int, std::string>>(bytes);
    try_decode<std::optional<std::vector<int>>>(bytes);
    try {
      (void)mhpx::dist::decode_parcel(bytes);
    } catch (const ser::archive_error&) {
    }
  }
}

TEST(ArchiveFuzz, TruncationsOfValidBuffersNeverCrash) {
  // Take a real serialized value and decode every prefix of it.
  std::map<std::string, std::vector<double>> value{
      {"alpha", {1.0, 2.0, 3.0}}, {"beta", {}}, {"gamma", {-4.5}}};
  const auto full = ser::to_bytes(value);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::byte> prefix(full.begin(),
                                  full.begin() + static_cast<long>(cut));
    try_decode<std::map<std::string, std::vector<double>>>(prefix);
  }
  // The full buffer decodes exactly.
  EXPECT_EQ((ser::from_bytes<std::map<std::string, std::vector<double>>>(
                full)),
            value);
}

TEST(ArchiveFuzz, BitFlipsOfValidParcelsNeverCrash) {
  mhpx::dist::Parcel p;
  p.header.kind = mhpx::dist::ParcelKind::call;
  p.header.action = mhpx::dist::fnv1a("fuzz::action");
  p.payload = ser::to_bytes(std::vector<double>(64, 3.14));
  const auto frame = mhpx::dist::encode_parcel(p);
  std::mt19937 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = frame;
    // Flip 1-4 random bits.
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng() % mutated.size();
      mutated[byte] ^= static_cast<std::byte>(1u << (rng() % 8));
    }
    try {
      (void)mhpx::dist::decode_parcel(mutated);
    } catch (const ser::archive_error&) {
    }
  }
}

}  // namespace
