// Tests for dataflow (join-on-futures task launch), shared_future, and the
// scheduler performance counters.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "minihpx/futures/dataflow.hpp"
#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"

namespace {

struct DataflowTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_F(DataflowTest, JoinsTwoFutures) {
  auto a = mhpx::async([] { return 40; });
  auto b = mhpx::async([] { return 2; });
  auto c = mhpx::dataflow([](int x, int y) { return x + y; }, std::move(a),
                          std::move(b));
  EXPECT_EQ(c.get(), 42);
}

TEST_F(DataflowTest, MixesFuturesAndValues) {
  auto a = mhpx::async([] { return std::string("x="); });
  auto c = mhpx::dataflow(
      [](std::string s, int v) { return s + std::to_string(v); },
      std::move(a), 7);
  EXPECT_EQ(c.get(), "x=7");
}

TEST_F(DataflowTest, NoFutureArgsRunsImmediately) {
  auto c = mhpx::dataflow([](int v) { return v * 2; }, 21);
  EXPECT_EQ(c.get(), 42);
}

TEST_F(DataflowTest, VoidResult) {
  std::atomic<int> seen{0};
  auto a = mhpx::async([] { return 5; });
  auto c = mhpx::dataflow([&](int v) { seen.store(v); }, std::move(a));
  c.get();
  EXPECT_EQ(seen.load(), 5);
}

TEST_F(DataflowTest, ErrorInInputPropagates) {
  auto bad = mhpx::async([]() -> int { throw std::runtime_error("df"); });
  auto c = mhpx::dataflow([](int v) { return v; }, std::move(bad));
  EXPECT_THROW(c.get(), std::runtime_error);
}

TEST_F(DataflowTest, DoesNotRunUntilAllReady) {
  mhpx::promise<int> gate;
  std::atomic<bool> ran{false};
  auto ready = mhpx::make_ready_future(1);
  auto c = mhpx::dataflow(
      [&](int a, int b) {
        ran.store(true);
        return a + b;
      },
      std::move(ready), gate.get_future());
  EXPECT_FALSE(ran.load());
  gate.set_value(2);
  EXPECT_EQ(c.get(), 3);
  EXPECT_TRUE(ran.load());
}

TEST_F(DataflowTest, ChainsOfDataflows) {
  auto a = mhpx::dataflow([] { return 1; });
  auto b = mhpx::dataflow([](int x) { return x + 1; }, std::move(a));
  auto c = mhpx::dataflow([](int x) { return x * 10; }, std::move(b));
  EXPECT_EQ(c.get(), 20);
}

TEST_F(DataflowTest, WideJoin) {
  std::vector<mhpx::future<int>> parts;
  // dataflow is variadic; emulate a wide join with nested pairs.
  auto f1 = mhpx::async([] { return 1; });
  auto f2 = mhpx::async([] { return 2; });
  auto f3 = mhpx::async([] { return 3; });
  auto f4 = mhpx::async([] { return 4; });
  auto c = mhpx::dataflow(
      [](int a, int b, int x, int y) { return a + b + x + y; },
      std::move(f1), std::move(f2), std::move(f3), std::move(f4));
  EXPECT_EQ(c.get(), 10);
}

TEST_F(DataflowTest, SharedFutureMultipleGets) {
  auto sf = mhpx::share(mhpx::async([] { return 11; }));
  EXPECT_EQ(sf.get(), 11);
  EXPECT_EQ(sf.get(), 11);  // not consumed
  auto copy = sf;
  EXPECT_EQ(copy.get(), 11);
}

TEST_F(DataflowTest, SharedFutureMultipleThens) {
  auto sf = mhpx::share(mhpx::async([] { return 3; }));
  auto a = sf.then([](int v) { return v + 1; });
  auto b = sf.then([](int v) { return v * 10; });
  EXPECT_EQ(a.get(), 4);
  EXPECT_EQ(b.get(), 30);
}

TEST_F(DataflowTest, SharedFutureVoid) {
  auto sf = mhpx::share(mhpx::async([] {}));
  sf.get();
  sf.get();
}

TEST_F(DataflowTest, SharedFutureInvalidThrows) {
  mhpx::shared_future<int> sf;
  EXPECT_FALSE(sf.valid());
  EXPECT_THROW(sf.get(), std::runtime_error);
}

TEST(SchedulerCounters, CountsWork) {
  mhpx::threads::Scheduler sched({2, 64 * 1024});
  const auto before = sched.counters();
  std::atomic<int> n{0};
  for (int i = 0; i < 20; ++i) {
    sched.post([&] { n.fetch_add(1); });
  }
  sched.wait_idle();
  const auto after = sched.counters();
  EXPECT_EQ(after.tasks_executed - before.tasks_executed, 20u);
  // Posted from an external thread: they arrive through the inject queue.
  EXPECT_GE(after.tasks_injected, before.tasks_injected);
}

TEST(SchedulerCounters, CountsSuspensionsAndYields) {
  mhpx::threads::Scheduler sched({1, 64 * 1024});
  sched.post([&] {
    mhpx::threads::Scheduler::yield();
    sched.suspend_current(
        [&](mhpx::threads::TaskHandle h) { sched.resume(h); });
  });
  sched.wait_idle();
  const auto c = sched.counters();
  EXPECT_GE(c.yields, 1u);
  EXPECT_GE(c.suspensions, 1u);
}

}  // namespace
