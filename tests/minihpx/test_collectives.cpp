// Tests for the distributed collectives (gather/reduce/barrier).

#include <gtest/gtest.h>

#include "minihpx/distributed/collectives.hpp"
#include "minihpx/distributed/runtime.hpp"

namespace {

namespace md = mhpx::dist;

struct RankAction {
  static constexpr std::string_view name = "collectives_test::rank";
  static std::uint32_t invoke(md::Locality& here) { return here.id(); }
};
MHPX_REGISTER_ACTION(RankAction);

struct SquareAction {
  static constexpr std::string_view name = "collectives_test::square";
  static long invoke(md::Locality& here) {
    const auto r = static_cast<long>(here.id()) + 1;
    return r * r;
  }
};
MHPX_REGISTER_ACTION(SquareAction);

class CollectivesTest : public ::testing::TestWithParam<md::FabricKind> {
 protected:
  md::DistributedRuntime::Config config(unsigned n) const {
    md::DistributedRuntime::Config cfg;
    cfg.num_localities = n;
    cfg.threads_per_locality = 2;
    cfg.stack_size = 64 * 1024;
    cfg.fabric = GetParam();
    return cfg;
  }
};

TEST_P(CollectivesTest, GatherAllCollectsInOrder) {
  md::DistributedRuntime rt(config(3));
  const auto ranks = md::gather_all<std::uint32_t>(rt, [&](md::locality_id l) {
    return rt.locality(0).call<RankAction>(md::locality_gid(l));
  });
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[1], 1u);
  EXPECT_EQ(ranks[2], 2u);
}

TEST_P(CollectivesTest, ReduceAllSums) {
  md::DistributedRuntime rt(config(4));
  const long sum = md::reduce_all<long>(
      rt,
      [&](md::locality_id l) {
        return rt.locality(0).call<SquareAction>(md::locality_gid(l));
      },
      0L, [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, 1 + 4 + 9 + 16);
}

TEST_P(CollectivesTest, BarrierCompletes) {
  md::DistributedRuntime rt(config(3));
  md::barrier(rt);  // must not hang
  md::barrier(rt);  // reusable
}

INSTANTIATE_TEST_SUITE_P(Fabrics, CollectivesTest,
                         ::testing::Values(md::FabricKind::inproc,
                                           md::FabricKind::tcp,
                                           md::FabricKind::mpisim),
                         [](const auto& param_info) {
                           return std::string(md::to_string(param_info.param));
                         });

}  // namespace
