// Parcelport conformance suite: the contract every fabric must honour,
// run against inproc, tcp, mpisim and the fault-injecting decorator.
//
// The contract under test (see fabric.hpp and parcel_pipeline.hpp):
//   - exactly-once, per-(src,dst)-FIFO delivery, with or without send-side
//     coalescing;
//   - zero-length payloads and frames far above the mpisim eager limit /
//     TCP bundle granularity survive intact;
//   - concurrent senders never lose, duplicate or reorder a single
//     sender's frames;
//   - flush() is a barrier: every accepted frame has left through the
//     transport when it returns;
//   - peer death mid-flush is survivable: sends to a dead locality are
//     dropped and accounted, never thrown out of the caller.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/testing/seed_env.hpp"
#include "minihpx/apex/counters.hpp"
#include "minihpx/distributed/fabric.hpp"
#include "minihpx/distributed/parcel.hpp"
#include "minihpx/distributed/parcel_pipeline.hpp"
#include "minihpx/distributed/runtime.hpp"
#include "minihpx/resilience/fabric_faulty.hpp"

namespace {

using namespace mhpx::dist;
using rveval::testing::timeout_scale;

// ------------------------------------------------------------------ helpers

/// Scoped environment override, restoring the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* key, const char* value) : key_(key) {
    if (const char* old = std::getenv(key)) {
      old_ = old;
    }
    ::setenv(key, value, 1);
  }
  ~EnvGuard() {
    if (old_) {
      ::setenv(key_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(key_.c_str());
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::string key_;
  std::optional<std::string> old_;
};

/// Deterministic test payload: 4-byte little-endian tag, then a repeating
/// pattern derived from it.
std::vector<std::byte> make_payload(std::uint32_t tag, std::size_t len) {
  std::vector<std::byte> out(len < 4 ? 4 : len);
  for (std::size_t i = 0; i < 4; ++i) {
    out[i] = static_cast<std::byte>((tag >> (8 * i)) & 0xFF);
  }
  for (std::size_t i = 4; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((tag + i * 131) & 0xFF);
  }
  return out;
}

std::uint32_t tag_of(const std::vector<std::byte>& frame) {
  std::uint32_t tag = 0;
  for (std::size_t i = 0; i < 4 && i < frame.size(); ++i) {
    tag |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  }
  return tag;
}

/// Thread-safe per-destination log of delivered frames.
class Recorder {
 public:
  struct Entry {
    locality_id src;
    std::vector<std::byte> frame;
  };

  explicit Recorder(std::size_t n) : logs_(n) {}

  std::vector<Fabric::receive_fn> receivers() {
    std::vector<Fabric::receive_fn> r;
    r.reserve(logs_.size());
    for (std::size_t d = 0; d < logs_.size(); ++d) {
      r.push_back([this, d](locality_id src, std::vector<std::byte> frame) {
        std::lock_guard lk(mutex_);
        logs_[d].push_back(Entry{src, std::move(frame)});
        cv_.notify_all();
      });
    }
    return r;
  }

  /// Block until destination \p dst has received \p want frames (or the
  /// scaled deadline passes). Returns whether the count was reached.
  bool wait_for(std::size_t dst, std::size_t want, double seconds = 10.0) {
    std::unique_lock lk(mutex_);
    return cv_.wait_for(lk,
                        std::chrono::duration<double>(seconds *
                                                      timeout_scale()),
                        [&] { return logs_[dst].size() >= want; });
  }

  std::vector<Entry> take(std::size_t dst) {
    std::lock_guard lk(mutex_);
    return std::move(logs_[dst]);
  }

  std::size_t count(std::size_t dst) {
    std::lock_guard lk(mutex_);
    return logs_[dst].size();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<Entry>> logs_;
};

// --------------------------------------------------------- parameterisation

enum class Port { inproc, tcp, mpisim, faulty };

const char* to_cstr(Port p) {
  switch (p) {
    case Port::inproc:
      return "inproc";
    case Port::tcp:
      return "tcp";
    case Port::mpisim:
      return "mpisim";
    case Port::faulty:
      return "faulty";
  }
  return "?";
}

/// The faulty variant wraps inproc with a zero-rate fault plan: the
/// decorator's bookkeeping is in the path, but no faults fire — it must be
/// indistinguishable from the inner fabric for the whole contract.
std::unique_ptr<Fabric> make_port(Port p) {
  switch (p) {
    case Port::inproc:
      return make_fabric(FabricKind::inproc);
    case Port::tcp:
      return make_fabric(FabricKind::tcp);
    case Port::mpisim:
      return make_fabric(FabricKind::mpisim);
    case Port::faulty:
      return mhpx::resilience::make_faulty_fabric(
          make_fabric(FabricKind::inproc), mhpx::resilience::FaultConfig{});
  }
  throw std::logic_error("unknown port");
}

class ParcelportConformance : public ::testing::TestWithParam<Port> {};

// ------------------------------------------------------------------ the law

TEST_P(ParcelportConformance, PerSenderFifoUnderCoalescing) {
  constexpr std::size_t n = 3;
  constexpr std::uint32_t frames_per_src = 200;
  Recorder rec(n);
  auto fabric = make_port(GetParam());
  fabric->connect(rec.receivers());

  // Localities 1 and 2 each blast an ordered stream at locality 0, from
  // their own threads, so batches form and interleave on the shared
  // destination.
  auto blast = [&](locality_id src) {
    for (std::uint32_t i = 0; i < frames_per_src; ++i) {
      fabric->send(src, 0, WireFrame(make_payload((src << 24) | i, 64)));
    }
  };
  std::thread t1(blast, 1);
  std::thread t2(blast, 2);
  t1.join();
  t2.join();
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(0, 2 * frames_per_src));

  // Restricted to either sender, the delivered tags must be 0,1,2,... —
  // coalescing may group frames but never reorder a sender's stream.
  std::vector<std::uint32_t> next(n, 0);
  for (const auto& e : rec.take(0)) {
    const std::uint32_t tag = tag_of(e.frame);
    const locality_id src = tag >> 24;
    ASSERT_EQ(e.src, src);
    EXPECT_EQ(tag & 0xFFFFFFu, next[src]++) << "from locality " << src;
  }
  EXPECT_EQ(next[1], frames_per_src);
  EXPECT_EQ(next[2], frames_per_src);
  fabric->shutdown();
}

TEST_P(ParcelportConformance, ZeroLengthFramesAreDelivered) {
  Recorder rec(2);
  auto fabric = make_port(GetParam());
  fabric->connect(rec.receivers());

  fabric->send(0, 1, WireFrame{});  // empty head, empty body
  fabric->send(0, 1, std::vector<std::byte>{});
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(1, 2));

  for (const auto& e : rec.take(1)) {
    EXPECT_EQ(e.src, 0u);
    EXPECT_TRUE(e.frame.empty());
  }
  fabric->shutdown();
}

TEST_P(ParcelportConformance, LargeFramesSurviveBundling) {
  // Frames above the mpisim eager limit (64 KiB) and the coalescing byte
  // budget, interleaved with small ones, must arrive intact and in order.
  Recorder rec(2);
  auto fabric = make_port(GetParam());
  fabric->connect(rec.receivers());

  std::vector<std::vector<std::byte>> sent;
  for (std::uint32_t i = 0; i < 8; ++i) {
    sent.push_back(make_payload(i, i % 2 == 0 ? 200 * 1024 : 16));
  }
  for (const auto& f : sent) {
    fabric->send(0, 1, WireFrame(std::vector<std::byte>(f)));
  }
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(1, sent.size()));

  const auto got = rec.take(1);
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].frame, sent[i]) << "frame " << i;
  }
  fabric->shutdown();
}

TEST_P(ParcelportConformance, ConcurrentSendersLoseNothing) {
  // Many threads share ONE (src, dst) peer queue. Frames may interleave
  // across threads, but every frame arrives exactly once and each thread's
  // own stream stays ordered.
  constexpr std::uint32_t n_threads = 4;
  constexpr std::uint32_t per_thread = 250;
  Recorder rec(2);
  auto fabric = make_port(GetParam());
  fabric->connect(rec.receivers());

  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < per_thread; ++i) {
        fabric->send(0, 1, WireFrame(make_payload((t << 24) | i, 32)));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(1, n_threads * per_thread));

  std::vector<std::uint32_t> next(n_threads, 0);
  for (const auto& e : rec.take(1)) {
    const std::uint32_t tag = tag_of(e.frame);
    const std::uint32_t thread = tag >> 24;
    ASSERT_LT(thread, n_threads);
    EXPECT_EQ(tag & 0xFFFFFFu, next[thread]++) << "thread " << thread;
  }
  for (std::uint32_t t = 0; t < n_threads; ++t) {
    EXPECT_EQ(next[t], per_thread) << "thread " << t;
  }
  fabric->shutdown();
}

TEST_P(ParcelportConformance, FlushIsABarrier) {
  Recorder rec(2);
  auto fabric = make_port(GetParam());
  fabric->connect(rec.receivers());

  std::uint64_t total_bytes = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto payload = make_payload(i, 100);
    total_bytes += payload.size();
    fabric->send(0, 1, WireFrame(std::move(payload)));
  }
  fabric->flush();

  // Everything accepted before the barrier has been handed to the wire.
  const auto stats = fabric->stats();
  EXPECT_GE(stats.flushes, 1u);
  EXPECT_EQ(stats.flushed_bytes, total_bytes);
  fabric->shutdown();
}

TEST_P(ParcelportConformance, CoalesceOffSendsEveryFrameAlone) {
  EnvGuard off("RVEVAL_COALESCE", "0");
  Recorder rec(2);
  auto fabric = make_port(GetParam());  // reads the knob at connect()
  fabric->connect(rec.receivers());

  constexpr std::uint32_t count = 64;
  for (std::uint32_t i = 0; i < count; ++i) {
    fabric->send(0, 1, WireFrame(make_payload(i, 64)));
  }
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(1, count));

  const auto stats = fabric->stats();
  EXPECT_EQ(stats.flushes, count);  // one wire send per frame
  EXPECT_EQ(stats.coalesced_frames, 0u);
  fabric->shutdown();
}

TEST_P(ParcelportConformance, CorkedBurstSharesOneWireFlush) {
  Recorder rec(2);
  auto fabric = make_port(GetParam());
  fabric->connect(rec.receivers());

  constexpr std::uint32_t count = 16;
  const auto before = fabric->stats().flushes;
  {
    CorkScope cork(*fabric);
    for (std::uint32_t i = 0; i < count; ++i) {
      fabric->send(0, 1, WireFrame(make_payload(i, 64)));
    }
    // Well under the batch limits: every frame is held until uncork.
    EXPECT_EQ(fabric->stats().flushes, before);
  }
  ASSERT_TRUE(rec.wait_for(1, count));

  const auto stats = fabric->stats();
  EXPECT_EQ(stats.flushes - before, 1u);  // the whole burst, one wire send
  EXPECT_GE(stats.coalesced_frames, count);
  const auto got = rec.take(1);
  for (std::uint32_t i = 0; i < count; ++i) {
    EXPECT_EQ(tag_of(got[i].frame), i);  // submission order preserved
  }
  fabric->shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllPorts, ParcelportConformance,
                         ::testing::Values(Port::inproc, Port::tcp,
                                           Port::mpisim, Port::faulty),
                         [](const auto& param_info) {
                           return std::string(to_cstr(param_info.param));
                         });

// ----------------------------------------------------- pipeline unit tests

TEST(SendPipeline, CoalescesWhileTheFlusherIsBusy) {
  // Deterministic batching: the first flush blocks in the wire function
  // while ten more frames are submitted; releasing it must drain all ten
  // as one batch.
  std::mutex gate;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> flush_calls{0};
  std::vector<std::size_t> batch_sizes;
  std::mutex sizes_mutex;

  CoalesceConfig cfg;  // defaults: enabled, 64 frames / 128 KiB per batch
  SendPipeline pipe(cfg, [&](locality_id, locality_id, FrameBatch batch) {
    {
      std::lock_guard lk(sizes_mutex);
      batch_sizes.push_back(batch.frames.size());
    }
    if (flush_calls.fetch_add(1) == 0) {
      std::unique_lock lk(gate);
      cv.wait(lk, [&] { return release; });
    }
  });
  pipe.connect(2);

  std::thread first([&] { pipe.submit(0, 1, WireFrame(make_payload(0, 8))); });
  // Wait until the first submit is inside the blocked flush.
  while (flush_calls.load() == 0) {
    std::this_thread::yield();
  }
  for (std::uint32_t i = 1; i <= 10; ++i) {
    pipe.submit(0, 1, WireFrame(make_payload(i, 8)));  // all coalesce
  }
  {
    std::lock_guard lk(gate);
    release = true;
  }
  cv.notify_all();
  first.join();
  pipe.flush_all();

  const auto stats = pipe.stats();
  EXPECT_EQ(stats.submitted, 11u);
  EXPECT_EQ(stats.flushes, 2u);  // the lone first frame + one batch of ten
  EXPECT_EQ(stats.coalesced, 10u);
  ASSERT_EQ(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[0], 1u);
  EXPECT_EQ(batch_sizes[1], 10u);
}

TEST(SendPipeline, CutsBatchesAtTheFrameLimit) {
  EnvGuard frames("RVEVAL_COALESCE_MAX_FRAMES", "4");
  const CoalesceConfig cfg = coalesce_config_from_env();
  EXPECT_EQ(cfg.max_frames, 4u);

  std::mutex gate;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> flush_calls{0};
  std::vector<std::size_t> batch_sizes;
  std::mutex sizes_mutex;
  SendPipeline pipe(cfg, [&](locality_id, locality_id, FrameBatch batch) {
    {
      std::lock_guard lk(sizes_mutex);
      batch_sizes.push_back(batch.frames.size());
    }
    if (flush_calls.fetch_add(1) == 0) {
      std::unique_lock lk(gate);
      cv.wait(lk, [&] { return release; });
    }
  });
  pipe.connect(2);

  std::thread first([&] { pipe.submit(0, 1, WireFrame(make_payload(0, 8))); });
  while (flush_calls.load() == 0) {
    std::this_thread::yield();
  }
  for (std::uint32_t i = 1; i <= 10; ++i) {
    pipe.submit(0, 1, WireFrame(make_payload(i, 8)));
  }
  {
    std::lock_guard lk(gate);
    release = true;
  }
  cv.notify_all();
  first.join();
  pipe.flush_all();

  // 1 lone frame, then 10 queued frames cut at 4: 4 + 4 + 2.
  ASSERT_EQ(batch_sizes.size(), 4u);
  EXPECT_EQ(batch_sizes[0], 1u);
  EXPECT_EQ(batch_sizes[1], 4u);
  EXPECT_EQ(batch_sizes[2], 4u);
  EXPECT_EQ(batch_sizes[3], 2u);
}

TEST(SendPipeline, CorkHoldsFramesUntilUncork) {
  std::vector<std::size_t> batch_sizes;
  std::mutex sizes_mutex;
  CoalesceConfig cfg;
  SendPipeline pipe(cfg, [&](locality_id, locality_id, FrameBatch batch) {
    std::lock_guard lk(sizes_mutex);
    batch_sizes.push_back(batch.frames.size());
  });
  pipe.connect(2);

  pipe.cork();
  for (std::uint32_t i = 0; i < 10; ++i) {
    pipe.submit(0, 1, WireFrame(make_payload(i, 8)));
  }
  EXPECT_EQ(pipe.stats().flushes, 0u);  // all held
  pipe.uncork();

  const auto stats = pipe.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.coalesced, 10u);
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 10u);
}

TEST(SendPipeline, CorkedOverflowLeavesAsFullBatches) {
  // Corking never buffers more than one full batch per peer: the 4th, 8th
  // submits push the queue to the frame limit and drain a complete batch
  // immediately; the remainder waits for the uncork.
  EnvGuard frames("RVEVAL_COALESCE_MAX_FRAMES", "4");
  const CoalesceConfig cfg = coalesce_config_from_env();

  std::vector<std::size_t> batch_sizes;
  std::mutex sizes_mutex;
  SendPipeline pipe(cfg, [&](locality_id, locality_id, FrameBatch batch) {
    std::lock_guard lk(sizes_mutex);
    batch_sizes.push_back(batch.frames.size());
  });
  pipe.connect(2);

  pipe.cork();
  for (std::uint32_t i = 0; i < 10; ++i) {
    pipe.submit(0, 1, WireFrame(make_payload(i, 8)));
  }
  EXPECT_EQ(pipe.stats().flushes, 2u);  // two full batches left early
  pipe.uncork();

  ASSERT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(batch_sizes[0], 4u);
  EXPECT_EQ(batch_sizes[1], 4u);
  EXPECT_EQ(batch_sizes[2], 2u);
}

TEST(SendPipeline, CorkIsANoOpWhenCoalescingIsDisabled) {
  EnvGuard off("RVEVAL_COALESCE", "0");
  const CoalesceConfig cfg = coalesce_config_from_env();

  SendPipeline pipe(cfg,
                    [](locality_id, locality_id, FrameBatch) {});
  pipe.connect(2);

  pipe.cork();
  for (std::uint32_t i = 0; i < 5; ++i) {
    pipe.submit(0, 1, WireFrame(make_payload(i, 8)));
  }
  // One wire send per frame, cork or not — the RVEVAL_COALESCE=0 baseline.
  EXPECT_EQ(pipe.stats().flushes, 5u);
  pipe.uncork();
  EXPECT_EQ(pipe.stats().flushes, 5u);
  EXPECT_EQ(pipe.stats().coalesced, 0u);
}

// ------------------------------------------------------- zero-copy framing

TEST(WireFrame, BodyOnlyFramesFlattenWithoutCopy) {
  auto body = make_payload(7, 4096);
  const std::byte* storage = body.data();
  WireFrame f(std::move(body));
  const auto flat = std::move(f).flatten();
  EXPECT_EQ(flat.data(), storage);  // the buffer moved through, no memcpy
}

TEST(WireFrame, EncodeParcelFrameMatchesFlatEncoding) {
  Parcel p;
  p.header.kind = ParcelKind::call;
  p.header.source = 3;
  p.header.destination = 1;
  p.header.action = 0xfeedfacecafebeefull;
  p.header.request = 42;
  p.payload = make_payload(9, 300);

  const auto flat = encode_parcel(p);
  const std::byte* storage = p.payload.data();
  WireFrame frame = encode_parcel_frame(std::move(p));
  EXPECT_EQ(frame.body.data(), storage);  // payload moved, not copied
  const auto glued = std::move(frame).flatten();
  ASSERT_EQ(glued, flat);

  const Parcel back = decode_parcel(glued);
  EXPECT_EQ(back.header.action, 0xfeedfacecafebeefull);
  EXPECT_EQ(back.payload.size(), 300u);
}

// -------------------------------------------------- fault-plan composition

TEST(FaultyCoalescing, FaultsApplyPerLogicalFrameNotPerBatch) {
  // With corrupt_rate = 1 every frame must be corrupted exactly once —
  // if faults applied to coalesced batches instead, a multi-frame batch
  // would see a single flip across the whole bundle.
  mhpx::resilience::FaultConfig cfg;
  cfg.corrupt_rate = 1.0;
  auto fabric = mhpx::resilience::make_faulty_fabric(
      make_fabric(FabricKind::inproc), cfg);
  auto* faulty = dynamic_cast<mhpx::resilience::FaultyFabric*>(fabric.get());
  ASSERT_NE(faulty, nullptr);

  Recorder rec(2);
  fabric->connect(rec.receivers());
  constexpr std::uint32_t count = 20;
  std::vector<std::vector<std::byte>> sent;
  for (std::uint32_t i = 0; i < count; ++i) {
    sent.push_back(make_payload(i, 64));
    fabric->send(0, 1, WireFrame(std::vector<std::byte>(sent.back())));
  }
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(1, count));

  EXPECT_EQ(faulty->fault_stats().corrupted, count);
  const auto got = rec.take(1);
  ASSERT_EQ(got.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t diffs = 0;
    ASSERT_EQ(got[i].frame.size(), sent[i].size());
    for (std::size_t b = 0; b < sent[i].size(); ++b) {
      diffs += got[i].frame[b] != sent[i][b] ? 1u : 0u;
    }
    EXPECT_EQ(diffs, 1u) << "frame " << i;  // exactly one flipped byte each
  }
  fabric->shutdown();
}

TEST(FaultyCoalescing, DeadBoardDropsFramesBeforeTheWire) {
  mhpx::resilience::FaultConfig cfg;
  auto fabric = mhpx::resilience::make_faulty_fabric(
      make_fabric(FabricKind::inproc), cfg);
  auto* faulty = dynamic_cast<mhpx::resilience::FaultyFabric*>(fabric.get());
  ASSERT_NE(faulty, nullptr);

  Recorder rec(2);
  fabric->connect(rec.receivers());
  faulty->kill(1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(fabric->send(0, 1, WireFrame(make_payload(i, 64))));
  }
  fabric->flush();
  EXPECT_EQ(faulty->fault_stats().dropped, 10u);
  EXPECT_EQ(rec.count(1), 0u);  // nothing reached the inner fabric
  fabric->shutdown();
}

// ----------------------------------------------------- det + coalescing

TEST(DetCoalescing, GlobalOrderSurvivesBatching) {
  // det+tcp: sequence stamps ride the WireFrame head through real TCP
  // bundles; the reorder buffer must reproduce exact global send order.
  Recorder rec(2);
  auto fabric = make_deterministic_fabric(make_fabric(FabricKind::tcp));
  EXPECT_EQ(fabric->name(), "det+tcp");
  fabric->connect(rec.receivers());

  constexpr std::uint32_t count = 100;
  for (std::uint32_t i = 0; i < count; ++i) {
    // Alternate directions so both (src, dst) queues carry the stream.
    const locality_id src = i % 2;
    fabric->send(src, 1 - src, WireFrame(make_payload(i, 48)));
  }
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(0, count / 2));
  ASSERT_TRUE(rec.wait_for(1, count / 2));

  // Each destination sees its half of the global sequence in order.
  for (locality_id dst : {locality_id{0}, locality_id{1}}) {
    std::uint32_t expect = dst == 1 ? 0 : 1;  // frames 0,2,.. go to 1
    for (const auto& e : rec.take(dst)) {
      EXPECT_EQ(tag_of(e.frame), expect);
      expect += 2;
    }
  }
  fabric->shutdown();
}

// --------------------------------------------------- socket audit (tcp)

TEST(TcpSocketAudit, EveryMeshSocketHasNodelayOnBothEnds) {
  // Conformance assertion for the audited socket-option semantics
  // (fabric_tcp_common.hpp): each connection is full-duplex, so a Nagled
  // *accepted* end would delay replies even though every dialed end was
  // configured — the audit reads TCP_NODELAY back on every live fd, both
  // ends included, via getsockopt.
  Recorder rec(3);
  auto fabric = make_fabric(FabricKind::tcp);
  fabric->connect(rec.receivers());
  const auto audit = fabric->debug_socket_audit();
  EXPECT_GE(audit.sockets, 3u) << "3-locality mesh: one socket per pair";
  EXPECT_EQ(audit.missing_nodelay, 0u);
  fabric->shutdown();

  // Decorators must forward the audit to the socket-owning inner fabric.
  Recorder rec2(3);
  auto det = make_deterministic_fabric(make_fabric(FabricKind::tcp));
  det->connect(rec2.receivers());
  const auto det_audit = det->debug_socket_audit();
  EXPECT_GE(det_audit.sockets, 3u);
  EXPECT_EQ(det_audit.missing_nodelay, 0u);
  det->shutdown();

  // Non-socket fabrics audit as empty rather than lying.
  auto inproc = make_fabric(FabricKind::inproc);
  Recorder rec3(2);
  inproc->connect(rec3.receivers());
  EXPECT_EQ(inproc->debug_socket_audit().sockets, 0u);
  inproc->shutdown();
}

// ------------------------------------------------------ peer death (tcp)

TEST(TcpPeerDeath, SendAfterDeathDropsInsteadOfThrowing) {
  Recorder rec(2);
  auto fabric = make_fabric(FabricKind::tcp);
  fabric->connect(rec.receivers());

  // Warm the connection, then yank the peer board.
  fabric->send(0, 1, WireFrame(make_payload(0, 64)));
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(1, 1));
  ASSERT_TRUE(fabric->debug_kill_endpoint(1));

  // The survivor keeps sending: the failed sendmsg() must be absorbed
  // (EPIPE -> connection marked dead, frames dropped) and counted — the
  // old code threw std::system_error out of here.
  for (std::uint32_t i = 1; i <= 20; ++i) {
    EXPECT_NO_THROW(fabric->send(0, 1, WireFrame(make_payload(i, 64))));
    EXPECT_NO_THROW(fabric->flush());
  }
  EXPECT_GE(fabric->stats().send_errors, 1u);

  // The victim's own sends drop immediately (its board is gone).
  EXPECT_NO_THROW(fabric->send(1, 0, WireFrame(make_payload(99, 64))));
  EXPECT_NO_THROW(fabric->flush());
  EXPECT_EQ(rec.count(0), 0u);
  fabric->shutdown();
}

TEST(TcpPeerDeath, CleanShutdownCountsNoErrors) {
  // The original read_all bug folded every recv() failure into "peer
  // closed". The fix must not overcorrect: an orderly shutdown with
  // traffic in both directions produces zero recv/send errors.
  Recorder rec(3);
  auto fabric = make_fabric(FabricKind::tcp);
  fabric->connect(rec.receivers());
  for (std::uint32_t i = 0; i < 30; ++i) {
    fabric->send(i % 3, (i + 1) % 3, WireFrame(make_payload(i, 128)));
  }
  fabric->flush();
  ASSERT_TRUE(rec.wait_for(0, 10));
  ASSERT_TRUE(rec.wait_for(1, 10));
  ASSERT_TRUE(rec.wait_for(2, 10));
  fabric->shutdown();

  const auto stats = fabric->stats();
  EXPECT_EQ(stats.recv_errors, 0u);
  EXPECT_EQ(stats.send_errors, 0u);
}

// ------------------------------------------- end-to-end over the runtime

struct EchoAction {
  static constexpr std::string_view name = "parcelport::echo";
  static int invoke(Locality&, int x) { return x * 2; }
};
MHPX_REGISTER_ACTION(EchoAction);

class RuntimeCoalescing : public ::testing::TestWithParam<FabricKind> {};

TEST_P(RuntimeCoalescing, RemoteCallsWorkWithCoalescingDisabled) {
  EnvGuard off("RVEVAL_COALESCE", "0");
  DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.stack_size = 64 * 1024;
  cfg.fabric = GetParam();
  DistributedRuntime rt(cfg);
  std::vector<mhpx::future<int>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(rt.locality(0).call<EchoAction>(locality_gid(1), i));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * 2);
  }
  EXPECT_EQ(rt.fabric().stats().coalesced_frames, 0u);
}

TEST_P(RuntimeCoalescing, ParcelCountersAreExported) {
  DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.stack_size = 64 * 1024;
  cfg.fabric = GetParam();
  DistributedRuntime rt(cfg);
  rt.locality(0).call<EchoAction>(locality_gid(1), 21).get();

  auto& registry = mhpx::apex::CounterRegistry::instance();
  const std::string base = "/parcels/" + std::string(rt.fabric().name());
  for (const char* leaf : {"/flushes", "/coalesced-frames", "/bytes-per-flush",
                           "/recv-errors", "/send-errors"}) {
    EXPECT_TRUE(registry.read(base + leaf).has_value())
        << "missing counter " << base << leaf;
  }
  const auto flushes = registry.read(base + "/flushes");
  ASSERT_TRUE(flushes.has_value());
  EXPECT_GE(*flushes, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllFabrics, RuntimeCoalescing,
                         ::testing::Values(FabricKind::inproc, FabricKind::tcp,
                                           FabricKind::mpisim),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
