// Unit tests for the serialization archives (parcel payload encoding).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "minihpx/distributed/gid.hpp"
#include "minihpx/distributed/parcel.hpp"
#include "minihpx/serialization/archive.hpp"

namespace {

namespace ser = mhpx::serialization;

template <typename T>
T round_trip(const T& value) {
  return ser::from_bytes<T>(ser::to_bytes(value));
}

TEST(Serialization, Arithmetic) {
  EXPECT_EQ(round_trip<int>(-42), -42);
  EXPECT_EQ(round_trip<std::uint64_t>(0xDEADBEEFCAFEull), 0xDEADBEEFCAFEull);
  EXPECT_DOUBLE_EQ(round_trip<double>(3.14159), 3.14159);
  EXPECT_EQ(round_trip<bool>(true), true);
  EXPECT_EQ(round_trip<char>('x'), 'x');
}

TEST(Serialization, Enum) {
  enum class Color : std::uint8_t { red = 1, green = 2 };
  EXPECT_EQ(round_trip(Color::green), Color::green);
}

TEST(Serialization, Strings) {
  EXPECT_EQ(round_trip<std::string>(""), "");
  EXPECT_EQ(round_trip<std::string>("hello world"), "hello world");
  const std::string big(100000, 'q');
  EXPECT_EQ(round_trip(big), big);
}

TEST(Serialization, VectorsOfArithmetic) {
  std::vector<double> v{1.0, -2.5, 3.25};
  EXPECT_EQ(round_trip(v), v);
  EXPECT_EQ(round_trip(std::vector<int>{}), std::vector<int>{});
}

TEST(Serialization, NestedVectors) {
  std::vector<std::vector<int>> v{{1, 2}, {}, {3}};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Serialization, VectorOfStrings) {
  std::vector<std::string> v{"a", "", "long string here"};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Serialization, ArraysPairsTuples) {
  std::array<double, 4> a{1, 2, 3, 4};
  EXPECT_EQ(round_trip(a), a);
  std::pair<int, std::string> p{7, "seven"};
  EXPECT_EQ(round_trip(p), p);
  std::tuple<int, double, std::string> t{1, 2.5, "three"};
  EXPECT_EQ(round_trip(t), t);
}

struct CustomType {
  int a = 0;
  std::string b;
  std::vector<double> c;

  friend bool operator==(const CustomType&, const CustomType&) = default;

  template <typename Ar>
  void serialize(Ar& ar) {
    ar& a& b& c;
  }
};

TEST(Serialization, CustomSerializableType) {
  CustomType v{5, "name", {1.5, 2.5}};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Serialization, GidRoundTrip) {
  const mhpx::dist::gid g{3, 12345};
  EXPECT_EQ(round_trip(g), g);
}

TEST(Serialization, TruncatedBufferThrows) {
  auto bytes = ser::to_bytes(std::string("hello"));
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW(ser::from_bytes<std::string>(bytes), ser::archive_error);
}

TEST(Serialization, HostileLengthThrows) {
  // A string header claiming more bytes than the buffer holds must throw,
  // not allocate unbounded memory.
  ser::OutputArchive out;
  const std::uint64_t huge = 1ull << 40;
  out.write_bytes(&huge, sizeof(huge));
  const auto bytes = std::move(out).take();
  EXPECT_THROW(ser::from_bytes<std::string>(bytes), ser::archive_error);
  EXPECT_THROW(ser::from_bytes<std::vector<int>>(bytes), ser::archive_error);
}

TEST(Serialization, SequentialMixedValues) {
  ser::OutputArchive out;
  int i = 5;
  std::string s = "mid";
  double d = 9.5;
  out& i& s& d;
  ser::InputArchive in(out.buffer());
  int i2 = 0;
  std::string s2;
  double d2 = 0;
  in& i2& s2& d2;
  EXPECT_EQ(i2, 5);
  EXPECT_EQ(s2, "mid");
  EXPECT_DOUBLE_EQ(d2, 9.5);
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(ParcelCodec, HeaderRoundTrip) {
  mhpx::dist::Parcel p;
  p.header.kind = mhpx::dist::ParcelKind::reply;
  p.header.source = 1;
  p.header.destination = 0;
  p.header.action = mhpx::dist::fnv1a("some::action");
  p.header.target = 99;
  p.header.request = 12345;
  p.header.status = 1;
  p.payload = ser::to_bytes(std::string("payload"));

  const auto frame = mhpx::dist::encode_parcel(p);
  const auto q = mhpx::dist::decode_parcel(frame);
  EXPECT_EQ(q.header.kind, p.header.kind);
  EXPECT_EQ(q.header.source, p.header.source);
  EXPECT_EQ(q.header.destination, p.header.destination);
  EXPECT_EQ(q.header.action, p.header.action);
  EXPECT_EQ(q.header.target, p.header.target);
  EXPECT_EQ(q.header.request, p.header.request);
  EXPECT_EQ(q.header.status, p.header.status);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(ParcelCodec, Fnv1aIsStableAndDistinct) {
  constexpr auto h1 = mhpx::dist::fnv1a("action::one");
  constexpr auto h2 = mhpx::dist::fnv1a("action::two");
  static_assert(h1 != h2);
  EXPECT_EQ(mhpx::dist::fnv1a("action::one"), h1);
  EXPECT_NE(h1, 0u);
}

TEST(ParcelCodec, EmptyPayload) {
  mhpx::dist::Parcel p;
  const auto q = mhpx::dist::decode_parcel(mhpx::dist::encode_parcel(p));
  EXPECT_TRUE(q.payload.empty());
}

}  // namespace
