// Multi-process launch plumbing (ctest label: multiproc).
//
// Everything below the DistributedRuntime: the shared Backoff policy, the
// rendezvous bootstrap protocol (rank-table broadcast, duplicate-rank and
// config-mismatch rejection, slow starters), the EINTR regressions in the
// socket layer (accept retry, dial retry with bounded backoff), the
// TCP_NODELAY conformance audit, and a 3-rank MultiprocTcpFabric mesh
// hosted in threads (one fabric instance per simulated "process").
//
// The cross-process driver oracle — real fork/exec'd rveval_locality
// workers producing bitwise-identical totals — lives in
// tests/octotiger/test_multiproc_driver.cpp.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "minihpx/distributed/bootstrap.hpp"
#include "minihpx/distributed/fabric_tcp_common.hpp"
#include "minihpx/distributed/launch.hpp"
#include "minihpx/resilience/backoff.hpp"

namespace md = mhpx::dist;
namespace td = mhpx::dist::tcpdetail;
using mhpx::resilience::Backoff;
using mhpx::resilience::BackoffPolicy;

// ----------------------------------------------------------------- backoff

TEST(Backoff, GrowsExponentiallyAndCaps) {
  BackoffPolicy p;
  p.initial_s = 0.001;
  p.factor = 2.0;
  p.cap_s = 0.005;
  p.jitter = 0.0;  // deterministic delays for exact comparison
  Backoff b(p);
  EXPECT_DOUBLE_EQ(b.delay_s(1), 0.001);
  EXPECT_DOUBLE_EQ(b.delay_s(2), 0.002);
  EXPECT_DOUBLE_EQ(b.delay_s(3), 0.004);
  EXPECT_DOUBLE_EQ(b.delay_s(4), 0.005);   // capped
  EXPECT_DOUBLE_EQ(b.delay_s(10), 0.005);  // stays capped
}

TEST(Backoff, JitterStaysWithinBandAndIsSeedDeterministic) {
  BackoffPolicy p;
  p.initial_s = 0.01;
  p.factor = 1.0;
  p.cap_s = 0.01;
  p.jitter = 0.25;
  Backoff a(p, 42);
  Backoff b(p, 42);
  Backoff c(p, 43);
  bool diverged = false;
  for (unsigned i = 1; i <= 64; ++i) {
    const double da = a.delay_s(i);
    EXPECT_GE(da, 0.01 * 0.75);
    EXPECT_LE(da, 0.01 * 1.25);
    EXPECT_DOUBLE_EQ(da, b.delay_s(i)) << "same seed, same sequence";
    diverged |= da != c.delay_s(i);
  }
  EXPECT_TRUE(diverged) << "different seeds should jitter differently";
}

// ---------------------------------------------------------------- endpoint

TEST(Endpoint, ParsesDottedQuadAndLocalhost) {
  const md::Endpoint a = md::parse_endpoint("127.0.0.1:7000");
  EXPECT_EQ(a.ip_be, htonl(INADDR_LOOPBACK));
  EXPECT_EQ(a.port, 7000);
  EXPECT_EQ(a.str(), "127.0.0.1:7000");
  EXPECT_EQ(md::parse_endpoint("localhost:1"), (md::Endpoint{
                                                   htonl(INADDR_LOOPBACK), 1}));
}

TEST(Endpoint, RejectsMalformedInput) {
  EXPECT_THROW(md::parse_endpoint("127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(md::parse_endpoint("127.0.0.1:"), std::invalid_argument);
  EXPECT_THROW(md::parse_endpoint("127.0.0.1:x"), std::invalid_argument);
  EXPECT_THROW(md::parse_endpoint("127.0.0.1:70000"), std::invalid_argument);
  EXPECT_THROW(md::parse_endpoint("not-an-ip:1"), std::invalid_argument);
  EXPECT_THROW(md::parse_endpoint(":80"), std::invalid_argument);
}

TEST(Endpoint, BindListenerPicksAnEphemeralPort) {
  auto [fd, ep] = md::bind_listener(0, 4);
  EXPECT_GE(fd, 0);
  EXPECT_NE(ep.port, 0);
  EXPECT_EQ(ep.ip_be, htonl(INADDR_LOOPBACK));
  ::close(fd);
}

// -------------------------------------------------------------- rendezvous

namespace {

Backoff test_backoff() {
  BackoffPolicy p;
  p.max_retries = 200;
  p.initial_s = 0.002;
  p.cap_s = 0.02;
  return Backoff(p, ::testing::UnitTest::GetInstance()->random_seed());
}

md::Endpoint data_ep(std::uint16_t port) {
  return md::Endpoint{htonl(INADDR_LOOPBACK), port};
}

}  // namespace

TEST(Rendezvous, BroadcastsTheSameTableToEveryRank) {
  auto [fd, ep] = md::bind_listener(0, 8);
  const md::Endpoint self = data_ep(1000);
  std::vector<md::Endpoint> served;
  std::thread server(
      [&, fd = fd] { served = md::rendezvous_serve(fd, 3, self, 10.0); });
  std::vector<md::Endpoint> t1;
  std::vector<md::Endpoint> t2;
  std::thread w1([&, ep = ep] {
    Backoff b = test_backoff();
    t1 = md::rendezvous_register(ep, 1, 3, data_ep(1001), b, nullptr, 10.0);
  });
  std::thread w2([&, ep = ep] {
    Backoff b = test_backoff();
    t2 = md::rendezvous_register(ep, 2, 3, data_ep(1002), b, nullptr, 10.0);
  });
  server.join();
  w1.join();
  w2.join();
  ::close(fd);
  const std::vector<md::Endpoint> want{self, data_ep(1001), data_ep(1002)};
  EXPECT_EQ(served, want);
  EXPECT_EQ(t1, want);
  EXPECT_EQ(t2, want);
}

TEST(Rendezvous, RejectsADuplicateRankWithoutDisturbingTheOriginal) {
  auto [fd, ep] = md::bind_listener(0, 8);
  const md::Endpoint self = data_ep(2000);
  std::vector<md::Endpoint> served;
  std::thread server(
      [&, fd = fd] { served = md::rendezvous_serve(fd, 3, self, 10.0); });

  Backoff b1 = test_backoff();
  std::vector<md::Endpoint> t1;
  std::thread w1([&, ep = ep] {
    t1 = md::rendezvous_register(ep, 1, 3, data_ep(2001), b1, nullptr, 10.0);
  });
  // An impostor claiming rank 1 *after* the real rank 1 registered: it must
  // be turned away with a status byte, and the original table slot kept.
  // (Register serially so "who is the original" is deterministic.)
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    Backoff b = test_backoff();
    EXPECT_THROW(
        md::rendezvous_register(ep, 1, 3, data_ep(2099), b, nullptr, 10.0),
        md::BootstrapError);
  }
  {
    Backoff b = test_backoff();
    const auto t2 =
        md::rendezvous_register(ep, 2, 3, data_ep(2002), b, nullptr, 10.0);
    EXPECT_EQ(t2[1], data_ep(2001)) << "original registration survives";
  }
  server.join();
  w1.join();
  ::close(fd);
  EXPECT_EQ(served[1], data_ep(2001));
  EXPECT_EQ(t1[1], data_ep(2001));
}

TEST(Rendezvous, RejectsMismatchedClusterSizeAndOutOfRangeRanks) {
  auto [fd, ep] = md::bind_listener(0, 8);
  std::vector<md::Endpoint> served;
  std::thread server([&, fd = fd] {
    served = md::rendezvous_serve(fd, 2, data_ep(3000), 10.0);
  });
  {
    // Worker built for a 3-rank cluster dialing a 2-rank rendezvous.
    Backoff b = test_backoff();
    EXPECT_THROW(
        md::rendezvous_register(ep, 1, 3, data_ep(3001), b, nullptr, 10.0),
        md::BootstrapError);
  }
  {
    // Rank beyond the cluster (claims nranks=2 but rank 5).
    Backoff b = test_backoff();
    EXPECT_THROW(
        md::rendezvous_register(ep, 5, 2, data_ep(3005), b, nullptr, 10.0),
        md::BootstrapError);
  }
  {
    Backoff b = test_backoff();
    const auto t =
        md::rendezvous_register(ep, 1, 2, data_ep(3001), b, nullptr, 10.0);
    EXPECT_EQ(t[1], data_ep(3001));
  }
  server.join();
  ::close(fd);
  EXPECT_EQ(served[1], data_ep(3001));
}

TEST(Rendezvous, IgnoresGarbageBytesFromAStrayClient) {
  auto [fd, ep] = md::bind_listener(0, 8);
  std::vector<md::Endpoint> served;
  std::thread server([&, fd = fd] {
    served = md::rendezvous_serve(fd, 2, data_ep(4000), 10.0);
  });
  {
    // A non-protocol client (port scanner, health checker) writing junk:
    // the server answers bad_magic and keeps serving.
    Backoff b = test_backoff();
    const int cfd =
        td::dial_retry(ep.ip_be, ep.port, b, /*retries=*/nullptr);
    unsigned char junk[22];
    std::memset(junk, 0xAB, sizeof(junk));
    td::write_all(cfd, junk, sizeof(junk));
    unsigned char status = 0;
    ASSERT_EQ(td::read_all(cfd, &status, 1), td::IoStatus::ok);
    EXPECT_EQ(status, static_cast<unsigned char>(
                          md::RendezvousStatus::bad_magic));
    ::close(cfd);
  }
  {
    Backoff b = test_backoff();
    const auto t =
        md::rendezvous_register(ep, 1, 2, data_ep(4001), b, nullptr, 10.0);
    EXPECT_EQ(t[0], data_ep(4000));
  }
  server.join();
  ::close(fd);
}

TEST(Rendezvous, SlowStarterRegistersLastAndStillGetsTheTable) {
  auto [fd, ep] = md::bind_listener(0, 8);
  std::vector<md::Endpoint> served;
  std::thread server([&, fd = fd] {
    served = md::rendezvous_serve(fd, 3, data_ep(5000), 10.0);
  });
  std::vector<md::Endpoint> fast;
  std::vector<md::Endpoint> slow;
  std::thread w2([&, ep = ep] {
    Backoff b = test_backoff();
    fast = md::rendezvous_register(ep, 2, 3, data_ep(5002), b, nullptr, 10.0);
  });
  std::thread w1([&, ep = ep] {
    // The straggler: everyone else is already parked waiting for the table.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Backoff b = test_backoff();
    slow = md::rendezvous_register(ep, 1, 3, data_ep(5001), b, nullptr, 10.0);
  });
  server.join();
  w1.join();
  w2.join();
  ::close(fd);
  const std::vector<md::Endpoint> want{data_ep(5000), data_ep(5001),
                                       data_ep(5002)};
  EXPECT_EQ(fast, want);
  EXPECT_EQ(slow, want);
}

TEST(Rendezvous, TimesOutNamingTheMissingRanks) {
  auto [fd, ep] = md::bind_listener(0, 8);
  (void)ep;
  try {
    md::rendezvous_serve(fd, 3, data_ep(6000), 0.2);
    FAIL() << "expected BootstrapError";
  } catch (const md::BootstrapError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2"), std::string::npos) << msg;
  }
  ::close(fd);
}

TEST(Rendezvous, WorkerGivesUpWhenNoServerEverListens) {
  // Dial a bound-but-never-accepting... no: a *closed* port. Bind then
  // close to obtain a port that is very likely unused.
  auto [fd, ep] = md::bind_listener(0, 1);
  ::close(fd);
  BackoffPolicy p;
  p.max_retries = 3;
  p.initial_s = 0.001;
  p.cap_s = 0.002;
  Backoff b(p, 7);
  std::atomic<std::uint64_t> retries{0};
  EXPECT_THROW(md::rendezvous_register(ep, 1, 2, data_ep(7001), b, &retries,
                                       1.0),
               std::system_error);
  EXPECT_GE(retries.load(), 3u) << "every retry must be counted";
}

// ------------------------------------------------- socket-layer regressions

namespace {
void noop_handler(int) {}
}  // namespace

TEST(SocketLayer, AcceptRetriesOnEintr) {
  // Regression: accept() used to throw on EINTR, killing the mesh bring-up
  // when any signal (SIGPROF, timers) landed on the accepting thread.
  struct sigaction sa{};
  struct sigaction old{};
  sa.sa_handler = noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: accept must see EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  auto [fd, ep] = md::bind_listener(0, 4);
  std::atomic<bool> accepting{false};
  int accepted = -1;
  std::thread acceptor([&, fd = fd] {
    accepting.store(true);
    accepted = td::accept_retry(fd);
  });
  while (!accepting.load()) {
    std::this_thread::yield();
  }
  // Pepper the accepting thread with signals; each one interrupts the
  // blocking accept with EINTR.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pthread_kill(acceptor.native_handle(), SIGUSR1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Backoff b = test_backoff();
  const int cfd = td::dial_retry(ep.ip_be, ep.port, b, nullptr);
  acceptor.join();
  EXPECT_GE(accepted, 0) << "accept_retry must survive EINTR and connect";
  ::close(cfd);
  if (accepted >= 0) {
    ::close(accepted);
  }
  ::close(fd);
  sigaction(SIGUSR1, &old, nullptr);
}

TEST(SocketLayer, DialRetriesUntilTheListenerAppears) {
  // Regression: the full-mesh connect() had no retry, so a locality whose
  // peer had not yet reached listen() died on ECONNREFUSED. Reserve a port
  // by binding and closing, dial it, and only *then* start the listener.
  auto [fd0, ep] = md::bind_listener(0, 4);
  ::close(fd0);
  std::atomic<std::uint64_t> retries{0};
  std::thread late_listener([ep = ep] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    // SO_REUSEADDR on listeners makes rebinding the just-closed port safe.
    auto [fd, ep2] = md::bind_listener(ep.port, 4);
    const int cfd = td::accept_retry(fd);
    ::close(cfd);
    ::close(fd);
  });
  BackoffPolicy p;
  p.max_retries = 500;
  p.initial_s = 0.002;
  p.cap_s = 0.02;
  Backoff b(p, 11);
  const int cfd = td::dial_retry(ep.ip_be, ep.port, b, &retries);
  EXPECT_GE(cfd, 0);
  EXPECT_GT(retries.load(), 0u)
      << "the listener started late; at least one re-dial must be counted";
  ::close(cfd);
  late_listener.join();
}

TEST(SocketLayer, DialGivesUpAfterBoundedRetries) {
  auto [fd, ep] = md::bind_listener(0, 1);
  ::close(fd);  // nobody will ever listen here
  BackoffPolicy p;
  p.max_retries = 4;
  p.initial_s = 0.001;
  p.cap_s = 0.002;
  Backoff b(p, 13);
  std::atomic<std::uint64_t> retries{0};
  EXPECT_THROW(td::dial_retry(ep.ip_be, ep.port, b, &retries),
               std::system_error);
  EXPECT_EQ(retries.load(), 4u);
}

TEST(SocketLayer, NodelayIsSetAndVerifiedOnBothEnds) {
  auto [fd, ep] = md::bind_listener(0, 4);
  Backoff b = test_backoff();
  int afd = -1;
  std::thread acceptor([&, fd = fd] { afd = td::accept_retry(fd); });
  const int cfd = td::dial_retry(ep.ip_be, ep.port, b, nullptr);
  acceptor.join();
  ASSERT_GE(afd, 0);
  EXPECT_FALSE(td::nodelay_enabled(cfd)) << "fresh socket: Nagle on";
  EXPECT_TRUE(td::configure_nodelay(cfd));
  EXPECT_TRUE(td::configure_nodelay(afd));
  EXPECT_TRUE(td::nodelay_enabled(cfd));
  EXPECT_TRUE(td::nodelay_enabled(afd));
  ::close(cfd);
  ::close(afd);
  ::close(fd);
}

// --------------------------------------------- multiproc fabric (threaded)

namespace {

/// One simulated "process" of the 3-rank cluster: its own fabric instance
/// plus a per-rank frame log.
struct SimProcess {
  std::unique_ptr<md::Fabric> fabric;
  std::mutex mutex;
  std::vector<std::pair<md::locality_id, std::string>> received;

  void connect(unsigned nranks) {
    std::vector<md::Fabric::receive_fn> receivers;
    for (unsigned i = 0; i < nranks; ++i) {
      receivers.push_back(
          [this](md::locality_id src, std::vector<std::byte> frame) {
            std::lock_guard lk(mutex);
            received.emplace_back(
                src, std::string(reinterpret_cast<const char*>(frame.data()),
                                 frame.size()));
          });
    }
    fabric->connect(std::move(receivers));
  }

  [[nodiscard]] std::size_t count() {
    std::lock_guard lk(mutex);
    return received.size();
  }
};

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

}  // namespace

TEST(MultiprocFabric, ThreeRanksExchangeFramesOverRealSockets) {
  constexpr unsigned n = 3;
  auto [rfd, rep] = md::bind_listener(0, n + 1);

  SimProcess procs[n];
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (unsigned r = 0; r < n; ++r) {
    threads.emplace_back([&, r, rfd = rfd, rep = rep] {
      try {
        md::ProcessLaunchConfig cfg;
        cfg.enabled = true;
        cfg.rank = r;
        cfg.rendezvous = rep.str();
        cfg.rendezvous_listen_fd = r == 0 ? rfd : -1;
        cfg.bootstrap_timeout_s = 20.0;
        procs[r].fabric = md::make_multiproc_tcp_fabric(cfg);
        procs[r].connect(n);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "rank " << r << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ASSERT_EQ(failures.load(), 0);

  EXPECT_EQ(procs[0].fabric->name(), "tcp-multiproc");

  // Every ordered pair sends one frame; loopback delivery included.
  for (unsigned src = 0; src < n; ++src) {
    for (unsigned dst = 0; dst < n; ++dst) {
      const std::string msg =
          "m" + std::to_string(src) + std::to_string(dst);
      procs[src].fabric->send(src, dst, bytes_of(msg));
    }
    procs[src].fabric->flush();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (unsigned r = 0; r < n; ++r) {
    while (procs[r].count() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::lock_guard lk(procs[r].mutex);
    ASSERT_EQ(procs[r].received.size(), n) << "rank " << r;
    std::vector<bool> seen(n, false);
    for (const auto& [src, msg] : procs[r].received) {
      EXPECT_EQ(msg, "m" + std::to_string(src) + std::to_string(r));
      seen[src] = true;
    }
    for (unsigned src = 0; src < n; ++src) {
      EXPECT_TRUE(seen[src]) << "rank " << r << " missing frame from " << src;
    }
  }

  // The one-real-endpoint-per-process invariant: a send whose source is not
  // the hosted rank means proxy plumbing leaked a frame — reject loudly.
  EXPECT_THROW(procs[0].fabric->send(1, 2, bytes_of("x")), std::logic_error);

  // Conformance audit (satellite: NODELAY on both ends). Each process holds
  // one socket per peer — dialed or accepted — and all must have NODELAY.
  for (unsigned r = 0; r < n; ++r) {
    const auto audit = procs[r].fabric->debug_socket_audit();
    EXPECT_EQ(audit.sockets, n - 1) << "rank " << r;
    EXPECT_EQ(audit.missing_nodelay, 0u) << "rank " << r;
  }

  for (unsigned r = 0; r < n; ++r) {
    procs[r].fabric->shutdown();
  }
}

TEST(MultiprocFabric, SlowOrchestratorForcesWorkersToRedialUnderBackoff) {
  // Rank 0 binds its own rendezvous endpoint 300ms after the workers start
  // dialing it — the by-hand launch order nobody can control. The workers
  // must survive the ECONNREFUSED window on jittered retries, and those
  // retries must be visible in /parcels/tcp-multiproc/connect-retries.
  constexpr unsigned n = 3;
  auto [reserve_fd, rep] = md::bind_listener(0, 1);
  ::close(reserve_fd);  // rank 0 will rebind this port itself, late
  SimProcess procs[n];
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (unsigned r = 0; r < n; ++r) {
    threads.emplace_back([&, r, rep = rep] {
      try {
        if (r == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
        }
        md::ProcessLaunchConfig cfg;
        cfg.enabled = true;
        cfg.rank = r;
        cfg.rendezvous = rep.str();
        cfg.bootstrap_timeout_s = 20.0;
        procs[r].fabric = md::make_multiproc_tcp_fabric(cfg);
        procs[r].connect(n);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "rank " << r << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ASSERT_EQ(failures.load(), 0);
  procs[1].fabric->send(1, 2, bytes_of("late"));
  procs[1].fabric->flush();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (procs[2].count() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(procs[2].count(), 1u);
  std::uint64_t total_retries = 0;
  for (unsigned r = 1; r < n; ++r) {
    total_retries += procs[r].fabric->stats().connect_retries;
  }
  EXPECT_GT(total_retries, 0u)
      << "workers dialed a rendezvous endpoint that was not up yet";
  for (unsigned r = 0; r < n; ++r) {
    procs[r].fabric->shutdown();
  }
}
