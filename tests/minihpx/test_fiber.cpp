// Unit tests for the stackful fiber substrate (stack + context switching).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "minihpx/fiber/fiber.hpp"
#include "minihpx/fiber/stack.hpp"

namespace mf = mhpx::fiber;

TEST(Stack, AllocatesUsableMemory) {
  mf::Stack s(64 * 1024);
  ASSERT_TRUE(s.valid());
  EXPECT_GE(s.size(), 64u * 1024u);
  // Touch the whole usable region; the guard page must not be part of it.
  std::memset(s.base(), 0xAB, s.size());
}

TEST(Stack, RoundsUpToPageSize) {
  mf::Stack s(1);
  EXPECT_GE(s.size(), 1u);
  EXPECT_EQ(s.size() % 4096, 0u);
}

TEST(Stack, MoveTransfersOwnership) {
  mf::Stack a(16 * 1024);
  void* base = a.base();
  mf::Stack b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.base(), base);
}

TEST(StackPool, RecyclesStacks) {
  mf::StackPool pool(16 * 1024, 4);
  auto s1 = pool.acquire();
  void* base = s1.base();
  pool.release(std::move(s1));
  EXPECT_EQ(pool.pooled(), 1u);
  auto s2 = pool.acquire();
  EXPECT_EQ(s2.base(), base);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(StackPool, RespectsLimit) {
  mf::StackPool pool(16 * 1024, 2);
  std::vector<mf::Stack> stacks;
  for (int i = 0; i < 4; ++i) {
    stacks.push_back(pool.acquire());
  }
  for (auto& s : stacks) {
    pool.release(std::move(s));
  }
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(Fiber, RunsToCompletion) {
  int ran = 0;
  mf::Fiber f([&] { ran = 42; }, mf::Stack(64 * 1024));
  EXPECT_EQ(f.state(), mf::FiberState::ready);
  f.resume();
  EXPECT_EQ(ran, 42);
  EXPECT_EQ(f.state(), mf::FiberState::finished);
}

TEST(Fiber, SuspendAndResumeRoundTrip) {
  std::vector<int> order;
  mf::Fiber* self = nullptr;
  mf::Fiber f(
      [&] {
        order.push_back(1);
        self->set_state(mf::FiberState::ready);
        self->suspend_to_owner();
        order.push_back(3);
      },
      mf::Stack(64 * 1024));
  self = &f;
  f.resume();
  order.push_back(2);
  EXPECT_EQ(f.state(), mf::FiberState::ready);
  f.resume();
  EXPECT_EQ(f.state(), mf::FiberState::finished);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, ResetReusesStackAndContext) {
  int a = 0;
  int b = 0;
  mf::Fiber f([&] { a = 1; }, mf::Stack(64 * 1024));
  f.resume();
  ASSERT_EQ(f.state(), mf::FiberState::finished);
  f.reset([&] { b = 2; });
  f.resume();
  EXPECT_EQ(f.state(), mf::FiberState::finished);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Fiber, DeepCallChainFitsInStack) {
  // Exercise a few KiB of real stack usage inside the fiber.
  struct Rec {
    static int go(int n) {
      volatile char pad[256];
      pad[0] = static_cast<char>(n);
      return n == 0 ? pad[0] : go(n - 1);
    }
  };
  int result = -1;
  mf::Fiber f([&] { result = Rec::go(100); }, mf::Stack(256 * 1024));
  f.resume();
  EXPECT_EQ(result, 0);
}

TEST(Fiber, ManySequentialFibers) {
  int sum = 0;
  for (int i = 0; i < 100; ++i) {
    mf::Fiber f([&, i] { sum += i; }, mf::Stack(32 * 1024));
    f.resume();
    EXPECT_EQ(f.state(), mf::FiberState::finished);
  }
  EXPECT_EQ(sum, 4950);
}
