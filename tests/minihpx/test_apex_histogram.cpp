// mhpx::apex::Histogram: HDR bucket arithmetic, golden quantiles, snapshot
// merge algebra (associative/commutative, the property bucket federation
// rests on), the metamorphic sharded-vs-single identity, concurrent
// recording, the registry's derived counter leaves, and the global enable
// switch.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "minihpx/apex/counters.hpp"
#include "minihpx/apex/histogram.hpp"

namespace apex = mhpx::apex;

namespace {

apex::HistogramSnapshot snap_of(const std::vector<std::uint64_t>& values) {
  apex::Histogram h;
  for (std::uint64_t v : values) {
    h.record_ns(v);
  }
  return h.snapshot();
}

}  // namespace

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < apex::Histogram::sub_count; ++v) {
    EXPECT_EQ(apex::Histogram::bucket_index(v), v);
    EXPECT_EQ(apex::Histogram::bucket_upper_ns(v), v);
  }
}

TEST(HistogramBuckets, UpperBoundIsTightAndMonotonic) {
  // Every value maps into a bucket whose upper bound is >= the value and
  // whose predecessor's upper bound is < the value.
  for (std::uint64_t v : {32ull, 33ull, 100ull, 1000ull, 4095ull, 4096ull,
                          1ull << 20, (1ull << 20) + 17, 1ull << 40,
                          ~0ull >> 1}) {
    const std::size_t idx = apex::Histogram::bucket_index(v);
    ASSERT_LT(idx, apex::Histogram::bucket_count);
    EXPECT_GE(apex::Histogram::bucket_upper_ns(idx), v);
    if (idx > 0) {
      EXPECT_LT(apex::Histogram::bucket_upper_ns(idx - 1), v);
    }
  }
  // Relative error stays within 2^-sub_bits (~3%).
  const std::uint64_t v = 1000000;
  const std::size_t idx = apex::Histogram::bucket_index(v);
  const double ub = static_cast<double>(apex::Histogram::bucket_upper_ns(idx));
  EXPECT_LE((ub - static_cast<double>(v)) / static_cast<double>(v),
            1.0 / apex::Histogram::sub_count);
}

TEST(HistogramQuantile, GoldenSingleValue) {
  // 1000 ns lands in the bucket with upper bound 1007 ns; every quantile of
  // a single-valued distribution is that representative, exactly.
  apex::Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.record_ns(1000);
  }
  const apex::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum_ns, 100000u);
  EXPECT_EQ(s.max_ns, 1000u);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 1007e-9) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.mean(), 1000e-9);
}

TEST(HistogramQuantile, GoldenTwoPointDistribution) {
  // 90 values at 10 ns, 10 at 1000 ns: p50/p90 sit in the exact bucket 10,
  // p99 and above in 1000's bucket (upper bound 1007).
  apex::Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.record_ns(10);
  }
  for (int i = 0; i < 10; ++i) {
    h.record_ns(1000);
  }
  const apex::HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 10e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 10e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 1007e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.999), 1007e-9);
  EXPECT_DOUBLE_EQ(s.max(), 1000e-9);
}

TEST(HistogramQuantile, EmptyHistogramReadsZero) {
  apex::Histogram h;
  const apex::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(s.buckets.empty());
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramMerge, AssociativeAndCommutative) {
  const apex::HistogramSnapshot a = snap_of({1, 5, 900, 70000});
  const apex::HistogramSnapshot b = snap_of({2, 2, 2, 1u << 20});
  const apex::HistogramSnapshot c = snap_of({1000, 1000, 31});

  apex::HistogramSnapshot ab_c = a;  // (a+b)+c
  ab_c.merge(b);
  ab_c.merge(c);
  apex::HistogramSnapshot a_bc = b;  // a+(b+c), built b-first
  a_bc.merge(c);
  a_bc.merge(a);

  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum_ns, a_bc.sum_ns);
  EXPECT_EQ(ab_c.max_ns, a_bc.max_ns);

  apex::HistogramSnapshot ba = b;
  ba.merge(a);
  apex::HistogramSnapshot ab = a;
  ab.merge(b);
  EXPECT_EQ(ab.buckets, ba.buckets);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum_ns, ba.sum_ns);
  EXPECT_EQ(ab.max_ns, ba.max_ns);
}

TEST(HistogramMerge, MetamorphicShardedEqualsSingle) {
  // The federation invariant end to end: values split across many
  // histograms and merged must give bit-identical buckets (and therefore
  // identical quantiles) to the same values in one histogram.
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    values.push_back((i * 2654435761u) % 10000000);  // deterministic spread
  }
  const apex::HistogramSnapshot single = snap_of(values);

  apex::HistogramSnapshot merged;
  constexpr std::size_t parts = 7;
  for (std::size_t p = 0; p < parts; ++p) {
    apex::Histogram h;
    for (std::size_t i = p; i < values.size(); i += parts) {
      h.record_ns(values[i]);
    }
    merged.merge(h.snapshot());
  }

  EXPECT_EQ(merged.buckets, single.buckets);
  EXPECT_EQ(merged.count, single.count);
  EXPECT_EQ(merged.sum_ns, single.sum_ns);
  EXPECT_EQ(merged.max_ns, single.max_ns);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), single.quantile(q));
  }
}

TEST(HistogramConcurrency, ParallelRecordsAllLand) {
  apex::Histogram h;
  constexpr int threads = 8;
  constexpr int per_thread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&h] {
      for (int i = 0; i < per_thread; ++i) {
        h.record_ns(static_cast<std::uint64_t>(i) * 13 + 1);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(threads) * per_thread);
  const apex::HistogramSnapshot s = h.snapshot();
  std::uint64_t total = 0;
  for (std::uint64_t b : s.buckets) {
    total += b;
  }
  EXPECT_EQ(total, s.count);
}

TEST(HistogramEnable, GlobalSwitchDropsRecords) {
  apex::Histogram h;
  h.record_ns(50);
  apex::Histogram::set_enabled(false);
  h.record_ns(50);
  h.record_ns(50);
  apex::Histogram::set_enabled(true);
  h.record_ns(50);
  EXPECT_EQ(h.count(), 2u);
}

TEST(HistogramRegistry, DerivedLeavesReadThroughCounters) {
  apex::CounterRegistry counters;
  apex::HistogramRegistry reg(counters);
  apex::Histogram h;
  ASSERT_TRUE(reg.attach("/t/lat", h, "test latency"));
  // Re-attaching the same name is rejected (checkpoint shadow replicas).
  apex::Histogram other;
  EXPECT_FALSE(reg.attach("/t/lat", other));

  for (int i = 0; i < 10; ++i) {
    h.record_ns(1000);
  }
  EXPECT_DOUBLE_EQ(counters.read("/t/lat/count").value_or(-1), 10.0);
  EXPECT_DOUBLE_EQ(counters.read("/t/lat/mean").value_or(-1), 1000e-9);
  EXPECT_DOUBLE_EQ(counters.read("/t/lat/p50").value_or(-1), 1007e-9);
  EXPECT_DOUBLE_EQ(counters.read("/t/lat/p99").value_or(-1), 1007e-9);
  EXPECT_DOUBLE_EQ(counters.read("/t/lat/p999").value_or(-1), 1007e-9);
  EXPECT_DOUBLE_EQ(counters.read("/t/lat/max").value_or(-1), 1000e-9);

  // The glob surface sees all seven leaves.
  EXPECT_EQ(counters.discover("/t/lat/**").size(), 7u);

  ASSERT_TRUE(reg.remove("/t/lat"));
  EXPECT_FALSE(counters.read("/t/lat/count").has_value());
  EXPECT_FALSE(reg.remove("/t/lat"));
}

TEST(HistogramRegistry, OwnedHistogramsAndBlocks) {
  apex::CounterRegistry counters;
  apex::HistogramRegistry reg(counters);
  apex::Histogram& owned = reg.get_or_create("/t/owned", "registry-owned");
  owned.record_ns(42);
  EXPECT_EQ(reg.snapshot("/t/owned").count, 1u);
  EXPECT_EQ(&reg.get_or_create("/t/owned"), &owned);
  EXPECT_EQ(reg.find("/t/missing"), nullptr);

  apex::Histogram h;
  {
    apex::HistogramBlock block(reg);
    ASSERT_TRUE(block.attach("/t/scoped", h));
    EXPECT_EQ(reg.names().size(), 2u);
  }
  // Block death removes its attachments, not the registry-owned entries.
  EXPECT_EQ(reg.names().size(), 1u);
  EXPECT_EQ(reg.names()[0], "/t/owned");
}
