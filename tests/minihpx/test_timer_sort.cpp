// Tests for timed fiber suspension and the parallel sort.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <vector>

#include "minihpx/futures/future.hpp"
#include "minihpx/parallel/sort.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/timer_service.hpp"

namespace {

using namespace std::chrono_literals;

struct TimerTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_F(TimerTest, SleepForWaitsApproximately) {
  auto f = mhpx::async([] {
    const auto t0 = std::chrono::steady_clock::now();
    mhpx::sync::sleep_for(30ms);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  });
  const double elapsed = f.get();
  EXPECT_GE(elapsed, 25.0);
  EXPECT_LT(elapsed, 500.0);
}

TEST_F(TimerTest, SleepingFiberDoesNotBlockWorker) {
  // One worker: a sleeping task must not prevent other tasks from running.
  mhpx::Runtime* rt = mhpx::Runtime::instance();
  ASSERT_NE(rt, nullptr);
  std::atomic<bool> other_ran{false};
  auto sleeper = mhpx::async([&] {
    mhpx::sync::sleep_for(50ms);
    // By wake-up time the other task must have run.
    return other_ran.load();
  });
  auto other = mhpx::async([&] { other_ran.store(true); });
  other.get();
  EXPECT_TRUE(sleeper.get());
}

TEST_F(TimerTest, ManyConcurrentSleepers) {
  std::vector<mhpx::future<int>> futs;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    futs.push_back(mhpx::async([i] {
      mhpx::sync::sleep_for(std::chrono::milliseconds(10 + i % 5));
      return i;
    }));
  }
  long sum = 0;
  for (auto& f : futs) {
    sum += f.get();
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(sum, 49 * 50 / 2);
  // 50 sleeps of ~10 ms on 2 workers: must overlap, not serialise (which
  // would take >= 250 ms even on two workers blocking).
  EXPECT_LT(elapsed_ms, 400.0);
}

TEST_F(TimerTest, SleepUntilPastDeadlineReturnsQuickly) {
  auto f = mhpx::async([] {
    mhpx::sync::sleep_until(std::chrono::steady_clock::now() - 1s);
    return 1;
  });
  EXPECT_EQ(f.get(), 1);
}

TEST_F(TimerTest, PostAtFiresCallbacksInOrder) {
  std::mutex m;
  std::vector<int> order;  // guarded by m
  mhpx::sync::latch done(2);
  const auto now = std::chrono::steady_clock::now();
  mhpx::sync::TimerService::instance().post_at(now + 40ms, [&] {
    {
      std::lock_guard lk(m);
      order.push_back(2);
    }
    done.count_down();
  });
  mhpx::sync::TimerService::instance().post_at(now + 10ms, [&] {
    {
      std::lock_guard lk(m);
      order.push_back(1);
    }
    done.count_down();
  });
  done.wait();
  std::lock_guard lk(m);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

struct SortTest : ::testing::Test {
  mhpx::Runtime runtime{{3, 64 * 1024}};
};

TEST_F(SortTest, SortsRandomData) {
  std::vector<int> v(100'000);
  std::mt19937 rng(7);
  for (auto& x : v) {
    x = static_cast<int>(rng());
  }
  std::vector<int> expect = v;
  std::sort(expect.begin(), expect.end());
  mhpx::sort(mhpx::execution::par, v.begin(), v.end());
  EXPECT_EQ(v, expect);
}

TEST_F(SortTest, SortsWithCustomComparator) {
  std::vector<int> v{3, 1, 4, 1, 5, 9, 2, 6};
  mhpx::sort(mhpx::execution::par, v.begin(), v.end(), std::greater<>());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>()));
}

TEST_F(SortTest, HandlesPathologicalInputs) {
  // Already sorted.
  std::vector<int> sorted(50'000);
  std::iota(sorted.begin(), sorted.end(), 0);
  auto expect = sorted;
  mhpx::sort(mhpx::execution::par, sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, expect);
  // Reverse sorted.
  std::vector<int> rev(50'000);
  std::iota(rev.rbegin(), rev.rend(), 0);
  mhpx::sort(mhpx::execution::par, rev.begin(), rev.end());
  EXPECT_TRUE(std::is_sorted(rev.begin(), rev.end()));
  // All equal (progress guarantee of the three-way partition).
  std::vector<int> same(50'000, 42);
  mhpx::sort(mhpx::execution::par, same.begin(), same.end());
  EXPECT_EQ(same.front(), 42);
  EXPECT_EQ(same.back(), 42);
  // Empty and single-element.
  std::vector<int> empty;
  mhpx::sort(mhpx::execution::par, empty.begin(), empty.end());
  std::vector<int> one{5};
  mhpx::sort(mhpx::execution::par, one.begin(), one.end());
  EXPECT_EQ(one[0], 5);
}

TEST_F(SortTest, SortInsideTask) {
  auto f = mhpx::async([] {
    std::vector<double> v(20'000);
    std::mt19937 rng(3);
    for (auto& x : v) {
      x = std::uniform_real_distribution<double>(-1, 1)(rng);
    }
    mhpx::sort(mhpx::execution::par, v.begin(), v.end());
    return std::is_sorted(v.begin(), v.end());
  });
  EXPECT_TRUE(f.get());
}

}  // namespace
