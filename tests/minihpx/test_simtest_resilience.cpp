// Interleaving-explorer regression suites (ctest label: simtest).
//
// mhpx::resilience and mhpx::apex both promise invariants that must hold
// under *every* schedule, not just the one a wall-clock run happens to
// produce. These tests re-run each scenario under the explorer's
// interleaving budget: replay/replicate-vote must mask injected faults at
// every explored preemption point, and the counter registry must keep its
// registration/reset invariants when two tasks hammer it concurrently.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/testing/seed_env.hpp"
#include "minihpx/apex/counters.hpp"
#include "minihpx/resilience/fault_injector.hpp"
#include "minihpx/resilience/resilience.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"
#include "minihpx/testing/explorer.hpp"

namespace {

using mhpx::testing::ExploreConfig;
using mhpx::testing::explore;

ExploreConfig simtest_cfg() {
  ExploreConfig cfg;
  cfg.schedules = rveval::testing::simtest_budget();
  cfg.base_seed = rveval::testing::sched_seed();
  cfg.race_check = false;  // the subsystems under test use raw atomics too
  return cfg;
}

TEST(SimtestResilience, ReplayMasksInjectedFaultsAtEveryPreemptionPoint) {
  const auto result = explore(simtest_cfg(), [] {
    // Every second wrapped call throws; three attempts must still succeed
    // no matter where the explorer slices the replay loop.
    mhpx::resilience::FaultInjector injector({0.0, 0.0, 77, 2, 0});
    // Burn decision 1 (a pass) so the replay's first attempt lands on the
    // firing call 2 and the retry path actually runs.
    injector.inject_fault();
    auto work = [] {
      mhpx::testing::preemption_point(0xA1);
      return 42;
    };
    auto fut = mhpx::resilience::async_replay(
        3, mhpx::resilience::faulty(injector, work));
    mhpx::testing::preemption_point(0xA2);
    const int got = fut.get();
    mhpx::testing::check(got == 42, "replay returned a wrong value: " +
                                        std::to_string(got));
    mhpx::testing::check(injector.faults_injected() >= 1,
                         "the injector never fired");
  });
  EXPECT_FALSE(result.failed)
      << result.replay_recipe
      << "\nrepro: " << rveval::testing::seed_env().repro_line();
}

TEST(SimtestResilience, ReplicateVoteOutvotesCorruptionInEverySchedule) {
  const auto result = explore(simtest_cfg(), [] {
    // One of three replicas is silently corrupted (call 3 of the decision
    // stream); the 2-vs-1 majority must win under every interleaving of
    // the replica tasks.
    mhpx::resilience::FaultInjector injector({0.0, 0.0, 77, 0, 3});
    auto work = [] {
      mhpx::testing::preemption_point(0xB1);
      return 1234;
    };
    auto fut = mhpx::resilience::async_replicate_vote(
        3, mhpx::resilience::corrupting(injector, work));
    const int got = fut.get();
    mhpx::testing::check(got == 1234,
                         "vote elected a corrupted value: " +
                             std::to_string(got));
  });
  EXPECT_FALSE(result.failed)
      << result.replay_recipe
      << "\nrepro: " << rveval::testing::seed_env().repro_line();
}

TEST(SimtestResilience, ReplicateToleratesACrashedReplicaInEverySchedule) {
  const auto result = explore(simtest_cfg(), [] {
    mhpx::resilience::FaultInjector injector({0.0, 0.0, 77, 2, 0});
    auto work = [] {
      mhpx::testing::preemption_point(0xB2);
      return 7;
    };
    auto fut = mhpx::resilience::async_replicate(
        3, mhpx::resilience::faulty(injector, work));
    mhpx::testing::check(fut.get() == 7, "replicate lost the good result");
  });
  EXPECT_FALSE(result.failed)
      << result.replay_recipe
      << "\nrepro: " << rveval::testing::seed_env().repro_line();
}

TEST(SimtestApex, CounterRegistrationIsExactlyOnceUnderContention) {
  const auto result = explore(simtest_cfg(), [] {
    mhpx::apex::CounterRegistry reg;
    mhpx::apex::CounterBlock block_a(reg);
    mhpx::apex::CounterBlock block_b(reg);
    bool a_won = false;
    bool b_won = false;
    mhpx::sync::latch done(2);
    mhpx::post([&] {
      mhpx::testing::preemption_point(0xD1);
      a_won = block_a.add("/sim/dup", "contended name",
                          mhpx::apex::CounterKind::monotonic,
                          [] { return 1.0; });
      done.count_down();
    });
    mhpx::post([&] {
      mhpx::testing::preemption_point(0xD2);
      b_won = block_b.add("/sim/dup", "contended name",
                          mhpx::apex::CounterKind::monotonic,
                          [] { return 2.0; });
      done.count_down();
    });
    done.wait();
    mhpx::testing::check(a_won != b_won,
                         "duplicate name registered twice (or never)");
    mhpx::testing::check(reg.size() == 1, "registry size drifted");
    // The loser's block must not remove the winner's counter.
    if (a_won) {
      block_b.clear();
    } else {
      block_a.clear();
    }
    mhpx::testing::check(reg.read("/sim/dup").has_value(),
                         "loser's cleanup removed the winner's counter");
  });
  EXPECT_FALSE(result.failed)
      << result.replay_recipe
      << "\nrepro: " << rveval::testing::seed_env().repro_line();
}

TEST(SimtestApex, ResetNeverProducesNegativeReadsUnderContention) {
  const auto result = explore(simtest_cfg(), [] {
    mhpx::apex::CounterRegistry reg;
    mhpx::apex::CounterBlock block(reg);
    std::uint64_t hits = 0;
    block.add("/sim/hits", "events observed",
              mhpx::apex::CounterKind::monotonic,
              [&hits] { return static_cast<double>(hits); });
    mhpx::sync::latch done(2);
    mhpx::post([&] {
      for (int i = 0; i < 3; ++i) {
        ++hits;
        mhpx::testing::preemption_point(0xE1);
        const auto v = reg.read("/sim/hits");
        mhpx::testing::check(v.has_value(), "counter vanished mid-run");
        mhpx::testing::check(*v >= 0.0,
                             "monotonic counter read a negative delta");
      }
      done.count_down();
    });
    mhpx::post([&] {
      for (int i = 0; i < 2; ++i) {
        mhpx::testing::preemption_point(0xE2);
        reg.reset("/sim/**");
      }
      done.count_down();
    });
    done.wait();
    const auto v = reg.read("/sim/hits");
    mhpx::testing::check(v.has_value() && *v >= 0.0 && *v <= 3.0,
                         "final baseline-adjusted read out of range");
  });
  EXPECT_FALSE(result.failed)
      << result.replay_recipe
      << "\nrepro: " << rveval::testing::seed_env().repro_line();
}

}  // namespace
