// Tests for the wider parallel-algorithm surface and the serialization
// additions (optional / map / unordered_map).

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "minihpx/parallel/more_algorithms.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/serialization/archive.hpp"

namespace {

namespace ex = mhpx::execution;

struct MoreAlgosTest : ::testing::Test {
  mhpx::Runtime runtime{{3, 64 * 1024}};
};

TEST_F(MoreAlgosTest, TransformParMatchesSeq) {
  std::vector<int> in(5000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> a(in.size());
  std::vector<int> b(in.size());
  mhpx::transform(ex::seq, in.begin(), in.end(), a.begin(),
                  [](int v) { return v * 3 + 1; });
  auto end = mhpx::transform(ex::par, in.begin(), in.end(), b.begin(),
                             [](int v) { return v * 3 + 1; });
  EXPECT_EQ(end, b.end());
  EXPECT_EQ(a, b);
}

TEST_F(MoreAlgosTest, FillAndCopy) {
  std::vector<double> v(1000, 0.0);
  mhpx::fill(ex::par, v.begin(), v.end(), 2.5);
  EXPECT_DOUBLE_EQ(v[17], 2.5);
  EXPECT_DOUBLE_EQ(v[999], 2.5);
  std::vector<double> w(v.size());
  mhpx::copy(ex::par, v.begin(), v.end(), w.begin());
  EXPECT_EQ(v, w);
}

TEST_F(MoreAlgosTest, CountIf) {
  std::vector<int> v(10000);
  std::iota(v.begin(), v.end(), 0);
  const auto n = mhpx::count_if(ex::par, v.begin(), v.end(),
                                [](int x) { return x % 7 == 0; });
  EXPECT_EQ(n, 1429u);  // 0, 7, ..., 9996
}

TEST_F(MoreAlgosTest, PredicateAlgorithms) {
  std::vector<int> v(2000, 2);
  EXPECT_TRUE(mhpx::all_of(ex::par, v.begin(), v.end(),
                           [](int x) { return x == 2; }));
  EXPECT_FALSE(mhpx::any_of(ex::par, v.begin(), v.end(),
                            [](int x) { return x == 3; }));
  EXPECT_TRUE(mhpx::none_of(ex::par, v.begin(), v.end(),
                            [](int x) { return x < 0; }));
  v[1234] = -1;
  EXPECT_FALSE(mhpx::all_of(ex::par, v.begin(), v.end(),
                            [](int x) { return x == 2; }));
  EXPECT_TRUE(mhpx::any_of(ex::par, v.begin(), v.end(),
                           [](int x) { return x < 0; }));
}

TEST_F(MoreAlgosTest, MinMaxValues) {
  std::vector<double> v(3000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(static_cast<double>(i));
  }
  const double lo = mhpx::min_value(ex::par, v.begin(), v.end());
  const double hi = mhpx::max_value(ex::par, v.begin(), v.end());
  EXPECT_DOUBLE_EQ(lo, *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(hi, *std::max_element(v.begin(), v.end()));
}

TEST_F(MoreAlgosTest, InclusiveScanMatchesStd) {
  std::vector<long> v(4097);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<long>(i % 13) - 6;
  }
  std::vector<long> expect(v.size());
  std::partial_sum(v.begin(), v.end(), expect.begin());
  std::vector<long> got(v.size());
  mhpx::inclusive_scan(ex::par, v.begin(), v.end(), got.begin());
  EXPECT_EQ(got, expect);
}

TEST_F(MoreAlgosTest, InclusiveScanInPlace) {
  std::vector<int> v{1, 2, 3, 4, 5};
  mhpx::inclusive_scan(ex::par.with_chunks(2), v.begin(), v.end(), v.begin());
  EXPECT_EQ(v, (std::vector<int>{1, 3, 6, 10, 15}));
}

TEST_F(MoreAlgosTest, EmptyRanges) {
  std::vector<int> v;
  std::vector<int> out;
  EXPECT_EQ(mhpx::transform(ex::par, v.begin(), v.end(), out.begin(),
                            [](int x) { return x; }),
            out.begin());
  EXPECT_EQ(mhpx::count_if(ex::par, v.begin(), v.end(),
                           [](int) { return true; }),
            0u);
  EXPECT_TRUE(mhpx::all_of(ex::par, v.begin(), v.end(),
                           [](int) { return false; }));
}

// ------------------------------ serialization additions -----------------

namespace ser = mhpx::serialization;

template <typename T>
T round_trip(const T& v) {
  return ser::from_bytes<T>(ser::to_bytes(v));
}

TEST(SerializationMore, Optional) {
  EXPECT_EQ(round_trip(std::optional<int>{42}), std::optional<int>{42});
  EXPECT_EQ(round_trip(std::optional<int>{}), std::optional<int>{});
  EXPECT_EQ(round_trip(std::optional<std::string>{"abc"}),
            std::optional<std::string>{"abc"});
}

TEST(SerializationMore, Map) {
  std::map<int, std::string> m{{1, "one"}, {2, "two"}, {-5, ""}};
  EXPECT_EQ(round_trip(m), m);
  EXPECT_EQ(round_trip(std::map<int, int>{}), (std::map<int, int>{}));
}

TEST(SerializationMore, UnorderedMap) {
  std::unordered_map<std::string, double> m{{"pi", 3.14}, {"e", 2.72}};
  EXPECT_EQ(round_trip(m), m);
}

TEST(SerializationMore, NestedContainers) {
  std::map<std::string, std::vector<int>> m{{"a", {1, 2}}, {"b", {}}};
  EXPECT_EQ(round_trip(m), m);
  std::optional<std::map<int, int>> om{{{7, 8}}};
  EXPECT_EQ(round_trip(om), om);
}

TEST(SerializationMore, HostileMapSizeThrows) {
  ser::OutputArchive out;
  const std::uint64_t huge = 1ull << 50;
  out.write_bytes(&huge, sizeof(huge));
  const auto bytes = std::move(out).take();
  EXPECT_THROW((ser::from_bytes<std::map<int, int>>(bytes)),
               ser::archive_error);
}

}  // namespace
