// Failure-injection tests for the distributed layer: corrupted and
// truncated frames, unknown actions, and hostile payload lengths must be
// contained — dropped or surfaced as errors, never crashes.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "minihpx/distributed/runtime.hpp"

namespace {

namespace md = mhpx::dist;

struct EchoIntAction {
  static constexpr std::string_view name = "failtest::echo";
  static int invoke(md::Locality&, int v) { return v; }
};
MHPX_REGISTER_ACTION(EchoIntAction);

md::DistributedRuntime::Config config() {
  md::DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.stack_size = 64 * 1024;
  cfg.fabric = md::FabricKind::inproc;
  return cfg;
}

TEST(FailureInjection, GarbageFrameIsDroppedNotFatal) {
  md::DistributedRuntime rt(config());
  // Inject random bytes straight into locality 1's delivery path.
  std::vector<std::byte> garbage(37);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::byte>(i * 41 + 7);
  }
  rt.locality(1).deliver(0, garbage);
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
  // The locality still works.
  EXPECT_EQ(rt.locality(0)
                .call<EchoIntAction>(md::locality_gid(1), 9)
                .get(),
            9);
}

TEST(FailureInjection, TruncatedFrameIsDropped) {
  md::DistributedRuntime rt(config());
  // A real frame, cut short mid-payload.
  md::Parcel p;
  p.header.kind = md::ParcelKind::call;
  p.header.destination = 1;
  p.payload.assign(64, std::byte{0x5A});
  auto frame = md::encode_parcel(p);
  frame.resize(frame.size() / 2);
  rt.locality(1).deliver(0, frame);
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, EmptyFrameIsDropped) {
  md::DistributedRuntime rt(config());
  rt.locality(1).deliver(0, {});
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, UnknownActionYieldsRemoteError) {
  md::DistributedRuntime rt(config());
  // Hand-craft a call parcel with an unregistered action hash. Route it
  // through the real path with a fake pending request via a direct frame:
  // easier: register nothing and call through the typed API with a bogus
  // name is impossible, so build the frame manually.
  md::Parcel p;
  p.header.kind = md::ParcelKind::call;
  p.header.source = 0;
  p.header.destination = 1;
  p.header.action = md::fnv1a("no::such::action");
  p.header.request = 424242;  // no pending entry: the reply will be dropped
  rt.locality(1).deliver(0, md::encode_parcel(p));
  // Give the handler task a moment; the reply lands at locality 0 and is
  // dropped (unknown request id) — no crash, no leak.
  rt.wait_all_idle();
  EXPECT_EQ(rt.locality(1).dropped_frames(), 0u);  // frame itself was valid
}

TEST(FailureInjection, CorruptKindByteIsDropped) {
  md::DistributedRuntime rt(config());
  md::Parcel p;
  p.header.kind = static_cast<md::ParcelKind>(0xEE);
  p.header.destination = 1;
  rt.locality(1).deliver(0, md::encode_parcel(p));
  rt.wait_all_idle();
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, HostilePayloadLengthIsContained) {
  md::DistributedRuntime rt(config());
  // Frame whose embedded payload length claims far more bytes than exist.
  mhpx::serialization::OutputArchive ar;
  md::ParcelHeader h;
  h.kind = md::ParcelKind::call;
  h.destination = 1;
  ar& h;
  const std::uint64_t huge = 1ull << 40;
  ar& huge;  // payload length with no payload behind it
  rt.locality(1).deliver(0, std::move(ar).take());
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, ManyGarbageFramesUnderLoad) {
  md::DistributedRuntime rt(config());
  std::vector<mhpx::future<int>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(rt.locality(0).call<EchoIntAction>(md::locality_gid(1), i));
    std::vector<std::byte> junk(i + 1, std::byte{0xFF});
    rt.locality(1).deliver(0, junk);
  }
  long sum = 0;
  for (auto& f : futs) {
    sum += f.get();
  }
  EXPECT_EQ(sum, 49 * 50 / 2);
  EXPECT_EQ(rt.locality(1).dropped_frames(), 50u);
}

}  // namespace
