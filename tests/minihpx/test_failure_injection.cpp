// Failure-injection tests for the distributed layer: corrupted and
// truncated frames, unknown actions, and hostile payload lengths must be
// contained — dropped or surfaced as errors, never crashes. Plus the
// resilience subsystem: replay/replicate primitives, the deterministic
// fault injector and the fault-injecting parcelport decorator across all
// three fabrics.
//
// Seeds come from the unified rveval::testing::seed_env() (which honours
// RVEVAL_FAULT_SEED, set by the RVEVAL_STRESS_SEEDS CMake option) so CI can
// re-run the stochastic tests across many seeds — and a failing test's
// output carries the exact environment line to replay it.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/testing/seed_env.hpp"
#include "minihpx/distributed/runtime.hpp"
#include "minihpx/resilience/fabric_faulty.hpp"
#include "minihpx/resilience/fault_injector.hpp"
#include "minihpx/resilience/resilience.hpp"
#include "minihpx/runtime.hpp"

namespace {

namespace md = mhpx::dist;

struct EchoIntAction {
  static constexpr std::string_view name = "failtest::echo";
  static int invoke(md::Locality&, int v) { return v; }
};
MHPX_REGISTER_ACTION(EchoIntAction);

md::DistributedRuntime::Config config() {
  md::DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.stack_size = 64 * 1024;
  cfg.fabric = md::FabricKind::inproc;
  return cfg;
}

TEST(FailureInjection, GarbageFrameIsDroppedNotFatal) {
  md::DistributedRuntime rt(config());
  // Inject random bytes straight into locality 1's delivery path.
  std::vector<std::byte> garbage(37);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::byte>(i * 41 + 7);
  }
  rt.locality(1).deliver(0, garbage);
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
  // The locality still works.
  EXPECT_EQ(rt.locality(0)
                .call<EchoIntAction>(md::locality_gid(1), 9)
                .get(),
            9);
}

TEST(FailureInjection, TruncatedFrameIsDropped) {
  md::DistributedRuntime rt(config());
  // A real frame, cut short mid-payload.
  md::Parcel p;
  p.header.kind = md::ParcelKind::call;
  p.header.destination = 1;
  p.payload.assign(64, std::byte{0x5A});
  auto frame = md::encode_parcel(p);
  frame.resize(frame.size() / 2);
  rt.locality(1).deliver(0, frame);
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, EmptyFrameIsDropped) {
  md::DistributedRuntime rt(config());
  rt.locality(1).deliver(0, {});
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, UnknownActionYieldsRemoteError) {
  md::DistributedRuntime rt(config());
  // Hand-craft a call parcel with an unregistered action hash. Route it
  // through the real path with a fake pending request via a direct frame:
  // easier: register nothing and call through the typed API with a bogus
  // name is impossible, so build the frame manually.
  md::Parcel p;
  p.header.kind = md::ParcelKind::call;
  p.header.source = 0;
  p.header.destination = 1;
  p.header.action = md::fnv1a("no::such::action");
  p.header.request = 424242;  // no pending entry: the reply will be dropped
  rt.locality(1).deliver(0, md::encode_parcel(p));
  // Give the handler task a moment; the reply lands at locality 0 and is
  // dropped (unknown request id) — no crash, no leak.
  rt.wait_all_idle();
  EXPECT_EQ(rt.locality(1).dropped_frames(), 0u);  // frame itself was valid
}

TEST(FailureInjection, CorruptKindByteIsDropped) {
  md::DistributedRuntime rt(config());
  md::Parcel p;
  p.header.kind = static_cast<md::ParcelKind>(0xEE);
  p.header.destination = 1;
  rt.locality(1).deliver(0, md::encode_parcel(p));
  rt.wait_all_idle();
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, HostilePayloadLengthIsContained) {
  md::DistributedRuntime rt(config());
  // Frame whose embedded payload length claims far more bytes than exist.
  mhpx::serialization::OutputArchive ar;
  md::ParcelHeader h;
  h.kind = md::ParcelKind::call;
  h.destination = 1;
  ar& h;
  const std::uint64_t huge = 1ull << 40;
  ar& huge;  // payload length with no payload behind it
  rt.locality(1).deliver(0, std::move(ar).take());
  EXPECT_EQ(rt.locality(1).dropped_frames(), 1u);
}

TEST(FailureInjection, ManyGarbageFramesUnderLoad) {
  md::DistributedRuntime rt(config());
  std::vector<mhpx::future<int>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(rt.locality(0).call<EchoIntAction>(md::locality_gid(1), i));
    std::vector<std::byte> junk(i + 1, std::byte{0xFF});
    rt.locality(1).deliver(0, junk);
  }
  long sum = 0;
  for (auto& f : futs) {
    sum += f.get();
  }
  EXPECT_EQ(sum, 49 * 50 / 2);
  EXPECT_EQ(rt.locality(1).dropped_frames(), 50u);
}

// ===================================================== resilience primitives

namespace mres = mhpx::resilience;

using rveval::testing::fault_seed;

struct ResilienceTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
  /// On any failure, gtest prints the exact env line replaying this seed.
  ::testing::ScopedTrace repro{__FILE__, __LINE__,
                               rveval::testing::seed_env().repro_line()};
};

TEST_F(ResilienceTest, ReplaySucceedsAfterTransientFaults) {
  mhpx::instrument::reset_resilience_counters();
  // Fail the first two attempts, succeed on the third.
  std::atomic<int> failures{2};
  auto fut = mres::async_replay(4, [&failures] {
    if (failures.fetch_sub(1) > 0) {
      throw mres::injected_fault();
    }
    return 42;
  });
  EXPECT_EQ(fut.get(), 42);
  const auto c = mhpx::instrument::resilience_counters();
  EXPECT_EQ(c.task_retries, 2u);
  EXPECT_EQ(c.replays_exhausted, 0u);
}

TEST_F(ResilienceTest, ReplayExhaustionThrowsLastException) {
  mhpx::instrument::reset_resilience_counters();
  auto fut = mres::async_replay(3, []() -> int {
    throw mres::injected_fault();
  });
  EXPECT_THROW(fut.get(), mres::injected_fault);
  const auto c = mhpx::instrument::resilience_counters();
  EXPECT_EQ(c.task_retries, 2u);       // attempts 2 and 3
  EXPECT_EQ(c.replays_exhausted, 1u);
}

TEST_F(ResilienceTest, ReplayValidateRejectsCorruptResults) {
  mhpx::instrument::reset_resilience_counters();
  // The first attempt's result is silently bit-flipped; the validator
  // rejects it and the replay produces the clean value.
  std::atomic<bool> first{true};
  auto fut = mres::async_replay_validate(
      4, [](double v) { return v == 1.5; },
      [&first] {
        double v = 1.5;
        if (first.exchange(false)) {
          mres::corrupt_value(v, 0xff);
        }
        return v;
      });
  EXPECT_DOUBLE_EQ(fut.get(), 1.5);
  EXPECT_EQ(mhpx::instrument::resilience_counters().task_retries, 1u);
}

TEST_F(ResilienceTest, ReplayValidateExhaustionThrows) {
  auto fut = mres::async_replay_validate(
      3, [](int v) { return v > 100; }, [] { return 1; });
  EXPECT_THROW(fut.get(), mres::replay_exhausted);
}

TEST_F(ResilienceTest, ReplayIsDeterministicUnderFixedSeed) {
  // Two identical serial runs with same-seeded injectors must retry (and,
  // at this fault rate, occasionally exhaust) in exactly the same pattern
  // and produce the same result.
  auto run_once = [] {
    mhpx::instrument::reset_resilience_counters();
    mres::FaultInjector inj({0.4, 0.0, fault_seed()});
    double total = 0.0;
    for (int i = 0; i < 50; ++i) {
      try {
        total += mres::async_replay(8, [&inj, i] {
                   if (inj.inject_fault()) {
                     throw mres::injected_fault();
                   }
                   return static_cast<double>(i);
                 }).get();
      } catch (const mres::injected_fault&) {
        // All 8 attempts failed — part of the deterministic pattern too.
      }
    }
    const auto c = mhpx::instrument::resilience_counters();
    return std::tuple(total, c.task_retries, c.replays_exhausted);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_GT(std::get<1>(a), 0u);
}

TEST_F(ResilienceTest, ReplicateVoteOutvotesOneCorruptedReplica) {
  mhpx::instrument::reset_resilience_counters();
  mres::FaultInjector inj({0.0, 0.0, fault_seed(), 0, /*corrupt_every=*/2});
  // Of 3 replicas, the second result (decision stream call 2) is silently
  // bit-flipped; the other two outvote it.
  auto fut = mres::async_replicate_vote(3, [&inj] {
    double v = 2.75;
    if (inj.inject_corruption()) {
      mres::corrupt_value(v, inj.corruption_mask());
    }
    return v;
  });
  EXPECT_DOUBLE_EQ(fut.get(), 2.75);
  EXPECT_EQ(inj.corruptions_injected(), 1u);
  const auto c = mhpx::instrument::resilience_counters();
  EXPECT_EQ(c.replicate_votes, 1u);
  EXPECT_EQ(c.replicate_vote_failures, 0u);
}

TEST_F(ResilienceTest, ReplicateSurvivesCrashedReplicas) {
  std::atomic<int> calls{0};
  auto fut = mres::async_replicate(3, [&calls] {
    if (calls.fetch_add(1) == 0) {
      throw mres::injected_fault();  // exactly one replica crashes
    }
    return 7;
  });
  EXPECT_EQ(fut.get(), 7);
}

TEST_F(ResilienceTest, ReplicateAllCrashedThrows) {
  auto fut = mres::async_replicate(3, []() -> int {
    throw mres::injected_fault();
  });
  EXPECT_THROW(fut.get(), mres::replicate_failed);
}

TEST_F(ResilienceTest, VoteFailureWhenAllReplicasDisagree) {
  mhpx::instrument::reset_resilience_counters();
  std::atomic<int> salt{0};
  auto fut = mres::async_replicate_vote(
      3, [&salt] { return 100 + salt.fetch_add(1); });
  EXPECT_THROW(fut.get(), mres::vote_failed);
  EXPECT_EQ(mhpx::instrument::resilience_counters().replicate_vote_failures,
            1u);
}

TEST_F(ResilienceTest, ZeroAttemptsIsInvalid) {
  EXPECT_THROW(mres::async_replay(0, [] { return 1; }),
               std::invalid_argument);
  EXPECT_THROW(mres::async_replicate(0, [] { return 1; }),
               std::invalid_argument);
}

// ===================================================== fault-injecting fabric

md::DistributedRuntime::Config faulty_config(md::FabricKind kind,
                                             mres::FaultConfig fc) {
  md::DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.stack_size = 64 * 1024;
  cfg.fabric_factory = [kind, fc] {
    return mres::make_faulty_fabric(kind, fc);
  };
  return cfg;
}

class FaultyFabricAllPorts
    : public ::testing::TestWithParam<md::FabricKind> {
  ::testing::ScopedTrace repro_{__FILE__, __LINE__,
                                rveval::testing::seed_env().repro_line()};
};

TEST_P(FaultyFabricAllPorts, DropsAreCountedAndNonFatal) {
  mhpx::instrument::reset_resilience_counters();
  mres::FaultConfig fc;
  fc.drop_rate = 0.3;
  fc.seed = fault_seed();
  md::DistributedRuntime rt(faulty_config(GetParam(), fc));
  auto* faulty = dynamic_cast<mres::FaultyFabric*>(&rt.fabric());
  ASSERT_NE(faulty, nullptr);
  // Fire a burst of echoes; with 30% frame loss some round trips never
  // resolve. The runtime must stay alive and the drops must be counted.
  std::vector<mhpx::future<int>> futs;
  for (int i = 0; i < 40; ++i) {
    futs.push_back(rt.locality(0).call<EchoIntAction>(md::locality_gid(1), i));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  rt.wait_all_idle();
  const auto fs = faulty->fault_stats();
  EXPECT_GT(fs.frames, 0u);
  EXPECT_GT(fs.dropped, 0u);
  EXPECT_EQ(fs.dropped,
            mhpx::instrument::resilience_counters().parcels_dropped);
  std::size_t resolved = 0;
  for (auto& f : futs) {
    if (f.is_ready()) {
      ++resolved;
    }
  }
  // Some messages got through (drop rate is well below 100%).
  EXPECT_GT(resolved, 0u);
  // Disable faults: the fabric works normally again.
  faulty->set_rates(0.0, 0.0, 0.0);
  EXPECT_EQ(rt.locality(0)
                .call<EchoIntAction>(md::locality_gid(1), 123)
                .get(),
            123);
}

TEST_P(FaultyFabricAllPorts, CorruptedFramesAreContained) {
  mhpx::instrument::reset_resilience_counters();
  mres::FaultConfig fc;
  fc.corrupt_rate = 0.5;
  fc.seed = fault_seed();
  md::DistributedRuntime rt(faulty_config(GetParam(), fc));
  auto* faulty = dynamic_cast<mres::FaultyFabric*>(&rt.fabric());
  ASSERT_NE(faulty, nullptr);
  // Corrupted frames either fail decode (dropped at delivery) or mutate a
  // payload. Either way: no crash, and the clean path still works after.
  for (int i = 0; i < 30; ++i) {
    auto f = rt.locality(0).call<EchoIntAction>(md::locality_gid(1), i);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  rt.wait_all_idle();
  EXPECT_GT(faulty->fault_stats().corrupted, 0u);
  EXPECT_GT(mhpx::instrument::resilience_counters().parcels_corrupted, 0u);
  faulty->set_rates(0.0, 0.0, 0.0);
  EXPECT_EQ(rt.locality(0)
                .call<EchoIntAction>(md::locality_gid(1), 55)
                .get(),
            55);
}

TEST_P(FaultyFabricAllPorts, DelaysAddLatencyButPreserveDelivery) {
  mhpx::instrument::reset_resilience_counters();
  mres::FaultConfig fc;
  fc.delay_rate = 1.0;  // delay every frame
  fc.delay_seconds = 0.001;
  fc.seed = fault_seed();
  md::DistributedRuntime rt(faulty_config(GetParam(), fc));
  long sum = 0;
  for (int i = 0; i < 10; ++i) {
    sum += rt.locality(0)
               .call<EchoIntAction>(md::locality_gid(1), i)
               .get();
  }
  EXPECT_EQ(sum, 45);
  const auto c = mhpx::instrument::resilience_counters();
  EXPECT_GE(c.parcels_delayed, 20u);  // request + reply per echo
  EXPECT_GT(c.injected_delay_seconds, 0.0);
}

TEST_P(FaultyFabricAllPorts, DeadLocalityBlackholesBothDirections) {
  mres::FaultConfig fc;
  fc.seed = fault_seed();
  md::DistributedRuntime rt(faulty_config(GetParam(), fc));
  auto* faulty = dynamic_cast<mres::FaultyFabric*>(&rt.fabric());
  ASSERT_NE(faulty, nullptr);
  faulty->kill(1);
  EXPECT_TRUE(faulty->is_dead(1));
  auto fut = rt.locality(0).call<EchoIntAction>(md::locality_gid(1), 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fut.is_ready());  // the request frame vanished
  faulty->revive(1);
  EXPECT_FALSE(faulty->is_dead(1));
  EXPECT_EQ(rt.locality(0)
                .call<EchoIntAction>(md::locality_gid(1), 6)
                .get(),
            6);
}

INSTANTIATE_TEST_SUITE_P(AllParcelports, FaultyFabricAllPorts,
                         ::testing::Values(md::FabricKind::inproc,
                                           md::FabricKind::tcp,
                                           md::FabricKind::mpisim),
                         [](const auto& info) {
                           return std::string(md::to_string(info.param));
                         });

TEST(FaultyFabricDeterminism, SameSeedSameDropPattern) {
  SCOPED_TRACE(rveval::testing::seed_env().repro_line());
  // Drive two same-seeded decorators with an identical frame sequence and
  // compare which frames each dropped — they must match exactly.
  auto drop_pattern = [](std::uint64_t seed) {
    mres::FaultConfig fc;
    fc.drop_rate = 0.25;
    fc.seed = seed;
    auto fabric = mres::make_faulty_fabric(md::FabricKind::inproc, fc);
    auto* faulty = static_cast<mres::FaultyFabric*>(fabric.get());
    std::vector<std::vector<std::byte>> received;
    std::vector<md::Fabric::receive_fn> receivers(2);
    receivers[0] = [](md::locality_id, std::vector<std::byte>) {};
    receivers[1] = [&received](md::locality_id,
                               std::vector<std::byte> frame) {
      received.push_back(std::move(frame));
    };
    fabric->connect(std::move(receivers));
    for (int i = 0; i < 100; ++i) {
      fabric->send(0, 1,
                   std::vector<std::byte>(8, static_cast<std::byte>(i)));
    }
    std::vector<int> delivered;
    for (const auto& frame : received) {
      delivered.push_back(static_cast<int>(frame[0]));
    }
    const auto dropped = faulty->fault_stats().dropped;
    fabric->shutdown();
    return std::pair(delivered, dropped);
  };
  const auto a = drop_pattern(fault_seed());
  const auto b = drop_pattern(fault_seed());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);
  EXPECT_LT(a.second, 100u);
  // A different seed gives a different pattern (overwhelmingly likely).
  const auto c = drop_pattern(fault_seed() + 1);
  EXPECT_NE(a.first, c.first);
}

TEST(FaultyFabricDeterminism, ScheduledKillFiresAtExactFrame) {
  SCOPED_TRACE(rveval::testing::seed_env().repro_line());
  mres::FaultConfig fc;
  fc.seed = fault_seed();
  fc.kill_after_frames = 5;
  fc.kill_target = 1;
  auto fabric = mres::make_faulty_fabric(md::FabricKind::inproc, fc);
  auto* faulty = static_cast<mres::FaultyFabric*>(fabric.get());
  std::atomic<int> arrived{0};
  std::vector<md::Fabric::receive_fn> receivers(2);
  receivers[0] = [](md::locality_id, std::vector<std::byte>) {};
  receivers[1] = [&arrived](md::locality_id, std::vector<std::byte>) {
    arrived.fetch_add(1);
  };
  fabric->connect(std::move(receivers));
  for (int i = 0; i < 10; ++i) {
    fabric->send(0, 1, std::vector<std::byte>(4));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Frames 1-4 delivered; frames 5-10 eaten by the scheduled board death.
  EXPECT_EQ(arrived.load(), 4);
  EXPECT_TRUE(faulty->is_dead(1));
  fabric->shutdown();
}

}  // namespace
