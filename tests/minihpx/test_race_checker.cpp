// Happens-before race checker (mhpx::testing::race).
//
// Each test runs a small task graph under det_run with race checking on and
// asserts the checker's verdict: unsynchronized conflicting accesses are
// reported; accesses ordered through any minihpx sync primitive (mutex,
// latch, channel, future/promise) or the task fork edge are not.

#include <gtest/gtest.h>

#include <string>

#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/channel.hpp"
#include "minihpx/sync/latch.hpp"
#include "minihpx/sync/mutex.hpp"
#include "minihpx/testing/det.hpp"
#include "minikokkos/view.hpp"

namespace {

using mhpx::testing::DetConfig;
using mhpx::testing::det_run;

DetConfig race_cfg() {
  DetConfig cfg;
  cfg.race_check = true;
  return cfg;
}

TEST(RaceChecker, UnorderedWriteWriteIsReported) {
  static int shared;
  const auto r = det_run(race_cfg(), [] {
    mhpx::sync::latch done(2);
    for (int t = 0; t < 2; ++t) {
      mhpx::post([&done, t] {
        mhpx::testing::annotate_write(&shared, "unguarded store");
        shared = t;
        done.count_down();
      });
    }
    done.wait();
  });
  ASSERT_TRUE(r.failed);
  ASSERT_EQ(r.races.size(), 1u);  // deduplicated per address
  EXPECT_EQ(r.races[0].addr, static_cast<const void*>(&shared));
  EXPECT_TRUE(r.races[0].second_write);
  EXPECT_NE(r.races[0].to_string().find("data race"), std::string::npos);
}

TEST(RaceChecker, UnorderedReadAfterWriteIsReported) {
  static int shared;
  const auto r = det_run(race_cfg(), [] {
    mhpx::sync::latch done(2);
    mhpx::post([&done] {
      mhpx::testing::annotate_write(&shared, "producer store");
      shared = 7;
      done.count_down();
    });
    mhpx::post([&done] {
      mhpx::testing::annotate_read(&shared, "consumer load");
      (void)shared;
      done.count_down();
    });
    done.wait();
  });
  ASSERT_TRUE(r.failed);
  ASSERT_EQ(r.races.size(), 1u);
}

TEST(RaceChecker, ForkEdgeOrdersParentWritesBeforeChild) {
  static int shared;
  const auto r = det_run(race_cfg(), [] {
    mhpx::testing::annotate_write(&shared, "parent init");
    shared = 1;
    mhpx::sync::latch done(1);
    mhpx::post([&done] {
      // The child inherits the parent's clock at post(): ordered.
      mhpx::testing::annotate_read(&shared, "child load");
      (void)shared;
      done.count_down();
    });
    done.wait();
  });
  EXPECT_FALSE(r.failed) << (r.races.empty() ? "" : r.races[0].to_string());
}

TEST(RaceChecker, MutexOrdersCriticalSections) {
  static int shared;
  static mhpx::sync::mutex guard;
  const auto r = det_run(race_cfg(), [] {
    shared = 0;
    mhpx::sync::latch done(2);
    for (int t = 0; t < 2; ++t) {
      mhpx::post([&done] {
        guard.lock();
        mhpx::testing::annotate_write(&shared, "guarded store");
        shared += 1;
        guard.unlock();
        done.count_down();
      });
    }
    done.wait();
  });
  EXPECT_FALSE(r.failed) << (r.races.empty() ? "" : r.races[0].to_string());
}

TEST(RaceChecker, LatchOrdersWriterBeforeWaiter) {
  static int shared;
  const auto r = det_run(race_cfg(), [] {
    mhpx::sync::latch ready(1);
    mhpx::post([&ready] {
      mhpx::testing::annotate_write(&shared, "writer store");
      shared = 42;
      ready.count_down();
    });
    ready.wait();
    mhpx::testing::annotate_read(&shared, "waiter load");
    mhpx::testing::check(shared == 42, "latch-published value lost");
  });
  EXPECT_FALSE(r.failed) << (r.races.empty() ? "" : r.races[0].to_string());
}

TEST(RaceChecker, ChannelOrdersSenderBeforeReceiver) {
  static int shared;
  const auto r = det_run(race_cfg(), [] {
    mhpx::sync::channel<int> ch(1);
    mhpx::sync::latch done(1);
    mhpx::post([&ch, &done] {
      mhpx::testing::annotate_write(&shared, "sender store");
      shared = 9;
      ch.send(1);
      done.count_down();
    });
    (void)ch.receive();
    mhpx::testing::annotate_read(&shared, "receiver load");
    mhpx::testing::check(shared == 9, "channel-published value lost");
    done.wait();
  });
  EXPECT_FALSE(r.failed) << (r.races.empty() ? "" : r.races[0].to_string());
}

TEST(RaceChecker, FutureOrdersProducerBeforeConsumer) {
  static int shared;
  const auto r = det_run(race_cfg(), [] {
    auto fut = mhpx::async([] {
      mhpx::testing::annotate_write(&shared, "async producer store");
      shared = 11;
      return 11;
    });
    const int got = fut.get();
    mhpx::testing::annotate_read(&shared, "consumer load");
    mhpx::testing::check(shared == got, "future-published value lost");
  });
  EXPECT_FALSE(r.failed) << (r.races.empty() ? "" : r.races[0].to_string());
}

TEST(RaceChecker, ViewAnnotationCatchesOverlappingKernelWrites) {
#if defined(NDEBUG)
  GTEST_SKIP() << "mkk::View access annotations are compiled out with "
                  "NDEBUG; covered by the asan-ubsan (Debug) preset";
#else
  DetConfig cfg = race_cfg();
  cfg.annotate_views = true;
  const auto r = det_run(cfg, [] {
    mkk::View<double, 1> field("field", 8);
    mhpx::sync::latch done(2);
    for (int t = 0; t < 2; ++t) {
      mhpx::post([&field, &done] {
        field(3) = 1.0;  // same element from two unordered tasks
        done.count_down();
      });
    }
    done.wait();
  });
  ASSERT_TRUE(r.failed);
  ASSERT_FALSE(r.races.empty());
  EXPECT_NE(r.races[0].to_string().find("mkk::View"), std::string::npos);
#endif
}

TEST(RaceChecker, ViewAnnotationAcceptsDisjointKernelWrites) {
  DetConfig cfg = race_cfg();
  cfg.annotate_views = true;
  const auto r = det_run(cfg, [] {
    mkk::View<double, 1> field("field", 8);
    mhpx::sync::latch done(2);
    for (int t = 0; t < 2; ++t) {
      mhpx::post([&field, &done, t] {
        field(static_cast<std::size_t>(t)) = 1.0;  // disjoint elements
        done.count_down();
      });
    }
    done.wait();
  });
  EXPECT_FALSE(r.failed) << (r.races.empty() ? "" : r.races[0].to_string());
}

}  // namespace
