// Deterministic simulation runs (mhpx::testing::det_run).
//
// The contract under test: a det run is a pure function of its seed and
// preemption plan — same inputs, bit-identical task order, virtual-clock
// readings and failure reports — and timers advance a virtual clock, so
// sleep-heavy bodies finish in microseconds of wall time.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"
#include "minihpx/sync/timer_service.hpp"
#include "minihpx/testing/det.hpp"

namespace {

using mhpx::testing::DetConfig;
using mhpx::testing::det_run;

std::vector<int> run_order(std::uint64_t seed) {
  std::vector<int> order;
  DetConfig cfg;
  cfg.seed = seed;
  const auto r = det_run(cfg, [&order] {
    for (int i = 0; i < 8; ++i) {
      mhpx::post([&order, i] { order.push_back(i); });
    }
  });
  EXPECT_FALSE(r.failed);
  return order;
}

TEST(DetScheduler, SameSeedReproducesTaskOrderBitIdentically) {
  const auto a = run_order(1);
  const auto b = run_order(1);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 8u);
}

TEST(DetScheduler, DifferentSeedsExploreDifferentOrders) {
  // With 8 ready tasks there are 8! orders; seeds 1..8 finding only one of
  // them would mean the picker ignores its seed.
  const auto base = run_order(1);
  bool any_different = false;
  for (std::uint64_t seed = 2; seed <= 8 && !any_different; ++seed) {
    any_different = run_order(seed) != base;
  }
  EXPECT_TRUE(any_different);
}

TEST(DetScheduler, RoundRobinOffsetRotatesFirstTask) {
  std::vector<std::vector<int>> orders;
  for (std::uint32_t off = 0; off < 3; ++off) {
    std::vector<int> order;
    DetConfig cfg;
    cfg.pick_mode = DetConfig::PickMode::round_robin;
    cfg.rr_offset = off;
    det_run(cfg, [&order] {
      for (int i = 0; i < 3; ++i) {
        mhpx::post([&order, i] { order.push_back(i); });
      }
    });
    orders.push_back(order);
  }
  EXPECT_NE(orders[0].front(), orders[1].front());
}

TEST(DetScheduler, VirtualTimeOrdersSleepsByDeadlineInstantly) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<int> wakeups;
  DetConfig cfg;
  const auto r = det_run(cfg, [&wakeups] {
    // Posted in the "wrong" order on purpose: only deadlines may decide.
    mhpx::post([&wakeups] {
      mhpx::sync::sleep_for(std::chrono::seconds(5));
      wakeups.push_back(5);
    });
    mhpx::post([&wakeups] {
      mhpx::sync::sleep_for(std::chrono::seconds(2));
      wakeups.push_back(2);
    });
    mhpx::post([&wakeups] {
      mhpx::sync::sleep_for(std::chrono::seconds(8));
      wakeups.push_back(8);
    });
  });
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(wakeups, (std::vector<int>{2, 5, 8}));
  // 15 virtual seconds of sleeping, well under 2 wall seconds to run.
  EXPECT_LT(wall_elapsed, std::chrono::seconds(2));
  EXPECT_GT(r.virtual_ns, 7'000'000'000ull);
}

TEST(DetScheduler, VirtualNowAdvancesAcrossSleeps) {
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  DetConfig cfg;
  det_run(cfg, [&before, &after] {
    mhpx::post([&before, &after] {
      before = mhpx::testing::virtual_now_ns();
      mhpx::sync::sleep_for(std::chrono::milliseconds(250));
      after = mhpx::testing::virtual_now_ns();
    });
  });
  EXPECT_GE(after - before, 200'000'000ull);
}

TEST(DetScheduler, CheckCollectsFailuresAndReplayEnvNamesTheSeed) {
  DetConfig cfg;
  cfg.seed = 42;
  const auto r = det_run(cfg, [] {
    mhpx::testing::check(1 + 1 == 2, "arithmetic still works");
    mhpx::testing::check(false, "expected failure marker");
  });
  EXPECT_TRUE(r.failed);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("expected failure marker"), std::string::npos);
  EXPECT_NE(r.replay_env().find("RVEVAL_SCHED_SEED=42"), std::string::npos);
}

TEST(DetScheduler, EscapedExceptionBecomesFailureNotTermination) {
  DetConfig cfg;
  const auto r = det_run(
      cfg, [] { throw std::runtime_error("kaboom from the root task"); });
  EXPECT_TRUE(r.failed);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("kaboom"), std::string::npos);
}

TEST(DetScheduler, ExplicitPreemptionPlanFiresAtExactVisits) {
  DetConfig cfg;
  cfg.preempts = {1, 3};
  const auto r = det_run(cfg, [] {
    mhpx::post([] {
      for (int i = 0; i < 6; ++i) {
        mhpx::testing::preemption_point(7);
      }
    });
  });
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.points_visited, 6u);
  ASSERT_EQ(r.preempts_taken.size(), 2u);
  EXPECT_EQ(r.preempts_taken[0].visit, 1u);
  EXPECT_EQ(r.preempts_taken[1].visit, 3u);
  EXPECT_EQ(r.preempts_taken[0].tag, 7u);
  EXPECT_NE(r.replay_env().find("RVEVAL_SCHED_PREEMPTS=1,3"),
            std::string::npos);
}

TEST(DetScheduler, DetActiveOnlyInsideARun) {
  EXPECT_FALSE(mhpx::testing::det_active());
  bool inside = false;
  det_run(DetConfig{}, [&inside] { inside = mhpx::testing::det_active(); });
  EXPECT_TRUE(inside);
  EXPECT_FALSE(mhpx::testing::det_active());
}

TEST(DetScheduler, FiberSyncPrimitivesWorkUnderDetMode) {
  // Latch fan-in across det-scheduled tasks: the single-worker det loop
  // must still interleave suspended waiters correctly.
  int joined = 0;
  const auto r = det_run(DetConfig{}, [&joined] {
    mhpx::sync::latch done(4);
    for (int i = 0; i < 4; ++i) {
      mhpx::post([&done] { done.count_down(); });
    }
    done.wait();
    joined = 1;
  });
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(joined, 1);
}

TEST(ScopedDetScheduling, GuardMakesEveryNewSchedulerDeterministic) {
  {
    mhpx::testing::ScopedDetScheduling guard(123);
    mhpx::threads::Scheduler sched;
    EXPECT_TRUE(sched.deterministic());
    EXPECT_EQ(sched.num_workers(), 1u);
  }
  mhpx::threads::Scheduler normal{{2, 128 * 1024, false, 0}};
  EXPECT_FALSE(normal.deterministic());
  EXPECT_EQ(normal.num_workers(), 2u);
}

TEST(ScopedDetScheduling, GuardedSchedulersReplayIdentically) {
  // Replay identity holds for posts made on the det worker itself (a root
  // task fanning out), matching how det_run drives its body. Posts racing
  // in from an external thread are interleave-dependent by construction:
  // the pick strategy sees whatever fraction of them has arrived.
  const auto run = [] {
    mhpx::testing::ScopedDetScheduling guard(77);
    mhpx::threads::Scheduler sched;
    std::vector<int> order;
    sched.post([&sched, &order] {
      for (int i = 0; i < 6; ++i) {
        sched.post([&order, i] { order.push_back(i); });
      }
    });
    sched.wait_idle();
    return order;
  };
  const auto first = run();
  EXPECT_EQ(first.size(), 6u);
  EXPECT_EQ(first, run());
}

}  // namespace
