// instrument::set_hooks under fire: hook tables are swapped while tasks run
// and every callback must observe a table in full — never a torn mix — with
// spawn/finish totals accounting for every task exactly once.
//
// Ported onto the deterministic harness: the swapper is itself a task and
// the explorer interleaves it against the storm at every preemption point,
// so the publication contract is checked across many adversarial schedules
// with a few hundred tasks instead of a 20000-task wall-clock storm. A
// reduced wall-clock smoke keeps the genuinely concurrent (cross-thread)
// swap covered.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "minihpx/instrument.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"
#include "minihpx/testing/explorer.hpp"

namespace {

struct HookCtx {
  std::uint64_t magic = 0;
  std::atomic<std::uint64_t> spawns{0};
  std::atomic<std::uint64_t> finishes{0};
  std::atomic<std::uint64_t> begins{0};
  std::atomic<std::uint64_t> ends{0};

  void reset(std::uint64_t m) {
    magic = m;
    spawns = 0;
    finishes = 0;
    begins = 0;
    ends = 0;
  }
};

constexpr std::uint64_t kMagicA = 0xA11CE5ED00000001ull;
constexpr std::uint64_t kMagicB = 0xB0BCA7C800000002ull;

HookCtx g_ctx_a;
HookCtx g_ctx_b;
std::atomic<std::uint64_t> g_torn{0};

HookCtx* checked(void* ctx) {
  auto* c = static_cast<HookCtx*>(ctx);
  if (c == nullptr || (c->magic != kMagicA && c->magic != kMagicB)) {
    g_torn.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return c;
}

void on_spawn(void* ctx) {
  if (auto* c = checked(ctx)) {
    c->spawns.fetch_add(1, std::memory_order_relaxed);
  }
}

void on_finish(void* ctx, const mhpx::instrument::TaskWork&) {
  if (auto* c = checked(ctx)) {
    c->finishes.fetch_add(1, std::memory_order_relaxed);
  }
}

void on_begin(void* ctx, std::uint64_t guid, std::uint64_t) {
  if (auto* c = checked(ctx)) {
    c->begins.fetch_add(1, std::memory_order_relaxed);
    if (guid == 0) {
      g_torn.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void on_end(void* ctx, std::uint64_t, const mhpx::instrument::TaskWork&,
            bool) {
  if (auto* c = checked(ctx)) {
    c->ends.fetch_add(1, std::memory_order_relaxed);
  }
}

mhpx::instrument::Hooks make_hooks(HookCtx& ctx) {
  mhpx::instrument::Hooks hooks;
  hooks.on_task_spawn = on_spawn;
  hooks.on_task_finish = on_finish;
  hooks.on_task_begin = on_begin;
  hooks.on_task_end = on_end;
  hooks.ctx = &ctx;
  return hooks;
}

}  // namespace

TEST(InstrumentStorm, ExploredHookSwapsAreNeverTorn) {
  using mhpx::testing::ExploreConfig;
  const auto result = mhpx::testing::explore(
      [] {
        ExploreConfig cfg;
        cfg.schedules = 16;
        cfg.race_check = false;  // the hook table is atomics by contract
        return cfg;
      }(),
      [] {
        g_ctx_a.reset(kMagicA);
        g_ctx_b.reset(kMagicB);
        g_torn = 0;

        constexpr int kTasks = 48;
        constexpr int kSwaps = 12;
        mhpx::instrument::set_hooks(make_hooks(g_ctx_a));

        mhpx::sync::latch done(kTasks + 1);  // storm + swapper
        mhpx::post([&done] {
          // The swapper runs *as a task*, so the explorer can slice storm
          // execution between any two installs.
          for (int i = 0; i < kSwaps; ++i) {
            mhpx::testing::preemption_point(0x60);
            mhpx::instrument::set_hooks(
                make_hooks(i % 2 == 0 ? g_ctx_b : g_ctx_a));
          }
          done.count_down();
        });
        for (int i = 0; i < kTasks; ++i) {
          mhpx::post([&done] {
            volatile int x = 0;
            for (int k = 0; k < 20; ++k) {
              x = x + 1;
            }
            done.count_down();
          });
          if (i % 8 == 0) {
            mhpx::testing::preemption_point(0x61);
          }
        }
        done.wait();
        mhpx::instrument::set_hooks({});

        mhpx::testing::check(g_torn.load() == 0,
                             "a callback observed a torn hook table");
        // Every spawn after the install lands in exactly one table:
        // kTasks storm tasks + the swapper.
        const auto spawns = g_ctx_a.spawns.load() + g_ctx_b.spawns.load();
        const auto finishes =
            g_ctx_a.finishes.load() + g_ctx_b.finishes.load();
        constexpr std::uint64_t kExpected = kTasks + 1;
        mhpx::testing::check(spawns == kExpected,
                             "spawns double- or un-counted: " +
                                 std::to_string(spawns));
        mhpx::testing::check(finishes == kExpected,
                             "finishes double- or un-counted: " +
                                 std::to_string(finishes));
        // Preemptions split tasks into extra slices, but every begin still
        // pairs with exactly one end.
        const auto begins = g_ctx_a.begins.load() + g_ctx_b.begins.load();
        const auto ends = g_ctx_a.ends.load() + g_ctx_b.ends.load();
        mhpx::testing::check(begins == ends, "unbalanced begin/end slices");
        mhpx::testing::check(begins >= kExpected, "missing task slices");
      });
  EXPECT_FALSE(result.failed) << result.replay_recipe;
}

TEST(InstrumentStorm, WallClockSmokeHookSwapsAreNeverTorn) {
  g_ctx_a.reset(kMagicA);
  g_ctx_b.reset(kMagicB);
  g_torn = 0;

  mhpx::Runtime rt({4});
  const auto before = rt.scheduler().counters();

  // Install table A before any storm task exists, so every callback lands
  // in exactly one of the two tables.
  mhpx::instrument::set_hooks(make_hooks(g_ctx_a));

  constexpr int kTasks = 2000;
  constexpr int kSwaps = 400;
  mhpx::sync::latch done(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    mhpx::post([&done] {
      volatile int x = 0;
      for (int k = 0; k < 50; ++k) {
        x = x + 1;
      }
      done.count_down();
    });
    if (i % (kTasks / kSwaps) == 0) {
      mhpx::instrument::set_hooks(make_hooks((i / (kTasks / kSwaps)) % 2 == 0
                                                 ? g_ctx_b
                                                 : g_ctx_a));
    }
  }
  done.wait();
  rt.scheduler().wait_idle();

  // Keep swapping after quiescence too — installs must stay safe when no
  // tasks run, and the retired-table guarantee means these cheap swaps
  // cannot invalidate a pointer a late callback already loaded.
  for (int i = 0; i < 100; ++i) {
    mhpx::instrument::set_hooks(make_hooks(i % 2 == 0 ? g_ctx_a : g_ctx_b));
  }
  mhpx::instrument::set_hooks({});

  EXPECT_EQ(g_torn.load(), 0u) << "a callback observed a torn hook table";

  const auto spawns = g_ctx_a.spawns.load() + g_ctx_b.spawns.load();
  const auto finishes = g_ctx_a.finishes.load() + g_ctx_b.finishes.load();
  const auto begins = g_ctx_a.begins.load() + g_ctx_b.begins.load();
  const auto ends = g_ctx_a.ends.load() + g_ctx_b.ends.load();
  EXPECT_EQ(spawns, std::uint64_t{kTasks});
  EXPECT_EQ(finishes, std::uint64_t{kTasks});
  // These tasks never suspend: one slice each.
  EXPECT_EQ(begins, std::uint64_t{kTasks});
  EXPECT_EQ(ends, begins);
  // Both tables were actually exercised, not just one.
  EXPECT_GT(g_ctx_a.spawns.load(), 0u);
  EXPECT_GT(g_ctx_b.spawns.load(), 0u);

  const auto after = rt.scheduler().counters();
  EXPECT_EQ(after.tasks_executed - before.tasks_executed,
            std::uint64_t{kTasks});
}
