// Counter federation (mhpx::apex::remote): locality 0 discovers, reads and
// resets any other locality's counters over the parcel fabric — the
// `--hpx:print-counter /threads{locality#1/total}/...` workflow — and the
// FederatedSampler turns the pull protocol into per-locality timeseries.
// Acceptance for the distributed-observability PR: remote /parcels/* and
// /power/* counters must be reachable from locality 0 on every fabric.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/power/attribution.hpp"
#include "core/power/energy.hpp"
#include "minihpx/apex/remote.hpp"
#include "minihpx/distributed/runtime.hpp"

namespace {

using namespace mhpx::dist;
namespace apex = mhpx::apex;
namespace remote = mhpx::apex::remote;

class ApexRemoteTest : public ::testing::TestWithParam<FabricKind> {
 protected:
  DistributedRuntime::Config config(unsigned localities = 2) const {
    DistributedRuntime::Config cfg;
    cfg.num_localities = localities;
    cfg.threads_per_locality = 2;
    cfg.stack_size = 64 * 1024;
    cfg.fabric = GetParam();
    return cfg;
  }
};

TEST_P(ApexRemoteTest, DiscoverSeesTheRemoteSchedulerCounters) {
  DistributedRuntime rt(config());
  const auto found = remote::discover(rt.locality(0), 1, "/threads/**");
  ASSERT_FALSE(found.empty());
  EXPECT_TRUE(std::is_sorted(
      found.begin(), found.end(),
      [](const apex::CounterInfo& a, const apex::CounterInfo& b) {
        return a.name < b.name;
      }));
  const bool has_executed =
      std::any_of(found.begin(), found.end(), [](const apex::CounterInfo& i) {
        return i.name == "/threads/default/count/executed";
      });
  EXPECT_TRUE(has_executed)
      << "locality 1's scheduler counters not visible from locality 0";
}

TEST_P(ApexRemoteTest, ReadsRemoteParcelCountersFromLocalityZero) {
  DistributedRuntime rt(config());
  // Generate some traffic so the counters move, then read locality 1's
  // parcelport counters from locality 0 (acceptance criterion).
  const auto before =
      remote::read_matching(rt.locality(0), 1, "/parcels/**");
  ASSERT_FALSE(before.empty())
      << "runtime did not register /parcels counters per locality";
  rt.wait_all_idle();
  const auto sent = remote::read_matching(rt.locality(0), 1,
                                          "/parcels/*/count/sent");
  ASSERT_FALSE(sent.empty());
  // Locality 1 sent at least the replies to our own read_matching requests.
  EXPECT_GE(sent[0].second, 1.0);
}

TEST_P(ApexRemoteTest, ReadsRemotePowerCountersFromLocalityZero) {
  DistributedRuntime rt(config());
  const auto board = rveval::power::visionfive2_board();
  for (unsigned i = 0; i < rt.num_localities(); ++i) {
    auto& loc = rt.locality(i);
    rveval::power::register_power_counters(loc.counters_block(),
                                           loc.scheduler(), board, i);
  }
  const auto found = remote::discover(rt.locality(0), 1, "/power/**");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].name, "/power/1/avg-watts");
  EXPECT_EQ(found[1].name, "/power/1/energy-j");

  const auto watts = remote::read(rt.locality(0), 1, "/power/1/avg-watts");
  ASSERT_TRUE(watts.has_value());
  // The board never draws less than its idle floor.
  EXPECT_GE(*watts, board.idle_watts * 0.99);

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto joules = remote::read(rt.locality(0), 1, "/power/1/energy-j");
  ASSERT_TRUE(joules.has_value());
  EXPECT_GT(*joules, 0.0) << "energy must accumulate with wall time";
}

TEST_P(ApexRemoteTest, MissingCounterReadsAsNullopt) {
  DistributedRuntime rt(config());
  EXPECT_FALSE(remote::read(rt.locality(0), 1, "/no/such/counter").has_value());
  EXPECT_TRUE(remote::discover(rt.locality(0), 1, "/no/such/**").empty());
}

TEST_P(ApexRemoteTest, SelfReadShortCircuitsLocally) {
  DistributedRuntime rt(config());
  const auto own =
      remote::read(rt.locality(0), 0, "/threads/default/count/executed");
  ASSERT_TRUE(own.has_value());
  EXPECT_GE(*own, 0.0);
}

TEST_P(ApexRemoteTest, ResetRebaselinesRemoteMonotonicCounters) {
  DistributedRuntime rt(config());
  // Warm-up round-trips so locality 1 has completed tasks on the books
  // before the baseline read (the counter is sampled from inside the read
  // action, which doesn't count itself yet).
  (void)remote::read(rt.locality(0), 1, "/threads/default/count/executed");
  rt.wait_all_idle();
  const auto busy_before =
      remote::read(rt.locality(0), 1, "/threads/default/count/executed");
  ASSERT_TRUE(busy_before.has_value());
  ASSERT_GE(*busy_before, 1.0);

  const std::size_t n =
      remote::reset(rt.locality(0), 1, "/threads/default/count/*");
  EXPECT_GE(n, 1u);
  const auto busy_after =
      remote::read(rt.locality(0), 1, "/threads/default/count/executed");
  ASSERT_TRUE(busy_after.has_value());
  EXPECT_LE(*busy_after, *busy_before)
      << "reset must re-baseline the monotonic counter";
}

TEST_P(ApexRemoteTest, FederatedSamplerCollectsPerLocalitySeries) {
  DistributedRuntime rt(config());
  // One hand-rolled counter per locality with a distinguishable value, so
  // the per-locality series provenance is checkable.
  for (unsigned i = 0; i < rt.num_localities(); ++i) {
    const double value = 1.0 + i;
    ASSERT_TRUE(rt.locality(i).counters().add("/fed/probe",
                                              "per-locality probe",
                                              apex::CounterKind::gauge,
                                              [value] { return value; }));
  }

  remote::FederatedSampler sampler(rt);
  remote::FederatedSamplerConfig cfg;
  cfg.interval_seconds = 0.001;
  cfg.patterns = {"/fed/**"};
  sampler.start(cfg);
  for (int i = 0; i < 2000 && sampler.samples() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.samples(), 3u);
  sampler.stop();  // idempotent

  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "/loc0/fed/probe");
  EXPECT_EQ(series[1].name, "/loc1/fed/probe");
  for (unsigned i = 0; i < 2; ++i) {
    ASSERT_FALSE(series[i].v.empty());
    for (const double v : series[i].v) {
      EXPECT_DOUBLE_EQ(v, 1.0 + i) << "series " << series[i].name
                                   << " mixed up its locality";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFabrics, ApexRemoteTest,
                         ::testing::Values(FabricKind::inproc, FabricKind::tcp,
                                           FabricKind::mpisim),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
