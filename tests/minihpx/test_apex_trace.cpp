// mhpx::apex::trace: the task timeline. Disabled tracing records nothing;
// enabled tracing produces balanced B/E pairs whose GUID/parent links form
// the spawn DAG (region -> task -> child task), kernel annotations flow
// into task end events, the Chrome export parses as JSON, and the critical
// path derived from the events is bounded by the traced wall time.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "core/report/json.hpp"
#include "minihpx/apex/critical_path.hpp"
#include "minihpx/apex/task_trace.hpp"
#include "minihpx/instrument.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"

namespace apex = mhpx::apex;
namespace trace = mhpx::apex::trace;

namespace {

/// Every trace test owns the global buffer: start clean, leave clean.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::enable(false);
    trace::clear();
  }
  void TearDown() override {
    trace::enable(false);
    trace::clear();
  }
};

std::map<std::uint64_t, std::pair<int, int>> be_counts(
    const std::vector<trace::Event>& events) {
  std::map<std::uint64_t, std::pair<int, int>> counts;
  for (const auto& ev : events) {
    if (ev.ph == trace::EventPhase::begin) {
      ++counts[ev.guid].first;
    } else if (ev.ph == trace::EventPhase::end) {
      ++counts[ev.guid].second;
    }
  }
  return counts;
}

}  // namespace

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  EXPECT_EQ(trace::region_begin("test", "ignored"), 0u);
  trace::instant("test", "ignored");
  trace::counter_sample("/x", 1.0);
  {
    trace::ScopedRegion region("test", "ignored");
    EXPECT_EQ(region.guid(), 0u);
  }
  mhpx::Runtime rt({2});
  mhpx::sync::latch done(10);
  for (int i = 0; i < 10; ++i) {
    mhpx::post([&done] { done.count_down(); });
  }
  done.wait();
  rt.scheduler().wait_idle();
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST_F(TraceTest, RegionTaskChildParentChain) {
  mhpx::Runtime rt({2});
  trace::enable(true);

  std::uint64_t region_guid = 0;
  {
    trace::ScopedRegion region("phase", "outer");
    region_guid = region.guid();
    ASSERT_NE(region_guid, 0u);

    // Task A spawned under the open region, child B spawned from inside A.
    mhpx::sync::latch done(2);
    mhpx::post([&done] {
      mhpx::post([&done] { done.count_down(); });
      done.count_down();
    });
    done.wait();
    rt.scheduler().wait_idle();
  }
  trace::enable(false);

  const auto events = trace::snapshot();
  // Region B/E plus two tasks (one slice each): at least 6 events.
  ASSERT_GE(events.size(), 6u);
  for (const auto& [guid, counts] : be_counts(events)) {
    EXPECT_EQ(counts.first, counts.second) << "guid " << guid;
  }

  // Reconstruct the chain from the begin events.
  std::uint64_t task_a = 0, task_b = 0;
  std::uint64_t parent_a = 0, parent_b = 0;
  for (const auto& ev : events) {
    if (ev.ph != trace::EventPhase::begin ||
        std::string_view(ev.category) != "task") {
      continue;
    }
    if (ev.parent == region_guid) {
      task_a = ev.guid;
      parent_a = ev.parent;
    } else {
      task_b = ev.guid;
      parent_b = ev.parent;
    }
  }
  ASSERT_NE(task_a, 0u) << "no task recorded the region as its parent";
  ASSERT_NE(task_b, 0u);
  EXPECT_EQ(parent_a, region_guid);
  EXPECT_EQ(parent_b, task_a) << "child task must record its spawner";
  EXPECT_NE(task_a, task_b);
  EXPECT_NE(task_a, region_guid);
}

TEST_F(TraceTest, AnnotationsFlowIntoTaskEnd) {
  mhpx::Runtime rt({1});
  trace::enable(true);
  mhpx::sync::latch done(1);
  mhpx::post([&done] {
    mhpx::instrument::annotate(123.0, 456.0);
    mhpx::instrument::annotate(1.0, 4.0);
    done.count_down();
  });
  done.wait();
  rt.scheduler().wait_idle();
  trace::enable(false);

  bool found = false;
  for (const auto& ev : trace::snapshot()) {
    if (ev.ph == trace::EventPhase::end &&
        std::string_view(ev.category) == "task" && ev.arg0 == 124.0) {
      EXPECT_DOUBLE_EQ(ev.arg1, 460.0);
      EXPECT_DOUBLE_EQ(ev.arg2, 1.0);  // finished, not suspended
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no task end event carried the annotated work";
}

TEST_F(TraceTest, ChromeJsonParsesWithMatchingEventCount) {
  mhpx::Runtime rt({2});
  trace::enable(true);
  trace::instant("test", "a \"quoted\"\nname", 1.5, 2.0, 3.0);
  trace::counter_sample("/test/counter", 42.0);
  mhpx::sync::latch done(5);
  for (int i = 0; i < 5; ++i) {
    mhpx::post([&done] { done.count_down(); });
  }
  done.wait();
  rt.scheduler().wait_idle();
  trace::enable(false);

  const auto events = trace::snapshot();
  ASSERT_FALSE(events.empty());
  const auto doc = rveval::report::json::parse(trace::chrome_json());
  const auto* te = doc.find("traceEvents");
  ASSERT_NE(te, nullptr);
  ASSERT_TRUE(te->is_array());
  // The export prepends one process_name metadata record per distinct pid.
  std::set<std::uint32_t> pids;
  for (const auto& ev : events) {
    pids.insert(ev.pid);
  }
  EXPECT_EQ(te->size(), events.size() + pids.size());
  const auto& meta = te->at(0);
  ASSERT_NE(meta.find("ph"), nullptr);
  EXPECT_EQ(meta.find("ph")->as_string(), "M");

  // Spot-check the first real entry's shape.
  const auto& first = te->at(pids.size());
  ASSERT_NE(first.find("name"), nullptr);
  ASSERT_NE(first.find("ph"), nullptr);
  ASSERT_NE(first.find("ts"), nullptr);
  ASSERT_NE(first.find("args"), nullptr);
  EXPECT_NO_THROW(first.find("name")->as_string());
  EXPECT_NO_THROW(first.find("ts")->as_number());
  EXPECT_TRUE(first.find("args")->is_object());
}

TEST_F(TraceTest, EscapingRoundTripsThroughJsonOracle) {
  trace::enable(true);
  // Control chars, the JSON-special set, and multi-byte UTF-8 (u-umlaut,
  // CJK, a 4-byte emoji) must all survive export -> parse unchanged.
  const std::string nasty =
      "ctrl:\x01\x02\x1f del:\x7f tab:\t nl:\n cr:\r quote:\" back:\\ "
      "slash:/ utf8:\xc3\xbc\xe4\xb8\xad\xf0\x9f\x9a\x80 end";
  trace::instant("test", trace::intern(nasty), 1.0, 2.0, 3.0);
  trace::instant(trace::intern("c\x01t"), trace::intern("plain"));
  trace::enable(false);

  const std::string json = trace::chrome_json();
  const auto doc = rveval::report::json::parse(json);  // oracle: must parse
  const auto* te = doc.find("traceEvents");
  ASSERT_NE(te, nullptr);
  bool found_name = false;
  bool found_cat = false;
  for (std::size_t i = 0; i < te->size(); ++i) {
    const auto* n = te->at(i).find("name");
    const auto* c = te->at(i).find("cat");
    if (n != nullptr && n->as_string() == nasty) {
      found_name = true;
    }
    if (c != nullptr && c->as_string() == "c\x01t") {
      found_cat = true;
    }
  }
  EXPECT_TRUE(found_name) << "escaped name did not round-trip";
  EXPECT_TRUE(found_cat) << "escaped category did not round-trip";
}

TEST_F(TraceTest, FlowEventsExportPairedAcrossPids) {
  trace::enable(true);
  {
    // A handler-side slice so the 'f' has a span to bind to.
    trace::ScopedRegion handler("task", "handler");
    trace::flow_send(0, 1, 77, 64.0);
    trace::flow_recv(0, 1, 77, /*remote_parent=*/0);
  }
  trace::enable(false);

  const auto events = trace::snapshot();
  const trace::Event* s = nullptr;
  const trace::Event* f = nullptr;
  for (const auto& ev : events) {
    if (ev.ph == trace::EventPhase::flow_start) {
      s = &ev;
    } else if (ev.ph == trace::EventPhase::flow_end) {
      f = &ev;
    }
  }
  ASSERT_NE(s, nullptr);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(s->guid, 77u);  // guid doubles as the Chrome flow id
  EXPECT_EQ(f->guid, 77u);
  EXPECT_EQ(s->pid, 0u);  // 's' lands on the sender's track...
  EXPECT_EQ(f->pid, 1u);  // ...'f' on the receiver's
  EXPECT_DOUBLE_EQ(s->arg2, 64.0);

  // Chrome export: both carry "id", the 'f' binds to the enclosing slice,
  // and both localities got a process_name metadata record.
  const auto doc = rveval::report::json::parse(trace::chrome_json());
  const auto* te = doc.find("traceEvents");
  ASSERT_NE(te, nullptr);
  int meta = 0;
  bool saw_s = false;
  bool saw_f = false;
  for (std::size_t i = 0; i < te->size(); ++i) {
    const auto& ev = te->at(i);
    const std::string ph = ev.find("ph")->as_string();
    if (ph == "M") {
      ++meta;
    } else if (ph == "s") {
      saw_s = true;
      ASSERT_NE(ev.find("id"), nullptr);
      EXPECT_EQ(ev.find("id")->as_number(), 77.0);
    } else if (ph == "f") {
      saw_f = true;
      ASSERT_NE(ev.find("id"), nullptr);
      ASSERT_NE(ev.find("bp"), nullptr);
      EXPECT_EQ(ev.find("bp")->as_string(), "e");
    }
  }
  EXPECT_EQ(meta, 2) << "one process_name record per locality pid";
  EXPECT_TRUE(saw_s);
  EXPECT_TRUE(saw_f);
}

TEST_F(TraceTest, EventsStampTheWorkerLocalityAsPid) {
  trace::enable(true);
  mhpx::instrument::set_thread_locality(3);
  trace::instant("test", "on-loc3");
  mhpx::instrument::set_thread_locality(0);
  trace::instant("test", "on-loc0");
  trace::enable(false);

  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].pid, 3u);
  EXPECT_EQ(events[1].pid, 0u);
}

TEST_F(TraceTest, SnapshotIsTimeSorted) {
  mhpx::Runtime rt({4});
  trace::enable(true);
  mhpx::sync::latch done(200);
  for (int i = 0; i < 200; ++i) {
    mhpx::post([&done] { done.count_down(); });
  }
  done.wait();
  rt.scheduler().wait_idle();
  trace::enable(false);

  const auto events = trace::snapshot();
  ASSERT_GE(events.size(), 400u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts);
  }
}

TEST_F(TraceTest, EventLimitDropsInsteadOfGrowing) {
  trace::set_event_limit(8);
  trace::enable(true);
  for (int i = 0; i < 100; ++i) {
    trace::instant("test", "spam");
  }
  trace::enable(false);
  EXPECT_EQ(trace::event_count(), 8u);
  EXPECT_EQ(trace::dropped_count(), 92u);
  EXPECT_EQ(trace::snapshot().size(), 8u);
  trace::set_event_limit(std::size_t{4} << 20);  // restore the default
}

TEST_F(TraceTest, CriticalPathBoundedByWall) {
  mhpx::Runtime rt({2});
  trace::enable(true);
  {
    trace::ScopedRegion region("phase", "work");
    mhpx::sync::latch done(50);
    for (int i = 0; i < 50; ++i) {
      mhpx::post([&done] {
        volatile double x = 0.0;
        for (int k = 0; k < 20000; ++k) {
          x = x + 1.0;
        }
        done.count_down();
      });
    }
    done.wait();
    rt.scheduler().wait_idle();
  }
  trace::enable(false);

  const auto events = trace::snapshot();
  const auto cp = apex::analyze(events, 2);
  EXPECT_GT(cp.tasks, 0u);
  EXPECT_EQ(cp.events, events.size());
  EXPECT_GT(cp.wall_seconds, 0.0);
  EXPECT_GT(cp.critical_path_seconds, 0.0);
  EXPECT_LE(cp.critical_path_seconds, cp.wall_seconds + 1e-9);
  EXPECT_GE(cp.utilization, 0.0);

  // Telescoped attribution covers the whole path, no more.
  double attributed = 0.0;
  for (const auto& [category, seconds] : cp.category_seconds) {
    EXPECT_GE(seconds, 0.0) << category;
    attributed += seconds;
  }
  EXPECT_NEAR(attributed, cp.critical_path_seconds,
              1e-9 + 1e-6 * cp.critical_path_seconds);
  EXPECT_FALSE(cp.path.empty());
}

TEST_F(TraceTest, AnalyzeEmptyTraceIsSane) {
  const auto cp = apex::analyze({}, 4);
  EXPECT_EQ(cp.tasks, 0u);
  EXPECT_DOUBLE_EQ(cp.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cp.critical_path_seconds, 0.0);
}
