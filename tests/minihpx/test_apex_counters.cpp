// mhpx::apex counter registry: glob semantics, discover/read/reset,
// RAII registration blocks, the standard scheduler/resilience counter
// sets, and the background sampler.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "minihpx/apex/counters.hpp"
#include "minihpx/apex/sampler.hpp"
#include "minihpx/instrument.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/sync/latch.hpp"

namespace apex = mhpx::apex;

TEST(CounterPattern, StarStopsAtSlash) {
  EXPECT_TRUE(apex::CounterRegistry::pattern_match("/threads/*/idle-rate",
                                                   "/threads/default/idle-rate"));
  EXPECT_FALSE(apex::CounterRegistry::pattern_match(
      "/threads/*", "/threads/default/idle-rate"));
  EXPECT_TRUE(
      apex::CounterRegistry::pattern_match("/threads/*", "/threads/default"));
  EXPECT_FALSE(apex::CounterRegistry::pattern_match("/a/*/c", "/a/b/x/c"));
}

TEST(CounterPattern, DoubleStarCrossesSlash) {
  EXPECT_TRUE(apex::CounterRegistry::pattern_match(
      "/threads/**", "/threads/default/idle-rate"));
  EXPECT_TRUE(apex::CounterRegistry::pattern_match("**", "/anything/at/all"));
  EXPECT_TRUE(apex::CounterRegistry::pattern_match("/a/**/d", "/a/b/c/d"));
  EXPECT_FALSE(apex::CounterRegistry::pattern_match("/b/**", "/a/b/c"));
}

TEST(CounterPattern, LiteralAndEdgeCases) {
  EXPECT_TRUE(apex::CounterRegistry::pattern_match("/exact", "/exact"));
  EXPECT_FALSE(apex::CounterRegistry::pattern_match("/exact", "/exact/more"));
  EXPECT_FALSE(apex::CounterRegistry::pattern_match("/exact/more", "/exact"));
  EXPECT_TRUE(apex::CounterRegistry::pattern_match("*", ""));
  EXPECT_TRUE(apex::CounterRegistry::pattern_match("/a/*-rate", "/a/idle-rate"));
}

TEST(CounterRegistry, AddDiscoverReadRemove) {
  apex::CounterRegistry reg;
  double raw = 41.0;
  ASSERT_TRUE(reg.add("/test/value", "a test counter",
                      apex::CounterKind::monotonic, [&raw] { return raw; }));
  // Duplicate names are rejected.
  EXPECT_FALSE(reg.add("/test/value", "again", apex::CounterKind::gauge,
                       [] { return 0.0; }));
  EXPECT_EQ(reg.size(), 1u);

  const auto found = reg.discover("/test/**");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "/test/value");
  EXPECT_EQ(found[0].description, "a test counter");
  EXPECT_EQ(found[0].kind, apex::CounterKind::monotonic);

  raw = 42.0;
  const auto v = reg.read("/test/value");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 42.0);
  EXPECT_FALSE(reg.read("/test/missing").has_value());

  EXPECT_TRUE(reg.remove("/test/value"));
  EXPECT_FALSE(reg.remove("/test/value"));
  EXPECT_EQ(reg.size(), 0u);
}

TEST(CounterRegistry, ResetBaselinesMonotonicOnly) {
  apex::CounterRegistry reg;
  double mono = 100.0;
  double level = 0.7;
  reg.add("/t/count/x", "", apex::CounterKind::monotonic,
          [&mono] { return mono; });
  reg.add("/t/gauge/x", "", apex::CounterKind::gauge,
          [&level] { return level; });

  EXPECT_EQ(reg.reset("/t/**"), 1u);  // only the monotonic one
  EXPECT_DOUBLE_EQ(*reg.read("/t/count/x"), 0.0);
  EXPECT_DOUBLE_EQ(*reg.read("/t/gauge/x"), 0.7);

  mono = 130.0;  // source keeps counting; reads are deltas from baseline
  EXPECT_DOUBLE_EQ(*reg.read("/t/count/x"), 30.0);

  const auto all = reg.read_matching("/t/**");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "/t/count/x");  // sorted by name
  EXPECT_DOUBLE_EQ(all[0].second, 30.0);
}

TEST(CounterBlock, RemovesOnDestruction) {
  apex::CounterRegistry reg;
  {
    apex::CounterBlock block(reg);
    EXPECT_TRUE(block.add("/b/one", "", apex::CounterKind::gauge,
                          [] { return 1.0; }));
    EXPECT_TRUE(block.add("/b/two", "", apex::CounterKind::gauge,
                          [] { return 2.0; }));
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(block.names().size(), 2u);
  }
  EXPECT_EQ(reg.size(), 0u);
}

TEST(CounterBlock, MoveTransfersOwnership) {
  apex::CounterRegistry reg;
  apex::CounterBlock outer(reg);
  {
    apex::CounterBlock inner(reg);
    inner.add("/m/x", "", apex::CounterKind::gauge, [] { return 0.0; });
    outer = std::move(inner);
  }
  // inner destroyed but ownership moved: still registered.
  EXPECT_EQ(reg.size(), 1u);
  outer.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(RuntimeCounters, SchedulerCountersAppearAndCount) {
  // Runtime registers /threads/default/... into the global registry.
  auto& reg = apex::CounterRegistry::instance();
  {
    mhpx::Runtime rt({2});
    const auto found = reg.discover("/threads/default/**");
    EXPECT_GE(found.size(), 9u);

    reg.reset("/threads/default/count/**");
    constexpr int n = 100;
    mhpx::sync::latch done(n);
    for (int i = 0; i < n; ++i) {
      mhpx::post([&done] { done.count_down(); });
    }
    done.wait();
    rt.scheduler().wait_idle();

    EXPECT_GE(*reg.read("/threads/default/count/executed"), double(n));
    EXPECT_DOUBLE_EQ(*reg.read("/threads/default/count/workers"), 2.0);
    const double idle_rate = *reg.read("/threads/default/idle-rate");
    EXPECT_GE(idle_rate, 0.0);
    EXPECT_LE(idle_rate, 1.0);
    EXPECT_GT(*reg.read("/threads/default/time/busy"), 0.0);
  }
  // Runtime destruction unregisters its block.
  EXPECT_TRUE(reg.discover("/threads/default/**").empty());
}

TEST(RuntimeCounters, ResilienceCountersReadGlobalTotals) {
  mhpx::Runtime rt({1});
  auto& reg = apex::CounterRegistry::instance();
  mhpx::instrument::reset_resilience_counters();
  reg.reset("/resilience/**");
  mhpx::instrument::detail::notify_task_retry(1);
  mhpx::instrument::detail::notify_task_retry(2);
  EXPECT_DOUBLE_EQ(*reg.read("/resilience/count/retries"), 2.0);
  mhpx::instrument::reset_resilience_counters();
}

TEST(Sampler, CapturesGrowingSeries) {
  apex::CounterRegistry reg;
  std::atomic<double> source{0.0};
  reg.add("/s/progress", "", apex::CounterKind::monotonic,
          [&source] { return source.load(); });

  apex::Sampler sampler(reg);
  apex::SamplerConfig cfg;
  cfg.interval_seconds = 0.001;
  cfg.patterns = {"/s/**"};
  sampler.start(cfg);
  for (int i = 0; i < 50; ++i) {
    source.store(source.load() + 1.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GT(sampler.samples(), 2u);

  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "/s/progress");
  ASSERT_EQ(series[0].t.size(), series[0].v.size());
  ASSERT_GT(series[0].v.size(), 2u);
  // Time and a monotonic counter both never decrease across samples.
  for (std::size_t i = 1; i < series[0].v.size(); ++i) {
    EXPECT_GE(series[0].t[i], series[0].t[i - 1]);
    EXPECT_GE(series[0].v[i], series[0].v[i - 1]);
  }
  EXPECT_GT(series[0].v.back(), series[0].v.front());
}

TEST(Sampler, MaxSamplesStops) {
  apex::CounterRegistry reg;
  reg.add("/s/x", "", apex::CounterKind::gauge, [] { return 1.0; });
  apex::Sampler sampler(reg);
  apex::SamplerConfig cfg;
  cfg.interval_seconds = 0.0005;
  cfg.patterns = {"/s/x"};
  cfg.max_samples = 3;
  sampler.start(cfg);
  // The thread stops itself at max_samples; stop() just joins.
  for (int i = 0; i < 200 && sampler.samples() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_EQ(sampler.samples(), 3u);
}

// Regression: stop() must take one final sample before joining, so the
// series always ends with the counters' values at shutdown — a sampler
// stopped mid-interval used to lose everything after the last tick.
TEST(Sampler, StopFlushesAFinalSample) {
  apex::CounterRegistry reg;
  std::atomic<double> source{0.0};
  reg.add("/s/final", "", apex::CounterKind::gauge,
          [&source] { return source.load(); });
  apex::Sampler sampler(reg);
  apex::SamplerConfig cfg;
  cfg.interval_seconds = 60.0;  // next periodic tick is far in the future
  cfg.patterns = {"/s/final"};
  sampler.start(cfg);
  // Let the immediate start-of-run sample land first, so the value below is
  // only observable through the flush-on-stop path.
  for (int i = 0; i < 2000 && sampler.samples() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(sampler.samples(), 1u);
  source.store(7.0);
  sampler.stop();

  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_FALSE(series[0].v.empty());
  EXPECT_DOUBLE_EQ(series[0].v.back(), 7.0)
      << "stop() must flush the post-update value";
  EXPECT_GE(sampler.samples(), 1u);
}

// Regression: a sampler whose thread exited on its own (max_samples) used
// to be stuck — running() stayed true, so a later start() refused to run
// and restarting would std::terminate on the still-joinable thread.
TEST(Sampler, RestartsAfterMaxSamplesAndStopIsIdempotent) {
  apex::CounterRegistry reg;
  reg.add("/s/x", "", apex::CounterKind::gauge, [] { return 1.0; });
  apex::Sampler sampler(reg);
  apex::SamplerConfig cfg;
  cfg.interval_seconds = 0.0005;
  cfg.patterns = {"/s/x"};
  cfg.max_samples = 2;
  sampler.start(cfg);
  for (int i = 0; i < 400 && sampler.samples() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(sampler.samples(), 2u);
  EXPECT_FALSE(sampler.running()) << "self-stopped sampler must not report "
                                     "running";

  // stop() on a not-running sampler is a no-op, any number of times.
  sampler.stop();
  sampler.stop();

  // And the same object can go again.
  sampler.start(cfg);
  for (int i = 0; i < 400 && sampler.samples() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  sampler.stop();
  EXPECT_EQ(sampler.samples(), 2u);
  EXPECT_FALSE(sampler.running());
}

TEST(CounterPattern, DiscoveryEdgeCases) {
  apex::CounterRegistry reg;
  reg.add("/threads/default/tasks", "", apex::CounterKind::monotonic,
          [] { return 1.0; });
  reg.add("/threads/default/idle-rate", "", apex::CounterKind::gauge,
          [] { return 0.0; });
  reg.add("/parcels/tcp/sent", "", apex::CounterKind::monotonic,
          [] { return 2.0; });

  // '**' at the root spans everything; '/**' requires the leading slash.
  EXPECT_EQ(reg.discover("**").size(), 3u);
  EXPECT_EQ(reg.discover("/**").size(), 3u);
  EXPECT_FALSE(apex::CounterRegistry::pattern_match("/**", "no-slash"));

  // A trailing '/' matches no registered leaf (names never end in '/').
  EXPECT_TRUE(reg.discover("/threads/").empty());
  EXPECT_TRUE(reg.discover("/threads/default/").empty());

  // The empty pattern matches only the empty name — i.e. nothing here.
  EXPECT_TRUE(reg.discover("").empty());
  EXPECT_TRUE(apex::CounterRegistry::pattern_match("", ""));

  // An interior node is not a leaf: '/threads/**' must not match the bare
  // '/threads' prefix itself, only names below it.
  EXPECT_FALSE(
      apex::CounterRegistry::pattern_match("/threads/**", "/threads"));
  EXPECT_EQ(reg.discover("/threads/**").size(), 2u);
}

TEST(ResetScope, ObserverLocalBaselinesDoNotSteal) {
  // Regression for the shared-baseline stealing hazard: two observers
  // resetting through the registry raced — the second reset() re-zeroed
  // the first observer's window. Scoped resets must be independent of each
  // other AND of the registry's shared baseline.
  apex::CounterRegistry reg;
  double mono = 100.0;
  reg.add("/t/events", "", apex::CounterKind::monotonic,
          [&mono] { return mono; });

  apex::ResetScope a(reg);
  apex::ResetScope b(reg);

  EXPECT_EQ(a.reset("/t/**"), 1u);  // a's window opens at 100
  mono = 130.0;
  EXPECT_EQ(b.reset("/t/**"), 1u);  // b's window opens at 130
  mono = 150.0;

  EXPECT_DOUBLE_EQ(a.read("/t/events").value_or(-1), 50.0);
  EXPECT_DOUBLE_EQ(b.read("/t/events").value_or(-1), 20.0);

  // A registry-level (shared) reset moves the shared baseline only; the
  // scopes keep reading raw-minus-own-baseline.
  EXPECT_EQ(reg.reset("/t/**"), 1u);
  mono = 160.0;
  EXPECT_DOUBLE_EQ(reg.read("/t/events").value_or(-1), 10.0);
  EXPECT_DOUBLE_EQ(a.read("/t/events").value_or(-1), 60.0);
  EXPECT_DOUBLE_EQ(b.read("/t/events").value_or(-1), 30.0);

  // Re-resetting one scope leaves the other untouched.
  EXPECT_EQ(a.reset("/t/**"), 1u);
  mono = 161.0;
  EXPECT_DOUBLE_EQ(a.read("/t/events").value_or(-1), 1.0);
  EXPECT_DOUBLE_EQ(b.read("/t/events").value_or(-1), 31.0);
}

TEST(ResetScope, GaugesAndUnresetCountersReadRaw) {
  apex::CounterRegistry reg;
  double mono = 10.0;
  double level = 0.4;
  reg.add("/t/count", "", apex::CounterKind::monotonic,
          [&mono] { return mono; });
  reg.add("/t/gauge", "", apex::CounterKind::gauge,
          [&level] { return level; });

  apex::ResetScope scope(reg);
  EXPECT_EQ(scope.reset("/t/**"), 1u);  // only the monotonic counter
  mono = 25.0;
  level = 0.9;
  EXPECT_DOUBLE_EQ(scope.read("/t/count").value_or(-1), 15.0);
  EXPECT_DOUBLE_EQ(scope.read("/t/gauge").value_or(-1), 0.9);
  EXPECT_FALSE(scope.read("/t/missing").has_value());

  const auto all = scope.read_matching("/t/**");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "/t/count");
  EXPECT_DOUBLE_EQ(all[0].second, 15.0);
  EXPECT_DOUBLE_EQ(all[1].second, 0.9);

  // A counter registered after the reset (never baselined) reads raw.
  double late = 5.0;
  reg.add("/t/late", "", apex::CounterKind::monotonic,
          [&late] { return late; });
  EXPECT_DOUBLE_EQ(scope.read("/t/late").value_or(-1), 5.0);
}
