// Cross-locality trace propagation (ctest label: disttrace).
//
// Every parcel is stamped with the sending task's GUID and a fresh flow id
// in its wire header; the receiving locality records the flow's 'f' half
// with the *remote* parent. The acceptance shape for the distributed-
// observability PR: a traced two-locality run yields at least two pids,
// every flow 's' has its matching 'f', and the trace passes the structural
// linter that gates the fig8 artifact in CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/report/trace_tools.hpp"
#include "minihpx/apex/task_trace.hpp"
#include "minihpx/distributed/runtime.hpp"

namespace {

using namespace mhpx::dist;
namespace trace = mhpx::apex::trace;
namespace tt = rveval::report::tracetools;

struct EchoAction {
  static constexpr std::string_view name = "disttrace::echo";
  static int invoke(Locality& /*here*/, int x) { return x * 2; }
};
MHPX_REGISTER_ACTION(EchoAction);

class DistTraceTest : public ::testing::TestWithParam<FabricKind> {
 protected:
  void SetUp() override {
    trace::enable(false);
    trace::clear();
  }
  void TearDown() override {
    trace::enable(false);
    trace::clear();
  }

  DistributedRuntime::Config config() const {
    DistributedRuntime::Config cfg;
    cfg.num_localities = 2;
    cfg.threads_per_locality = 2;
    cfg.stack_size = 64 * 1024;
    cfg.fabric = GetParam();
    return cfg;
  }
};

TEST_P(DistTraceTest, ParcelsProduceFlowEventsOnBothPids) {
  DistributedRuntime rt(config());
  trace::enable(true);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rt.locality(0).call<EchoAction>(locality_gid(1), i).get(),
              2 * i);
  }
  rt.wait_all_idle();
  trace::enable(false);

  const auto events = trace::snapshot();
  std::set<std::uint32_t> pids;
  std::map<std::uint64_t, int> starts;
  std::map<std::uint64_t, int> ends;
  for (const auto& ev : events) {
    pids.insert(ev.pid);
    if (ev.ph == trace::EventPhase::flow_start) {
      ++starts[ev.guid];
    } else if (ev.ph == trace::EventPhase::flow_end) {
      ++ends[ev.guid];
    }
  }
  EXPECT_GE(pids.size(), 2u) << "a two-locality run must span two pids";
  // Request + reply per call: at least 16 flows, every one paired.
  EXPECT_GE(starts.size(), 16u);
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(ends[id], n) << "flow " << id << " has unpaired halves";
  }
  for (const auto& [id, n] : ends) {
    EXPECT_EQ(starts[id], n) << "flow " << id << " 'f' without 's'";
  }
}

TEST_P(DistTraceTest, FlowCarriesTheRemoteParentGuid) {
  DistributedRuntime rt(config());
  trace::enable(true);
  std::uint64_t sender_guid = 0;
  {
    // The send happens under this region, so the parcel header carries its
    // GUID as the trace parent (ambient-parent propagation on the calling
    // thread) and the receiving locality's 'f' event must surface it.
    trace::ScopedRegion region("phase", "sender-side");
    sender_guid = region.guid();
    ASSERT_NE(sender_guid, 0u);
    EXPECT_EQ(rt.locality(0).call<EchoAction>(locality_gid(1), 21).get(), 42);
  }
  rt.wait_all_idle();
  trace::enable(false);

  bool found = false;
  for (const auto& ev : trace::snapshot()) {
    if (ev.ph == trace::EventPhase::flow_end && ev.parent == sender_guid) {
      EXPECT_EQ(ev.pid, 1u) << "request 'f' must land on the destination";
      found = true;
    }
  }
  EXPECT_TRUE(found)
      << "no flow end carried the sending region's GUID as remote parent";
}

TEST_P(DistTraceTest, ChromeExportPassesTheTraceLinter) {
  DistributedRuntime rt(config());
  trace::enable(true);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rt.locality(1).call<EchoAction>(locality_gid(0), i).get(),
              2 * i);
  }
  rt.wait_all_idle();
  trace::enable(false);

  // Same pipeline CI runs on the fig8 artifact: export, reparse, lint with
  // the two-pid floor.
  const tt::ParsedTrace parsed = tt::parse_chrome(trace::chrome_json());
  const std::vector<std::string> errors = tt::lint(parsed, /*min_pids=*/2);
  EXPECT_TRUE(errors.empty()) << errors.front() << " (+"
                              << (errors.size() - 1) << " more)";
}

TEST_P(DistTraceTest, TracingOffStampsNoFlowFields) {
  DistributedRuntime rt(config());
  ASSERT_FALSE(trace::enabled());
  EXPECT_EQ(rt.locality(0).call<EchoAction>(locality_gid(1), 5).get(), 10);
  rt.wait_all_idle();
  EXPECT_EQ(trace::event_count(), 0u)
      << "disabled tracing must record nothing, parcels included";
}

INSTANTIATE_TEST_SUITE_P(AllFabrics, DistTraceTest,
                         ::testing::Values(FabricKind::inproc, FabricKind::tcp,
                                           FabricKind::mpisim),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
