// Unit tests for futures, promises, async, continuations and combinators.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"

namespace {

struct RuntimeFixture : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

using FutureTest = RuntimeFixture;

TEST(FutureNoRuntime, DefaultConstructedIsInvalid) {
  mhpx::future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(FutureNoRuntime, MakeReadyFuture) {
  auto f = mhpx::make_ready_future(7);
  ASSERT_TRUE(f.valid());
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 7);
  EXPECT_FALSE(f.valid());  // get() consumes
}

TEST(FutureNoRuntime, MakeReadyFutureVoid) {
  auto f = mhpx::make_ready_future();
  EXPECT_TRUE(f.is_ready());
  f.get();
}

TEST(FutureNoRuntime, ExceptionalFutureRethrows) {
  auto f = mhpx::make_exceptional_future<int>(
      std::make_exception_ptr(std::logic_error("boom")));
  EXPECT_TRUE(f.is_ready());
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(FutureNoRuntime, PromiseSetBeforeGet) {
  mhpx::promise<std::string> p;
  auto f = p.get_future();
  p.set_value("hello");
  EXPECT_EQ(f.get(), "hello");
}

TEST(FutureNoRuntime, PromiseDoubleFutureThrows) {
  mhpx::promise<int> p;
  auto f = p.get_future();
  EXPECT_THROW((void)p.get_future(), std::runtime_error);
}

TEST(FutureNoRuntime, ThenRunsInlineWithoutRuntime) {
  auto f = mhpx::make_ready_future(20).then([](int v) { return v + 1; });
  EXPECT_EQ(f.get(), 21);
}

TEST_F(FutureTest, AsyncReturnsValue) {
  auto f = mhpx::async([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST_F(FutureTest, AsyncForwardsArguments) {
  auto f = mhpx::async([](int a, int b) { return a + b; }, 40, 2);
  EXPECT_EQ(f.get(), 42);
}

TEST_F(FutureTest, AsyncVoid) {
  std::atomic<bool> ran{false};
  auto f = mhpx::async([&] { ran.store(true); });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST_F(FutureTest, AsyncPropagatesException) {
  auto f = mhpx::async([]() -> int { throw std::domain_error("bad"); });
  EXPECT_THROW(f.get(), std::domain_error);
}

TEST_F(FutureTest, GetFromExternalThreadBlocks) {
  mhpx::promise<int> p;
  auto f = p.get_future();
  std::thread setter([&p] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    p.set_value(5);
  });
  EXPECT_EQ(f.get(), 5);
  setter.join();
}

TEST_F(FutureTest, GetInsideTaskSuspendsFiber) {
  // Waiting inside a task must not wedge a 1-worker scheduler: the waiting
  // fiber suspends and the worker runs the producer task.
  mhpx::Runtime* rt = mhpx::Runtime::instance();
  ASSERT_NE(rt, nullptr);
  mhpx::promise<int> p;
  auto consumer = mhpx::async([&p] {
    auto f = p.get_future();
    return f.get() + 1;
  });
  auto producer = mhpx::async([&p] { p.set_value(41); });
  producer.get();
  EXPECT_EQ(consumer.get(), 42);
}

TEST_F(FutureTest, ThenChainsValues) {
  auto f = mhpx::async([] { return 10; })
               .then([](int v) { return v * 2; })
               .then([](int v) { return v + 2; });
  EXPECT_EQ(f.get(), 22);
}

TEST_F(FutureTest, ThenVoidToValue) {
  auto f = mhpx::async([] {}).then([] { return std::string("done"); });
  EXPECT_EQ(f.get(), "done");
}

TEST_F(FutureTest, ThenValueToVoid) {
  std::atomic<int> seen{0};
  auto f = mhpx::async([] { return 9; }).then([&](int v) { seen.store(v); });
  f.get();
  EXPECT_EQ(seen.load(), 9);
}

TEST_F(FutureTest, ThenSkipsBodyOnException) {
  std::atomic<bool> called{false};
  auto f = mhpx::async([]() -> int { throw std::runtime_error("x"); })
               .then([&](int v) {
                 called.store(true);
                 return v;
               });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_FALSE(called.load());
}

TEST_F(FutureTest, WhenAllVector) {
  std::vector<mhpx::future<int>> futs;
  futs.reserve(16);
  for (int i = 0; i < 16; ++i) {
    futs.push_back(mhpx::async([i] { return i * i; }));
  }
  auto all = mhpx::when_all(std::move(futs)).get();
  int sum = 0;
  for (auto& f : all) {
    EXPECT_TRUE(f.is_ready());
    sum += f.get();
  }
  EXPECT_EQ(sum, 1240);  // sum of squares 0..15
}

TEST_F(FutureTest, WhenAllEmptyVector) {
  auto all = mhpx::when_all(std::vector<mhpx::future<int>>{}).get();
  EXPECT_TRUE(all.empty());
}

TEST_F(FutureTest, WhenAllVariadic) {
  auto a = mhpx::async([] { return 1; });
  auto b = mhpx::async([] { return std::string("two"); });
  auto tup = mhpx::when_all(std::move(a), std::move(b)).get();
  EXPECT_EQ(std::get<0>(tup).get(), 1);
  EXPECT_EQ(std::get<1>(tup).get(), "two");
}

TEST_F(FutureTest, WhenAnyReturnsFirstReady) {
  mhpx::promise<int> blocked;
  std::vector<mhpx::future<int>> futs;
  futs.push_back(blocked.get_future());
  futs.push_back(mhpx::make_ready_future(99));
  auto any = mhpx::when_any(std::move(futs)).get();
  EXPECT_EQ(any.index, 1u);
  EXPECT_EQ(any.futures[1].get(), 99);
  blocked.set_value(0);  // avoid leaking a never-set promise waiter
}

TEST_F(FutureTest, WhenAnyEmptyThrows) {
  EXPECT_THROW(mhpx::when_any(std::vector<mhpx::future<int>>{}),
               std::invalid_argument);
}

TEST_F(FutureTest, UnwrapCollapsesNestedFuture) {
  auto outer = mhpx::async([] { return mhpx::make_ready_future(123); });
  auto inner = mhpx::unwrap(std::move(outer));
  EXPECT_EQ(inner.get(), 123);
}

TEST_F(FutureTest, UnwrapPropagatesInnerException) {
  auto outer = mhpx::async([] {
    return mhpx::make_exceptional_future<int>(
        std::make_exception_ptr(std::logic_error("inner")));
  });
  auto inner = mhpx::unwrap(std::move(outer));
  EXPECT_THROW(inner.get(), std::logic_error);
}

TEST_F(FutureTest, LargeFanOutCompletes) {
  constexpr int kTasks = 500;
  std::vector<mhpx::future<int>> futs;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futs.push_back(mhpx::async([i] { return i; }));
  }
  auto all = mhpx::when_all(std::move(futs)).get();
  long sum = 0;
  for (auto& f : all) {
    sum += f.get();
  }
  EXPECT_EQ(sum, static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

TEST_F(FutureTest, DeepThenChain) {
  auto f = mhpx::make_ready_future(0);
  for (int i = 0; i < 100; ++i) {
    f = f.then([](int v) { return v + 1; });
  }
  EXPECT_EQ(f.get(), 100);
}

}  // namespace
