#pragma once

/// \file octo_gen.hpp
/// Octree-shape generator for property-based Octo-Tiger tests: random but
/// always-valid run configurations spanning uniform meshes, partially
/// refined rotating stars and binary stars. Shapes are sized for tier-1
/// test budgets (at most two refinement levels, two workers).

#include "minihpx/testing/property.hpp"
#include "octotiger/options.hpp"

namespace octo::testing {

inline Options gen_octree_shape(mhpx::testing::prop::Gen& g) {
  Options opt;
  opt.max_level = 1 + static_cast<unsigned>(g.index(2));
  // A third of the shapes are uniform meshes (the refinement sphere covers
  // the whole domain); the rest refine a band around the star. The lower
  // bound keeps the origin inside the refined region, so rotating-star
  // centres sit at max_level both before and after a regrid.
  opt.refine_radius = g.chance(1.0 / 3.0) ? 10.0 : g.real_in(0.25, 0.9);
  opt.stop_step = 1 + static_cast<unsigned>(g.index(2));
  opt.threads = 2;
  if (g.chance(0.25)) {
    opt.problem = Options::Problem::binary_star;
  }
  return opt;
}

}  // namespace octo::testing
