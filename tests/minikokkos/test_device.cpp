// The mkk::Device subsystem (ctest labels: device;resilience): modelled
// streams (FIFO order, cross-stream events, fences), host<->device
// mirroring with link-priced copies, the deferred CUDA-style error model,
// ReplayDevice/ReplicateDevice fault recovery, and the counter/energy/trace
// surface the observability stack consumes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "minihpx/apex/counters.hpp"
#include "minihpx/apex/remote.hpp"
#include "minihpx/apex/task_trace.hpp"
#include "minihpx/distributed/runtime.hpp"
#include "minihpx/resilience/fault_injector.hpp"
#include "minihpx/runtime.hpp"
#include "minikokkos/minikokkos.hpp"

namespace {

namespace apex = mhpx::apex;
namespace trace = mhpx::apex::trace;
using mkk::device::Device;
using mkk::device::OpRecord;

struct DeviceTest : ::testing::Test {
  void SetUp() override {
    Device::instance().set_fault_injector(nullptr);
    Device::instance().reset();
  }
  void TearDown() override {
    Device::instance().set_fault_injector(nullptr);
    Device::instance().reset();
  }
};

// ------------------------------------------------- mirrors and copies

TEST_F(DeviceTest, MirrorRoundTripIsBitIdentical) {
  mkk::View<double, 2> host("h", 5, 7);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      host(i, j) = std::sin(static_cast<double>(i * 7 + j));
    }
  }
  auto dev = mkk::create_mirror_view(mkk::DeviceSpace{}, host);
  static_assert(std::is_same_v<decltype(dev)::memory_space, mkk::DeviceSpace>);
  EXPECT_EQ(dev.extent(0), 5u);
  EXPECT_EQ(dev.extent(1), 7u);
  mkk::deep_copy(dev, host);

  auto mirror = mkk::create_mirror_view(dev);
  static_assert(
      std::is_same_v<decltype(mirror)::memory_space, mkk::HostSpace>);
  EXPECT_NE(mirror.data(), dev.data());
  mkk::deep_copy(mirror, dev);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_EQ(mirror(i, j), host(i, j));  // bitwise
    }
  }
}

TEST_F(DeviceTest, HostMirrorOfHostViewAliases) {
  mkk::View<double, 1> host("h", 8);
  auto mirror = mkk::create_mirror_view(host);
  EXPECT_EQ(mirror.data(), host.data());
}

TEST_F(DeviceTest, AsyncDeepCopyIsPricedOnTheLink) {
  auto& dev = Device::instance();
  const auto& model = dev.config().model;
  constexpr std::size_t n = 1 << 16;
  mkk::View<double, 1> host("h", n);
  host.fill(3.25);
  auto d = mkk::create_mirror_view(mkk::DeviceSpace{}, host);

  auto fut = mkk::async_deep_copy(mkk::DeviceExec{0}, d, host);
  fut.get();
  dev.throw_pending();
  EXPECT_EQ(d(n - 1), 3.25);

  const auto ops = dev.timeline();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, OpRecord::Kind::copy_h2d);
  const double bytes = static_cast<double>(n) * sizeof(double);
  EXPECT_DOUBLE_EQ(ops[0].bytes, bytes);
  EXPECT_DOUBLE_EQ(ops[0].model_end - ops[0].model_begin,
                   model.copy_seconds(bytes));
  EXPECT_DOUBLE_EQ(dev.totals().copy_bytes, bytes);
}

TEST_F(DeviceTest, DeepCopyExtentMismatchThrowsEagerly) {
  mkk::View<double, 1> host("h", 8);
  mkk::View<double, 1, mkk::LayoutRight, mkk::DeviceSpace> d("d", 9);
  EXPECT_THROW(mkk::deep_copy(d, host), std::invalid_argument);
}

// -------------------------------------------------- streams and order

TEST_F(DeviceTest, OpsOnOneStreamRunFifo) {
  auto& dev = Device::instance();
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    mkk::parallel_for(
        mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{1}, 0, 1),
        [&order, i](std::size_t) { order.push_back(i); });
  }
  dev.fence(1);
  ASSERT_EQ(order.size(), 16u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));

  // The modelled intervals tile the stream back-to-back, FIFO.
  const auto ops = dev.timeline();
  ASSERT_EQ(ops.size(), 16u);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_GE(ops[i].model_begin, ops[i - 1].model_end);
  }
}

TEST_F(DeviceTest, StreamsOverlapOnTheModelledTimeline) {
  auto& dev = Device::instance();
  // Two heavy kernels on different streams: their modelled intervals must
  // overlap (concurrent streams), while two on one stream must not. The
  // hints model ~3.5 s per launch so the wall-clock gap between the two
  // enqueues (microseconds, but unbounded under sanitizers + load) can
  // never push the second launch past the first one's modelled end.
  const mkk::DeviceExec s0{0, 1.0e13, 0.0};
  const mkk::DeviceExec s1{1, 1.0e13, 0.0};
  mkk::parallel_for(mkk::RangePolicy<mkk::DeviceExec>(s0, 0, 4),
                    [](std::size_t) {});
  mkk::parallel_for(mkk::RangePolicy<mkk::DeviceExec>(s1, 0, 4),
                    [](std::size_t) {});
  dev.fence();
  const auto ops = dev.timeline();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_LT(ops[1].model_begin, ops[0].model_end)
      << "independent streams must overlap";
}

TEST_F(DeviceTest, EventJoinsModelClocksAcrossStreams) {
  auto& dev = Device::instance();
  const mkk::DeviceExec s0{0, 2.0e9, 0.0};  // ~ tens of ms modelled
  mkk::parallel_for(mkk::RangePolicy<mkk::DeviceExec>(s0, 0, 4),
                    [](std::size_t) {});
  auto ev = dev.record_event(0);
  dev.wait_event(1, ev);
  bool ran = false;
  mkk::parallel_for(
      mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{1}, 0, 1),
      [&ran](std::size_t) { ran = true; });
  dev.fence();
  EXPECT_TRUE(ran);
  EXPECT_GT(ev.model_seconds(), 0.0);

  const auto ops = dev.timeline();
  // kernel(s0), event(s0), wait(s1), kernel(s1)
  ASSERT_EQ(ops.size(), 4u);
  const auto& heavy = ops[0];
  const auto& gated = ops[3];
  EXPECT_EQ(gated.stream, 1u);
  EXPECT_GE(gated.model_begin, heavy.model_end)
      << "stream 1 must not start before the event it waits on";
}

// ---------------------------------------------------------- error model

TEST_F(DeviceTest, BodyFailureSurfacesAtFenceNotAtLaunch) {
  auto& dev = Device::instance();
  EXPECT_NO_THROW(mkk::parallel_for(
      mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{0}, 0, 4),
      [](std::size_t) { throw std::runtime_error("kernel bug"); }));
  EXPECT_THROW(dev.fence(), std::runtime_error);
  // The latch clears once reported, and the stream chain stays usable.
  EXPECT_NO_THROW(dev.fence());
  bool ran = false;
  mkk::parallel_for(
      mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{0}, 0, 1),
      [&ran](std::size_t) { ran = true; });
  dev.fence();
  EXPECT_TRUE(ran);
}

// ----------------------------------------------------------- resilience

TEST_F(DeviceTest, ReplayDeviceRecoversInjectedFaultBitIdentically) {
  auto& dev = Device::instance();
  // fault_every=2: the second launch decision faults (corrupted launch);
  // the replay re-runs the same serial body over the same inputs.
  mhpx::resilience::FaultInjector injector({.fault_every = 2});
  dev.set_fault_injector(&injector);

  std::vector<double> out(64, 0.0);
  mkk::ReplayDevice space;
  space.base.stream = 2;
  space.replays = 3;
  for (int launch = 0; launch < 2; ++launch) {
    mkk::parallel_for(mkk::RangePolicy<mkk::ReplayDevice>(space, 0, 64),
                      [&out](std::size_t i) {
                        out[i] = 2.0 * static_cast<double>(i);
                      });
  }
  dev.fence(2);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i], 2.0 * static_cast<double>(i));  // bitwise
  }
  const auto st = dev.stream_stats(2);
  EXPECT_EQ(st.faults, 1u);
  EXPECT_EQ(st.replays, 1u);
  EXPECT_EQ(st.launches, 3u);  // 1 clean + 1 faulted + 1 replay
  EXPECT_EQ(injector.faults_injected(), 1u);
}

TEST_F(DeviceTest, StuckStreamFaultAddsTheWatchdogStall) {
  auto& dev = Device::instance();
  // corrupt_every=1: every launch hangs once (stuck stream after the body
  // ran); the replay re-executes and hangs again until the budget is spent.
  mhpx::resilience::FaultInjector injector({.corrupt_every = 1});
  dev.set_fault_injector(&injector);

  mkk::ReplayDevice space;
  space.replays = 2;
  mkk::parallel_for(mkk::RangePolicy<mkk::ReplayDevice>(space, 0, 4),
                    [](std::size_t) {});
  EXPECT_THROW(dev.fence(0), mkk::device::device_fault);

  const auto ops = dev.timeline();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].attempts, 2u);
  EXPECT_EQ(ops[0].faults, 2u);
  EXPECT_GE(ops[0].model_end - ops[0].model_begin,
            2.0 * dev.config().stuck_stream_stall_s);
}

TEST_F(DeviceTest, ReplayExhaustionSurfacesAtFence) {
  auto& dev = Device::instance();
  mkk::ReplayDevice space;
  space.replays = 2;
  space.validator = [] { return false; };  // never valid
  mkk::parallel_for(mkk::RangePolicy<mkk::ReplayDevice>(space, 0, 4),
                    [](std::size_t) {});
  EXPECT_THROW(dev.fence(0), mhpx::resilience::replay_exhausted);
}

TEST_F(DeviceTest, ReplicateDeviceOutvotesACorruptedReplica) {
  auto& dev = Device::instance();
  mkk::ReplicateDevice space;
  space.replicas = 3;
  int run = 0;
  double sum = 0.0;
  mkk::parallel_reduce(
      mkk::RangePolicy<mkk::ReplicateDevice>(space, 0, 16),
      [&run](std::size_t i, double& acc) {
        // Replica boundaries: i == 0 starts a fresh replica. The second
        // replica silently corrupts its partial; the other two agree.
        if (i == 0) {
          ++run;
        }
        acc += static_cast<double>(i) + (run == 2 ? 0.5 : 0.0);
      },
      sum);
  EXPECT_EQ(sum, 120.0);  // majority value, bitwise
  EXPECT_EQ(dev.timeline().at(0).attempts, 1u);
}

// --------------------------------------------------- counters and energy

TEST_F(DeviceTest, CountersExposeStreamsAndEnergy) {
  auto& dev = Device::instance();
  apex::CounterRegistry registry;
  apex::CounterBlock block(registry);
  mkk::device::register_device_counters(block, dev);
  mkk::device::register_device_power_counters(block, 0, dev);

  const auto names = registry.discover("/device/**");
  ASSERT_GE(names.size(), 4u * dev.num_streams());

  mkk::parallel_for(
      mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{0}, 0, 32),
      [](std::size_t) {});
  mkk::View<double, 1> host("h", 16);
  auto d = mkk::create_mirror_view(mkk::DeviceSpace{}, host);
  mkk::deep_copy(d, host);
  dev.fence();

  EXPECT_EQ(registry.read("/device/0/launches"), 1.0);
  EXPECT_EQ(registry.read("/device/0/copies"), 1.0);
  EXPECT_EQ(registry.read("/device/1/launches"), 0.0);
  const auto joules = registry.read("/power/0/device-energy-j");
  ASSERT_TRUE(joules.has_value());
  EXPECT_GT(*joules, 0.0);

  // Energy attribution is exact: the counter equals the timeline sum.
  double sum = 0.0;
  for (const auto& op : dev.timeline()) {
    sum += op.energy_j;
  }
  EXPECT_DOUBLE_EQ(*joules, sum);
  EXPECT_DOUBLE_EQ(dev.totals().energy_joules, sum);
}

TEST_F(DeviceTest, FederatedSamplerSeesDeviceCountersAcrossLocalities) {
  auto& dev = Device::instance();
  mhpx::dist::DistributedRuntime::Config cfg;
  cfg.num_localities = 2;
  cfg.threads_per_locality = 2;
  cfg.stack_size = 64 * 1024;
  mhpx::dist::DistributedRuntime rt(cfg);

  // The modelled device hangs off locality 1; its counters go into that
  // locality's registry and are read from locality 0 over the fabric.
  apex::CounterBlock block(rt.locality(1).counters());
  mkk::device::register_device_counters(block, dev);
  mkk::device::register_device_power_counters(block, 1, dev);

  mkk::parallel_for(
      mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{0}, 0, 8),
      [](std::size_t) {});
  dev.fence();

  const auto found =
      apex::remote::discover(rt.locality(0), 1, "/device/**");
  ASSERT_FALSE(found.empty());
  const auto launches =
      apex::remote::read(rt.locality(0), 1, "/device/0/launches");
  ASSERT_TRUE(launches.has_value());
  EXPECT_EQ(*launches, 1.0);
  const auto joules =
      apex::remote::read(rt.locality(0), 1, "/power/1/device-energy-j");
  ASSERT_TRUE(joules.has_value());
  EXPECT_GT(*joules, 0.0);

  // The federated sampler picks the same counters up as "/loc1/..." series.
  apex::remote::FederatedSampler sampler(rt);
  apex::remote::FederatedSamplerConfig scfg;
  scfg.interval_seconds = 0.001;
  scfg.patterns = {"/device/**", "/power/**"};
  sampler.start(scfg);
  sampler.stop();  // flushes one final federation round
  const auto series = sampler.series();
  bool saw_launches = false;
  bool saw_energy = false;
  for (const auto& s : series) {
    if (s.name == "/loc1/device/0/launches") {
      saw_launches = true;
      ASSERT_FALSE(s.v.empty());
      EXPECT_EQ(s.v.back(), 1.0);
    } else if (s.name == "/loc1/power/1/device-energy-j") {
      saw_energy = true;
      ASSERT_FALSE(s.v.empty());
      EXPECT_GT(s.v.back(), 0.0);
    }
  }
  EXPECT_TRUE(saw_launches);
  EXPECT_TRUE(saw_energy);
}

// -------------------------------------------------------------- tracing

TEST_F(DeviceTest, KernelSpansLandInTheDevicePidLane) {
  auto& dev = Device::instance();
  trace::clear();
  trace::enable(true);
  mkk::parallel_for(
      mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{2}, 0, 8),
      [](std::size_t) {});
  mkk::View<double, 1> host("h", 8);
  auto d = mkk::create_mirror_view(mkk::DeviceSpace{}, host);
  mkk::deep_copy(d, host);
  dev.fence();
  trace::enable(false);

  const auto events = trace::snapshot();
  const auto pid = dev.config().trace_pid;
  int kernel_begins = 0;
  int copy_begins = 0;
  for (const auto& ev : events) {
    if (ev.pid != pid) {
      continue;
    }
    if (ev.ph == trace::EventPhase::begin) {
      if (std::string(ev.category) == "device-kernel") {
        ++kernel_begins;
        EXPECT_EQ(ev.tid, 3u);  // stream 2 -> tid 3
      } else if (std::string(ev.category) == "device-copy") {
        ++copy_begins;
      }
    }
  }
  EXPECT_EQ(kernel_begins, 1);
  EXPECT_EQ(copy_begins, 1);

  // The pid lane is labelled after the accelerator model in the export.
  const std::string json = trace::chrome_json();
  EXPECT_NE(json.find("device: " + dev.config().model.name), std::string::npos);
  trace::clear();
}

// ----------------------------------------------------- under a runtime

TEST_F(DeviceTest, StreamsProgressOnTheAmbientScheduler) {
  auto& dev = Device::instance();
  mhpx::Runtime runtime{{2, 64 * 1024}};
  std::vector<double> out(1024, 0.0);
  for (unsigned s = 0; s < dev.num_streams(); ++s) {
    mkk::parallel_for(
        mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{s}, 0, 256),
        [&out, s](std::size_t i) {
          out[s * 256 + i] = static_cast<double>(s * 256 + i);
        });
  }
  dev.fence();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i));
  }
  EXPECT_EQ(dev.totals().launches, dev.num_streams());
}

}  // namespace
