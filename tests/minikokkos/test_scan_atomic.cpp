// Tests for mkk::parallel_scan and the atomic update helpers.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"
#include "minikokkos/scan_atomic.hpp"

namespace {

struct ScanAtomicTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_F(ScanAtomicTest, SerialScanPrefixSums) {
  std::vector<long> in(100);
  std::iota(in.begin(), in.end(), 1);
  std::vector<long> out(in.size());
  const long total = mkk::parallel_scan(
      mkk::RangePolicy<mkk::Serial>(0, in.size()),
      [&](std::size_t i, long& acc, bool final) {
        acc += in[i];
        if (final) {
          out[i] = acc;  // inclusive prefix
        }
      },
      0L);
  EXPECT_EQ(total, 5050);
  std::vector<long> expect(in.size());
  std::partial_sum(in.begin(), in.end(), expect.begin());
  EXPECT_EQ(out, expect);
}

TEST_F(ScanAtomicTest, HpxScanMatchesSerial) {
  std::vector<int> in(4099);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<int>(i % 11) - 5;
  }
  std::vector<int> serial_out(in.size());
  std::vector<int> hpx_out(in.size());
  auto body = [&](std::vector<int>& out) {
    return [&in, &out](std::size_t i, int& acc, bool final) {
      acc += in[i];
      if (final) {
        out[i] = acc;
      }
    };
  };
  const int t1 = mkk::parallel_scan(
      mkk::RangePolicy<mkk::Serial>(0, in.size()), body(serial_out), 0);
  const int t2 = mkk::parallel_scan(mkk::RangePolicy<mkk::Hpx>(0, in.size()),
                                    body(hpx_out), 0);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(serial_out, hpx_out);
}

TEST_F(ScanAtomicTest, ScanWithInit) {
  std::vector<int> out(10);
  const int total = mkk::parallel_scan(
      mkk::RangePolicy<mkk::Serial>(0, 10),
      [&](std::size_t i, int& acc, bool final) {
        acc += 1;
        if (final) {
          out[i] = acc;
        }
      },
      100);
  EXPECT_EQ(total, 110);
  EXPECT_EQ(out[0], 101);
  EXPECT_EQ(out[9], 110);
}

TEST_F(ScanAtomicTest, EmptyScan) {
  const int total = mkk::parallel_scan(
      mkk::RangePolicy<mkk::Hpx>(5, 5),
      [](std::size_t, int&, bool) { FAIL(); }, 7);
  EXPECT_EQ(total, 7);
}

TEST_F(ScanAtomicTest, ScanUseCaseStreamCompaction) {
  // Classic Kokkos use: build output indices for a filtered set.
  std::vector<int> in(1000);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<int>(i);
  }
  std::vector<int> selected(in.size(), -1);
  const int count = mkk::parallel_scan(
      mkk::RangePolicy<mkk::Serial>(0, in.size()),
      [&](std::size_t i, int& acc, bool final) {
        const bool keep = in[i] % 3 == 0;
        if (final && keep) {
          selected[static_cast<std::size_t>(acc)] = in[i];
        }
        if (keep) {
          acc += 1;
        }
      },
      0);
  EXPECT_EQ(count, 334);  // 0, 3, ..., 999
  EXPECT_EQ(selected[0], 0);
  EXPECT_EQ(selected[333], 999);
  EXPECT_EQ(selected[334], -1);
}

TEST_F(ScanAtomicTest, AtomicAddDouble) {
  double sum = 0.0;
  mkk::parallel_for(mkk::RangePolicy<mkk::Hpx>(0, 10000),
                    [&](std::size_t) { mkk::atomic_add(&sum, 0.5); });
  EXPECT_DOUBLE_EQ(sum, 5000.0);
}

TEST_F(ScanAtomicTest, AtomicAddIntegral) {
  long count = 0;
  mkk::parallel_for(mkk::RangePolicy<mkk::Threads>(mkk::Threads{3}, 0, 9999),
                    [&](std::size_t) { mkk::atomic_add(&count, 1L); });
  EXPECT_EQ(count, 9999);
}

TEST_F(ScanAtomicTest, AtomicScatterAddHistogram) {
  std::vector<double> histogram(16, 0.0);
  mkk::parallel_for(mkk::RangePolicy<mkk::Hpx>(0, 16000),
                    [&](std::size_t i) {
                      mkk::atomic_add(&histogram[i % 16], 1.0);
                    });
  for (const double bin : histogram) {
    EXPECT_DOUBLE_EQ(bin, 1000.0);
  }
}

}  // namespace
