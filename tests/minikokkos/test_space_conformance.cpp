// Cross-space conformance (ctest label: device): the same kernels produce
// the same results on every execution space — Serial, Threads, Hpx, and the
// modelled device spaces (DeviceExec, ReplayDevice, ReplicateDevice). The
// device spaces additionally guarantee *bit-identical* floating-point
// results to Serial, because their bodies run as one serial loop.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "minihpx/runtime.hpp"
#include "minikokkos/minikokkos.hpp"

namespace {

template <typename Space>
struct SpaceConformance : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
  void SetUp() override {
    mkk::device::Device::instance().set_fault_injector(nullptr);
    mkk::device::Device::instance().reset();
  }
  void TearDown() override { mkk::device::Device::instance().reset(); }

  static constexpr bool is_device =
      std::is_same_v<Space, mkk::DeviceExec> ||
      std::is_same_v<Space, mkk::ReplayDevice> ||
      std::is_same_v<Space, mkk::ReplicateDevice>;
};

using AllSpaces =
    ::testing::Types<mkk::Serial, mkk::Threads, mkk::Hpx, mkk::DeviceExec,
                     mkk::ReplayDevice, mkk::ReplicateDevice>;
TYPED_TEST_SUITE(SpaceConformance, AllSpaces);

TYPED_TEST(SpaceConformance, RangeForWritesEveryIndex) {
  constexpr std::size_t n = 512;
  std::vector<double> out(n, -1.0);
  const TypeParam space{};
  mkk::parallel_for(mkk::RangePolicy<TypeParam>(space, 0, n),
                    [&out](std::size_t i) {
                      out[i] = 3.0 * static_cast<double>(i) + 1.0;
                    });
  mkk::fence(space);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], 3.0 * static_cast<double>(i) + 1.0);
  }
}

TYPED_TEST(SpaceConformance, RangeReduceMatchesSerial) {
  constexpr std::size_t n = 777;
  long expected = 0;
  mkk::parallel_reduce(
      mkk::RangePolicy<mkk::Serial>(0, n),
      [](std::size_t i, long& acc) {
        acc += static_cast<long>(i) * static_cast<long>(i);
      },
      expected);

  long got = 0;
  const TypeParam space{};
  mkk::parallel_reduce(
      mkk::RangePolicy<TypeParam>(space, 0, n),
      [](std::size_t i, long& acc) {
        acc += static_cast<long>(i) * static_cast<long>(i);
      },
      got);
  EXPECT_EQ(got, expected);
}

TYPED_TEST(SpaceConformance, MDRangeForMatchesSerial) {
  // ReplicateDevice deliberately has no MD dispatch (replicated *for* only
  // makes sense for idempotent range bodies).
  if constexpr (!std::is_same_v<TypeParam, mkk::ReplicateDevice>) {
    mkk::View<double, 3> baseline("b", 6, 6, 6);
    mkk::parallel_for(mkk::MDRangePolicy3<mkk::Serial>({0, 0, 0}, {6, 6, 6}),
                      [&](std::size_t i, std::size_t j, std::size_t k) {
                        baseline(i, j, k) = std::sin(
                            static_cast<double>(i * 36 + j * 6 + k));
                      });

    mkk::View<double, 3> v("v", 6, 6, 6);
    const TypeParam space{};
    mkk::parallel_for(
        mkk::MDRangePolicy3<TypeParam>(space, {0, 0, 0}, {6, 6, 6}),
        [&](std::size_t i, std::size_t j, std::size_t k) {
          v(i, j, k) = std::sin(static_cast<double>(i * 36 + j * 6 + k));
        });
    mkk::fence(space);
    v.for_each_index([&](auto i, auto j, auto k) {
      EXPECT_EQ(v(i, j, k), baseline(i, j, k));  // bitwise
    });
  }
}

TYPED_TEST(SpaceConformance, ScanMatchesSerial) {
  // Scan is defined for the non-resilient spaces (Kokkos parity); the
  // resilient wrappers cover for/reduce only.
  if constexpr (!std::is_same_v<TypeParam, mkk::ReplayDevice> &&
                !std::is_same_v<TypeParam, mkk::ReplicateDevice>) {
    constexpr std::size_t n = 300;
    std::vector<long> serial_prefix(n, 0);
    const long serial_total = mkk::parallel_scan(
        mkk::RangePolicy<mkk::Serial>(0, n),
        [&](std::size_t i, long& acc, bool final_pass) {
          if (final_pass) {
            serial_prefix[i] = acc;
          }
          acc += static_cast<long>(i) + 1;
        },
        long{5});

    std::vector<long> prefix(n, -1);
    const TypeParam space{};
    const long total = mkk::parallel_scan(
        mkk::RangePolicy<TypeParam>(space, 0, n),
        [&](std::size_t i, long& acc, bool final_pass) {
          if (final_pass) {
            prefix[i] = acc;
          }
          acc += static_cast<long>(i) + 1;
        },
        long{5});
    EXPECT_EQ(total, serial_total);
    EXPECT_EQ(prefix, serial_prefix);
  }
}

TYPED_TEST(SpaceConformance, DeviceFloatSumIsBitIdenticalToSerial) {
  // Chunked host spaces may legally re-associate a floating-point sum; the
  // device spaces may not — their serial body makes placement invisible.
  if constexpr (TestFixture::is_device) {
    constexpr std::size_t n = 1000;
    double expected = 0.0;
    mkk::parallel_reduce(
        mkk::RangePolicy<mkk::Serial>(0, n),
        [](std::size_t i, double& acc) {
          acc += std::sin(static_cast<double>(i)) * 1.0e-3;
        },
        expected);

    double got = 0.0;
    const TypeParam space{};
    mkk::parallel_reduce(
        mkk::RangePolicy<TypeParam>(space, 0, n),
        [](std::size_t i, double& acc) {
          acc += std::sin(static_cast<double>(i)) * 1.0e-3;
        },
        got);
    EXPECT_EQ(got, expected);  // bitwise, not near
  }
}

TYPED_TEST(SpaceConformance, DeviceRoundTripPreservesKernelOutputBits) {
  // View round trip through DeviceSpace: run the kernel on the space, ship
  // the result host->device->host, and require the exact bit pattern back.
  if constexpr (TestFixture::is_device) {
    constexpr std::size_t n = 256;
    mkk::View<double, 1> host("h", n);
    const TypeParam space{};
    mkk::parallel_for(mkk::RangePolicy<TypeParam>(space, 0, n),
                      [&host](std::size_t i) {
                        host(i) = std::cos(static_cast<double>(i)) / 3.0;
                      });
    mkk::fence(space);

    auto dev = mkk::create_mirror_view(mkk::DeviceSpace{}, host);
    mkk::deep_copy(dev, host);
    auto back = mkk::create_mirror_view(dev);
    mkk::deep_copy(back, dev);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(back(i), host(i));  // bitwise
    }
  }
}

}  // namespace
