// ReplayHpx / ReplicateHpx execution spaces: minikokkos kernels that
// transparently re-execute failed chunks or majority-vote replica partials
// (the hpx-kokkos-resilience model).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "minihpx/resilience/fault_injector.hpp"
#include "minihpx/runtime.hpp"
#include "minikokkos/resilience.hpp"

namespace {

namespace mres = mhpx::resilience;

struct ResilientSpacesTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_F(ResilientSpacesTest, ReplayForRecoversFromChunkFaults) {
  mhpx::instrument::reset_resilience_counters();
  constexpr std::size_t n = 1024;
  std::vector<double> out(n, 0.0);
  std::atomic<int> faults_left{3};
  mkk::ReplayHpx space;
  space.base.chunks = 8;
  space.replays = 5;
  mkk::parallel_for(mkk::RangePolicy<mkk::ReplayHpx>(space, 0, n),
                    [&](std::size_t i) {
                      // The first three chunk executions abort mid-chunk;
                      // their replays rewrite the same indices (idempotent).
                      if (i % 128 == 60 && faults_left.load() > 0 &&
                          faults_left.fetch_sub(1) > 0) {
                        throw mres::injected_fault();
                      }
                      out[i] = 2.0 * static_cast<double>(i);
                    });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], 2.0 * static_cast<double>(i));
  }
  EXPECT_GE(mhpx::instrument::resilience_counters().task_retries, 1u);
}

TEST_F(ResilientSpacesTest, ReplayForExhaustionPropagates) {
  mkk::ReplayHpx space;
  space.base.chunks = 4;
  space.replays = 2;
  EXPECT_THROW(
      mkk::parallel_for(mkk::RangePolicy<mkk::ReplayHpx>(space, 0, 64),
                        [&](std::size_t) {
                          throw mres::injected_fault();
                        }),
      mres::injected_fault);
  EXPECT_GE(mhpx::instrument::resilience_counters().replays_exhausted, 1u);
}

TEST_F(ResilientSpacesTest, ReplayValidatorForcesReexecution) {
  constexpr std::size_t n = 256;
  std::vector<double> out(n, -1.0);
  std::atomic<bool> sabotage{true};
  mkk::ReplayHpx space;
  space.base.chunks = 1;  // one chunk covers the whole range
  space.replays = 3;
  space.validator = [&out, &sabotage](std::size_t b, std::size_t e) {
    (void)b;
    (void)e;
    return !sabotage.exchange(false);  // reject the first execution
  };
  mkk::parallel_for(mkk::RangePolicy<mkk::ReplayHpx>(space, 0, n),
                    [&](std::size_t i) { out[i] = 1.0; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], 1.0);
  }
}

TEST_F(ResilientSpacesTest, ReplayReduceIsExactDespiteRetries) {
  constexpr std::size_t n = 4096;
  std::atomic<int> faults_left{2};
  mkk::ReplayHpx space;
  space.base.chunks = 16;
  space.replays = 4;
  double sum = 0.0;
  mkk::parallel_reduce(
      mkk::RangePolicy<mkk::ReplayHpx>(space, 0, n),
      [&](std::size_t i, double& acc) {
        if (i % 512 == 100 && faults_left.load() > 0 &&
            faults_left.fetch_sub(1) > 0) {
          throw mres::injected_fault();
        }
        acc += static_cast<double>(i);
      },
      sum);
  // A replayed chunk must contribute exactly once: the partial is only
  // merged after the chunk's final successful attempt.
  EXPECT_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST_F(ResilientSpacesTest, ReplayMDRangeCoversAllCells) {
  mkk::ReplayHpx space;
  space.base.chunks = 4;
  std::vector<int> hits(8 * 8 * 8, 0);
  mkk::parallel_for(
      mkk::MDRangePolicy3<mkk::ReplayHpx>(space, {0, 0, 0}, {8, 8, 8}),
      [&](std::size_t i, std::size_t j, std::size_t k) {
        hits[(i * 8 + j) * 8 + k] += 1;
      });
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST_F(ResilientSpacesTest, ReplicateForSurvivesMinorityFailures) {
  constexpr std::size_t n = 512;
  std::vector<double> out(n, 0.0);
  std::atomic<int> crashes{1};
  mkk::ReplicateHpx space;
  space.base.chunks = 2;
  space.replicas = 3;
  mkk::parallel_for(mkk::RangePolicy<mkk::ReplicateHpx>(space, 0, n),
                    [&](std::size_t i) {
                      if (i == 17 && crashes.fetch_sub(1) > 0) {
                        throw mres::injected_fault();
                      }
                      out[i] = std::sqrt(static_cast<double>(i));
                    });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], std::sqrt(static_cast<double>(i)));
  }
}

TEST_F(ResilientSpacesTest, ReplicateReduceOutvotesSilentCorruption) {
  mhpx::instrument::reset_resilience_counters();
  constexpr std::size_t n = 1024;
  // Exactly one replica execution of one chunk produces a corrupted
  // partial; the equality vote across 3 replicas discards it.
  std::atomic<int> corruptions{1};
  mkk::ReplicateHpx space;
  space.base.chunks = 4;
  space.replicas = 3;
  double sum = 0.0;
  mkk::parallel_reduce(
      mkk::RangePolicy<mkk::ReplicateHpx>(space, 0, n),
      [&](std::size_t i, double& acc) {
        double v = static_cast<double>(i);
        if (i == 333 && corruptions.fetch_sub(1) > 0) {
          mres::corrupt_value(v, 0xdeadbeef);  // silent bit flip
        }
        acc += v;
      },
      sum);
  EXPECT_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
  const auto c = mhpx::instrument::resilience_counters();
  EXPECT_EQ(c.replicate_votes, 4u);  // one vote per chunk
  EXPECT_EQ(c.replicate_vote_failures, 0u);
}

TEST_F(ResilientSpacesTest, ReplicateReduceNoMajorityThrows) {
  // Every replica of every chunk produces a different partial: no majority.
  std::atomic<int> salt{0};
  mkk::ReplicateHpx space;
  space.base.chunks = 1;
  space.replicas = 3;
  double sum = 0.0;
  EXPECT_THROW(mkk::parallel_reduce(
                   mkk::RangePolicy<mkk::ReplicateHpx>(space, 0, 16),
                   [&](std::size_t i, double& acc) {
                     if (i == 0) {
                       acc += 1000.0 * salt.fetch_add(1);
                     }
                     acc += static_cast<double>(i);
                   },
                   sum),
               mres::vote_failed);
  EXPECT_GE(mhpx::instrument::resilience_counters().replicate_vote_failures,
            1u);
}

}  // namespace
