// Unit tests for mkk::View (extents, layouts, subviews, deep_copy).

#include <gtest/gtest.h>

#include "minikokkos/view.hpp"

namespace {

TEST(View, Rank1Basics) {
  mkk::View<double, 1> v("v", 10);
  EXPECT_EQ(v.extent(0), 10u);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_TRUE(v.allocated());
  EXPECT_EQ(v.label(), "v");
  v(3) = 2.5;
  EXPECT_DOUBLE_EQ(v(3), 2.5);
  EXPECT_DOUBLE_EQ(v(0), 0.0);  // zero-initialised
}

TEST(View, DefaultConstructedIsUnallocated) {
  mkk::View<int, 2> v;
  EXPECT_FALSE(v.allocated());
  EXPECT_EQ(v.size(), 0u);
}

TEST(View, Rank3IndexingIsBijective) {
  mkk::View<int, 3> v("v", 4, 5, 6);
  int counter = 0;
  v.for_each_index([&](auto i, auto j, auto k) { v(i, j, k) = counter++; });
  counter = 0;
  v.for_each_index([&](auto i, auto j, auto k) {
    EXPECT_EQ(v(i, j, k), counter++);
  });
  EXPECT_EQ(counter, 4 * 5 * 6);
}

TEST(View, LayoutRightStrides) {
  mkk::View<double, 3, mkk::LayoutRight> v("v", 2, 3, 4);
  EXPECT_EQ(v.stride(0), 12u);
  EXPECT_EQ(v.stride(1), 4u);
  EXPECT_EQ(v.stride(2), 1u);
  // Last index is contiguous.
  EXPECT_EQ(&v(0, 0, 1) - &v(0, 0, 0), 1);
}

TEST(View, LayoutLeftStrides) {
  mkk::View<double, 3, mkk::LayoutLeft> v("v", 2, 3, 4);
  EXPECT_EQ(v.stride(0), 1u);
  EXPECT_EQ(v.stride(1), 2u);
  EXPECT_EQ(v.stride(2), 6u);
  // First index is contiguous.
  EXPECT_EQ(&v(1, 0, 0) - &v(0, 0, 0), 1);
}

TEST(View, LayoutsHoldSameLogicalData) {
  mkk::View<int, 2, mkk::LayoutRight> r("r", 3, 4);
  mkk::View<int, 2, mkk::LayoutLeft> l("l", 3, 4);
  int c = 0;
  r.for_each_index([&](auto i, auto j) {
    r(i, j) = c;
    l(i, j) = c;
    ++c;
  });
  r.for_each_index([&](auto i, auto j) { EXPECT_EQ(r(i, j), l(i, j)); });
}

TEST(View, SharedOwnership) {
  mkk::View<double, 1> a("a", 5);
  mkk::View<double, 1> b = a;  // aliases
  b(2) = 9.0;
  EXPECT_DOUBLE_EQ(a(2), 9.0);
  EXPECT_EQ(a, b);
}

TEST(View, Fill) {
  mkk::View<double, 2> v("v", 3, 3);
  v.fill(7.5);
  v.for_each_index([&](auto i, auto j) { EXPECT_DOUBLE_EQ(v(i, j), 7.5); });
}

TEST(View, SubviewAliasesParent) {
  mkk::View<double, 3> v("v", 4, 3, 2);
  int c = 0;
  v.for_each_index(
      [&](auto i, auto j, auto k) { v(i, j, k) = static_cast<double>(c++); });
  auto s = v.subview(2);
  EXPECT_EQ(s.extent(0), 3u);
  EXPECT_EQ(s.extent(1), 2u);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_DOUBLE_EQ(s(j, k), v(2, j, k));
    }
  }
  s(1, 1) = -5.0;
  EXPECT_DOUBLE_EQ(v(2, 1, 1), -5.0);
  EXPECT_TRUE(s.contiguous());
}

TEST(View, SubviewOutOfRangeThrows) {
  mkk::View<double, 2> v("v", 2, 2);
  EXPECT_THROW((void)v.subview(2), std::out_of_range);
}

TEST(View, DeepCopySameLayout) {
  mkk::View<int, 2> a("a", 2, 3);
  mkk::View<int, 2> b("b", 2, 3);
  int c = 0;
  a.for_each_index([&](auto i, auto j) { a(i, j) = c++; });
  mkk::deep_copy(b, a);
  a.for_each_index([&](auto i, auto j) { EXPECT_EQ(b(i, j), a(i, j)); });
}

TEST(View, DeepCopyAcrossLayouts) {
  mkk::View<int, 2, mkk::LayoutRight> a("a", 3, 2);
  mkk::View<int, 2, mkk::LayoutLeft> b("b", 3, 2);
  int c = 0;
  a.for_each_index([&](auto i, auto j) { a(i, j) = c++; });
  mkk::deep_copy(b, a);
  a.for_each_index([&](auto i, auto j) { EXPECT_EQ(b(i, j), a(i, j)); });
}

TEST(View, DeepCopyShapeMismatchThrows) {
  mkk::View<int, 1> a("a", 3);
  mkk::View<int, 1> b("b", 4);
  EXPECT_THROW(mkk::deep_copy(b, a), std::invalid_argument);
}

TEST(View, DeepCopyScalarFill) {
  mkk::View<double, 1> v("v", 4);
  mkk::deep_copy(v, 1.25);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(v(i), 1.25);
  }
}

TEST(View, Rank4) {
  mkk::View<float, 4> v("v", 2, 2, 2, 2);
  EXPECT_EQ(v.size(), 16u);
  v(1, 1, 1, 1) = 3.0F;
  EXPECT_FLOAT_EQ(v(1, 1, 1, 1), 3.0F);
}

}  // namespace
