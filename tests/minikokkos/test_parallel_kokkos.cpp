// Tests for mkk::parallel_for / parallel_reduce across all execution spaces.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "minihpx/runtime.hpp"
#include "minikokkos/minikokkos.hpp"

namespace {

struct KokkosParallelTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_F(KokkosParallelTest, SerialRangeFor) {
  std::vector<int> v(100, 0);
  mkk::parallel_for(mkk::RangePolicy<mkk::Serial>(0, v.size()),
                    [&](std::size_t i) { v[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], static_cast<int>(i));
  }
}

TEST_F(KokkosParallelTest, DefaultSpaceConvenience) {
  std::atomic<int> sum{0};
  mkk::parallel_for(50, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 50);
}

TEST_F(KokkosParallelTest, HpxRangeFor) {
  std::vector<std::atomic<int>> hits(1000);
  mkk::parallel_for(mkk::RangePolicy<mkk::Hpx>(mkk::Hpx{8}, 0, hits.size()),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(KokkosParallelTest, ThreadsRangeFor) {
  std::vector<std::atomic<int>> hits(500);
  mkk::parallel_for(
      mkk::RangePolicy<mkk::Threads>(mkk::Threads{2}, 0, hits.size()),
      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(KokkosParallelTest, RangeSubInterval) {
  std::atomic<long> sum{0};
  mkk::parallel_for(mkk::RangePolicy<mkk::Hpx>(5, 15), [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 95);  // 5+..+14
}

TEST_F(KokkosParallelTest, EmptyRangeIsNoop) {
  mkk::parallel_for(mkk::RangePolicy<mkk::Hpx>(3, 3),
                    [&](std::size_t) { FAIL(); });
  mkk::parallel_for(mkk::RangePolicy<mkk::Serial>(3, 3),
                    [&](std::size_t) { FAIL(); });
}

TEST_F(KokkosParallelTest, MDRange3VisitsAllCells) {
  mkk::View<int, 3> v("v", 8, 8, 8);
  mkk::parallel_for(
      mkk::MDRangePolicy3<mkk::Hpx>({0, 0, 0}, {8, 8, 8}),
      [&](std::size_t i, std::size_t j, std::size_t k) { v(i, j, k) += 1; });
  v.for_each_index([&](auto i, auto j, auto k) { EXPECT_EQ(v(i, j, k), 1); });
}

TEST_F(KokkosParallelTest, MDRange3SubBox) {
  mkk::View<int, 3> v("v", 6, 6, 6);
  mkk::parallel_for(mkk::MDRangePolicy3<mkk::Serial>({1, 2, 3}, {4, 5, 6}),
                    [&](std::size_t i, std::size_t j, std::size_t k) {
                      v(i, j, k) = 1;
                    });
  int count = 0;
  v.for_each_index([&](auto i, auto j, auto k) { count += v(i, j, k); });
  EXPECT_EQ(count, 27);
}

TEST_F(KokkosParallelTest, ReduceSumSerialAndHpxAgree) {
  double serial = 0.0;
  mkk::parallel_reduce(
      mkk::RangePolicy<mkk::Serial>(0, 10000),
      [](std::size_t i, double& acc) { acc += static_cast<double>(i); },
      serial);
  double hpx = 0.0;
  mkk::parallel_reduce(
      mkk::RangePolicy<mkk::Hpx>(0, 10000),
      [](std::size_t i, double& acc) { acc += static_cast<double>(i); }, hpx);
  EXPECT_DOUBLE_EQ(serial, 49995000.0);
  EXPECT_DOUBLE_EQ(hpx, serial);
}

TEST_F(KokkosParallelTest, ReduceMDRange) {
  mkk::View<double, 3> v("v", 4, 4, 4);
  v.fill(0.5);
  double sum = 0.0;
  mkk::parallel_reduce(mkk::MDRangePolicy3<mkk::Hpx>({0, 0, 0}, {4, 4, 4}),
                       [&](std::size_t i, std::size_t j, std::size_t k,
                           double& acc) { acc += v(i, j, k); },
                       sum);
  EXPECT_DOUBLE_EQ(sum, 32.0);
}

TEST_F(KokkosParallelTest, ReduceEmptyRangeYieldsZero) {
  double sum = 99.0;
  mkk::parallel_reduce(mkk::RangePolicy<mkk::Hpx>(7, 7),
                       [](std::size_t, double& acc) { acc += 1.0; }, sum);
  EXPECT_DOUBLE_EQ(sum, 0.0);
}

TEST_F(KokkosParallelTest, AsyncParallelForReturnsFuture) {
  std::vector<std::atomic<int>> hits(200);
  auto f = mkk::async_parallel_for(
      mkk::RangePolicy<mkk::Hpx>(0, hits.size()),
      [&](std::size_t i) { hits[i].fetch_add(1); });
  f.get();
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(KokkosParallelTest, AsyncParallelReduceCarriesResult) {
  auto f = mkk::async_parallel_reduce<long>(
      mkk::RangePolicy<mkk::Serial>(1, 101),
      [](std::size_t i, long& acc) { acc += static_cast<long>(i); });
  EXPECT_EQ(f.get(), 5050);
}

TEST_F(KokkosParallelTest, ConcurrentSerialKernelsUseTaskParallelism) {
  // The paper's point about the Serial space: one kernel per sub-grid,
  // many kernels in flight concurrently => multicore usage without an
  // intra-kernel parallel space. Here: 16 serial kernels as futures.
  std::vector<mhpx::future<void>> futs;
  std::vector<std::atomic<int>> done(16);
  for (int g = 0; g < 16; ++g) {
    futs.push_back(mkk::async_parallel_for(
        mkk::RangePolicy<mkk::Serial>(0, 100),
        [&done, g](std::size_t) { done[static_cast<std::size_t>(g)] = 1; }));
  }
  for (auto& f : futs) {
    f.get();
  }
  for (const auto& d : done) {
    EXPECT_EQ(d.load(), 1);
  }
}

TEST(KokkosNoRuntime, HpxSpaceWithoutRuntimeThrows) {
  EXPECT_THROW(mkk::parallel_for(mkk::RangePolicy<mkk::Hpx>(0, 10),
                                 [](std::size_t) {}),
               std::runtime_error);
}

TEST(KernelType, ToStringCoversAll) {
  EXPECT_EQ(mkk::to_string(mkk::KernelType::legacy), "legacy-hpx");
  EXPECT_EQ(mkk::to_string(mkk::KernelType::kokkos_serial), "kokkos-serial");
  EXPECT_EQ(mkk::to_string(mkk::KernelType::kokkos_hpx), "kokkos-hpx");
}

}  // namespace
