// Tests for the mkk::simd back-compat aliases over rveval::simd (the
// portable lane-array ABIs; the intrinsic backends are covered by
// tests/core/test_simd_conformance.cpp).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "minikokkos/simd.hpp"

namespace {

template <typename Simd>
class SimdTypedTest : public ::testing::Test {};

using SimdWidths =
    ::testing::Types<mkk::simd<double, 1>, mkk::simd<double, 2>,
                     mkk::simd<double, 4>, mkk::simd<double, 8>,
                     mkk::simd<float, 4>>;
TYPED_TEST_SUITE(SimdTypedTest, SimdWidths);

TYPED_TEST(SimdTypedTest, BroadcastAndIndex) {
  TypeParam v(3);
  for (std::size_t i = 0; i < TypeParam::size(); ++i) {
    EXPECT_EQ(v[i], typename TypeParam::value_type(3));
  }
}

TYPED_TEST(SimdTypedTest, Arithmetic) {
  using T = typename TypeParam::value_type;
  TypeParam a(6);
  TypeParam b(2);
  EXPECT_EQ((a + b)[0], T(8));
  EXPECT_EQ((a - b)[0], T(4));
  EXPECT_EQ((a * b)[0], T(12));
  EXPECT_EQ((a / b)[0], T(3));
  EXPECT_EQ((-a)[0], T(-6));
}

TYPED_TEST(SimdTypedTest, CompoundAssign) {
  using T = typename TypeParam::value_type;
  TypeParam a(1);
  a += TypeParam(2);
  a *= TypeParam(3);
  a -= TypeParam(4);
  a /= TypeParam(5);
  EXPECT_EQ(a[TypeParam::size() - 1], T(1));
}

TYPED_TEST(SimdTypedTest, LoadStoreRoundTrip) {
  // std::vector storage has no vector-width alignment guarantee, so the
  // unaligned pair is the correct API here (load/store assert alignment).
  using T = typename TypeParam::value_type;
  std::vector<T> src(TypeParam::size());
  for (std::size_t i = 0; i < TypeParam::size(); ++i) {
    src[i] = static_cast<T>(i + 1);
  }
  auto v = TypeParam::load_unaligned(src.data());
  std::vector<T> dst(TypeParam::size());
  v.store_unaligned(dst.data());
  EXPECT_EQ(src, dst);
}

TYPED_TEST(SimdTypedTest, AlignedLoadStoreRoundTrip) {
  using T = typename TypeParam::value_type;
  alignas(64) T src[TypeParam::size()];
  for (std::size_t i = 0; i < TypeParam::size(); ++i) {
    src[i] = static_cast<T>(i + 1);
  }
  ASSERT_TRUE(TypeParam::is_aligned(src));
  auto v = TypeParam::load(src);
  alignas(64) T dst[TypeParam::size()];
  v.store(dst);
  for (std::size_t i = 0; i < TypeParam::size(); ++i) {
    EXPECT_EQ(src[i], dst[i]);
  }
}

TYPED_TEST(SimdTypedTest, FmaMatchesScalar) {
  using T = typename TypeParam::value_type;
  TypeParam a(3);
  TypeParam b(4);
  TypeParam c(5);
  auto r = fma(a, b, c);
  for (std::size_t i = 0; i < TypeParam::size(); ++i) {
    EXPECT_EQ(r[i], T(17));
  }
}

TYPED_TEST(SimdTypedTest, MinMaxAbsSqrt) {
  using T = typename TypeParam::value_type;
  TypeParam a(-4);
  TypeParam b(9);
  EXPECT_EQ(max(a, b)[0], T(9));
  EXPECT_EQ(min(a, b)[0], T(-4));
  EXPECT_EQ(abs(a)[0], T(4));
  EXPECT_EQ(sqrt(b)[0], T(3));
}

TYPED_TEST(SimdTypedTest, Reductions) {
  using T = typename TypeParam::value_type;
  std::vector<T> src(TypeParam::size());
  for (std::size_t i = 0; i < TypeParam::size(); ++i) {
    src[i] = static_cast<T>(i + 1);
  }
  auto v = TypeParam::load_unaligned(src.data());
  const auto n = static_cast<int>(TypeParam::size());
  EXPECT_EQ(v.reduce_sum(), static_cast<T>(n * (n + 1) / 2));
  EXPECT_EQ(v.reduce_max(), static_cast<T>(n));
}

TYPED_TEST(SimdTypedTest, SelectAndCompare) {
  using T = typename TypeParam::value_type;
  TypeParam a(2);
  TypeParam b(5);
  auto m = a < b;
  EXPECT_TRUE(m.all());
  EXPECT_FALSE((a > b).any());
  auto r = select(m, a, b);
  EXPECT_EQ(r[0], T(2));
  auto r2 = select(!m, a, b);
  EXPECT_EQ(r2[0], T(5));
}

TEST(SimdNative, WidthMatchesArchitecture) {
  // On the x86-64 build host the native width must be >= 2; the scalar ABI
  // is always width 1 (what a vectorless U74-MC would use).
  EXPECT_GE(mkk::native_double_width, 1);
  EXPECT_EQ(mkk::scalar_simd_double::size(), 1u);
#if RVEVAL_SIMD_HAS_AVX2
  EXPECT_EQ(mkk::native_simd_double::size(), 4u);
#endif
}

TEST(SimdNative, VectorisedDotProductMatchesScalar) {
  constexpr std::size_t n = 1024;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = 0.5 + static_cast<double>(i % 13);
    b[i] = 1.5 - static_cast<double>(i % 7);
  }
  double scalar = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scalar += a[i] * b[i];
  }
  using V = mkk::native_simd_double;
  V acc(0.0);
  const std::size_t w = V::size();
  for (std::size_t i = 0; i < n; i += w) {
    acc = fma(V::load_unaligned(&a[i]), V::load_unaligned(&b[i]), acc);
  }
  EXPECT_NEAR(acc.reduce_sum(), scalar, std::abs(scalar) * 1e-12);
}

}  // namespace
