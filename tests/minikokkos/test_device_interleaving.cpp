// DetScheduler-driven interleaving tests for device streams (ctest labels:
// device;simtest): tasks racing to enqueue on the modelled device must
// never break per-stream FIFO order, and the *kernel results* must be
// bit-identical across every explored schedule — stream interleaving is a
// performance degree of freedom, not a correctness one.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "minihpx/runtime.hpp"
#include "minihpx/testing/det.hpp"
#include "minikokkos/minikokkos.hpp"

namespace {

using mhpx::testing::DetConfig;
using mhpx::testing::det_run;
using mkk::device::Device;

struct DeviceInterleaving : ::testing::Test {
  void SetUp() override {
    Device::instance().set_fault_injector(nullptr);
    Device::instance().reset();
  }
  void TearDown() override { Device::instance().reset(); }
};

// One det run: `posters` tasks each enqueue `per_task` ordered kernels onto
// their own stream, racing through the deterministic scheduler. Returns the
// per-stream observation logs.
std::vector<std::vector<int>> race_streams(std::uint64_t seed,
                                           unsigned posters,
                                           int per_task) {
  Device::instance().reset();
  std::vector<std::vector<int>> logs(posters);
  DetConfig cfg;
  cfg.seed = seed;
  const auto r = det_run(cfg, [&logs, posters, per_task] {
    for (unsigned s = 0; s < posters; ++s) {
      mhpx::post([&logs, s, per_task] {
        for (int op = 0; op < per_task; ++op) {
          mkk::parallel_for(
              mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{s}, 0, 1),
              [&logs, s, op](std::size_t) { logs[s].push_back(op); });
        }
      });
    }
    mkk::fence();
  });
  EXPECT_FALSE(r.failed);
  Device::instance().fence();
  return logs;
}

TEST_F(DeviceInterleaving, StreamFifoHoldsUnderEverySeed) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto logs = race_streams(seed, 3, 12);
    for (const auto& log : logs) {
      ASSERT_EQ(log.size(), 12u) << "seed " << seed;
      for (int op = 0; op < 12; ++op) {
        EXPECT_EQ(log[static_cast<std::size_t>(op)], op)
            << "FIFO violated under seed " << seed;
      }
    }
  }
}

TEST_F(DeviceInterleaving, KernelResultsAreScheduleInvariant) {
  constexpr std::size_t n = 128;
  std::vector<double> baseline;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Device::instance().reset();
    std::vector<double> out(n, 0.0);
    DetConfig cfg;
    cfg.seed = seed;
    const auto r = det_run(cfg, [&out] {
      // Two tasks race: a producer kernel on stream 0 and a consumer kernel
      // on stream 1 gated by a cross-stream event recorded *after* the
      // producer — every schedule must agree on the final values.
      auto& dev = Device::instance();
      mkk::parallel_for(
          mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{0}, 0, n),
          [&out](std::size_t i) { out[i] = static_cast<double>(i); });
      const auto ev = dev.record_event(0);
      dev.wait_event(1, ev);
      mkk::parallel_for(
          mkk::RangePolicy<mkk::DeviceExec>(mkk::DeviceExec{1}, 0, n),
          [&out](std::size_t i) { out[i] = 2.0 * out[i] + 1.0; });
      mkk::fence();
    });
    EXPECT_FALSE(r.failed) << "seed " << seed;
    Device::instance().fence();
    if (baseline.empty()) {
      baseline = out;
    } else {
      EXPECT_EQ(out, baseline) << "seed " << seed;  // bitwise
    }
  }
  ASSERT_EQ(baseline.size(), n);
  EXPECT_EQ(baseline[10], 21.0);
}

TEST_F(DeviceInterleaving, ReplayUnderRacingSchedulesStaysExact) {
  // Replay launches raced across streams. Every kernel launch consumes one
  // fault decision, and each launch's attempts are consecutive decisions
  // (the replay loop runs inside one op), so with fault_every=2 each launch
  // either starts on an odd decision (clean) or an even one (fault + one
  // replay) — 3 launches always cost exactly 2 faults and 2 replays, no
  // matter which schedule the seed picks.
  constexpr std::size_t n = 64;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Device::instance().reset();
    mhpx::resilience::FaultInjector injector({.fault_every = 2});
    Device::instance().set_fault_injector(&injector);
    std::vector<double> out(2 * n, 0.0);
    DetConfig cfg;
    cfg.seed = seed;
    const auto r = det_run(cfg, [&out] {
      mhpx::post([&out] {
        mkk::ReplayDevice space;
        space.base.stream = 0;
        for (int launch = 0; launch < 2; ++launch) {
          mkk::parallel_for(mkk::RangePolicy<mkk::ReplayDevice>(space, 0, n),
                            [&out](std::size_t i) {
                              out[i] = static_cast<double>(i) + 0.5;
                            });
        }
      });
      mhpx::post([&out] {
        mkk::ReplayDevice space;
        space.base.stream = 1;
        mkk::parallel_for(mkk::RangePolicy<mkk::ReplayDevice>(space, 0, n),
                          [&out](std::size_t i) {
                            out[n + i] = static_cast<double>(i) - 0.5;
                          });
      });
      mkk::fence();
    });
    EXPECT_FALSE(r.failed) << "seed " << seed;
    Device::instance().fence();
    Device::instance().set_fault_injector(nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], static_cast<double>(i) + 0.5);
      EXPECT_EQ(out[n + i], static_cast<double>(i) - 0.5);
    }
    EXPECT_EQ(Device::instance().totals().faults, 2u) << "seed " << seed;
    EXPECT_EQ(Device::instance().totals().replays, 2u) << "seed " << seed;
    EXPECT_EQ(Device::instance().totals().launches, 5u) << "seed " << seed;
  }
}

}  // namespace
