// Tests for the hierarchical TeamPolicy subset.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "minihpx/runtime.hpp"
#include "minikokkos/team.hpp"

namespace {

struct TeamTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_F(TeamTest, EveryTeamThreadPairRunsOnce) {
  constexpr std::size_t league = 8;
  constexpr unsigned team = 4;
  std::vector<std::atomic<int>> hits(league * team);
  mkk::parallel_for(mkk::TeamPolicy<mkk::Hpx>(league, team),
                    [&](const mkk::TeamMember& m) {
                      hits[m.league_rank() * team + m.team_rank()]
                          .fetch_add(1);
                    });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(TeamTest, MemberIdentities) {
  mkk::parallel_for(mkk::TeamPolicy<mkk::Serial>(3, 2),
                    [&](const mkk::TeamMember& m) {
                      EXPECT_LT(m.league_rank(), 3u);
                      EXPECT_LT(m.team_rank(), 2u);
                      EXPECT_EQ(m.team_size(), 2u);
                    });
}

TEST_F(TeamTest, TeamThreadRangeCoversExactly) {
  constexpr std::size_t n = 37;
  constexpr unsigned team = 4;
  std::vector<std::atomic<int>> hits(n);
  mkk::parallel_for(mkk::TeamPolicy<mkk::Serial>(1, team),
                    [&](const mkk::TeamMember& m) {
                      mkk::team_thread_range(m, n, [&](std::size_t i) {
                        hits[i].fetch_add(1);
                      });
                    });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(TeamTest, TeamReduction) {
  constexpr std::size_t league = 6;
  constexpr unsigned team = 3;
  std::vector<long> per_team(league, 0);
  // Each team sums its slice of [0, 90): league r gets [15r, 15(r+1)).
  mkk::parallel_for(
      mkk::TeamPolicy<mkk::Hpx>(league, team),
      [&](const mkk::TeamMember& m) {
        long local = 0;
        mkk::team_thread_range(m, 15, [&](std::size_t i) {
          local += static_cast<long>(m.league_rank() * 15 + i);
        });
        mkk::team_reduce_add(m, local, per_team[m.league_rank()]);
      });
  long total = 0;
  for (const long t : per_team) {
    total += t;
  }
  EXPECT_EQ(total, 89 * 90 / 2);
}

TEST_F(TeamTest, NestedTeamsMatchFlatLoop) {
  // A blocked matrix-vector product via teams equals the flat computation.
  constexpr std::size_t rows = 32;
  constexpr std::size_t cols = 16;
  std::vector<double> a(rows * cols);
  std::vector<double> x(cols);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<double>(i % 7) * 0.25;
  }
  for (std::size_t j = 0; j < cols; ++j) {
    x[j] = 1.0 + static_cast<double>(j % 3);
  }
  std::vector<double> flat(rows, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      flat[i] += a[i * cols + j] * x[j];
    }
  }
  std::vector<double> teamed(rows, 0.0);
  mkk::parallel_for(mkk::TeamPolicy<mkk::Hpx>(rows, 4),
                    [&](const mkk::TeamMember& m) {
                      const std::size_t i = m.league_rank();
                      double local = 0.0;
                      mkk::team_thread_range(m, cols, [&](std::size_t j) {
                        local += a[i * cols + j] * x[j];
                      });
                      mkk::team_reduce_add(m, local, teamed[i]);
                    });
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(teamed[i], flat[i], 1e-12);
  }
}

TEST_F(TeamTest, EmptyLeagueIsNoop) {
  mkk::parallel_for(mkk::TeamPolicy<mkk::Hpx>(0, 4),
                    [&](const mkk::TeamMember&) { FAIL(); });
}

}  // namespace
