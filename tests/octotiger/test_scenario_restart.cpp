// Checkpoint/restore of in-flight merger state (ctest labels: scenario,
// resilience).
//
// A binary_merger run interrupted mid-orbit at a non-regrid step and
// restarted from its restart file must continue *bit-for-bit identically*
// to a run that was never interrupted — per-cell over shared memory, and
// at the conserved-totals level across all three distributed fabrics
// (inproc/tcp/mpisim) through the new DistSimulation::write_checkpoint /
// restore_from surface. A resilient merger run that loses parcels on top
// of this must also land on the same bits.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <unistd.h>

#include "core/testing/seed_env.hpp"
#include "minihpx/distributed/fabric.hpp"
#include "minihpx/resilience/fabric_faulty.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/testing/det.hpp"
#include "octotiger/checkpoint.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace {

using namespace octo;
namespace md = mhpx::dist;
namespace mres = mhpx::resilience;

Options merger(unsigned localities) {
  Options opt;
  scenario::apply(opt, "binary_merger");
  opt.max_level = 1;
  opt.stop_step = 4;
  opt.threads = 2;
  opt.localities = localities;
  return opt;
}

std::string ckpt_path(const std::string& tag) {
  std::ostringstream os;
  os << "octo_scenario_restart_" << tag << "_" << ::getpid() << ".ckpt";
  return os.str();
}

const char* fabric_name(md::FabricKind k) {
  switch (k) {
    case md::FabricKind::inproc:
      return "inproc";
    case md::FabricKind::tcp:
      return "tcp";
    case md::FabricKind::mpisim:
      return "mpisim";
  }
  return "?";
}

auto det_factory(md::FabricKind kind) {
  return [kind] {
    return md::make_deterministic_fabric(md::make_fabric(kind));
  };
}

struct DistOutcome {
  Cons totals;
  RunStats stats;
};

// ----------------------------------------------------- distributed restart

class ScenarioRestartFabric : public ::testing::TestWithParam<md::FabricKind> {
};

TEST_P(ScenarioRestartFabric, MidOrbitRestartContinuesBitIdentically) {
  const md::FabricKind kind = GetParam();
  const std::uint64_t seed = rveval::testing::sched_seed();

  // Reference: the uninterrupted 4-step orbit.
  DistOutcome ref;
  {
    mhpx::testing::ScopedDetScheduling guard(seed);
    dist::DistSimulation sim(merger(2), kind, dist::ResilienceConfig{},
                             det_factory(kind));
    sim.run();
    ref.totals = sim.totals();
    ref.stats = sim.stats();
  }

  // Interrupted run: two steps, gather + write the restart file, tear the
  // whole cluster down, then restore into a fresh cluster and finish.
  const std::string path = ckpt_path(fabric_name(kind));
  DistOutcome resumed;
  {
    mhpx::testing::ScopedDetScheduling guard(seed);
    {
      dist::DistSimulation sim(merger(2), kind, dist::ResilienceConfig{},
                               det_factory(kind));
      sim.step();
      sim.step();
      sim.write_checkpoint(path);
    }
    dist::DistSimulation sim(merger(2), kind, dist::ResilienceConfig{},
                             det_factory(kind));
    sim.restore_from(path);
    EXPECT_EQ(sim.stats().steps, 2u);
    sim.run();  // runs until stop_step, i.e. two more steps
    resumed.totals = sim.totals();
    resumed.stats = sim.stats();
  }
  std::remove(path.c_str());

  const std::string ctx = std::string(fabric_name(kind)) + " " +
                          rveval::testing::seed_env().repro_line();
  EXPECT_EQ(resumed.totals.rho, ref.totals.rho) << ctx;
  EXPECT_EQ(resumed.totals.sx, ref.totals.sx) << ctx;
  EXPECT_EQ(resumed.totals.sy, ref.totals.sy) << ctx;
  EXPECT_EQ(resumed.totals.sz, ref.totals.sz) << ctx;
  EXPECT_EQ(resumed.totals.egas, ref.totals.egas) << ctx;
  EXPECT_EQ(resumed.stats.steps, ref.stats.steps) << ctx;
  EXPECT_EQ(resumed.stats.sim_time, ref.stats.sim_time) << ctx;
  EXPECT_EQ(resumed.stats.last_dt, ref.stats.last_dt) << ctx;
}

TEST_P(ScenarioRestartFabric, RestoreRejectsMismatchedMesh) {
  const md::FabricKind kind = GetParam();
  const std::string path = ckpt_path(std::string("mesh_") +
                                     fabric_name(kind));
  {
    dist::DistSimulation sim(merger(2), kind, dist::ResilienceConfig{},
                             det_factory(kind));
    sim.write_checkpoint(path);
  }
  Options deeper = merger(2);
  deeper.max_level = 2;
  dist::DistSimulation sim(deeper, kind, dist::ResilienceConfig{},
                           det_factory(kind));
  EXPECT_THROW(sim.restore_from(path), std::runtime_error);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllFabrics, ScenarioRestartFabric,
                         ::testing::Values(md::FabricKind::inproc,
                                           md::FabricKind::tcp,
                                           md::FabricKind::mpisim),
                         [](const ::testing::TestParamInfo<md::FabricKind>& i) {
                           return fabric_name(i.param);
                         });

// --------------------------------------------------- shared-memory restart

TEST(ScenarioRestart, SharedMemoryMidOrbitRestartIsPerCellBitIdentical) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  const Options opt = merger(1);

  Simulation full(opt);
  full.run();

  const std::string path = ckpt_path("shm");
  Simulation head(opt);
  head.step();
  head.step();
  save_checkpoint(head, path);
  Simulation tail = load_checkpoint(path);
  std::remove(path.c_str());
  ASSERT_EQ(tail.stats().steps, 2u);
  while (tail.stats().steps < opt.stop_step) {
    tail.step();
  }

  ASSERT_EQ(tail.tree().leaf_count(), full.tree().leaf_count());
  std::size_t mismatched = 0;
  auto fl = full.tree().leaves();
  auto tl = tail.tree().leaves();
  for (std::size_t n = 0; n < fl.size(); ++n) {
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            if (fl[n]->grid.u(f, i, j, k) != tl[n]->grid.u(f, i, j, k)) {
              ++mismatched;
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(mismatched, 0u);
  EXPECT_EQ(tail.stats().sim_time, full.stats().sim_time);
  EXPECT_EQ(tail.stats().last_dt, full.stats().last_dt);
}

// ------------------------------------------------ resilient merger recovery

TEST(ScenarioRestart, ResilientMergerSurvivesParcelLossBitIdentically) {
  const std::uint64_t seed = rveval::testing::sched_seed();

  DistOutcome ref;
  {
    mhpx::testing::ScopedDetScheduling guard(seed);
    dist::DistSimulation sim(merger(2), md::FabricKind::inproc,
                             dist::ResilienceConfig{},
                             det_factory(md::FabricKind::inproc));
    sim.run();
    ref.totals = sim.totals();
    ref.stats = sim.stats();
  }

  dist::ResilienceConfig res;
  res.enabled = true;
  const double scale = rveval::testing::timeout_scale();
  res.rpc_timeout_s = 0.05 * scale;
  res.heartbeat_timeout_s = 0.1 * scale;
  res.backoff_initial_s = 0.001;
  res.backoff_cap_s = 0.01;

  dist::DistSimulation sim(merger(2), md::FabricKind::inproc, res, [] {
    mres::FaultConfig fc;
    fc.drop_rate = 0.03;
    fc.seed = 0xd5;
    return mres::make_faulty_fabric(md::FabricKind::inproc, fc);
  });
  sim.run();
  const Cons t = sim.totals();
  const std::string ctx = rveval::testing::seed_env().repro_line();
  EXPECT_EQ(t.rho, ref.totals.rho) << ctx;
  EXPECT_EQ(t.sx, ref.totals.sx) << ctx;
  EXPECT_EQ(t.sy, ref.totals.sy) << ctx;
  EXPECT_EQ(t.sz, ref.totals.sz) << ctx;
  EXPECT_EQ(t.egas, ref.totals.egas) << ctx;
  EXPECT_EQ(sim.stats().steps, ref.stats.steps) << ctx;
  EXPECT_EQ(sim.stats().sim_time, ref.stats.sim_time) << ctx;
}

}  // namespace
