// Checkpoint/restart tests: a restored simulation continues bit-identically
// to an uninterrupted one.
//
// The round-trip check is property-based: save/load/save is exercised over
// generated octree shapes (uniform meshes, partial refinement, binaries)
// and asserted to be both lossless (bitwise state equality) and idempotent
// (the re-saved file is byte-identical). A failing shape prints its
// RVEVAL_PROP_SEED replay line.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "../support/octo_gen.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/testing/property.hpp"
#include "octotiger/checkpoint.hpp"
#include "octotiger/driver.hpp"

namespace {

using namespace octo;
namespace prop = mhpx::testing::prop;

std::string slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct CheckpointTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 128 * 1024}};
  void TearDown() override {
    std::remove("test_restart.chk");
    std::remove("test_restart2.chk");
  }

  static Options small() {
    Options opt;
    opt.max_level = 1;
    opt.refine_radius = 10.0;
    opt.stop_step = 4;
    return opt;
  }
};

TEST_F(CheckpointTest, RoundTripIsLosslessAndIdempotentOnGeneratedShapes) {
  const auto result = prop::for_all(0x5eed, 5, [](prop::Gen& g) {
    Options opt = octo::testing::gen_octree_shape(g);
    Simulation sim(opt);
    const unsigned steps = static_cast<unsigned>(g.index(3));  // 0..2
    for (unsigned s = 0; s < steps; ++s) {
      sim.step();
    }
    save_checkpoint(sim, "test_restart.chk");
    Simulation restored = load_checkpoint("test_restart.chk");

    prop::require(restored.options().problem == opt.problem,
                  "problem kind lost in the round trip");
    prop::require(restored.stats().steps == steps, "step counter lost");
    prop::require(restored.stats().sim_time == sim.stats().sim_time,
                  "sim_time not restored bitwise");
    prop::require(restored.tree().leaf_count() == sim.tree().leaf_count(),
                  "mesh shape lost in the round trip");
    for (std::size_t l = 0; l < sim.tree().leaf_count(); ++l) {
      const auto& a = sim.tree().leaves()[l]->grid;
      const auto& b = restored.tree().leaves()[l]->grid;
      for (std::size_t f = 0; f < NF; ++f) {
        for (std::size_t i = 0; i < NX; ++i) {
          for (std::size_t j = 0; j < NX; ++j) {
            for (std::size_t k = 0; k < NX; ++k) {
              prop::require(a.u(f, i, j, k) == b.u(f, i, j, k),
                            "field " + std::to_string(f) +
                                " not restored bitwise in leaf " +
                                std::to_string(l));
            }
          }
        }
      }
    }

    // Idempotence: re-saving the restored state reproduces the file.
    save_checkpoint(restored, "test_restart2.chk");
    prop::require(slurp("test_restart.chk") == slurp("test_restart2.chk"),
                  "save(load(save(x))) produced different bytes");
    std::remove("test_restart.chk");
    std::remove("test_restart2.chk");
  });
  EXPECT_TRUE(result) << result.message;
}

TEST_F(CheckpointTest, RestartContinuesBitIdentically) {
  // Path A: 4 uninterrupted steps.
  Simulation uninterrupted(small());
  uninterrupted.run();

  // Path B: 2 steps, checkpoint, restore, 2 more steps.
  Simulation first_half(small());
  first_half.step();
  first_half.step();
  save_checkpoint(first_half, "test_restart.chk");
  Simulation second_half = load_checkpoint("test_restart.chk");
  second_half.step();
  second_half.step();

  EXPECT_EQ(second_half.stats().steps, 4u);
  EXPECT_EQ(second_half.stats().sim_time, uninterrupted.stats().sim_time);
  for (std::size_t l = 0; l < uninterrupted.tree().leaf_count(); ++l) {
    const auto& a = uninterrupted.tree().leaves()[l]->grid;
    const auto& b = second_half.tree().leaves()[l]->grid;
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            ASSERT_EQ(a.u(f, i, j, k), b.u(f, i, j, k))
                << "leaf " << l << " field " << f;
          }
        }
      }
    }
  }
}

TEST_F(CheckpointTest, RejectsCorruptFiles) {
  {
    std::FILE* f = std::fopen("test_restart.chk", "wb");
    const char junk[] = "this is not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW((void)load_checkpoint("test_restart.chk"),
               std::runtime_error);
  EXPECT_THROW((void)load_checkpoint("/nonexistent/file.chk"),
               std::runtime_error);
}

}  // namespace
