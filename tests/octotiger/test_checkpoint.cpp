// Checkpoint/restart tests: a restored simulation continues bit-identically
// to an uninterrupted one.

#include <gtest/gtest.h>

#include <cstdio>

#include "minihpx/runtime.hpp"
#include "octotiger/checkpoint.hpp"
#include "octotiger/driver.hpp"

namespace {

using namespace octo;

struct CheckpointTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 128 * 1024}};
  void TearDown() override { std::remove("test_restart.chk"); }

  static Options small() {
    Options opt;
    opt.max_level = 1;
    opt.refine_radius = 10.0;
    opt.stop_step = 4;
    return opt;
  }
};

TEST_F(CheckpointTest, RoundTripPreservesStateBitwise) {
  Simulation sim(small());
  sim.step();
  sim.step();
  save_checkpoint(sim, "test_restart.chk");
  Simulation restored = load_checkpoint("test_restart.chk");

  EXPECT_EQ(restored.stats().steps, 2u);
  EXPECT_EQ(restored.stats().sim_time, sim.stats().sim_time);
  EXPECT_EQ(restored.tree().leaf_count(), sim.tree().leaf_count());
  for (std::size_t l = 0; l < sim.tree().leaf_count(); ++l) {
    const auto& a = sim.tree().leaves()[l]->grid;
    const auto& b = restored.tree().leaves()[l]->grid;
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        EXPECT_EQ(a.u(f, i, i, i), b.u(f, i, i, i));
      }
    }
  }
}

TEST_F(CheckpointTest, RestartContinuesBitIdentically) {
  // Path A: 4 uninterrupted steps.
  Simulation uninterrupted(small());
  uninterrupted.run();

  // Path B: 2 steps, checkpoint, restore, 2 more steps.
  Simulation first_half(small());
  first_half.step();
  first_half.step();
  save_checkpoint(first_half, "test_restart.chk");
  Simulation second_half = load_checkpoint("test_restart.chk");
  second_half.step();
  second_half.step();

  EXPECT_EQ(second_half.stats().steps, 4u);
  EXPECT_EQ(second_half.stats().sim_time, uninterrupted.stats().sim_time);
  for (std::size_t l = 0; l < uninterrupted.tree().leaf_count(); ++l) {
    const auto& a = uninterrupted.tree().leaves()[l]->grid;
    const auto& b = second_half.tree().leaves()[l]->grid;
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            ASSERT_EQ(a.u(f, i, j, k), b.u(f, i, j, k))
                << "leaf " << l << " field " << f;
          }
        }
      }
    }
  }
}

TEST_F(CheckpointTest, RejectsCorruptFiles) {
  {
    std::FILE* f = std::fopen("test_restart.chk", "wb");
    const char junk[] = "this is not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW((void)load_checkpoint("test_restart.chk"),
               std::runtime_error);
  EXPECT_THROW((void)load_checkpoint("/nonexistent/file.chk"),
               std::runtime_error);
}

TEST_F(CheckpointTest, BinaryProblemRoundTrips) {
  Options opt = small();
  opt.problem = Options::Problem::binary_star;
  opt.max_level = 2;
  Simulation sim(opt);
  sim.step();
  save_checkpoint(sim, "test_restart.chk");
  Simulation restored = load_checkpoint("test_restart.chk");
  EXPECT_EQ(restored.options().problem, Options::Problem::binary_star);
  EXPECT_EQ(restored.totals().rho, sim.totals().rho);
}

}  // namespace
