// Metamorphic equivalence across parcelports (ctest label: simtest).
//
// The metamorphic relation: the rotating-star driver's physics is a pure
// function of (options, seed) — the transport underneath is an
// implementation detail. Under a fixed ScopedDetScheduling seed and the
// deterministic fabric decorator (which delivers frames in global send
// order whatever the inner transport reorders), a distributed run must
// produce bit-identical conserved totals and time steps whether the parcels
// travel in-process, over real TCP sockets, or through the MPI simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>

#include "core/testing/seed_env.hpp"
#include "minihpx/apex/task_trace.hpp"
#include "minihpx/distributed/fabric.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/testing/det.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/driver.hpp"

namespace {

using namespace octo;
namespace md = mhpx::dist;

Options small_star(unsigned localities) {
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;  // uniform 8-leaf mesh
  opt.stop_step = 2;
  opt.threads = 2;
  opt.localities = localities;
  return opt;
}

struct RunResult {
  double rho = 0.0;
  double egas = 0.0;
  double last_dt = 0.0;
  unsigned steps = 0;
};

/// One distributed run: deterministic scheduling everywhere (every
/// scheduler the runtime creates picks tasks from the seeded stream) and a
/// globally-ordered parcelport on top of the requested transport.
RunResult run_star(md::FabricKind kind, std::uint64_t seed) {
  mhpx::testing::ScopedDetScheduling guard(seed);
  dist::DistSimulation sim(
      small_star(2), kind, dist::ResilienceConfig{},
      [kind] { return md::make_deterministic_fabric(md::make_fabric(kind)); });
  sim.run();
  RunResult r;
  r.rho = sim.totals().rho;
  r.egas = sim.totals().egas;
  r.last_dt = sim.stats().last_dt;
  r.steps = sim.stats().steps;
  return r;
}

TEST(Metamorphic, StarRunIsBitIdenticalAcrossFabrics) {
  const std::uint64_t seed = rveval::testing::sched_seed();
  const auto inproc = run_star(md::FabricKind::inproc, seed);
  const auto tcp = run_star(md::FabricKind::tcp, seed);
  const auto mpisim = run_star(md::FabricKind::mpisim, seed);

  ASSERT_EQ(inproc.steps, 2u);
  // Bitwise, not approximate: the transports must be unobservable.
  EXPECT_EQ(inproc.rho, tcp.rho) << rveval::testing::seed_env().repro_line();
  EXPECT_EQ(inproc.egas, tcp.egas);
  EXPECT_EQ(inproc.last_dt, tcp.last_dt);
  EXPECT_EQ(inproc.rho, mpisim.rho)
      << rveval::testing::seed_env().repro_line();
  EXPECT_EQ(inproc.egas, mpisim.egas);
  EXPECT_EQ(inproc.last_dt, mpisim.last_dt);
}

TEST(Metamorphic, StarRunIsReproducibleRunToRun) {
  const std::uint64_t seed = rveval::testing::sched_seed();
  const auto a = run_star(md::FabricKind::tcp, seed);
  const auto b = run_star(md::FabricKind::tcp, seed);
  EXPECT_EQ(a.rho, b.rho) << rveval::testing::seed_env().repro_line();
  EXPECT_EQ(a.egas, b.egas);
  EXPECT_EQ(a.last_dt, b.last_dt);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(Metamorphic, TracingIsInvisibleToThePhysics) {
  // Observability must observe, not perturb: with distributed tracing
  // enabled (trace-context-stamped parcels, flow events, per-pid spans) the
  // physics is bit-identical to the tracing-off run on every fabric. The
  // parcel header carries its trace fields unconditionally, so frame sizes
  // — and therefore every transport decision — cannot depend on the switch.
  const std::uint64_t seed = rveval::testing::sched_seed();
  for (const md::FabricKind kind :
       {md::FabricKind::inproc, md::FabricKind::tcp, md::FabricKind::mpisim}) {
    const bool was_enabled = mhpx::apex::trace::enabled();
    mhpx::apex::trace::enable(false);
    const auto off = run_star(kind, seed);

    mhpx::apex::trace::enable(true);
    const auto on = run_star(kind, seed);
    mhpx::apex::trace::enable(false);
    EXPECT_GT(mhpx::apex::trace::event_count(), 0u)
        << "tracing-on run recorded nothing";
    mhpx::apex::trace::clear();
    mhpx::apex::trace::enable(was_enabled);

    EXPECT_EQ(off.rho, on.rho)
        << md::to_string(kind) << " " << rveval::testing::seed_env().repro_line();
    EXPECT_EQ(off.egas, on.egas) << md::to_string(kind);
    EXPECT_EQ(off.last_dt, on.last_dt) << md::to_string(kind);
    EXPECT_EQ(off.steps, on.steps) << md::to_string(kind);
  }
}

TEST(Metamorphic, DeterministicHarnessPreservesThePhysics) {
  // The harness must observe, not perturb: a det-scheduled, det-fabric run
  // agrees with the plain shared-memory reference to the same tolerance the
  // ordinary distributed tests use.
  double ref_mass = 0.0;
  double ref_dt = 0.0;
  {
    mhpx::Runtime rt{{2, 128 * 1024}};
    Simulation ref(small_star(1));
    ref.run();
    ref_mass = ref.totals().rho;
    ref_dt = ref.stats().last_dt;
  }
  const auto det = run_star(md::FabricKind::inproc, 0x5eed);
  EXPECT_NEAR(det.rho, ref_mass, 1e-10 * ref_mass);
  EXPECT_NEAR(det.last_dt, ref_dt, 1e-12);
}

}  // namespace
