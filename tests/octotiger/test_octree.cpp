// Tests for the adaptive octree: construction, refinement, containment,
// sampling, ghost filling, and options parsing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "octotiger/octree.hpp"
#include "octotiger/options.hpp"

namespace {

TEST(Octree, Level0IsSingleLeaf) {
  octo::Octree t(0, 0.45);
  EXPECT_EQ(t.leaf_count(), 1u);
  EXPECT_EQ(t.total_cells(), octo::CELLS_PER_GRID);
  EXPECT_TRUE(t.root().is_leaf());
  EXPECT_TRUE(t.root().grid.allocated());
}

TEST(Octree, Level1RefinesCenterRegion) {
  octo::Octree t(1, 0.45);
  // The root intersects the refine sphere, so it splits into 8 children.
  EXPECT_EQ(t.leaf_count(), 8u);
  EXPECT_FALSE(t.root().is_leaf());
}

TEST(Octree, RefinementIsRadiusLimited) {
  // Tiny refine radius: only nodes touching the origin keep refining.
  // Level 1: all 8 children touch the origin -> refine. Level 2: exactly
  // the 8 origin-adjacent of 64 refine. Leaves = (64 - 8) + 64 = 120.
  octo::Octree t(3, 0.05);
  EXPECT_EQ(t.leaf_count(), 120u);
}

TEST(Octree, LeafIdsAreDense) {
  octo::Octree t(2, 0.45);
  const auto& leaves = t.leaves();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i]->leaf_id, i);
  }
}

TEST(Octree, RotatingStarLevel4MeshShape) {
  // The paper's level-4 rotating-star mesh has 1184 leaves / 606208 cells;
  // refine_radius = 0.58 reproduces a 1240-leaf / 634880-cell mesh — the
  // closest our radius criterion gets (within 5%; documented in
  // EXPERIMENTS.md). This count is deterministic: pin it.
  octo::Octree t(4, 0.58);
  EXPECT_EQ(t.leaf_count(), 1240u);
  EXPECT_EQ(t.total_cells(), 634880u);
}

TEST(Octree, NodeGeometry) {
  octo::Octree t(1, 0.45);
  const auto& root = t.root();
  EXPECT_DOUBLE_EQ(root.width(), 2.0);
  EXPECT_DOUBLE_EQ(root.low().x, -1.0);
  EXPECT_DOUBLE_EQ(root.center().x, 0.0);
  const auto& child = *root.children[7];  // (+x, +y, +z) octant
  EXPECT_DOUBLE_EQ(child.width(), 1.0);
  EXPECT_DOUBLE_EQ(child.low().x, 0.0);
  EXPECT_DOUBLE_EQ(child.low().y, 0.0);
  EXPECT_DOUBLE_EQ(child.low().z, 0.0);
}

TEST(Octree, DistanceToBox) {
  octo::Octree t(1, 0.45);
  const auto& child = *t.root().children[7];  // box [0,1]^3
  EXPECT_DOUBLE_EQ(child.distance_to({0.5, 0.5, 0.5}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(child.distance_to({-1.0, 0.5, 0.5}), 1.0);
  EXPECT_NEAR(child.distance_to({-1.0, -1.0, 0.5}), std::sqrt(2.0), 1e-12);
}

TEST(Octree, LeafContainingFindsCorrectOctant) {
  octo::Octree t(1, 0.45);
  const auto& l = t.leaf_containing({0.5, -0.5, 0.5});
  EXPECT_EQ(l.level, 1u);
  const octo::Vec3 lo = l.low();
  EXPECT_DOUBLE_EQ(lo.x, 0.0);
  EXPECT_DOUBLE_EQ(lo.y, -1.0);
  EXPECT_DOUBLE_EQ(lo.z, 0.0);
}

TEST(Octree, LeafContainingClampsOutOfDomain) {
  octo::Octree t(1, 0.45);
  const auto& l = t.leaf_containing({5.0, 5.0, 5.0});
  EXPECT_EQ(l.level, 1u);  // clamped to the (+,+,+) corner leaf
}

TEST(Octree, SampleReadsCellValue) {
  octo::Octree t(1, 0.45);
  // Tag every cell of every leaf with a recognisable value.
  for (octo::TreeNode* leaf : t.leaves()) {
    for (std::size_t i = 0; i < octo::NX; ++i) {
      for (std::size_t j = 0; j < octo::NX; ++j) {
        for (std::size_t k = 0; k < octo::NX; ++k) {
          const octo::Vec3 c = leaf->grid.cell_center(i, j, k);
          leaf->grid.u(octo::f_rho, i, j, k) = c.x + 10 * c.y + 100 * c.z;
        }
      }
    }
  }
  const octo::Vec3 p{0.3, -0.7, 0.1};
  const double v = t.sample(octo::f_rho, p);
  // The containing cell center is within dx/2 = 1/16 of p per axis.
  const auto& leaf = t.leaf_containing(p);
  const double dx = leaf.grid.dx();
  EXPECT_NEAR(v, p.x + 10 * p.y + 100 * p.z, (1 + 10 + 100) * dx);
}

TEST(Octree, GhostFillCopiesSameLevelNeighbors) {
  octo::Octree t(1, 10.0);  // fully refined level 1: 8 uniform leaves
  ASSERT_EQ(t.leaf_count(), 8u);
  // Global linear field rho = x: ghost cells sampled from a neighbour must
  // equal that neighbour's cell value exactly.
  for (octo::TreeNode* leaf : t.leaves()) {
    for (std::size_t i = 0; i < octo::NX; ++i) {
      for (std::size_t j = 0; j < octo::NX; ++j) {
        for (std::size_t k = 0; k < octo::NX; ++k) {
          leaf->grid.u(octo::f_rho, i, j, k) =
              leaf->grid.cell_center(i, j, k).x;
        }
      }
    }
  }
  for (octo::TreeNode* leaf : t.leaves()) {
    t.fill_ghosts(*leaf);
  }
  // Check the +x ghost layer of the (-,-,-) octant leaf: it must hold the
  // first cells of the (+,-,-) neighbour, whose centers continue the
  // linear x ramp with the same spacing.
  const auto& leaf = t.leaf_containing({-0.5, -0.5, -0.5});
  const double dx = leaf.grid.dx();
  for (std::size_t g = 0; g < octo::GHOST; ++g) {
    const std::size_t ext_i = octo::GHOST + octo::NX + g;
    const double expect =
        leaf.grid.origin().x + (static_cast<double>(octo::NX + g) + 0.5) * dx;
    EXPECT_NEAR(leaf.grid.ue(octo::f_rho, ext_i, octo::GHOST, octo::GHOST),
                expect, 1e-14);
  }
}

TEST(Octree, GhostFillAtDomainBoundaryIsOutflow) {
  octo::Octree t(0, 0.45);
  auto& leaf = *t.leaves()[0];
  for (std::size_t i = 0; i < octo::NX; ++i) {
    for (std::size_t j = 0; j < octo::NX; ++j) {
      for (std::size_t k = 0; k < octo::NX; ++k) {
        leaf.grid.u(octo::f_rho, i, j, k) = static_cast<double>(i);
      }
    }
  }
  t.fill_ghosts(leaf);
  // Ghosts beyond the -x domain face replicate the first interior cell.
  EXPECT_DOUBLE_EQ(leaf.grid.ue(octo::f_rho, 0, octo::GHOST, octo::GHOST),
                   0.0);
  // Ghosts beyond +x replicate the last interior cell.
  EXPECT_DOUBLE_EQ(leaf.grid.ue(octo::f_rho, octo::NXE - 1, octo::GHOST,
                                octo::GHOST),
                   7.0);
}

TEST(SubGrid, TotalsIntegrateFields) {
  octo::SubGrid g({0, 0, 0}, 0.125);
  for (std::size_t i = 0; i < octo::NX; ++i) {
    for (std::size_t j = 0; j < octo::NX; ++j) {
      for (std::size_t k = 0; k < octo::NX; ++k) {
        g.u(octo::f_rho, i, j, k) = 2.0;
      }
    }
  }
  const auto t = g.totals();
  // 512 cells x 2.0 x (0.125)^3
  EXPECT_NEAR(t.rho, 512 * 2.0 * 0.001953125, 1e-12);
  EXPECT_DOUBLE_EQ(t.sx, 0.0);
}

TEST(Options, DefaultsMatchPaperRun) {
  octo::Options opt;
  EXPECT_EQ(opt.stop_step, 5u);
  EXPECT_DOUBLE_EQ(opt.theta, 0.5);
}

TEST(Options, CliParsesPaperListing) {
  // The flags of the paper's Listing 2 (minus the network addresses).
  octo::Options opt;
  opt.parse_cli({"--max_level=4", "--stop_step=5", "--theta=0.5",
                 "--multipole_host_kernel_type=KOKKOS",
                 "--monopole_host_kernel_type=KOKKOS",
                 "--hydro_host_kernel_type=KOKKOS", "--hpx:localities=2",
                 "--hpx:threads=4"});
  EXPECT_EQ(opt.max_level, 4u);
  EXPECT_EQ(opt.stop_step, 5u);
  EXPECT_DOUBLE_EQ(opt.theta, 0.5);
  EXPECT_EQ(opt.hydro_kernel, mkk::KernelType::kokkos_serial);
  EXPECT_EQ(opt.multipole_kernel, mkk::KernelType::kokkos_serial);
  EXPECT_EQ(opt.monopole_kernel, mkk::KernelType::kokkos_serial);
  EXPECT_EQ(opt.localities, 2u);
  EXPECT_EQ(opt.threads, 4u);
}

TEST(Options, KernelTypeParsing) {
  EXPECT_EQ(octo::Options::parse_kernel_type("KOKKOS"),
            mkk::KernelType::kokkos_serial);
  EXPECT_EQ(octo::Options::parse_kernel_type("kokkos_hpx"),
            mkk::KernelType::kokkos_hpx);
  EXPECT_EQ(octo::Options::parse_kernel_type("LEGACY"),
            mkk::KernelType::legacy);
  EXPECT_THROW(octo::Options::parse_kernel_type("CUDA"), std::runtime_error);
}

TEST(Options, UnknownCliKeyThrows) {
  octo::Options opt;
  EXPECT_THROW(opt.parse_cli({"--no_such_flag=1"}), std::runtime_error);
  EXPECT_THROW(opt.parse_cli({"positional"}), std::runtime_error);
}

TEST(Options, IniRoundTrip) {
  const char* path = "test_rotating_star.ini";
  {
    std::ofstream out(path);
    out << "# rotating star configuration\n"
        << "[sim]\n"
        << "max_level = 2\n"
        << "stop_step = 3\n"
        << "theta = 0.6\n"
        << "cfl = 0.3\n"
        << "[star]\n"
        << "radius = 0.3\n"
        << "rho_c = 2.0\n"
        << "omega = 0.1\n";
  }
  octo::Options opt;
  opt.load_ini(path);
  std::remove(path);
  EXPECT_EQ(opt.max_level, 2u);
  EXPECT_EQ(opt.stop_step, 3u);
  EXPECT_DOUBLE_EQ(opt.theta, 0.6);
  EXPECT_DOUBLE_EQ(opt.cfl, 0.3);
  EXPECT_DOUBLE_EQ(opt.star_radius, 0.3);
  EXPECT_DOUBLE_EQ(opt.star_rho_c, 2.0);
  EXPECT_DOUBLE_EQ(opt.star_omega, 0.1);
}

TEST(Options, IniErrors) {
  octo::Options opt;
  EXPECT_THROW(opt.load_ini("/nonexistent/file.ini"), std::runtime_error);
  const char* path = "test_bad.ini";
  {
    std::ofstream out(path);
    out << "[star]\nbogus = 1\n";
  }
  EXPECT_THROW(opt.load_ini(path), std::runtime_error);
  std::remove(path);
}

TEST(Options, SummaryMentionsKeySettings) {
  octo::Options opt;
  const std::string s = opt.summary();
  EXPECT_NE(s.find("max_level"), std::string::npos);
  EXPECT_NE(s.find("kokkos-serial"), std::string::npos);
}

}  // namespace
