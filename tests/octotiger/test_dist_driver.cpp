// Integration tests: distributed Octo-Tiger across simulated localities
// must reproduce the single-locality results over every parcelport.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sim/trace.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/driver.hpp"

namespace {

using namespace octo;
namespace md = mhpx::dist;

Options small_star(unsigned localities) {
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;  // uniform 8-leaf mesh
  opt.stop_step = 2;
  opt.threads = 2;
  opt.localities = localities;
  return opt;
}

class DistDriverTest : public ::testing::TestWithParam<md::FabricKind> {};

TEST_P(DistDriverTest, PartitionsCoverAllLeaves) {
  dist::DistSimulation sim(small_star(2), GetParam());
  EXPECT_EQ(sim.num_localities(), 2u);
  EXPECT_EQ(sim.total_cells(), 8 * CELLS_PER_GRID);
}

TEST_P(DistDriverTest, MatchesSingleLocalityRun) {
  // Reference: the shared-memory driver.
  double ref_mass = 0.0;
  double ref_energy = 0.0;
  double ref_dt = 0.0;
  {
    mhpx::Runtime rt{{2, 128 * 1024}};
    Options opt = small_star(1);
    Simulation ref(opt);
    ref.run();
    ref_mass = ref.totals().rho;
    ref_energy = ref.totals().egas;
    ref_dt = ref.stats().last_dt;
  }

  dist::DistSimulation sim(small_star(2), GetParam());
  sim.run();
  EXPECT_EQ(sim.stats().steps, 2u);
  // Same physics on both drivers: conserved totals agree tightly. (Bitwise
  // equality is not expected: summation orders differ across partitions.)
  const Cons t = sim.totals();
  EXPECT_NEAR(t.rho, ref_mass, 1e-10 * ref_mass);
  EXPECT_NEAR(t.egas, ref_energy, 1e-8 * std::abs(ref_energy));
  EXPECT_NEAR(sim.stats().last_dt, ref_dt, 1e-12);
}

TEST_P(DistDriverTest, MassConservedAcrossSteps) {
  dist::DistSimulation sim(small_star(2), GetParam());
  const double before = sim.totals().rho;
  sim.run();
  EXPECT_NEAR(sim.totals().rho, before, 1e-6 * before);
}

TEST_P(DistDriverTest, ParcelsFlowThroughFabric) {
  dist::DistSimulation sim(small_star(2), GetParam());
  sim.step();
  const auto stats = sim.runtime().fabric().stats();
  EXPECT_GT(stats.messages, 10u);   // moments + fields + stages + replies
  EXPECT_GT(stats.bytes, 10000u);   // boundary fields are the bulk
}

INSTANTIATE_TEST_SUITE_P(Fabrics, DistDriverTest,
                         ::testing::Values(md::FabricKind::inproc,
                                           md::FabricKind::tcp,
                                           md::FabricKind::mpisim),
                         [](const auto& info) {
                           return std::string(md::to_string(info.param));
                         });

TEST(DistDriver, FourLocalitiesAgreeWithTwo) {
  Options opt2 = small_star(2);
  dist::DistSimulation a(opt2, md::FabricKind::inproc);
  a.run();
  Options opt4 = small_star(4);
  dist::DistSimulation b(opt4, md::FabricKind::inproc);
  b.run();
  EXPECT_NEAR(a.totals().rho, b.totals().rho, 1e-10 * a.totals().rho);
  EXPECT_NEAR(a.stats().last_dt, b.stats().last_dt, 1e-12);
}

TEST(DistDriver, TraceAttributesTasksAndParcels) {
  rveval::sim::TraceCollector trace;
  {
    dist::DistSimulation sim(small_star(2), md::FabricKind::inproc);
    trace.map_scheduler(&sim.runtime().locality(0).scheduler(), 0);
    trace.map_scheduler(&sim.runtime().locality(1).scheduler(), 1);
    sim.set_phase_marker([&](const std::string& p) { trace.begin_phase(p); });
    sim.step();
    sim.runtime().wait_all_idle();
  }
  const auto phases = trace.finish();
  ASSERT_FALSE(phases.empty());
  double flops0 = 0.0;
  double flops1 = 0.0;
  std::size_t parcels = 0;
  for (const auto& p : phases) {
    for (const auto& t : p.tasks) {
      (t.locality == 0 ? flops0 : flops1) += t.flops;
    }
    parcels += p.parcels.size();
  }
  // Both partitions did real kernel work, and parcels were recorded.
  EXPECT_GT(flops0, 0.0);
  EXPECT_GT(flops1, 0.0);
  EXPECT_GT(parcels, 0u);
  // The contiguous split of 8 uniform leaves is 4/4: kernel flops should
  // be roughly balanced.
  EXPECT_NEAR(flops0 / flops1, 1.0, 0.5);
}

}  // namespace
