// Gravity solver validation: multipole math against numerical gradients,
// moments of known configurations, kernel-flavour equivalence, and the FMM
// against the direct O(N^2) solver and the analytic uniform-sphere field.

#include <gtest/gtest.h>

#include <cmath>

#include "minihpx/runtime.hpp"
#include "octotiger/gravity/solver.hpp"
#include "octotiger/init/rotating_star.hpp"
#include "octotiger/octree.hpp"
#include "octotiger/options.hpp"

namespace {

using namespace octo;

// ------------------------------------------------------ multipole algebra

TEST(Multipole, MonopoleFieldOfPointMass) {
  gravity::Multipole m;
  m.mass = 2.0;
  m.com = {0.1, -0.2, 0.3};
  double phi = 0.0;
  Vec3 g{};
  gravity::evaluate(m, {1.1, -0.2, 0.3}, phi, g);  // distance 1 along +x
  EXPECT_NEAR(phi, -2.0, 1e-12);
  EXPECT_NEAR(g.x, -2.0, 1e-12);  // toward the mass
  EXPECT_NEAR(g.y, 0.0, 1e-12);
  EXPECT_NEAR(g.z, 0.0, 1e-12);
}

TEST(Multipole, GradientMatchesNumericalDerivative) {
  gravity::Multipole m;
  m.mass = 1.5;
  m.com = {0, 0, 0};
  m.quad = {0.02, 0.05, 0.01, 0.004, -0.003, 0.002};
  const Vec3 p{0.8, -0.5, 0.6};
  const double h = 1e-6;
  auto phi_at = [&](Vec3 q) {
    double phi = 0.0;
    Vec3 g{};
    gravity::evaluate(m, q, phi, g);
    return phi;
  };
  double phi = 0.0;
  Vec3 g{};
  gravity::evaluate(m, p, phi, g);
  const double gx = -(phi_at({p.x + h, p.y, p.z}) -
                      phi_at({p.x - h, p.y, p.z})) / (2 * h);
  const double gy = -(phi_at({p.x, p.y + h, p.z}) -
                      phi_at({p.x, p.y - h, p.z})) / (2 * h);
  const double gz = -(phi_at({p.x, p.y, p.z + h}) -
                      phi_at({p.x, p.y, p.z - h})) / (2 * h);
  EXPECT_NEAR(g.x, gx, 1e-6);
  EXPECT_NEAR(g.y, gy, 1e-6);
  EXPECT_NEAR(g.z, gz, 1e-6);
}

TEST(Multipole, QuadrupoleImprovesFarField) {
  // Two equal point masses -> exact field; monopole-only truncation is
  // worse than monopole+quadrupole at moderate distance.
  const Vec3 a{0.1, 0, 0};
  const Vec3 b{-0.1, 0, 0};
  gravity::Multipole full;
  full.mass = 2.0;
  full.com = {0, 0, 0};
  full.quad = {2 * 1.0 * 0.01, 0, 0, 0, 0, 0};
  gravity::Multipole mono = full;
  mono.quad = {};

  const Vec3 p{0.8, 0.3, 0.0};
  auto exact_phi = [&] {
    return -1.0 / (p - a).norm() - 1.0 / (p - b).norm();
  }();
  double phi_full = 0.0;
  double phi_mono = 0.0;
  Vec3 g{};
  gravity::evaluate(full, p, phi_full, g);
  gravity::evaluate(mono, p, phi_mono, g);
  EXPECT_LT(std::abs(phi_full - exact_phi), std::abs(phi_mono - exact_phi));
}

// ----------------------------------------------------------------- moments

TEST(Moments, LeafMomentsOfUniformCube) {
  SubGrid g({-0.5, -0.5, -0.5}, 1.0 / NX);
  for (std::size_t i = 0; i < NX; ++i) {
    for (std::size_t j = 0; j < NX; ++j) {
      for (std::size_t k = 0; k < NX; ++k) {
        g.u(f_rho, i, j, k) = 3.0;
      }
    }
  }
  const auto m = gravity::leaf_moments(g);
  EXPECT_NEAR(m.mass, 3.0, 1e-12);  // rho * volume(1)
  EXPECT_NEAR(m.com.x, 0.0, 1e-12);
  EXPECT_NEAR(m.com.y, 0.0, 1e-12);
  EXPECT_NEAR(m.com.z, 0.0, 1e-12);
  // Uniform cube: diagonal quadrupole, off-diagonals vanish.
  EXPECT_NEAR(m.quad[3], 0.0, 1e-12);
  EXPECT_NEAR(m.quad[4], 0.0, 1e-12);
  EXPECT_NEAR(m.quad[5], 0.0, 1e-12);
  EXPECT_NEAR(m.quad[0], m.quad[1], 1e-12);
  EXPECT_GT(m.quad[0], 0.0);
}

TEST(Moments, TreeMomentsSumLeafMasses) {
  Octree t(1, 10.0);
  double expected = 0.0;
  for (TreeNode* leaf : t.leaves()) {
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          leaf->grid.u(f_rho, i, j, k) = 1.0 + leaf->grid.cell_center(i, j, k).x;
        }
      }
    }
    expected += gravity::leaf_moments(leaf->grid).mass;
  }
  gravity::compute_moments(t.root());
  EXPECT_NEAR(t.root().moments.mass, expected, 1e-10);
  // Parallel-axis combination must preserve the total quadrupole trace
  // relative to a direct computation about the root com: check symmetry
  // sanity instead (finite values, plausible sign).
  EXPECT_GE(t.root().moments.quad[0], 0.0);
}

// -------------------------------------------------- solver vs direct sum

void setup_star(Octree& tree, const Options& opt) {
  init::rotating_star(tree, opt);
}

TEST(GravitySolver, MatchesDirectSolverOnStar) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;  // uniform level-1 mesh: 8 leaves, 4096 cells
  Octree fmm_tree(opt.max_level, opt.refine_radius);
  Octree dir_tree(opt.max_level, opt.refine_radius);
  setup_star(fmm_tree, opt);
  setup_star(dir_tree, opt);

  gravity::solve_all(fmm_tree, opt.theta, mkk::KernelType::legacy,
                     mkk::KernelType::legacy);
  gravity::direct_solve(dir_tree);

  double max_rel_g = 0.0;
  double max_rel_phi = 0.0;
  for (std::size_t l = 0; l < fmm_tree.leaf_count(); ++l) {
    const SubGrid& a = fmm_tree.leaves()[l]->grid;
    const SubGrid& b = dir_tree.leaves()[l]->grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const Vec3 ga{a.g(0, i, j, k), a.g(1, i, j, k), a.g(2, i, j, k)};
          const Vec3 gb{b.g(0, i, j, k), b.g(1, i, j, k), b.g(2, i, j, k)};
          const double scale = std::max(gb.norm(), 1e-4);
          max_rel_g = std::max(max_rel_g, (ga - gb).norm() / scale);
          max_rel_phi = std::max(
              max_rel_phi, std::abs(a.phi(i, j, k) - b.phi(i, j, k)) /
                               std::max(std::abs(b.phi(i, j, k)), 1e-8));
        }
      }
    }
  }
  // Level-1 uniform mesh: every pair is same-level adjacent, so the FMM
  // path reduces to the exact offset-table P2P (plus mass pruning at the
  // 1e-9 level).
  EXPECT_LT(max_rel_g, 1e-6);
  EXPECT_LT(max_rel_phi, 1e-6);
}

TEST(GravitySolver, MultipolePathAccuracyOnDeeperTree) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 10.0;  // uniform level-2 mesh: 64 leaves
  Octree fmm_tree(opt.max_level, opt.refine_radius);
  Octree dir_tree(opt.max_level, opt.refine_radius);
  setup_star(fmm_tree, opt);
  setup_star(dir_tree, opt);

  gravity::solve_all(fmm_tree, opt.theta, mkk::KernelType::legacy,
                     mkk::KernelType::legacy);
  // Direct reference only on three representative leaves (corner, center,
  // far corner) to keep the O(N x M) cost bounded.
  const std::vector<std::size_t> targets{0, fmm_tree.leaf_count() / 2,
                                         fmm_tree.leaf_count() - 1};
  gravity::direct_solve(dir_tree, targets);

  double max_rel_g = 0.0;
  for (const std::size_t l : targets) {
    const SubGrid& a = fmm_tree.leaves()[l]->grid;
    const SubGrid& b = dir_tree.leaves()[l]->grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const Vec3 ga{a.g(0, i, j, k), a.g(1, i, j, k), a.g(2, i, j, k)};
          const Vec3 gb{b.g(0, i, j, k), b.g(1, i, j, k), b.g(2, i, j, k)};
          const double scale = std::max(gb.norm(), 1e-3);
          max_rel_g = std::max(max_rel_g, (ga - gb).norm() / scale);
        }
      }
    }
  }
  // Quadrupole truncation at theta = 0.5 (with the documented same-level
  // M2P fallback at theta_eff <~ 0.6): a few percent worst-case.
  EXPECT_LT(max_rel_g, 0.05);
}

TEST(GravitySolver, UniformSphereInteriorFieldIsLinear) {
  // Analytic check: inside a uniform sphere, g(r) = -(4/3) pi G rho r.
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 10.0;
  Octree tree(opt.max_level, opt.refine_radius);
  const double R = 0.5;
  const double rho0 = 1.0;
  tree.for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          g.u(f_rho, i, j, k) =
              g.cell_center(i, j, k).norm() < R ? rho0 : 0.0;
        }
      }
    }
  });
  gravity::solve_all(tree, opt.theta, mkk::KernelType::kokkos_serial,
                     mkk::KernelType::kokkos_serial);

  const double c = 4.0 / 3.0 * M_PI * G_newton * rho0;
  for (const double r : {0.15, 0.25, 0.35}) {
    const Vec3 p{r, 0.0, 0.0};
    const auto& leaf = tree.leaf_containing(p);
    // Find the cell nearest p and compare |g| to the analytic line.
    const SubGrid& g = leaf.grid;
    const double dx = g.dx();
    const auto i = static_cast<std::size_t>((p.x - g.origin().x) / dx);
    const auto j = static_cast<std::size_t>((p.y - g.origin().y) / dx);
    const auto k = static_cast<std::size_t>((p.z - g.origin().z) / dx);
    const Vec3 cc = g.cell_center(i, j, k);
    const double expect = c * cc.norm();
    const Vec3 got{g.g(0, i, j, k), g.g(1, i, j, k), g.g(2, i, j, k)};
    EXPECT_NEAR(got.norm(), expect, 0.08 * expect) << "r=" << r;
    // Direction: toward the center.
    EXPECT_LT(got.x, 0.0);
  }
}

TEST(GravitySolver, KernelFlavoursAgree) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;
  Octree a(opt.max_level, opt.refine_radius);
  Octree b(opt.max_level, opt.refine_radius);
  Octree c(opt.max_level, opt.refine_radius);
  setup_star(a, opt);
  setup_star(b, opt);
  setup_star(c, opt);
  gravity::solve_all(a, opt.theta, mkk::KernelType::legacy,
                     mkk::KernelType::legacy);
  gravity::solve_all(b, opt.theta, mkk::KernelType::kokkos_serial,
                     mkk::KernelType::kokkos_serial);
  gravity::solve_all(c, opt.theta, mkk::KernelType::kokkos_hpx,
                     mkk::KernelType::kokkos_hpx);
  for (std::size_t l = 0; l < a.leaf_count(); ++l) {
    for (std::size_t i = 0; i < NX; ++i) {
      const auto& ga = a.leaves()[l]->grid;
      const auto& gb = b.leaves()[l]->grid;
      const auto& gc = c.leaves()[l]->grid;
      EXPECT_EQ(ga.g(0, i, i, i), gb.g(0, i, i, i));
      EXPECT_EQ(ga.g(0, i, i, i), gc.g(0, i, i, i));
      EXPECT_EQ(ga.phi(i, i, i), gb.phi(i, i, i));
      EXPECT_EQ(ga.phi(i, i, i), gc.phi(i, i, i));
    }
  }
}

TEST(GravitySolver, StatsCountInteractions) {
  mhpx::Runtime rt{{1, 128 * 1024}};
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 10.0;
  Octree tree(opt.max_level, opt.refine_radius);
  setup_star(tree, opt);
  gravity::compute_moments(tree.root());
  // A corner leaf: few neighbours, several far (M2P) nodes.
  TreeNode* corner = tree.leaves().front();
  const auto stats =
      gravity::solve_leaf(tree.root(), *corner, opt.theta,
                          mkk::KernelType::legacy, mkk::KernelType::legacy);
  EXPECT_GT(stats.p2p_table_pairs, 0u);
  EXPECT_GT(stats.m2p_nodes, 0u);
}

}  // namespace
