// Metamorphic oracle: binary_merger under a 180° domain rotation
// (ctest labels: scenario, simtest).
//
// Rotating the domain by 180° about the z axis maps the two-lobe merger
// configuration onto the configuration obtained by swapping the lobe
// parameters ((radius1, rho_c1) <-> (radius2, rho_c2)): lobe centres are
// exact bitwise negations (cell centres are dyadic rationals in [-1,1]),
// the orbital frequency depends on m1+m2 only (IEEE addition is
// commutative), and the rigid-rotation velocity field negates exactly
// ((-a)*b is bitwise -(a*b)). So the *initial* states of the original and
// the swapped run are exact images of each other, and
// compute_diagnostics_rot180 — which sums in a rotation-invariant
// canonical order — must agree BITWISE: equal mass/energies/L_z/rho_max,
// negated momenta.
//
// Evolved states are compared with a tight relative tolerance instead:
// the gravity solver accumulates node moments in child order, and child
// order is not rotation-invariant, so the evolved fields agree only to
// summation-order rounding (~1e-13 over a few steps), not bitwise.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "core/testing/seed_env.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/diagnostics.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace {

using namespace octo;

Options merger_options() {
  Options opt;
  scenario::apply(opt, "binary_merger");
  opt.max_level = 1;
  opt.stop_step = 2;
  opt.threads = 2;
  return opt;
}

/// The swapped-lobe configuration: exactly the 180°-rotated problem.
Options rotated(Options opt) {
  std::swap(opt.binary_radius1, opt.binary_radius2);
  std::swap(opt.binary_rho_c1, opt.binary_rho_c2);
  return opt;
}

void expect_rot180_images(const Diagnostics& a, const Diagnostics& b) {
  EXPECT_EQ(a.mass, b.mass);
  EXPECT_EQ(a.momentum.x, -b.momentum.x);
  EXPECT_EQ(a.momentum.y, -b.momentum.y);
  EXPECT_EQ(a.momentum.z, b.momentum.z);
  EXPECT_EQ(a.angular_momentum_z, b.angular_momentum_z);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.internal_energy, b.internal_energy);
  EXPECT_EQ(a.rho_max, b.rho_max);
  // rho_max_location is reported in rotation-canonical coordinates.
  EXPECT_EQ(a.rho_max_location.x, b.rho_max_location.x);
  EXPECT_EQ(a.rho_max_location.y, b.rho_max_location.y);
  EXPECT_EQ(a.rho_max_location.z, b.rho_max_location.z);
}

TEST(ScenarioMetamorphic, InitialDiagnosticsBitIdenticalUnderRotation) {
  Simulation a(merger_options());
  Simulation b(rotated(merger_options()));
  expect_rot180_images(compute_diagnostics_rot180(a.tree()),
                       compute_diagnostics_rot180(b.tree()));
}

TEST(ScenarioMetamorphic, CanonicalOrderMatchesPlainTotalsToRounding) {
  // Sanity on the oracle itself: the canonical-order sweep is a
  // reordering of the same per-cell contributions, so it must agree with
  // compute_diagnostics up to summation rounding.
  Simulation sim(merger_options());
  const Diagnostics plain = compute_diagnostics(sim.tree());
  const Diagnostics canon = compute_diagnostics_rot180(sim.tree());
  EXPECT_NEAR(canon.mass, plain.mass, 1e-12 * plain.mass);
  EXPECT_NEAR(canon.kinetic_energy, plain.kinetic_energy,
              1e-12 * plain.kinetic_energy + 1e-15);
  EXPECT_NEAR(canon.internal_energy, plain.internal_energy,
              1e-12 * plain.internal_energy + 1e-15);
  EXPECT_EQ(canon.rho_max, plain.rho_max);
}

TEST(ScenarioMetamorphic, PureHydroEvolutionBitIdenticalUnderRotation) {
  // With gravity off every per-cell update is built from neighbour
  // stencils whose mirrored operands negate exactly (Riemann flux argument
  // order swaps, and IEEE a-b == -(b-a) bitwise), so the evolved states
  // stay exact rotation images of each other.
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options base = merger_options();
  base.gravity = false;
  Simulation a(base);
  Simulation b(rotated(base));
  a.run();
  b.run();
  ASSERT_EQ(a.stats().steps, b.stats().steps);
  EXPECT_EQ(a.stats().last_dt, b.stats().last_dt);
  expect_rot180_images(compute_diagnostics_rot180(a.tree()),
                       compute_diagnostics_rot180(b.tree()));
}

TEST(ScenarioMetamorphic, GravityEvolutionMatchesUnderRotationToRounding) {
  // Full physics: the FMM accumulates moments in child order, which is not
  // rotation-invariant, so images agree to summation rounding only.
  mhpx::Runtime rt{{2, 128 * 1024}};
  Simulation a(merger_options());
  Simulation b(rotated(merger_options()));
  a.run();
  b.run();
  const Diagnostics da = compute_diagnostics_rot180(a.tree());
  const Diagnostics db = compute_diagnostics_rot180(b.tree());
  const double escale = da.kinetic_energy + da.internal_energy +
                        std::abs(da.potential_energy);
  EXPECT_NEAR(da.mass, db.mass, 1e-11 * da.mass);
  EXPECT_NEAR(da.momentum.x, -db.momentum.x, 1e-11 * da.mass);
  EXPECT_NEAR(da.momentum.y, -db.momentum.y, 1e-11 * da.mass);
  EXPECT_NEAR(da.angular_momentum_z, db.angular_momentum_z,
              1e-10 * std::abs(da.angular_momentum_z) + 1e-13);
  EXPECT_NEAR(da.kinetic_energy, db.kinetic_energy, 1e-10 * escale);
  EXPECT_NEAR(da.internal_energy, db.internal_energy, 1e-10 * escale);
  EXPECT_NEAR(da.potential_energy, db.potential_energy, 1e-10 * escale);
  EXPECT_NEAR(da.rho_max, db.rho_max, 1e-10 * da.rho_max)
      << rveval::testing::seed_env().repro_line();
}

TEST(ScenarioMetamorphic, RegridPreservesRelationUnderRotation) {
  // The scenario's own plan regrids every other step; the rebuilt meshes
  // of the two images must keep their diagnostics related the same way.
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options base = merger_options();
  base.max_level = 2;  // give the regrid room to act
  Simulation a(base);
  Simulation b(rotated(base));
  a.step();
  b.step();
  const std::size_t la = a.regrid();
  const std::size_t lb = b.regrid();
  EXPECT_EQ(la, lb) << "rotated images must refine the same cell count";
  const Diagnostics da = compute_diagnostics_rot180(a.tree());
  const Diagnostics db = compute_diagnostics_rot180(b.tree());
  EXPECT_NEAR(da.mass, db.mass, 1e-10 * da.mass);
  EXPECT_NEAR(da.rho_max, db.rho_max, 1e-10 * da.rho_max);
}

}  // namespace
