// Self-healing distributed Octo-Tiger: a 2-locality run with seeded fault
// injection (parcel loss, plus one locality dying mid-run) must finish with
// conservation diagnostics *bit-for-bit identical* to a fault-free run —
// recovery restores the last checkpoint and redoes the interrupted step
// deterministically, so faults cost time, never physics.

#include <gtest/gtest.h>

#include "core/testing/seed_env.hpp"
#include "minihpx/instrument.hpp"
#include "minihpx/resilience/fabric_faulty.hpp"
#include "octotiger/distributed/dist_driver.hpp"

namespace {

using namespace octo;
namespace md = mhpx::dist;
namespace mres = mhpx::resilience;

Options small_star(unsigned localities) {
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;  // uniform 8-leaf mesh
  opt.stop_step = 2;
  opt.threads = 2;
  opt.localities = localities;
  return opt;
}

dist::ResilienceConfig fast_resilience() {
  dist::ResilienceConfig res;
  res.enabled = true;
  // Tight timeouts keep the test quick; the fabrics are in-process, so a
  // healthy reply arrives in well under a millisecond. Sanitized builds
  // stretch the deadlines so a slow-but-live locality is not declared dead.
  const double scale = rveval::testing::timeout_scale();
  res.rpc_timeout_s = 0.05 * scale;
  res.heartbeat_timeout_s = 0.1 * scale;
  res.backoff_initial_s = 0.001;
  res.backoff_cap_s = 0.01;
  return res;
}

/// Fault-free reference over the plain (non-resilient) driver.
Cons fault_free_totals(RunStats& stats_out) {
  dist::DistSimulation sim(small_star(2), md::FabricKind::inproc);
  sim.run();
  stats_out = sim.stats();
  return sim.totals();
}

TEST(ResilientDriver, ResilientModeWithoutFaultsMatchesPlainRun) {
  RunStats ref_stats;
  const Cons ref = fault_free_totals(ref_stats);

  dist::DistSimulation sim(small_star(2), md::FabricKind::inproc,
                           fast_resilience(), {});
  sim.run();
  const Cons t = sim.totals();
  EXPECT_EQ(t.rho, ref.rho);
  EXPECT_EQ(t.sx, ref.sx);
  EXPECT_EQ(t.sy, ref.sy);
  EXPECT_EQ(t.sz, ref.sz);
  EXPECT_EQ(t.egas, ref.egas);
  EXPECT_EQ(sim.stats().steps, ref_stats.steps);
  EXPECT_EQ(sim.stats().sim_time, ref_stats.sim_time);
  EXPECT_EQ(sim.recoveries(), 0u);
}

TEST(ResilientDriver, SurvivesParcelLossBitIdentically) {
  RunStats ref_stats;
  const Cons ref = fault_free_totals(ref_stats);

  mhpx::instrument::reset_resilience_counters();
  dist::DistSimulation sim(small_star(2), md::FabricKind::inproc,
                           fast_resilience(), [] {
                             mres::FaultConfig fc;
                             fc.drop_rate = 0.03;
                             fc.seed = 0xd5;
                             return mres::make_faulty_fabric(
                                 md::FabricKind::inproc, fc);
                           });
  sim.run();
  const Cons t = sim.totals();
  EXPECT_EQ(t.rho, ref.rho);
  EXPECT_EQ(t.sx, ref.sx);
  EXPECT_EQ(t.sy, ref.sy);
  EXPECT_EQ(t.sz, ref.sz);
  EXPECT_EQ(t.egas, ref.egas);
  EXPECT_EQ(sim.stats().steps, ref_stats.steps);
  EXPECT_EQ(sim.stats().sim_time, ref_stats.sim_time);
  EXPECT_EQ(sim.stats().last_dt, ref_stats.last_dt);
}

TEST(ResilientDriver, SurvivesMidRunLocalityDeathBitIdentically) {
  RunStats ref_stats;
  const Cons ref = fault_free_totals(ref_stats);

  mhpx::instrument::reset_resilience_counters();
  // Locality 1 dies after 40 fabric frames — mid-step-1, after
  // construction (which uses ~10 frames) — plus background parcel loss.
  dist::DistSimulation sim(small_star(2), md::FabricKind::inproc,
                           fast_resilience(), [] {
                             mres::FaultConfig fc;
                             fc.drop_rate = 0.02;
                             fc.seed = 0xdead;
                             fc.kill_after_frames = 40;
                             fc.kill_target = 1;
                             return mres::make_faulty_fabric(
                                 md::FabricKind::inproc, fc);
                           });
  sim.run();

  // The board died and was recovered at least once.
  EXPECT_GE(sim.recoveries(), 1u);
  EXPECT_GE(mhpx::instrument::resilience_counters().recoveries, 1u);

  // And the physics is untouched: bit-for-bit the fault-free diagnostics.
  const Cons t = sim.totals();
  EXPECT_EQ(t.rho, ref.rho);
  EXPECT_EQ(t.sx, ref.sx);
  EXPECT_EQ(t.sy, ref.sy);
  EXPECT_EQ(t.sz, ref.sz);
  EXPECT_EQ(t.egas, ref.egas);
  EXPECT_EQ(sim.stats().steps, ref_stats.steps);
  EXPECT_EQ(sim.stats().sim_time, ref_stats.sim_time);
  EXPECT_EQ(sim.stats().last_dt, ref_stats.last_dt);
}

TEST(ResilientDriver, TokenGuardMakesRunStageIdempotent) {
  // Direct duplicate-delivery check on the component: re-invoking run_stage
  // with the same nonzero token must be a no-op (the at-least-once parcel
  // case), while a new token re-executes.
  dist::DistSimulation sim(small_star(1), md::FabricKind::inproc);
  auto& rt = sim.runtime();
  auto& octo = rt.locality(0).local<dist::DistOcto>(sim.component(0));
  const double dt = 1e-6;
  octo.run_stage(dt, 0, /*token=*/7);
  const Cons after_once = octo.partition_totals();
  octo.run_stage(dt, 0, /*token=*/7);  // duplicate: must not re-run
  const Cons after_dup = octo.partition_totals();
  EXPECT_EQ(after_once.rho, after_dup.rho);
  EXPECT_EQ(after_once.egas, after_dup.egas);
  EXPECT_EQ(after_once.sx, after_dup.sx);
}

}  // namespace
