// End-to-end tests of the Simulation driver: the rotating-star benchmark
// problem, conservation properties, kernel-configuration equivalence and
// run statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sim/trace.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/init/rotating_star.hpp"

namespace {

using namespace octo;

Options small_star() {
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;  // uniform 8-leaf mesh, fast
  opt.stop_step = 2;
  return opt;
}

TEST(RotatingStar, PolytropeProfile) {
  // n=1 polytrope closed form: rho(0) = rho_c, rho(R) = floor, monotone.
  EXPECT_NEAR(init::polytrope_density(0.0, 0.35, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(init::polytrope_density(0.175, 0.35, 1.0), 2.0 / M_PI, 1e-9);
  EXPECT_DOUBLE_EQ(init::polytrope_density(0.4, 0.35, 1.0), rho_floor);
  EXPECT_GT(init::polytrope_density(0.1, 0.35, 1.0),
            init::polytrope_density(0.2, 0.35, 1.0));
}

TEST(RotatingStar, AnalyticMassMatchesGridMass) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_star();
  Simulation sim(opt);
  const double analytic = init::polytrope_mass(opt.star_radius, opt.star_rho_c);
  // Level-1 grid is coarse (dx = 1/8); expect agreement within ~10%.
  EXPECT_NEAR(sim.totals().rho, analytic, 0.1 * analytic);
}

TEST(RotatingStar, RotationVelocityField) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_star();
  opt.star_omega = 0.3;
  Simulation sim(opt);
  // v = omega x r: at (x, 0, 0), v = (0, omega x, 0).
  const double x = 0.2;
  const double sy = sim.tree().sample(f_sy, {x, 0.03, 0.03});
  const double rho = sim.tree().sample(f_rho, {x, 0.03, 0.03});
  EXPECT_GT(rho, 10 * rho_floor);
  EXPECT_NEAR(sy / rho, opt.star_omega * x, 0.05);
  // No vertical motion.
  EXPECT_NEAR(sim.tree().sample(f_sz, {x, 0.03, 0.03}), 0.0, 1e-12);
}

TEST(Driver, DtIsPositiveAndCflBounded) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Simulation sim(small_star());
  const double dt = sim.compute_dt();
  EXPECT_GT(dt, 0.0);
  // dt <= cfl * dx / c_min-ish: sanity upper bound with dx = 0.25/2... use
  // loose cap: the sound speed in the star center is ~sqrt(gamma P/rho).
  EXPECT_LT(dt, 1.0);
}

TEST(Driver, StepAdvancesStats) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Simulation sim(small_star());
  const std::size_t cells = sim.tree().total_cells();
  sim.run();
  EXPECT_EQ(sim.stats().steps, 2u);
  EXPECT_EQ(sim.stats().cells_processed, 2 * cells);
  EXPECT_GT(sim.stats().sim_time, 0.0);
  EXPECT_GT(sim.stats().last_dt, 0.0);
}

TEST(Driver, MassIsConserved) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_star();
  opt.stop_step = 3;
  Simulation sim(opt);
  const double before = sim.totals().rho;
  sim.run();
  const double after = sim.totals().rho;
  // The star is compact; only floor-level flux crosses the boundary.
  EXPECT_NEAR(after, before, 1e-6 * before);
}

TEST(Driver, MomentumStaysNearZero) {
  // A centred, axisymmetric rotating star has zero net momentum; gravity
  // and hydro must not create any (beyond truncation-level noise).
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_star();
  opt.stop_step = 3;
  Simulation sim(opt);
  sim.run();
  const Cons t = sim.totals();
  const double scale = t.rho;  // mass as the reference magnitude
  EXPECT_NEAR(t.sx / scale, 0.0, 1e-3);
  EXPECT_NEAR(t.sy / scale, 0.0, 1e-3);
  EXPECT_NEAR(t.sz / scale, 0.0, 1e-3);
}

TEST(Driver, StarStaysBound) {
  // After a few steps with gravity on, the star's center must still hold
  // its central density (no explosion / collapse at this step count).
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_star();
  opt.stop_step = 3;
  Simulation sim(opt);
  const double rho0 = sim.tree().sample(f_rho, {0.03, 0.03, 0.03});
  sim.run();
  const double rho1 = sim.tree().sample(f_rho, {0.03, 0.03, 0.03});
  EXPECT_GT(rho1, 0.3 * rho0);
  EXPECT_LT(rho1, 3.0 * rho0);
}

TEST(Driver, KernelConfigurationsProduceSameState) {
  // The three Fig. 7 configurations (legacy / kokkos-serial / kokkos-hpx)
  // are different execution strategies of identical math: after a step the
  // states must agree bitwise.
  mhpx::Runtime rt{{2, 128 * 1024}};
  auto run_with = [&](mkk::KernelType k) {
    Options opt = small_star();
    opt.stop_step = 1;
    opt.hydro_kernel = k;
    opt.multipole_kernel = k;
    opt.monopole_kernel = k;
    Simulation sim(opt);
    sim.run();
    return sim;
  };
  const auto a = run_with(mkk::KernelType::legacy);
  const auto b = run_with(mkk::KernelType::kokkos_serial);
  const auto c = run_with(mkk::KernelType::kokkos_hpx);
  for (std::size_t l = 0; l < a.tree().leaf_count(); ++l) {
    const auto& ga = a.tree().leaves()[l]->grid;
    const auto& gb = b.tree().leaves()[l]->grid;
    const auto& gc = c.tree().leaves()[l]->grid;
    for (std::size_t i = 0; i < NX; ++i) {
      EXPECT_EQ(ga.u(f_rho, i, i, i), gb.u(f_rho, i, i, i));
      EXPECT_EQ(ga.u(f_rho, i, i, i), gc.u(f_rho, i, i, i));
      EXPECT_EQ(ga.u(f_egas, i, i, i), gb.u(f_egas, i, i, i));
      EXPECT_EQ(ga.u(f_egas, i, i, i), gc.u(f_egas, i, i, i));
    }
  }
}

TEST(Driver, PhaseMarkersFireInOrder) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_star();
  opt.stop_step = 1;
  Simulation sim(opt);
  std::vector<std::string> phases;
  sim.set_phase_marker([&](const std::string& p) { phases.push_back(p); });
  sim.step();
  ASSERT_GE(phases.size(), 6u);
  EXPECT_EQ(phases[0], "gravity.moments");
  EXPECT_EQ(phases[1], "gravity.kernels");
  EXPECT_EQ(phases[2], "hydro.exchange");
  EXPECT_EQ(phases[3], "hydro.kernels");
  EXPECT_EQ(phases[4], "hydro.update");
}

TEST(Driver, TraceCapturesPerLeafTasks) {
  rveval::sim::TraceCollector trace;
  {
    mhpx::Runtime rt{{2, 128 * 1024}};
    trace.map_scheduler(&rt.scheduler(), 0);
    Options opt = small_star();
    opt.stop_step = 1;
    Simulation sim(opt);
    sim.set_phase_marker(
        [&](const std::string& p) { trace.begin_phase(p); });
    sim.step();
    rt.scheduler().wait_idle();
  }
  const auto phases = trace.finish();
  ASSERT_GE(phases.size(), 5u);
  // The gravity and hydro kernel phases must contain one task per leaf
  // with nonzero annotated flops.
  bool found_gravity = false;
  bool found_hydro = false;
  for (const auto& p : phases) {
    if (p.name == "gravity.kernels") {
      found_gravity = true;
      EXPECT_EQ(p.tasks.size(), 8u);  // one per leaf
      EXPECT_GT(p.total_flops(), 0.0);
    }
    if (p.name == "hydro.kernels") {
      found_hydro = true;
      EXPECT_EQ(p.tasks.size(), 8u);
      EXPECT_GT(p.total_flops(), 0.0);
    }
  }
  EXPECT_TRUE(found_gravity);
  EXPECT_TRUE(found_hydro);
}

}  // namespace
