// Tests for the field-output module (midplane slices, radial profiles).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "octotiger/driver.hpp"
#include "octotiger/init/rotating_star.hpp"
#include "octotiger/output.hpp"

namespace {

using namespace octo;

std::vector<std::vector<double>> read_csv(const std::string& path,
                                          std::string* header) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  if (header != nullptr) {
    *header = line;
  }
  std::vector<std::vector<double>> rows;
  while (std::getline(in, line)) {
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      row.push_back(std::stod(cell));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

struct OutputTest : ::testing::Test {
  // Per-process filenames: ctest runs each TEST_F as its own process, all
  // in the same working directory, so a shared name races under -j.
  std::string slice_path =
      "test_slice_" + std::to_string(::getpid()) + ".csv";
  std::string profile_path =
      "test_profile_" + std::to_string(::getpid()) + ".csv";

  void TearDown() override {
    std::remove(slice_path.c_str());
    std::remove(profile_path.c_str());
  }
};

TEST_F(OutputTest, MidplaneSliceShapeAndContent) {
  Octree tree(1, 10.0);
  Options opt;
  init::rotating_star(tree, opt);
  write_midplane_slice(tree, slice_path, 16);

  std::string header;
  const auto rows = read_csv(slice_path, &header);
  EXPECT_EQ(header, "x,y,rho,vx,vy,phi");
  ASSERT_EQ(rows.size(), 16u * 16u);
  // Find the sample nearest the origin: density near rho_c there.
  double best = 1e9;
  double rho_center = 0.0;
  for (const auto& r : rows) {
    const double d = r[0] * r[0] + r[1] * r[1];
    if (d < best) {
      best = d;
      rho_center = r[2];
    }
  }
  EXPECT_GT(rho_center, 0.5);  // near the star centre
  // Corner of the midplane: ambient floor.
  EXPECT_LT(rows.front()[2], 1e-6);
}

TEST_F(OutputTest, SliceVelocityShowsRotation) {
  Octree tree(1, 10.0);
  Options opt;
  opt.star_omega = 0.5;
  init::rotating_star(tree, opt);
  write_midplane_slice(tree, slice_path, 32);
  const auto rows = read_csv(slice_path, nullptr);
  // At a point on +x inside the star, vy ~ omega * x and vx ~ 0.
  for (const auto& r : rows) {
    if (std::abs(r[0] - 0.2) < 0.04 && std::abs(r[1]) < 0.04 && r[2] > 0.1) {
      EXPECT_NEAR(r[4], opt.star_omega * r[0], 0.05);
      EXPECT_NEAR(r[3], 0.0, 0.05);
      return;
    }
  }
  FAIL() << "no in-star sample found on the +x axis";
}

TEST_F(OutputTest, RadialProfileIsMonotoneForPolytrope) {
  Octree tree(2, 10.0);
  Options opt;
  init::rotating_star(tree, opt);
  write_radial_profile(tree, profile_path, 12);
  std::string header;
  const auto rows = read_csv(profile_path, &header);
  EXPECT_EQ(header, "r,rho_avg,rho_max");
  ASSERT_EQ(rows.size(), 12u);
  // Density decreases outward through the star region (bin width 0.083:
  // the innermost bin is populated at this resolution; star reaches 0.35
  // = bin 4).
  double prev = rows[0][1];
  EXPECT_GT(prev, 0.3);  // central bin holds near-central densities
  for (std::size_t b = 1; b < 4; ++b) {
    EXPECT_LE(rows[b][1], prev * 1.05) << "bin " << b;
    prev = rows[b][1];
  }
  // Ambient bins near the floor.
  EXPECT_LT(rows.back()[1], 1e-6);
}

TEST_F(OutputTest, BadPathThrows) {
  Octree tree(0, 0.45);
  EXPECT_THROW(write_midplane_slice(tree, "/nonexistent/dir/out.csv"),
               std::runtime_error);
  EXPECT_THROW(write_radial_profile(tree, "/nonexistent/dir/out.csv"),
               std::runtime_error);
}

}  // namespace
