// Multi-process DistSimulation oracle (ctest label: multiproc).
//
// The tentpole acceptance gate: rotating-star (and binary-merger) on three
// SEPARATE OS processes over the tcp-multiproc parcelport must produce
// conservation totals BITWISE identical to the same run hosted in-process
// over the plain TCP fabric. The cross-process leg fork/execs the real
// rveval_locality worker binary (path baked in as RVEVAL_WORKER_BIN) in
// --spawn mode and greps its TOTAL lines, which carry the raw IEEE-754
// bits precisely so this comparison needs no decimal round-trip.
//
// Also covered: checkpoint/restart across the process boundary (a restart
// file written by a multi-process cluster restores bit-exactly in-process),
// federated apex counters read from locality 0 across processes, and slow-
// starting workers joining late.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "minihpx/distributed/fabric.hpp"
#include "minihpx/distributed/launch.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/options.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace md = mhpx::dist;
using octo::Cons;
using octo::Options;

namespace {

struct RunOutput {
  int exit_code = -1;
  std::string out;
};

/// Run a command, capturing stdout (stderr goes to the test log).
RunOutput run_cmd(const std::string& cmd) {
  RunOutput r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return r;
  }
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    r.out += buf;
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  }
  return r;
}

std::string worker_bin() { return RVEVAL_WORKER_BIN; }

/// Parse "TOTAL <name> <decimal> 0x<bits>" lines into name -> raw bits.
std::map<std::string, std::uint64_t> parse_totals(const std::string& out) {
  std::map<std::string, std::uint64_t> bits;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    std::string name;
    std::string dec;
    std::string hex;
    if (ls >> tag >> name >> dec >> hex && tag == "TOTAL") {
      bits[name] = std::stoull(hex, nullptr, 16);
    }
  }
  return bits;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

Options small_opt(const std::string& scenario, unsigned steps) {
  Options opt;
  octo::scenario::apply(opt, scenario);
  opt.max_level = 1;
  opt.stop_step = steps;
  opt.threads = 2;
  opt.localities = 3;
  return opt;
}

struct Reference {
  Cons totals;
  double last_dt = 0.0;
};

/// The in-process leg: same options, plain TCP fabric, all three
/// localities in this test process.
Reference run_inproc(const Options& opt) {
  octo::dist::DistSimulation sim(opt, md::FabricKind::tcp);
  sim.run();
  return {sim.totals(), sim.stats().last_dt};
}

void expect_bitwise_match(const Reference& ref,
                          const std::map<std::string, std::uint64_t>& proc,
                          const std::string& label) {
  ASSERT_EQ(proc.count("rho"), 1u) << label << ": missing TOTAL lines";
  EXPECT_EQ(proc.at("rho"), bits_of(ref.totals.rho)) << label;
  EXPECT_EQ(proc.at("sx"), bits_of(ref.totals.sx)) << label;
  EXPECT_EQ(proc.at("sy"), bits_of(ref.totals.sy)) << label;
  EXPECT_EQ(proc.at("sz"), bits_of(ref.totals.sz)) << label;
  EXPECT_EQ(proc.at("egas"), bits_of(ref.totals.egas)) << label;
  EXPECT_EQ(proc.at("last_dt"), bits_of(ref.last_dt)) << label;
}

std::string tmp_path(const char* stem) {
  return ::testing::TempDir() + stem + "." + std::to_string(::getpid());
}

}  // namespace

TEST(MultiprocDriver, RotatingStarTotalsBitwiseIdenticalToInprocessTcp) {
  const Reference ref = run_inproc(small_opt("rotating_star", 2));
  const RunOutput proc = run_cmd(
      worker_bin() +
      " --spawn --localities=3 --threads=2 --scenario=rotating_star"
      " --steps=2 --max-level=1");
  ASSERT_EQ(proc.exit_code, 0) << proc.out;
  expect_bitwise_match(ref, parse_totals(proc.out), "rotating_star");
}

TEST(MultiprocDriver, BinaryMergerTotalsBitwiseIdenticalToInprocessTcp) {
  const Reference ref = run_inproc(small_opt("binary_merger", 2));
  const RunOutput proc = run_cmd(
      worker_bin() +
      " --spawn --localities=3 --threads=2 --scenario=binary_merger"
      " --steps=2 --max-level=1");
  ASSERT_EQ(proc.exit_code, 0) << proc.out;
  expect_bitwise_match(ref, parse_totals(proc.out), "binary_merger");
}

TEST(MultiprocDriver, CheckpointWrittenAcrossProcessesRestoresBitExactly) {
  // A 3-process cluster runs one step and writes a restart file; a second
  // 3-process cluster restores it and finishes step 2. The final totals
  // must match an uninterrupted in-process 2-step run bit for bit — the
  // same checkpoint/restart surface, now spanning real process boundaries.
  const std::string ckpt = tmp_path("multiproc_ckpt");
  const RunOutput first = run_cmd(
      worker_bin() +
      " --spawn --localities=3 --threads=2 --scenario=rotating_star"
      " --steps=1 --max-level=1 --write-checkpoint=" + ckpt);
  ASSERT_EQ(first.exit_code, 0) << first.out;

  const RunOutput second = run_cmd(
      worker_bin() +
      " --spawn --localities=3 --threads=2 --scenario=rotating_star"
      " --steps=2 --max-level=1 --restore=" + ckpt);
  ASSERT_EQ(second.exit_code, 0) << second.out;

  const Reference ref = run_inproc(small_opt("rotating_star", 2));
  expect_bitwise_match(ref, parse_totals(second.out), "restored run");

  // The same restart file also restores into an in-process simulation:
  // the checkpoint format is launch-mode agnostic.
  {
    octo::dist::DistSimulation sim(small_opt("rotating_star", 2),
                                   md::FabricKind::tcp);
    sim.restore_from(ckpt);
    sim.run();
    EXPECT_EQ(bits_of(sim.totals().rho), bits_of(ref.totals.rho));
    EXPECT_EQ(bits_of(sim.totals().egas), bits_of(ref.totals.egas));
  }
  std::remove(ckpt.c_str());
}

TEST(MultiprocDriver, FederatedCountersReachableAcrossProcesses) {
  // PR-5 federation over real process boundaries: locality 0 reads worker
  // ranks' /threads and modelled /power counters through the apex::remote
  // actions, which now travel the tcp-multiproc wire.
  const RunOutput proc = run_cmd(
      worker_bin() +
      " --spawn --localities=3 --threads=2 --scenario=rotating_star"
      " --steps=1 --max-level=1 --print-counters");
  ASSERT_EQ(proc.exit_code, 0) << proc.out;
  for (const char* needle :
       {"COUNTER loc1 /threads/", "COUNTER loc2 /threads/",
        "COUNTER loc1 /power/", "COUNTER loc2 /power/"}) {
    EXPECT_NE(proc.out.find(needle), std::string::npos)
        << "missing " << needle << " in:\n"
        << proc.out;
  }
}

TEST(MultiprocDriver, SlowStartingWorkersStillFormTheCluster) {
  // Every worker sleeps 400ms before constructing its runtime while the
  // orchestrator is already serving the rendezvous; the run must complete
  // with the same bits as ever (the bootstrap waits, nothing times out).
  const Reference ref = run_inproc(small_opt("rotating_star", 1));
  const RunOutput proc = run_cmd(
      worker_bin() +
      " --spawn --localities=3 --threads=2 --scenario=rotating_star"
      " --steps=1 --max-level=1 --start-delay-ms=400");
  ASSERT_EQ(proc.exit_code, 0) << proc.out;
  expect_bitwise_match(ref, parse_totals(proc.out), "slow start");
}

TEST(MultiprocDriver, ResilientModeRefusesProcessLaunchClearly) {
  md::ProcessLaunchConfig lc;
  lc.enabled = true;
  lc.rank = 0;
  md::ScopedProcessLaunch guard(lc);
  octo::dist::ResilienceConfig res;
  res.enabled = true;
  EXPECT_THROW(octo::dist::DistSimulation(small_opt("rotating_star", 1),
                                          md::FabricKind::tcp, res, {}),
               std::logic_error);
}
