// Tests for the binary-star initial model and the diagnostics module.

#include <gtest/gtest.h>

#include <cmath>

#include "minihpx/runtime.hpp"
#include "octotiger/diagnostics.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/init/binary_star.hpp"

namespace {

using namespace octo;

init::BinaryParams default_params() { return init::BinaryParams{}; }

TEST(BinaryStar, MassesAndBarycentre) {
  const auto p = default_params();
  const double m1 = init::binary_mass1(p);
  const double m2 = init::binary_mass2(p);
  EXPECT_GT(m1, m2);  // primary heavier (bigger and denser)
  const Vec3 c1 = init::binary_center1(p);
  const Vec3 c2 = init::binary_center2(p);
  // Barycentre at the origin: m1 x1 + m2 x2 = 0.
  EXPECT_NEAR(m1 * c1.x + m2 * c2.x, 0.0, 1e-12);
  EXPECT_NEAR(c2.x - c1.x, p.separation, 1e-12);
  EXPECT_LT(c1.x, 0.0);
  EXPECT_GT(c2.x, 0.0);
}

TEST(BinaryStar, KeplerOrbitalFrequency) {
  const auto p = default_params();
  const double omega = init::binary_orbital_omega(p);
  const double m = init::binary_mass1(p) + init::binary_mass2(p);
  EXPECT_NEAR(omega * omega * std::pow(p.separation, 3), G_newton * m,
              1e-12);
}

TEST(BinaryStar, FillsTwoDetachedStars) {
  Octree tree(2, 10.0);
  const auto p = default_params();
  init::binary_star(tree, p);
  const Vec3 c1 = init::binary_center1(p);
  const Vec3 c2 = init::binary_center2(p);
  // Central densities near the analytic values.
  EXPECT_NEAR(tree.sample(f_rho, c1), p.rho_c1, 0.25 * p.rho_c1);
  EXPECT_NEAR(tree.sample(f_rho, c2), p.rho_c2, 0.25 * p.rho_c2);
  // Floor between the stars and far away.
  EXPECT_LT(tree.sample(f_rho, {0.0, 0.0, 0.0}), 1e-6);
  EXPECT_LT(tree.sample(f_rho, {0.0, 0.9, 0.0}), 1e-6);
}

TEST(BinaryStar, OrbitalVelocityField) {
  Octree tree(2, 10.0);
  const auto p = default_params();
  init::binary_star(tree, p);
  const double omega = init::binary_orbital_omega(p);
  const Vec3 c2 = init::binary_center2(p);
  // Synchronous rotation: v = omega x r at the secondary's centre.
  const double rho = tree.sample(f_rho, c2);
  const double sy = tree.sample(f_sy, c2);
  EXPECT_NEAR(sy / rho, omega * c2.x, 0.05 * std::abs(omega * c2.x) + 1e-3);
  // z-velocity zero everywhere.
  EXPECT_NEAR(tree.sample(f_sz, c2), 0.0, 1e-12);
}

TEST(Diagnostics, UniformBoxValues) {
  Octree tree(1, 10.0);  // 8 leaves over [-1,1]^3
  tree.for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          g.u(f_rho, i, j, k) = 2.0;
          g.u(f_sx, i, j, k) = 2.0 * 0.5;  // vx = 0.5
          g.u(f_sy, i, j, k) = 0.0;
          g.u(f_sz, i, j, k) = 0.0;
          g.u(f_egas, i, j, k) = 1.0;
        }
      }
    }
  });
  const auto d = compute_diagnostics(tree);
  EXPECT_NEAR(d.mass, 2.0 * 8.0, 1e-10);            // rho * volume(8)
  EXPECT_NEAR(d.momentum.x, 1.0 * 8.0, 1e-10);      // sx * volume
  EXPECT_NEAR(d.momentum.y, 0.0, 1e-12);
  // Symmetric x-flow about the origin: no net Lz.
  EXPECT_NEAR(d.angular_momentum_z, 0.0, 1e-10);
  // kin = sx^2/(2 rho) = 0.25 per unit volume.
  EXPECT_NEAR(d.kinetic_energy, 0.25 * 8.0, 1e-10);
  EXPECT_NEAR(d.internal_energy, (1.0 - 0.25) * 8.0, 1e-10);
  EXPECT_DOUBLE_EQ(d.rho_max, 2.0);
}

TEST(Diagnostics, RigidRotationAngularMomentum) {
  // rho = 1 disc-free rigid rotation in the unit box: Lz = omega * integral
  // rho (x^2 + y^2) dV over the box = omega * (2/3 * 8) for [-1,1]^3.
  Octree tree(1, 10.0);
  const double omega = 0.4;
  tree.for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const Vec3 p = g.cell_center(i, j, k);
          g.u(f_rho, i, j, k) = 1.0;
          g.u(f_sx, i, j, k) = -omega * p.y;
          g.u(f_sy, i, j, k) = omega * p.x;
          g.u(f_sz, i, j, k) = 0.0;
          g.u(f_egas, i, j, k) = 1.0;
        }
      }
    }
  });
  const auto d = compute_diagnostics(tree);
  // integral (x^2 + y^2) over [-1,1]^3 = 2 * (2/3) * 2 * 2 = 16/3.
  EXPECT_NEAR(d.angular_momentum_z, omega * 16.0 / 3.0, 0.01);
}

TEST(Diagnostics, BinaryRunConservesMassAndLz) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.problem = Options::Problem::binary_star;
  opt.max_level = 2;
  opt.stop_step = 2;
  Simulation sim(opt);
  const auto before = compute_diagnostics(sim.tree());
  EXPECT_GT(before.angular_momentum_z, 0.0);  // prograde orbit
  sim.run();
  const auto after = compute_diagnostics(sim.tree());
  EXPECT_NEAR(after.mass, before.mass, 1e-6 * before.mass);
  // Gravity is a central force about the (fixed) tree origin only in the
  // continuum limit; allow percent-level Lz drift at this resolution.
  EXPECT_NEAR(after.angular_momentum_z, before.angular_momentum_z,
              0.05 * before.angular_momentum_z);
}

TEST(Diagnostics, StarPotentialEnergyIsNegative) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;
  Simulation sim(opt);
  sim.step();  // includes a gravity solve filling phi
  const auto d = compute_diagnostics(sim.tree());
  EXPECT_LT(d.potential_energy, 0.0);
  EXPECT_GT(d.virial_error(), 0.0);
  EXPECT_LT(d.virial_error(), 2.0);  // bound-ish configuration
}

TEST(Diagnostics, BinaryMeshRefinesBothStars) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.problem = Options::Problem::binary_star;
  opt.max_level = 3;
  Simulation sim(opt);
  // Both star centres must sit in max-level leaves.
  init::BinaryParams p = default_params();
  const auto& l1 = sim.tree().leaf_containing(init::binary_center1(p));
  const auto& l2 = sim.tree().leaf_containing(init::binary_center2(p));
  EXPECT_EQ(l1.level, 3u);
  EXPECT_EQ(l2.level, 3u);
  // A far corner stays coarse.
  EXPECT_LT(sim.tree().leaf_containing({0.9, 0.9, 0.9}).level, 3u);
}

}  // namespace
