// Parameterized scenario conformance (ctest label: scenario).
//
// Every entry in the octo::scenario registry is instantiated over
// {Serial, Hpx, DetScheduler-seeded} execution and run end to end by
// scenario::run_scenario, which evaluates the scenario's declarative
// oracle battery (conservation drift, z-mirror symmetry, regrid depth
// profile, restart-cycle and mid-run checkpoint-replay bit-identity)
// after every step. A scenario added to the registry inherits all of this
// with zero new test code. The cross-fabric and determinism suites below
// extend the battery to the distributed driver: bit-identical totals over
// inproc/tcp/mpisim and run-to-run under a fixed DetScheduler seed.
//
// Registry/option unit tests at the bottom cover the --scenario/--problem
// routing, including the listing-of-registered-names error contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/testing/seed_env.hpp"
#include "minihpx/distributed/fabric.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/serialization/archive.hpp"
#include "minihpx/testing/det.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/scenario/runner.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace {

using namespace octo;
namespace md = mhpx::dist;

enum class Mode { serial, hpx, det_seeded };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::serial:
      return "Serial";
    case Mode::hpx:
      return "Hpx";
    case Mode::det_seeded:
      return "DetSeeded";
  }
  return "?";
}

/// Scenario options shrunk to test size. deep_amr keeps max_level=2 — the
/// smallest mesh where a regrid can visibly coarsen the far field.
Options small_scenario(const std::string& name) {
  Options opt;
  scenario::apply(opt, name);
  opt.max_level = name == "deep_amr" ? 2 : 1;
  opt.stop_step = 4;
  opt.threads = 2;
  return opt;
}

scenario::ScenarioRunResult run_in_mode(const Options& opt, Mode mode) {
  switch (mode) {
    case Mode::serial:
      // No runtime: the driver runs every leaf task inline.
      return scenario::run_scenario(opt);
    case Mode::hpx: {
      mhpx::Runtime rt{{2, 128 * 1024}};
      return scenario::run_scenario(opt);
    }
    case Mode::det_seeded: {
      mhpx::testing::ScopedDetScheduling guard(
          rveval::testing::sched_seed());
      mhpx::Runtime rt{{2, 128 * 1024}};
      return scenario::run_scenario(opt);
    }
  }
  return {};
}

class ScenarioConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Mode>> {};

TEST_P(ScenarioConformance, PassesItsOracleBattery) {
  const auto& [name, mode] = GetParam();
  const Options opt = small_scenario(name);
  const scenario::ScenarioRunResult res = run_in_mode(opt, mode);

  EXPECT_EQ(res.stats.steps, opt.stop_step);
  EXPECT_GT(res.final_diag.mass, 0.0);
  EXPECT_FALSE(res.report.checks.empty());
  EXPECT_TRUE(res.report.passed())
      << name << " [" << mode_name(mode)
      << "]: " << res.report.summary() << "\n"
      << rveval::testing::seed_env().repro_line();

  const scenario::Scenario& sc = scenario::get(name);
  if (sc.plan.regrid_every != 0) {
    EXPECT_GT(res.regrids, 0u) << name;
  }
  if (sc.plan.restart_every != 0) {
    EXPECT_GT(res.restart_cycles, 0u) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ScenarioConformance,
    ::testing::Combine(::testing::ValuesIn(scenario::names()),
                       ::testing::Values(Mode::serial, Mode::hpx,
                                         Mode::det_seeded)),
    [](const ::testing::TestParamInfo<ScenarioConformance::ParamType>& ti) {
      return std::get<0>(ti.param) + "_" + mode_name(std::get<1>(ti.param));
    });

TEST(ScenarioConformanceDeep, DeepAmrCoarsensFarFieldAtDepthThree) {
  // The far-field-coarsening oracle only has a far field to act on from
  // max_level >= 3 (every level-1 octant touches the origin-centred star),
  // so the fast conformance sweep above never exercises it. One deeper,
  // shorter run does: start uniformly refined at depth 3, regrid, and
  // require the whole battery — including coarsening — to pass.
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_scenario("deep_amr");
  opt.max_level = 3;
  opt.stop_step = 2;
  const scenario::ScenarioRunResult res = scenario::run_scenario(opt);
  EXPECT_GT(res.regrids, 0u);
  bool coarsening_checked = false;
  for (const auto& c : res.report.checks) {
    coarsening_checked |= c.name == "regrid_coarsens_far_field";
  }
  EXPECT_TRUE(coarsening_checked);
  EXPECT_TRUE(res.report.passed()) << res.report.summary();
}

// ---------------------------------------------------------- cross-fabric

struct DistResult {
  Cons totals;
  double last_dt = 0.0;
  unsigned steps = 0;
};

DistResult run_dist(Options opt, md::FabricKind kind, std::uint64_t seed) {
  mhpx::testing::ScopedDetScheduling guard(seed);
  opt.localities = 2;
  dist::DistSimulation sim(
      opt, kind, dist::ResilienceConfig{},
      [kind] { return md::make_deterministic_fabric(md::make_fabric(kind)); });
  sim.run();
  DistResult r;
  r.totals = sim.totals();
  r.last_dt = sim.stats().last_dt;
  r.steps = sim.stats().steps;
  return r;
}

class ScenarioFabric : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioFabric, TotalsBitIdenticalAcrossFabrics) {
  const std::string name = GetParam();
  const scenario::Scenario& sc = scenario::get(name);
  if (!sc.oracles.cross_fabric_identity) {
    GTEST_SKIP() << name << " opts out of cross-fabric identity";
  }
  Options opt = small_scenario(name);
  opt.stop_step = 2;
  opt.max_level = 1;  // three fabrics x two localities: keep the mesh tiny

  const std::uint64_t seed = rveval::testing::sched_seed();
  const DistResult inproc = run_dist(opt, md::FabricKind::inproc, seed);
  const DistResult tcp = run_dist(opt, md::FabricKind::tcp, seed);
  const DistResult mpisim = run_dist(opt, md::FabricKind::mpisim, seed);

  ASSERT_EQ(inproc.steps, opt.stop_step);
  for (const DistResult* other : {&tcp, &mpisim}) {
    EXPECT_EQ(inproc.totals.rho, other->totals.rho)
        << name << " " << rveval::testing::seed_env().repro_line();
    EXPECT_EQ(inproc.totals.sx, other->totals.sx) << name;
    EXPECT_EQ(inproc.totals.sy, other->totals.sy) << name;
    EXPECT_EQ(inproc.totals.sz, other->totals.sz) << name;
    EXPECT_EQ(inproc.totals.egas, other->totals.egas) << name;
    EXPECT_EQ(inproc.last_dt, other->last_dt) << name;
    EXPECT_EQ(inproc.steps, other->steps) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, ScenarioFabric,
                         ::testing::ValuesIn(scenario::names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// ---------------------------------------------------- seed reproducibility

class ScenarioDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioDeterminism, SameSeedSameBits) {
  const Options opt = small_scenario(GetParam());
  const auto a = run_in_mode(opt, Mode::det_seeded);
  const auto b = run_in_mode(opt, Mode::det_seeded);
  EXPECT_EQ(a.final_diag.mass, b.final_diag.mass)
      << rveval::testing::seed_env().repro_line();
  EXPECT_EQ(a.final_diag.kinetic_energy, b.final_diag.kinetic_energy);
  EXPECT_EQ(a.final_diag.internal_energy, b.final_diag.internal_energy);
  EXPECT_EQ(a.final_diag.rho_max, b.final_diag.rho_max);
  EXPECT_EQ(a.stats.sim_time, b.stats.sim_time);
}

INSTANTIATE_TEST_SUITE_P(Registry, ScenarioDeterminism,
                         ::testing::ValuesIn(scenario::names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// ------------------------------------------------------ registry/options

TEST(ScenarioRegistry, RegistersTheFourScenarios) {
  const auto n = scenario::names();
  ASSERT_EQ(n.size(), 4u);
  EXPECT_EQ(n[0], "rotating_star");
  EXPECT_EQ(n[1], "binary_merger");
  EXPECT_EQ(n[2], "deep_amr");
  EXPECT_EQ(n[3], "restart_soak");
}

TEST(ScenarioRegistry, FindResolvesAliasesCaseInsensitively) {
  ASSERT_NE(scenario::find("BINARY"), nullptr);
  EXPECT_EQ(scenario::find("BINARY")->name, "binary_merger");
  ASSERT_NE(scenario::find("Binary_Star"), nullptr);
  EXPECT_EQ(scenario::find("Binary_Star")->name, "binary_merger");
  ASSERT_NE(scenario::find("star"), nullptr);
  EXPECT_EQ(scenario::find("star")->name, "rotating_star");
  EXPECT_EQ(scenario::find("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, GetListsRegisteredNamesOnBadInput) {
  try {
    scenario::get("warp_core_breach");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("warp_core_breach"), std::string::npos) << msg;
    for (const std::string& name : scenario::names()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "error should list '" << name << "': " << msg;
    }
  }
}

TEST(ScenarioOptions, ScenarioFlagRoutesThroughRegistry) {
  Options opt;
  opt.parse_cli({"--scenario=deep_amr"});
  EXPECT_EQ(opt.scenario, "deep_amr");
  EXPECT_EQ(opt.problem, Options::Problem::rotating_star);
  EXPECT_EQ(opt.refine_radius, 10.0);  // deep_amr's configure default
  // Later flags still override scenario defaults.
  opt.parse_cli({"--refine_radius=0.3"});
  EXPECT_EQ(opt.refine_radius, 0.3);
}

TEST(ScenarioOptions, ProblemFlagAcceptsLegacyNamesViaRegistry) {
  Options opt;
  opt.parse_cli({"--problem=BINARY_STAR"});
  EXPECT_EQ(opt.problem, Options::Problem::binary_star);
  EXPECT_EQ(opt.scenario, "binary_merger");
  Options opt2;
  opt2.parse_cli({"--problem=ROTATING_STAR"});
  EXPECT_EQ(opt2.problem, Options::Problem::rotating_star);
  EXPECT_EQ(opt2.scenario, "rotating_star");
}

TEST(ScenarioOptions, BadProblemErrorListsRegisteredNames) {
  Options opt;
  try {
    opt.parse_cli({"--problem=exploding_teapot"});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("exploding_teapot"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rotating_star"), std::string::npos) << msg;
    EXPECT_NE(msg.find("binary_merger"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deep_amr"), std::string::npos) << msg;
    EXPECT_NE(msg.find("restart_soak"), std::string::npos) << msg;
  }
}

TEST(ScenarioOptions, SummaryMentionsScenario) {
  Options opt;
  opt.parse_cli({"--scenario=binary_merger"});
  EXPECT_NE(opt.summary().find("scenario=binary_merger"), std::string::npos)
      << opt.summary();
}

TEST(ScenarioOptions, ScenarioNameSurvivesSerialization) {
  // Options travel in component-creation parcels and checkpoint headers;
  // the scenario string must round-trip (checkpoint format v2).
  Options opt;
  scenario::apply(opt, "deep_amr");
  opt.max_level = 2;
  mhpx::serialization::OutputArchive out;
  out& opt;
  mhpx::serialization::InputArchive in(out.buffer());
  Options back;
  in& back;
  EXPECT_EQ(back.scenario, "deep_amr");
  EXPECT_EQ(back.problem, Options::Problem::rotating_star);
  EXPECT_EQ(back.max_level, 2u);
  EXPECT_EQ(back.refine_radius, opt.refine_radius);
}

TEST(ScenarioRegistry, ForOptionsInfersFromProblemWhenUnset) {
  Options opt;
  EXPECT_EQ(scenario::for_options(opt).name, "rotating_star");
  opt.problem = Options::Problem::binary_star;
  EXPECT_EQ(scenario::for_options(opt).name, "binary_merger");
  opt.scenario = "restart_soak";
  EXPECT_EQ(scenario::for_options(opt).name, "restart_soak");
}

}  // namespace
