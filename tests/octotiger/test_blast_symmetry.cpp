// Property test: a central (Sedov-like) blast evolved through the full
// solver must preserve the octant symmetry of the initial condition — any
// directional bias in the flux stencils, ghost fill, or gravity kernels
// breaks this immediately.

#include <gtest/gtest.h>

#include <cmath>

#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"

namespace {

using namespace octo;

void setup_blast(Simulation& sim) {
  sim.tree().for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const Vec3 p = g.cell_center(i, j, k);
          const double r = p.norm();
          const bool hot = r < 0.2;
          g.u(f_rho, i, j, k) = 1.0;
          g.u(f_sx, i, j, k) = 0.0;
          g.u(f_sy, i, j, k) = 0.0;
          g.u(f_sz, i, j, k) = 0.0;
          // Hot central sphere: 100x the ambient pressure.
          g.u(f_egas, i, j, k) = (hot ? 10.0 : 0.1) / (gamma_gas - 1.0);
        }
      }
    }
  });
}

TEST(BlastSymmetry, OctantsStayIdentical) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 10.0;  // uniform 32^3 mesh
  opt.gravity = false;
  opt.stop_step = 3;
  Simulation sim(opt);
  setup_blast(sim);
  sim.run();

  // Compare mirrored sample points across all 8 octants.
  const double probes[][3] = {
      {0.28, 0.03, 0.03}, {0.15, 0.15, 0.15}, {0.40, 0.10, 0.22}};
  for (const auto& q : probes) {
    const double ref = sim.tree().sample(f_rho, {q[0], q[1], q[2]});
    for (const double sx : {1.0, -1.0}) {
      for (const double sy : {1.0, -1.0}) {
        for (const double sz : {1.0, -1.0}) {
          const double v = sim.tree().sample(
              f_rho, {sx * q[0], sy * q[1], sz * q[2]});
          // The IC is cell-aligned-symmetric about the origin (centres at
          // +-(n+1/2)dx), so mirrored values must agree to rounding.
          EXPECT_NEAR(v, ref, 1e-12) << "octant " << sx << sy << sz;
        }
      }
    }
  }
}

TEST(BlastSymmetry, AxisPermutationSymmetry) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;
  opt.gravity = false;
  opt.stop_step = 2;
  Simulation sim(opt);
  setup_blast(sim);
  sim.run();
  // The problem is invariant under x/y/z permutations.
  const double a = sim.tree().sample(f_rho, {0.3, 0.05, 0.1});
  const double b = sim.tree().sample(f_rho, {0.1, 0.3, 0.05});
  const double c = sim.tree().sample(f_rho, {0.05, 0.1, 0.3});
  EXPECT_NEAR(a, b, 1e-12);
  EXPECT_NEAR(a, c, 1e-12);
}

TEST(BlastSymmetry, ShockMovesOutward) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 10.0;
  opt.gravity = false;
  Simulation sim(opt);
  setup_blast(sim);
  double t = 0.0;
  while (t < 0.05) {
    t += sim.step();
  }
  // Scan along +x: the compression peak (shock) must exist (rho > ambient)
  // and sit outside the initial hot sphere, moving outward with positive
  // radial momentum.
  double peak_rho = 0.0;
  double peak_x = 0.0;
  for (double x = 0.05; x < 0.9; x += 0.03) {
    const double rho = sim.tree().sample(f_rho, {x, 0.02, 0.02});
    if (rho > peak_rho) {
      peak_rho = rho;
      peak_x = x;
    }
  }
  EXPECT_GT(peak_rho, 1.1);  // compression above ambient
  EXPECT_GT(peak_x, 0.2);    // outside the initial bubble
  EXPECT_GT(sim.tree().sample(f_sx, {peak_x, 0.02, 0.02}), 0.0);
}

}  // namespace
