// End-to-end observability smoke test (CI gate for the profiling preset):
// a short rotating-star run with tracing on must emit a Chrome trace that
// parses as JSON, with balanced B/E events, task GUIDs carrying parents,
// the driver's solver phases present, and a critical path bounded by the
// traced wall time.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>

#include "core/report/json.hpp"
#include "minihpx/apex/apex.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"

namespace apex = mhpx::apex;
namespace trace = mhpx::apex::trace;

namespace {

octo::Options smoke_options() {
  octo::Options opt;
  opt.max_level = 2;
  opt.stop_step = 2;
  opt.threads = 4;
  opt.hydro_kernel = mkk::KernelType::kokkos_hpx;
  opt.multipole_kernel = mkk::KernelType::kokkos_hpx;
  opt.monopole_kernel = mkk::KernelType::kokkos_hpx;
  return opt;
}

}  // namespace

TEST(ObservabilitySmoke, TracedRunEmitsValidChromeTrace) {
  trace::enable(false);
  trace::clear();

  const octo::Options opt = smoke_options();
  {
    mhpx::Runtime rt{{opt.threads, 256 * 1024}};
    trace::enable(true);
    octo::Simulation sim(opt);
    sim.run();
    rt.scheduler().wait_idle();
    trace::enable(false);
  }

  const auto events = trace::snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(trace::dropped_count(), 0u);

  // Balanced B/E per GUID, tasks carry parents, phases are present.
  std::map<std::uint64_t, std::pair<int, int>> be;
  std::size_t task_slices = 0;
  std::size_t task_slices_with_parent = 0;
  std::set<std::string> phases;
  std::set<std::string> kernels;
  for (const auto& ev : events) {
    if (ev.ph == trace::EventPhase::begin) {
      ++be[ev.guid].first;
      const std::string_view cat(ev.category);
      if (cat == "task") {
        ++task_slices;
        if (ev.parent != 0) {
          ++task_slices_with_parent;
        }
      } else if (cat == "phase") {
        phases.insert(ev.name);
      } else if (cat == "kernel") {
        kernels.insert(ev.name);
      }
    } else if (ev.ph == trace::EventPhase::end) {
      ++be[ev.guid].second;
    }
  }
  for (const auto& [guid, counts] : be) {
    ASSERT_EQ(counts.first, counts.second) << "unbalanced guid " << guid;
  }
  EXPECT_GT(task_slices, 0u);
  EXPECT_GT(task_slices_with_parent, 0u);
  EXPECT_TRUE(phases.count("hydro.kernels")) << "driver phases not traced";
  EXPECT_TRUE(phases.count("gravity.kernels"));
  EXPECT_FALSE(kernels.empty()) << "minikokkos dispatches not traced";

  // The exported file is valid JSON with one entry per event.
  const std::string path = "observability_smoke_trace.json";
  ASSERT_TRUE(trace::export_chrome_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  in.close();
  const auto doc = rveval::report::json::parse(buf.str());
  const auto* te = doc.find("traceEvents");
  ASSERT_NE(te, nullptr);
  ASSERT_TRUE(te->is_array());
  // One entry per event plus one process_name metadata record per pid.
  std::set<std::uint32_t> pids;
  for (const auto& ev : events) {
    pids.insert(ev.pid);
  }
  EXPECT_EQ(te->size(), events.size() + pids.size());
  std::remove(path.c_str());

  // Critical path is a lower bound on the traced wall time.
  const auto cp = apex::analyze(events, opt.threads);
  EXPECT_GT(cp.tasks, 0u);
  EXPECT_GT(cp.critical_path_seconds, 0.0);
  EXPECT_LE(cp.critical_path_seconds, cp.wall_seconds + 1e-9);

  trace::clear();
}
