// Hydro solver validation: EoS properties, kernel-flavour equivalence,
// uniform-state invariance, and the Sod shock tube against the exact
// Riemann solution.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/hydro/eos.hpp"
#include "octotiger/hydro/kernels.hpp"

namespace {

using namespace octo;

// ------------------------------------------------------------------- EoS

TEST(Eos, PrimConsRoundTrip) {
  hydro::Prim q;
  q.rho = 1.3;
  q.vx = 0.2;
  q.vy = -0.4;
  q.vz = 0.1;
  q.p = 0.9;
  const double e = hydro::total_energy(q);
  const hydro::Prim r =
      hydro::to_prim(q.rho, q.rho * q.vx, q.rho * q.vy, q.rho * q.vz, e);
  EXPECT_NEAR(r.rho, q.rho, 1e-14);
  EXPECT_NEAR(r.vx, q.vx, 1e-14);
  EXPECT_NEAR(r.vy, q.vy, 1e-14);
  EXPECT_NEAR(r.vz, q.vz, 1e-14);
  EXPECT_NEAR(r.p, q.p, 1e-14);
}

TEST(Eos, FloorsApply) {
  const hydro::Prim q = hydro::to_prim(0.0, 0.0, 0.0, 0.0, -1.0);
  EXPECT_GE(q.rho, rho_floor);
  EXPECT_GE(q.p, p_floor);
}

TEST(Eos, SoundSpeed) {
  hydro::Prim q;
  q.rho = 1.0;
  q.p = 1.0;
  EXPECT_NEAR(hydro::sound_speed(q), std::sqrt(gamma_gas), 1e-14);
}

TEST(Eos, MinmodLimiter) {
  EXPECT_DOUBLE_EQ(hydro::minmod(1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(hydro::minmod(-2.0, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(hydro::minmod(1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(hydro::minmod(0.0, 5.0), 0.0);
}

// --------------------------------------------------- kernel equivalence

void fill_wavy(SubGrid& g) {
  for (std::size_t i = 0; i < NXE; ++i) {
    for (std::size_t j = 0; j < NXE; ++j) {
      for (std::size_t k = 0; k < NXE; ++k) {
        const double x = static_cast<double>(i) / NXE;
        const double y = static_cast<double>(j) / NXE;
        const double z = static_cast<double>(k) / NXE;
        const double rho = 1.0 + 0.3 * std::sin(6 * x) * std::cos(5 * y);
        const double vx = 0.2 * std::sin(4 * z);
        g.ue(f_rho, i, j, k) = rho;
        g.ue(f_sx, i, j, k) = rho * vx;
        g.ue(f_sy, i, j, k) = 0.1 * rho;
        g.ue(f_sz, i, j, k) = -0.05 * rho;
        g.ue(f_egas, i, j, k) = 1.5 + 0.5 * rho * vx * vx;
      }
    }
  }
}

TEST(HydroKernels, AllFlavoursProduceIdenticalRhs) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  SubGrid a({0, 0, 0}, 0.1);
  SubGrid b({0, 0, 0}, 0.1);
  SubGrid c({0, 0, 0}, 0.1);
  fill_wavy(a);
  fill_wavy(b);
  fill_wavy(c);
  hydro::compute_rhs(a, mkk::KernelType::legacy);
  hydro::compute_rhs(b, mkk::KernelType::kokkos_serial);
  hydro::compute_rhs(c, mkk::KernelType::kokkos_hpx);
  for (std::size_t f = 0; f < NF; ++f) {
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          EXPECT_EQ(a.rhs(f, i, j, k), b.rhs(f, i, j, k));
          EXPECT_EQ(a.rhs(f, i, j, k), c.rhs(f, i, j, k));
        }
      }
    }
  }
}

TEST(HydroKernels, UniformStateHasZeroRhs) {
  SubGrid g({0, 0, 0}, 0.1);
  for (std::size_t i = 0; i < NXE; ++i) {
    for (std::size_t j = 0; j < NXE; ++j) {
      for (std::size_t k = 0; k < NXE; ++k) {
        g.ue(f_rho, i, j, k) = 1.0;
        g.ue(f_sx, i, j, k) = 0.0;
        g.ue(f_sy, i, j, k) = 0.0;
        g.ue(f_sz, i, j, k) = 0.0;
        g.ue(f_egas, i, j, k) = 1.0;
      }
    }
  }
  hydro::compute_rhs(g, mkk::KernelType::legacy);
  for (std::size_t f = 0; f < NF; ++f) {
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          EXPECT_NEAR(g.rhs(f, i, j, k), 0.0, 1e-13);
        }
      }
    }
  }
}

TEST(HydroKernels, MaxSignalSpeedOfKnownState) {
  SubGrid g({0, 0, 0}, 0.1);
  for (std::size_t i = 0; i < NXE; ++i) {
    for (std::size_t j = 0; j < NXE; ++j) {
      for (std::size_t k = 0; k < NXE; ++k) {
        g.ue(f_rho, i, j, k) = 1.0;
        g.ue(f_sx, i, j, k) = 0.5;  // vx = 0.5
        g.ue(f_sy, i, j, k) = 0.0;
        g.ue(f_sz, i, j, k) = 0.0;
        // p = 1.0: egas = p/(gamma-1) + kin
        g.ue(f_egas, i, j, k) = 1.0 / (gamma_gas - 1.0) + 0.125;
      }
    }
  }
  EXPECT_NEAR(hydro::max_signal_speed(g), 0.5 + std::sqrt(gamma_gas), 1e-12);
}

TEST(HydroKernels, FlopModelPositive) {
  EXPECT_GT(hydro::rhs_flops_per_cell(), 100.0);
  EXPECT_GT(hydro::rhs_bytes_per_cell(), 10.0);
}

// ------------------------------------------------------- Sod shock tube

/// Exact solution of the Riemann problem for the Sod setup at x/t,
/// gamma = 5/3 (standard two-rarefaction/shock iteration).
struct ExactRiemann {
  double rho_l = 1.0, p_l = 1.0, rho_r = 0.125, p_r = 0.1;
  double g = gamma_gas;

  [[nodiscard]] double sound(double p, double rho) const {
    return std::sqrt(g * p / rho);
  }

  // Pressure function f(p) for one side.
  [[nodiscard]] double f_side(double p, double ps, double rhos) const {
    const double a = sound(ps, rhos);
    if (p > ps) {  // shock
      const double A = 2.0 / ((g + 1) * rhos);
      const double B = (g - 1) / (g + 1) * ps;
      return (p - ps) * std::sqrt(A / (p + B));
    }
    // rarefaction
    return 2.0 * a / (g - 1) *
           (std::pow(p / ps, (g - 1) / (2 * g)) - 1.0);
  }

  [[nodiscard]] double p_star() const {
    double p = 0.5 * (p_l + p_r);
    for (int it = 0; it < 200; ++it) {
      const double f = f_side(p, p_l, rho_l) + f_side(p, p_r, rho_r);
      const double h = 1e-8 * p;
      const double fp = (f_side(p + h, p_l, rho_l) +
                         f_side(p + h, p_r, rho_r) - f) / h;
      const double step = f / fp;
      p = std::max(1e-8, p - step);
      if (std::abs(step) < 1e-13 * p) {
        break;
      }
    }
    return p;
  }

  /// Density at similarity coordinate xi = x/t.
  [[nodiscard]] double density(double xi) const {
    const double ps = p_star();
    const double us =
        0.5 * (f_side(ps, p_r, rho_r) - f_side(ps, p_l, rho_l));
    const double al = sound(p_l, rho_l);
    // Left rarefaction (p* < p_l for Sod).
    const double rho_star_l = rho_l * std::pow(ps / p_l, 1.0 / g);
    const double a_star_l = sound(ps, rho_star_l);
    // Right shock (p* > p_r for Sod).
    const double ratio = ps / p_r;
    const double rho_star_r =
        rho_r * (ratio + (g - 1) / (g + 1)) /
        ((g - 1) / (g + 1) * ratio + 1.0);
    const double shock_speed =
        sound(p_r, rho_r) *
        std::sqrt((g + 1) / (2 * g) * ratio + (g - 1) / (2 * g));

    if (xi < -al) {
      return rho_l;
    }
    if (xi < us - a_star_l) {  // inside the rarefaction fan
      const double a = (2.0 / (g + 1)) * (al - (g - 1) / 2.0 * xi);
      return rho_l * std::pow(a / al, 2.0 / (g - 1));
    }
    if (xi < us) {
      return rho_star_l;
    }
    if (xi < shock_speed) {
      return rho_star_r;
    }
    return rho_r;
  }
};

TEST(SodShockTube, MatchesExactSolution) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 10.0;  // fully refined: uniform 32^3 mesh
  opt.gravity = false;
  opt.cfl = 0.4;
  Simulation sim(opt);
  ASSERT_EQ(sim.tree().leaf_count(), 64u);

  // Sod initial condition along x.
  ExactRiemann exact;
  sim.tree().for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const bool left = g.cell_center(i, j, k).x < 0.0;
          const double rho = left ? exact.rho_l : exact.rho_r;
          const double p = left ? exact.p_l : exact.p_r;
          g.u(f_rho, i, j, k) = rho;
          g.u(f_sx, i, j, k) = 0.0;
          g.u(f_sy, i, j, k) = 0.0;
          g.u(f_sz, i, j, k) = 0.0;
          g.u(f_egas, i, j, k) = p / (gamma_gas - 1.0);
        }
      }
    }
  });

  const Cons before = sim.totals();
  double t = 0.0;
  const double t_end = 0.2;
  while (t < t_end) {
    t += sim.step();
  }

  // Conservation: no wave has reached the domain boundary at t = 0.2.
  const Cons after = sim.totals();
  EXPECT_NEAR(after.rho, before.rho, 1e-10 * before.rho);
  EXPECT_NEAR(after.egas, before.egas, 1e-10 * before.egas);

  // Compare the density profile along the x row through cell centers
  // nearest y = z = 0 against the exact solution at the reached time.
  double max_err = 0.0;
  for (double x = -0.9; x < 0.95; x += 0.05) {
    const double got = sim.tree().sample(f_rho, {x, 0.03, 0.03});
    const double want = exact.density(x / t);
    max_err = std::max(max_err, std::abs(got - want));
  }
  // 32 cells across the tube with a 2nd-order scheme: discontinuities are
  // smeared over a few cells; 0.15 absolute density error is the expected
  // envelope (the plateau values themselves match much tighter).
  EXPECT_LT(max_err, 0.15);

  // Plateau checks away from the smeared discontinuities.
  EXPECT_NEAR(sim.tree().sample(f_rho, {-0.9, 0.03, 0.03}), exact.rho_l,
              0.01);
  EXPECT_NEAR(sim.tree().sample(f_rho, {0.9, 0.03, 0.03}), exact.rho_r,
              0.01);
}

TEST(HydroDriver, UniformStateIsSteady) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;
  opt.gravity = false;
  opt.stop_step = 3;
  Simulation sim(opt);
  sim.tree().for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          g.u(f_rho, i, j, k) = 0.7;
          g.u(f_sx, i, j, k) = 0.0;
          g.u(f_sy, i, j, k) = 0.0;
          g.u(f_sz, i, j, k) = 0.0;
          g.u(f_egas, i, j, k) = 0.4;
        }
      }
    }
  });
  sim.run();
  sim.tree().for_each_leaf([&](TreeNode& leaf) {
    for (std::size_t i = 0; i < NX; ++i) {
      EXPECT_NEAR(leaf.grid.u(f_rho, i, i, i), 0.7, 1e-12);
      EXPECT_NEAR(leaf.grid.u(f_egas, i, i, i), 0.4, 1e-12);
    }
  });
}

}  // namespace
