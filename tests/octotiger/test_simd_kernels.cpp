// rveval::simd kernel gates (ctest labels: simd, simtest).
//
// The subsystem's contract is metamorphic: the simd ABI is purely a speed
// knob. Level 1 checks the hydro and gravity line kernels cell for cell
// across every runtime-selectable ABI; level 2 runs the full fig7-style
// rotating-star simulation — gravity solves, two RK2 hydro stages per
// step, CFL reductions — under --simd_abi=SCALAR and --simd_abi=NATIVE
// and demands bit-identical state, not approximately-equal state.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/simd/abi.hpp"
#include "core/simd/detect.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/gravity/solver.hpp"
#include "octotiger/hydro/kernels.hpp"

namespace {

using namespace octo;
namespace rs = rveval::simd;

const std::vector<rs::AbiKind> kAllAbis = {
    rs::AbiKind::scalar, rs::AbiKind::sse2, rs::AbiKind::avx2,
    rs::AbiKind::native};

void fill_wavy(SubGrid& g) {
  for (std::size_t i = 0; i < NXE; ++i) {
    for (std::size_t j = 0; j < NXE; ++j) {
      for (std::size_t k = 0; k < NXE; ++k) {
        const double x = static_cast<double>(i) / NXE;
        const double y = static_cast<double>(j) / NXE;
        const double z = static_cast<double>(k) / NXE;
        const double rho = 1.0 + 0.3 * std::sin(6 * x) * std::cos(5 * y);
        const double vx = 0.2 * std::sin(4 * z);
        g.ue(f_rho, i, j, k) = rho;
        g.ue(f_sx, i, j, k) = rho * vx;
        g.ue(f_sy, i, j, k) = 0.1 * rho;
        g.ue(f_sz, i, j, k) = -0.05 * rho * std::cos(3 * y);
        g.ue(f_egas, i, j, k) = 1.5 + 0.5 * rho * vx * vx;
      }
    }
  }
}

TEST(SimdHydroKernel, RhsBitIdenticalAcrossAbis) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  SubGrid ref({0, 0, 0}, 0.1);
  fill_wavy(ref);
  hydro::compute_rhs(ref, mkk::KernelType::kokkos_serial,
                     rs::AbiKind::scalar);
  for (const rs::AbiKind abi : kAllAbis) {
    SubGrid g({0, 0, 0}, 0.1);
    fill_wavy(g);
    hydro::compute_rhs(g, mkk::KernelType::kokkos_serial, abi);
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            ASSERT_EQ(ref.rhs(f, i, j, k), g.rhs(f, i, j, k))
                << rs::to_string(abi) << " f=" << f << " (" << i << "," << j
                << "," << k << ")";
          }
        }
      }
    }
  }
}

TEST(SimdHydroKernel, MaxSignalSpeedBitIdenticalAcrossAbis) {
  SubGrid g({0, 0, 0}, 0.1);
  fill_wavy(g);
  const double ref = hydro::max_signal_speed(g, rs::AbiKind::scalar);
  EXPECT_GT(ref, 0.0);
  for (const rs::AbiKind abi : kAllAbis) {
    EXPECT_EQ(ref, hydro::max_signal_speed(g, abi)) << rs::to_string(abi);
  }
}

Options small_star() {
  Options opt;
  opt.max_level = 2;         // mixed-level tree: exercises coarse P2P
  opt.refine_radius = 0.45;
  opt.stop_step = 2;
  opt.threads = 2;
  return opt;
}

TEST(SimdGravityKernel, SolveBitIdenticalAcrossAbis) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Simulation ref_sim(small_star());
  gravity::solve_all(ref_sim.tree(), 0.5, mkk::KernelType::kokkos_serial,
                     mkk::KernelType::kokkos_serial, rs::AbiKind::scalar);
  for (const rs::AbiKind abi : kAllAbis) {
    Simulation sim(small_star());
    gravity::solve_all(sim.tree(), 0.5, mkk::KernelType::kokkos_serial,
                       mkk::KernelType::kokkos_serial, abi);
    const auto& ref_leaves = ref_sim.tree().leaves();
    const auto& leaves = sim.tree().leaves();
    ASSERT_EQ(ref_leaves.size(), leaves.size());
    for (std::size_t l = 0; l < leaves.size(); ++l) {
      const SubGrid& a = ref_leaves[l]->grid;
      const SubGrid& b = leaves[l]->grid;
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            ASSERT_EQ(a.phi(i, j, k), b.phi(i, j, k))
                << rs::to_string(abi) << " leaf " << l;
            ASSERT_EQ(a.g(0, i, j, k), b.g(0, i, j, k));
            ASSERT_EQ(a.g(1, i, j, k), b.g(1, i, j, k));
            ASSERT_EQ(a.g(2, i, j, k), b.g(2, i, j, k));
          }
        }
      }
    }
  }
}

/// The legacy flavour is pinned to the scalar ABI regardless of the
/// requested one — the historical kernel must not change meaning.
TEST(SimdGravityKernel, LegacyFlavourMatchesScalarKokkos) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Simulation a_sim(small_star());
  Simulation b_sim(small_star());
  gravity::solve_all(a_sim.tree(), 0.5, mkk::KernelType::legacy,
                     mkk::KernelType::legacy, rs::AbiKind::native);
  gravity::solve_all(b_sim.tree(), 0.5, mkk::KernelType::kokkos_serial,
                     mkk::KernelType::kokkos_serial, rs::AbiKind::scalar);
  const auto& al = a_sim.tree().leaves();
  const auto& bl = b_sim.tree().leaves();
  ASSERT_EQ(al.size(), bl.size());
  for (std::size_t l = 0; l < al.size(); ++l) {
    for (std::size_t i = 0; i < NX; ++i) {
      EXPECT_EQ(al[l]->grid.phi(i, i, i), bl[l]->grid.phi(i, i, i));
      EXPECT_EQ(al[l]->grid.g(0, i, i, i), bl[l]->grid.g(0, i, i, i));
    }
  }
}

// ------------------------------------------------- metamorphic star gate

struct StarState {
  std::vector<double> u;
  double last_dt = 0.0;
  unsigned steps = 0;
};

StarState run_star(rs::AbiKind abi) {
  mhpx::Runtime rt{{2, 128 * 1024}};
  Options opt = small_star();
  opt.simd_abi = abi;
  Simulation sim(opt);
  sim.run();
  StarState s;
  s.last_dt = sim.stats().last_dt;
  s.steps = sim.stats().steps;
  sim.tree().for_each_leaf([&](TreeNode& leaf) {
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            s.u.push_back(leaf.grid.u(f, i, j, k));
          }
        }
      }
    }
  });
  return s;
}

TEST(SimdMetamorphic, RotatingStarRunIsWidthIndependent) {
  const StarState scalar = run_star(rs::AbiKind::scalar);
  ASSERT_EQ(scalar.steps, 2u);
  ASSERT_FALSE(scalar.u.empty());
  for (const rs::AbiKind abi :
       {rs::AbiKind::sse2, rs::AbiKind::native}) {
    const StarState wide = run_star(abi);
    ASSERT_EQ(scalar.steps, wide.steps);
    // Bitwise, not approximate: the lane width must be unobservable.
    EXPECT_EQ(scalar.last_dt, wide.last_dt) << rs::to_string(abi);
    ASSERT_EQ(scalar.u.size(), wide.u.size());
    for (std::size_t n = 0; n < scalar.u.size(); ++n) {
      ASSERT_EQ(scalar.u[n], wide.u[n])
          << rs::to_string(abi) << " cell-field " << n;
    }
  }
}

}  // namespace
