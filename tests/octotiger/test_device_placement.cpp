// Device placement of the Octo-Tiger kernels (ctest labels:
// device;resilience).
//
// The metamorphic relation: kernel *placement* is an implementation detail.
// A rotating-star run with the hydro and gravity kernels on the modelled
// device streams must produce bit-identical conserved totals and time steps
// to the host (Serial) run — the device bodies execute the same serial
// loops over the same host-resident data, only their cost moves to the
// accelerator model. And the resilient variant must hold the same relation
// *while device faults are being injected and replayed*.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/testing/seed_env.hpp"
#include "minihpx/resilience/fault_injector.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/testing/det.hpp"
#include "minikokkos/minikokkos.hpp"
#include "octotiger/driver.hpp"

namespace {

using namespace octo;
using mkk::device::Device;

Options small_star(mkk::KernelType kind) {
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;  // uniform 8-leaf mesh
  opt.stop_step = 2;
  opt.threads = 2;
  opt.hydro_kernel = kind;
  opt.multipole_kernel = kind;
  opt.monopole_kernel = kind;
  return opt;
}

struct RunResult {
  double rho = 0.0;
  double egas = 0.0;
  double last_dt = 0.0;
  unsigned steps = 0;
};

RunResult run_star(mkk::KernelType kind, std::uint64_t seed) {
  mhpx::testing::ScopedDetScheduling guard(seed);
  Device::instance().reset();
  mhpx::Runtime rt{{2, 128 * 1024}};
  Simulation sim(small_star(kind));
  sim.run();
  RunResult r;
  r.rho = sim.totals().rho;
  r.egas = sim.totals().egas;
  r.last_dt = sim.stats().last_dt;
  r.steps = sim.stats().steps;
  return r;
}

struct DevicePlacement : ::testing::Test {
  void SetUp() override {
    Device::instance().set_fault_injector(nullptr);
    Device::instance().reset();
  }
  void TearDown() override {
    Device::instance().set_fault_injector(nullptr);
    Device::instance().reset();
  }
};

TEST_F(DevicePlacement, HostAndDeviceRunsAgreeBitIdentically) {
  const std::uint64_t seed = rveval::testing::sched_seed();
  const auto host = run_star(mkk::KernelType::kokkos_serial, seed);
  const auto device = run_star(mkk::KernelType::kokkos_device, seed);

  // The device run really went through the modelled streams: kernel
  // launches, staged transfers and energy all accrued.
  const auto t = Device::instance().totals();
  EXPECT_GT(t.launches, 0u);
  EXPECT_GT(t.copies, 0u);
  EXPECT_GT(t.copy_bytes, 0.0);
  EXPECT_GT(t.energy_joules, 0.0);
  EXPECT_EQ(t.faults, 0u);

  ASSERT_EQ(host.steps, 2u);
  ASSERT_EQ(device.steps, 2u);
  // Bitwise, not approximate: placement must be unobservable.
  EXPECT_EQ(host.rho, device.rho)
      << rveval::testing::seed_env().repro_line();
  EXPECT_EQ(host.egas, device.egas);
  EXPECT_EQ(host.last_dt, device.last_dt);
}

TEST_F(DevicePlacement, ReplayRecoversInjectedDeviceFaultsBitIdentically) {
  const std::uint64_t seed = rveval::testing::sched_seed();
  const auto clean = run_star(mkk::KernelType::kokkos_device, seed);

  // Every 7th kernel-launch decision corrupts the launch; ReplayDevice
  // must detect each one and re-execute until the step stream is whole.
  mhpx::resilience::FaultInjector injector({.fault_every = 7});
  Device::instance().set_fault_injector(&injector);
  const auto replayed = run_star(mkk::KernelType::kokkos_device_replay, seed);
  const auto t = Device::instance().totals();
  Device::instance().set_fault_injector(nullptr);

  EXPECT_GT(injector.faults_injected(), 0u)
      << "fault rate too low to exercise replay in this run";
  EXPECT_EQ(t.faults, injector.faults_injected());
  EXPECT_EQ(t.replays, t.faults);  // every corrupted launch replayed once

  ASSERT_EQ(replayed.steps, 2u);
  EXPECT_EQ(clean.rho, replayed.rho)
      << rveval::testing::seed_env().repro_line();
  EXPECT_EQ(clean.egas, replayed.egas);
  EXPECT_EQ(clean.last_dt, replayed.last_dt);
}

TEST_F(DevicePlacement, UnprotectedDeviceRunSurfacesTheFault) {
  // Same injection, plain kokkos_device (no replay budget): the fault is
  // latched and thrown from the next fence instead of being absorbed.
  const std::uint64_t seed = rveval::testing::sched_seed();
  mhpx::resilience::FaultInjector injector({.fault_every = 3});
  Device::instance().set_fault_injector(&injector);
  EXPECT_THROW(run_star(mkk::KernelType::kokkos_device, seed),
               mkk::device::device_fault);
  Device::instance().set_fault_injector(nullptr);
}

}  // namespace
