// Tests for dynamic regridding: refinement follows the density field.
//
// The state-preservation checks are property-based: instead of two
// hand-picked meshes, the invariants (mass conservation, exact same-level
// copies, idempotence) are asserted across generated octree shapes —
// uniform meshes, partially refined rotating stars and binaries. A failing
// shape prints its RVEVAL_PROP_SEED replay line.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "../support/octo_gen.hpp"
#include "minihpx/runtime.hpp"
#include "minihpx/testing/property.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/init/rotating_star.hpp"

namespace {

using namespace octo;
namespace prop = mhpx::testing::prop;

struct RegridTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 128 * 1024}};
};

TEST_F(RegridTest, RefinementFollowsTheStar) {
  // Build with a refinement sphere that is *larger* than the star; after
  // regrid, only star-bearing regions remain refined.
  Options opt;
  opt.max_level = 3;
  opt.refine_radius = 0.9;  // over-refined initial mesh
  Simulation sim(opt);
  const std::size_t before = sim.tree().leaf_count();
  const std::size_t after = sim.regrid(1e-4);
  EXPECT_LT(after, before);  // ambient-only refined regions coarsened
  // The star centre stays at max level; a far corner is coarse.
  EXPECT_EQ(sim.tree().leaf_containing({0.0, 0.0, 0.0}).level, 3u);
  EXPECT_LT(sim.tree().leaf_containing({0.9, 0.9, 0.9}).level, 3u);
}

TEST_F(RegridTest, ConservationHoldsAcrossGeneratedShapes) {
  const auto result = prop::for_all(0x5eed, 6, [](prop::Gen& g) {
    const Options opt = octo::testing::gen_octree_shape(g);
    Simulation sim(opt);
    const double mass_before = sim.totals().rho;
    const double rho_c_before = sim.tree().sample(f_rho, {0.02, 0.02, 0.02});
    sim.regrid(1e-4);
    const double mass_after = sim.totals().rho;
    // Piecewise-constant resampling: mass preserved to a few percent on
    // every shape, however the criterion reshapes the mesh.
    prop::require(std::abs(mass_after - mass_before) <= 0.05 * mass_before,
                  "regrid lost mass: " + std::to_string(mass_before) +
                      " -> " + std::to_string(mass_after) + " on " +
                      opt.summary());
    if (opt.problem == Options::Problem::rotating_star) {
      // The dense centre stays at max_level, so its cells are plain
      // same-level copies: exact, not approximate.
      const double rho_c_after =
          sim.tree().sample(f_rho, {0.02, 0.02, 0.02});
      prop::require(std::abs(rho_c_after - rho_c_before) <= 1e-12,
                    "same-level central density not copied exactly");
    }
  });
  EXPECT_TRUE(result) << result.message;
}

TEST_F(RegridTest, RegridIsIdempotentOnGeneratedShapes) {
  // Applying the same criterion twice is a fixed point: the second regrid
  // reproduces the mesh, and same-level resampling is a plain copy, so the
  // totals are bit-identical.
  const auto result = prop::for_all(0x5eed, 4, [](prop::Gen& g) {
    const Options opt = octo::testing::gen_octree_shape(g);
    Simulation sim(opt);
    const std::size_t n1 = sim.regrid(1e-4);
    const double mass1 = sim.totals().rho;
    const std::size_t n2 = sim.regrid(1e-4);
    prop::require(n2 == n1, "second regrid reshaped a settled mesh: " +
                                std::to_string(n1) + " -> " +
                                std::to_string(n2) + " leaves");
    prop::require(sim.totals().rho == mass1,
                  "identity regrid changed the state");
  });
  EXPECT_TRUE(result) << result.message;
}

TEST_F(RegridTest, RunContinuesAfterRegrid) {
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 0.45;
  opt.stop_step = 1;
  Simulation sim(opt);
  sim.step();
  sim.regrid(1e-4);
  const double dt = sim.step();  // full solver on the new mesh
  EXPECT_GT(dt, 0.0);
  EXPECT_EQ(sim.stats().steps, 2u);
  // Star still bound after the regrid + step.
  EXPECT_GT(sim.tree().sample(f_rho, {0.02, 0.02, 0.02}), 0.1);
}

}  // namespace
