// Tests for dynamic regridding: refinement follows the density field.

#include <gtest/gtest.h>

#include <random>

#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/init/rotating_star.hpp"

namespace {

using namespace octo;

struct RegridTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 128 * 1024}};
};

TEST_F(RegridTest, RefinementFollowsTheStar) {
  // Build with a refinement sphere that is *larger* than the star; after
  // regrid, only star-bearing regions remain refined.
  Options opt;
  opt.max_level = 3;
  opt.refine_radius = 0.9;  // over-refined initial mesh
  Simulation sim(opt);
  const std::size_t before = sim.tree().leaf_count();
  const std::size_t after = sim.regrid(1e-4);
  EXPECT_LT(after, before);  // ambient-only refined regions coarsened
  // The star centre stays at max level; a far corner is coarse.
  EXPECT_EQ(sim.tree().leaf_containing({0.0, 0.0, 0.0}).level, 3u);
  EXPECT_LT(sim.tree().leaf_containing({0.9, 0.9, 0.9}).level, 3u);
}

TEST_F(RegridTest, StatePreservedToSamplingAccuracy) {
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 0.45;
  Simulation sim(opt);
  const double mass_before = sim.totals().rho;
  const double rho_c_before = sim.tree().sample(f_rho, {0.02, 0.02, 0.02});
  sim.regrid(1e-4);
  const double mass_after = sim.totals().rho;
  const double rho_c_after = sim.tree().sample(f_rho, {0.02, 0.02, 0.02});
  // Piecewise-constant resampling: mass preserved to a few percent, the
  // central density (same-level region) exactly.
  EXPECT_NEAR(mass_after, mass_before, 0.05 * mass_before);
  EXPECT_NEAR(rho_c_after, rho_c_before, 1e-12);
}

TEST_F(RegridTest, SameLevelRegionsAreCopiedExactly) {
  // If the regrid criterion reproduces the same mesh, the state must be
  // bit-identical (sampling from equal-level cells is a plain copy).
  Options opt;
  opt.max_level = 1;
  opt.refine_radius = 10.0;  // uniform mesh; density criterion keeps it
  Simulation sim(opt);
  const double probe_before = sim.tree().sample(f_egas, {0.1, -0.3, 0.2});
  const std::size_t n = sim.regrid(1e-12);  // everything above threshold
  EXPECT_EQ(n, 8u);  // same uniform mesh
  EXPECT_EQ(sim.tree().sample(f_egas, {0.1, -0.3, 0.2}), probe_before);
}

TEST_F(RegridTest, RunContinuesAfterRegrid) {
  Options opt;
  opt.max_level = 2;
  opt.refine_radius = 0.45;
  opt.stop_step = 1;
  Simulation sim(opt);
  sim.step();
  sim.regrid(1e-4);
  const double dt = sim.step();  // full solver on the new mesh
  EXPECT_GT(dt, 0.0);
  EXPECT_EQ(sim.stats().steps, 2u);
  // Star still bound after the regrid + step.
  EXPECT_GT(sim.tree().sample(f_rho, {0.02, 0.02, 0.02}), 0.1);
}

}  // namespace
