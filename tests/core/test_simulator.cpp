// Tests for trace capture and the discrete-event core simulator, including
// the property sweeps DESIGN.md §5 calls for (monotonicity, Amdahl limits).

#include <gtest/gtest.h>

#include <tuple>

#include "core/sim/core_simulator.hpp"
#include "core/sim/trace.hpp"
#include "minihpx/runtime.hpp"

namespace sim = rveval::sim;
namespace arch = rveval::arch;

namespace {

sim::Phase uniform_phase(std::size_t tasks, double flops_each,
                         double bytes_each = 0.0) {
  sim::Phase p;
  p.name = "uniform";
  for (std::size_t i = 0; i < tasks; ++i) {
    p.tasks.push_back(sim::TaskRecord{flops_each, bytes_each, 0});
  }
  return p;
}

sim::SimOptions with_cores(unsigned cores) {
  sim::SimOptions o;
  o.cores = cores;
  o.charge_spawn_overhead = false;  // pure-compute pricing for exact checks
  return o;
}

TEST(CoreSimulator, SingleTaskTimeIsFlopsOverRate) {
  const auto cpu = arch::u74_mc();
  sim::CoreSimulator s(cpu);
  sim::TaskRecord t{cpu.scalar_flops_per_core(), 0.0, 0};  // 1 second of work
  EXPECT_NEAR(s.task_seconds(t, with_cores(1)), 1.0, 1e-12);
}

TEST(CoreSimulator, SpawnOverheadChargedWhenEnabled) {
  const auto cpu = arch::u74_mc();
  sim::CoreSimulator s(cpu);
  sim::TaskRecord t{0.0, 0.0, 0};
  sim::SimOptions on;
  on.cores = 1;
  on.charge_spawn_overhead = true;
  EXPECT_DOUBLE_EQ(s.task_seconds(t, on),
                   arch::runtime_overheads(cpu).task_spawn_seconds);
}

TEST(CoreSimulator, MemoryBoundTaskPricedByBandwidth) {
  const auto cpu = arch::jh7110();
  sim::CoreSimulator s(cpu);
  const double one_gib = 1024.0 * 1024.0 * 1024.0;
  sim::TaskRecord t{0.0, cpu.mem_bw_gib * one_gib, 0};  // 1 s at full node bw
  EXPECT_NEAR(s.task_seconds(t, with_cores(1)), 1.0, 1e-9);
  // With 4 cores sharing the bus, a single task only gets 1/4 of it.
  EXPECT_NEAR(s.task_seconds(t, with_cores(4)), 4.0, 1e-9);
}

TEST(CoreSimulator, PerfectScalingForManyUniformTasks) {
  const auto cpu = arch::jh7110();
  sim::CoreSimulator s(cpu);
  const auto phase = uniform_phase(64, cpu.scalar_flops_per_core() / 64.0);
  const double t1 = s.simulate(phase, with_cores(1)).total_seconds;
  const double t4 = s.simulate(phase, with_cores(4)).total_seconds;
  EXPECT_NEAR(t1 / t4, 4.0, 0.01);
}

TEST(CoreSimulator, SingleTaskDoesNotScale) {
  // Amdahl: one big task gains nothing from more cores.
  const auto cpu = arch::jh7110();
  sim::CoreSimulator s(cpu);
  const auto phase = uniform_phase(1, cpu.scalar_flops_per_core());
  const double t1 = s.simulate(phase, with_cores(1)).total_seconds;
  const double t4 = s.simulate(phase, with_cores(4)).total_seconds;
  EXPECT_NEAR(t4, t1, 1e-12);
}

TEST(CoreSimulator, MemoryCeilingCapsScaling) {
  // A phase that saturates the memory system cannot speed up with cores —
  // the §6.2.1 observation ("the slow connection to the memory kicks in").
  const auto cpu = arch::jh7110();
  sim::CoreSimulator s(cpu);
  const double one_gib = 1024.0 * 1024.0 * 1024.0;
  sim::Phase phase;
  for (int i = 0; i < 16; ++i) {
    // Tiny compute, heavy traffic.
    phase.tasks.push_back(
        sim::TaskRecord{1.0, cpu.mem_bw_gib * one_gib / 16.0, 0});
  }
  const double t1 = s.simulate(phase, with_cores(1)).total_seconds;
  const double t4 = s.simulate(phase, with_cores(4)).total_seconds;
  EXPECT_NEAR(t1, 1.0, 1e-6);
  EXPECT_NEAR(t4, 1.0, 1e-6);  // bandwidth-bound: no speed-up
}

TEST(CoreSimulator, FasterCpuYieldsShorterTime) {
  const auto phase = uniform_phase(32, 1e9);
  const double rv = sim::CoreSimulator(arch::u74_mc())
                        .simulate(phase, with_cores(4))
                        .total_seconds;
  const double fx = sim::CoreSimulator(arch::a64fx())
                        .simulate(phase, with_cores(4))
                        .total_seconds;
  const double amd = sim::CoreSimulator(arch::epyc_7543())
                         .simulate(phase, with_cores(4))
                         .total_seconds;
  EXPECT_GT(rv, fx);
  EXPECT_GT(fx, amd);
  // The paper's headline gap: RISC-V about five times slower than A64FX.
  EXPECT_GT(rv / fx, 3.0);
  EXPECT_LT(rv / fx, 7.0);
}

TEST(CoreSimulator, SimdSpeedupScalesComputeTime) {
  const auto phase = uniform_phase(32, 1e9);
  // U74: no vector unit, its model factor is 1.0 — no change.
  sim::CoreSimulator rv(arch::u74_mc());
  sim::SimOptions rv_simd = with_cores(4);
  rv_simd.simd_speedup = arch::u74_mc().simd_kernel_speedup;
  EXPECT_DOUBLE_EQ(rv.simulate(phase, rv_simd).total_seconds,
                   rv.simulate(phase, with_cores(4)).total_seconds);
  // A64FX: SIMD-typed kernels run ~1.8x faster (the factor behind the
  // paper's ~7x Octo-Tiger gap vs its ~5x Maclaurin gap).
  sim::CoreSimulator fx(arch::a64fx());
  sim::SimOptions fx_simd = with_cores(4);
  fx_simd.simd_speedup = arch::a64fx().simd_kernel_speedup;
  const double scalar = fx.simulate(phase, with_cores(4)).total_seconds;
  const double simd = fx.simulate(phase, fx_simd).total_seconds;
  EXPECT_NEAR(scalar / simd, arch::a64fx().simd_kernel_speedup, 1e-9);
}

TEST(CoreSimulator, DistributedCommAddsTime) {
  const auto cpu = arch::jh7110();
  sim::CoreSimulator s(cpu);
  sim::Phase phase;
  for (std::uint32_t loc = 0; loc < 2; ++loc) {
    for (int i = 0; i < 8; ++i) {
      phase.tasks.push_back(
          sim::TaskRecord{cpu.scalar_flops_per_core() / 8.0, 0.0, loc});
    }
  }
  const auto no_comm =
      s.simulate_distributed(phase, 2, arch::gbe_tcp(), with_cores(4));
  phase.parcels.push_back(sim::ParcelRecord{0, 1, 1 << 20});
  phase.parcels.push_back(sim::ParcelRecord{1, 0, 1 << 20});
  const auto comm =
      s.simulate_distributed(phase, 2, arch::gbe_tcp(), with_cores(4));
  EXPECT_GT(comm.total_seconds, no_comm.total_seconds);
  EXPECT_GT(comm.comm_seconds, 0.0);
}

TEST(CoreSimulator, LocalParcelsAreFree) {
  sim::CoreSimulator s(arch::jh7110());
  sim::Phase phase = uniform_phase(4, 1e6);
  phase.parcels.push_back(sim::ParcelRecord{0, 0, 1 << 20});  // local
  const auto c = s.simulate_distributed(phase, 1, arch::gbe_tcp(),
                                        with_cores(4));
  EXPECT_DOUBLE_EQ(c.comm_seconds, 0.0);
}

TEST(CoreSimulator, MpiCommCostsMoreThanTcp) {
  sim::CoreSimulator s(arch::jh7110());
  sim::Phase phase;
  for (std::uint32_t loc = 0; loc < 2; ++loc) {
    for (int i = 0; i < 4; ++i) {
      phase.tasks.push_back(sim::TaskRecord{1e6, 0.0, loc});
    }
    for (int m = 0; m < 20; ++m) {
      phase.parcels.push_back(
          sim::ParcelRecord{loc, 1 - loc, 100 * 1024});
    }
  }
  const auto tcp =
      s.simulate_distributed(phase, 2, arch::gbe_tcp(), with_cores(4));
  const auto mpi =
      s.simulate_distributed(phase, 2, arch::gbe_mpi(), with_cores(4));
  EXPECT_GT(mpi.total_seconds, tcp.total_seconds);
}

TEST(CoreSimulator, PhasesAreSequential) {
  sim::CoreSimulator s(arch::jh7110());
  const auto p = uniform_phase(8, 1e8);
  std::vector<sim::Phase> phases{p, p, p};
  const double one = s.simulate(p, with_cores(2)).total_seconds;
  EXPECT_NEAR(s.total_seconds(phases, with_cores(2)), 3.0 * one, 1e-9);
}

// Property sweep: makespan is monotone in cores, never better than the
// perfect-speedup bound, and never worse than serial.
class SimulatorProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(SimulatorProperties, MakespanBounds) {
  const auto [tasks, cores] = GetParam();
  sim::CoreSimulator s(arch::jh7110());
  const auto phase = uniform_phase(tasks, 1e7);
  const double serial = s.simulate(phase, with_cores(1)).total_seconds;
  const double par = s.simulate(phase, with_cores(cores)).total_seconds;
  EXPECT_LE(par, serial * (1.0 + 1e-12));
  EXPECT_GE(par * cores, serial * (1.0 - 1e-12));  // no superlinear speed-up
}

TEST_P(SimulatorProperties, MonotoneInCores) {
  const auto [tasks, cores] = GetParam();
  sim::CoreSimulator s(arch::jh7110());
  const auto phase = uniform_phase(tasks, 1e7);
  double prev = s.simulate(phase, with_cores(1)).total_seconds;
  for (unsigned c = 2; c <= cores; ++c) {
    const double t = s.simulate(phase, with_cores(c)).total_seconds;
    EXPECT_LE(t, prev * (1.0 + 1e-12));
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TasksByCores, SimulatorProperties,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 4, 17, 64, 257),
                       ::testing::Values<unsigned>(2, 3, 4, 8)));

TEST(TraceCollector, CapturesAnnotatedTasks) {
  sim::TraceCollector trace;
  {
    mhpx::Runtime rt{{2, 64 * 1024}};
    trace.map_scheduler(&rt.scheduler(), 0);
    for (int i = 0; i < 10; ++i) {
      mhpx::post([] { mhpx::instrument::annotate(50.0, 8.0); });
    }
    rt.scheduler().wait_idle();
  }
  const auto phases = trace.finish();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].tasks.size(), 10u);
  EXPECT_DOUBLE_EQ(phases[0].total_flops(), 500.0);
  EXPECT_DOUBLE_EQ(phases[0].total_task_bytes(), 80.0);
}

TEST(TraceCollector, PhaseBoundariesSplitWork) {
  sim::TraceCollector trace;
  {
    mhpx::Runtime rt{{1, 64 * 1024}};
    trace.map_scheduler(&rt.scheduler(), 0);
    trace.begin_phase("a");
    mhpx::post([] { mhpx::instrument::annotate(1.0, 0.0); });
    rt.scheduler().wait_idle();
    trace.begin_phase("b");
    mhpx::post([] { mhpx::instrument::annotate(2.0, 0.0); });
    mhpx::post([] { mhpx::instrument::annotate(3.0, 0.0); });
    rt.scheduler().wait_idle();
  }
  const auto phases = trace.finish();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "a");
  EXPECT_DOUBLE_EQ(phases[0].total_flops(), 1.0);
  EXPECT_EQ(phases[1].name, "b");
  EXPECT_DOUBLE_EQ(phases[1].total_flops(), 5.0);
}

TEST(TraceCollector, AttributesTasksToLocalities) {
  sim::TraceCollector trace;
  {
    mhpx::threads::Scheduler s0({1, 64 * 1024});
    mhpx::threads::Scheduler s1({1, 64 * 1024});
    trace.map_scheduler(&s0, 0);
    trace.map_scheduler(&s1, 1);
    s0.post([] { mhpx::instrument::annotate(10.0, 0.0); });
    s1.post([] { mhpx::instrument::annotate(20.0, 0.0); });
    s1.post([] { mhpx::instrument::annotate(30.0, 0.0); });
    s0.wait_idle();
    s1.wait_idle();
  }
  const auto phases = trace.finish();
  ASSERT_EQ(phases.size(), 1u);
  const auto loc0 = phases[0].tasks_of(0);
  const auto loc1 = phases[0].tasks_of(1);
  ASSERT_EQ(loc0.size(), 1u);
  ASSERT_EQ(loc1.size(), 2u);
  EXPECT_DOUBLE_EQ(loc0[0].flops, 10.0);
}

TEST(TraceCollector, EmptyTraceYieldsNoPhases) {
  sim::TraceCollector trace;
  EXPECT_TRUE(trace.finish().empty());
}

}  // namespace
