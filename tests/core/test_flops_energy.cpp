// Tests for FLOP accounting (the perf-measured count), the power models
// (§7 readings), and the report tables.

#include <gtest/gtest.h>

#include <sstream>

#include "core/perf/flops.hpp"
#include "core/power/energy.hpp"
#include "core/report/table.hpp"

namespace perf = rveval::perf;
namespace power = rveval::power;

TEST(Flops, ReproducesPaperPerfCount) {
  // The paper: "measured to be 100000028581 ... for n = 1000000000".
  EXPECT_DOUBLE_EQ(perf::maclaurin_flops(1'000'000'000ull), 100000028581.0);
}

TEST(Flops, LinearInTerms) {
  const double f1 = perf::maclaurin_flops(1000);
  const double f2 = perf::maclaurin_flops(2000);
  EXPECT_DOUBLE_EQ(f2 - f1, 1000 * perf::term_flops_software);
}

TEST(Flops, HardwareExpCutsCount) {
  // §8: hardware exponent support cuts pow from ~ceil(2e)+3 to 4 flops.
  const std::uint64_t n = 1'000'000;
  const double soft = perf::maclaurin_flops(n);
  const double hard = perf::maclaurin_flops_hardware_exp(n);
  EXPECT_LT(hard, soft);
  EXPECT_NEAR(soft / hard, 100.0 / 7.0, 0.1);
}

TEST(Flops, SoftexpEstimateForm) {
  // ceil(2e)+3 with e = Euler's number: ceil(5.436..) + 3 = 9.
  EXPECT_DOUBLE_EQ(perf::softexp_flops_estimate(2.718281828), 9.0);
}

TEST(Flops, NormalizedPerformanceEq3) {
  // 1 GFLOP/s on a 10 GFLOP/s peak = 0.1.
  EXPECT_DOUBLE_EQ(perf::normalized_performance(1e9, 10.0), 0.1);
}

TEST(Power, VisionFive2ReproducesPaperReadings) {
  const auto board = power::visionfive2_board();
  // stress --cpu 4: pure ALU load on all four cores.
  EXPECT_NEAR(board.watts(4, /*memory_bound=*/false), 3.19, 1e-9);
  // Octo-Tiger on four cores: memory system active.
  EXPECT_NEAR(board.watts(4, /*memory_bound=*/true), 3.22, 1e-9);
  // Idle board.
  EXPECT_NEAR(board.watts(0, false), 2.57, 1e-9);
}

TEST(Power, A64FxChipModelPlausible) {
  const auto chip = power::a64fx_powerapi();
  const double w4 = chip.watts(4);
  EXPECT_GT(w4, 14.0);
  EXPECT_LT(w4, 30.0);
  EXPECT_GT(chip.watts(8), w4);
}

TEST(Power, RiscvLowerPowerButMoreEnergyWhenSlower) {
  // The §7 punchline: the RISC-V board draws less *power*, but a ~7x longer
  // runtime costs more *energy* than the A64FX slice.
  const double rv_watts = power::visionfive2_board().watts(4, true);
  const double fx_watts = power::a64fx_powerapi().watts(4);
  EXPECT_LT(rv_watts, fx_watts);

  const double fx_seconds = 100.0;
  const double rv_seconds = 7.0 * fx_seconds;
  power::PowerMeter rv_meter;
  power::PowerMeter fx_meter;
  rv_meter.record(rv_watts, rv_seconds);
  fx_meter.record(fx_watts, fx_seconds);
  EXPECT_GT(rv_meter.energy_joules(), fx_meter.energy_joules());
}

TEST(Power, MeterIntegratesAndAverages) {
  power::PowerMeter m;
  EXPECT_DOUBLE_EQ(m.average_watts(), 0.0);
  m.record(2.0, 10.0);
  m.record(4.0, 10.0);
  EXPECT_DOUBLE_EQ(m.energy_joules(), 60.0);
  EXPECT_DOUBLE_EQ(m.elapsed_seconds(), 20.0);
  EXPECT_DOUBLE_EQ(m.average_watts(), 3.0);
}

TEST(Report, TableAlignsAndCounts) {
  rveval::report::Table t("Demo");
  t.headers({"cpu", "gflops"});
  t.row({"A64FX", rveval::report::Table::num(2764.8, 1)});
  t.row({"U74", rveval::report::Table::num(9.6, 1)});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("2764.8"), std::string::npos);
  EXPECT_NE(s.find("9.6"), std::string::npos);
}

TEST(Report, CsvFormat) {
  rveval::report::Table t("x");
  t.headers({"a", "b"});
  t.row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Report, NumberFormatting) {
  EXPECT_EQ(rveval::report::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(rveval::report::Table::sci(12345.0, 2), "1.23e+04");
}
