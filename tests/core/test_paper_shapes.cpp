// Integration regression net: the qualitative findings of the paper
// (EXPERIMENTS.md's shape checks) re-derived end-to-end on small meshes —
// real execution, trace capture, and architecture-model pricing in one
// pass. If a model constant or solver change breaks a reproduced result,
// this suite fails before the bench output drifts.

#include <gtest/gtest.h>

#include <string>

#include "core/rveval.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/distributed/dist_driver.hpp"
#include "octotiger/driver.hpp"

namespace {

using rveval::arch::CpuModel;

std::vector<rveval::sim::Phase> run_maclaurin(unsigned tasks) {
  rveval::sim::TraceCollector trace;
  {
    mhpx::Runtime rt{{2, 128 * 1024}};
    trace.map_scheduler(&rt.scheduler(), 0);
    rveval::bench::MaclaurinConfig cfg;
    cfg.terms = 200'000;
    cfg.tasks = tasks;
    trace.begin_phase("maclaurin");
    (void)rveval::bench::run_async(cfg);
    rt.scheduler().wait_idle();
  }
  return trace.finish();
}

double priced(const std::vector<rveval::sim::Phase>& phases,
              const CpuModel& cpu, unsigned cores, double simd = 1.0) {
  rveval::sim::CoreSimulator sim(cpu);
  rveval::sim::SimOptions opt;
  opt.cores = cores;
  opt.simd_speedup = simd;
  return sim.total_seconds(phases, opt);
}

TEST(PaperShapes, Fig4aOrderingAndRiscvGap) {
  const auto phases = run_maclaurin(16);
  const double amd = priced(phases, rveval::arch::epyc_7543(), 4);
  const double intel = priced(phases, rveval::arch::xeon_gold_6140(), 4);
  const double fx = priced(phases, rveval::arch::a64fx(), 4);
  const double rv = priced(phases, rveval::arch::u74_mc(), 4);
  // Paper: AMD fastest, Intel second, RISC-V ~5x slower than A64FX.
  EXPECT_LT(amd, intel);
  EXPECT_LT(intel, fx);
  EXPECT_LT(fx, rv);
  EXPECT_GT(rv / fx, 4.0);
  EXPECT_LT(rv / fx, 6.0);
}

TEST(PaperShapes, Fig4aScalesWithCores) {
  const auto phases = run_maclaurin(16);
  const auto rv = rveval::arch::u74_mc();
  const double t1 = priced(phases, rv, 1);
  const double t4 = priced(phases, rv, 4);
  EXPECT_GT(t1 / t4, 3.0);  // near-linear 4-core scaling
  EXPECT_LE(t1 / t4, 4.001);
}

TEST(PaperShapes, Fig6NormalizedInversion) {
  const auto phases = run_maclaurin(16);
  const double flops = rveval::perf::maclaurin_flops(200'000);
  const auto rv = rveval::arch::u74_mc();
  const auto fx = rveval::arch::a64fx();
  const double norm_rv = rveval::perf::normalized_performance(
      flops / priced(phases, rv, 4), rv.peak_gflops(4));
  const double norm_fx = rveval::perf::normalized_performance(
      flops / priced(phases, fx, 4), fx.peak_gflops(4));
  // Paper Fig. 6: RISC-V's tiny peak makes its normalized value highest.
  EXPECT_GT(norm_rv, norm_fx);
}

struct OctoCapture {
  std::vector<rveval::sim::Phase> phases;
  std::size_t cells = 0;
};

OctoCapture run_octo(mkk::KernelType kind) {
  OctoCapture out;
  rveval::sim::TraceCollector trace;
  {
    mhpx::Runtime rt{{2, 256 * 1024}};
    trace.map_scheduler(&rt.scheduler(), 0);
    octo::Options opt;
    opt.max_level = 2;
    opt.refine_radius = 10.0;
    opt.stop_step = 1;
    opt.hydro_kernel = kind;
    opt.multipole_kernel = kind;
    opt.monopole_kernel = kind;
    octo::Simulation sim(opt);
    sim.set_phase_marker(
        [&trace](const std::string& p) { trace.begin_phase(p); });
    sim.run();
    out.cells = sim.stats().cells_processed;
    rt.scheduler().wait_idle();
  }
  out.phases = trace.finish();
  return out;
}

TEST(PaperShapes, Fig7KernelConfigOrdering) {
  const auto serial = run_octo(mkk::KernelType::kokkos_serial);
  const auto hpx = run_octo(mkk::KernelType::kokkos_hpx);
  const auto vf2 = rveval::arch::jh7110();
  const double t_serial =
      priced(serial.phases, vf2, 4, vf2.simd_kernel_speedup);
  const double t_hpx = priced(hpx.phases, vf2, 4, vf2.simd_kernel_speedup);
  // Paper: Kokkos Serial slightly ahead of the HPX execution space (extra
  // intra-kernel task overhead).
  EXPECT_LE(t_serial, t_hpx * 1.001);
}

TEST(PaperShapes, Fig8OctoTigerRiscvToA64fxFactor) {
  const auto cap = run_octo(mkk::KernelType::kokkos_serial);
  const auto vf2 = rveval::arch::jh7110();
  const auto fx = rveval::arch::a64fx();
  const double t_rv = priced(cap.phases, vf2, 4, vf2.simd_kernel_speedup);
  const double t_fx = priced(cap.phases, fx, 4, fx.simd_kernel_speedup);
  // Paper: ~7x on the memory/kernel-intense Octo-Tiger workload.
  EXPECT_GT(t_rv / t_fx, 5.5);
  EXPECT_LT(t_rv / t_fx, 8.5);
}

TEST(PaperShapes, Fig8TcpBeatsMpiAndBothScale) {
  // Two-locality runs over both parcelports; priced with their networks.
  auto run_dist = [&](mhpx::dist::FabricKind fabric) {
    OctoCapture out;
    rveval::sim::TraceCollector trace;
    {
      octo::Options opt;
      opt.max_level = 2;
      opt.refine_radius = 10.0;
      opt.stop_step = 1;
      opt.threads = 2;
      opt.localities = 2;
      octo::dist::DistSimulation sim(opt, fabric);
      trace.map_scheduler(&sim.runtime().locality(0).scheduler(), 0);
      trace.map_scheduler(&sim.runtime().locality(1).scheduler(), 1);
      sim.run();
      out.cells = sim.stats().cells_processed;
      sim.runtime().wait_all_idle();
    }
    out.phases = trace.finish();
    return out;
  };
  const auto single = run_octo(mkk::KernelType::kokkos_serial);
  const auto tcp = run_dist(mhpx::dist::FabricKind::tcp);
  const auto mpi = run_dist(mhpx::dist::FabricKind::mpisim);

  const auto vf2 = rveval::arch::jh7110();
  rveval::sim::CoreSimulator sim(vf2);
  rveval::sim::SimOptions opt;
  opt.cores = 4;
  opt.simd_speedup = vf2.simd_kernel_speedup;
  const double t1 = sim.total_seconds(single.phases, opt);
  const double t2_tcp = sim.total_seconds_distributed(
      tcp.phases, 2, rveval::arch::gbe_tcp(), opt);
  const double t2_mpi = sim.total_seconds_distributed(
      mpi.phases, 2, rveval::arch::gbe_mpi(), opt);
  const double su_tcp = t1 / t2_tcp;
  const double su_mpi = t1 / t2_mpi;
  EXPECT_GT(su_tcp, 1.2);  // two boards beat one
  EXPECT_GT(su_mpi, 1.2);
  EXPECT_GE(su_tcp, su_mpi);  // paper: TCP scaled better
  EXPECT_LT(su_tcp, 2.01);    // no superlinear artefacts
}

TEST(PaperShapes, Fig9EnergyInversion) {
  const auto cap = run_octo(mkk::KernelType::kokkos_serial);
  const auto vf2 = rveval::arch::jh7110();
  const auto fx = rveval::arch::a64fx();
  const double t_rv = priced(cap.phases, vf2, 4, vf2.simd_kernel_speedup);
  const double t_fx = priced(cap.phases, fx, 4, fx.simd_kernel_speedup);
  const double p_rv = rveval::power::visionfive2_board().watts(4, true);
  const double p_fx = rveval::power::a64fx_powerapi().watts(4);
  // Paper §7: RISC-V draws less power yet spends more energy.
  EXPECT_LT(p_rv, p_fx);
  EXPECT_GT(p_rv * t_rv, p_fx * t_fx);
}

TEST(PaperShapes, Fig5CoroutineNotFasterThanSenderReceiver) {
  auto run_variant = [&](auto runner) {
    rveval::sim::TraceCollector trace;
    {
      mhpx::Runtime rt{{2, 128 * 1024}};
      trace.map_scheduler(&rt.scheduler(), 0);
      rveval::bench::MaclaurinConfig cfg;
      cfg.terms = 100'000;
      cfg.tasks = 16;
      trace.begin_phase("m");
      (void)runner(cfg);
      rt.scheduler().wait_idle();
    }
    return trace.finish();
  };
  const auto sr = run_variant(&rveval::bench::run_sender_receiver);
  const auto coro = run_variant(&rveval::bench::run_coroutine);
  const auto rv = rveval::arch::u74_mc();
  EXPECT_LE(priced(sr, rv, 4), priced(coro, rv, 4) * 1.001);
}

}  // namespace
