// ABI-conformance suite for rveval::simd: every backend must compute
// bit-identically to the scalar reference ABI for every op, on a pinned-
// seed corpus that includes the IEEE-754 corner cases the kernels can
// plausibly meet (+-0, denormals, huge/tiny magnitudes, exact ties).
//
// This is what licenses the octotiger kernels to treat the simd ABI as a
// pure performance knob: the fig7 metamorphic gate (scalar vs native
// bit-identity of whole simulations) only holds because each individual op
// already holds here.
//
// The same source is compiled twice by tests/CMakeLists.txt: once with the
// project-wide flags (AVX2 backend live on the host) and once as
// test_simd_conformance_noavx2 with -mno-avx -mno-avx2 -mno-fma, proving
// the portable fallback of every ABI compiles and passes without vector
// hardware — the CI story for a U74-MC-class target.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/simd/detect.hpp"
#include "core/simd/simd.hpp"

namespace {

namespace rs = rveval::simd;

constexpr std::size_t kCorpus = 256;  // multiple of every lane width

// Pinned-seed corpus with adversarial values mixed in.
std::vector<double> make_corpus(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-8.0, 8.0);
  std::vector<double> v(kCorpus);
  for (auto& x : v) {
    x = uni(rng);
  }
  const double specials[] = {0.0,
                             -0.0,
                             1.0,
                             -1.0,
                             0.5,
                             2.0,
                             1e-300,
                             -1e-300,
                             1e300,
                             -1e300,
                             std::numeric_limits<double>::denorm_min(),
                             -std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::min(),
                             std::numeric_limits<double>::epsilon(),
                             1.0 + std::numeric_limits<double>::epsilon(),
                             3.5};
  std::size_t at = 0;
  for (const double s : specials) {
    v[at] = s;
    at += 7;  // scatter so ties land in different lanes across widths
  }
  // Plant exact ties (min/max tie-break semantics) and +-0 pairs.
  for (std::size_t i = 0; i < kCorpus; i += 31) {
    v[(i + 13) % kCorpus] = v[i];
  }
  return v;
}

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

#define EXPECT_BIT_EQ(a, b)                                            \
  EXPECT_EQ(bits_of(a), bits_of(b)) << "values: " << (a) << " vs " << (b)

// Run one binary op through ABI `tag` over the corpus and bit-compare
// against the scalar ABI of the same op.
template <typename Tag, typename OpV, typename OpS>
void check_binary(Tag, const std::vector<double>& a,
                  const std::vector<double>& b, OpV opv, OpS ops,
                  const char* what) {
  using V = rs::simd<double, Tag>;
  using S = rs::simd<double, rs::abi::scalar>;
  for (std::size_t i = 0; i + V::size() <= a.size(); i += V::size()) {
    const V va = V::load_unaligned(&a[i]);
    const V vb = V::load_unaligned(&b[i]);
    const V vr = opv(va, vb);
    double out[V::size()];
    vr.store_unaligned(out);
    for (std::size_t l = 0; l < V::size(); ++l) {
      const S sr = ops(S(a[i + l]), S(b[i + l]));
      EXPECT_BIT_EQ(out[l], sr[0])
          << what << " lane " << l << " at " << i << " on "
          << Tag::name();
    }
  }
}

template <typename Tag>
void conformance_all_ops(Tag tag) {
  using V = rs::simd<double, Tag>;
  using S = rs::simd<double, rs::abi::scalar>;
  const auto a = make_corpus(20260809);
  const auto b = make_corpus(424242);
  const auto c = make_corpus(7);

  check_binary(tag, a, b, [](auto x, auto y) { return x + y; },
               [](auto x, auto y) { return x + y; }, "add");
  check_binary(tag, a, b, [](auto x, auto y) { return x - y; },
               [](auto x, auto y) { return x - y; }, "sub");
  check_binary(tag, a, b, [](auto x, auto y) { return x * y; },
               [](auto x, auto y) { return x * y; }, "mul");
  check_binary(tag, a, b, [](auto x, auto y) { return x / y; },
               [](auto x, auto y) { return x / y; }, "div");
  check_binary(tag, a, b, [](auto x, auto y) { return max(x, y); },
               [](auto x, auto y) { return max(x, y); }, "max");
  check_binary(tag, a, b, [](auto x, auto y) { return min(x, y); },
               [](auto x, auto y) { return min(x, y); }, "min");

  // Unary ops: neg, abs, sqrt (sqrt over |x| to stay in domain).
  for (std::size_t i = 0; i + V::size() <= a.size(); i += V::size()) {
    const V va = V::load_unaligned(&a[i]);
    double oneg[V::size()], oabs[V::size()], osqrt[V::size()];
    (-va).store_unaligned(oneg);
    abs(va).store_unaligned(oabs);
    sqrt(abs(va)).store_unaligned(osqrt);
    for (std::size_t l = 0; l < V::size(); ++l) {
      const S s(a[i + l]);
      EXPECT_BIT_EQ(oneg[l], (-s)[0]);
      EXPECT_BIT_EQ(oabs[l], abs(s)[0]);
      EXPECT_BIT_EQ(osqrt[l], sqrt(abs(s))[0]);
    }
  }

  // fma must be truly fused in every backend.
  for (std::size_t i = 0; i + V::size() <= a.size(); i += V::size()) {
    const V vr = fma(V::load_unaligned(&a[i]), V::load_unaligned(&b[i]),
                     V::load_unaligned(&c[i]));
    double out[V::size()];
    vr.store_unaligned(out);
    for (std::size_t l = 0; l < V::size(); ++l) {
      EXPECT_BIT_EQ(out[l], std::fma(a[i + l], b[i + l], c[i + l]));
    }
  }

  // Comparisons + select: per-lane blend must match the scalar ternary.
  for (std::size_t i = 0; i + V::size() <= a.size(); i += V::size()) {
    const V va = V::load_unaligned(&a[i]);
    const V vb = V::load_unaligned(&b[i]);
    const auto mlt = va < vb;
    const auto mge = va >= vb;
    const V blended = select(mlt, va, vb);
    double out[V::size()];
    blended.store_unaligned(out);
    for (std::size_t l = 0; l < V::size(); ++l) {
      EXPECT_EQ(mlt[l], a[i + l] < b[i + l]);
      EXPECT_EQ(mge[l], a[i + l] >= b[i + l]);
      EXPECT_BIT_EQ(out[l], a[i + l] < b[i + l] ? a[i + l] : b[i + l]);
    }
    EXPECT_EQ(mlt.any() || mge.any(), true);
    EXPECT_EQ((mlt && mge).any(), false);  // disjoint for ordered values
    EXPECT_EQ((mlt || mge).all(), true);
  }

  // Gather: lane i = base[idx[i]], permuted pinned indices.
  {
    std::array<std::int32_t, 8> idx{};
    std::mt19937_64 rng(99);
    for (std::size_t i = 0; i + V::size() <= a.size(); i += V::size()) {
      for (std::size_t l = 0; l < V::size(); ++l) {
        idx[l] = static_cast<std::int32_t>(rng() % a.size());
      }
      const V g = V::gather(a.data(), idx.data());
      double out[V::size()];
      g.store_unaligned(out);
      for (std::size_t l = 0; l < V::size(); ++l) {
        EXPECT_BIT_EQ(out[l], a[static_cast<std::size_t>(idx[l])]);
      }
    }
  }

  // iota: exact integer-valued lanes.
  {
    const V v = V::iota(5.0);
    for (std::size_t l = 0; l < V::size(); ++l) {
      EXPECT_BIT_EQ(v[l], 5.0 + static_cast<double>(l));
    }
  }

  // Reductions: lane-order contract (bit-identical to a sequential loop).
  for (std::size_t i = 0; i + V::size() <= a.size(); i += V::size()) {
    const V va = V::load_unaligned(&a[i]);
    double sum = a[i];
    double mx = a[i];
    for (std::size_t l = 1; l < V::size(); ++l) {
      sum += a[i + l];
      mx = mx > a[i + l] ? mx : a[i + l];
    }
    EXPECT_BIT_EQ(va.reduce_sum(), sum);
    EXPECT_BIT_EQ(va.reduce_max(), mx);
  }

  // Aligned load/store round trip + the alignment predicate.
  {
    alignas(64) double buf[V::size() * 2];
    for (std::size_t l = 0; l < V::size() * 2; ++l) {
      buf[l] = a[l];
    }
    ASSERT_TRUE(V::is_aligned(buf));
    const V v = V::load(buf);
    alignas(64) double out[V::size()];
    v.store(out);
    for (std::size_t l = 0; l < V::size(); ++l) {
      EXPECT_BIT_EQ(out[l], buf[l]);
    }
    // An odd double offset can never satisfy a multi-lane alignment.
    if (V::size() > 1) {
      EXPECT_FALSE(V::is_aligned(buf + 1));
    }
  }
}

// --- value-parameterised over the runtime dispatcher -----------------------

class SimdConformance : public ::testing::TestWithParam<rs::AbiKind> {};

TEST_P(SimdConformance, AllOpsBitIdenticalToScalarReference) {
  // Route through detect::dispatch — the exact mechanism the kernels use —
  // so the test covers resolution (native -> widest supported) too.
  rs::detect::dispatch(GetParam(),
                       [](auto tag) { conformance_all_ops(tag); });
}

TEST_P(SimdConformance, ResolvedWidthIsExecutable) {
  const auto k = rs::detect::resolve(GetParam());
  EXPECT_NE(k, rs::AbiKind::native);  // resolve() always lands on a backend
  const int w = rs::detect::resolved_width(GetParam());
  EXPECT_GE(w, 1);
  EXPECT_LE(w, 4);
  if (k == rs::AbiKind::avx2) {
    EXPECT_TRUE(rs::detect::cpu_has_avx2());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Abis, SimdConformance,
    ::testing::Values(rs::AbiKind::scalar, rs::AbiKind::sse2,
                      rs::AbiKind::avx2, rs::AbiKind::native),
    [](const ::testing::TestParamInfo<rs::AbiKind>& info) {
      return std::string(rs::to_string(info.param));
    });

// The modelled-RVV and fixed ABIs run the same checks through the portable
// implementation at widths the intrinsics don't cover.
TEST(SimdConformanceModelled, RvvModelledAndFixedWidths) {
  conformance_all_ops(rs::abi::rvv_modelled<2>{});
  conformance_all_ops(rs::abi::rvv_modelled<8>{});
  conformance_all_ops(rs::abi::fixed<8>{});
}

TEST(SimdDetect, BuildAndRuntimeAgree) {
  // On any build, best_kind() must be a backend whose compile-time support
  // macro is on; scalar is always legal.
  const auto k = rs::detect::best_kind();
  if (k == rs::AbiKind::avx2) {
    EXPECT_EQ(RVEVAL_SIMD_HAS_AVX2, 1);
  }
  if (k == rs::AbiKind::sse2) {
    EXPECT_EQ(RVEVAL_SIMD_HAS_SSE2, 1);
  }
  EXPECT_EQ(rs::detect::resolve(rs::AbiKind::scalar), rs::AbiKind::scalar);
  EXPECT_EQ(rs::detect::resolve(rs::AbiKind::sse2), rs::AbiKind::sse2);
}

TEST(SimdAbi, ParseAndNames) {
  EXPECT_EQ(rs::parse_abi("scalar"), rs::AbiKind::scalar);
  EXPECT_EQ(rs::parse_abi("SSE2"), rs::AbiKind::sse2);
  EXPECT_EQ(rs::parse_abi("Avx2"), rs::AbiKind::avx2);
  EXPECT_EQ(rs::parse_abi("NATIVE"), rs::AbiKind::native);
  EXPECT_EQ(rs::parse_abi("auto"), rs::AbiKind::native);
  EXPECT_FALSE(rs::parse_abi("rvv512").has_value());
  EXPECT_EQ(rs::to_string(rs::AbiKind::avx2), "avx2");
  EXPECT_EQ(rs::requested_width(rs::AbiKind::sse2), 2);
}

}  // namespace
