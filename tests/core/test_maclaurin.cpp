// Tests for the four Maclaurin benchmark implementations: all must compute
// ln(1+x) to series accuracy and annotate their tasks consistently.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/bench/maclaurin.hpp"
#include "core/perf/flops.hpp"
#include "core/sim/trace.hpp"
#include "minihpx/runtime.hpp"

namespace bench = rveval::bench;
namespace sim = rveval::sim;

namespace {

using Runner = bench::MaclaurinResult (*)(const bench::MaclaurinConfig&);

struct Variant {
  const char* name;
  Runner run;
};

class MaclaurinTest : public ::testing::TestWithParam<Variant> {
 protected:
  mhpx::Runtime runtime{{2, 64 * 1024}};
};

TEST_P(MaclaurinTest, ConvergesToLog1p) {
  bench::MaclaurinConfig cfg;
  cfg.x = 0.5;
  cfg.terms = 100'000;
  cfg.tasks = 8;
  const auto r = GetParam().run(cfg);
  EXPECT_NEAR(r.sum, bench::reference(cfg.x), 1e-12);
}

TEST_P(MaclaurinTest, WorksForNegativeX) {
  bench::MaclaurinConfig cfg;
  cfg.x = -0.25;
  cfg.terms = 50'000;
  cfg.tasks = 5;
  const auto r = GetParam().run(cfg);
  EXPECT_NEAR(r.sum, bench::reference(cfg.x), 1e-12);
}

TEST_P(MaclaurinTest, SingleTask) {
  bench::MaclaurinConfig cfg;
  cfg.terms = 10'000;
  cfg.tasks = 1;
  const auto r = GetParam().run(cfg);
  EXPECT_NEAR(r.sum, bench::reference(cfg.x), 1e-11);
}

TEST_P(MaclaurinTest, MoreTasksThanTerms) {
  bench::MaclaurinConfig cfg;
  cfg.terms = 5;
  cfg.tasks = 64;
  const auto r = GetParam().run(cfg);
  // 5 terms of the series, not an exact log: check against a direct sum.
  double direct = 0.0;
  for (int n = 1; n <= 5; ++n) {
    direct += ((n % 2 == 1) ? 1.0 : -1.0) *
              std::pow(cfg.x, n) / static_cast<double>(n);
  }
  EXPECT_NEAR(r.sum, direct, 1e-15);
}

TEST_P(MaclaurinTest, AnalyticFlopsAreReported) {
  bench::MaclaurinConfig cfg;
  cfg.terms = 12'345;
  const auto r = GetParam().run(cfg);
  EXPECT_DOUBLE_EQ(r.analytic_flops, rveval::perf::maclaurin_flops(cfg.terms));
}

TEST_P(MaclaurinTest, TraceCapturesChunkAnnotations) {
  sim::TraceCollector trace;
  trace.map_scheduler(&runtime.scheduler(), 0);
  bench::MaclaurinConfig cfg;
  cfg.terms = 10'000;
  cfg.tasks = 10;
  (void)GetParam().run(cfg);
  runtime.scheduler().wait_idle();
  const auto phases = trace.finish();
  ASSERT_FALSE(phases.empty());
  double flops = 0.0;
  for (const auto& p : phases) {
    flops += p.total_flops();
  }
  // All chunk annotations together = per-term cost x executed terms.
  EXPECT_DOUBLE_EQ(
      flops, rveval::perf::term_flops_software * static_cast<double>(cfg.terms));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, MaclaurinTest,
    ::testing::Values(Variant{"async", &bench::run_async},
                      Variant{"parallel_algorithm",
                              &bench::run_parallel_algorithm},
                      Variant{"sender_receiver", &bench::run_sender_receiver},
                      Variant{"coroutine", &bench::run_coroutine}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MaclaurinChunk, MatchesDirectSum) {
  mhpx::Runtime rt{{1, 64 * 1024}};
  const double x = 0.3;
  double direct = 0.0;
  for (int n = 7; n < 23; ++n) {
    direct += ((n % 2 == 1) ? 1.0 : -1.0) * std::pow(x, n) / n;
  }
  EXPECT_NEAR(bench::maclaurin_chunk(x, 7, 23), direct, 1e-15);
}

TEST(MaclaurinChunk, EmptyRangeIsZero) {
  EXPECT_DOUBLE_EQ(bench::maclaurin_chunk(0.5, 10, 10), 0.0);
}

TEST(MaclaurinVariants, AllAgreeBitForBitOnSameChunking) {
  mhpx::Runtime rt{{2, 64 * 1024}};
  bench::MaclaurinConfig cfg;
  cfg.terms = 40'000;
  cfg.tasks = 8;
  const double a = bench::run_async(cfg).sum;
  const double b = bench::run_parallel_algorithm(cfg).sum;
  const double c = bench::run_sender_receiver(cfg).sum;
  const double d = bench::run_coroutine(cfg).sum;
  // Same chunk boundaries + deterministic per-chunk summation order; only
  // the final chunk-combination order could differ, and all four combine
  // in ascending chunk order, so the sums must be identical.
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a, d);
}

}  // namespace
