// rveval::report::tracetools: Chrome-trace parsing, the structural linter
// that gates CI trace artifacts, and the clock-skew-corrected multi-trace
// merge (offsets recovered from paired parcel flow events).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/report/json.hpp"
#include "core/report/trace_tools.hpp"

namespace tt = rveval::report::tracetools;

namespace {

tt::TraceEvent ev(char ph, double ts_us, std::uint32_t pid,
                  std::uint64_t guid = 0, std::uint64_t parent = 0) {
  tt::TraceEvent e;
  e.name = std::string("ev-") + ph;
  e.cat = "test";
  e.ph = ph;
  e.ts_us = ts_us;
  e.has_ts = true;
  e.pid = pid;
  e.guid = guid;
  e.parent = parent;
  if (ph == 's' || ph == 'f') {
    e.flow_id = guid;
  }
  if (ph == 'f') {
    e.bp = "e";  // as the apex writer emits: bind to the enclosing slice
  }
  return e;
}

}  // namespace

TEST(TraceParse, AcceptsBothTopLevelShapes) {
  const char* object_form =
      R"({"traceEvents":[{"name":"a","ph":"i","ts":1,"pid":0,"tid":0}]})";
  const char* array_form = R"([{"name":"a","ph":"i","ts":1}])";
  EXPECT_EQ(tt::parse_chrome(object_form).events.size(), 1u);
  EXPECT_EQ(tt::parse_chrome(array_form).events.size(), 1u);
}

TEST(TraceParse, RejectsMalformedInput) {
  EXPECT_THROW(tt::parse_chrome("not json"), std::runtime_error);
  EXPECT_THROW(tt::parse_chrome(R"({"noTraceEvents":1})"), std::runtime_error);
  EXPECT_THROW(tt::parse_chrome(R"({"traceEvents":[{"name":"x"}]})"),
               std::runtime_error);  // no "ph"
  EXPECT_THROW(tt::parse_chrome(R"({"traceEvents":[{"ph":"i"}]})"),
               std::runtime_error);  // non-metadata event without "ts"
}

TEST(TraceLint, CleanTracePasses) {
  tt::ParsedTrace trace;
  trace.events = {ev('B', 0.0, 0, 1),     ev('s', 1.0, 0, 9),
                  ev('f', 2.0, 1, 9, 1),  ev('B', 2.5, 1, 2, 1),
                  ev('E', 3.0, 1, 2),     ev('E', 4.0, 0, 1)};
  EXPECT_TRUE(tt::lint(trace, 2).empty());
}

TEST(TraceLint, FlagsEveryViolationClass) {
  {
    tt::ParsedTrace t;
    t.events = {ev('B', 0.0, 0, 1)};  // never closed
    const auto errors = tt::lint(t, 1);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("dangling 'B'"), std::string::npos);
  }
  {
    tt::ParsedTrace t;
    t.events = {ev('E', 1.0, 0, 1)};  // never opened
    const auto errors = tt::lint(t, 1);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("orphan 'E'"), std::string::npos);
  }
  {
    tt::ParsedTrace t;
    t.events = {ev('s', 1.0, 0, 9)};  // flow never lands
    const auto errors = tt::lint(t, 1);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("no matching 'f'"), std::string::npos);
  }
  {
    tt::ParsedTrace t;
    t.events = {ev('f', 1.0, 1, 9)};  // flow from nowhere
    const auto errors = tt::lint(t, 1);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("no matching 's'"), std::string::npos);
  }
  {
    tt::ParsedTrace t;
    t.events = {ev('s', 5.0, 0, 9), ev('f', 1.0, 1, 9)};  // arrives early
    const auto errors = tt::lint(t, 1);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("precedes"), std::string::npos);
  }
  {
    tt::ParsedTrace t;  // parent guid 7 never opened a span
    t.events = {ev('B', 0.0, 0, 2, 7), ev('E', 1.0, 0, 2)};
    const auto errors = tt::lint(t, 1);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("never opened"), std::string::npos);
  }
  {
    tt::ParsedTrace t;
    t.events = {ev('i', 0.0, 0)};
    const auto errors = tt::lint(t, 2);  // only pid 0 present
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("pid"), std::string::npos);
  }
}

TEST(TraceMerge, RecoversClockSkewFromFlowPairs) {
  // Two per-locality traces whose clocks disagree by exactly 1000 us; one
  // flow in each direction, both with a true one-way latency of 50 us.
  tt::ParsedTrace t0;
  t0.events = {ev('s', 100.0, 0, 11), ev('f', 250.0, 0, 12)};
  tt::ParsedTrace t1;
  t1.events = {ev('f', 1150.0, 1, 11), ev('s', 1200.0, 1, 12)};

  const auto offsets = tt::estimate_offsets({t0, t1});
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_DOUBLE_EQ(offsets[0], 0.0);  // trace 0 anchors the merged timeline
  EXPECT_DOUBLE_EQ(offsets[1], 1000.0);

  const tt::ParsedTrace merged = tt::merge({t0, t1});
  ASSERT_EQ(merged.events.size(), 4u);
  // Corrected timeline: s@100 -> f@150, s@200 -> f@250, time-sorted.
  EXPECT_DOUBLE_EQ(merged.events[0].ts_us, 100.0);
  EXPECT_DOUBLE_EQ(merged.events[1].ts_us, 150.0);
  EXPECT_DOUBLE_EQ(merged.events[2].ts_us, 200.0);
  EXPECT_DOUBLE_EQ(merged.events[3].ts_us, 250.0);
  // Without the correction flow 12 would arrive 950 us before it was sent;
  // after it, the merged trace passes the linter's causality checks.
  EXPECT_TRUE(tt::lint(merged, 2).empty());
}

TEST(TraceMerge, SingleTraceIsUntouched) {
  tt::ParsedTrace t0;
  t0.events = {ev('B', 1.0, 0, 1), ev('E', 2.0, 0, 1)};
  const tt::ParsedTrace merged = tt::merge({t0});
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.events[0].ts_us, 1.0);
}

TEST(TraceRoundTrip, ExportReparsesWithPerPidMetadata) {
  tt::ParsedTrace trace;
  trace.events = {ev('B', 0.0, 0, 1), ev('s', 1.0, 0, 9),
                  ev('f', 2.0, 1, 9), ev('E', 3.0, 0, 1)};
  const std::string json = tt::to_chrome_json(trace);

  // Oracle parse: valid JSON with one process_name record per pid.
  const auto doc = rveval::report::json::parse(json);
  const auto* te = doc.find("traceEvents");
  ASSERT_NE(te, nullptr);
  ASSERT_TRUE(te->is_array());
  int meta = 0;
  for (std::size_t i = 0; i < te->size(); ++i) {
    if (te->at(i).find("ph")->as_string() == "M") {
      ++meta;
      EXPECT_EQ(te->at(i).find("name")->as_string(), "process_name");
    }
  }
  EXPECT_EQ(meta, 2);

  // And tracetools reads its own output back, flows intact.
  const tt::ParsedTrace again = tt::parse_chrome(json);
  ASSERT_EQ(again.events.size(), trace.events.size() + 2);  // + metadata
  int flows = 0;
  for (const auto& e : again.events) {
    if (e.ph == 's' || e.ph == 'f') {
      ++flows;
      EXPECT_EQ(e.flow_id, 9u);
      if (e.ph == 'f') {
        EXPECT_EQ(e.bp, "e");
      }
    }
  }
  EXPECT_EQ(flows, 2);
}

TEST(TraceRoundTrip, MergedFig8StyleTraceStaysLintClean) {
  // A miniature fig8 shape: two localities, request/reply flows, handler
  // spans parented across the boundary, a counter lane — split by pid into
  // two "files", merged back, linted.
  tt::ParsedTrace full;
  full.events = {
      ev('B', 0.0, 0, 1),         // sender task on locality 0
      ev('s', 1.0, 0, 100),       // request leaves
      ev('E', 2.0, 0, 1),         //
      ev('f', 3.0, 1, 100, 1),    // request lands; remote parent = task 1
      ev('B', 3.0, 1, 2, 1),      // handler span
      ev('s', 4.0, 1, 101),       // reply leaves
      ev('E', 5.0, 1, 2),         //
      ev('f', 6.0, 0, 101, 2),    // reply lands
      ev('C', 6.5, 0),            // counter lane sample
  };
  tt::ParsedTrace part0;
  tt::ParsedTrace part1;
  for (const auto& e : full.events) {
    (e.pid == 0 ? part0 : part1).events.push_back(e);
  }
  const tt::ParsedTrace merged = tt::merge({part0, part1});
  EXPECT_EQ(merged.events.size(), full.events.size());
  EXPECT_TRUE(tt::lint(merged, 2).empty());
}

TEST(TraceRoundTrip, RealExportLintsThroughTheCli) {
  // to_chrome_json -> parse_chrome is exactly what `trace_tool lint` and
  // `trace_tool merge` do; ensure a merge result re-exports cleanly.
  tt::ParsedTrace t0;
  t0.events = {ev('s', 100.0, 0, 11), ev('f', 250.0, 0, 12)};
  tt::ParsedTrace t1;
  t1.events = {ev('f', 1150.0, 1, 11), ev('s', 1200.0, 1, 12)};
  const tt::ParsedTrace merged = tt::merge({t0, t1});
  const tt::ParsedTrace reparsed = tt::parse_chrome(tt::to_chrome_json(merged));
  EXPECT_TRUE(tt::lint(reparsed, 2).empty());
}

namespace {

tt::TraceEvent span(char ph, const std::string& name, double ts_us,
                    std::uint32_t pid, std::uint32_t tid = 0) {
  tt::TraceEvent e;
  e.name = name;
  e.cat = "test";
  e.ph = ph;
  e.ts_us = ts_us;
  e.has_ts = true;
  e.pid = pid;
  e.tid = tid;
  return e;
}

}  // namespace

TEST(TraceFlamegraph, GoldenSelfTimeAttribution) {
  // loc0: main [0,40] with nested hydro [10,30]. Self time: main gets the
  // [0,10) prologue and the [30,40) epilogue, hydro the [10,30) body.
  tt::ParsedTrace trace;
  trace.events = {span('B', "main", 0.0, 0), span('B', "hydro", 10.0, 0),
                  span('E', "hydro", 30.0, 0), span('E', "main", 40.0, 0)};
  const auto folds = tt::fold_stacks(trace);
  ASSERT_EQ(folds.size(), 2u);
  EXPECT_EQ(folds[0].stack, "loc0;main");  // map order: sorted by path
  EXPECT_EQ(folds[0].self_us, 20u);
  EXPECT_EQ(folds[1].stack, "loc0;main;hydro");
  EXPECT_EQ(folds[1].self_us, 20u);
  EXPECT_EQ(tt::to_collapsed(folds),
            "loc0;main 20\nloc0;main;hydro 20\n");
}

TEST(TraceFlamegraph, LanesAreIndependentAndRootedPerPid) {
  // Two localities, plus a second tid on loc0 whose frames never mix with
  // tid 0's stack even when the time windows interleave.
  tt::ParsedTrace trace;
  trace.events = {span('B', "a", 0.0, 0, 0),  span('E', "a", 10.0, 0, 0),
                  span('B', "b", 2.0, 0, 1),  span('E', "b", 6.0, 0, 1),
                  span('B', "c", 0.0, 1, 0),  span('E', "c", 8.0, 1, 0)};
  const auto folds = tt::fold_stacks(trace);
  ASSERT_EQ(folds.size(), 3u);
  EXPECT_EQ(folds[0].stack, "loc0;a");
  EXPECT_EQ(folds[0].self_us, 10u);
  EXPECT_EQ(folds[1].stack, "loc0;b");
  EXPECT_EQ(folds[1].self_us, 4u);
  EXPECT_EQ(folds[2].stack, "loc1;c");
  EXPECT_EQ(folds[2].self_us, 8u);
}

TEST(TraceFlamegraph, RoundingAndZeroWeightFrames) {
  // Sub-microsecond self time rounds half-up; frames that round to zero
  // are dropped from the collapsed output entirely.
  tt::ParsedTrace trace;
  trace.events = {span('B', "tiny", 0.0, 0), span('E', "tiny", 0.4, 0),
                  span('B', "small", 1.0, 0), span('E', "small", 2.5, 0)};
  const auto folds = tt::fold_stacks(trace);
  ASSERT_EQ(folds.size(), 1u);
  EXPECT_EQ(folds[0].stack, "loc0;small");
  EXPECT_EQ(folds[0].self_us, 2u);  // 1.5 rounds half-up
}

TEST(TraceFlamegraph, SameTimestampNestingAndDanglingB) {
  // A nested B at its parent's ts must stay nested (stable sort), and a
  // dangling B from a truncated trace stops accruing at the last event.
  tt::ParsedTrace trace;
  trace.events = {span('B', "outer", 0.0, 0), span('B', "inner", 0.0, 0),
                  span('E', "inner", 5.0, 0), span('B', "cut", 5.0, 0),
                  span('E', "cut", 7.0, 0)};
  const auto folds = tt::fold_stacks(trace);
  ASSERT_EQ(folds.size(), 2u);
  EXPECT_EQ(folds[0].stack, "loc0;outer;cut");
  EXPECT_EQ(folds[0].self_us, 2u);
  EXPECT_EQ(folds[1].stack, "loc0;outer;inner");
  EXPECT_EQ(folds[1].self_us, 5u);
}
