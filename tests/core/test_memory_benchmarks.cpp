// Tests for the §8 future-work benchmarks: STREAM kernels compute the
// right values and annotate the classic byte counts; GUPS is deterministic;
// the LU factorisation actually solves linear systems.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/arch/cpu_model.hpp"
#include "core/bench/memory_benchmarks.hpp"
#include "core/sim/trace.hpp"
#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"

namespace {

namespace rb = rveval::bench;

struct MemoryBenchTest : ::testing::Test {
  mhpx::Runtime runtime{{2, 128 * 1024}};
};

TEST_F(MemoryBenchTest, StreamKernelsComputeCorrectValues) {
  rb::StreamArrays s(1000);  // a = 1, b = 2, c = 0
  rb::stream_copy(s);        // c = a = 1
  EXPECT_DOUBLE_EQ(s.c[123], 1.0);
  rb::stream_scale(s, 3.0);  // b = 3c = 3
  EXPECT_DOUBLE_EQ(s.b[500], 3.0);
  rb::stream_add(s);  // c = a + b = 4
  EXPECT_DOUBLE_EQ(s.c[999], 4.0);
  rb::stream_triad(s, 2.0);  // a = b + 2c = 11
  EXPECT_DOUBLE_EQ(s.a[0], 11.0);
}

TEST_F(MemoryBenchTest, StreamAnnotatesClassicByteCounts) {
  rveval::sim::TraceCollector trace;
  trace.map_scheduler(&runtime.scheduler(), 0);
  constexpr std::size_t n = 50'000;
  rb::StreamArrays s(n);
  trace.begin_phase("triad");
  rb::stream_triad(s, 3.0);
  runtime.scheduler().wait_idle();
  const auto phases = trace.finish();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_DOUBLE_EQ(phases[0].total_task_bytes(),
                   rb::stream_triad_bytes * static_cast<double>(n));
  EXPECT_DOUBLE_EQ(phases[0].total_flops(), 2.0 * static_cast<double>(n));
}

TEST_F(MemoryBenchTest, GupsIsDeterministicAndTouchesTable) {
  const auto a = rb::gups_kernel(12, 10'000);
  const auto b = rb::gups_kernel(12, 10'000);
  EXPECT_EQ(a, b);  // same LCG stream
  // A different update count must change the checksum (xor stream differs).
  const auto c = rb::gups_kernel(12, 10'001);
  EXPECT_NE(a, c);
}

TEST_F(MemoryBenchTest, GupsAnnotatesTraffic) {
  rveval::sim::TraceCollector trace;
  trace.map_scheduler(&runtime.scheduler(), 0);
  trace.begin_phase("gups");
  mhpx::async([] { (void)rb::gups_kernel(12, 5'000); }).get();
  runtime.scheduler().wait_idle();
  const auto phases = trace.finish();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_DOUBLE_EQ(phases[0].total_task_bytes(),
                   rb::gups_bytes_per_update * 5'000.0);
}

TEST_F(MemoryBenchTest, LuFactorSolvesSystems) {
  constexpr std::size_t n = 40;
  mkk::View<double, 2> a("A", n, n);
  mkk::View<double, 2> a0("A0", n, n);
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = dist(rng) + (i == j ? static_cast<double>(n) : 0.0);
      a0(i, j) = a(i, j);
    }
  }
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = dist(rng);
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b[i] += a0(i, j) * x_true[j];
    }
  }
  const auto pivots = rb::lu_factor(a);
  const auto x = rb::lu_solve(a, pivots, b);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(x[i] - x_true[i]));
  }
  EXPECT_LT(max_err, 1e-10);
}

TEST_F(MemoryBenchTest, LuRequiresPivoting) {
  // A matrix with a zero leading pivot but full rank: only partial
  // pivoting factorises it.
  mkk::View<double, 2> a("A", 2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto pivots = rb::lu_factor(a);
  const auto x = rb::lu_solve(a, pivots, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST_F(MemoryBenchTest, LuRejectsBadInput) {
  mkk::View<double, 2> rect("R", 2, 3);
  EXPECT_THROW((void)rb::lu_factor(rect), std::invalid_argument);
  mkk::View<double, 2> zero("Z", 3, 3);  // all zeros: singular
  EXPECT_THROW((void)rb::lu_factor(zero), std::runtime_error);
}

TEST_F(MemoryBenchTest, LuFlopsFormula) {
  EXPECT_NEAR(rb::lu_flops(100), 2.0 / 3.0 * 1e6 + 2e4, 1.0);
  EXPECT_GT(rb::lu_flops(200), 8 * rb::lu_flops(100) / 1.3);  // ~n^3 growth
}

TEST(Sg2042Model, AnticipatedPartIsPlausible) {
  const auto sg = rveval::arch::sg2042();
  EXPECT_EQ(sg.cores, 64u);  // "will have 64 cores" (§8)
  EXPECT_GT(sg.scalar_flops_per_core(),
            rveval::arch::u74_mc().scalar_flops_per_core());
  EXPECT_GT(sg.mem_bw_gib, rveval::arch::jh7110().mem_bw_gib);
  EXPECT_LT(sg.mem_bw_gib, rveval::arch::a64fx().mem_bw_gib);
  EXPECT_TRUE(rveval::arch::find_cpu("RISC-V SG2042(milk-v pioneer)")
                  .has_value());
}

}  // namespace
