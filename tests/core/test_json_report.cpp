// rveval::report::json Value build/dump/parse round-trips, escape and
// number-formatting rules, parser error reporting, and the BenchReport
// emitter consumed by plot/CI tooling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/report/bench_report.hpp"
#include "core/report/json.hpp"
#include "core/report/table.hpp"

namespace json = rveval::report::json;

TEST(JsonValue, BuildAndDumpCompact) {
  auto doc = json::Value::object();
  doc.set("name", "octo");
  doc.set("count", 3);
  doc.set("ratio", 0.5);
  doc.set("ok", true);
  doc.set("none", json::Value());
  auto arr = json::Value::array();
  arr.push(1).push(2).push(3);
  doc.set("xs", std::move(arr));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"octo\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"none\":null,\"xs\":[1,2,3]}");
}

TEST(JsonValue, IntegralNumbersDumpWithoutFraction) {
  EXPECT_EQ(json::Value(42.0).dump(), "42");
  EXPECT_EQ(json::Value(-7.0).dump(), "-7");
  EXPECT_EQ(json::Value(0.0).dump(), "0");
  EXPECT_EQ(json::Value(2.5).dump(), "2.5");
  // Non-finite values have no JSON spelling; they degrade to null.
  EXPECT_EQ(json::Value(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(JsonValue, EscapeRules) {
  EXPECT_EQ(json::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json::Value("\x01").dump(), "\"\\u0001\"");
  // UTF-8 passes through untouched.
  EXPECT_EQ(json::Value("héllo").dump(), "\"héllo\"");
}

TEST(JsonParse, RoundTripNestedDocument) {
  auto doc = json::Value::object();
  doc.set("s", "a \"quoted\" line\nwith\tescapes\\");
  doc.set("n", -12.75);
  doc.set("i", 1234567);
  auto inner = json::Value::object();
  inner.set("flag", false);
  auto arr = json::Value::array();
  arr.push(inner);
  arr.push("x");
  arr.push(json::Value());
  doc.set("arr", std::move(arr));

  const auto reparsed = json::parse(doc.dump());
  EXPECT_EQ(reparsed.dump(), doc.dump());
  const auto pretty = json::parse(doc.dump(2));
  EXPECT_EQ(pretty.dump(), doc.dump());
  EXPECT_EQ(reparsed.find("s")->as_string(),
            "a \"quoted\" line\nwith\tescapes\\");
  EXPECT_DOUBLE_EQ(reparsed.find("n")->as_number(), -12.75);
  EXPECT_FALSE(
      reparsed.find("arr")->at(0).find("flag")->as_bool());
  EXPECT_TRUE(reparsed.find("arr")->at(2).is_null());
}

TEST(JsonParse, UnicodeEscapes) {
  const auto v = json::parse("\"\\u0041\\u00e9\\u20ac\"");
  EXPECT_EQ(v.as_string(), "Aé€");  // 1-, 2- and 3-byte UTF-8 encodings
}

TEST(JsonParse, SurrogatePairsCombine) {
  // U+1D11E (musical G clef) is \uD834\uDD1E in JSON; the pair must decode
  // to ONE 4-byte UTF-8 code point, not two 3-byte CESU-8 halves.
  const auto v = json::parse("\"\\uD834\\uDD1E\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9D\x84\x9E");

  // U+1F600 (emoji), lower-case hex, surrounded by ASCII.
  const auto w = json::parse("\"ok \\ud83d\\ude00!\"");
  EXPECT_EQ(w.as_string(), "ok \xF0\x9F\x98\x80!");

  // Highest code point: U+10FFFF = \uDBFF\uDFFF.
  const auto m = json::parse("\"\\uDBFF\\uDFFF\"");
  EXPECT_EQ(m.as_string(), "\xF4\x8F\xBF\xBF");
}

TEST(JsonParse, LoneSurrogateHalvesPassThrough) {
  // A high surrogate NOT followed by a low one keeps its raw 3-byte
  // encoding (lenient, like the emitter side), and the follower — BMP
  // escape or plain text — is decoded independently.
  const auto lone = json::parse("\"\\uD834x\"");
  EXPECT_EQ(lone.as_string(), "\xED\xA0\xB4x");

  const auto high_then_bmp = json::parse("\"\\uD834\\u0041\"");
  EXPECT_EQ(high_then_bmp.as_string(), "\xED\xA0\xB4\x41");

  // An unpaired low surrogate likewise decodes alone.
  const auto low = json::parse("\"\\uDD1E\"");
  EXPECT_EQ(low.as_string(), "\xED\xB4\x9E");

  // A high surrogate at the very end of input must not read past it.
  const auto tail = json::parse("\"\\uD834\"");
  EXPECT_EQ(tail.as_string(), "\xED\xA0\xB4");
}

TEST(JsonParse, SurrogatePairRoundTripsThroughDump) {
  // dump() escapes control characters only, so the 4-byte sequence is
  // emitted raw; reparsing must preserve it byte for byte.
  const std::string clef = "\xF0\x9D\x84\x9E";
  const auto v = json::parse(json::Value(clef).dump());
  EXPECT_EQ(v.as_string(), clef);
}

TEST(JsonParse, NumbersAndLiterals) {
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("-0.5E-1").as_number(), -0.05);
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_TRUE(json::parse(" null ").is_null());
  EXPECT_EQ(json::parse("[]").size(), 0u);
  EXPECT_TRUE(json::parse("{}").is_object());
}

TEST(JsonParse, DuplicateKeysLastWins) {
  const auto v = json::parse("{\"k\":1,\"k\":2}");
  EXPECT_DOUBLE_EQ(v.find("k")->as_number(), 2.0);
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW(json::parse(""), std::runtime_error);
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::parse("\"bad \\q escape\""), std::runtime_error);
  EXPECT_THROW(json::parse("\"\\u12\""), std::runtime_error);
  EXPECT_THROW(json::parse("troo"), std::runtime_error);
  EXPECT_THROW(json::parse("1 2"), std::runtime_error);  // trailing content
  EXPECT_THROW(json::parse("nul"), std::runtime_error);  // truncated literal
}

TEST(JsonParse, TypeMismatchThrows) {
  const auto v = json::parse("[1]");
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_EQ(v.find("k"), nullptr);  // not an object: nothing to find
  EXPECT_THROW(json::parse("3").at(0), std::runtime_error);
}

TEST(TableToJson, NumericCellsBecomeNumbers) {
  rveval::report::Table t("demo table");
  t.headers({"label", "value", "note"});
  t.row({"alpha", "1.25", "free text"});
  t.row({"beta", "-3", "12 monkeys"});  // "12 monkeys" is not numeric

  const auto v = rveval::report::to_json(t);
  EXPECT_EQ(v.find("title")->as_string(), "demo table");
  const auto* rows = v.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_DOUBLE_EQ(rows->at(0).at(1).as_number(), 1.25);
  EXPECT_EQ(rows->at(0).at(2).as_string(), "free text");
  EXPECT_DOUBLE_EQ(rows->at(1).at(1).as_number(), -3.0);
  EXPECT_EQ(rows->at(1).at(2).as_string(), "12 monkeys");
}

TEST(BenchReport, DumpHasSchemaAndParses) {
  rveval::report::BenchReport report("test_bench", "a test report");
  report.metric("speedup", 3.5)
      .metric("cpu", std::string("VisionFive2"))
      .note("one note");
  rveval::report::Table t("t");
  t.headers({"a"});
  t.row({"1"});
  report.add_table(t);

  const auto doc = json::parse(report.dump());
  EXPECT_EQ(doc.find("schema")->as_string(), "rveval-bench-v1");
  EXPECT_EQ(doc.find("bench")->as_string(), "test_bench");
  EXPECT_EQ(doc.find("title")->as_string(), "a test report");
  const auto* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->find("speedup")->as_number(), 3.5);
  EXPECT_EQ(metrics->find("cpu")->as_string(), "VisionFive2");
  EXPECT_EQ(doc.find("tables")->size(), 1u);
  EXPECT_EQ(doc.find("notes")->at(0).as_string(), "one note");
}

TEST(BenchReport, WriteProducesParseableFile) {
  const std::string path = "test_json_report_tmp.json";
  rveval::report::BenchReport report("write_bench", "written to disk");
  report.metric("x", 1.0);
  ASSERT_TRUE(report.write(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = json::parse(buf.str());
  EXPECT_EQ(doc.find("bench")->as_string(), "write_bench");
  in.close();
  std::remove(path.c_str());
}
