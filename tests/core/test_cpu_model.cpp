// Tests for the architecture models: the peak-performance values must
// reproduce the paper's Table 2 to the printed digits, and the model inputs
// must produce the paper's qualitative cross-architecture ordering.

#include <gtest/gtest.h>

#include "core/arch/cpu_model.hpp"
#include "core/arch/network_model.hpp"

namespace arch = rveval::arch;

TEST(Table2, PeakPerformanceMatchesPaper) {
  // Paper Table 2, last column (GFLOP/s).
  EXPECT_DOUBLE_EQ(arch::a64fx().peak_gflops(), 2764.8);
  EXPECT_DOUBLE_EQ(arch::epyc_7543().peak_gflops(), 2867.2);
  EXPECT_DOUBLE_EQ(arch::xeon_gold_6140().peak_gflops(), 1324.8);
  EXPECT_DOUBLE_EQ(arch::u74_mc().peak_gflops(), 9.6);
}

TEST(Table2, RowFieldsMatchPaper) {
  const auto u74 = arch::u74_mc();
  EXPECT_DOUBLE_EQ(u74.clock_ghz, 1.2);
  EXPECT_EQ(u74.vector_length, 1u);  // "NA" in the paper
  EXPECT_EQ(u74.fpu_per_core, 1u);
  EXPECT_FALSE(u74.fma);  // FP64 FMA absent (32-bit only footnote)
  EXPECT_EQ(u74.cores, 4u);

  const auto fx = arch::a64fx();
  EXPECT_EQ(fx.vector_length, 8u);
  EXPECT_TRUE(fx.fma);
  EXPECT_EQ(fx.cores, 48u);

  const auto amd = arch::epyc_7543();
  EXPECT_EQ(amd.vector_length, 4u);
  EXPECT_EQ(amd.cores, 64u);

  const auto intel = arch::xeon_gold_6140();
  EXPECT_EQ(intel.vector_length, 8u);
  EXPECT_EQ(intel.cores, 18u);
}

TEST(Table2, FourCpusInPaperOrder) {
  const auto cpus = arch::table2_cpus();
  ASSERT_EQ(cpus.size(), 4u);
  EXPECT_EQ(cpus[0].name, "ARM A64FX");
  EXPECT_EQ(cpus[1].name, "AMD EPYC 7543");
  EXPECT_EQ(cpus[2].name, "Intel Xeon Gold 6140");
  EXPECT_EQ(cpus[3].name, "RISC-V U74-MC(hifiveu)");
}

TEST(Table2, PeakScalesLinearlyWithCores) {
  const auto amd = arch::epyc_7543();
  EXPECT_DOUBLE_EQ(amd.peak_gflops(1) * 64.0, amd.peak_gflops(64));
  EXPECT_DOUBLE_EQ(amd.peak_gflops(0), 0.0);
}

TEST(CpuModel, FindByName) {
  auto m = arch::find_cpu("ARM A64FX");
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->clock_ghz, 1.8);
  EXPECT_TRUE(arch::find_cpu("RISC-V JH7110(visionfive2)").has_value());
  EXPECT_FALSE(arch::find_cpu("MOS 6502").has_value());
}

TEST(CpuModel, ScalarRateOrderingMatchesPaperObservations) {
  // Paper §6.1: AMD fastest, then Intel; RISC-V ~5x slower than A64FX.
  const double amd = arch::epyc_7543().scalar_flops_per_core();
  const double intel = arch::xeon_gold_6140().scalar_flops_per_core();
  const double fx = arch::a64fx().scalar_flops_per_core();
  const double rv = arch::u74_mc().scalar_flops_per_core();
  EXPECT_GT(amd, intel);
  EXPECT_GT(intel, fx);
  EXPECT_GT(fx, rv);
  const double ratio = fx / rv;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 7.0);  // "around five times"
}

TEST(CpuModel, VisionFive2SharesU74Cores) {
  const auto vf2 = arch::jh7110();
  const auto u74 = arch::u74_mc();
  EXPECT_EQ(vf2.cores, u74.cores);
  EXPECT_EQ(vf2.vector_length, u74.vector_length);
  EXPECT_DOUBLE_EQ(vf2.scalar_fp_ipc, u74.scalar_fp_ipc);
  EXPECT_GT(vf2.clock_ghz, u74.clock_ghz);  // 1.5 vs 1.2 GHz
}

TEST(RuntimeOverheads, ScaleInverselyWithClock) {
  const auto slow = arch::runtime_overheads(arch::u74_mc());
  const auto fast = arch::runtime_overheads(arch::epyc_7543());
  EXPECT_GT(slow.task_spawn_seconds, fast.task_spawn_seconds);
  EXPECT_GT(slow.context_switch_seconds, fast.context_switch_seconds);
  EXPECT_GT(slow.task_spawn_seconds, 0.0);
  // U74 baseline: exactly the measured constants.
  EXPECT_DOUBLE_EQ(slow.task_spawn_seconds, 1.5e-6);
}

TEST(NetworkModel, MessageCostDecomposition) {
  const auto tcp = arch::gbe_tcp();
  // Latency floor for a tiny message.
  EXPECT_NEAR(tcp.message_seconds(0), 120e-6, 1e-9);
  // Bandwidth term dominates for a big one.
  const double t1mb = tcp.message_seconds(1 << 20);
  EXPECT_GT(t1mb, (1 << 20) / 117.0e6);
  EXPECT_LT(t1mb, (1 << 20) / 117.0e6 + 200e-6);
}

TEST(NetworkModel, MpiRendezvousKicksInAboveEagerLimit) {
  const auto mpi = arch::gbe_mpi();
  const double small = mpi.message_seconds(32 * 1024);
  const double just_under = mpi.message_seconds(64 * 1024);
  const double just_over = mpi.message_seconds(64 * 1024 + 1);
  EXPECT_LT(small, just_under);
  // The rendezvous round trip adds a discontinuity.
  EXPECT_GT(just_over - just_under, mpi.rendezvous_rtt_seconds * 0.9);
}

TEST(NetworkModel, MpiSlowerThanTcpPerMessage) {
  // The documented protocol hypothesis behind Fig. 8's TCP > MPI speed-up.
  const auto tcp = arch::gbe_tcp();
  const auto mpi = arch::gbe_mpi();
  for (const std::size_t bytes : {64u, 4096u, 65536u, 1u << 20}) {
    EXPECT_GT(mpi.message_seconds(bytes), tcp.message_seconds(bytes))
        << "bytes=" << bytes;
  }
}

TEST(NetworkModel, TofuDIsOrdersOfMagnitudeFaster) {
  const auto tofu = arch::tofu_d();
  const auto tcp = arch::gbe_tcp();
  EXPECT_LT(tofu.message_seconds(1 << 16), tcp.message_seconds(1 << 16) / 20);
}
