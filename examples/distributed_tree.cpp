// Distributed programming with minihpx: components, remote actions, and
// the unified local/remote call syntax the paper highlights for
// Octo-Tiger's tree traversals (§3.1) — demonstrated with a distributed
// binary tree summed by recursive *remote* calls, then the rotating star
// run across two simulated localities over a chosen parcelport:
//
//   ./build/examples/distributed_tree [tcp|mpisim|inproc]

#include <cstdio>
#include <string>

#include "minihpx/minihpx.hpp"
#include "octotiger/distributed/dist_driver.hpp"

namespace {

namespace md = mhpx::dist;

/// A tree node component: a value plus gids of children that may live on
/// any locality.
class TreeNodeComponent : public md::Component {
 public:
  static constexpr std::string_view type_name = "example::TreeNode";
  using ctor_args = std::tuple<long>;

  TreeNodeComponent(md::Locality& /*here*/, long value) : value_(value) {}

  long value_;
  md::gid left_{};
  md::gid right_{};
};
MHPX_REGISTER_COMPONENT(TreeNodeComponent);

struct SetChildren {
  static constexpr std::string_view name = "example::set_children";
  static int invoke(md::Locality&, TreeNodeComponent& self, md::gid l,
                    md::gid r) {
    self.left_ = l;
    self.right_ = r;
    return 0;
  }
};
MHPX_REGISTER_ACTION(SetChildren);

struct SumSubtree {
  static constexpr std::string_view name = "example::sum_subtree";
  // The recursion never asks where a child lives: call<> works the same
  // for local and remote children — the paper's "unified syntax" point.
  static long invoke(md::Locality& here, TreeNodeComponent& self) {
    long total = self.value_;
    if (self.left_.id != 0) {
      auto l = here.call<SumSubtree>(self.left_);
      auto r = here.call<SumSubtree>(self.right_);
      total += l.get() + r.get();
    }
    return total;
  }
};
MHPX_REGISTER_ACTION(SumSubtree);

/// Build a depth-d tree with nodes alternating between localities.
md::gid build(md::DistributedRuntime& rt, int depth, long& counter) {
  const auto where =
      static_cast<md::locality_id>(counter % rt.num_localities());
  const md::gid node =
      rt.locality(0).create_on<TreeNodeComponent>(where, ++counter).get();
  if (depth > 0) {
    long c = counter;
    const md::gid l = build(rt, depth - 1, counter);
    const md::gid r = build(rt, depth - 1, counter);
    (void)c;
    rt.locality(0).call<SetChildren>(node, l, r).get();
  }
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  md::FabricKind fabric = md::FabricKind::tcp;
  if (argc > 1) {
    const std::string arg = argv[1];
    fabric = arg == "inproc"   ? md::FabricKind::inproc
             : arg == "mpisim" ? md::FabricKind::mpisim
                               : md::FabricKind::tcp;
  }
  std::printf("parcelport: %s\n", std::string(md::to_string(fabric)).c_str());

  // Part 1: a distributed tree traversed by recursive remote calls.
  {
    md::DistributedRuntime::Config cfg;
    cfg.num_localities = 2;
    cfg.threads_per_locality = 2;
    cfg.fabric = fabric;
    md::DistributedRuntime rt(cfg);

    long counter = 0;
    const md::gid root = build(rt, 4, counter);
    const long sum = rt.locality(0).call<SumSubtree>(root).get();
    const long expect = counter * (counter + 1) / 2;
    std::printf("distributed tree: %ld nodes across 2 localities, "
                "sum = %ld (expected %ld)\n",
                counter, sum, expect);
    const auto stats = rt.fabric().stats();
    std::printf("parcels: %llu messages, %llu bytes\n",
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.bytes));
  }

  // Part 2: the rotating star across two localities (the paper's two-board
  // configuration, Listing 2-3).
  {
    octo::Options opt;
    opt.max_level = 2;
    opt.stop_step = 2;
    opt.threads = 2;
    opt.localities = 2;
    octo::dist::DistSimulation sim(opt, fabric);
    std::printf("\nrotating star on 2 localities (%zu cells):\n",
                sim.total_cells());
    for (unsigned s = 0; s < opt.stop_step; ++s) {
      const double dt = sim.step();
      std::printf("  step %u: dt=%.4e mass=%.6e\n", s + 1, dt,
                  sim.totals().rho);
    }
    const auto stats = sim.runtime().fabric().stats();
    std::printf("parcels: %llu messages, %.1f MB\n",
                static_cast<unsigned long long>(stats.messages),
                static_cast<double>(stats.bytes) / 1e6);
  }
  return 0;
}
