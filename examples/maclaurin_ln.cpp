// The paper's shared-memory benchmark as a standalone example: compute
// ln(1+x) via the Maclaurin series (Eq. 1) with all four parallelism
// idioms and compare against std::log1p.
//
//   ./build/examples/maclaurin_ln [x] [terms]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/bench/maclaurin.hpp"
#include "core/perf/flops.hpp"
#include "minihpx/chrono/clocks.hpp"
#include "minihpx/runtime.hpp"

int main(int argc, char** argv) {
  double x = 0.5;
  std::uint64_t terms = 2'000'000;
  if (argc > 1) {
    x = std::atof(argv[1]);
  }
  if (argc > 2) {
    terms = static_cast<std::uint64_t>(std::atoll(argv[2]));
  }
  if (!(x > -1.0 && x < 1.0)) {
    std::fprintf(stderr, "x must satisfy |x| < 1 (got %g)\n", x);
    return 1;
  }

  mhpx::Runtime runtime{{4, 256 * 1024}};
  rveval::bench::MaclaurinConfig cfg;
  cfg.x = x;
  cfg.terms = terms;
  cfg.tasks = 16;

  const double exact = rveval::bench::reference(x);
  std::printf("ln(1+%g) = %.15f (std::log1p)\n", x, exact);
  std::printf("%-22s %-20s %-12s %s\n", "implementation", "result", "error",
              "host time [s]");

  struct Variant {
    const char* name;
    rveval::bench::MaclaurinResult (*run)(
        const rveval::bench::MaclaurinConfig&);
  };
  const Variant variants[] = {
      {"async + futures", &rveval::bench::run_async},
      {"parallel algorithm", &rveval::bench::run_parallel_algorithm},
      {"senders & receivers", &rveval::bench::run_sender_receiver},
      {"future + coroutine", &rveval::bench::run_coroutine},
  };
  for (const auto& v : variants) {
    mhpx::chrono::timer<> t;
    const auto r = v.run(cfg);
    const double secs = t.elapsed_seconds();
    std::printf("%-22s %.15f %.3e    %.3f\n", v.name, r.sum,
                std::abs(r.sum - exact), secs);
  }
  std::printf("analytic flops (software pow): %.0f\n",
              rveval::perf::maclaurin_flops(terms));
  return 0;
}
