// Binary-star evolution — the workload class Octo-Tiger is built for
// (paper Fig. 1: merger of two stars with mass transfer from the donor).
// Two polytropes in a circular orbit are evolved with the interleaved
// gravity + hydro solvers; per-step diagnostics track the orbit (centre
// separation), angular momentum, and the virial balance.
//
//   ./build/examples/binary_merger [--max_level=N] [--stop_step=N] ...

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "minihpx/runtime.hpp"
#include "octotiger/diagnostics.hpp"
#include "octotiger/driver.hpp"
#include "octotiger/init/binary_star.hpp"

namespace {

/// Locate the density maxima on the +x and -x sides (the two stellar
/// cores) and return their separation.
double core_separation(const octo::Octree& tree) {
  double best_pos = 0.0;
  double best_neg = 0.0;
  octo::Vec3 pos_loc{};
  octo::Vec3 neg_loc{};
  for (const octo::TreeNode* leaf : tree.leaves()) {
    const octo::SubGrid& g = leaf->grid;
    for (std::size_t i = 0; i < octo::NX; ++i) {
      for (std::size_t j = 0; j < octo::NX; ++j) {
        for (std::size_t k = 0; k < octo::NX; ++k) {
          const double rho = g.u(octo::f_rho, i, j, k);
          const octo::Vec3 p = g.cell_center(i, j, k);
          if (p.x >= 0.0 && rho > best_pos) {
            best_pos = rho;
            pos_loc = p;
          }
          if (p.x < 0.0 && rho > best_neg) {
            best_neg = rho;
            neg_loc = p;
          }
        }
      }
    }
  }
  return (pos_loc - neg_loc).norm();
}

}  // namespace

int main(int argc, char** argv) {
  octo::Options opt;
  opt.problem = octo::Options::Problem::binary_star;
  opt.max_level = 3;
  opt.stop_step = 5;
  try {
    opt.parse_cli({argv + 1, argv + argc});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  opt.problem = octo::Options::Problem::binary_star;  // CLI cannot unset it

  mhpx::Runtime runtime{{opt.threads, 256 * 1024}};
  octo::Simulation sim(opt);

  octo::init::BinaryParams params;
  params.separation = opt.binary_separation;
  params.radius1 = opt.binary_radius1;
  params.radius2 = opt.binary_radius2;
  params.rho_c1 = opt.binary_rho_c1;
  params.rho_c2 = opt.binary_rho_c2;

  std::printf("binary system: M1=%.4f M2=%.4f separation=%.2f "
              "orbital omega=%.4f (period %.2f)\n",
              octo::init::binary_mass1(params),
              octo::init::binary_mass2(params), params.separation,
              octo::init::binary_orbital_omega(params),
              2.0 * M_PI / octo::init::binary_orbital_omega(params));
  std::printf("mesh: %zu leaves, %zu cells\n\n", sim.tree().leaf_count(),
              sim.tree().total_cells());

  const auto d0 = octo::compute_diagnostics(sim.tree());
  std::printf("%-5s %-11s %-11s %-12s %-12s %-10s\n", "step", "dt",
              "separation", "mass", "Lz", "virial");
  std::printf("%-5s %-11s %-11.4f %-12.6e %-12.4e %-10s\n", "init", "-",
              core_separation(sim.tree()), d0.mass, d0.angular_momentum_z,
              "-");

  for (unsigned s = 0; s < opt.stop_step; ++s) {
    const double dt = sim.step();
    const auto d = octo::compute_diagnostics(sim.tree());
    std::printf("%-5u %-11.4e %-11.4f %-12.6e %-12.4e %-10.3f\n", s + 1, dt,
                core_separation(sim.tree()), d.mass, d.angular_momentum_z,
                d.virial_error());
  }

  const auto d1 = octo::compute_diagnostics(sim.tree());
  std::printf("\nconservation over %u steps: mass drift %.2e, Lz drift "
              "%.2e (relative)\n",
              opt.stop_step, std::abs(d1.mass - d0.mass) / d0.mass,
              std::abs(d1.angular_momentum_z - d0.angular_momentum_z) /
                  std::abs(d0.angular_momentum_z));
  return 0;
}
