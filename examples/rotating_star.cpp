// The paper's astrophysics workload as a runnable example: evolve a single
// rotating polytropic star with the interleaved gravity + hydro solvers and
// print per-step diagnostics — the Octo-Tiger command-line experience of
// the paper's Listing 2 in miniature:
//
//   ./build/examples/rotating_star --config_file=rotating_star.ini \
//       --max_level=2 --stop_step=5 --theta=0.5 \
//       --hydro_host_kernel_type=KOKKOS \
//       --multipole_host_kernel_type=KOKKOS \
//       --monopole_host_kernel_type=KOKKOS --hpx:threads=4
//
// All flags are optional; defaults give a quick level-2 run.

#include <cstdio>
#include <string>
#include <vector>

#include "minihpx/chrono/clocks.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/driver.hpp"

int main(int argc, char** argv) {
  octo::Options opt;
  opt.max_level = 2;
  opt.stop_step = 5;
  try {
    opt.parse_cli({argv + 1, argv + argc});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  mhpx::Runtime runtime{{opt.threads, 256 * 1024}};
  std::printf("octotiger miniapp: %s\n", opt.summary().c_str());

  octo::Simulation sim(opt);
  std::printf("mesh: %zu leaves, %zu cells (8x8x8 sub-grids)\n",
              sim.tree().leaf_count(), sim.tree().total_cells());
  const octo::Cons t0 = sim.totals();
  std::printf("initial: mass=%.6e energy=%.6e\n", t0.rho, t0.egas);

  mhpx::chrono::timer<> wall;
  for (unsigned s = 0; s < opt.stop_step; ++s) {
    const double dt = sim.step();
    const octo::Cons t = sim.totals();
    std::printf("step %u: dt=%.4e t=%.4e  mass=%.6e  |mom|=%.2e\n", s + 1,
                dt, sim.stats().sim_time, t.rho,
                std::sqrt(t.sx * t.sx + t.sy * t.sy + t.sz * t.sz));
  }
  const double secs = wall.elapsed_seconds();
  const octo::Cons t1 = sim.totals();

  std::printf("\n%u steps in %.2f s on this host: %.0f cells/s\n",
              sim.stats().steps, secs,
              static_cast<double>(sim.stats().cells_processed) / secs);
  std::printf("mass drift: %.3e (relative)\n",
              std::abs(t1.rho - t0.rho) / t0.rho);
  return 0;
}
