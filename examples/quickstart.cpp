// Quickstart: a tour of the minihpx API in ~80 lines.
//
// Build & run:   ./build/examples/quickstart
//
// Shows the five idioms the paper's benchmarks are written in:
// async/futures, continuations, parallel algorithms, senders & receivers,
// and coroutines — plus a fiber-aware channel pipeline.

#include <cstdio>
#include <vector>

#include "minihpx/minihpx.hpp"

mhpx::future<long> fib_coroutine(int n) {
  // Coroutines compose with async: co_await suspends only this coroutine,
  // never a worker thread.
  if (n < 2) {
    co_return n;
  }
  auto a = mhpx::async([n] { return fib_coroutine(n - 1); });
  auto b = mhpx::async([n] { return fib_coroutine(n - 2); });
  const long x = co_await mhpx::unwrap(std::move(a));
  const long y = co_await mhpx::unwrap(std::move(b));
  co_return x + y;
}

int main() {
  // The runtime is RAII: workers start here, drain at scope exit.
  mhpx::Runtime runtime{{4, 256 * 1024}};

  // 1. async + futures (the Fig. 4a programming model).
  auto answer = mhpx::async([] { return 6 * 7; });
  std::printf("async:              6*7 = %d\n", answer.get());

  // 2. Continuations build a task graph without blocking.
  auto chained = mhpx::async([] { return 10; })
                     .then([](int v) { return v * v; })
                     .then([](int v) { return v + 1; });
  std::printf("continuations:      10 -> %d\n", chained.get());

  // 3. Parallel algorithms (the Fig. 4b model).
  std::vector<double> data(1'000'000, 1.0);
  mhpx::for_each(mhpx::execution::par, data.begin(), data.end(),
                 [](double& x) { x *= 2.0; });
  const double sum = mhpx::reduce(mhpx::execution::par, data.begin(),
                                  data.end(), 0.0,
                                  [](double a, double b) { return a + b; });
  std::printf("parallel reduce:    sum = %.0f\n", sum);

  // 4. Senders & receivers (the Fig. 5 model).
  namespace ex = mhpx::ex;
  auto pipeline = ex::schedule(ex::ambient_sched()) |
                  ex::then([] { return 20; }) |
                  ex::then([](int v) { return v + 1; });
  std::printf("senders&receivers:  %d\n",
              ex::sync_wait_one<int>(std::move(pipeline)).value());

  // 5. Coroutines over futures.
  std::printf("coroutine fib(15):  %ld\n", fib_coroutine(15).get());

  // 6. Channels: a fiber-aware producer/consumer pipeline.
  mhpx::sync::channel<int> ch(8);
  auto producer = mhpx::async([&ch] {
    for (int i = 1; i <= 100; ++i) {
      ch.send(i);
    }
    ch.close();
  });
  auto consumer = mhpx::async([&ch] {
    long total = 0;
    while (auto v = ch.receive()) {
      total += *v;
    }
    return total;
  });
  producer.get();
  std::printf("channel pipeline:   1+...+100 = %ld\n", consumer.get());
  return 0;
}
