#pragma once

/// \file seed_env.hpp
/// One place that knows every RVEVAL_* seed variable.
///
/// PR 1 introduced RVEVAL_FAULT_SEED (fault-injection RNG), the testing
/// subsystem adds RVEVAL_SCHED_SEED / RVEVAL_SCHED_PREEMPTS (deterministic
/// scheduling replay), RVEVAL_SIMTEST_BUDGET (interleavings per explorer
/// run) and RVEVAL_PROP_SEED (single property-case replay). The parcelport
/// adds RVEVAL_COALESCE / RVEVAL_COALESCE_MAX_BYTES /
/// RVEVAL_COALESCE_MAX_FRAMES (send-side batching; see
/// minihpx/distributed/parcel_pipeline.hpp). Tests read them through this
/// helper and, on failure, print repro_line() so the exact
/// schedule/fault/batching plan can be replayed with one copy-pasted env
/// line.

#include <cstdint>
#include <string>
#include <vector>

namespace rveval::testing {

/// Snapshot of the seed-bearing environment, with the defaults every test
/// assumes when a variable is unset.
struct SeedEnv {
  std::uint64_t fault_seed = 0x5eed;        ///< RVEVAL_FAULT_SEED
  std::uint64_t sched_seed = 0x5eed;        ///< RVEVAL_SCHED_SEED
  bool sched_seed_set = false;              ///< was RVEVAL_SCHED_SEED given?
  std::vector<std::uint64_t> sched_preempts;  ///< RVEVAL_SCHED_PREEMPTS
  unsigned simtest_budget = 64;             ///< RVEVAL_SIMTEST_BUDGET
  bool coalesce = true;                     ///< RVEVAL_COALESCE
  std::uint64_t coalesce_max_bytes = 128 * 1024;  ///< RVEVAL_COALESCE_MAX_BYTES
  std::uint64_t coalesce_max_frames = 64;   ///< RVEVAL_COALESCE_MAX_FRAMES

  /// "RVEVAL_FAULT_SEED=... RVEVAL_SCHED_SEED=..." — everything needed to
  /// replay the current run, including variables left at their defaults.
  [[nodiscard]] std::string repro_line() const;
};

/// Read all seed variables from the environment (defaults where unset).
[[nodiscard]] SeedEnv seed_env();

/// Shorthands for the individual variables.
[[nodiscard]] std::uint64_t fault_seed();
[[nodiscard]] std::uint64_t sched_seed();
[[nodiscard]] unsigned simtest_budget();

/// Multiplier for wall-clock deadlines in tests: 1 in plain builds, large
/// under sanitizers. ASan/UBSan slow the solver 5-10x, so timeouts tuned
/// for native runs would declare a merely-instrumented locality dead.
[[nodiscard]] constexpr double timeout_scale() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return 20.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return 20.0;
#else
  return 1.0;
#endif
#else
  return 1.0;
#endif
}

}  // namespace rveval::testing
