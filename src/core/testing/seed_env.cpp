#include "core/testing/seed_env.hpp"

#include <cstdlib>
#include <sstream>

#include "minihpx/distributed/parcel_pipeline.hpp"
#include "minihpx/testing/det.hpp"

namespace rveval::testing {

SeedEnv seed_env() {
  SeedEnv env;
  env.fault_seed = mhpx::testing::detail::env_u64("RVEVAL_FAULT_SEED", 0x5eed);
  env.sched_seed = mhpx::testing::detail::env_u64("RVEVAL_SCHED_SEED", 0x5eed);
  env.sched_seed_set = std::getenv("RVEVAL_SCHED_SEED") != nullptr;
  env.sched_preempts =
      mhpx::testing::detail::env_u64_list("RVEVAL_SCHED_PREEMPTS");
  env.simtest_budget = static_cast<unsigned>(
      mhpx::testing::detail::env_u64("RVEVAL_SIMTEST_BUDGET", 64));
  const auto coalesce = mhpx::dist::coalesce_config_from_env();
  env.coalesce = coalesce.enabled;
  env.coalesce_max_bytes = coalesce.max_bytes;
  env.coalesce_max_frames = coalesce.max_frames;
  return env;
}

std::string SeedEnv::repro_line() const {
  std::ostringstream os;
  os << "RVEVAL_FAULT_SEED=" << fault_seed
     << " RVEVAL_SCHED_SEED=" << sched_seed;
  if (!sched_preempts.empty()) {
    os << " RVEVAL_SCHED_PREEMPTS=";
    for (std::size_t i = 0; i < sched_preempts.size(); ++i) {
      os << (i != 0 ? "," : "") << sched_preempts[i];
    }
  }
  os << " RVEVAL_SIMTEST_BUDGET=" << simtest_budget;
  os << " RVEVAL_COALESCE=" << (coalesce ? 1 : 0);
  if (coalesce) {
    os << " RVEVAL_COALESCE_MAX_BYTES=" << coalesce_max_bytes
       << " RVEVAL_COALESCE_MAX_FRAMES=" << coalesce_max_frames;
  }
  return os.str();
}

std::uint64_t fault_seed() { return seed_env().fault_seed; }
std::uint64_t sched_seed() { return seed_env().sched_seed; }
unsigned simtest_budget() { return seed_env().simtest_budget; }

}  // namespace rveval::testing
