#pragma once

/// \file energy.hpp
/// Power and energy models for §7 / Fig. 9.
///
/// The paper measures power two ways:
///   - RISC-V boards: a wall power meter on the USB supply — it sees the
///     *whole board* (SoC + DRAM + storage + NIC + regulator losses);
///   - Fugaku A64FX: Riken's PowerAPI — chip-isolated counters.
/// We model both instruments. The board model reproduces the paper's §7
/// readings (3.19 W under `stress --cpu 4`, 3.22 W under Octo-Tiger on 4
/// cores); the PowerAPI model covers the 4-core slice of an A64FX CMG.

#include <string>

namespace rveval::power {

/// Whole-board power model (what a wall meter sees).
struct BoardPowerModel {
  std::string name;
  double idle_watts = 0.0;       ///< board idle (DRAM, NIC, regulators, SoC)
  double per_core_watts = 0.0;   ///< incremental power per busy core
  /// Extra draw when the memory system is saturated (Octo-Tiger is more
  /// memory-intense than pure-ALU stress, hence 3.22 W vs 3.19 W).
  double mem_active_watts = 0.0;

  /// Power with \p busy_cores running compute; \p memory_bound adds the
  /// memory-system increment.
  [[nodiscard]] double watts(unsigned busy_cores, bool memory_bound) const {
    return idle_watts + per_core_watts * static_cast<double>(busy_cores) +
           (memory_bound ? mem_active_watts : 0.0);
  }
};

/// VisionFive2: §7 reports 3.19 W for `stress --cpu 4` and 3.22 W for
/// Octo-Tiger on all four cores. With a 2.57 W board floor and 0.155 W per
/// busy core, the model reproduces both readings:
///   stress:     2.57 + 4*0.155          = 3.19 W
///   octo-tiger: 2.57 + 4*0.155 + 0.03   = 3.22 W
inline BoardPowerModel visionfive2_board() {
  return BoardPowerModel{"VisionFive2 (wall meter)", 2.57, 0.155, 0.03};
}

/// Chip-isolated PowerAPI-style model of the A64FX 4-core slice used in the
/// Fig. 8/9 comparison runs: base CMG power plus per-active-core increment
/// (A64FX draws ~120 W chip-wide at 48 cores; a 4-core slice with one CMG's
/// L2/HBM controller awake sits near 18-19 W).
struct ChipPowerModel {
  std::string name;
  double base_watts = 0.0;
  double per_core_watts = 0.0;

  [[nodiscard]] double watts(unsigned busy_cores) const {
    return base_watts + per_core_watts * static_cast<double>(busy_cores);
  }
};

inline ChipPowerModel a64fx_powerapi() {
  return ChipPowerModel{"A64FX (PowerAPI)", 14.0, 1.1};
}

/// Accelerator power model for the modelled device execution axis
/// (DESIGN.md §9). Board-level, like the wall-meter model: an idle floor
/// (HBM refresh, fans, regulators) plus distinct busy levels for compute
/// and for link transfers. Per-kernel energy is busy watts x the kernel's
/// *modelled* seconds — the device analogue of the paper's P x t method.
struct DevicePowerModel {
  std::string name;
  double idle_watts = 0.0;  ///< device powered but idle
  double busy_watts = 0.0;  ///< additional draw while a kernel runs
  double copy_watts = 0.0;  ///< additional draw during host<->device DMA

  [[nodiscard]] double kernel_watts() const { return idle_watts + busy_watts; }
  [[nodiscard]] double transfer_watts() const {
    return idle_watts + copy_watts;
  }
};

/// V100-class board power: ~40 W idle, ~250 W TDP under FP64 compute,
/// ~15 W increment for PCIe DMA bursts.
inline DevicePowerModel v100_board_power() {
  return DevicePowerModel{"V100-class board", 40.0, 210.0, 15.0};
}

/// Integrated RISC-V SoC accelerator block (paper §8 outlook): a few watts,
/// sharing the board budget the wall meter already sees.
inline DevicePowerModel riscv_soc_accel_power() {
  return DevicePowerModel{"RISC-V SoC accelerator block", 0.4, 2.2, 0.3};
}

/// Simulated power meter: integrates a power model over (simulated) time.
/// Mirrors the paper's measurement procedure — average watts over the run,
/// energy = average power x duration.
class PowerMeter {
 public:
  /// Record \p seconds of operation at \p watts.
  void record(double watts, double seconds) {
    energy_joules_ += watts * seconds;
    seconds_ += seconds;
  }

  [[nodiscard]] double energy_joules() const noexcept {
    return energy_joules_;
  }
  [[nodiscard]] double elapsed_seconds() const noexcept { return seconds_; }
  [[nodiscard]] double average_watts() const noexcept {
    return seconds_ > 0.0 ? energy_joules_ / seconds_ : 0.0;
  }

 private:
  double energy_joules_ = 0.0;
  double seconds_ = 0.0;
};

}  // namespace rveval::power
