#pragma once

/// \file attribution.hpp
/// Energy attribution: route the §7 power models through the apex
/// observability layer, so joules become a first-class counter and a
/// per-phase quantity instead of one end-to-end number.
///
/// Two mechanisms:
///   - live counters: register_power_counters() integrates a board model
///     over a scheduler's busy time and exposes
///     /power/<locality>/{energy-j,avg-watts} in a CounterRegistry —
///     typically each dist::Locality's own registry, so locality 0 reads a
///     remote board's modelled joules through apex::remote (the way the
///     paper reads a wall meter per board);
///   - post-hoc attribution: attribute_phase_energy() intersects the traced
///     per-locality task slices with the driver's phase windows and prices
///     each phase on the board model, making fig9's P×t trade-off visible
///     per solver phase.

#include <cstdint>
#include <string>
#include <vector>

#include "core/power/energy.hpp"
#include "minihpx/apex/counters.hpp"
#include "minihpx/apex/task_trace.hpp"

namespace mhpx::threads {
class Scheduler;
}

namespace rveval::power {

/// Register /power/<locality>/energy-j (monotonic, modelled joules since
/// registration) and /power/<locality>/avg-watts (gauge) into \p block's
/// registry. The model integrates live: board floor (+ memory-system
/// increment when \p memory_bound) over wall time plus the per-core
/// increment over the scheduler's accumulated busy core-seconds — the same
/// decomposition BoardPowerModel::watts applies instantaneously. \p sched
/// must outlive the block.
void register_power_counters(mhpx::apex::CounterBlock& block,
                             const mhpx::threads::Scheduler& sched,
                             const BoardPowerModel& model,
                             std::uint32_t locality,
                             bool memory_bound = true);

/// Modelled energy of one driver phase.
struct PhaseEnergy {
  std::string phase;     ///< phase name (trace category "phase")
  double seconds = 0.0;  ///< phase window length
  /// Traced busy core-seconds inside the window, indexed by locality pid.
  std::vector<double> busy_core_seconds;
  double joules = 0.0;  ///< modelled board energy over all localities
};

/// Price every traced phase on \p model: for each "phase"-category B/E
/// window, sum the overlap of "task"-category slices per locality pid, then
/// charge num_localities boards' floor power for the window plus the
/// per-core increment for the busy core-seconds. Phases are returned in
/// begin order. \p num_localities fixes the board count (pids beyond it
/// still accumulate busy time into their slot, growing the vector).
[[nodiscard]] std::vector<PhaseEnergy> attribute_phase_energy(
    const std::vector<mhpx::apex::trace::Event>& events,
    const BoardPowerModel& model, unsigned num_localities,
    bool memory_bound = true);

}  // namespace rveval::power
