#include "core/power/attribution.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>

#include "minihpx/threads/scheduler.hpp"

namespace rveval::power {

namespace {

/// Shared integration state for one locality's live power counters. The
/// closures the registry stores copy the shared_ptr, so the state lives as
/// long as any registered reader.
struct PowerState {
  const mhpx::threads::Scheduler* sched = nullptr;
  BoardPowerModel model;
  bool memory_bound = true;
  std::chrono::steady_clock::time_point start;
  std::uint64_t busy_ns_base = 0;  ///< busy time already spent at register

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }

  [[nodiscard]] double busy_core_seconds() const {
    const std::uint64_t busy = sched->counters().busy_ns;
    return busy > busy_ns_base
               ? static_cast<double>(busy - busy_ns_base) * 1e-9
               : 0.0;
  }

  [[nodiscard]] double energy_joules() const {
    const double elapsed = elapsed_seconds();
    const double floor =
        model.idle_watts + (memory_bound ? model.mem_active_watts : 0.0);
    return floor * elapsed + model.per_core_watts * busy_core_seconds();
  }
};

}  // namespace

void register_power_counters(mhpx::apex::CounterBlock& block,
                             const mhpx::threads::Scheduler& sched,
                             const BoardPowerModel& model,
                             std::uint32_t locality, bool memory_bound) {
  auto state = std::make_shared<PowerState>();
  state->sched = &sched;
  state->model = model;
  state->memory_bound = memory_bound;
  state->start = std::chrono::steady_clock::now();
  state->busy_ns_base = sched.counters().busy_ns;
  const std::string prefix = "/power/" + std::to_string(locality);
  block.add(prefix + "/energy-j",
            "modelled board energy since registration [J] (" + model.name +
                ")",
            mhpx::apex::CounterKind::monotonic,
            [state] { return state->energy_joules(); });
  block.add(prefix + "/avg-watts",
            "modelled average board power since registration [W] (" +
                model.name + ")",
            mhpx::apex::CounterKind::gauge, [state] {
              const double elapsed = state->elapsed_seconds();
              return elapsed > 0.0 ? state->energy_joules() / elapsed : 0.0;
            });
}

std::vector<PhaseEnergy> attribute_phase_energy(
    const std::vector<mhpx::apex::trace::Event>& events,
    const BoardPowerModel& model, unsigned num_localities,
    bool memory_bound) {
  using mhpx::apex::trace::Event;
  using mhpx::apex::trace::EventPhase;

  // Phase windows: "phase"-category B/E pairs matched by guid, in begin
  // order. A phase left open at snapshot time is closed at the last event.
  double last_ts = 0.0;
  for (const Event& ev : events) {
    last_ts = std::max(last_ts, ev.ts);
  }
  struct Window {
    std::string name;
    double begin = 0.0;
    double end = 0.0;
  };
  std::vector<Window> windows;
  std::map<std::uint64_t, std::size_t> open_phase;  // guid → windows index
  // Task slices per locality: [pid] → list of (begin, end).
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> slices;
  std::map<std::uint64_t, std::pair<std::uint32_t, double>> open_task;

  for (const Event& ev : events) {
    const bool is_phase = std::strcmp(ev.category, "phase") == 0;
    const bool is_task = std::strcmp(ev.category, "task") == 0;
    if (is_phase && ev.ph == EventPhase::begin) {
      open_phase[ev.guid] = windows.size();
      windows.push_back(Window{ev.name, ev.ts, last_ts});
    } else if (is_phase && ev.ph == EventPhase::end) {
      const auto it = open_phase.find(ev.guid);
      if (it != open_phase.end()) {
        windows[it->second].end = ev.ts;
        open_phase.erase(it);
      }
    } else if (is_task && ev.ph == EventPhase::begin) {
      open_task[ev.guid] = {ev.pid, ev.ts};
    } else if (is_task && ev.ph == EventPhase::end) {
      const auto it = open_task.find(ev.guid);
      if (it != open_task.end()) {
        slices[it->second.first].emplace_back(it->second.second, ev.ts);
        open_task.erase(it);
      }
    }
  }

  std::vector<PhaseEnergy> out;
  out.reserve(windows.size());
  const double floor_watts =
      model.idle_watts + (memory_bound ? model.mem_active_watts : 0.0);
  for (const Window& w : windows) {
    PhaseEnergy pe;
    pe.phase = w.name;
    pe.seconds = std::max(0.0, w.end - w.begin);
    pe.busy_core_seconds.assign(num_localities, 0.0);
    for (const auto& [pid, list] : slices) {
      if (pid >= pe.busy_core_seconds.size()) {
        pe.busy_core_seconds.resize(pid + 1, 0.0);
      }
      for (const auto& [b, e] : list) {
        const double overlap = std::min(e, w.end) - std::max(b, w.begin);
        if (overlap > 0.0) {
          pe.busy_core_seconds[pid] += overlap;
        }
      }
    }
    double busy_total = 0.0;
    for (const double s : pe.busy_core_seconds) {
      busy_total += s;
    }
    pe.joules = floor_watts * pe.seconds *
                    static_cast<double>(num_localities) +
                model.per_core_watts * busy_total;
    out.push_back(std::move(pe));
  }
  return out;
}

}  // namespace rveval::power
