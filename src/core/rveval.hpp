#pragma once

/// \file rveval.hpp
/// Umbrella header for the evaluation-harness library (the paper's primary
/// contribution: porting + cross-architecture evaluation machinery).

#include "core/arch/cpu_model.hpp"
#include "core/arch/network_model.hpp"
#include "core/bench/maclaurin.hpp"
#include "core/perf/flops.hpp"
#include "core/power/energy.hpp"
#include "core/report/bench_report.hpp"
#include "core/report/json.hpp"
#include "core/report/table.hpp"
#include "core/sim/core_simulator.hpp"
#include "core/sim/trace.hpp"
