#pragma once

/// \file accelerator_model.hpp
/// Modelled accelerator (GPU-class) architectures for the device execution
/// axis (DESIGN.md §9).
///
/// The paper evaluates host-only RISC-V, but real Octo-Tiger's production
/// story runs the hydro/gravity kernels through Kokkos CUDA backends
/// ("From Merging Frameworks to Merging Stars", PAPERS.md). The build host
/// has no GPU, so — exactly like the Table-2 CPU models in cpu_model.hpp —
/// device execution is *priced*, never timed: kernels really run (on host
/// silicon, bit-identical to the Serial space), and the model translates
/// their analytic flop/byte counts into modelled device seconds and joules.
///
/// The model is a two-ceiling roofline plus a fixed launch cost:
///   kernel_seconds = launch_latency
///                  + max(flops / sustained_gflops, bytes / hbm_bandwidth)
/// and host<->device transfers are priced on a separate link (PCIe-class):
///   copy_seconds = link_latency + bytes / link_bandwidth.
/// All constants are documented inputs, in the same spirit as the CpuModel
/// rows: peak numbers from vendor sheets, sustained fractions chosen to
/// match the public Octo-Tiger GPU-port observations rather than fitted.

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rveval::arch {

/// Static description of one modelled accelerator.
struct AcceleratorModel {
  std::string name;
  unsigned sm_count = 1;       ///< streaming multiprocessors (CUs)
  double clock_ghz = 1.0;      ///< sustained SM clock
  /// FP64 lanes per SM (doubles retired per cycle per SM, pre-FMA).
  unsigned lanes_per_sm = 1;
  bool fma = true;             ///< FP64 FMA capable (factor 2 in peak)
  /// Fixed cost of one kernel launch as seen from the stream (driver +
  /// hardware dispatch). The dominant term for Octo-Tiger's many small
  /// per-sub-grid kernels — why the real port batches work per launch.
  double launch_latency_s = 5.0e-6;
  /// Effective on-device memory bandwidth in GiB/s (HBM, STREAM-class).
  double hbm_bw_gib = 1.0;
  /// Fraction of peak FLOP/s sustained on stencil/FMM kernels (occupancy,
  /// divergence, latency-bound tails).
  double sustained_fraction = 0.5;
  /// Host<->device link (PCIe-class), GiB/s effective.
  double link_bw_gib = 1.0;
  /// Per-transfer link latency in seconds (DMA setup + driver).
  double link_latency_s = 10.0e-6;

  /// Peak FP64 in GFLOP/s: (fma ? 2 : 1) x clock x lanes x SMs.
  [[nodiscard]] double peak_gflops() const {
    return (fma ? 2.0 : 1.0) * clock_ghz *
           static_cast<double>(lanes_per_sm) * static_cast<double>(sm_count);
  }

  /// Sustained compute rate in FLOP/s.
  [[nodiscard]] double sustained_flops() const {
    return peak_gflops() * 1e9 * sustained_fraction;
  }

  /// Modelled duration of one kernel launch doing \p flops FP64 operations
  /// over \p bytes of device-memory traffic (two-ceiling roofline).
  [[nodiscard]] double kernel_seconds(double flops, double bytes) const {
    const double compute_s = flops / sustained_flops();
    const double memory_s = bytes / (hbm_bw_gib * 1024.0 * 1024.0 * 1024.0);
    return launch_latency_s + std::max(compute_s, memory_s);
  }

  /// Modelled duration of one host<->device transfer of \p bytes.
  [[nodiscard]] double copy_seconds(double bytes) const {
    return link_latency_s + bytes / (link_bw_gib * 1024.0 * 1024.0 * 1024.0);
  }
};

/// V100-class model (the GPU of the published Octo-Tiger CUDA-port runs):
/// 80 SMs x 32 FP64 lanes at 1.38 GHz -> 7.07 TFLOP/s peak; ~810 GiB/s
/// effective HBM2; PCIe 3.0 x16 link (~12 GiB/s effective).
inline AcceleratorModel modelled_v100() {
  AcceleratorModel m;
  m.name = "V100-class (modelled)";
  m.sm_count = 80;
  m.clock_ghz = 1.38;
  m.lanes_per_sm = 32;
  m.fma = true;
  m.launch_latency_s = 5.0e-6;
  m.hbm_bw_gib = 810.0;
  m.sustained_fraction = 0.40;
  m.link_bw_gib = 12.0;
  m.link_latency_s = 10.0e-6;
  return m;
}

/// A100-class model: 108 SMs x 32 FP64 lanes at 1.41 GHz -> 9.7 TFLOP/s
/// peak; ~1.5 TiB/s effective HBM2e; PCIe 4.0 x16 (~24 GiB/s effective).
inline AcceleratorModel modelled_a100() {
  AcceleratorModel m;
  m.name = "A100-class (modelled)";
  m.sm_count = 108;
  m.clock_ghz = 1.41;
  m.lanes_per_sm = 32;
  m.fma = true;
  m.launch_latency_s = 4.0e-6;
  m.hbm_bw_gib = 1500.0;
  m.sustained_fraction = 0.45;
  m.link_bw_gib = 24.0;
  m.link_latency_s = 8.0e-6;
  return m;
}

/// Small integrated-accelerator model in the spirit of the paper's §8
/// outlook (RISC-V SoCs growing vector/accelerator blocks): few compute
/// units, modest bandwidth, but a cheap on-package link — the interesting
/// placement trade-off for energy studies on low-power boards.
inline AcceleratorModel modelled_riscv_soc_accel() {
  AcceleratorModel m;
  m.name = "RISC-V SoC accelerator (modelled)";
  m.sm_count = 4;
  m.clock_ghz = 0.8;
  m.lanes_per_sm = 8;
  m.fma = true;
  m.launch_latency_s = 2.0e-6;
  m.hbm_bw_gib = 12.0;
  m.sustained_fraction = 0.60;
  m.link_bw_gib = 6.0;
  m.link_latency_s = 2.0e-6;
  return m;
}

/// All canned accelerator models.
inline std::vector<AcceleratorModel> modelled_accelerators() {
  return {modelled_v100(), modelled_a100(), modelled_riscv_soc_accel()};
}

/// Look up a model by name; empty if unknown.
inline std::optional<AcceleratorModel> find_accelerator(
    std::string_view name) {
  for (AcceleratorModel& m : modelled_accelerators()) {
    if (m.name == name) {
      return std::move(m);
    }
  }
  return std::nullopt;
}

}  // namespace rveval::arch
