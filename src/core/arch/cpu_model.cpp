#include "core/arch/cpu_model.hpp"

#include <algorithm>

namespace rveval::arch {

// ---------------------------------------------------------------------------
// Model constants. Every number is either (a) a row of the paper's Table 2,
// or (b) a documented microarchitectural estimate listed in DESIGN.md §4.
// The *outputs* (Figs. 4-9) are computed from these inputs; nothing is
// back-filled from the paper's result plots.
// ---------------------------------------------------------------------------

CpuModel a64fx() {
  CpuModel m;
  m.name = "ARM A64FX";
  m.isa = "aarch64";
  m.clock_ghz = 1.8;      // Table 2
  m.vector_length = 8;    // SVE-512: 8 doubles
  m.fpu_per_core = 2;     // Table 2
  m.fma = true;           // Table 2
  m.cores = 48;           // Table 2
  // In-order core, strong SIMD but modest scalar throughput; dependency
  // chains (software pow) retire ~0.9 flop/cycle.
  m.scalar_fp_ipc = 0.9;
  // HBM2: 1 TiB/s chip, 256 GiB/s per CMG; the 4-core slice used in Fig. 8
  // comfortably streams ~64 GiB/s.
  m.mem_bw_gib = 64.0;
  m.autovec_effective = false;  // paper §6.1: no effect observed
  // SVE-512 on the explicitly SIMD-typed Octo-Tiger kernels: the authors'
  // ESPM2 SVE study saw well-below-ideal gains on these kernels; 1.8x is
  // the documented model input.
  m.simd_kernel_speedup = 1.8;
  return m;
}

CpuModel epyc_7543() {
  CpuModel m;
  m.name = "AMD EPYC 7543";
  m.isa = "x86-64";
  m.clock_ghz = 2.8;     // Table 2
  m.vector_length = 4;   // AVX2: 4 doubles
  m.fpu_per_core = 2;    // Table 2
  m.fma = true;          // Table 2
  m.cores = 64;          // Table 2
  // Zen 3: wide out-of-order core; latency-bound scalar FP chains retire
  // ~2.0 flop/cycle thanks to deep OoO and two FMA pipes.
  m.scalar_fp_ipc = 2.0;
  m.mem_bw_gib = 140.0;  // 8ch DDR4-3200, STREAM-class
  m.autovec_effective = true;  // small but visible effect for for_each
  m.simd_kernel_speedup = 2.5;  // AVX2 on SIMD-typed kernels
  return m;
}

CpuModel xeon_gold_6140() {
  CpuModel m;
  m.name = "Intel Xeon Gold 6140";
  m.isa = "x86-64";
  m.clock_ghz = 2.3;     // Table 2
  m.vector_length = 8;   // AVX-512: 8 doubles
  m.fpu_per_core = 2;    // Table 2
  m.fma = true;          // Table 2
  m.cores = 18;          // Table 2
  // Skylake-SP: out-of-order, slightly lower scalar chain throughput than
  // Zen 3 at this clock.
  m.scalar_fp_ipc = 1.8;
  m.mem_bw_gib = 85.0;   // 6ch DDR4-2666, STREAM-class
  m.autovec_effective = true;
  m.simd_kernel_speedup = 2.8;  // AVX-512 on SIMD-typed kernels
  return m;
}

CpuModel u74_mc() {
  CpuModel m;
  m.name = "RISC-V U74-MC(hifiveu)";
  m.isa = "riscv64";
  m.clock_ghz = 1.2;    // Table 2
  m.vector_length = 1;  // no V extension (Table 2 prints "NA")
  m.fpu_per_core = 1;   // Table 2
  m.fma = false;        // FMA only for the 32-bit FP ISA (Table 2 footnote)
  m.cores = 4;          // Table 2
  // Dual-issue in-order pipe with a single FP unit and no FP64 FMA; long
  // software-pow chains retire ~0.28 flop/cycle. With the clock ratio this
  // reproduces the paper's ~5x gap to A64FX per core:
  //   (1.8 * 0.9) / (1.2 * 0.28) = 4.8x  (paper: "around five times").
  m.scalar_fp_ipc = 0.28;
  // FU740: single-channel DDR4 with a modest controller.
  m.mem_bw_gib = 2.2;
  m.autovec_effective = false;  // nothing to vectorise with
  m.simd_kernel_speedup = 1.0;  // no V extension: scalar kernels only
  return m;
}

CpuModel jh7110() {
  CpuModel m = u74_mc();
  // The VisionFive2's JH7110 uses the same SiFive U74 cores at 1.5 GHz with
  // LPDDR4; the paper's Fig. 7-9 runs are on this board.
  m.name = "RISC-V JH7110(visionfive2)";
  m.clock_ghz = 1.5;
  m.mem_bw_gib = 2.8;  // LPDDR4-2800, single channel, effective
  return m;
}

CpuModel sg2042() {
  CpuModel m;
  m.name = "RISC-V SG2042(milk-v pioneer)";
  m.isa = "riscv64";
  // SOPHON SG2042 (Milk-V Pioneer): 64 T-Head C920 cores at 2.0 GHz — the
  // part the paper's conclusion anticipates (§8). The C920 is an
  // out-of-order core with RVV 0.7.1 (128-bit), which upstream GCC could
  // not target at the paper's time, so kernels stay scalar.
  m.clock_ghz = 2.0;
  m.vector_length = 2;  // RVV 0.7.1, 128-bit (toolchain-inaccessible)
  m.fpu_per_core = 2;
  m.fma = true;  // full FP64 FMA
  m.cores = 64;
  m.scalar_fp_ipc = 0.8;  // OoO C920, ~3x the U74's chain throughput
  m.mem_bw_gib = 30.0;    // 4ch DDR4-3200, effective (early firmware)
  m.autovec_effective = false;
  m.simd_kernel_speedup = 1.0;
  return m;
}

std::vector<CpuModel> table2_cpus() {
  return {a64fx(), epyc_7543(), xeon_gold_6140(), u74_mc()};
}

std::optional<CpuModel> find_cpu(std::string_view name) {
  auto all = table2_cpus();
  all.push_back(jh7110());
  all.push_back(sg2042());
  const auto it = std::find_if(all.begin(), all.end(), [&](const CpuModel& m) {
    return m.name == name;
  });
  if (it == all.end()) {
    return std::nullopt;
  }
  return *it;
}

RuntimeOverheadModel runtime_overheads(const CpuModel& cpu) {
  // Host-measured constants at the U74 baseline clock (1.2 GHz): a post()
  // through the work-stealing queue costs ~1.5 us, one ucontext switch pair
  // ~0.4 us, a hardware timer read ~25 cycles. Overheads scale with the
  // inverse clock ratio: they are instruction-bound, not memory-bound.
  const double scale = 1.2 / cpu.clock_ghz;
  RuntimeOverheadModel o;
  o.task_spawn_seconds = 1.5e-6 * scale;
  o.context_switch_seconds = 0.4e-6 * scale;
  o.timer_read_seconds = 25.0 / (cpu.clock_ghz * 1e9);
  return o;
}

}  // namespace rveval::arch
