#pragma once

/// \file cpu_model.hpp
/// Architecture models for the four CPUs of the paper's Table 2.
///
/// The build host has no RISC-V (or A64FX) silicon, so every cross-
/// architecture figure is produced by pricing a *real, captured* task trace
/// on these models (DESIGN.md §1). A model is deliberately simple and fully
/// documented: clock, vector length, FPU count, FMA capability and core
/// count come verbatim from the paper's Table 2; sustained scalar IPC and
/// memory bandwidth come from vendor sheets / microarchitecture references
/// and are the *inputs* from which the paper's observed ratios emerge.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rveval::arch {

/// Static description of one CPU (one row of the paper's Table 2, plus the
/// microarchitectural fields the simulator needs).
struct CpuModel {
  std::string name;        ///< Table 2 row label
  std::string isa;         ///< "x86-64", "aarch64", "riscv64"
  double clock_ghz = 0.0;  ///< Table 2 "Clock speed"
  /// Table 2 "Vector length" in doubles; 1 = no vector unit (printed "NA").
  unsigned vector_length = 1;
  unsigned fpu_per_core = 1;  ///< Table 2 "FPU units per core"
  bool fma = false;           ///< Table 2 "FMA" (FP64)
  unsigned cores = 1;         ///< Table 2 "Cores"

  /// Sustained double-precision scalar FLOP/cycle/core on latency-bound,
  /// software-pow-dominated code (the Maclaurin kernel): an out-of-order
  /// x86 core retires several dependent-chain flops per cycle, the in-order
  /// A64FX fewer, and the single-issue-FPU U74-MC (no FP64 FMA) fewer
  /// still. These are the documented model inputs behind the paper's
  /// "RISC-V is ~5x slower than A64FX per core" observation.
  double scalar_fp_ipc = 1.0;

  /// Effective node memory bandwidth in GiB/s (STREAM-class, not peak).
  double mem_bw_gib = 1.0;

  /// Whether the compiler can auto-vectorise simple loops on this CPU at
  /// all. Per the paper (§6.1), auto-vectorisation had no significant
  /// effect on the Maclaurin benchmark anywhere (its pow-chain does not
  /// vectorise), and the U74-MC has no vector unit at all.
  bool autovec_effective = false;

  /// Realised speed-up of *explicitly SIMD-typed* compute kernels (the
  /// Octo-Tiger Kokkos kernels use explicit SIMD types — the authors' SVE
  /// work, paper refs [8]/[27]) over scalar code on this CPU. Well below
  /// the ideal vector width for stencil/FMM kernels; 1.0 where no vector
  /// unit exists. This factor is what separates the paper's ~5x
  /// (scalar Maclaurin) from its ~7x (Octo-Tiger) RISC-V-to-A64FX gap.
  double simd_kernel_speedup = 1.0;

  /// Peak performance in GFLOP/s at \p ncores when a kernel uses \p width
  /// double lanes per op (paper Eq. 2 with the vector-length factor made an
  /// explicit input): 2 x clock x min(width, vector_length) x #FPU x
  /// #cores. Widths are clamped to the hardware vector length — a kernel
  /// cannot use lanes the CPU does not have, which is exactly the U74-MC
  /// story (every width collapses to 1). rveval::simd ABIs map onto widths
  /// via requested_width(); core/simd/pricing.hpp builds the per-ISA rows
  /// of the table2 bench from this.
  [[nodiscard]] double peak_gflops_at_width(unsigned width,
                                            unsigned ncores) const {
    const unsigned w = width < vector_length ? width : vector_length;
    return 2.0 * clock_ghz * static_cast<double>(w < 1 ? 1 : w) *
           static_cast<double>(fpu_per_core) * static_cast<double>(ncores);
  }

  /// Peak performance in GFLOP/s at \p ncores (paper Eq. 2):
  ///   2 x clock x vector length x #FPU x #cores.
  /// The factor 2 is the FMA factor; the paper applies it to every row of
  /// Table 2 — including the U74-MC, whose 9.6 GFLOP/s entry implies it,
  /// even though its FP64 ISA lacks FMA (the table's own footnote). We
  /// match the paper's printed numbers and keep `fma` as the descriptive
  /// field the simulator's IPC constants already account for.
  [[nodiscard]] double peak_gflops(unsigned ncores) const {
    return peak_gflops_at_width(vector_length, ncores);
  }

  /// Peak at the full core count (Table 2's last column).
  [[nodiscard]] double peak_gflops() const { return peak_gflops(cores); }

  /// Sustained per-core FLOP rate (FLOP/s) for scalar dependency-bound code.
  [[nodiscard]] double scalar_flops_per_core() const {
    return clock_ghz * 1e9 * scalar_fp_ipc;
  }
};

/// Runtime overhead model: how expensive the AMT machinery itself is on a
/// given CPU (scales inversely with clock; constants measured on the host
/// and documented in cpu_models.cpp).
struct RuntimeOverheadModel {
  double task_spawn_seconds = 0.0;      ///< post() + queue + fiber setup
  double context_switch_seconds = 0.0;  ///< one ucontext swap pair
  double timer_read_seconds = 0.0;      ///< RDTIME-class read
};

/// Canned models.
CpuModel a64fx();            ///< Fugaku node CPU
CpuModel epyc_7543();        ///< AMD Milan
CpuModel xeon_gold_6140();   ///< Intel Skylake-SP
CpuModel u74_mc();           ///< SiFive HiFive Unmatched (FU740)
CpuModel jh7110();           ///< StarFive VisionFive2 (same U74 cores)
/// SOPHON SG2042 (Milk-V Pioneer): the 64-core RISC-V desktop part the
/// paper's conclusion anticipates for larger scaling runs (§8).
CpuModel sg2042();

/// All four Table 2 CPUs, in the paper's row order.
std::vector<CpuModel> table2_cpus();

/// Look up a model by Table 2 name; empty if unknown.
std::optional<CpuModel> find_cpu(std::string_view name);

/// Runtime overheads on a given CPU (constants scale with 1/clock relative
/// to the 1.2 GHz U74 baseline).
RuntimeOverheadModel runtime_overheads(const CpuModel& cpu);

}  // namespace rveval::arch
