#pragma once

/// \file network_model.hpp
/// Interconnect models for the distributed experiments (Fig. 8).
///
/// The paper's cluster links two VisionFive2 boards with onboard GbE and
/// compares HPX's TCP and MPI parcelports; the Fugaku comparison nodes use
/// Tofu-D. A network model prices one message as latency + bytes/bandwidth,
/// with the MPI model adding its protocol costs (eager copy overhead for
/// small messages, an extra RTS/CTS round trip above the eager limit) —
/// the documented hypothesis (DESIGN.md §4) for the paper's observation
/// that the TCP runs scaled better (1.85x) than MPI (1.55x).

#include <cstddef>
#include <string>

namespace rveval::arch {

struct NetworkModel {
  std::string name;
  double latency_seconds = 0.0;    ///< per-message one-way latency
  double bandwidth_bytes = 1.0;    ///< sustained bytes/second
  /// MPI only: messages above this size pay a rendezvous round trip.
  std::size_t eager_limit_bytes = 0;
  /// MPI only: extra latency of one RTS/CTS round trip.
  double rendezvous_rtt_seconds = 0.0;

  /// Time for one message of \p bytes.
  [[nodiscard]] double message_seconds(std::size_t bytes) const {
    double t = latency_seconds + static_cast<double>(bytes) / bandwidth_bytes;
    if (eager_limit_bytes != 0 && bytes > eager_limit_bytes) {
      t += rendezvous_rtt_seconds;
    }
    return t;
  }
};

/// HPX TCP parcelport over the boards' GbE link: ~117 MB/s sustained,
/// ~120 us end-to-end per parcel (kernel TCP stack on a 1.5 GHz in-order
/// core; interrupt-driven NIC).
inline NetworkModel gbe_tcp() {
  NetworkModel n;
  n.name = "GbE/TCP";
  n.latency_seconds = 120e-6;
  n.bandwidth_bytes = 117.0e6;
  return n;
}

/// OpenMPI 4.1 over the same GbE link: the TCP BTL adds matching/progress
/// overhead (~180 us per message on this class of core) and a rendezvous
/// round trip above the 64 KiB eager limit.
inline NetworkModel gbe_mpi() {
  NetworkModel n;
  n.name = "GbE/MPI";
  n.latency_seconds = 180e-6;
  n.bandwidth_bytes = 110.0e6;
  n.eager_limit_bytes = 64 * 1024;
  n.rendezvous_rtt_seconds = 2 * 180e-6;
  return n;
}

/// Fugaku's Tofu-D interconnect (for the A64FX comparison series).
inline NetworkModel tofu_d() {
  NetworkModel n;
  n.name = "Tofu-D";
  n.latency_seconds = 2e-6;
  n.bandwidth_bytes = 6.8e9;
  return n;
}

}  // namespace rveval::arch
