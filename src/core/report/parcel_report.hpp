#pragma once

/// \file parcel_report.hpp
/// Shared parcel-latency reporting: the "modelled per-message cost" table
/// that bench/ablation_parcelport.cpp and bench/ablation_resilience.cpp
/// both print. One implementation keeps the two ablations' numbers (and
/// headers) consistent.

#include <cstddef>
#include <string>
#include <vector>

#include "core/arch/network_model.hpp"
#include "core/report/table.hpp"

namespace rveval::report {

/// Human-readable message size: "64 B", "64 KiB", "1 MiB".
[[nodiscard]] std::string format_message_size(std::size_t bytes);

/// Build the per-message cost table: one row per network model, one column
/// per message size, entries in microseconds from
/// NetworkModel::message_seconds.
[[nodiscard]] Table network_cost_table(
    const std::string& title, const std::vector<arch::NetworkModel>& nets,
    const std::vector<std::size_t>& sizes);

}  // namespace rveval::report
