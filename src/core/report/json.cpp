#include "core/report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rveval::report::json {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("json: " + what);
}

void dump_number(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out += "null";  // JSON has no NaN/Inf; null is the conventional stand-in
    return;
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 9.0e15 &&
      v > -9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.15g", v);
  }
  out += buf;
}

void dump_value(std::string& out, const Value& v, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent >= 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
  }
}

void dump_value(std::string& out, const Value& v, int indent, int depth) {
  switch (v.kind()) {
    case Value::Kind::null:
      out += "null";
      break;
    case Value::Kind::boolean:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Kind::number:
      dump_number(out, v.as_number());
      break;
    case Value::Kind::string:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Value::Kind::array: {
      if (v.items().empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& item : v.items()) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        dump_value(out, item, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Value::Kind::object: {
      if (v.members().empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, item] : v.members()) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        out += '"';
        out += escape(key);
        out += indent >= 0 ? "\": " : "\":";
        dump_value(out, item, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      error("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void error(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      error("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      error(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Value(string());
      case 't':
        if (consume_literal("true")) {
          return Value(true);
        }
        error("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Value(false);
        }
        error("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Value();
        }
        error("invalid literal");
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.set(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        error("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        error("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = hex4();
          // A high surrogate must combine with the following \uXXXX low
          // surrogate into one supplementary-plane code point; encoding
          // the halves separately would emit CESU-8, which strict UTF-8
          // consumers reject. An unpaired half stays as-is (raw 3-byte
          // encoding) so lenient round-trips still work.
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            const std::size_t rewind = pos_;
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              pos_ = rewind;  // not a low surrogate: reparse it on its own
            }
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          error("invalid escape");
      }
    }
  }

  /// Consume exactly four hex digits of a \uXXXX escape (the "\u" is
  /// already consumed) and return the code unit.
  unsigned hex4() {
    if (pos_ + 4 > text_.size()) {
      error("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        error("invalid \\u escape");
      }
    }
    return code;
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      error("expected a value");
    }
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("invalid number '" + tok + "' at offset " + std::to_string(start));
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::boolean) {
    fail("not a boolean");
  }
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::number) {
    fail("not a number");
  }
  return num_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::string) {
    fail("not a string");
  }
  return str_;
}

Value& Value::push(Value v) {
  if (kind_ == Kind::null) {
    kind_ = Kind::array;
  }
  if (kind_ != Kind::array) {
    fail("push on a non-array");
  }
  arr_.push_back(std::move(v));
  return *this;
}

std::size_t Value::size() const {
  if (kind_ == Kind::array) {
    return arr_.size();
  }
  if (kind_ == Kind::object) {
    return obj_.size();
  }
  fail("size of a non-container");
}

const Value& Value::at(std::size_t i) const {
  if (kind_ != Kind::array) {
    fail("at() on a non-array");
  }
  if (i >= arr_.size()) {
    fail("array index out of range");
  }
  return arr_[i];
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::array) {
    fail("items() on a non-array");
  }
  return arr_;
}

Value& Value::set(std::string key, Value v) {
  if (kind_ == Kind::null) {
    kind_ = Kind::object;
  }
  if (kind_ != Kind::object) {
    fail("set on a non-object");
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::object) {
    return nullptr;
  }
  const Value* found = nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) {
      found = &v;  // last duplicate wins
    }
  }
  return found;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::object) {
    fail("members() on a non-object");
  }
  return obj_;
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(out, *this, indent, 0);
  return out;
}

Value parse(std::string_view text) { return Parser(text).document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace rveval::report::json
