#pragma once

/// \file table.hpp
/// Aligned-table and CSV emitters shared by every bench binary, so each
/// reproduced figure/table prints the same rows/series the paper reports.

#include <iosfwd>
#include <string>
#include <vector>

namespace rveval::report {

/// A simple column-aligned text table with an optional CSV dump.
class Table {
 public:
  explicit Table(std::string title);

  /// Set the header row (clears nothing else).
  Table& headers(std::vector<std::string> names);

  /// Append one row of preformatted cells.
  Table& row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 3);

  /// Render to a stream as an aligned table with the title on top.
  void print(std::ostream& os) const;

  /// Render as CSV (header row first).
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Raw cells, for structured re-emission (see bench_report.hpp).
  [[nodiscard]] const std::vector<std::string>& header_cells() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_cells()
      const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rveval::report
