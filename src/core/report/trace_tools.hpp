#pragma once

/// \file trace_tools.hpp
/// Chrome-trace post-processing: parse, lint, clock-skew estimation and
/// multi-trace merge.
///
/// The apex tracer exports one Chrome-trace JSON per process with one pid
/// per locality. These tools close the loop:
///   - lint() is the CI gate over the fig8 smoke trace — span balance,
///     flow s/f pairing, id resolution, a minimum pid count;
///   - estimate_offsets()/merge() combine traces recorded by *separate*
///     processes (separate clocks) into one Perfetto file, estimating each
///     clock's offset from parcel flow pairs: for traces a and b, the
///     minimum observed send→recv delta in each direction brackets the true
///     one-way latency, and (min_ab − min_ba)/2 is b's offset relative to a
///     (the classic NTP symmetric-latency argument; NetworkModel gives the
///     latency floor the minima converge to).
///
/// In-process runs (our fig8) share one clock, so offsets come out ~0 and
/// merge degenerates to concatenation — the estimator is exercised with
/// synthetic skews in tests.

#include <cstdint>
#include <string>
#include <vector>

#include "core/report/json.hpp"

namespace rveval::report::tracetools {

/// One Chrome trace event, with the fields the tools inspect extracted and
/// the full "args" object retained for faithful re-emission.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'i';
  double ts_us = 0.0;  ///< absent for 'M' metadata events (kept as 0)
  bool has_ts = false;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint64_t flow_id = 0;  ///< "id" field of 's'/'f' events
  std::string bp;             ///< flow binding point ("e" on our 'f')
  std::string scope;          ///< "s" field of instants
  /// Extracted from args when present (0 otherwise).
  std::uint64_t guid = 0;
  std::uint64_t parent = 0;
  json::Value args = json::Value::object();
};

struct ParsedTrace {
  std::vector<TraceEvent> events;
};

/// Parse a Chrome trace document ({"traceEvents":[...]} or a bare array).
/// Throws std::runtime_error on malformed JSON or missing required fields.
[[nodiscard]] ParsedTrace parse_chrome(std::string_view text);

/// Structural lint. Checks, returning every violation (empty = clean):
///   - duration spans balance: per guid, 'B' and 'E' alternate in time
///     order and close (no dangling 'B', no orphan 'E');
///   - flows pair: every 's' has a matching 'f' with the same id and
///     f.ts >= s.ts, and every 'f' has its 's';
///   - ids resolve: every nonzero parent names a guid that opened a span;
///   - at least \p min_pids distinct pids appear.
[[nodiscard]] std::vector<std::string> lint(const ParsedTrace& trace,
                                            std::size_t min_pids = 1);

/// Per-trace clock offsets in microseconds (index-aligned with \p traces;
/// traces[0] anchors at 0). Estimated pairwise from cross-trace flow pairs
/// (same flow id, 's' in one trace, 'f' in another) and propagated
/// breadth-first; a trace unreachable through any flow keeps offset 0.
[[nodiscard]] std::vector<double> estimate_offsets(
    const std::vector<ParsedTrace>& traces);

/// Merge traces into one timeline: subtract each trace's estimated offset
/// from its timestamps, concatenate, sort by timestamp. Pids are locality
/// ids and share one namespace across traces (each rank records its own
/// localities), so they are kept as-is.
[[nodiscard]] ParsedTrace merge(const std::vector<ParsedTrace>& traces);

/// Serialize back to Chrome trace JSON (with process_name metadata for
/// every pid), loadable in Perfetto.
[[nodiscard]] std::string to_chrome_json(const ParsedTrace& trace);

// ------------------------------------------------------------- flamegraph

/// One collapsed-stack aggregate: a semicolon-joined frame path (rooted at
/// "loc<pid>") and the total *self* time attributed to it, microseconds.
struct FoldedStack {
  std::string stack;
  std::uint64_t self_us = 0;
};

/// Fold the duration spans of a trace into collapsed stacks, the input
/// format of Brendan Gregg's flamegraph.pl / speedscope / inferno:
///   - events are replayed per (pid, tid) in timestamp order; 'B' pushes a
///     frame, 'E' pops it (unbalanced 'E's are ignored — lint() reports
///     them);
///   - *self* time semantics: the interval between two adjacent events is
///     attributed to the frame path on top of the stack during it, so a
///     parent's weight excludes its children and the flamegraph widths sum
///     correctly at every depth;
///   - each path is rooted at "loc<pid>" (one root per locality/process in
///     the merged fig8 trace);
///   - sub-microsecond remainders round half-up; zero-weight paths with no
///     events inside are dropped.
/// Returns the aggregated paths sorted by stack string.
[[nodiscard]] std::vector<FoldedStack> fold_stacks(const ParsedTrace& trace);

/// Serialize folded stacks to collapsed-stack text: one "path weight" line
/// per aggregate, sorted — diff-stable for golden tests.
[[nodiscard]] std::string to_collapsed(const std::vector<FoldedStack>& folds);

}  // namespace rveval::report::tracetools
