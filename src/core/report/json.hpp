#pragma once

/// \file json.hpp
/// Minimal JSON value, emitter and parser for machine-readable bench
/// reports (bench_report.hpp) and for validating emitted Chrome traces in
/// tests. Self-contained by design: the container ships no JSON library
/// and the repo adds no dependencies.
///
/// Deliberate simplifications (fine for our own reports and traces):
///   - objects preserve insertion order and allow duplicate keys on build
///     (parse keeps the last duplicate when queried via find);
///   - numbers are doubles, printed without a fraction part when integral;
///   - \uXXXX surrogate pairs combine into one supplementary-plane code
///     point on parse (proper 4-byte UTF-8); an unpaired surrogate half
///     passes through as its raw 3-byte encoding rather than erroring.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rveval::report::json {

/// A JSON value: null, bool, number, string, array or object.
class Value {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  Value() = default;  // null
  Value(bool b) : kind_(Kind::boolean), bool_(b) {}
  Value(double v) : kind_(Kind::number), num_(v) {}
  Value(int v) : Value(static_cast<double>(v)) {}
  Value(long v) : Value(static_cast<double>(v)) {}
  Value(long long v) : Value(static_cast<double>(v)) {}
  Value(unsigned v) : Value(static_cast<double>(v)) {}
  Value(unsigned long v) : Value(static_cast<double>(v)) {}
  Value(unsigned long long v) : Value(static_cast<double>(v)) {}
  Value(std::string s) : kind_(Kind::string), str_(std::move(s)) {}
  Value(std::string_view s) : Value(std::string(s)) {}
  Value(const char* s) : Value(std::string(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::array;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::object;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::null; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::array; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array ops. push throws when not an array (null upgrades to array).
  Value& push(Value v);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Value& at(std::size_t i) const;
  [[nodiscard]] const std::vector<Value>& items() const;

  /// Object ops. set throws when not an object (null upgrades to object);
  /// it appends — callers manage key uniqueness.
  Value& set(std::string key, Value v);
  /// Last value for \p key, or nullptr.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// Serialize. indent < 0: compact one-line; otherwise pretty-printed
  /// with \p indent spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Parse a complete JSON document (trailing non-whitespace is an error).
/// Throws std::runtime_error with a byte offset on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Escape \p s as the contents of a JSON string literal (no quotes).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace rveval::report::json
