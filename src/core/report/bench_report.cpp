#include "core/report/bench_report.hpp"

#include <array>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>

namespace rveval::report {

namespace {

/// Emit numeric-looking cells as numbers so downstream tooling needn't
/// reparse strings ("12", "3.5e-2" → numbers; "tcp", "8x8x8" → strings).
json::Value cell_value(const std::string& cell) {
  if (cell.empty()) {
    return json::Value(cell);
  }
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != nullptr && *end == '\0') {
    return json::Value(v);
  }
  return json::Value(cell);
}

}  // namespace

json::Value to_json(const Table& table) {
  json::Value t = json::Value::object();
  t.set("title", json::Value(table.title()));
  json::Value headers = json::Value::array();
  for (const std::string& h : table.header_cells()) {
    headers.push(json::Value(h));
  }
  t.set("headers", std::move(headers));
  json::Value rows = json::Value::array();
  for (const auto& r : table.row_cells()) {
    json::Value row = json::Value::array();
    for (const std::string& cell : r) {
      row.push(cell_value(cell));
    }
    rows.push(std::move(row));
  }
  t.set("rows", std::move(rows));
  return t;
}

BenchReport::BenchReport(std::string bench_id, std::string title)
    : bench_id_(std::move(bench_id)), title_(std::move(title)) {}

BenchReport& BenchReport::metric(const std::string& name, double value) {
  metrics_.set(name, json::Value(value));
  return *this;
}

BenchReport& BenchReport::metric(const std::string& name,
                                 const std::string& value) {
  metrics_.set(name, json::Value(value));
  return *this;
}

BenchReport& BenchReport::add_table(const Table& table) {
  tables_.push(to_json(table));
  return *this;
}

BenchReport& BenchReport::note(std::string text) {
  notes_.push(json::Value(std::move(text)));
  return *this;
}

std::string BenchReport::dump() const {
  json::Value doc = json::Value::object();
  doc.set("schema", json::Value("rveval-bench-v1"));
  doc.set("bench", json::Value(bench_id_));
  doc.set("title", json::Value(title_));
  doc.set("metrics", metrics_);
  doc.set("tables", tables_);
  doc.set("notes", notes_);
  return doc.dump(2) + "\n";
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << dump();
  return static_cast<bool>(out);
}

std::vector<std::string> validate_bench_v1(const json::Value& doc) {
  std::vector<std::string> problems;
  auto bad = [&problems](std::string what) {
    problems.push_back(std::move(what));
  };

  if (!doc.is_object()) {
    bad("document is not a JSON object");
    return problems;
  }
  auto require_string = [&](const char* key) -> const json::Value* {
    const json::Value* v = doc.find(key);
    if (v == nullptr) {
      bad(std::string("missing required key \"") + key + "\"");
      return nullptr;
    }
    if (v->kind() != json::Value::Kind::string) {
      bad(std::string("\"") + key + "\" is not a string");
      return nullptr;
    }
    return v;
  };
  if (const json::Value* schema = require_string("schema")) {
    if (schema->as_string() != "rveval-bench-v1") {
      bad("schema is \"" + schema->as_string() +
          "\", expected \"rveval-bench-v1\"");
    }
  }
  if (const json::Value* bench = require_string("bench")) {
    if (bench->as_string().empty()) {
      bad("\"bench\" is empty");
    }
  }
  if (const json::Value* title = require_string("title")) {
    if (title->as_string().empty()) {
      bad("\"title\" is empty");
    }
  }

  if (const json::Value* metrics = doc.find("metrics")) {
    if (!metrics->is_object()) {
      bad("\"metrics\" is not an object");
    } else {
      for (const auto& [name, value] : metrics->members()) {
        if (value.kind() != json::Value::Kind::number &&
            value.kind() != json::Value::Kind::string) {
          bad("metric \"" + name + "\" is neither a number nor a string");
        }
      }
      // Percentile families: metrics named <stem>_p{50,90,99,999}_seconds
      // must be nondecreasing in q — a p50 above its own p99 means the
      // producer mixed up quantile arguments or merged the wrong buckets.
      // Reports without percentile metrics are untouched.
      static constexpr const char* kQuantiles[] = {"p50", "p90", "p99",
                                                   "p999"};
      std::map<std::string, std::array<std::optional<double>, 4>> families;
      for (const auto& [name, value] : metrics->members()) {
        if (value.kind() != json::Value::Kind::number) {
          continue;
        }
        for (std::size_t q = 0; q < 4; ++q) {
          const std::string suffix =
              std::string("_") + kQuantiles[q] + "_seconds";
          if (name.size() > suffix.size() &&
              name.compare(name.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
            families[name.substr(0, name.size() - suffix.size())][q] =
                value.as_number();
          }
        }
      }
      for (const auto& [stem, qs] : families) {
        for (std::size_t lo = 0; lo < 4; ++lo) {
          for (std::size_t hi = lo + 1; hi < 4; ++hi) {
            if (qs[lo].has_value() && qs[hi].has_value() &&
                *qs[lo] > *qs[hi]) {
              bad("percentile metrics for \"" + stem + "\" are not ordered: " +
                  kQuantiles[lo] + " > " + kQuantiles[hi]);
            }
          }
        }
      }
    }
  } else {
    bad("missing required key \"metrics\"");
  }

  if (const json::Value* tables = doc.find("tables")) {
    if (!tables->is_array()) {
      bad("\"tables\" is not an array");
    } else {
      for (std::size_t i = 0; i < tables->size(); ++i) {
        const json::Value& t = tables->at(i);
        const std::string where = "tables[" + std::to_string(i) + "]";
        if (!t.is_object()) {
          bad(where + " is not an object");
          continue;
        }
        const json::Value* title = t.find("title");
        if (title == nullptr || title->kind() != json::Value::Kind::string) {
          bad(where + " has no string \"title\"");
        }
        const json::Value* headers = t.find("headers");
        const json::Value* rows = t.find("rows");
        if (headers == nullptr || !headers->is_array()) {
          bad(where + " has no array \"headers\"");
        }
        if (rows == nullptr || !rows->is_array()) {
          bad(where + " has no array \"rows\"");
        }
        if (headers != nullptr && headers->is_array() && rows != nullptr &&
            rows->is_array()) {
          for (std::size_t r = 0; r < rows->size(); ++r) {
            if (!rows->at(r).is_array() ||
                rows->at(r).size() != headers->size()) {
              bad(where + ".rows[" + std::to_string(r) + "] width " +
                  std::to_string(rows->at(r).is_array() ? rows->at(r).size()
                                                        : 0) +
                  " != headers width " + std::to_string(headers->size()));
            }
          }
        }
      }
    }
  } else {
    bad("missing required key \"tables\"");
  }

  if (const json::Value* notes = doc.find("notes")) {
    if (!notes->is_array()) {
      bad("\"notes\" is not an array");
    } else {
      for (std::size_t i = 0; i < notes->size(); ++i) {
        if (notes->at(i).kind() != json::Value::Kind::string) {
          bad("notes[" + std::to_string(i) + "] is not a string");
        }
      }
    }
  } else {
    bad("missing required key \"notes\"");
  }
  return problems;
}

}  // namespace rveval::report
