#include "core/report/bench_report.hpp"

#include <cstdlib>
#include <fstream>

namespace rveval::report {

namespace {

/// Emit numeric-looking cells as numbers so downstream tooling needn't
/// reparse strings ("12", "3.5e-2" → numbers; "tcp", "8x8x8" → strings).
json::Value cell_value(const std::string& cell) {
  if (cell.empty()) {
    return json::Value(cell);
  }
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != nullptr && *end == '\0') {
    return json::Value(v);
  }
  return json::Value(cell);
}

}  // namespace

json::Value to_json(const Table& table) {
  json::Value t = json::Value::object();
  t.set("title", json::Value(table.title()));
  json::Value headers = json::Value::array();
  for (const std::string& h : table.header_cells()) {
    headers.push(json::Value(h));
  }
  t.set("headers", std::move(headers));
  json::Value rows = json::Value::array();
  for (const auto& r : table.row_cells()) {
    json::Value row = json::Value::array();
    for (const std::string& cell : r) {
      row.push(cell_value(cell));
    }
    rows.push(std::move(row));
  }
  t.set("rows", std::move(rows));
  return t;
}

BenchReport::BenchReport(std::string bench_id, std::string title)
    : bench_id_(std::move(bench_id)), title_(std::move(title)) {}

BenchReport& BenchReport::metric(const std::string& name, double value) {
  metrics_.set(name, json::Value(value));
  return *this;
}

BenchReport& BenchReport::metric(const std::string& name,
                                 const std::string& value) {
  metrics_.set(name, json::Value(value));
  return *this;
}

BenchReport& BenchReport::add_table(const Table& table) {
  tables_.push(to_json(table));
  return *this;
}

BenchReport& BenchReport::note(std::string text) {
  notes_.push(json::Value(std::move(text)));
  return *this;
}

std::string BenchReport::dump() const {
  json::Value doc = json::Value::object();
  doc.set("schema", json::Value("rveval-bench-v1"));
  doc.set("bench", json::Value(bench_id_));
  doc.set("title", json::Value(title_));
  doc.set("metrics", metrics_);
  doc.set("tables", tables_);
  doc.set("notes", notes_);
  return doc.dump(2) + "\n";
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << dump();
  return static_cast<bool>(out);
}

}  // namespace rveval::report
