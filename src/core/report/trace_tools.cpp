#include "core/report/trace_tools.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rveval::report::tracetools {

namespace {

double number_or(const json::Value* v, double fallback) {
  return (v != nullptr && v->kind() == json::Value::Kind::number)
             ? v->as_number()
             : fallback;
}

std::string string_or(const json::Value* v, std::string fallback) {
  return (v != nullptr && v->kind() == json::Value::Kind::string)
             ? v->as_string()
             : std::move(fallback);
}

TraceEvent parse_event(const json::Value& obj) {
  if (!obj.is_object()) {
    throw std::runtime_error("trace: event is not an object");
  }
  TraceEvent ev;
  ev.name = string_or(obj.find("name"), "");
  ev.cat = string_or(obj.find("cat"), "");
  const std::string ph = string_or(obj.find("ph"), "");
  if (ph.size() != 1) {
    throw std::runtime_error("trace: event missing one-char \"ph\"");
  }
  ev.ph = ph[0];
  if (const json::Value* ts = obj.find("ts");
      ts != nullptr && ts->kind() == json::Value::Kind::number) {
    ev.ts_us = ts->as_number();
    ev.has_ts = true;
  } else if (ev.ph != 'M') {
    throw std::runtime_error("trace: non-metadata event missing \"ts\"");
  }
  ev.pid = static_cast<std::uint32_t>(number_or(obj.find("pid"), 0.0));
  ev.tid = static_cast<std::uint32_t>(number_or(obj.find("tid"), 0.0));
  ev.flow_id = static_cast<std::uint64_t>(number_or(obj.find("id"), 0.0));
  ev.bp = string_or(obj.find("bp"), "");
  ev.scope = string_or(obj.find("s"), "");
  if (const json::Value* args = obj.find("args");
      args != nullptr && args->is_object()) {
    ev.args = *args;
    ev.guid = static_cast<std::uint64_t>(number_or(args->find("guid"), 0.0));
    ev.parent =
        static_cast<std::uint64_t>(number_or(args->find("parent"), 0.0));
  }
  return ev;
}

}  // namespace

ParsedTrace parse_chrome(std::string_view text) {
  const json::Value doc = json::parse(text);
  const json::Value* array = nullptr;
  if (doc.is_array()) {
    array = &doc;
  } else if (doc.is_object()) {
    array = doc.find("traceEvents");
  }
  if (array == nullptr || !array->is_array()) {
    throw std::runtime_error("trace: no traceEvents array");
  }
  ParsedTrace out;
  out.events.reserve(array->size());
  for (const json::Value& item : array->items()) {
    out.events.push_back(parse_event(item));
  }
  return out;
}

std::vector<std::string> lint(const ParsedTrace& trace,
                              std::size_t min_pids) {
  std::vector<std::string> errors;
  const auto fail = [&errors](std::string msg) {
    if (errors.size() < 50) {  // enough to diagnose, bounded output
      errors.push_back(std::move(msg));
    }
  };

  // Pass 1: span balance per guid, collected guid universe, pid set, flows.
  struct SpanState {
    int open = 0;  // 0 = closed, 1 = inside a B..E
    double last_ts = 0.0;
  };
  std::map<std::uint64_t, SpanState> spans;
  std::set<std::uint64_t> guids_opened;
  std::set<std::uint32_t> pids;
  std::map<std::uint64_t, std::vector<const TraceEvent*>> flow_s;
  std::map<std::uint64_t, std::vector<const TraceEvent*>> flow_f;

  // Events may be interleaved across threads; sort a copy of pointers by ts
  // so per-guid alternation is checked in timeline order.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(trace.events.size());
  for (const TraceEvent& ev : trace.events) {
    ordered.push_back(&ev);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts_us < b->ts_us;
                   });

  for (const TraceEvent* ev : ordered) {
    if (ev->ph != 'M') {
      pids.insert(ev->pid);
    }
    switch (ev->ph) {
      case 'B': {
        SpanState& st = spans[ev->guid];
        if (ev->guid != 0 && st.open != 0) {
          fail("span guid " + std::to_string(ev->guid) +
               ": 'B' while already open (ts=" + std::to_string(ev->ts_us) +
               ")");
        }
        st.open = 1;
        st.last_ts = ev->ts_us;
        guids_opened.insert(ev->guid);
        break;
      }
      case 'E': {
        auto it = spans.find(ev->guid);
        if (it == spans.end() || it->second.open == 0) {
          fail("span guid " + std::to_string(ev->guid) +
               ": orphan 'E' (ts=" + std::to_string(ev->ts_us) + ")");
        } else {
          if (ev->ts_us + 1e-9 < it->second.last_ts) {
            fail("span guid " + std::to_string(ev->guid) +
                 ": 'E' before its 'B'");
          }
          it->second.open = 0;
        }
        break;
      }
      case 's':
        flow_s[ev->flow_id].push_back(ev);
        break;
      case 'f':
        flow_f[ev->flow_id].push_back(ev);
        break;
      default:
        break;
    }
  }
  for (const auto& [guid, st] : spans) {
    if (st.open != 0) {
      fail("span guid " + std::to_string(guid) + ": dangling 'B' (no 'E')");
    }
  }

  // Flow pairing: every 's' needs an 'f' with the same id at ts >= s.ts,
  // and vice versa.
  for (const auto& [id, sends] : flow_s) {
    const auto it = flow_f.find(id);
    if (it == flow_f.end()) {
      fail("flow " + std::to_string(id) + ": 's' with no matching 'f'");
      continue;
    }
    for (const TraceEvent* s : sends) {
      const bool ok = std::any_of(
          it->second.begin(), it->second.end(),
          [s](const TraceEvent* f) { return f->ts_us + 1e-6 >= s->ts_us; });
      if (!ok) {
        fail("flow " + std::to_string(id) + ": 'f' precedes its 's'");
      }
    }
  }
  for (const auto& [id, recvs] : flow_f) {
    if (flow_s.find(id) == flow_s.end()) {
      fail("flow " + std::to_string(id) + ": 'f' with no matching 's'");
    }
    (void)recvs;
  }

  // Parent resolution: every nonzero parent must name a span that opened.
  for (const TraceEvent& ev : trace.events) {
    if (ev.parent != 0 && (ev.ph == 'B' || ev.ph == 'f') &&
        guids_opened.find(ev.parent) == guids_opened.end()) {
      fail("event guid " + std::to_string(ev.guid) + " (ph '" +
           std::string(1, ev.ph) + "'): parent " +
           std::to_string(ev.parent) + " never opened a span");
    }
  }

  if (pids.size() < min_pids) {
    fail("trace has " + std::to_string(pids.size()) + " pid(s), expected >= " +
         std::to_string(min_pids));
  }
  return errors;
}

std::vector<double> estimate_offsets(const std::vector<ParsedTrace>& traces) {
  const std::size_t n = traces.size();
  std::vector<double> offsets(n, 0.0);
  if (n < 2) {
    return offsets;
  }

  // Which trace recorded each half of every flow id.
  struct Half {
    std::size_t trace = 0;
    double ts_us = 0.0;
  };
  std::map<std::uint64_t, std::vector<Half>> sends;
  std::map<std::uint64_t, std::vector<Half>> recvs;
  for (std::size_t i = 0; i < n; ++i) {
    for (const TraceEvent& ev : traces[i].events) {
      if (ev.ph == 's') {
        sends[ev.flow_id].push_back(Half{i, ev.ts_us});
      } else if (ev.ph == 'f') {
        recvs[ev.flow_id].push_back(Half{i, ev.ts_us});
      }
    }
  }

  // Minimum observed send→recv delta per ordered trace pair.
  std::map<std::pair<std::size_t, std::size_t>, double> min_delta;
  for (const auto& [id, ss] : sends) {
    const auto it = recvs.find(id);
    if (it == recvs.end()) {
      continue;
    }
    for (const Half& s : ss) {
      for (const Half& r : it->second) {
        if (s.trace == r.trace) {
          continue;  // same clock: no skew information
        }
        const double d = r.ts_us - s.ts_us;
        const auto key = std::make_pair(s.trace, r.trace);
        const auto found = min_delta.find(key);
        if (found == min_delta.end() || d < found->second) {
          min_delta[key] = d;
        }
      }
    }
  }

  // Relative offsets where both directions were observed:
  // offset(b) − offset(a) = (min_ab − min_ba) / 2.
  std::map<std::size_t, std::vector<std::pair<std::size_t, double>>> edges;
  for (const auto& [key, d_ab] : min_delta) {
    const auto back = min_delta.find({key.second, key.first});
    if (back == min_delta.end()) {
      continue;
    }
    const double rel = (d_ab - back->second) / 2.0;
    edges[key.first].emplace_back(key.second, rel);
    edges[key.second].emplace_back(key.first, -rel);
  }

  // Propagate from trace 0 (anchor) breadth-first.
  std::vector<bool> known(n, false);
  known[0] = true;
  std::deque<std::size_t> queue{0};
  while (!queue.empty()) {
    const std::size_t a = queue.front();
    queue.pop_front();
    for (const auto& [b, rel] : edges[a]) {
      if (!known[b]) {
        offsets[b] = offsets[a] + rel;
        known[b] = true;
        queue.push_back(b);
      }
    }
  }
  return offsets;
}

ParsedTrace merge(const std::vector<ParsedTrace>& traces) {
  const std::vector<double> offsets = estimate_offsets(traces);
  ParsedTrace out;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (const TraceEvent& ev : traces[i].events) {
      if (ev.ph == 'M') {
        continue;  // re-synthesized on export
      }
      TraceEvent shifted = ev;
      shifted.ts_us -= offsets[i];
      out.events.push_back(std::move(shifted));
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::string to_chrome_json(const ParsedTrace& trace) {
  json::Value events = json::Value::array();
  std::set<std::uint32_t> pids;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph != 'M') {
      pids.insert(ev.pid);
    }
  }
  for (const std::uint32_t pid : pids) {
    json::Value meta = json::Value::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", pid);
    json::Value args = json::Value::object();
    args.set("name", "locality " + std::to_string(pid));
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  }
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph == 'M') {
      continue;
    }
    json::Value obj = json::Value::object();
    obj.set("name", ev.name);
    obj.set("cat", ev.cat);
    obj.set("ph", std::string(1, ev.ph));
    obj.set("ts", ev.ts_us);
    obj.set("pid", ev.pid);
    obj.set("tid", ev.tid);
    if (ev.ph == 's' || ev.ph == 'f') {
      obj.set("id", static_cast<unsigned long long>(ev.flow_id));
      if (!ev.bp.empty()) {
        obj.set("bp", ev.bp);
      }
    }
    if (!ev.scope.empty()) {
      obj.set("s", ev.scope);
    }
    obj.set("args", ev.args);
    events.push(std::move(obj));
  }
  json::Value doc = json::Value::object();
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(events));
  return doc.dump(1);
}

// ------------------------------------------------------------- flamegraph

std::vector<FoldedStack> fold_stacks(const ParsedTrace& trace) {
  // Replay each (pid, tid) lane independently: B/E events in ts order,
  // original order breaking ties (a nested B at the same ts as its parent
  // must stay nested).
  struct Lane {
    std::vector<const TraceEvent*> events;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Lane> lanes;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph == 'B' || ev.ph == 'E') {
      lanes[{ev.pid, ev.tid}].events.push_back(&ev);
    }
  }
  std::map<std::string, double> self_us;  // path → accumulated self time
  for (auto& [key, lane] : lanes) {
    std::stable_sort(lane.events.begin(), lane.events.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->ts_us < b->ts_us;
                     });
    const std::string root = "loc" + std::to_string(key.first);
    std::vector<const TraceEvent*> stack;
    double last_ts = 0.0;
    auto attribute = [&](double now) {
      if (!stack.empty() && now > last_ts) {
        std::string path = root;
        for (const TraceEvent* frame : stack) {
          path += ';';
          path += frame->name;
        }
        self_us[path] += now - last_ts;
      }
      last_ts = now;
    };
    for (const TraceEvent* ev : lane.events) {
      attribute(ev->ts_us);
      if (ev->ph == 'B') {
        stack.push_back(ev);
      } else if (!stack.empty()) {  // orphan 'E's are lint()'s business
        stack.pop_back();
      }
    }
    // A dangling 'B' (truncated trace) gets no further attribution — its
    // self time ends at the last event seen on the lane.
  }
  std::vector<FoldedStack> out;
  out.reserve(self_us.size());
  for (const auto& [path, us] : self_us) {  // std::map: sorted by stack
    const auto w = static_cast<std::uint64_t>(us + 0.5);
    if (w > 0) {
      out.push_back(FoldedStack{path, w});
    }
  }
  return out;
}

std::string to_collapsed(const std::vector<FoldedStack>& folds) {
  std::string out;
  for (const FoldedStack& f : folds) {
    out += f.stack;
    out += ' ';
    out += std::to_string(f.self_us);
    out += '\n';
  }
  return out;
}

}  // namespace rveval::report::tracetools
