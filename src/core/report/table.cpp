#include "core/report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rveval::report {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::headers(std::vector<std::string> names) {
  headers_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  // Column widths over header + all rows.
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) {
    ncols = std::max(ncols, r.size());
  }
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      width[c] = std::max(width[c], cells[c].size());
    }
  };
  widen(headers_);
  for (const auto& r : rows_) {
    widen(r);
  }

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    emit(headers_);
    std::size_t total = 0;
    for (const std::size_t w : width) {
      total += w + 2;
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    emit(r);
  }
  os << '\n';
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << cells[c];
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    emit(headers_);
  }
  for (const auto& r : rows_) {
    emit(r);
  }
  return os.str();
}

}  // namespace rveval::report
