#include "core/report/parcel_report.hpp"

namespace rveval::report {

std::string format_message_size(std::size_t bytes) {
  if (bytes >= (std::size_t{1} << 20) && bytes % (std::size_t{1} << 20) == 0) {
    return std::to_string(bytes >> 20) + " MiB";
  }
  if (bytes >= (std::size_t{1} << 10) && bytes % (std::size_t{1} << 10) == 0) {
    return std::to_string(bytes >> 10) + " KiB";
  }
  return std::to_string(bytes) + " B";
}

Table network_cost_table(const std::string& title,
                         const std::vector<arch::NetworkModel>& nets,
                         const std::vector<std::size_t>& sizes) {
  Table t(title);
  std::vector<std::string> headers{"network"};
  for (const std::size_t s : sizes) {
    headers.push_back(format_message_size(s) + " [us]");
  }
  t.headers(headers);
  for (const auto& net : nets) {
    std::vector<std::string> row{net.name};
    for (const std::size_t s : sizes) {
      row.push_back(Table::num(net.message_seconds(s) * 1e6, 1));
    }
    t.row(row);
  }
  return t;
}

}  // namespace rveval::report
