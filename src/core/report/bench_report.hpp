#pragma once

/// \file bench_report.hpp
/// Machine-readable bench reports: every bench binary can emit its tables
/// and headline metrics as one JSON document (schema "rveval-bench-v1"),
/// so plotting/regression tooling consumes structured output instead of
/// scraping the aligned text tables.
///
/// Document shape:
///   {
///     "schema":  "rveval-bench-v1",
///     "bench":   "fig7_node_scaling",
///     "title":   "Fig. 7 — ...",
///     "metrics": { name: number-or-string, ... },
///     "tables":  [ {"title":..., "headers":[...], "rows":[[...]]}, ... ],
///     "notes":   [ "...", ... ]
///   }
/// Numeric-looking table cells are emitted as JSON numbers.

#include <string>
#include <vector>

#include "core/report/json.hpp"
#include "core/report/table.hpp"

namespace rveval::report {

/// A Table as a JSON object (title/headers/rows, numeric cells as numbers).
[[nodiscard]] json::Value to_json(const Table& table);

/// Builder for one bench's JSON report.
class BenchReport {
 public:
  /// \p bench_id is the stable machine name (e.g. "fig7_node_scaling"),
  /// \p title the human headline.
  BenchReport(std::string bench_id, std::string title);

  /// Add a headline metric (flat key → number or string).
  BenchReport& metric(const std::string& name, double value);
  BenchReport& metric(const std::string& name, const std::string& value);

  /// Append a table (converted via to_json).
  BenchReport& add_table(const Table& table);

  /// Append a free-form note line.
  BenchReport& note(std::string text);

  /// The document, pretty-printed.
  [[nodiscard]] std::string dump() const;

  /// Write to \p path; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  json::Value metrics_ = json::Value::object();
  json::Value tables_ = json::Value::array();
  json::Value notes_ = json::Value::array();
  std::string bench_id_;
  std::string title_;
};

/// Structural validation of an rveval-bench-v1 document: schema tag, bench
/// id, title, metrics object (numbers/strings only), tables each with
/// title/headers/rows of matching width, notes as strings. Percentile
/// metric families (<stem>_p{50,90,99,999}_seconds) must additionally be
/// nondecreasing in q; reports without them are unaffected. Returns every
/// violation found (empty = valid). CI runs this over emitted BENCH_*.json
/// so a report regression fails the build, not the plotting pipeline.
[[nodiscard]] std::vector<std::string> validate_bench_v1(
    const json::Value& doc);

}  // namespace rveval::report
