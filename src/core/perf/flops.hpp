#pragma once

/// \file flops.hpp
/// Analytic FLOP accounting for the Maclaurin benchmark (Eq. 1) and the
/// normalized-performance metric (Eq. 3).
///
/// The paper measures 100 000 028 581 floating-point operations for
/// n = 10^9 series terms with `perf` on one Intel core, and uses that count
/// on every architecture (RISC-V has no FLOP counters). We reproduce the
/// count analytically: each term sign * x^n / n costs one software pow
/// (exp/log path, 97 flops on this libm), one divide, one multiply and one
/// add; a fixed remainder covers libm setup and loop-carried arithmetic.
/// The §8 discussion — hardware exponent support would cut pow from
/// ~ceil(2e)+3 flops per call down to 4 — is modelled by the softexp
/// functions below (the ablation bench A2 sweeps it).

#include <cmath>
#include <cstdint>

namespace rveval::perf {

/// FLOPs of one software pow(x, n) call on the measured libm path.
inline constexpr double software_pow_flops = 97.0;

/// FLOPs of a pow with dedicated exponent hardware (paper §8: "down to 4").
inline constexpr double hardware_pow_flops = 4.0;

/// Per-term cost of the series with software exponentiation:
/// pow + divide + sign multiply + accumulate.
inline constexpr double term_flops_software = software_pow_flops + 3.0;

/// Per-term cost with hardware exponentiation.
inline constexpr double term_flops_hardware = hardware_pow_flops + 3.0;

/// Fixed overhead (libm initialisation, loop prologue arithmetic) that
/// makes the analytic count match the paper's perf measurement exactly.
inline constexpr double fixed_overhead_flops = 28581.0;

/// Total FLOPs for n series terms (software exponentiation) — reproduces
/// the paper's 100000028581 for n = 10^9.
[[nodiscard]] constexpr double maclaurin_flops(std::uint64_t terms) {
  return term_flops_software * static_cast<double>(terms) +
         fixed_overhead_flops;
}

/// Total FLOPs if the ISA had hardware exponent support (ablation A2).
[[nodiscard]] constexpr double maclaurin_flops_hardware_exp(
    std::uint64_t terms) {
  return term_flops_hardware * static_cast<double>(terms) +
         fixed_overhead_flops;
}

/// Paper §8's per-exponentiation estimate "ceil((2*e)+3)" as a function of
/// the natural-log base e — the general software-exponentiation cost form.
[[nodiscard]] inline double softexp_flops_estimate(double e) {
  return std::ceil(2.0 * e) + 3.0;
}

/// Eq. 3: measured FLOP/s normalized by the peak at the same core count.
[[nodiscard]] inline double normalized_performance(double flops_per_second,
                                                   double peak_gflops) {
  return flops_per_second / (peak_gflops * 1e9);
}

}  // namespace rveval::perf
