#pragma once

/// \file simd.hpp
/// rveval::simd<T, Abi> — portable-width SIMD value types.
///
/// One kernel body, templated on the Abi tag (abi.hpp), runs at any lane
/// count: the primary template here is a portable lane array (used by
/// abi::scalar, abi::fixed<N>, abi::rvv_modelled<N>, and any intrinsic ABI
/// the build did not enable), and explicit specializations map
/// simd<double, abi::sse2> onto __m128d and simd<double, abi::avx2> onto
/// __m256d + FMA when compiled in.
///
/// Bit-reproducibility contract (load-bearing: the octotiger tests assert
/// bitwise equality between kernel flavours, and the fig7 metamorphic gate
/// asserts scalar-vs-native bit-identity of whole simulations):
///   - +, -, *, /, sqrt are IEEE-754 correctly rounded in every backend,
///     so lanes match the scalar reference exactly.
///   - fma(a, b, c) is a true fused multiply-add everywhere (std::fma in
///     the portable backend, vfmadd in AVX2).
///   - min/max use the x86 vector semantics in *every* backend:
///     max(a,b) = a > b ? a : b and min(a,b) = a < b ? a : b per lane,
///     returning b when the lanes compare unordered (NaN) or equal (which
///     resolves the +-0 tie the same way minpd/maxpd do). This is
///     deliberately NOT std::max, whose tie case returns a.
///   - comparisons are ordered-quiet (NaN compares false, != true), and
///     select(m, a, b) is a per-lane blend.
/// The build adds -ffp-contract=off globally (top-level CMakeLists) so the
/// compiler cannot contract the portable backend's mul+add chains into
/// FMAs that the intrinsic backends would not perform.
///
/// Alignment contract: load/store require the pointer to be aligned to
/// simd::alignment and assert it in debug builds; load_unaligned /
/// store_unaligned accept any pointer. mkk::View allocates with plain
/// new[] (~16-byte alignment), so all View-facing kernel paths use the
/// unaligned pair — a 32-byte AVX2 load on a padded hydro buffer row must
/// never fault silently.

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "core/simd/abi.hpp"

#if RVEVAL_SIMD_HAS_SSE2 || RVEVAL_SIMD_HAS_AVX2
#include <immintrin.h>
#endif

namespace rveval::simd {

template <typename T, typename Abi = abi::native>
class simd;
template <typename T, typename Abi = abi::native>
class simd_mask;

// ---------------------------------------------------------------------------
// Generic mask: one bool per lane.
// ---------------------------------------------------------------------------

template <typename T, typename Abi>
class simd_mask {
 public:
  using value_type = bool;
  using abi_type = Abi;
  static constexpr int width = Abi::width;
  static constexpr std::size_t size() { return width; }

  simd_mask() = default;
  explicit simd_mask(bool broadcast) { m_.fill(broadcast); }

  [[nodiscard]] bool operator[](std::size_t i) const {
    assert(i < size());
    return m_[i];
  }
  void set(std::size_t i, bool b) {
    assert(i < size());
    m_[i] = b;
  }

  [[nodiscard]] bool any() const {
    for (const bool b : m_) {
      if (b) {
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] bool all() const {
    for (const bool b : m_) {
      if (!b) {
        return false;
      }
    }
    return true;
  }

  friend simd_mask operator&&(const simd_mask& a, const simd_mask& b) {
    simd_mask r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.m_[i] = a.m_[i] && b.m_[i];
    }
    return r;
  }
  friend simd_mask operator||(const simd_mask& a, const simd_mask& b) {
    simd_mask r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.m_[i] = a.m_[i] || b.m_[i];
    }
    return r;
  }
  friend simd_mask operator!(const simd_mask& a) {
    simd_mask r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.m_[i] = !a.m_[i];
    }
    return r;
  }

 private:
  std::array<bool, width> m_{};
};

// ---------------------------------------------------------------------------
// Generic simd: a portable lane array. Serves abi::scalar, abi::fixed<N>,
// abi::rvv_modelled<N>, and acts as the fallback for intrinsic ABIs on
// builds that did not enable them (-mno-avx2 conformance build).
// ---------------------------------------------------------------------------

template <typename T, typename Abi>
class simd {
  static_assert(std::is_floating_point_v<T>,
                "rveval::simd models floating-point vector lanes");

 public:
  using value_type = T;
  using abi_type = Abi;
  using mask_type = simd_mask<T, Abi>;
  static constexpr int width = Abi::width;
  /// Natural alignment of a full vector of this width.
  static constexpr std::size_t alignment = sizeof(T) * width;
  static_assert((alignment & (alignment - 1)) == 0,
                "vector alignment must be a power of two");

  static constexpr std::size_t size() { return width; }

  simd() = default;
  simd(T broadcast) { l_.fill(broadcast); }  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static bool is_aligned(const T* p) {
    return (reinterpret_cast<std::uintptr_t>(p) % alignment) == 0;
  }

  /// Aligned load: \p p must be aligned to simd::alignment (debug-checked).
  [[nodiscard]] static simd load(const T* p) {
    assert(is_aligned(p) && "simd::load requires an aligned pointer; "
                            "use load_unaligned for View-backed storage");
    return load_unaligned(p);
  }
  [[nodiscard]] static simd load_unaligned(const T* p) {
    simd r;
    std::memcpy(r.l_.data(), p, sizeof(r.l_));
    return r;
  }
  void store(T* p) const {
    assert(is_aligned(p) && "simd::store requires an aligned pointer; "
                            "use store_unaligned for View-backed storage");
    store_unaligned(p);
  }
  void store_unaligned(T* p) const { std::memcpy(p, l_.data(), sizeof(l_)); }

  /// Per-lane indexed load: lane i = base[idx[i]].
  [[nodiscard]] static simd gather(const T* base, const std::int32_t* idx) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = base[idx[i]];
    }
    return r;
  }

  /// {first, first+1, ...} — exact for integer-valued \p first.
  [[nodiscard]] static simd iota(T first) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = first + static_cast<T>(i);
    }
    return r;
  }

  [[nodiscard]] T operator[](std::size_t i) const {
    assert(i < size());
    return l_[i];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size());
    return l_[i];
  }

  simd& operator+=(const simd& o) {
    for (std::size_t i = 0; i < size(); ++i) {
      l_[i] += o.l_[i];
    }
    return *this;
  }
  simd& operator-=(const simd& o) {
    for (std::size_t i = 0; i < size(); ++i) {
      l_[i] -= o.l_[i];
    }
    return *this;
  }
  simd& operator*=(const simd& o) {
    for (std::size_t i = 0; i < size(); ++i) {
      l_[i] *= o.l_[i];
    }
    return *this;
  }
  simd& operator/=(const simd& o) {
    for (std::size_t i = 0; i < size(); ++i) {
      l_[i] /= o.l_[i];
    }
    return *this;
  }

  friend simd operator+(simd a, const simd& b) { return a += b; }
  friend simd operator-(simd a, const simd& b) { return a -= b; }
  friend simd operator*(simd a, const simd& b) { return a *= b; }
  friend simd operator/(simd a, const simd& b) { return a /= b; }
  friend simd operator-(const simd& a) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = -a.l_[i];
    }
    return r;
  }

  /// True fused multiply-add per lane: a*b + c with one rounding.
  friend simd fma(const simd& a, const simd& b, const simd& c) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = std::fma(a.l_[i], b.l_[i], c.l_[i]);
    }
    return r;
  }
  /// x86 maxpd semantics: a > b ? a : b (NaN/tie -> b). Not std::max.
  friend simd max(const simd& a, const simd& b) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = a.l_[i] > b.l_[i] ? a.l_[i] : b.l_[i];
    }
    return r;
  }
  /// x86 minpd semantics: a < b ? a : b (NaN/tie -> b). Not std::min.
  friend simd min(const simd& a, const simd& b) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = a.l_[i] < b.l_[i] ? a.l_[i] : b.l_[i];
    }
    return r;
  }
  friend simd sqrt(const simd& a) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = std::sqrt(a.l_[i]);
    }
    return r;
  }
  friend simd abs(const simd& a) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = std::fabs(a.l_[i]);
    }
    return r;
  }

  friend mask_type operator<(const simd& a, const simd& b) {
    return cmp(a, b, [](T x, T y) { return x < y; });
  }
  friend mask_type operator<=(const simd& a, const simd& b) {
    return cmp(a, b, [](T x, T y) { return x <= y; });
  }
  friend mask_type operator>(const simd& a, const simd& b) {
    return cmp(a, b, [](T x, T y) { return x > y; });
  }
  friend mask_type operator>=(const simd& a, const simd& b) {
    return cmp(a, b, [](T x, T y) { return x >= y; });
  }
  friend mask_type operator==(const simd& a, const simd& b) {
    return cmp(a, b, [](T x, T y) { return x == y; });
  }
  friend mask_type operator!=(const simd& a, const simd& b) {
    return cmp(a, b, [](T x, T y) { return x != y; });
  }

  /// Per-lane blend: m ? a : b.
  friend simd select(const mask_type& m, const simd& a, const simd& b) {
    simd r;
    for (std::size_t i = 0; i < size(); ++i) {
      r.l_[i] = m[i] ? a.l_[i] : b.l_[i];
    }
    return r;
  }

  /// Lane-order (lane 0 first) sequential sum — deterministic by design.
  [[nodiscard]] T reduce_sum() const {
    T s = l_[0];
    for (std::size_t i = 1; i < size(); ++i) {
      s += l_[i];
    }
    return s;
  }
  /// Lane-order max with the same tie semantics as max().
  [[nodiscard]] T reduce_max() const {
    T s = l_[0];
    for (std::size_t i = 1; i < size(); ++i) {
      s = s > l_[i] ? s : l_[i];
    }
    return s;
  }

 private:
  template <typename Op>
  static mask_type cmp(const simd& a, const simd& b, Op op) {
    mask_type m;
    for (std::size_t i = 0; i < size(); ++i) {
      m.set(i, op(a.l_[i], b.l_[i]));
    }
    return m;
  }

  std::array<T, width> l_{};
};

// ---------------------------------------------------------------------------
// SSE2 backend: simd<double, abi::sse2> over __m128d.
// ---------------------------------------------------------------------------

#if RVEVAL_SIMD_HAS_SSE2

template <>
class simd_mask<double, abi::sse2> {
 public:
  using value_type = bool;
  using abi_type = abi::sse2;
  static constexpr int width = 2;
  static constexpr std::size_t size() { return width; }

  simd_mask() : m_(_mm_setzero_pd()) {}
  explicit simd_mask(bool broadcast)
      : m_(broadcast ? _mm_castsi128_pd(_mm_set1_epi64x(-1))
                     : _mm_setzero_pd()) {}
  explicit simd_mask(__m128d raw) : m_(raw) {}

  [[nodiscard]] __m128d raw() const { return m_; }
  [[nodiscard]] bool operator[](std::size_t i) const {
    assert(i < size());
    return (_mm_movemask_pd(m_) >> i) & 1;
  }
  [[nodiscard]] bool any() const { return _mm_movemask_pd(m_) != 0; }
  [[nodiscard]] bool all() const { return _mm_movemask_pd(m_) == 0x3; }

  friend simd_mask operator&&(const simd_mask& a, const simd_mask& b) {
    return simd_mask{_mm_and_pd(a.m_, b.m_)};
  }
  friend simd_mask operator||(const simd_mask& a, const simd_mask& b) {
    return simd_mask{_mm_or_pd(a.m_, b.m_)};
  }
  friend simd_mask operator!(const simd_mask& a) {
    return simd_mask{
        _mm_andnot_pd(a.m_, _mm_castsi128_pd(_mm_set1_epi64x(-1)))};
  }

 private:
  __m128d m_;
};

template <>
class simd<double, abi::sse2> {
 public:
  using value_type = double;
  using abi_type = abi::sse2;
  using mask_type = simd_mask<double, abi::sse2>;
  static constexpr int width = 2;
  static constexpr std::size_t alignment = 16;
  static constexpr std::size_t size() { return width; }

  simd() : v_(_mm_setzero_pd()) {}
  simd(double broadcast) : v_(_mm_set1_pd(broadcast)) {}  // NOLINT
  explicit simd(__m128d raw) : v_(raw) {}

  [[nodiscard]] __m128d raw() const { return v_; }

  [[nodiscard]] static bool is_aligned(const double* p) {
    return (reinterpret_cast<std::uintptr_t>(p) % alignment) == 0;
  }
  [[nodiscard]] static simd load(const double* p) {
    assert(is_aligned(p) && "simd::load requires a 16-byte aligned pointer");
    return simd{_mm_load_pd(p)};
  }
  [[nodiscard]] static simd load_unaligned(const double* p) {
    return simd{_mm_loadu_pd(p)};
  }
  void store(double* p) const {
    assert(is_aligned(p) && "simd::store requires a 16-byte aligned pointer");
    _mm_store_pd(p, v_);
  }
  void store_unaligned(double* p) const { _mm_storeu_pd(p, v_); }

  [[nodiscard]] static simd gather(const double* base,
                                   const std::int32_t* idx) {
    return simd{_mm_set_pd(base[idx[1]], base[idx[0]])};
  }
  [[nodiscard]] static simd iota(double first) {
    return simd{_mm_set_pd(first + 1.0, first)};
  }

  [[nodiscard]] double operator[](std::size_t i) const {
    assert(i < size());
    alignas(alignment) double tmp[width];
    _mm_store_pd(tmp, v_);
    return tmp[i];
  }

  simd& operator+=(const simd& o) {
    v_ = _mm_add_pd(v_, o.v_);
    return *this;
  }
  simd& operator-=(const simd& o) {
    v_ = _mm_sub_pd(v_, o.v_);
    return *this;
  }
  simd& operator*=(const simd& o) {
    v_ = _mm_mul_pd(v_, o.v_);
    return *this;
  }
  simd& operator/=(const simd& o) {
    v_ = _mm_div_pd(v_, o.v_);
    return *this;
  }
  friend simd operator+(simd a, const simd& b) { return a += b; }
  friend simd operator-(simd a, const simd& b) { return a -= b; }
  friend simd operator*(simd a, const simd& b) { return a *= b; }
  friend simd operator/(simd a, const simd& b) { return a /= b; }
  friend simd operator-(const simd& a) {
    return simd{_mm_xor_pd(a.v_, _mm_set1_pd(-0.0))};
  }

  friend simd fma(const simd& a, const simd& b, const simd& c) {
#if RVEVAL_SIMD_HAS_AVX2  // -mfma implies the 128-bit form is available too
    return simd{_mm_fmadd_pd(a.v_, b.v_, c.v_)};
#else
    alignas(alignment) double x[width], y[width], z[width];
    _mm_store_pd(x, a.v_);
    _mm_store_pd(y, b.v_);
    _mm_store_pd(z, c.v_);
    return simd{_mm_set_pd(std::fma(x[1], y[1], z[1]),
                           std::fma(x[0], y[0], z[0]))};
#endif
  }
  friend simd max(const simd& a, const simd& b) {
    return simd{_mm_max_pd(a.v_, b.v_)};
  }
  friend simd min(const simd& a, const simd& b) {
    return simd{_mm_min_pd(a.v_, b.v_)};
  }
  friend simd sqrt(const simd& a) { return simd{_mm_sqrt_pd(a.v_)}; }
  friend simd abs(const simd& a) {
    return simd{_mm_andnot_pd(_mm_set1_pd(-0.0), a.v_)};
  }

  friend mask_type operator<(const simd& a, const simd& b) {
    return mask_type{_mm_cmplt_pd(a.v_, b.v_)};
  }
  friend mask_type operator<=(const simd& a, const simd& b) {
    return mask_type{_mm_cmple_pd(a.v_, b.v_)};
  }
  friend mask_type operator>(const simd& a, const simd& b) {
    return mask_type{_mm_cmpgt_pd(a.v_, b.v_)};
  }
  friend mask_type operator>=(const simd& a, const simd& b) {
    return mask_type{_mm_cmpge_pd(a.v_, b.v_)};
  }
  friend mask_type operator==(const simd& a, const simd& b) {
    return mask_type{_mm_cmpeq_pd(a.v_, b.v_)};
  }
  friend mask_type operator!=(const simd& a, const simd& b) {
    return mask_type{_mm_cmpneq_pd(a.v_, b.v_)};
  }

  friend simd select(const mask_type& m, const simd& a, const simd& b) {
    // (mask & a) | (~mask & b): cmp masks are all-ones/all-zeros per lane.
    return simd{_mm_or_pd(_mm_and_pd(m.raw(), a.v_),
                          _mm_andnot_pd(m.raw(), b.v_))};
  }

  [[nodiscard]] double reduce_sum() const {
    alignas(alignment) double tmp[width];
    _mm_store_pd(tmp, v_);
    return tmp[0] + tmp[1];
  }
  [[nodiscard]] double reduce_max() const {
    alignas(alignment) double tmp[width];
    _mm_store_pd(tmp, v_);
    return tmp[0] > tmp[1] ? tmp[0] : tmp[1];
  }

 private:
  __m128d v_;
};

#endif  // RVEVAL_SIMD_HAS_SSE2

// ---------------------------------------------------------------------------
// AVX2 backend: simd<double, abi::avx2> over __m256d + FMA.
// ---------------------------------------------------------------------------

#if RVEVAL_SIMD_HAS_AVX2

template <>
class simd_mask<double, abi::avx2> {
 public:
  using value_type = bool;
  using abi_type = abi::avx2;
  static constexpr int width = 4;
  static constexpr std::size_t size() { return width; }

  simd_mask() : m_(_mm256_setzero_pd()) {}
  explicit simd_mask(bool broadcast)
      : m_(broadcast ? _mm256_castsi256_pd(_mm256_set1_epi64x(-1))
                     : _mm256_setzero_pd()) {}
  explicit simd_mask(__m256d raw) : m_(raw) {}

  [[nodiscard]] __m256d raw() const { return m_; }
  [[nodiscard]] bool operator[](std::size_t i) const {
    assert(i < size());
    return (_mm256_movemask_pd(m_) >> i) & 1;
  }
  [[nodiscard]] bool any() const { return _mm256_movemask_pd(m_) != 0; }
  [[nodiscard]] bool all() const { return _mm256_movemask_pd(m_) == 0xF; }

  friend simd_mask operator&&(const simd_mask& a, const simd_mask& b) {
    return simd_mask{_mm256_and_pd(a.m_, b.m_)};
  }
  friend simd_mask operator||(const simd_mask& a, const simd_mask& b) {
    return simd_mask{_mm256_or_pd(a.m_, b.m_)};
  }
  friend simd_mask operator!(const simd_mask& a) {
    return simd_mask{
        _mm256_andnot_pd(a.m_, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)))};
  }

 private:
  __m256d m_;
};

template <>
class simd<double, abi::avx2> {
 public:
  using value_type = double;
  using abi_type = abi::avx2;
  using mask_type = simd_mask<double, abi::avx2>;
  static constexpr int width = 4;
  static constexpr std::size_t alignment = 32;
  static constexpr std::size_t size() { return width; }

  simd() : v_(_mm256_setzero_pd()) {}
  simd(double broadcast) : v_(_mm256_set1_pd(broadcast)) {}  // NOLINT
  explicit simd(__m256d raw) : v_(raw) {}

  [[nodiscard]] __m256d raw() const { return v_; }

  [[nodiscard]] static bool is_aligned(const double* p) {
    return (reinterpret_cast<std::uintptr_t>(p) % alignment) == 0;
  }
  [[nodiscard]] static simd load(const double* p) {
    assert(is_aligned(p) && "simd::load requires a 32-byte aligned pointer; "
                            "mkk::View storage is not — use load_unaligned");
    return simd{_mm256_load_pd(p)};
  }
  [[nodiscard]] static simd load_unaligned(const double* p) {
    return simd{_mm256_loadu_pd(p)};
  }
  void store(double* p) const {
    assert(is_aligned(p) && "simd::store requires a 32-byte aligned pointer; "
                            "mkk::View storage is not — use store_unaligned");
    _mm256_store_pd(p, v_);
  }
  void store_unaligned(double* p) const { _mm256_storeu_pd(p, v_); }

  /// Hardware vgatherdpd.
  [[nodiscard]] static simd gather(const double* base,
                                   const std::int32_t* idx) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return simd{_mm256_i32gather_pd(base, vi, 8)};
  }
  [[nodiscard]] static simd iota(double first) {
    return simd{
        _mm256_set_pd(first + 3.0, first + 2.0, first + 1.0, first)};
  }

  [[nodiscard]] double operator[](std::size_t i) const {
    assert(i < size());
    alignas(alignment) double tmp[width];
    _mm256_store_pd(tmp, v_);
    return tmp[i];
  }

  simd& operator+=(const simd& o) {
    v_ = _mm256_add_pd(v_, o.v_);
    return *this;
  }
  simd& operator-=(const simd& o) {
    v_ = _mm256_sub_pd(v_, o.v_);
    return *this;
  }
  simd& operator*=(const simd& o) {
    v_ = _mm256_mul_pd(v_, o.v_);
    return *this;
  }
  simd& operator/=(const simd& o) {
    v_ = _mm256_div_pd(v_, o.v_);
    return *this;
  }
  friend simd operator+(simd a, const simd& b) { return a += b; }
  friend simd operator-(simd a, const simd& b) { return a -= b; }
  friend simd operator*(simd a, const simd& b) { return a *= b; }
  friend simd operator/(simd a, const simd& b) { return a /= b; }
  friend simd operator-(const simd& a) {
    return simd{_mm256_xor_pd(a.v_, _mm256_set1_pd(-0.0))};
  }

  friend simd fma(const simd& a, const simd& b, const simd& c) {
    return simd{_mm256_fmadd_pd(a.v_, b.v_, c.v_)};
  }
  friend simd max(const simd& a, const simd& b) {
    return simd{_mm256_max_pd(a.v_, b.v_)};
  }
  friend simd min(const simd& a, const simd& b) {
    return simd{_mm256_min_pd(a.v_, b.v_)};
  }
  friend simd sqrt(const simd& a) { return simd{_mm256_sqrt_pd(a.v_)}; }
  friend simd abs(const simd& a) {
    return simd{_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v_)};
  }

  friend mask_type operator<(const simd& a, const simd& b) {
    return mask_type{_mm256_cmp_pd(a.v_, b.v_, _CMP_LT_OQ)};
  }
  friend mask_type operator<=(const simd& a, const simd& b) {
    return mask_type{_mm256_cmp_pd(a.v_, b.v_, _CMP_LE_OQ)};
  }
  friend mask_type operator>(const simd& a, const simd& b) {
    return mask_type{_mm256_cmp_pd(a.v_, b.v_, _CMP_GT_OQ)};
  }
  friend mask_type operator>=(const simd& a, const simd& b) {
    return mask_type{_mm256_cmp_pd(a.v_, b.v_, _CMP_GE_OQ)};
  }
  friend mask_type operator==(const simd& a, const simd& b) {
    return mask_type{_mm256_cmp_pd(a.v_, b.v_, _CMP_EQ_OQ)};
  }
  friend mask_type operator!=(const simd& a, const simd& b) {
    return mask_type{_mm256_cmp_pd(a.v_, b.v_, _CMP_NEQ_UQ)};
  }

  friend simd select(const mask_type& m, const simd& a, const simd& b) {
    // blendv picks a where the mask sign bit is set; cmp masks are
    // all-ones/all-zeros per lane, so this is an exact per-lane m ? a : b.
    return simd{_mm256_blendv_pd(b.v_, a.v_, m.raw())};
  }

  /// Lane-order sequential sum — matches the portable backend bit for bit
  /// (no pairwise shuffle tree, which would round differently).
  [[nodiscard]] double reduce_sum() const {
    alignas(alignment) double tmp[width];
    _mm256_store_pd(tmp, v_);
    return ((tmp[0] + tmp[1]) + tmp[2]) + tmp[3];
  }
  [[nodiscard]] double reduce_max() const {
    alignas(alignment) double tmp[width];
    _mm256_store_pd(tmp, v_);
    double s = tmp[0];
    for (std::size_t i = 1; i < size(); ++i) {
      s = s > tmp[i] ? s : tmp[i];
    }
    return s;
  }

 private:
  __m256d v_;
};

#endif  // RVEVAL_SIMD_HAS_AVX2

/// Convenience aliases.
using native_double = simd<double, abi::native>;
using scalar_double = simd<double, abi::scalar>;

static_assert(sizeof(simd<double, abi::scalar>) == sizeof(double));
static_assert(sizeof(simd<double, abi::fixed<4>>) == 4 * sizeof(double));

}  // namespace rveval::simd
