#pragma once

/// \file pricing.hpp
/// Width-aware Table-2 pricing hooks: the bridge between the simd ABI
/// model (abi.hpp) and rveval::arch::CpuModel.
///
/// The paper's Eq. 2 charges every CPU its full vector length; this header
/// makes lane width a first-class input instead. Two model ingredients:
///   - peak scales linearly with the lane count actually used, clamped to
///     the hardware width (CpuModel::peak_gflops_at_width);
///   - *realised* kernel speedup does not reach the ideal W x. We model a
///     per-CPU lane efficiency e = (simd_kernel_speedup - 1) / (W_hw - 1)
///     and interpolate: speedup(w) = 1 + e * (min(w, W_hw) - 1). At
///     w = W_hw this reproduces the calibrated simd_kernel_speedup the
///     fig7/fig9 pricing already used, so prior results are unchanged; at
///     w = 1 it is exactly 1 (the U74-MC path).
/// The same linear-lane model transfers a *measured* host speedup onto a
/// modelled RVV width (ablation_simd's projection row).

#include <string>
#include <vector>

#include "core/arch/cpu_model.hpp"
#include "core/simd/abi.hpp"

namespace rveval::simd {

/// Fraction of the ideal per-extra-lane speedup that explicitly SIMD-typed
/// kernels realise on \p cpu; 0 when the CPU has no vector unit.
[[nodiscard]] inline double lane_efficiency(const arch::CpuModel& cpu) {
  if (cpu.vector_length <= 1) {
    return 0.0;
  }
  return (cpu.simd_kernel_speedup - 1.0) /
         (static_cast<double>(cpu.vector_length) - 1.0);
}

/// Modelled kernel speedup over scalar when running \p width lanes on
/// \p cpu (clamped to the hardware vector length).
[[nodiscard]] inline double speedup_at_width(const arch::CpuModel& cpu,
                                             unsigned width) {
  const unsigned w = width < cpu.vector_length ? width : cpu.vector_length;
  if (w <= 1) {
    return 1.0;
  }
  return 1.0 + lane_efficiency(cpu) * (static_cast<double>(w) - 1.0);
}

/// Modelled kernel speedup for an ABI request on \p cpu: the requested
/// lane width (native = build-native width) through speedup_at_width().
[[nodiscard]] inline double speedup_for_abi(const arch::CpuModel& cpu,
                                            AbiKind abi) {
  return speedup_at_width(cpu, static_cast<unsigned>(requested_width(abi)));
}

/// Transfer a speedup *measured* at one lane width onto another width via
/// the same linear lane-efficiency model. Used by bench/ablation_simd to
/// project the measured AVX2-vs-scalar host speedup onto a modelled RVV
/// unit whose width comes from CpuModel::vector_length.
[[nodiscard]] inline double project_speedup(double measured,
                                            unsigned measured_width,
                                            unsigned target_width) {
  if (measured_width <= 1 || target_width <= 1) {
    return 1.0;
  }
  const double eff =
      (measured - 1.0) / (static_cast<double>(measured_width) - 1.0);
  return 1.0 + eff * (static_cast<double>(target_width) - 1.0);
}

/// ISA-class label for a lane width on a given CPU ("scalar", "sse2",
/// "avx2", "avx512", "sve-512", "rvv-modelled-128", ...).
[[nodiscard]] inline std::string isa_label(const arch::CpuModel& cpu,
                                           unsigned width) {
  if (width <= 1) {
    return "scalar";
  }
  const unsigned bits = width * 64;
  if (cpu.isa == "riscv64") {
    return "rvv-modelled-" + std::to_string(bits);
  }
  if (cpu.isa == "aarch64") {
    return "sve-" + std::to_string(bits);
  }
  switch (width) {
    case 2:
      return "sse2";
    case 4:
      return "avx2";
    case 8:
      return "avx512";
    default:
      return "simd-" + std::to_string(bits);
  }
}

/// One per-ISA peak row of the table2 bench: Eq. 2 evaluated at an
/// explicit lane width, plus the modelled realised kernel speedup there.
struct IsaPeakRow {
  std::string abi;              ///< ISA-class label (isa_label)
  unsigned width = 1;           ///< double lanes used
  double peak_gflops = 0.0;     ///< Eq. 2 at this width, full core count
  double kernel_speedup = 1.0;  ///< modelled realised speedup vs scalar
};

/// Per-ISA peak ladder for one CPU: widths {1, 2, 4, ...} up to and
/// including the hardware vector length (each width at most once — the
/// U74-MC collapses to a single scalar row).
[[nodiscard]] inline std::vector<IsaPeakRow> isa_peak_rows(
    const arch::CpuModel& cpu) {
  std::vector<IsaPeakRow> rows;
  for (unsigned w = 1; w <= cpu.vector_length; w *= 2) {
    rows.push_back({isa_label(cpu, w), w, cpu.peak_gflops_at_width(w, cpu.cores),
                    speedup_at_width(cpu, w)});
  }
  return rows;
}

}  // namespace rveval::simd
