#pragma once

/// \file abi.hpp
/// ABI (vector-width/backend) tags for the rveval::simd subsystem.
///
/// The paper's Table 2 makes vector length the decisive per-CPU input: 8
/// double lanes on A64FX/AVX-512, 4 on AVX2, *none* on the U74-MC (no V
/// extension). rveval::simd models that axis explicitly: a kernel is
/// templated on an Abi tag and the same body runs
///   - scalar     : 1 lane, plain IEEE double ops (the U74-MC path),
///   - sse2       : 2 lanes, __m128d intrinsics when compiled in,
///   - avx2       : 4 lanes, __m256d + FMA intrinsics when compiled in,
///   - fixed<N>   : N lanes, portable lane-array code on any hardware,
///   - rvv_modelled<N> : N lanes executed portably on the host, *priced*
///                  as an N-wide RVV unit (width comes from
///                  rveval::arch::CpuModel::vector_length — see
///                  core/simd/pricing.hpp).
///
/// Backend availability is a compile-time property (the RVEVAL_SIMD_HAS_*
/// macros below follow the compiler's -m flags); which ABI actually runs is
/// a runtime decision made through CPUID feature detection
/// (core/simd/detect.hpp). `abi::native` aliases the widest backend the
/// *build* enabled; detect::resolve() narrows it to what the executing CPU
/// supports.

#include <optional>
#include <string>
#include <string_view>

// Compile-time backend availability. SSE2 is part of the x86-64 baseline;
// AVX2 requires -mavx2 -mfma (the top-level CMakeLists enables them when
// the compiler and the build host both support AVX2 — OCTO_SIMD_NATIVE).
#if defined(__SSE2__)
#define RVEVAL_SIMD_HAS_SSE2 1
#else
#define RVEVAL_SIMD_HAS_SSE2 0
#endif
#if defined(__AVX2__) && defined(__FMA__)
#define RVEVAL_SIMD_HAS_AVX2 1
#else
#define RVEVAL_SIMD_HAS_AVX2 0
#endif

namespace rveval::simd {

namespace abi {

/// One lane; every op is the plain scalar IEEE-754 operation. This is the
/// reference ABI: conformance tests compare every other backend against it
/// bit for bit, and it is what a vectorless CPU (U74-MC) executes.
struct scalar {
  static constexpr int width = 1;
  static constexpr std::string_view name() { return "scalar"; }
};

/// Two double lanes over __m128d (x86-64 baseline).
struct sse2 {
  static constexpr int width = 2;
  static constexpr std::string_view name() { return "sse2"; }
};

/// Four double lanes over __m256d with FMA.
struct avx2 {
  static constexpr int width = 4;
  static constexpr std::string_view name() { return "avx2"; }
};

/// N portable lanes (plain lane-array code; the compiler's auto-vectoriser
/// may still map it onto vector instructions). mkk::simd<T, N> aliases
/// simd<T, fixed<N>> for backward compatibility.
template <int N>
  requires(N >= 1 && (N & (N - 1)) == 0)
struct fixed {
  static constexpr int width = N;
  static constexpr std::string_view name() { return "fixed"; }
};

/// N lanes executed portably on the host but *modelled* as an N-wide RVV
/// vector unit for pricing: the width is taken from
/// CpuModel::vector_length, so a kernel instantiated on rvv_modelled<W>
/// computes host-bit-identical results while its cost model charges the
/// Table-2 peak of a W-wide RISC-V vector engine.
template <int N>
  requires(N >= 1 && (N & (N - 1)) == 0)
struct rvv_modelled {
  static constexpr int width = N;
  static constexpr std::string_view name() { return "rvv-modelled"; }
};

/// The widest intrinsic backend this build enabled. Kernels instantiate on
/// `native` for the host fast path; detect::resolve() decides at runtime
/// whether the executing CPU can actually take it.
#if RVEVAL_SIMD_HAS_AVX2
using native = avx2;
#elif RVEVAL_SIMD_HAS_SSE2
using native = sse2;
#else
using native = scalar;
#endif

}  // namespace abi

/// Runtime ABI selector (the value-level mirror of the tag types): what
/// octo::Options carries, what --simd_abi parses to, and what
/// detect::dispatch() maps back onto a tag type.
enum class AbiKind {
  scalar,  ///< force the 1-lane reference backend
  sse2,    ///< force 2 lanes (__m128d when compiled in)
  avx2,    ///< force 4 lanes (__m256d+FMA when compiled in)
  native,  ///< widest backend compiled in AND supported by this CPU
};

[[nodiscard]] constexpr std::string_view to_string(AbiKind k) {
  switch (k) {
    case AbiKind::scalar:
      return "scalar";
    case AbiKind::sse2:
      return "sse2";
    case AbiKind::avx2:
      return "avx2";
    case AbiKind::native:
      return "native";
  }
  return "?";
}

/// Lane count of an AbiKind as requested (native = build-native width; the
/// runtime-resolved width comes from detect::resolved_width).
[[nodiscard]] constexpr int requested_width(AbiKind k) {
  switch (k) {
    case AbiKind::scalar:
      return 1;
    case AbiKind::sse2:
      return 2;
    case AbiKind::avx2:
      return 4;
    case AbiKind::native:
      return abi::native::width;
  }
  return 1;
}

/// Parse "SCALAR" / "SSE2" / "AVX2" / "NATIVE" (case-insensitive); empty
/// optional on anything else.
[[nodiscard]] inline std::optional<AbiKind> parse_abi(std::string_view v) {
  std::string u;
  u.reserve(v.size());
  for (const char c : v) {
    u.push_back(c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A') : c);
  }
  if (u == "SCALAR") {
    return AbiKind::scalar;
  }
  if (u == "SSE2" || u == "SSE") {
    return AbiKind::sse2;
  }
  if (u == "AVX2" || u == "AVX") {
    return AbiKind::avx2;
  }
  if (u == "NATIVE" || u == "AUTO") {
    return AbiKind::native;
  }
  return std::nullopt;
}

}  // namespace rveval::simd
