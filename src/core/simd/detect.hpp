#pragma once

/// \file detect.hpp
/// Runtime CPU feature detection and AbiKind -> Abi-tag dispatch.
///
/// The split of responsibilities:
///   - abi.hpp decides what the *build* can emit (RVEVAL_SIMD_HAS_*),
///   - this header decides what the *executing CPU* supports (CPUID via
///     __builtin_cpu_supports) and resolves AbiKind::native to the widest
///     backend satisfying both,
///   - dispatch() turns the resolved runtime value back into a compile-time
///     tag so a kernel templated on the Abi can be instantiated once per
///     backend and selected per call.
///
/// Note that simd<T, abi::avx2> always *exists* — without -mavx2 it falls
/// back to the portable lane-array implementation — so requesting a
/// specific ABI on a build that lacks its intrinsics is still correct,
/// just not accelerated. That is what the -mno-avx2 conformance build in
/// tests/CMakeLists.txt proves.

#include "core/simd/abi.hpp"

namespace rveval::simd::detect {

/// True when the executing CPU supports 128-bit SSE2 vectors.
[[nodiscard]] inline bool cpu_has_sse2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse2") > 0;
#else
  return false;
#endif
}

/// True when the executing CPU supports AVX2 and FMA (both are required by
/// the avx2 backend: vfmadd is part of its contract).
[[nodiscard]] inline bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") > 0 &&
         __builtin_cpu_supports("fma") > 0;
#else
  return false;
#endif
}

/// Widest backend that is both compiled in and supported by this CPU.
[[nodiscard]] inline AbiKind best_kind() {
  if (RVEVAL_SIMD_HAS_AVX2 && cpu_has_avx2()) {
    return AbiKind::avx2;
  }
  if (RVEVAL_SIMD_HAS_SSE2 && cpu_has_sse2()) {
    return AbiKind::sse2;
  }
  return AbiKind::scalar;
}

/// Resolve a user-requested kind: `native` becomes best_kind(); explicit
/// kinds are honoured as-is (an explicit avx2 request on a non-AVX2 build
/// runs the portable fallback of that ABI, see header comment).
[[nodiscard]] inline AbiKind resolve(AbiKind k) {
  return k == AbiKind::native ? best_kind() : k;
}

/// Lane count the resolved kind will actually execute with.
[[nodiscard]] inline int resolved_width(AbiKind k) {
  return requested_width(resolve(k));
}

/// Instantiate \p f once per backend and invoke the one matching \p k.
/// \p f must accept any of the tag types (generic lambda taking the tag by
/// value): `dispatch(kind, [&](auto tag) { kernel<decltype(tag)>(...); })`.
template <typename F>
decltype(auto) dispatch(AbiKind k, F&& f) {
  switch (resolve(k)) {
    case AbiKind::sse2:
      return f(abi::sse2{});
    case AbiKind::avx2:
      return f(abi::avx2{});
    case AbiKind::scalar:
    case AbiKind::native:  // resolve() never returns native; keep -Wswitch happy
      break;
  }
  return f(abi::scalar{});
}

}  // namespace rveval::simd::detect
