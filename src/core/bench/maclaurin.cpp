#include "core/bench/maclaurin.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/perf/flops.hpp"
#include "minihpx/coroutine/task.hpp"
#include "minihpx/execution/sender_receiver.hpp"
#include "minihpx/futures/future.hpp"
#include "minihpx/instrument.hpp"
#include "minihpx/parallel/algorithms.hpp"

namespace rveval::bench {

double maclaurin_chunk(double x, std::uint64_t begin, std::uint64_t end) {
  double sum = 0.0;
  for (std::uint64_t n = begin; n < end; ++n) {
    const double sign = (n % 2 == 1) ? 1.0 : -1.0;
    // Deliberately pow(), not an incremental power: the paper's benchmark
    // is exponentiation-heavy by construction (§8 discusses exactly this
    // software-pow cost).
    sum += sign * std::pow(x, static_cast<double>(n)) /
           static_cast<double>(n);
  }
  mhpx::instrument::annotate(
      perf::term_flops_software * static_cast<double>(end - begin),
      /*bytes=*/0.0);
  return sum;
}

namespace {

struct ChunkPlan {
  std::uint64_t begin;
  std::uint64_t end;
};

std::vector<ChunkPlan> plan_chunks(const MaclaurinConfig& cfg) {
  const std::uint64_t first = 1;  // series index starts at n = 1
  const std::uint64_t last = cfg.terms + 1;
  const std::uint64_t n = last - first;
  const std::uint64_t tasks =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(cfg.tasks, n));
  std::vector<ChunkPlan> plan;
  plan.reserve(tasks);
  const std::uint64_t base = n / tasks;
  const std::uint64_t rem = n % tasks;
  std::uint64_t b = first;
  for (std::uint64_t c = 0; c < tasks; ++c) {
    const std::uint64_t e = b + base + (c < rem ? 1 : 0);
    plan.push_back({b, e});
    b = e;
  }
  return plan;
}

MaclaurinResult finish(const MaclaurinConfig& cfg, double sum) {
  MaclaurinResult r;
  r.sum = sum;
  r.analytic_flops = perf::maclaurin_flops(cfg.terms);
  return r;
}

}  // namespace

MaclaurinResult run_async(const MaclaurinConfig& cfg) {
  const auto plan = plan_chunks(cfg);
  std::vector<mhpx::future<double>> futures;
  futures.reserve(plan.size());
  for (const auto& c : plan) {
    futures.push_back(mhpx::async(
        [x = cfg.x, c] { return maclaurin_chunk(x, c.begin, c.end); }));
  }
  auto ready = mhpx::when_all(std::move(futures)).get();
  double sum = 0.0;
  for (auto& f : ready) {
    sum += f.get();
  }
  return finish(cfg, sum);
}

MaclaurinResult run_parallel_algorithm(const MaclaurinConfig& cfg) {
  const auto plan = plan_chunks(cfg);
  // The parallel algorithm iterates the chunk table; each element visit
  // computes one chunk — the same work decomposition hpx::for_each(par,..)
  // applies internally to the flat term range.
  std::vector<double> partial(plan.size(), 0.0);
  std::vector<std::size_t> index(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    index[i] = i;
  }
  mhpx::for_each(
      mhpx::execution::par.with_chunks(static_cast<unsigned>(plan.size())),
      index.begin(), index.end(), [&](std::size_t i) {
        partial[i] = maclaurin_chunk(cfg.x, plan[i].begin, plan[i].end);
      });
  double sum = 0.0;
  for (const double p : partial) {
    sum += p;
  }
  return finish(cfg, sum);
}

MaclaurinResult run_sender_receiver(const MaclaurinConfig& cfg) {
  const auto plan = plan_chunks(cfg);
  // One schedule|then chain per chunk, joined with when_all_of; mirrors the
  // paper's S&R implementation of the same reduction.
  namespace ex = mhpx::ex;
  double sum = 0.0;
  // Build in groups to keep the variadic join bounded; 8 chunks per join.
  std::size_t i = 0;
  while (i < plan.size()) {
    const std::size_t group = std::min<std::size_t>(8, plan.size() - i);
    std::vector<double> results;
    auto make = [&](std::size_t k) {
      const auto c = plan[i + k];
      return ex::schedule(ex::ambient_sched()) | ex::then([x = cfg.x, c] {
               return maclaurin_chunk(x, c.begin, c.end);
             });
    };
    switch (group) {
      case 8: {
        auto r = ex::sync_wait_one<std::vector<double>>(
            ex::when_all_of<double>(make(0), make(1), make(2), make(3),
                                    make(4), make(5), make(6), make(7)));
        results = std::move(*r);
        break;
      }
      default: {
        for (std::size_t k = 0; k < group; ++k) {
          auto r = ex::sync_wait_one<double>(make(k));
          results.push_back(*r);
        }
        break;
      }
    }
    for (const double v : results) {
      sum += v;
    }
    i += group;
  }
  return finish(cfg, sum);
}

namespace {

mhpx::future<double> coroutine_driver(MaclaurinConfig cfg) {
  const auto plan = plan_chunks(cfg);
  // Launch every chunk eagerly, then co_await the futures in order — the
  // "future + coroutine" composition of Fig. 5.
  std::vector<mhpx::future<double>> futures;
  futures.reserve(plan.size());
  for (const auto& c : plan) {
    futures.push_back(mhpx::async(
        [x = cfg.x, c] { return maclaurin_chunk(x, c.begin, c.end); }));
  }
  double sum = 0.0;
  for (auto& f : futures) {
    sum += co_await std::move(f);
  }
  co_return sum;
}

}  // namespace

MaclaurinResult run_coroutine(const MaclaurinConfig& cfg) {
  return finish(cfg, coroutine_driver(cfg).get());
}

double reference(double x) { return std::log1p(x); }

}  // namespace rveval::bench
