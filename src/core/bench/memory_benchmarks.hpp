#pragma once

/// \file memory_benchmarks.hpp
/// The memory-system benchmarks the paper's conclusion (§8) names as future
/// work for grading RISC-V development boards against HPC-grade devices:
/// STREAM (copy/scale/add/triad), GUPS (random access), and a LINPACK-class
/// dense LU factorisation. All kernels execute for real on the host as
/// minihpx task fan-outs with analytic flop/byte annotations, so the same
/// trace-pricing machinery as Figs. 4-9 grades every modelled CPU.

#include <cstddef>
#include <vector>

#include "minikokkos/view.hpp"

namespace rveval::bench {

/// Working set for the STREAM kernels (three arrays of n doubles).
struct StreamArrays {
  explicit StreamArrays(std::size_t n);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
};

/// One STREAM kernel pass; each annotates its task(s) with the classic
/// byte count (8 B loads/stores per element, write-allocate included):
///   copy  c = a          16 B/elem, 0 flops
///   scale b = s*c        16 B/elem, 1 flop
///   add   c = a + b      24 B/elem, 1 flop
///   triad a = b + s*c    24 B/elem, 2 flops
void stream_copy(StreamArrays& s);
void stream_scale(StreamArrays& s, double scalar);
void stream_add(StreamArrays& s);
void stream_triad(StreamArrays& s, double scalar);

/// STREAM byte counts per element (for rate computation).
inline constexpr double stream_copy_bytes = 16.0;
inline constexpr double stream_scale_bytes = 16.0;
inline constexpr double stream_add_bytes = 24.0;
inline constexpr double stream_triad_bytes = 24.0;

/// GUPS (RandomAccess): xor-update `updates` random slots of a 2^log2_size
/// table. Annotated with one cache-line fetch + write-back per update
/// (128 B of DRAM traffic) — the latency-bound pattern priced through the
/// bandwidth model as HPCC does for grading. Returns a checksum.
std::uint64_t gups_kernel(std::size_t log2_size, std::size_t updates);
inline constexpr double gups_bytes_per_update = 128.0;

/// LINPACK-class: in-place LU factorisation with partial pivoting of an
/// n x n minikokkos View (real numerics; validated against a solve in the
/// tests). Annotates 2/3 n^3 flops. Returns the pivot vector.
std::vector<std::size_t> lu_factor(mkk::View<double, 2>& a);

/// Solve LUx = b given the factorisation (for validation).
std::vector<double> lu_solve(const mkk::View<double, 2>& lu,
                             const std::vector<std::size_t>& pivots,
                             std::vector<double> rhs);

/// LINPACK flop count for order n.
[[nodiscard]] constexpr double lu_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return 2.0 / 3.0 * nd * nd * nd + 2.0 * nd * nd;
}

}  // namespace rveval::bench
