#include "core/bench/memory_benchmarks.hpp"

#include <cmath>
#include <stdexcept>

#include "minihpx/instrument.hpp"
#include "minihpx/parallel/algorithms.hpp"
#include "minihpx/runtime.hpp"

namespace rveval::bench {

namespace {

namespace ex = mhpx::execution;

/// Run body(i) for i in [0, n) as a parallel task fan-out when a runtime is
/// active, inline otherwise. Each element accumulates its cost into the
/// executing task's annotation bucket, so chunk tasks carry exactly their
/// share of the kernel's flops/bytes in the captured trace.
template <typename Body>
void bulk(std::size_t n, double flops_per_elem, double bytes_per_elem,
          Body&& body) {
  auto annotated = [&](std::size_t i) {
    body(i);
    mhpx::instrument::annotate(flops_per_elem, bytes_per_elem);
  };
  if (mhpx::detail::ambient_scheduler() != nullptr) {
    // Plenty of chunks: the captured trace must expose enough task
    // parallelism to fill the widest modelled machine (64 cores), not just
    // the build host's workers.
    mhpx::for_loop(ex::par.with_chunks(128), 0, n, annotated);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      annotated(i);
    }
  }
}

}  // namespace

StreamArrays::StreamArrays(std::size_t n) : a(n, 1.0), b(n, 2.0), c(n, 0.0) {}

void stream_copy(StreamArrays& s) {
  bulk(s.a.size(), 0.0, stream_copy_bytes,
       [&](std::size_t i) { s.c[i] = s.a[i]; });
}

void stream_scale(StreamArrays& s, double scalar) {
  bulk(s.a.size(), 1.0, stream_scale_bytes,
       [&](std::size_t i) { s.b[i] = scalar * s.c[i]; });
}

void stream_add(StreamArrays& s) {
  bulk(s.a.size(), 1.0, stream_add_bytes,
       [&](std::size_t i) { s.c[i] = s.a[i] + s.b[i]; });
}

void stream_triad(StreamArrays& s, double scalar) {
  bulk(s.a.size(), 2.0, stream_triad_bytes,
       [&](std::size_t i) { s.a[i] = s.b[i] + scalar * s.c[i]; });
}

std::uint64_t gups_kernel(std::size_t log2_size, std::size_t updates) {
  const std::size_t size = std::size_t{1} << log2_size;
  const std::size_t mask = size - 1;
  std::vector<std::uint64_t> table(size);
  for (std::size_t i = 0; i < size; ++i) {
    table[i] = i;
  }
  // HPCC-style LCG random stream; sequential by construction (each update
  // depends on the previous random number), so one task.
  std::uint64_t ran = 0x123456789abcdef0ull;
  for (std::size_t u = 0; u < updates; ++u) {
    ran = ran * 6364136223846793005ull + 1442695040888963407ull;
    table[ran & mask] ^= ran;
  }
  mhpx::instrument::annotate(0.0,
                             gups_bytes_per_update *
                                 static_cast<double>(updates));
  std::uint64_t sum = 0;
  for (const std::uint64_t v : table) {
    sum ^= v;
  }
  return sum;
}

std::vector<std::size_t> lu_factor(mkk::View<double, 2>& a) {
  const std::size_t n = a.extent(0);
  if (a.extent(1) != n) {
    throw std::invalid_argument("lu_factor: matrix must be square");
  }
  std::vector<std::size_t> pivots(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t p = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        p = i;
      }
    }
    if (best == 0.0) {
      throw std::runtime_error("lu_factor: singular matrix");
    }
    pivots[k] = p;
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a(k, j), a(p, j));
      }
    }
    const double inv = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) *= inv;
    }
    // Trailing update: the O(n^3) bulk, parallel over rows.
    const std::size_t rows = n - (k + 1);
    if (rows > 0) {
      auto update_row = [&, k](std::size_t r) {
        const std::size_t i = k + 1 + r;
        const double lik = a(i, k);
        for (std::size_t j = k + 1; j < n; ++j) {
          a(i, j) -= lik * a(k, j);
        }
        // 2 flops per updated element; one read + one r/m/w of 8 B each.
        const auto cols = static_cast<double>(n - (k + 1));
        mhpx::instrument::annotate(2.0 * cols, 24.0 * cols);
      };
      if (mhpx::detail::ambient_scheduler() != nullptr && rows >= 32) {
        mhpx::for_loop(ex::par, 0, rows, update_row);
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          update_row(r);
        }
      }
    }
  }
  // Pivot search/swap and column scaling (the O(n^2) remainder).
  mhpx::instrument::annotate(2.0 * static_cast<double>(n) *
                                 static_cast<double>(n),
                             16.0 * static_cast<double>(n) *
                                 static_cast<double>(n));
  return pivots;
}

std::vector<double> lu_solve(const mkk::View<double, 2>& lu,
                             const std::vector<std::size_t>& pivots,
                             std::vector<double> rhs) {
  const std::size_t n = lu.extent(0);
  // Apply pivots.
  for (std::size_t k = 0; k < n; ++k) {
    std::swap(rhs[k], rhs[pivots[k]]);
  }
  // Forward substitution (unit lower).
  for (std::size_t i = 1; i < n; ++i) {
    double s = rhs[i];
    for (std::size_t j = 0; j < i; ++j) {
      s -= lu(i, j) * rhs[j];
    }
    rhs[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      s -= lu(ii, j) * rhs[j];
    }
    rhs[ii] = s / lu(ii, ii);
  }
  return rhs;
}

}  // namespace rveval::bench
