#pragma once

/// \file maclaurin.hpp
/// The paper's shared-memory benchmark (Eq. 1): the Maclaurin series of
/// ln(1+x), implemented four ways on minihpx — asynchronous programming
/// (hpx::async + futures, Fig. 4a), the parallel algorithm (hpx::for_each
/// with par, Fig. 4b), senders & receivers, and future + coroutine
/// (Fig. 5). Every variant computes the identical sum and annotates each
/// chunk task with its analytic FLOP count so a captured trace can be
/// priced on any CPU model.

#include <cstdint>

namespace rveval::bench {

struct MaclaurinConfig {
  /// Series argument, |x| < 1. The paper uses the natural-log series.
  double x = 0.5;
  /// Terms actually executed on the host. The paper runs n = 10^9 on real
  /// boards; benches execute a smaller n and let the simulator scale by the
  /// analytic FLOP count (per-term work is constant).
  std::uint64_t terms = 1'000'000;
  /// Number of chunk tasks to split the series into.
  unsigned tasks = 16;
};

struct MaclaurinResult {
  double sum = 0.0;          ///< computed series value (≈ ln(1+x))
  double analytic_flops = 0.0;  ///< software-exponentiation FLOP count
};

/// Sum of terms [begin, end) of the series; annotates the current task
/// with the chunk's analytic FLOPs.
double maclaurin_chunk(double x, std::uint64_t begin, std::uint64_t end);

/// Fig. 4a variant: one mhpx::async per chunk, joined with when_all.
MaclaurinResult run_async(const MaclaurinConfig& cfg);

/// Fig. 4b variant: the parallel algorithm with the par execution policy
/// (chunked exactly like hpx::for_each(par, ...)).
MaclaurinResult run_parallel_algorithm(const MaclaurinConfig& cfg);

/// Fig. 5 variant A: senders & receivers (schedule | then per chunk,
/// joined with when_all).
MaclaurinResult run_sender_receiver(const MaclaurinConfig& cfg);

/// Fig. 5 variant B: future + coroutine (co_await per chunk future).
MaclaurinResult run_coroutine(const MaclaurinConfig& cfg);

/// Reference value ln(1+x) for validation.
double reference(double x);

}  // namespace rveval::bench
