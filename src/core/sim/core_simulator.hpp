#pragma once

/// \file core_simulator.hpp
/// Discrete-event pricing of a captured trace on a modelled architecture.
///
/// Given a Phase (tasks with flops/bytes, parcels with bytes) and a CpuModel
/// with k cores, the simulator computes the phase's wall time as it would
/// unfold on that machine:
///
///   task time  t_i = spawn_overhead + max(flops_i / scalar_rate,
///                                         bytes_i  / per_core_bandwidth)
///   compute    = LPT list-scheduling makespan of {t_i} on k cores,
///                bounded below by total_bytes / node_bandwidth (the roofline
///                memory ceiling applies to the aggregate, not per core)
///   comm       = sum over incoming parcels of the network model's
///                message_seconds (per destination locality)
///   phase time = per locality: compute + (1 - overlap) * comm, where the
///                overlap fraction grows with parallel slack (tasks >> cores
///                means the AMT hides communication behind computation, the
///                mechanism §3.3 of the paper describes).
///
/// Everything in the formula is a measured trace quantity or a documented
/// model constant — see DESIGN.md §4.

#include <cstdint>
#include <vector>

#include "core/arch/cpu_model.hpp"
#include "core/arch/network_model.hpp"
#include "core/sim/trace.hpp"

namespace rveval::sim {

/// Brent's-theorem floor on a run's wall time: with total work T1 (seconds
/// of busy task time) and span T_inf (the observed critical path, from
/// mhpx::apex::analyze), no schedule on \p cores cores beats
/// max(T1/cores, T_inf). The observability bench (A8) prices its measured
/// trace through this to report the speedup ceiling tracing reveals.
[[nodiscard]] double span_lower_bound(double total_seconds,
                                      double span_seconds,
                                      unsigned cores) noexcept;

/// Options for pricing one phase.
struct SimOptions {
  unsigned cores = 1;  ///< cores used per locality
  /// Multiplier on the scalar FLOP rate for this workload's kernels.
  /// 1.0 for scalar code (the Maclaurin pow-chain — paper §6.1 saw no
  /// vectorisation effect); cpu.simd_kernel_speedup for explicitly
  /// SIMD-typed kernels (the Octo-Tiger Kokkos kernels).
  double simd_speedup = 1.0;
  /// Charge the per-task spawn overhead (on by default; the ablation bench
  /// switches it off to isolate runtime overhead).
  bool charge_spawn_overhead = true;
};

/// Result of pricing one phase on one locality set.
struct PhaseCost {
  double compute_seconds = 0.0;  ///< max over localities
  double comm_seconds = 0.0;     ///< max over localities
  double total_seconds = 0.0;    ///< modelled wall time of the phase
};

class CoreSimulator {
 public:
  explicit CoreSimulator(arch::CpuModel cpu) : cpu_(std::move(cpu)) {}

  [[nodiscard]] const arch::CpuModel& cpu() const noexcept { return cpu_; }

  /// Price the time of one task on this CPU.
  [[nodiscard]] double task_seconds(const TaskRecord& task,
                                    const SimOptions& opt) const;

  /// LPT makespan of a task set on opt.cores cores, with the aggregate
  /// memory-bandwidth ceiling applied.
  [[nodiscard]] double compute_makespan(const std::vector<TaskRecord>& tasks,
                                        const SimOptions& opt) const;

  /// Price a single-locality phase (ignores parcels).
  [[nodiscard]] PhaseCost simulate(const Phase& phase,
                                   const SimOptions& opt) const;

  /// Price a multi-locality phase: every locality computes its own tasks on
  /// opt.cores cores; incoming parcels cost network time; computation and
  /// communication overlap in proportion to parallel slack.
  [[nodiscard]] PhaseCost simulate_distributed(
      const Phase& phase, unsigned num_localities,
      const arch::NetworkModel& net, const SimOptions& opt) const;

  /// Sum of simulate() over phases (phases are sequential by construction:
  /// a new phase begins only after the previous one's joins completed).
  [[nodiscard]] double total_seconds(const std::vector<Phase>& phases,
                                     const SimOptions& opt) const;

  /// Sum of simulate_distributed() over phases.
  [[nodiscard]] double total_seconds_distributed(
      const std::vector<Phase>& phases, unsigned num_localities,
      const arch::NetworkModel& net, const SimOptions& opt) const;

 private:
  arch::CpuModel cpu_;
};

}  // namespace rveval::sim
