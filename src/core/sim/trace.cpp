#include "core/sim/trace.hpp"

#include <utility>

namespace rveval::sim {

double Phase::total_flops() const {
  double f = 0.0;
  for (const auto& t : tasks) {
    f += t.flops;
  }
  return f;
}

double Phase::total_task_bytes() const {
  double b = 0.0;
  for (const auto& t : tasks) {
    b += t.bytes;
  }
  return b;
}

std::size_t Phase::total_parcel_bytes() const {
  std::size_t b = 0;
  for (const auto& p : parcels) {
    b += p.bytes;
  }
  return b;
}

std::vector<TaskRecord> Phase::tasks_of(std::uint32_t locality) const {
  std::vector<TaskRecord> out;
  for (const auto& t : tasks) {
    if (t.locality == locality) {
      out.push_back(t);
    }
  }
  return out;
}

std::vector<ParcelRecord> Phase::parcels_to(std::uint32_t locality) const {
  std::vector<ParcelRecord> out;
  for (const auto& p : parcels) {
    if (p.destination == locality) {
      out.push_back(p);
    }
  }
  return out;
}

TraceCollector::TraceCollector() : previous_(mhpx::instrument::hooks()) {
  current_.name = "default";
  current_open_ = true;
  mhpx::instrument::Hooks hooks;
  hooks.ctx = this;
  hooks.on_task_finish = &TraceCollector::hook_task_finish;
  hooks.on_parcel = &TraceCollector::hook_parcel;
  hooks.on_task_retry = &TraceCollector::hook_task_retry;
  hooks.on_parcel_dropped = &TraceCollector::hook_parcel_dropped;
  hooks.on_recovery = &TraceCollector::hook_recovery;
  mhpx::instrument::set_hooks(hooks);
}

TraceCollector::~TraceCollector() { mhpx::instrument::set_hooks(previous_); }

void TraceCollector::map_scheduler(const mhpx::threads::Scheduler* sched,
                                   std::uint32_t id) {
  std::lock_guard lk(mutex_);
  scheduler_map_[sched] = id;
}

void TraceCollector::begin_phase(std::string name) {
  std::lock_guard lk(mutex_);
  if (current_open_ && (!current_.tasks.empty() || !current_.parcels.empty())) {
    phases_.push_back(std::move(current_));
  }
  current_ = Phase{};
  current_.name = std::move(name);
  current_open_ = true;
}

std::vector<Phase> TraceCollector::finish() {
  std::lock_guard lk(mutex_);
  if (current_open_ && (!current_.tasks.empty() || !current_.parcels.empty())) {
    phases_.push_back(std::move(current_));
  }
  current_ = Phase{};
  current_open_ = false;
  return std::move(phases_);
}

std::size_t TraceCollector::tasks_recorded() const {
  std::lock_guard lk(mutex_);
  return task_count_;
}

std::size_t TraceCollector::parcels_recorded() const {
  std::lock_guard lk(mutex_);
  return parcel_count_;
}

void TraceCollector::hook_task_finish(void* ctx,
                                      const mhpx::instrument::TaskWork& w) {
  static_cast<TraceCollector*>(ctx)->on_task_finish(w);
}

void TraceCollector::hook_parcel(void* ctx, std::uint32_t src,
                                 std::uint32_t dst, std::size_t bytes) {
  static_cast<TraceCollector*>(ctx)->on_parcel(src, dst, bytes);
}

void TraceCollector::on_task_finish(const mhpx::instrument::TaskWork& w) {
  // The hook runs on the worker thread that retired the task, so the
  // current scheduler identifies the owning locality.
  const auto* sched = mhpx::threads::Scheduler::current();
  std::lock_guard lk(mutex_);
  TaskRecord rec;
  rec.flops = w.flops;
  rec.bytes = w.bytes;
  const auto it = scheduler_map_.find(sched);
  rec.locality = it != scheduler_map_.end() ? it->second : 0;
  current_.tasks.push_back(rec);
  ++task_count_;
}

void TraceCollector::on_parcel(std::uint32_t src, std::uint32_t dst,
                               std::size_t bytes) {
  std::lock_guard lk(mutex_);
  current_.parcels.push_back(ParcelRecord{src, dst, bytes});
  ++parcel_count_;
}

void TraceCollector::hook_task_retry(void* ctx, std::uint32_t attempt) {
  (void)attempt;
  auto* self = static_cast<TraceCollector*>(ctx);
  std::lock_guard lk(self->mutex_);
  ++self->current_.task_retries;
}

void TraceCollector::hook_parcel_dropped(void* ctx, std::uint32_t src,
                                         std::uint32_t dst,
                                         std::size_t bytes) {
  (void)src;
  (void)dst;
  (void)bytes;
  auto* self = static_cast<TraceCollector*>(ctx);
  std::lock_guard lk(self->mutex_);
  ++self->current_.parcels_dropped;
}

void TraceCollector::hook_recovery(void* ctx, std::uint32_t locality) {
  (void)locality;
  auto* self = static_cast<TraceCollector*>(ctx);
  std::lock_guard lk(self->mutex_);
  ++self->current_.recoveries;
}

}  // namespace rveval::sim
