#include "core/sim/core_simulator.hpp"

#include <algorithm>
#include <queue>

namespace rveval::sim {

namespace {
constexpr double gib = 1024.0 * 1024.0 * 1024.0;
}

double span_lower_bound(double total_seconds, double span_seconds,
                        unsigned cores) noexcept {
  const double work = std::max(0.0, total_seconds);
  const double span = std::max(0.0, span_seconds);
  return std::max(work / static_cast<double>(std::max(1u, cores)), span);
}

double CoreSimulator::task_seconds(const TaskRecord& task,
                                   const SimOptions& opt) const {
  const double rate = cpu_.scalar_flops_per_core() * opt.simd_speedup;
  const double compute = task.flops / rate;
  // Per-core slice of the node bandwidth: a single in-flight task cannot
  // saturate more than its share when all cores stream simultaneously.
  const double per_core_bw =
      cpu_.mem_bw_gib * gib / std::max(1u, opt.cores);
  const double memory = task.bytes / per_core_bw;
  double t = std::max(compute, memory);
  if (opt.charge_spawn_overhead) {
    t += arch::runtime_overheads(cpu_).task_spawn_seconds;
  }
  return t;
}

double CoreSimulator::compute_makespan(const std::vector<TaskRecord>& tasks,
                                       const SimOptions& opt) const {
  if (tasks.empty()) {
    return 0.0;
  }
  const unsigned cores = std::max(1u, opt.cores);

  std::vector<double> costs;
  costs.reserve(tasks.size());
  double total_flop_time = 0.0;
  double total_bytes = 0.0;
  for (const auto& t : tasks) {
    const double c = task_seconds(t, opt);
    costs.push_back(c);
    total_flop_time += c;
    total_bytes += t.bytes;
  }

  double makespan = 0.0;
  if (cores == 1) {
    makespan = total_flop_time;
  } else {
    // Longest-processing-time list scheduling: sort descending, always give
    // the next task to the least-loaded core. Within 4/3 of optimal, and an
    // excellent stand-in for a greedy work-stealing runtime.
    std::sort(costs.begin(), costs.end(), std::greater<>());
    std::priority_queue<double, std::vector<double>, std::greater<>> loads;
    for (unsigned c = 0; c < cores; ++c) {
      loads.push(0.0);
    }
    for (const double c : costs) {
      double least = loads.top();
      loads.pop();
      loads.push(least + c);
    }
    while (loads.size() > 1) {
      loads.pop();
    }
    makespan = loads.top();
  }

  // Aggregate roofline ceiling: all cores together cannot move data faster
  // than the node's memory system.
  const double mem_floor = total_bytes / (cpu_.mem_bw_gib * gib);
  return std::max(makespan, mem_floor);
}

PhaseCost CoreSimulator::simulate(const Phase& phase,
                                  const SimOptions& opt) const {
  PhaseCost cost;
  cost.compute_seconds = compute_makespan(phase.tasks, opt);
  cost.comm_seconds = 0.0;
  cost.total_seconds = cost.compute_seconds;
  return cost;
}

PhaseCost CoreSimulator::simulate_distributed(const Phase& phase,
                                              unsigned num_localities,
                                              const arch::NetworkModel& net,
                                              const SimOptions& opt) const {
  PhaseCost cost;
  for (std::uint32_t loc = 0; loc < num_localities; ++loc) {
    const auto tasks = phase.tasks_of(loc);
    const double compute = compute_makespan(tasks, opt);

    double comm = 0.0;
    for (const auto& p : phase.parcels_to(loc)) {
      if (p.source == p.destination) {
        continue;  // local delivery never touches the wire
      }
      comm += net.message_seconds(p.bytes);
    }

    // Overlap: with s = tasks per core of slack, the runtime can hide
    // communication behind ready tasks; overlap -> 1 as s grows. s <= 1
    // means no spare work, so communication serialises fully.
    const double slack = tasks.empty()
                             ? 0.0
                             : static_cast<double>(tasks.size()) /
                                   std::max(1u, opt.cores);
    const double overlap =
        slack <= 1.0 ? 0.0 : std::min(0.9, 1.0 - 1.0 / slack);
    const double hidden = std::min(comm * overlap, compute);
    const double total = compute + comm - hidden;

    cost.compute_seconds = std::max(cost.compute_seconds, compute);
    cost.comm_seconds = std::max(cost.comm_seconds, comm);
    cost.total_seconds = std::max(cost.total_seconds, total);
  }
  return cost;
}

double CoreSimulator::total_seconds(const std::vector<Phase>& phases,
                                    const SimOptions& opt) const {
  double t = 0.0;
  for (const auto& p : phases) {
    t += simulate(p, opt).total_seconds;
  }
  return t;
}

double CoreSimulator::total_seconds_distributed(
    const std::vector<Phase>& phases, unsigned num_localities,
    const arch::NetworkModel& net, const SimOptions& opt) const {
  double t = 0.0;
  for (const auto& p : phases) {
    t += simulate_distributed(p, num_localities, net, opt).total_seconds;
  }
  return t;
}

}  // namespace rveval::sim
