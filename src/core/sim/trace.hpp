#pragma once

/// \file trace.hpp
/// Workload trace capture.
///
/// Benchmarks run the *real* code (minihpx tasks, minikokkos kernels, the
/// Octo-Tiger miniapp) on the build host; a TraceCollector hooks into the
/// runtime's instrumentation layer and records, per phase:
///   - every task with its annotated arithmetic (flops) and memory traffic
///     (bytes), attributed to the locality whose scheduler ran it;
///   - every parcel with its byte count and (src, dst) localities.
/// The discrete-event simulator (core_simulator.hpp) then prices a phase on
/// a modelled architecture. This two-step design keeps the numbers honest:
/// the task graph and message volume are measured, only the hardware is
/// modelled (DESIGN.md §1).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "minihpx/instrument.hpp"
#include "minihpx/threads/scheduler.hpp"

namespace rveval::sim {

/// One finished task's cost annotations.
struct TaskRecord {
  double flops = 0.0;
  double bytes = 0.0;
  std::uint32_t locality = 0;
};

/// One parcel.
struct ParcelRecord {
  std::uint32_t source = 0;
  std::uint32_t destination = 0;
  std::size_t bytes = 0;
};

/// All work observed between two phase marks.
struct Phase {
  std::string name;
  std::vector<TaskRecord> tasks;
  std::vector<ParcelRecord> parcels;
  /// Resilience events inside the phase: how much of its task count was
  /// re-execution (replay/backoff), how many parcels the fault layer ate,
  /// and whether a locality recovery ran — the trace-level view of
  /// resilience overhead.
  std::uint64_t task_retries = 0;
  std::uint64_t parcels_dropped = 0;
  std::uint64_t recoveries = 0;

  [[nodiscard]] double total_flops() const;
  [[nodiscard]] double total_task_bytes() const;
  [[nodiscard]] std::size_t total_parcel_bytes() const;
  /// Tasks attributed to one locality.
  [[nodiscard]] std::vector<TaskRecord> tasks_of(std::uint32_t locality) const;
  /// Parcels addressed to one locality.
  [[nodiscard]] std::vector<ParcelRecord> parcels_to(
      std::uint32_t locality) const;
};

/// RAII trace collector: installs itself as the global instrumentation hook
/// table on construction and restores the previous table on destruction.
/// Only one collector may be active at a time.
class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Attribute tasks executed by \p sched to locality \p id. Unregistered
  /// schedulers are attributed to locality 0.
  void map_scheduler(const mhpx::threads::Scheduler* sched, std::uint32_t id);

  /// Close the current phase (if non-empty) and open a new one.
  void begin_phase(std::string name);

  /// Close the current phase and return all recorded phases.
  std::vector<Phase> finish();

  /// Live statistics (for tests / progress output).
  [[nodiscard]] std::size_t tasks_recorded() const;
  [[nodiscard]] std::size_t parcels_recorded() const;

 private:
  static void hook_task_finish(void* ctx, const mhpx::instrument::TaskWork& w);
  static void hook_parcel(void* ctx, std::uint32_t src, std::uint32_t dst,
                          std::size_t bytes);
  static void hook_task_retry(void* ctx, std::uint32_t attempt);
  static void hook_parcel_dropped(void* ctx, std::uint32_t src,
                                  std::uint32_t dst, std::size_t bytes);
  static void hook_recovery(void* ctx, std::uint32_t locality);

  void on_task_finish(const mhpx::instrument::TaskWork& w);
  void on_parcel(std::uint32_t src, std::uint32_t dst, std::size_t bytes);

  mutable std::mutex mutex_;  // guards everything below
  std::map<const mhpx::threads::Scheduler*, std::uint32_t> scheduler_map_;
  std::vector<Phase> phases_;
  Phase current_;
  bool current_open_ = false;
  std::size_t task_count_ = 0;
  std::size_t parcel_count_ = 0;

  mhpx::instrument::Hooks previous_;
};

}  // namespace rveval::sim
