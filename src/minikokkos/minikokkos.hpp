#pragma once

/// \file minikokkos.hpp
/// Umbrella header: the full public API of the minikokkos portability
/// layer (Views, execution spaces, parallel dispatch, scan, atomics, SIMD).

#include "minikokkos/device.hpp"
#include "minikokkos/hpx_integration.hpp"
#include "minikokkos/parallel.hpp"
#include "minikokkos/scan_atomic.hpp"
#include "minikokkos/simd.hpp"
#include "minikokkos/spaces.hpp"
#include "minikokkos/team.hpp"
#include "minikokkos/view.hpp"
