#pragma once

/// \file spaces.hpp
/// Execution spaces — where a minikokkos kernel runs.
///
/// The paper (§3.2, §6.2.1) compares three ways of running the Octo-Tiger
/// Kokkos kernels on the RISC-V CPU:
///   - Serial execution space: one core executes the kernel; multicore use
///     still emerges because many kernels run concurrently (one per
///     sub-grid);
///   - HPX execution space: the kernel is split into HPX tasks on the HPX
///     worker threads, avoiding a conflicting thread pool;
///   - (for contrast) a plain Threads space that forks its own OS threads —
///     the "conflicting thread pools" configuration the paper warns about
///     when mixing OpenMP with HPX.
/// All three are implemented here behind one dispatch interface.

#include <cstddef>
#include <string_view>
#include <thread>
#include <vector>

namespace mkk {

/// Run the kernel inline on the calling thread.
struct Serial {
  static constexpr std::string_view name() { return "Serial"; }
};

/// Fork-join over dedicated OS threads per dispatch (OpenMP-like). Creates
/// and joins threads on every call — deliberately naive, mirroring how a
/// foreign thread pool conflicts with an AMT runtime's workers.
struct Threads {
  unsigned num_threads = 0;  ///< 0 = hardware_concurrency
  static constexpr std::string_view name() { return "Threads"; }
};

/// Split the kernel into tasks on the ambient minihpx scheduler — the
/// Kokkos-HPX execution space the paper's Fig. 7 benchmarks.
struct Hpx {
  /// Tasks per dispatch; 0 = 4 × worker count. This is the "fine-grained
  /// control regarding the number of tasks required for each kernel" the
  /// paper highlights.
  unsigned chunks = 0;
  static constexpr std::string_view name() { return "Hpx"; }
};

namespace detail {

template <typename T>
struct is_execution_space : std::false_type {};
template <>
struct is_execution_space<Serial> : std::true_type {};
template <>
struct is_execution_space<Threads> : std::true_type {};
template <>
struct is_execution_space<Hpx> : std::true_type {};

}  // namespace detail

/// Host kernel flavour selection, mirroring Octo-Tiger's
/// --xxx_host_kernel_type={LEGACY,KOKKOS} command-line switches
/// (paper Listings 2–3).
enum class KernelType {
  legacy,          ///< old pure-HPX kernel implementations
  kokkos_serial,   ///< minikokkos kernels on the Serial space
  kokkos_hpx,      ///< minikokkos kernels on the Hpx space
  kokkos_device,   ///< minikokkos kernels on the modelled Device streams
  /// Device placement through the ReplayDevice resilient space: injected
  /// device kernel faults are detected and the launch replayed.
  kokkos_device_replay,
};

[[nodiscard]] constexpr std::string_view to_string(KernelType k) {
  switch (k) {
    case KernelType::legacy:
      return "legacy-hpx";
    case KernelType::kokkos_serial:
      return "kokkos-serial";
    case KernelType::kokkos_hpx:
      return "kokkos-hpx";
    case KernelType::kokkos_device:
      return "kokkos-device";
    case KernelType::kokkos_device_replay:
      return "kokkos-device-replay";
  }
  return "?";
}

}  // namespace mkk
