#pragma once

/// \file view.hpp
/// mkk::View — the minikokkos analogue of Kokkos::View.
///
/// A View is a reference-counted, multi-dimensional array with a
/// compile-time rank and a configurable memory layout. Compute kernels in
/// the Octo-Tiger miniapp take Views, exactly as the paper describes for the
/// real code ("compute kernels written with Kokkos, using Kokkos Views as
/// data-structures").
///
/// Supported: ranks 1–4, LayoutRight (C order, default) and LayoutLeft
/// (Fortran order), deep_copy, fill, and contiguous leading-dimension
/// subviews for LayoutRight.
///
/// Memory spaces: a View carries a MemSpace tag (HostSpace by default).
/// DeviceSpace views are "device-resident" in the modelled sense of
/// DESIGN.md §9 — physically host memory, so kernels really execute, but
/// semantically on the other side of a priced host<->device link: the
/// same-space deep_copy below stays a plain element copy, while the
/// cross-space deep_copy / async_deep_copy / create_mirror_view overloads
/// (minikokkos/device.hpp) route through the link-bandwidth model.

#include <array>
#include <cassert>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#if !defined(NDEBUG)
#include "minihpx/testing/annotate.hpp"
#endif

namespace mkk {

/// C ordering: the last index is stride-1.
struct LayoutRight {};
/// Fortran ordering: the first index is stride-1.
struct LayoutLeft {};

/// Host memory space (default): directly accessible, no pricing.
struct HostSpace {
  static constexpr std::string_view name() { return "Host"; }
};
/// Modelled device memory space: allocations tagged as device-resident;
/// transfers to/from HostSpace are priced on the accelerator link model.
struct DeviceSpace {
  static constexpr std::string_view name() { return "Device"; }
};

namespace detail {

template <std::size_t Rank>
std::size_t product(const std::array<std::size_t, Rank>& dims) {
  std::size_t p = 1;
  for (const std::size_t d : dims) {
    p *= d;
  }
  return p;
}

template <typename Layout, std::size_t Rank>
std::array<std::size_t, Rank> make_strides(
    const std::array<std::size_t, Rank>& dims) {
  std::array<std::size_t, Rank> s{};
  if constexpr (std::is_same_v<Layout, LayoutRight>) {
    std::size_t acc = 1;
    for (std::size_t d = Rank; d-- > 0;) {
      s[d] = acc;
      acc *= dims[d];
    }
  } else {
    std::size_t acc = 1;
    for (std::size_t d = 0; d < Rank; ++d) {
      s[d] = acc;
      acc *= dims[d];
    }
  }
  return s;
}

}  // namespace detail

/// Multi-dimensional array view with shared ownership.
template <typename T, std::size_t Rank, typename Layout = LayoutRight,
          typename MemSpace = HostSpace>
class View {
  static_assert(Rank >= 1 && Rank <= 4, "mkk::View supports ranks 1..4");

 public:
  using value_type = T;
  using layout_type = Layout;
  using memory_space = MemSpace;
  static constexpr std::size_t rank = Rank;

  View() = default;

  /// Allocate a zero-initialised view with the given label and extents.
  template <typename... Extents>
    requires(sizeof...(Extents) == Rank &&
             (std::is_convertible_v<Extents, std::size_t> && ...))
  explicit View(std::string label, Extents... extents)
      : label_(std::move(label)),
        dims_{static_cast<std::size_t>(extents)...},
        strides_(detail::make_strides<Layout, Rank>(dims_)),
        size_(detail::product<Rank>(dims_)),
        data_(size_ > 0 ? std::shared_ptr<T[]>(new T[size_]{})
                        : std::shared_ptr<T[]>{}) {}

  /// Wrap an existing allocation (used by subview).
  View(std::string label, std::shared_ptr<T[]> data,
       std::array<std::size_t, Rank> dims,
       std::array<std::size_t, Rank> strides, T* origin)
      : label_(std::move(label)),
        dims_(dims),
        strides_(strides),
        size_(detail::product<Rank>(dims)),
        data_(std::move(data)),
        origin_(origin) {}

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::size_t extent(std::size_t d) const {
    assert(d < Rank);
    return dims_[d];
  }
  [[nodiscard]] std::size_t stride(std::size_t d) const {
    assert(d < Rank);
    return strides_[d];
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool allocated() const noexcept { return data_ != nullptr; }

  /// Raw pointer to the first element (layout origin).
  [[nodiscard]] T* data() const noexcept {
    return origin_ != nullptr ? origin_ : data_.get();
  }

  /// Element access: v(i), v(i,j), ...
  template <typename... Is>
    requires(sizeof...(Is) == Rank &&
             (std::is_convertible_v<Is, std::size_t> && ...))
  T& operator()(Is... is) const {
    const std::array<std::size_t, Rank> idx{static_cast<std::size_t>(is)...};
    std::size_t offset = 0;
    for (std::size_t d = 0; d < Rank; ++d) {
      assert(idx[d] < dims_[d] && "mkk::View: index out of bounds");
      offset += idx[d] * strides_[d];
    }
#if !defined(NDEBUG)
    // Feed the happens-before race checker; no-op unless a det_run with
    // annotate_views is active (one relaxed atomic load otherwise).
    mhpx::testing::annotate_view_access(data() + offset);
#endif
    return data()[offset];
  }

  /// Set every element to \p value.
  void fill(const T& value) const {
    // Walk in layout order; for owned (non-sub) views this is contiguous.
    T* p = data();
    if (contiguous()) {
      for (std::size_t i = 0; i < size_; ++i) {
        p[i] = value;
      }
    } else {
      for_each_index([&](auto... is) { (*this)(is...) = value; });
    }
  }

  /// True when elements occupy one contiguous block in memory.
  [[nodiscard]] bool contiguous() const {
    auto expect = detail::make_strides<Layout, Rank>(dims_);
    return expect == strides_;
  }

  /// Rank-reducing subview: fix the leading index (LayoutRight only, where
  /// the resulting block is contiguous) — how Octo-Tiger slices per-field
  /// planes out of a sub-grid.
  [[nodiscard]] View<T, Rank - 1, Layout, MemSpace> subview(
      std::size_t leading) const
    requires(Rank >= 2 && std::is_same_v<Layout, LayoutRight>)
  {
    if (leading >= dims_[0]) {
      throw std::out_of_range("mkk::View::subview: index out of range");
    }
    std::array<std::size_t, Rank - 1> dims{};
    std::array<std::size_t, Rank - 1> strides{};
    for (std::size_t d = 1; d < Rank; ++d) {
      dims[d - 1] = dims_[d];
      strides[d - 1] = strides_[d];
    }
    return View<T, Rank - 1, Layout, MemSpace>(
        label_ + "/sub", data_, dims, strides,
        data() + leading * strides_[0]);
  }

  /// Visit every index tuple (row-major order of the logical index space).
  template <typename F>
  void for_each_index(F&& f) const {
    if constexpr (Rank == 1) {
      for (std::size_t i = 0; i < dims_[0]; ++i) {
        f(i);
      }
    } else if constexpr (Rank == 2) {
      for (std::size_t i = 0; i < dims_[0]; ++i) {
        for (std::size_t j = 0; j < dims_[1]; ++j) {
          f(i, j);
        }
      }
    } else if constexpr (Rank == 3) {
      for (std::size_t i = 0; i < dims_[0]; ++i) {
        for (std::size_t j = 0; j < dims_[1]; ++j) {
          for (std::size_t k = 0; k < dims_[2]; ++k) {
            f(i, j, k);
          }
        }
      }
    } else {
      for (std::size_t i = 0; i < dims_[0]; ++i) {
        for (std::size_t j = 0; j < dims_[1]; ++j) {
          for (std::size_t k = 0; k < dims_[2]; ++k) {
            for (std::size_t l = 0; l < dims_[3]; ++l) {
              f(i, j, k, l);
            }
          }
        }
      }
    }
  }

  /// Views compare equal when they alias the same data and shape.
  friend bool operator==(const View& a, const View& b) {
    return a.data() == b.data() && a.dims_ == b.dims_ &&
           a.strides_ == b.strides_;
  }

 private:
  std::string label_;
  std::array<std::size_t, Rank> dims_{};
  std::array<std::size_t, Rank> strides_{};
  std::size_t size_ = 0;
  std::shared_ptr<T[]> data_;
  T* origin_ = nullptr;  // non-null for subviews
};

/// Element-wise copy between same-space views of identical shape (any
/// layouts). Cross-space copies live in minikokkos/device.hpp, where they
/// are priced on the modelled host<->device link.
template <typename T, std::size_t Rank, typename LDst, typename LSrc,
          typename MSpace>
void deep_copy(const View<T, Rank, LDst, MSpace>& dst,
               const View<T, Rank, LSrc, MSpace>& src) {
  for (std::size_t d = 0; d < Rank; ++d) {
    if (dst.extent(d) != src.extent(d)) {
      throw std::invalid_argument("mkk::deep_copy: extent mismatch");
    }
  }
  src.for_each_index([&](auto... is) { dst(is...) = src(is...); });
}

/// Fill a view with one value (Kokkos::deep_copy(view, value) analogue).
template <typename T, std::size_t Rank, typename L, typename M>
void deep_copy(const View<T, Rank, L, M>& dst, const T& value) {
  dst.fill(value);
}

}  // namespace mkk
