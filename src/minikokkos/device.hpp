#pragma once

/// \file device.hpp
/// mkk::Device — modelled device execution: streams, mirrors, resilience.
///
/// The paper's outlook (§8) is RISC-V nodes with attached accelerators;
/// Octo-Tiger itself runs its Kokkos kernels on CUDA/HIP/SYCL devices
/// through the hpx-kokkos executor bridge. This subsystem reproduces that
/// programming model — without requiring a GPU — the same way core/arch
/// models CPUs: kernels *really execute* (on host-resident memory, so
/// results are bit-identical to the Serial space and every test can assert
/// on them) while their cost is *priced* on an AcceleratorModel and laid
/// onto a modelled device timeline.
///
/// The pieces, mirroring the CUDA/Kokkos vocabulary:
///
///   - DeviceExec: an asynchronous execution space. Dispatches enqueue onto
///     one of a fixed set of *streams*; ops on one stream run FIFO, ops on
///     different streams are unordered (and their modelled intervals
///     overlap). Completion is observed with events and fences, CUDA-style.
///   - DeviceSpace views + create_mirror_view + deep_copy/async_deep_copy
///     (the SNIPPETS §3 shape): cross-space copies are priced on the
///     modelled PCIe/link bandwidth; the async overload returns an
///     mhpx::future so transfers overlap host compute.
///   - ReplayDevice / ReplicateDevice: resilient device spaces composing
///     with mhpx::resilience::FaultInjector. Injected device faults
///     (corrupted launch, stuck stream) are detected and the launch
///     replayed — bit-identically, because the body re-executes the same
///     serial loop over the same inputs.
///
/// Error model: a failed op never poisons its stream's FIFO chain; the
/// first failure is latched and rethrown from the next fence() — the
/// cudaDeviceSynchronize error-reporting convention.
///
/// Energy: every op accrues modelled joules (DevicePowerModel watts x
/// modelled seconds), exported through the /power/<loc>/device-energy-j
/// counter and the per-op timeline the fig9 bench prices kernels from.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/arch/accelerator_model.hpp"
#include "core/power/energy.hpp"
#include "minihpx/apex/counters.hpp"
#include "minihpx/apex/histogram.hpp"
#include "minihpx/apex/task_trace.hpp"
#include "minihpx/futures/future.hpp"
#include "minihpx/instrument.hpp"
#include "minihpx/resilience/fault_injector.hpp"
#include "minihpx/resilience/resilience.hpp"
#include "minikokkos/parallel.hpp"
#include "minikokkos/view.hpp"

namespace mkk {

// ------------------------------------------------------------- spaces

/// Asynchronous device execution space: dispatches enqueue on `stream` and
/// return immediately; order is FIFO per stream, concurrent across streams.
/// `flops`/`bytes` are optional per-launch work hints for the cost model
/// (0 = a conservative per-iteration heuristic).
struct DeviceExec {
  unsigned stream = 0;
  double flops = 0.0;  ///< modelled work of one launch; 0 = heuristic
  double bytes = 0.0;  ///< modelled traffic of one launch; 0 = heuristic
  /// Optional interned timeline label (e.g. "hydro.rhs"); null uses the
  /// generic "mkk::parallel_for<Device>" label.
  const char* label = nullptr;
  static constexpr std::string_view name() { return "Device"; }
};

/// Resilient device space: replay a faulted launch up to `replays` attempts
/// (the device analogue of ReplayHpx — hkr's ResilientReplay on a device
/// executor). The optional validator runs after each attempt; returning
/// false forces a re-launch.
struct ReplayDevice {
  DeviceExec base{};
  unsigned replays = 3;  ///< total attempts per launch
  std::function<bool()> validator;
  static constexpr std::string_view name() { return "ReplayDevice"; }
};

/// Resilient device space: launch each kernel `replicas` times and (for
/// reductions) take the bitwise-majority result — silent device-side
/// corruption of a minority of replicas is outvoted.
struct ReplicateDevice {
  DeviceExec base{};
  unsigned replicas = 3;  ///< copies per launch (use an odd count)
  static constexpr std::string_view name() { return "ReplicateDevice"; }
};

namespace detail {
template <>
struct is_execution_space<DeviceExec> : std::true_type {};
template <>
struct is_execution_space<ReplayDevice> : std::true_type {};
template <>
struct is_execution_space<ReplicateDevice> : std::true_type {};
}  // namespace detail

namespace device {

/// An injected device-side failure, surfaced as an exception from the op
/// body so the replay machinery treats it like any other task fault.
struct device_fault : std::runtime_error {
  enum class Kind {
    corrupted_launch,  ///< launch never ran (bad descriptor / ECC trap)
    stuck_stream,      ///< kernel hung; watchdog killed it after a stall
  };
  Kind kind;
  explicit device_fault(Kind k)
      : std::runtime_error(k == Kind::corrupted_launch
                               ? "device fault: corrupted kernel launch"
                               : "device fault: stuck stream (watchdog)"),
        kind(k) {}
};

/// One completed op on the modelled device timeline.
struct OpRecord {
  enum class Kind { kernel, copy_h2d, copy_d2h, event, wait };
  Kind kind = Kind::kernel;
  const char* name = "";
  unsigned stream = 0;
  double model_begin = 0.0;  ///< seconds since the trace epoch
  double model_end = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  double energy_j = 0.0;   ///< modelled joules accrued by this op
  unsigned attempts = 1;   ///< body executions (replays and replicas > 1)
  unsigned faults = 0;     ///< injected device faults hit
};

/// Per-stream monotonic totals, exported as /device/<stream>/... counters.
struct StreamStats {
  std::uint64_t launches = 0;  ///< kernel launches (attempts included)
  std::uint64_t replays = 0;   ///< re-executions beyond each op's first
  std::uint64_t faults = 0;    ///< injected device faults observed
  std::uint64_t copies = 0;    ///< host<->device transfers
  double copy_bytes = 0.0;
};

/// Device-wide totals over all streams.
struct DeviceTotals {
  std::uint64_t launches = 0;
  std::uint64_t replays = 0;
  std::uint64_t faults = 0;
  std::uint64_t copies = 0;
  double copy_bytes = 0.0;
  double kernel_seconds = 0.0;  ///< modelled busy time (kernels)
  double copy_seconds = 0.0;    ///< modelled busy time (transfers)
  double energy_joules = 0.0;
};

class Device;

/// CUDA-event analogue: records a point in a stream's FIFO order. Another
/// stream can wait on it (cross-stream dependency) and hosts can ask when
/// it completed on the modelled clock.
class DeviceEvent {
 public:
  DeviceEvent() = default;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Block the calling host thread until the event's op has executed.
  void wait() const {
    if (state_ != nullptr) {
      state_->wait();
    }
  }

  /// Completion time on the modelled device clock (seconds since the trace
  /// epoch); 0 until the event has executed.
  [[nodiscard]] double model_seconds() const { return *model_end_; }

 private:
  friend class Device;
  std::shared_ptr<mhpx::detail::shared_state<void>> state_;
  std::shared_ptr<double> model_end_ = std::make_shared<double>(0.0);
};

/// What one enqueued op is, and what it costs.
struct LaunchSpec {
  const char* name = "kernel";
  OpRecord::Kind kind = OpRecord::Kind::kernel;
  double flops = 0.0;
  double bytes = 0.0;
  unsigned max_attempts = 1;  ///< replay budget (>1 retries a failed body)
  /// Post-attempt check; false forces a retry (replay semantics).
  std::function<bool()> validator;
  /// Modelled-duration multiplier (replicated launches run n x as long).
  unsigned cost_multiplier = 1;
  /// When set, receives the op's modelled completion time (event record).
  std::shared_ptr<double> model_end_out;
  /// When set, the op starts no earlier than this modelled time (stream
  /// waits joining another stream's event).
  std::shared_ptr<const double> join_after;
  /// Wall-clock enqueue stamp (set by Device::enqueue), feeding the
  /// launch->fence latency histogram.
  std::uint64_t enqueue_ns = 0;
};

/// The process-wide modelled device: a fixed set of FIFO streams over one
/// AcceleratorModel + DevicePowerModel. Streams are mhpx::future chains, so
/// "device progress" rides the ambient minihpx scheduler when a runtime is
/// active and runs inline otherwise — either way the *modelled* timeline is
/// the same, because op durations come from the cost model, not the wall
/// clock.
class Device {
 public:
  struct Config {
    rveval::arch::AcceleratorModel model = rveval::arch::modelled_v100();
    rveval::power::DevicePowerModel power = rveval::power::v100_board_power();
    unsigned streams = 4;
    /// Chrome-trace pid of the device lane (one tid per stream inside it).
    std::uint32_t trace_pid = 900;
    /// Modelled watchdog stall added when a stuck_stream fault fires.
    double stuck_stream_stall_s = 1.0e-3;
  };

  static Device& instance() {
    static Device dev;
    return dev;
  }

  Device() { apply_config(Config{}); }
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Replace the model/power/stream configuration. Drains all streams
  /// first; also clears stats, timeline and any latched error.
  void configure(Config cfg) {
    drain();
    std::scoped_lock lk(model_mutex_, streams_mutex_);
    apply_config_locked(std::move(cfg));
  }

  /// Reset stats, timeline, stream clocks and the latched error (keeps the
  /// configuration). Call only at quiescence (after fence()).
  void reset() {
    drain();
    std::scoped_lock lk(model_mutex_, streams_mutex_);
    apply_config_locked(Config(cfg_));
  }

  /// Attach (or detach, with nullptr) the fault injector consulted by every
  /// kernel launch: inject_fault() -> corrupted_launch before the body,
  /// inject_corruption() -> stuck_stream after it. Copies never fault.
  void set_fault_injector(mhpx::resilience::FaultInjector* injector) {
    std::lock_guard lk(model_mutex_);
    injector_ = injector;
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] unsigned num_streams() const noexcept { return cfg_.streams; }

  /// Enqueue \p body on \p stream. Returns a future that becomes ready when
  /// the op has *executed* (not necessarily succeeded — failures latch for
  /// fence(), CUDA-style).
  mhpx::future<void> enqueue(unsigned stream, LaunchSpec spec,
                             std::function<void()> body) {
    spec.enqueue_ns = mhpx::apex::now_ns();
    StreamState& st = stream_state(stream);
    std::lock_guard chain(st.chain_mutex);
    auto next = st.tail.then(
        [this, stream, spec = std::move(spec), body = std::move(body)]() {
          execute(stream, spec, body);
        });
    // Two futures over one shared state: the chain keeps one, the caller
    // gets the other (future<void> only waits, so sharing is safe).
    auto state = next.state();
    st.tail = std::move(next);
    return mhpx::future<void>(state);
  }

  /// Record an event at the current tail of \p stream.
  DeviceEvent record_event(unsigned stream) {
    DeviceEvent ev;
    LaunchSpec spec;
    spec.name = "event";
    spec.kind = OpRecord::Kind::event;
    spec.model_end_out = ev.model_end_;
    ev.state_ = enqueue(stream, std::move(spec), {}).state();
    return ev;
  }

  /// Make \p stream wait for \p ev (recorded on another stream): later ops
  /// on \p stream start no earlier than the event, on both the execution
  /// order and the modelled clock.
  void wait_event(unsigned stream, const DeviceEvent& ev) {
    if (!ev.valid()) {
      throw std::invalid_argument("mkk::device: wait on an invalid event");
    }
    LaunchSpec spec;
    spec.name = "wait-event";
    spec.kind = OpRecord::Kind::wait;
    spec.join_after = ev.model_end_;
    auto state = ev.state_;
    enqueue(stream, std::move(spec), [state] { state->wait(); });
  }

  /// Drain one stream, then rethrow (and clear) the first latched failure.
  void fence(unsigned stream) {
    wait_stream(stream);
    throw_pending();
  }

  /// Drain every stream, then rethrow (and clear) the first latched
  /// failure — the cudaDeviceSynchronize analogue.
  void fence() {
    drain();
    throw_pending();
  }

  /// Rethrow (and clear) the first failure latched by an executed op.
  void throw_pending() {
    std::exception_ptr err;
    {
      std::lock_guard lk(model_mutex_);
      std::swap(err, first_error_);
    }
    if (err) {
      std::rethrow_exception(err);
    }
  }

  [[nodiscard]] StreamStats stream_stats(unsigned stream) const {
    std::lock_guard lk(model_mutex_);
    return stats_.at(stream % cfg_.streams);
  }

  [[nodiscard]] DeviceTotals totals() const {
    std::lock_guard lk(model_mutex_);
    return totals_;
  }

  /// Copy of the executed-op timeline, in execution order.
  [[nodiscard]] std::vector<OpRecord> timeline() const {
    std::lock_guard lk(model_mutex_);
    return timeline_;
  }

  /// Wall-clock latency distribution from enqueue to executed op (kernels
  /// and copies; events/waits excluded) — the launch->fence latency the
  /// hpx-kokkos bridge measures on a real device.
  [[nodiscard]] mhpx::apex::Histogram& launch_latency_histogram()
      const noexcept {
    return launch_latency_hist_;
  }

  /// Modelled completion time of the busiest stream (seconds since the
  /// trace epoch) — the device makespan.
  [[nodiscard]] double model_ready_seconds() const {
    std::lock_guard lk(model_mutex_);
    double t = 0.0;
    for (const double r : model_ready_) {
      t = std::max(t, r);
    }
    return t;
  }

 private:
  struct StreamState {
    std::mutex chain_mutex;  // serializes enqueue (tail swap + .then)
    mhpx::future<void> tail = mhpx::make_ready_future();
  };

  StreamState& stream_state(unsigned stream) {
    std::lock_guard lk(streams_mutex_);
    return *streams_[stream % cfg_.streams];
  }

  void apply_config(Config cfg) {
    std::scoped_lock lk(model_mutex_, streams_mutex_);
    apply_config_locked(std::move(cfg));
  }

  void apply_config_locked(Config cfg) {
    if (cfg.streams == 0) {
      cfg.streams = 1;
    }
    cfg_ = std::move(cfg);
    streams_.clear();
    for (unsigned s = 0; s < cfg_.streams; ++s) {
      streams_.push_back(std::make_unique<StreamState>());
    }
    stats_.assign(cfg_.streams, StreamStats{});
    model_ready_.assign(cfg_.streams, 0.0);
    totals_ = DeviceTotals{};
    timeline_.clear();
    first_error_ = nullptr;
    mhpx::apex::trace::set_process_label(
        cfg_.trace_pid, "device: " + cfg_.model.name + " (modelled)");
  }

  /// Wait (without consuming) for every op currently enqueued everywhere.
  void drain() {
    const unsigned n = cfg_.streams;
    for (unsigned s = 0; s < n; ++s) {
      wait_stream(s);
    }
  }

  void wait_stream(unsigned stream) {
    std::shared_ptr<mhpx::detail::shared_state<void>> tail_state;
    {
      StreamState& st = stream_state(stream);
      std::lock_guard chain(st.chain_mutex);
      tail_state = st.tail.state();
    }
    if (tail_state != nullptr) {
      tail_state->wait();
    }
  }

  /// Runs inside the stream's future chain. Never throws: failures latch
  /// into first_error_ so the FIFO chain stays usable (CUDA semantics).
  void execute(unsigned stream_raw, const LaunchSpec& spec,
               const std::function<void()>& body) {
    const unsigned stream = stream_raw % cfg_.streams;
    const bool is_kernel = spec.kind == OpRecord::Kind::kernel;
    const bool is_copy = spec.kind == OpRecord::Kind::copy_h2d ||
                         spec.kind == OpRecord::Kind::copy_d2h;

    mhpx::resilience::FaultInjector* injector = nullptr;
    if (is_kernel) {
      std::lock_guard lk(model_mutex_);
      injector = injector_;
    }

    const unsigned budget = std::max(1u, spec.max_attempts);
    unsigned attempts = 0;
    unsigned faults = 0;
    unsigned stalls = 0;
    std::exception_ptr failure;
    const double wall_begin = mhpx::apex::trace::now_seconds();

    for (unsigned attempt = 0; attempt < budget; ++attempt) {
      ++attempts;
      bool ok = false;
      try {
        if (injector != nullptr && injector->inject_fault()) {
          ++faults;
          throw device_fault(device_fault::Kind::corrupted_launch);
        }
        if (body) {
          body();
        }
        if (injector != nullptr && injector->inject_corruption()) {
          // The kernel ran (its writes stand) but the stream hung; the
          // modelled watchdog stall is priced below. A replay re-executes
          // the body — idempotent per the Kokkos functor contract, so the
          // retried result is bit-identical.
          ++faults;
          ++stalls;
          throw device_fault(device_fault::Kind::stuck_stream);
        }
        ok = !spec.validator || spec.validator();
      } catch (...) {
        failure = std::current_exception();
      }
      if (ok) {
        failure = nullptr;
        break;
      }
      if (attempt + 1 < budget) {
        mhpx::instrument::detail::notify_task_retry(attempt + 1);
        continue;
      }
      if (budget > 1) {
        mhpx::instrument::detail::notify_replay_exhausted();
      }
      if (!failure) {
        // Validator rejected the final attempt without an exception.
        failure = std::make_exception_ptr(
            mhpx::resilience::replay_exhausted(budget));
      }
    }
    const double wall_end = mhpx::apex::trace::now_seconds();

    // Price the op: per-attempt model cost, replays included, plus the
    // watchdog stall for each stuck-stream fault.
    double per_attempt = 0.0;
    if (is_kernel) {
      per_attempt = cfg_.model.kernel_seconds(spec.flops, spec.bytes) *
                    static_cast<double>(std::max(1u, spec.cost_multiplier));
    } else if (is_copy) {
      per_attempt = cfg_.model.copy_seconds(spec.bytes);
    }
    const double duration = per_attempt * static_cast<double>(attempts) +
                            cfg_.stuck_stream_stall_s *
                                static_cast<double>(stalls);

    OpRecord rec;
    rec.kind = spec.kind;
    rec.name = spec.name;
    rec.stream = stream;
    rec.flops = spec.flops;
    rec.bytes = spec.bytes;
    rec.attempts = attempts;
    rec.faults = faults;
    {
      std::lock_guard lk(model_mutex_);
      // The op occupies the modelled stream from when the stream is free
      // (its previous op's modelled end, or the enqueueing wall time if the
      // stream was idle, or the joined event's modelled end).
      double begin = std::max(model_ready_[stream], wall_begin);
      if (spec.join_after) {
        begin = std::max(begin, *spec.join_after);
      }
      begin = std::max(begin, 0.0);
      rec.model_begin = begin;
      rec.model_end = begin + duration;
      model_ready_[stream] = rec.model_end;

      const double watts = is_copy ? cfg_.power.transfer_watts()
                                   : cfg_.power.kernel_watts();
      rec.energy_j = watts * duration;

      StreamStats& st = stats_[stream];
      if (is_kernel) {
        st.launches += attempts;
        totals_.launches += attempts;
        totals_.kernel_seconds += duration;
      } else if (is_copy) {
        st.copies += 1;
        st.copy_bytes += spec.bytes;
        totals_.copies += 1;
        totals_.copy_bytes += spec.bytes;
        totals_.copy_seconds += duration;
      }
      st.replays += attempts - 1;
      st.faults += faults;
      totals_.replays += attempts - 1;
      totals_.faults += faults;
      totals_.energy_joules += rec.energy_j;
      timeline_.push_back(rec);
      if (failure && !first_error_) {
        first_error_ = failure;
      }
      if (spec.model_end_out) {
        *spec.model_end_out = rec.model_end;
      }
    }
    (void)wall_end;

    if ((is_kernel || is_copy) && spec.enqueue_ns != 0) {
      const std::uint64_t done = mhpx::apex::now_ns();
      launch_latency_hist_.record_ns(
          done >= spec.enqueue_ns ? done - spec.enqueue_ns : 0);
    }

    if (spec.kind != OpRecord::Kind::event &&
        spec.kind != OpRecord::Kind::wait) {
      mhpx::apex::trace::span_at(
          is_copy ? "device-copy" : "device-kernel", spec.name,
          rec.model_begin, rec.model_end, cfg_.trace_pid, stream + 1,
          spec.flops, spec.bytes, static_cast<double>(attempts));
    }
    if (faults > 0) {
      mhpx::apex::trace::instant("device", "device-fault",
                                 static_cast<double>(stream),
                                 static_cast<double>(faults));
    }
  }

  Config cfg_;

  mutable std::mutex streams_mutex_;  // guards streams_ (the vector itself)
  std::vector<std::unique_ptr<StreamState>> streams_;

  // Model accounting. Separate from the chain mutexes: an enqueue's .then
  // may run the op INLINE (no ambient runtime) while chain_mutex is held,
  // and execute() only ever takes model_mutex_ — never a chain mutex — so
  // the two layers cannot deadlock.
  mutable std::mutex model_mutex_;
  std::vector<StreamStats> stats_;
  std::vector<double> model_ready_;  // per-stream modelled clock
  DeviceTotals totals_;
  std::vector<OpRecord> timeline_;
  std::exception_ptr first_error_;
  mhpx::resilience::FaultInjector* injector_ = nullptr;
  /// Internally synchronized (sharded atomics); not reset by configure() —
  /// wall-clock latency is a property of the host run, not the model.
  mutable mhpx::apex::Histogram launch_latency_hist_;
};

/// Default work hints when the DeviceExec carries none: one flop and a
/// couple of loads/stores per iteration — deliberately small, so un-hinted
/// launches stay launch-latency-dominated like real tiny GPU kernels.
inline double default_flops(double hint, std::size_t n) {
  return hint > 0.0 ? hint : static_cast<double>(n);
}
inline double default_bytes(double hint, std::size_t n) {
  return hint > 0.0 ? hint : 16.0 * static_cast<double>(n);
}

/// Per-launch timeline label: the space's explicit label when set, else the
/// generic per-space interned label.
inline const char* launch_label(const DeviceExec& space,
                                const char* fallback) {
  return space.label != nullptr ? space.label : fallback;
}

}  // namespace device

// ----------------------------------------------------------- fences

/// Drain every device stream and rethrow the first latched failure.
inline void fence() { device::Device::instance().fence(); }

/// Drain one space's stream. The generic overload is a no-op: host spaces
/// (Serial/Threads/Hpx) are synchronous.
template <typename Space>
  requires detail::is_execution_space<Space>::value
void fence(const Space&) {}

inline void fence(const DeviceExec& space) {
  device::Device::instance().fence(space.stream);
}
inline void fence(const ReplayDevice& space) {
  device::Device::instance().fence(space.base.stream);
}
inline void fence(const ReplicateDevice& space) {
  device::Device::instance().fence(space.base.stream);
}

// ----------------------------------------------- DeviceExec dispatch

/// Asynchronous parallel_for on a device stream: returns after enqueue;
/// observe completion with mkk::fence(space) or Device::fence(). The body
/// runs as one serial loop over the range — bit-identical to Serial.
template <typename F>
void parallel_for(const RangePolicy<DeviceExec>& policy, F&& f) {
  const std::size_t n = policy.end - policy.begin;
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space, detail::KernelLabels<DeviceExec>::parallel_for());
  spec.flops = device::default_flops(policy.space.flops, n);
  spec.bytes = device::default_bytes(policy.space.bytes, n);
  device::Device::instance().enqueue(
      policy.space.stream, std::move(spec),
      [b = policy.begin, e = policy.end, fn = std::forward<F>(f)]() {
        for (std::size_t i = b; i < e; ++i) {
          fn(i);
        }
      });
}

template <typename F>
void parallel_for(const MDRangePolicy3<DeviceExec>& policy, F&& f) {
  const std::size_t n = policy.count();
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space, detail::KernelLabels<DeviceExec>::parallel_for());
  spec.flops = device::default_flops(policy.space.flops, n);
  spec.bytes = device::default_bytes(policy.space.bytes, n);
  device::Device::instance().enqueue(
      policy.space.stream, std::move(spec),
      [policy, fn = std::forward<F>(f)]() {
        const std::size_t count = policy.count();
        for (std::size_t flat = 0; flat < count; ++flat) {
          std::size_t i = 0;
          std::size_t j = 0;
          std::size_t k = 0;
          policy.unflatten(flat, i, j, k);
          fn(i, j, k);
        }
      });
}

/// Blocking parallel_reduce on the device: enqueues the launch, fences the
/// stream (reductions return a value, so the host must wait — exactly the
/// implicit fence of Kokkos' device parallel_reduce into a host scalar).
template <typename F, typename T>
void parallel_reduce(const RangePolicy<DeviceExec>& policy, F&& f, T& result) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) {
    result = T{};
    return;
  }
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space, detail::KernelLabels<DeviceExec>::parallel_reduce());
  spec.flops = device::default_flops(policy.space.flops, n);
  spec.bytes = device::default_bytes(policy.space.bytes, n);
  T total{};
  device::Device::instance().enqueue(
      policy.space.stream, std::move(spec),
      [b = policy.begin, e = policy.end, &f, &total]() {
        T local{};
        for (std::size_t i = b; i < e; ++i) {
          f(i, local);
        }
        total = local;  // overwrite, not +=: a replayed body stays exact
      });
  device::Device::instance().fence(policy.space.stream);
  result = total;
}

template <typename F, typename T>
void parallel_reduce(const MDRangePolicy3<DeviceExec>& policy, F&& f,
                     T& result) {
  const std::size_t n = policy.count();
  if (n == 0) {
    result = T{};
    return;
  }
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space, detail::KernelLabels<DeviceExec>::parallel_reduce());
  spec.flops = device::default_flops(policy.space.flops, n);
  spec.bytes = device::default_bytes(policy.space.bytes, n);
  T total{};
  device::Device::instance().enqueue(
      policy.space.stream, std::move(spec), [&policy, &f, &total]() {
        T local{};
        const std::size_t count = policy.count();
        for (std::size_t flat = 0; flat < count; ++flat) {
          std::size_t i = 0;
          std::size_t j = 0;
          std::size_t k = 0;
          policy.unflatten(flat, i, j, k);
          f(i, j, k, local);
        }
        total = local;
      });
  device::Device::instance().fence(policy.space.stream);
  result = total;
}

/// Blocking parallel_scan on the device (f(i, acc, final), Kokkos
/// contract). One serial chunk: pass 1 with final=false, pass 2 with
/// final=true from `init` — matching the Serial space's result exactly.
template <typename F, typename T>
T parallel_scan(const RangePolicy<DeviceExec>& policy, F&& f, T init = T{}) {
  const std::size_t n = policy.end - policy.begin;
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space, detail::KernelLabels<DeviceExec>::parallel_for());
  spec.flops = device::default_flops(policy.space.flops, 2 * n);
  spec.bytes = device::default_bytes(policy.space.bytes, 2 * n);
  T total{};
  device::Device::instance().enqueue(
      policy.space.stream, std::move(spec),
      [b = policy.begin, e = policy.end, &f, init, &total]() {
        T acc{};
        for (std::size_t i = b; i < e; ++i) {
          f(i, acc, false);
        }
        T run = init;
        for (std::size_t i = b; i < e; ++i) {
          f(i, run, true);
        }
        total = init + acc;
      });
  device::Device::instance().fence(policy.space.stream);
  return total;
}

// ---------------------------------------------- ReplayDevice dispatch

template <typename F>
void parallel_for(const RangePolicy<ReplayDevice>& policy, F&& f) {
  const std::size_t n = policy.end - policy.begin;
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space.base, detail::KernelLabels<ReplayDevice>::parallel_for());
  spec.flops = device::default_flops(policy.space.base.flops, n);
  spec.bytes = device::default_bytes(policy.space.base.bytes, n);
  spec.max_attempts = std::max(1u, policy.space.replays);
  spec.validator = policy.space.validator;
  device::Device::instance().enqueue(
      policy.space.base.stream, std::move(spec),
      [b = policy.begin, e = policy.end, fn = std::forward<F>(f)]() {
        for (std::size_t i = b; i < e; ++i) {
          fn(i);
        }
      });
}

template <typename F>
void parallel_for(const MDRangePolicy3<ReplayDevice>& policy, F&& f) {
  const std::size_t n = policy.count();
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space.base, detail::KernelLabels<ReplayDevice>::parallel_for());
  spec.flops = device::default_flops(policy.space.base.flops, n);
  spec.bytes = device::default_bytes(policy.space.base.bytes, n);
  spec.max_attempts = std::max(1u, policy.space.replays);
  spec.validator = policy.space.validator;
  device::Device::instance().enqueue(
      policy.space.base.stream, std::move(spec),
      [policy, fn = std::forward<F>(f)]() {
        const std::size_t count = policy.count();
        for (std::size_t flat = 0; flat < count; ++flat) {
          std::size_t i = 0;
          std::size_t j = 0;
          std::size_t k = 0;
          policy.unflatten(flat, i, j, k);
          fn(i, j, k);
        }
      });
}

template <typename F, typename T>
void parallel_reduce(const RangePolicy<ReplayDevice>& policy, F&& f,
                     T& result) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) {
    result = T{};
    return;
  }
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space.base,
      detail::KernelLabels<ReplayDevice>::parallel_reduce());
  spec.flops = device::default_flops(policy.space.base.flops, n);
  spec.bytes = device::default_bytes(policy.space.base.bytes, n);
  spec.max_attempts = std::max(1u, policy.space.replays);
  spec.validator = policy.space.validator;
  T total{};
  device::Device::instance().enqueue(
      policy.space.base.stream, std::move(spec),
      [b = policy.begin, e = policy.end, &f, &total]() {
        T local{};
        for (std::size_t i = b; i < e; ++i) {
          f(i, local);
        }
        total = local;
      });
  device::Device::instance().fence(policy.space.base.stream);
  result = total;
}

// ------------------------------------------- ReplicateDevice dispatch

template <typename F>
void parallel_for(const RangePolicy<ReplicateDevice>& policy, F&& f) {
  const std::size_t n = policy.end - policy.begin;
  const unsigned replicas = std::max(1u, policy.space.replicas);
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space.base,
      detail::KernelLabels<ReplicateDevice>::parallel_for());
  spec.flops = device::default_flops(policy.space.base.flops, n);
  spec.bytes = device::default_bytes(policy.space.base.bytes, n);
  spec.cost_multiplier = replicas;
  device::Device::instance().enqueue(
      policy.space.base.stream, std::move(spec),
      [b = policy.begin, e = policy.end, replicas,
       fn = std::forward<F>(f)]() {
        unsigned survived = 0;
        std::exception_ptr last;
        for (unsigned r = 0; r < replicas; ++r) {
          try {
            for (std::size_t i = b; i < e; ++i) {
              fn(i);
            }
            ++survived;
          } catch (...) {
            last = std::current_exception();
            mhpx::instrument::detail::notify_task_retry(r + 1);
          }
        }
        if (survived == 0) {
          std::rethrow_exception(last);
        }
      });
}

/// Replicated device reduce: each replica's partial is bit-compared and the
/// strict majority wins (ReplicateHpx's vote, on the device timeline).
template <typename F, typename T>
void parallel_reduce(const RangePolicy<ReplicateDevice>& policy, F&& f,
                     T& result) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) {
    result = T{};
    return;
  }
  const unsigned replicas = std::max(1u, policy.space.replicas);
  device::LaunchSpec spec;
  spec.name = device::launch_label(
      policy.space.base,
      detail::KernelLabels<ReplicateDevice>::parallel_reduce());
  spec.flops = device::default_flops(policy.space.base.flops, n);
  spec.bytes = device::default_bytes(policy.space.base.bytes, n);
  spec.cost_multiplier = replicas;
  T total{};
  device::Device::instance().enqueue(
      policy.space.base.stream, std::move(spec),
      [b = policy.begin, e = policy.end, replicas, &f, &total]() {
        std::vector<T> partials;
        partials.reserve(replicas);
        for (unsigned r = 0; r < replicas; ++r) {
          try {
            T local{};
            for (std::size_t i = b; i < e; ++i) {
              f(i, local);
            }
            partials.push_back(local);
          } catch (...) {
            mhpx::instrument::detail::notify_task_retry(r + 1);
          }
        }
        for (const T& candidate : partials) {
          unsigned agree = 0;
          for (const T& other : partials) {
            if (other == candidate) {
              ++agree;
            }
          }
          if (2 * agree > replicas) {
            mhpx::instrument::detail::notify_vote(true);
            total = candidate;
            return;
          }
        }
        mhpx::instrument::detail::notify_vote(false);
        throw mhpx::resilience::vote_failed(replicas);
      });
  device::Device::instance().fence(policy.space.base.stream);
  result = total;
}

// ------------------------------------------------ mirrors and copies

namespace device::detail_mirror {

template <typename T, std::size_t Rank, typename Layout, typename MemSpace,
          typename SrcView, std::size_t... Ds>
View<T, Rank, Layout, MemSpace> alloc_like(const SrcView& src,
                                           std::string label,
                                           std::index_sequence<Ds...>) {
  return View<T, Rank, Layout, MemSpace>(std::move(label), src.extent(Ds)...);
}

}  // namespace device::detail_mirror

/// Host mirror of a device view: a freshly allocated HostSpace view of the
/// same shape (Kokkos::create_mirror_view on a device view).
template <typename T, std::size_t Rank, typename L>
[[nodiscard]] View<T, Rank, L, HostSpace> create_mirror_view(
    const View<T, Rank, L, DeviceSpace>& src) {
  return device::detail_mirror::alloc_like<T, Rank, L, HostSpace>(
      src, src.label() + "/mirror", std::make_index_sequence<Rank>{});
}

/// Mirror of a host view is the view itself (no allocation, no copy) —
/// the Kokkos fast path when the spaces already match.
template <typename T, std::size_t Rank, typename L>
[[nodiscard]] View<T, Rank, L, HostSpace> create_mirror_view(
    const View<T, Rank, L, HostSpace>& src) {
  return src;
}

/// Device allocation mirroring a host view's shape (the H2D direction:
/// Kokkos::create_mirror_view(DeviceSpace{}, host_view)).
template <typename T, std::size_t Rank, typename L>
[[nodiscard]] View<T, Rank, L, DeviceSpace> create_mirror_view(
    DeviceSpace, const View<T, Rank, L, HostSpace>& src) {
  return device::detail_mirror::alloc_like<T, Rank, L, DeviceSpace>(
      src, src.label() + "/device", std::make_index_sequence<Rank>{});
}

namespace device::detail_copy {

template <typename DstView, typename SrcView>
void check_extents(const DstView& dst, const SrcView& src) {
  for (std::size_t d = 0; d < DstView::rank; ++d) {
    if (dst.extent(d) != src.extent(d)) {
      throw std::invalid_argument("mkk::deep_copy: extent mismatch");
    }
  }
}

template <typename T, typename DstView, typename SrcView>
mhpx::future<void> enqueue_copy(const DeviceExec& space, OpRecord::Kind kind,
                                const DstView& dst, const SrcView& src) {
  check_extents(dst, src);
  LaunchSpec spec;
  spec.name = kind == OpRecord::Kind::copy_h2d ? "deep_copy[h2d]"
                                               : "deep_copy[d2h]";
  spec.kind = kind;
  spec.bytes = static_cast<double>(src.size()) * sizeof(T);
  // Views are captured by value: shared ownership keeps both allocations
  // alive until the async copy has executed.
  return Device::instance().enqueue(space.stream, std::move(spec),
                                    [dst, src]() {
                                      src.for_each_index([&](auto... is) {
                                        dst(is...) = src(is...);
                                      });
                                    });
}

}  // namespace device::detail_copy

/// Asynchronous host->device copy, priced on the modelled link: returns an
/// mhpx::future that becomes ready when the transfer has executed. Overlap
/// host compute with the transfer by doing work before .get()/fence().
template <typename T, std::size_t Rank, typename LDst, typename LSrc>
mhpx::future<void> async_deep_copy(const DeviceExec& space,
                                   const View<T, Rank, LDst, DeviceSpace>& dst,
                                   const View<T, Rank, LSrc, HostSpace>& src) {
  return device::detail_copy::enqueue_copy<T>(
      space, device::OpRecord::Kind::copy_h2d, dst, src);
}

/// Asynchronous device->host copy (see above).
template <typename T, std::size_t Rank, typename LDst, typename LSrc>
mhpx::future<void> async_deep_copy(const DeviceExec& space,
                                   const View<T, Rank, LDst, HostSpace>& dst,
                                   const View<T, Rank, LSrc, DeviceSpace>& src) {
  return device::detail_copy::enqueue_copy<T>(
      space, device::OpRecord::Kind::copy_d2h, dst, src);
}

/// Synchronous host->device copy: async + wait (stream 0).
template <typename T, std::size_t Rank, typename LDst, typename LSrc>
void deep_copy(const View<T, Rank, LDst, DeviceSpace>& dst,
               const View<T, Rank, LSrc, HostSpace>& src) {
  async_deep_copy(DeviceExec{}, dst, src).get();
}

/// Synchronous device->host copy: async + wait (stream 0).
template <typename T, std::size_t Rank, typename LDst, typename LSrc>
void deep_copy(const View<T, Rank, LDst, HostSpace>& dst,
               const View<T, Rank, LSrc, DeviceSpace>& src) {
  async_deep_copy(DeviceExec{}, dst, src).get();
}

// ----------------------------------------------------------- counters

namespace device {

/// Register /device/<stream>/{launches,replays,faults,copies} for every
/// stream, plus /device/copied-bytes, into \p block's registry. The Device
/// singleton outlives any registry, so the readers never dangle.
inline void register_device_counters(mhpx::apex::CounterBlock& block,
                                     Device& dev = Device::instance()) {
  for (unsigned s = 0; s < dev.num_streams(); ++s) {
    const std::string base = "/device/" + std::to_string(s) + "/";
    block.add(base + "launches",
              "kernel launches on device stream " + std::to_string(s) +
                  " (replay attempts included)",
              mhpx::apex::CounterKind::monotonic, [&dev, s] {
                return static_cast<double>(dev.stream_stats(s).launches);
              });
    block.add(base + "replays",
              "replayed launches on device stream " + std::to_string(s),
              mhpx::apex::CounterKind::monotonic, [&dev, s] {
                return static_cast<double>(dev.stream_stats(s).replays);
              });
    block.add(base + "faults",
              "injected device faults observed on stream " +
                  std::to_string(s),
              mhpx::apex::CounterKind::monotonic, [&dev, s] {
                return static_cast<double>(dev.stream_stats(s).faults);
              });
    block.add(base + "copies",
              "host<->device transfers on stream " + std::to_string(s),
              mhpx::apex::CounterKind::monotonic, [&dev, s] {
                return static_cast<double>(dev.stream_stats(s).copies);
              });
  }
  block.add("/device/copied-bytes",
            "total host<->device bytes over the modelled link",
            mhpx::apex::CounterKind::monotonic,
            [&dev] { return dev.totals().copy_bytes; });
}

/// Attach /device/launch-fence — the wall-clock enqueue->executed latency
/// distribution over all streams — into \p block's histogram registry,
/// surfacing /device/launch-fence/{count,mean,p50,p90,p99,p999,max} as
/// derived counter leaves. The Device singleton outlives any registry.
inline void register_device_histograms(mhpx::apex::HistogramBlock& block,
                                       Device& dev = Device::instance()) {
  block.attach("/device/launch-fence", dev.launch_latency_histogram(),
               "wall-clock latency from device op enqueue to execution "
               "(kernels and copies, all streams)");
}

/// Register /power/<locality>/device-energy-j: modelled joules accrued by
/// every device op (kernels and transfers), the device column of the
/// per-locality energy attribution.
inline void register_device_power_counters(mhpx::apex::CounterBlock& block,
                                           std::uint32_t locality,
                                           Device& dev = Device::instance()) {
  block.add("/power/" + std::to_string(locality) + "/device-energy-j",
            "modelled device energy [J] (power model x modelled seconds)",
            mhpx::apex::CounterKind::monotonic,
            [&dev] { return dev.totals().energy_joules; });
}

}  // namespace device

}  // namespace mkk
