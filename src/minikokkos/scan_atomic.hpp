#pragma once

/// \file scan_atomic.hpp
/// Kokkos-style parallel_scan and atomic update helpers — the remaining
/// pieces of the Kokkos core API surface Octo-Tiger-class codes use for
/// prefix sums (index construction) and scatter-add kernels.

#include <atomic>
#include <cstddef>
#include <cstring>
#include <vector>

#include "minikokkos/parallel.hpp"

namespace mkk {

/// Kokkos::atomic_add analogue for double (CAS loop; std::atomic_ref needs
/// the object to outlive all plain accesses, so a raw CAS on the bits keeps
/// the call sites simple).
inline void atomic_add(double* addr, double value) {
  auto* bits = reinterpret_cast<std::atomic<std::uint64_t>*>(addr);
  std::uint64_t old_bits = bits->load(std::memory_order_relaxed);
  for (;;) {
    double old_val;
    std::memcpy(&old_val, &old_bits, sizeof(double));
    const double new_val = old_val + value;
    std::uint64_t new_bits;
    std::memcpy(&new_bits, &new_val, sizeof(double));
    if (bits->compare_exchange_weak(old_bits, new_bits,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Kokkos::atomic_add analogue for integral types.
template <typename T>
  requires std::is_integral_v<T>
void atomic_add(T* addr, T value) {
  reinterpret_cast<std::atomic<T>*>(addr)->fetch_add(
      value, std::memory_order_relaxed);
}

/// parallel_scan over [0, n): f(i, acc, final) Kokkos-style — called twice
/// per element (first pass final=false accumulates, second pass final=true
/// sees the running prefix and may write results). Returns the total.
///
/// Implementation: chunked two-pass (local scans, chunk-offset combine),
/// dispatched to the policy's execution space.
template <typename Space, typename F, typename T>
T parallel_scan(const RangePolicy<Space>& policy, F&& f, T init = T{}) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) {
    return init;
  }
  // Chunk boundaries identical across both passes.
  const unsigned chunks = [&] {
    if constexpr (std::is_same_v<Space, Serial>) {
      return 1u;
    } else {
      unsigned c = 8;
      if (static_cast<std::size_t>(c) > n) {
        c = static_cast<unsigned>(n);
      }
      return c;
    }
  }();
  std::vector<T> totals(chunks, T{});

  auto chunk_bounds = [&](unsigned c, std::size_t& b, std::size_t& e) {
    const std::size_t base = n / chunks;
    const std::size_t rem = n % chunks;
    b = policy.begin + c * base + std::min<std::size_t>(c, rem);
    e = b + base + (c < rem ? 1 : 0);
  };

  // Pass 1: per-chunk totals (final = false).
  detail::dispatch_blocks(policy.space, 0, chunks,
                          [&](std::size_t cb, std::size_t ce) {
                            for (std::size_t c = cb; c < ce; ++c) {
                              std::size_t b = 0;
                              std::size_t e = 0;
                              chunk_bounds(static_cast<unsigned>(c), b, e);
                              T acc{};
                              for (std::size_t i = b; i < e; ++i) {
                                f(i, acc, false);
                              }
                              totals[c] = acc;
                            }
                          });

  // Exclusive scan of chunk totals.
  std::vector<T> offsets(chunks, init);
  T running = init;
  for (unsigned c = 0; c < chunks; ++c) {
    offsets[c] = running;
    running = running + totals[c];
  }

  // Pass 2: run with the prefix (final = true).
  detail::dispatch_blocks(policy.space, 0, chunks,
                          [&](std::size_t cb, std::size_t ce) {
                            for (std::size_t c = cb; c < ce; ++c) {
                              std::size_t b = 0;
                              std::size_t e = 0;
                              chunk_bounds(static_cast<unsigned>(c), b, e);
                              T acc = offsets[c];
                              for (std::size_t i = b; i < e; ++i) {
                                f(i, acc, true);
                              }
                            }
                          });
  return running;
}

}  // namespace mkk
