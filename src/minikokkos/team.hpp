#pragma once

/// \file team.hpp
/// Hierarchical (team) parallelism — the Kokkos TeamPolicy subset.
///
/// A league of teams: the league dimension is distributed over the
/// execution space (one task per team on the Hpx space); within a team,
/// team_size logical threads execute cooperatively on one core (the
/// faithful CPU lowering: Kokkos' host backends serialise team threads
/// unless hyperthreads are bound). TeamThreadRange partitions an index
/// range across the team's threads.

#include <cstddef>

#include "minikokkos/parallel.hpp"

namespace mkk {

/// Handle passed to a team kernel: identifies the team and thread.
class TeamMember {
 public:
  TeamMember(std::size_t league_rank, unsigned team_rank, unsigned team_size)
      : league_rank_(league_rank),
        team_rank_(team_rank),
        team_size_(team_size) {}

  [[nodiscard]] std::size_t league_rank() const noexcept {
    return league_rank_;
  }
  [[nodiscard]] unsigned team_rank() const noexcept { return team_rank_; }
  [[nodiscard]] unsigned team_size() const noexcept { return team_size_; }

 private:
  std::size_t league_rank_;
  unsigned team_rank_;
  unsigned team_size_;
};

/// League of `league_size` teams, each with `team_size` logical threads,
/// distributed over execution space Space.
template <typename Space = Serial>
struct TeamPolicy {
  Space space{};
  std::size_t league_size = 0;
  unsigned team_size = 1;

  TeamPolicy(std::size_t league, unsigned team)
      : league_size(league), team_size(team) {}
  TeamPolicy(Space s, std::size_t league, unsigned team)
      : space(s), league_size(league), team_size(team) {}
};

/// parallel_for over a team policy: f(member) is invoked once per
/// (team, thread) pair; teams are parallel across the space, threads within
/// a team run sequentially on the executing core (in team-rank order, so
/// per-team scratch patterns behave deterministically).
template <typename Space, typename F>
void parallel_for(const TeamPolicy<Space>& policy, F&& f) {
  detail::dispatch_blocks(
      policy.space, 0, policy.league_size,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t league = b; league < e; ++league) {
          for (unsigned t = 0; t < policy.team_size; ++t) {
            f(TeamMember(league, t, policy.team_size));
          }
        }
      });
}

/// TeamThreadRange: invoke body(i) for the member's slice of [0, n) —
/// thread t handles i with i % team_size == t (cyclic, Kokkos-like).
template <typename F>
void team_thread_range(const TeamMember& member, std::size_t n, F&& body) {
  for (std::size_t i = member.team_rank(); i < n; i += member.team_size()) {
    body(i);
  }
}

/// Team-level reduction helper: every thread contributes `value`; the
/// caller accumulates into a per-team slot. On this serialised-team CPU
/// lowering a plain reference is race-free because team threads run in
/// sequence on one core.
template <typename T>
void team_reduce_add(const TeamMember& /*member*/, T value, T& slot) {
  slot += value;
}

}  // namespace mkk
