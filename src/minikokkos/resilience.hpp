#pragma once

/// \file resilience.hpp
/// Resilient execution spaces — the minikokkos analogue of the hkr
/// (hpx-kokkos-resilience) ResilientReplay/ResilientReplicate spaces.
///
/// A kernel dispatched on one of these spaces re-executes or votes at
/// *chunk* granularity, transparently to the kernel body:
///
///   - ReplayHpx: each chunk that throws (an injected task fault, a
///     transient hardware trap surfaced as an exception) or fails the
///     space's optional range validator is re-executed, up to `replays`
///     attempts, before the failure propagates. The hkr equivalent is
///     Kokkos::ResilientReplay<ExecSpace, Validator>.
///   - ReplicateHpx: each chunk runs `replicas` times. parallel_reduce
///     bit-compares the replica partials (the checksum) and takes the
///     strict-majority value — one silently corrupted replica out of three
///     is outvoted. parallel_for accepts the chunk once any replica
///     completes without throwing. The hkr equivalent is
///     ResilientReplicate with its majority-vote comparator.
///
/// Both spaces assume the usual Kokkos contract that the functor is
/// idempotent per index (each index writes only its own outputs from
/// chunk-invariant inputs) — exactly what the Octo-Tiger kernels satisfy —
/// so re-execution is safe. Every retry and vote is reported through
/// mhpx::instrument, keeping the simulator's overhead pricing honest.

#include <cstddef>
#include <functional>
#include <vector>

#include "minihpx/instrument.hpp"
#include "minihpx/resilience/resilience.hpp"
#include "minikokkos/parallel.hpp"
#include "minikokkos/spaces.hpp"

namespace mkk {

/// Replay space: re-execute a failed or invalid chunk on the Hpx space.
struct ReplayHpx {
  Hpx base{};           ///< underlying Hpx space (chunk-count knob)
  unsigned replays = 3; ///< total attempts per chunk
  /// Optional post-chunk check over [b, e): return false to force a
  /// re-execution (e.g. a checksum over the chunk's outputs found NaNs).
  std::function<bool(std::size_t, std::size_t)> validator;
  static constexpr std::string_view name() { return "ReplayHpx"; }
};

/// Replicate space: run each chunk n times; vote on reduce partials.
struct ReplicateHpx {
  Hpx base{};            ///< underlying Hpx space (chunk-count knob)
  unsigned replicas = 3; ///< copies per chunk (use an odd count)
  static constexpr std::string_view name() { return "ReplicateHpx"; }
};

namespace detail {

template <>
struct is_execution_space<ReplayHpx> : std::true_type {};
template <>
struct is_execution_space<ReplicateHpx> : std::true_type {};

/// Run body(b, e) with replay semantics: rethrow only after the last
/// attempt failed; count each re-execution.
template <typename Body>
void replay_chunk(const ReplayHpx& space, std::size_t b, std::size_t e,
                  Body& body) {
  const unsigned attempts = space.replays != 0 ? space.replays : 1;
  for (unsigned attempt = 0;; ++attempt) {
    bool ok = false;
    try {
      body(b, e);
      ok = !space.validator || space.validator(b, e);
    } catch (...) {
      if (attempt + 1 >= attempts) {
        mhpx::instrument::detail::notify_replay_exhausted();
        throw;
      }
    }
    if (ok) {
      return;
    }
    if (attempt + 1 >= attempts) {
      mhpx::instrument::detail::notify_replay_exhausted();
      throw mhpx::resilience::replay_exhausted(attempts);
    }
    mhpx::instrument::detail::notify_task_retry(attempt + 1);
  }
}

}  // namespace detail

// --------------------------------------------------------------- ReplayHpx

template <typename F>
void parallel_for(const RangePolicy<ReplayHpx>& policy, F&& f) {
  detail::dispatch_blocks(policy.space.base, policy.begin, policy.end,
                          [&](std::size_t b, std::size_t e) {
                            auto chunk = [&](std::size_t bb, std::size_t ee) {
                              for (std::size_t i = bb; i < ee; ++i) {
                                f(i);
                              }
                            };
                            detail::replay_chunk(policy.space, b, e, chunk);
                          });
}

template <typename F>
void parallel_for(const MDRangePolicy3<ReplayHpx>& policy, F&& f) {
  const std::size_t n = policy.count();
  detail::dispatch_blocks(policy.space.base, 0, n,
                          [&](std::size_t b, std::size_t e) {
                            auto chunk = [&](std::size_t bb, std::size_t ee) {
                              for (std::size_t flat = bb; flat < ee; ++flat) {
                                std::size_t i = 0;
                                std::size_t j = 0;
                                std::size_t k = 0;
                                policy.unflatten(flat, i, j, k);
                                f(i, j, k);
                              }
                            };
                            detail::replay_chunk(policy.space, b, e, chunk);
                          });
}

template <typename F, typename T>
void parallel_reduce(const RangePolicy<ReplayHpx>& policy, F&& f, T& result) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) {
    result = T{};
    return;
  }
  std::mutex combine_mutex;  // guards total
  T total{};
  detail::dispatch_blocks(
      policy.space.base, policy.begin, policy.end,
      [&](std::size_t b, std::size_t e) {
        // The partial combines into the total only after the chunk's final
        // successful attempt, so a replayed chunk is never double-counted.
        auto chunk = [&](std::size_t bb, std::size_t ee) {
          T local{};
          for (std::size_t i = bb; i < ee; ++i) {
            f(i, local);
          }
          std::lock_guard lk(combine_mutex);
          total += local;
        };
        detail::replay_chunk(policy.space, b, e, chunk);
      });
  result = total;
}

// ------------------------------------------------------------ ReplicateHpx

template <typename F>
void parallel_for(const RangePolicy<ReplicateHpx>& policy, F&& f) {
  const unsigned replicas =
      policy.space.replicas != 0 ? policy.space.replicas : 1;
  detail::dispatch_blocks(
      policy.space.base, policy.begin, policy.end,
      [&](std::size_t b, std::size_t e) {
        unsigned survived = 0;
        std::exception_ptr last;
        for (unsigned r = 0; r < replicas; ++r) {
          try {
            for (std::size_t i = b; i < e; ++i) {
              f(i);
            }
            ++survived;
          } catch (...) {
            last = std::current_exception();
            mhpx::instrument::detail::notify_task_retry(r + 1);
          }
        }
        if (survived == 0) {
          std::rethrow_exception(last);
        }
      });
}

template <typename F, typename T>
void parallel_reduce(const RangePolicy<ReplicateHpx>& policy, F&& f,
                     T& result) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) {
    result = T{};
    return;
  }
  const unsigned replicas =
      policy.space.replicas != 0 ? policy.space.replicas : 1;
  std::mutex combine_mutex;  // guards total
  T total{};
  detail::dispatch_blocks(
      policy.space.base, policy.begin, policy.end,
      [&](std::size_t b, std::size_t e) {
        // Compute each replica's partial, then majority-vote on equality
        // (the bitwise checksum): silent corruption of a minority of the
        // replicas cannot reach the total.
        std::vector<T> partials;
        partials.reserve(replicas);
        for (unsigned r = 0; r < replicas; ++r) {
          try {
            T local{};
            for (std::size_t i = b; i < e; ++i) {
              f(i, local);
            }
            partials.push_back(local);
          } catch (...) {
            mhpx::instrument::detail::notify_task_retry(r + 1);
          }
        }
        for (const T& candidate : partials) {
          unsigned agree = 0;
          for (const T& other : partials) {
            if (other == candidate) {
              ++agree;
            }
          }
          if (2 * agree > replicas) {
            mhpx::instrument::detail::notify_vote(true);
            std::lock_guard lk(combine_mutex);
            total += candidate;
            return;
          }
        }
        mhpx::instrument::detail::notify_vote(false);
        throw mhpx::resilience::vote_failed(replicas);
      });
  result = total;
}

}  // namespace mkk
