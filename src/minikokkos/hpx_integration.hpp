#pragma once

/// \file hpx_integration.hpp
/// The two HPX<->Kokkos integrations the paper singles out (§3.2):
///   1. futures for asynchronously launched kernels, so kernel completions
///      slot into the HPX task graph;
///   2. the HPX execution space (see spaces.hpp/parallel.hpp), which runs a
///      kernel as minihpx tasks instead of on a conflicting thread pool.
/// This header provides (1): async kernel dispatch returning mhpx::future.

#include <utility>

#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"
#include "minikokkos/parallel.hpp"

namespace mkk {

/// Launch parallel_for(policy, f) as one minihpx task; the returned future
/// becomes ready when the whole kernel has finished. The kernel itself may
/// further fan out (Hpx space) or run single-core (Serial space) — the
/// composition the Octo-Tiger driver relies on for one-kernel-per-sub-grid
/// concurrency.
template <typename Policy, typename F>
mhpx::future<void> async_parallel_for(Policy policy, F f) {
  return mhpx::async(
      [policy = std::move(policy), f = std::move(f)]() mutable {
        parallel_for(policy, f);
      });
}

/// Launch parallel_reduce(policy, f) asynchronously; the future carries the
/// reduction result.
template <typename T, typename Policy, typename F>
mhpx::future<T> async_parallel_reduce(Policy policy, F f) {
  return mhpx::async([policy = std::move(policy), f = std::move(f)]() mutable {
    T result{};
    parallel_reduce(policy, f, result);
    return result;
  });
}

}  // namespace mkk
