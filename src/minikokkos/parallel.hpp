#pragma once

/// \file parallel.hpp
/// mkk::parallel_for / mkk::parallel_reduce over Range and MDRange policies,
/// dispatched to the Serial, Threads or Hpx execution space.

#include <algorithm>
#include <array>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "minihpx/apex/task_trace.hpp"
#include "minihpx/parallel/algorithms.hpp"
#include "minihpx/runtime.hpp"
#include "minikokkos/spaces.hpp"

namespace mkk {

/// 1-D iteration range [begin, end) on execution space Space.
template <typename Space = Serial>
struct RangePolicy {
  Space space{};
  std::size_t begin = 0;
  std::size_t end = 0;

  RangePolicy(std::size_t b, std::size_t e) : begin(b), end(e) {}
  RangePolicy(Space s, std::size_t b, std::size_t e)
      : space(s), begin(b), end(e) {}
};

/// Rank-3 iteration range, the natural shape for 8x8x8 sub-grid kernels.
template <typename Space = Serial>
struct MDRangePolicy3 {
  Space space{};
  std::array<std::size_t, 3> begin{};
  std::array<std::size_t, 3> end{};

  MDRangePolicy3(std::array<std::size_t, 3> b, std::array<std::size_t, 3> e)
      : begin(b), end(e) {}
  MDRangePolicy3(Space s, std::array<std::size_t, 3> b,
                 std::array<std::size_t, 3> e)
      : space(s), begin(b), end(e) {}

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 1;
    for (std::size_t d = 0; d < 3; ++d) {
      n *= end[d] - begin[d];
    }
    return n;
  }

  /// Map a flat index back to (i, j, k), row-major.
  void unflatten(std::size_t flat, std::size_t& i, std::size_t& j,
                 std::size_t& k) const {
    const std::size_t nj = end[1] - begin[1];
    const std::size_t nk = end[2] - begin[2];
    k = begin[2] + flat % nk;
    j = begin[1] + (flat / nk) % nj;
    i = begin[0] + flat / (nk * nj);
  }
};

namespace detail {

/// Run body(b, e) over [begin,end) split across the space's workers.
template <typename Body>
void dispatch_blocks(Serial, std::size_t begin, std::size_t end, Body&& body) {
  if (end > begin) {
    body(begin, end);
  }
}

template <typename Body>
void dispatch_blocks(Threads space, std::size_t begin, std::size_t end,
                     Body&& body) {
  const std::size_t n = end - begin;
  if (n == 0) {
    return;
  }
  unsigned workers = space.num_threads != 0
                         ? space.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  if (static_cast<std::size_t>(workers) > n) {
    workers = static_cast<unsigned>(n);
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t base = n / workers;
  const std::size_t rem = n % workers;
  std::size_t b = begin;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t e = b + base + (w < rem ? 1 : 0);
    threads.emplace_back([&body, b, e] { body(b, e); });
    b = e;
  }
  for (auto& t : threads) {
    t.join();
  }
}

template <typename Body>
void dispatch_blocks(Hpx space, std::size_t begin, std::size_t end,
                     Body&& body) {
  const std::size_t n = end - begin;
  if (n == 0) {
    return;
  }
  auto* sched = mhpx::detail::ambient_scheduler();
  if (sched == nullptr) {
    throw std::runtime_error(
        "mkk::Hpx execution space: no active minihpx runtime");
  }
  unsigned chunks = space.chunks != 0 ? space.chunks : 4 * sched->num_workers();
  if (static_cast<std::size_t>(chunks) > n) {
    chunks = static_cast<unsigned>(n);
  }
  mhpx::execution::detail::bulk_run(
      n, chunks, [&](std::size_t, std::size_t b, std::size_t e) {
        body(begin + b, begin + e);
      });
}

/// Per-space interned trace labels ("mkk::parallel_for<Hpx>"), built once
/// per instantiation so tracing a dispatch costs no string construction.
template <typename Space>
struct KernelLabels {
  static const char* parallel_for() {
    static const char* label = mhpx::apex::trace::intern(
        "mkk::parallel_for<" + std::string(Space::name()) + ">");
    return label;
  }
  static const char* parallel_reduce() {
    static const char* label = mhpx::apex::trace::intern(
        "mkk::parallel_reduce<" + std::string(Space::name()) + ">");
    return label;
  }
};

}  // namespace detail

/// parallel_for over a 1-D range: f(i).
template <typename Space, typename F>
void parallel_for(const RangePolicy<Space>& policy, F&& f) {
  mhpx::apex::trace::ScopedRegion region(
      "kernel", detail::KernelLabels<Space>::parallel_for());
  detail::dispatch_blocks(policy.space, policy.begin, policy.end,
                          [&](std::size_t b, std::size_t e) {
                            for (std::size_t i = b; i < e; ++i) {
                              f(i);
                            }
                          });
}

/// Convenience: parallel_for over [0, n) on a default-constructed space.
template <typename F>
void parallel_for(std::size_t n, F&& f) {
  parallel_for(RangePolicy<Serial>(0, n), std::forward<F>(f));
}

/// parallel_for over a rank-3 range: f(i, j, k).
template <typename Space, typename F>
void parallel_for(const MDRangePolicy3<Space>& policy, F&& f) {
  mhpx::apex::trace::ScopedRegion region(
      "kernel", detail::KernelLabels<Space>::parallel_for());
  const std::size_t n = policy.count();
  detail::dispatch_blocks(policy.space, 0, n,
                          [&](std::size_t b, std::size_t e) {
                            for (std::size_t flat = b; flat < e; ++flat) {
                              std::size_t i = 0;
                              std::size_t j = 0;
                              std::size_t k = 0;
                              policy.unflatten(flat, i, j, k);
                              f(i, j, k);
                            }
                          });
}

/// parallel_reduce over a 1-D range: f(i, acc) accumulates into acc; chunk
/// partials combine with += (Kokkos' default Sum reducer).
template <typename Space, typename F, typename T>
void parallel_reduce(const RangePolicy<Space>& policy, F&& f, T& result) {
  mhpx::apex::trace::ScopedRegion region(
      "kernel", detail::KernelLabels<Space>::parallel_reduce());
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) {
    result = T{};
    return;
  }
  std::mutex combine_mutex;  // guards total
  T total{};
  detail::dispatch_blocks(policy.space, policy.begin, policy.end,
                          [&](std::size_t b, std::size_t e) {
                            T local{};
                            for (std::size_t i = b; i < e; ++i) {
                              f(i, local);
                            }
                            std::lock_guard lk(combine_mutex);
                            total += local;
                          });
  result = total;
}

/// parallel_reduce over a rank-3 range: f(i, j, k, acc).
template <typename Space, typename F, typename T>
void parallel_reduce(const MDRangePolicy3<Space>& policy, F&& f, T& result) {
  mhpx::apex::trace::ScopedRegion region(
      "kernel", detail::KernelLabels<Space>::parallel_reduce());
  const std::size_t n = policy.count();
  if (n == 0) {
    result = T{};
    return;
  }
  std::mutex combine_mutex;  // guards total
  T total{};
  detail::dispatch_blocks(policy.space, 0, n,
                          [&](std::size_t b, std::size_t e) {
                            T local{};
                            for (std::size_t flat = b; flat < e; ++flat) {
                              std::size_t i = 0;
                              std::size_t j = 0;
                              std::size_t k = 0;
                              policy.unflatten(flat, i, j, k);
                              f(i, j, k, local);
                            }
                            std::lock_guard lk(combine_mutex);
                            total += local;
                          });
  result = total;
}

}  // namespace mkk
