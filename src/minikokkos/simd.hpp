#pragma once

/// \file simd.hpp
/// Portable SIMD value types — the analogue of the Kokkos/std::experimental
/// simd types Octo-Tiger uses for explicit CPU vectorisation.
///
/// The paper's Table 2 drives its peak-performance model off each CPU's
/// vector length (8 doubles on A64FX/SVE and AVX-512, 4 on AVX2, *none* on
/// the RISC-V U74-MC, which lacks the V extension). mkk::simd<T, N> models
/// exactly that: a fixed-width value type whose operations compile to the
/// host's vector instructions when N > 1 (the loops are written so GCC's
/// vectoriser maps them onto SSE/AVX), and to scalar code when N == 1 — the
/// "scalar ABI" every kernel falls back to on vectorless hardware like the
/// U74-MC, or on GPUs.

#include <cmath>
#include <cstddef>
#include <type_traits>

namespace mkk {

/// Fixed-width SIMD vector of N lanes of arithmetic type T.
template <typename T, int N>
  requires(std::is_arithmetic_v<T> && N >= 1 && (N & (N - 1)) == 0)
class simd {
 public:
  using value_type = T;
  static constexpr int size() { return N; }

  simd() = default;

  /// Broadcast.
  simd(T scalar) {  // NOLINT(google-explicit-constructor): mirrors std::simd
    for (int i = 0; i < N; ++i) {
      lanes_[i] = scalar;
    }
  }

  /// Load N contiguous elements.
  static simd load(const T* src) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = src[i];
    }
    return r;
  }

  /// Store N contiguous elements.
  void store(T* dst) const {
    for (int i = 0; i < N; ++i) {
      dst[i] = lanes_[i];
    }
  }

  T& operator[](int i) { return lanes_[i]; }
  const T& operator[](int i) const { return lanes_[i]; }

  friend simd operator+(simd a, simd b) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = a.lanes_[i] + b.lanes_[i];
    }
    return r;
  }
  friend simd operator-(simd a, simd b) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = a.lanes_[i] - b.lanes_[i];
    }
    return r;
  }
  friend simd operator*(simd a, simd b) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = a.lanes_[i] * b.lanes_[i];
    }
    return r;
  }
  friend simd operator/(simd a, simd b) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = a.lanes_[i] / b.lanes_[i];
    }
    return r;
  }
  friend simd operator-(simd a) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = -a.lanes_[i];
    }
    return r;
  }
  simd& operator+=(simd b) { return *this = *this + b; }
  simd& operator-=(simd b) { return *this = *this - b; }
  simd& operator*=(simd b) { return *this = *this * b; }
  simd& operator/=(simd b) { return *this = *this / b; }

  /// Fused multiply-add a*b + c. On CPUs with FMA units this maps to one
  /// instruction per lane — the factor of two in the paper's Eq. 2. (The
  /// U74-MC only has FMA for the 32-bit FP ISA, a caveat Table 2 notes.)
  friend simd fma(simd a, simd b, simd c) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = std::fma(a.lanes_[i], b.lanes_[i], c.lanes_[i]);
    }
    return r;
  }

  friend simd max(simd a, simd b) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = a.lanes_[i] > b.lanes_[i] ? a.lanes_[i] : b.lanes_[i];
    }
    return r;
  }
  friend simd min(simd a, simd b) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = a.lanes_[i] < b.lanes_[i] ? a.lanes_[i] : b.lanes_[i];
    }
    return r;
  }
  friend simd sqrt(simd a) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = std::sqrt(a.lanes_[i]);
    }
    return r;
  }
  friend simd abs(simd a) {
    simd r;
    for (int i = 0; i < N; ++i) {
      r.lanes_[i] = std::abs(a.lanes_[i]);
    }
    return r;
  }

  /// Horizontal sum of all lanes.
  [[nodiscard]] T reduce_sum() const {
    T s{};
    for (int i = 0; i < N; ++i) {
      s += lanes_[i];
    }
    return s;
  }

  /// Horizontal max of all lanes.
  [[nodiscard]] T reduce_max() const {
    T m = lanes_[0];
    for (int i = 1; i < N; ++i) {
      m = lanes_[i] > m ? lanes_[i] : m;
    }
    return m;
  }

 private:
  alignas(alignof(T) * N) T lanes_[N]{};
};

/// Native width on the build host (what -march makes available).
#if defined(__AVX512F__)
inline constexpr int native_double_width = 8;
#elif defined(__AVX__)
inline constexpr int native_double_width = 4;
#elif defined(__SSE2__) || defined(__aarch64__)
inline constexpr int native_double_width = 2;
#else
inline constexpr int native_double_width = 1;  // e.g. RISC-V without V
#endif

/// Vector type for the host's native width.
using native_simd_double = simd<double, native_double_width>;
/// The scalar ABI: what every kernel degrades to on vectorless hardware.
using scalar_simd_double = simd<double, 1>;

}  // namespace mkk
