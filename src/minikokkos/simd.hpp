#pragma once

/// \file simd.hpp
/// Back-compat shim: mkk::simd<T, N> is now an alias for the real SIMD
/// subsystem, rveval::simd<T, abi::fixed<N>> (src/core/simd/simd.hpp).
///
/// The original mkk::simd was a broadcast-only lane-array stub with no
/// intrinsic backends. The rveval::simd subsystem supersedes it: portable
/// ABI tags (scalar / sse2 / avx2 / fixed<N> / rvv_modelled<N>), real
/// __m128d/__m256d backends with CPUID runtime dispatch, masks, gathers,
/// and aligned/unaligned load-store contracts. There is exactly one SIMD
/// type in the tree; these aliases keep the historical mkk spellings
/// working for existing call sites and tests.

#include "core/simd/abi.hpp"
#include "core/simd/simd.hpp"

namespace mkk {

/// Fixed-width SIMD vector of N lanes: alias into rveval::simd.
template <typename T, int N>
using simd = rveval::simd::simd<T, rveval::simd::abi::fixed<N>>;

/// Native double-lane width of this build (what the -m flags enabled).
inline constexpr int native_double_width = rveval::simd::abi::native::width;

/// Vector type for the host's native width — now backed by the real
/// intrinsic ABI (e.g. __m256d on an AVX2 build), not a lane array.
using native_simd_double =
    rveval::simd::simd<double, rveval::simd::abi::native>;
/// The scalar ABI: what every kernel degrades to on vectorless hardware.
using scalar_simd_double =
    rveval::simd::simd<double, rveval::simd::abi::scalar>;

}  // namespace mkk
