#pragma once

/// \file octree.hpp
/// The adaptive octree (paper §3.3): a tree-based data structure whose
/// leaves each carry an 8x8x8 sub-grid. Refinement maximises resolution in
/// the star region; the rotating-star level-4 configuration reproduces the
/// paper's workload shape (~1e3 leaves, ~6e5 cells).
///
/// Ghost exchange: each leaf fills its ghost layers by *sampling* the tree
/// (piecewise-constant in the containing leaf's cell). For same-level
/// neighbours this is an exact copy; across level jumps it is constant
/// prolongation / injection — a documented miniapp simplification
/// (DESIGN.md §6) that preserves the communication and task structure.

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "octotiger/defs.hpp"
#include "octotiger/gravity/multipole.hpp"
#include "octotiger/grid.hpp"

namespace octo {

/// Domain: the cube [-domain_half, +domain_half]^3.
inline constexpr double domain_half = 1.0;

struct TreeNode {
  unsigned level = 0;
  /// Node index within its level's uniform grid of 2^level nodes per axis.
  std::array<std::size_t, 3> index{0, 0, 0};
  std::array<std::unique_ptr<TreeNode>, 8> children;  // all null for a leaf
  SubGrid grid;     ///< allocated for leaves only
  std::size_t leaf_id = 0;  ///< dense id among leaves (set by the tree)
  gravity::Multipole moments;  ///< filled by the gravity upward pass

  [[nodiscard]] bool is_leaf() const { return children[0] == nullptr; }

  /// Edge length of this node's region.
  [[nodiscard]] double width() const {
    return 2.0 * domain_half / static_cast<double>(1u << level);
  }

  /// Low corner of this node's region.
  [[nodiscard]] Vec3 low() const {
    const double w = width();
    return {-domain_half + static_cast<double>(index[0]) * w,
            -domain_half + static_cast<double>(index[1]) * w,
            -domain_half + static_cast<double>(index[2]) * w};
  }

  /// Geometric center of the node.
  [[nodiscard]] Vec3 center() const {
    const double w = width();
    const Vec3 l = low();
    return {l.x + 0.5 * w, l.y + 0.5 * w, l.z + 0.5 * w};
  }

  /// Shortest distance from the node's box to a point (0 inside).
  [[nodiscard]] double distance_to(Vec3 p) const;
};

class Octree {
 public:
  /// Node-refinement criterion: return true to split this node (called for
  /// nodes below max_level only).
  using refine_predicate = std::function<bool(const TreeNode&)>;

  /// Build the tree: refine every node within \p refine_radius of the
  /// origin until \p max_level; allocate leaf sub-grids.
  Octree(unsigned max_level, double refine_radius);

  /// Build with an arbitrary refinement predicate (e.g. around both stars
  /// of a binary).
  Octree(unsigned max_level, const refine_predicate& refine);

  [[nodiscard]] TreeNode& root() { return *root_; }
  [[nodiscard]] const TreeNode& root() const { return *root_; }

  /// Dense leaf list (stable order: depth-first, z-major child order).
  [[nodiscard]] const std::vector<TreeNode*>& leaves() const {
    return leaves_;
  }
  [[nodiscard]] std::size_t leaf_count() const { return leaves_.size(); }
  [[nodiscard]] std::size_t total_cells() const {
    return leaves_.size() * CELLS_PER_GRID;
  }

  /// Leaf whose region contains \p p (positions are clamped into the
  /// domain, giving outflow-style boundary sampling).
  [[nodiscard]] const TreeNode& leaf_containing(Vec3 p) const;

  /// Piecewise-constant sample of a conserved field at position \p p.
  [[nodiscard]] double sample(std::size_t field, Vec3 p) const;

  /// Fill the ghost layers of one leaf from the current interior values of
  /// the tree (call for all leaves before running the hydro kernel).
  void fill_ghosts(TreeNode& leaf) const;

  /// Visit every leaf.
  void for_each_leaf(const std::function<void(TreeNode&)>& f);

 private:
  void build(TreeNode& node, unsigned max_level,
             const refine_predicate& refine);
  void collect_leaves(TreeNode& node);

  std::unique_ptr<TreeNode> root_;
  std::vector<TreeNode*> leaves_;
};

}  // namespace octo
