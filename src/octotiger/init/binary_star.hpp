#pragma once

/// \file binary_star.hpp
/// Binary-star initial model — the workload class Octo-Tiger exists for
/// (paper §3.3 / Fig. 1: "used to simulate and study binary star systems
/// and their eventual outcomes"; the refinement maximises resolution
/// "between the stars, where the mass transfer takes place").
///
/// Two n = 1 polytropes on the x axis in a circular Keplerian orbit about
/// their barycentre (point-mass approximation — good at separations of a
/// few stellar radii), each optionally spinning synchronously.

#include "octotiger/octree.hpp"
#include "octotiger/options.hpp"

namespace octo::init {

struct BinaryParams {
  double separation = 0.8;   ///< centre-to-centre distance
  double radius1 = 0.22;     ///< primary polytrope radius
  double radius2 = 0.18;     ///< secondary (donor) radius
  double rho_c1 = 1.0;       ///< primary central density
  double rho_c2 = 0.6;       ///< secondary central density
  bool synchronous = true;   ///< tidally locked spins
};

/// Masses of the two polytropes (analytic, M = 4 rho_c R^3 / pi).
double binary_mass1(const BinaryParams& p);
double binary_mass2(const BinaryParams& p);

/// Circular-orbit angular velocity about the barycentre:
/// omega^2 = G (M1 + M2) / d^3.
double binary_orbital_omega(const BinaryParams& p);

/// Positions of the two centres on the x axis (barycentre at the origin).
Vec3 binary_center1(const BinaryParams& p);
Vec3 binary_center2(const BinaryParams& p);

/// Fill every leaf with the binary configuration.
void binary_star(Octree& tree, const BinaryParams& p);

}  // namespace octo::init
