#include "octotiger/init/binary_star.hpp"

#include <cmath>

#include "octotiger/init/rotating_star.hpp"

namespace octo::init {

double binary_mass1(const BinaryParams& p) {
  return polytrope_mass(p.radius1, p.rho_c1);
}

double binary_mass2(const BinaryParams& p) {
  return polytrope_mass(p.radius2, p.rho_c2);
}

double binary_orbital_omega(const BinaryParams& p) {
  const double m = binary_mass1(p) + binary_mass2(p);
  return std::sqrt(G_newton * m /
                   (p.separation * p.separation * p.separation));
}

Vec3 binary_center1(const BinaryParams& p) {
  // Barycentre at the origin: x1 = -d m2 / (m1 + m2).
  const double m1 = binary_mass1(p);
  const double m2 = binary_mass2(p);
  return {-p.separation * m2 / (m1 + m2), 0.0, 0.0};
}

Vec3 binary_center2(const BinaryParams& p) {
  const double m1 = binary_mass1(p);
  const double m2 = binary_mass2(p);
  return {p.separation * m1 / (m1 + m2), 0.0, 0.0};
}

void binary_star(Octree& tree, const BinaryParams& p) {
  const Vec3 c1 = binary_center1(p);
  const Vec3 c2 = binary_center2(p);
  const double omega = binary_orbital_omega(p);

  tree.for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const Vec3 x = g.cell_center(i, j, k);
          const double r1 = (x - c1).norm();
          const double r2 = (x - c2).norm();
          const double rho1 = polytrope_density(r1, p.radius1, p.rho_c1);
          const double rho2 = polytrope_density(r2, p.radius2, p.rho_c2);
          // The stars are detached (separation > R1 + R2 for sane params);
          // take the dominant contribution, floor elsewhere.
          const bool in1 = rho1 >= rho2 && rho1 > rho_floor;
          const bool in2 = rho2 > rho1 && rho2 > rho_floor;
          const double rho = std::max({rho1, rho2, rho_floor});
          const double pres = in1 ? polytrope_pressure(rho, p.radius1)
                              : in2 ? polytrope_pressure(rho, p.radius2)
                                    : p_floor;
          // Orbital (plus synchronous-spin) velocity: rigid rotation of
          // the whole binary about the barycentre reproduces both the
          // orbit and tidally locked spins at once.
          double vx = 0.0;
          double vy = 0.0;
          if (in1 || in2) {
            if (p.synchronous) {
              vx = -omega * x.y;
              vy = omega * x.x;
            } else {
              const Vec3 c = in1 ? c1 : c2;
              vx = -omega * c.y;
              vy = omega * c.x;
            }
          }
          g.u(f_rho, i, j, k) = rho;
          g.u(f_sx, i, j, k) = rho * vx;
          g.u(f_sy, i, j, k) = rho * vy;
          g.u(f_sz, i, j, k) = 0.0;
          g.u(f_egas, i, j, k) =
              pres / (gamma_gas - 1.0) + 0.5 * rho * (vx * vx + vy * vy);
        }
      }
    }
  });
}

}  // namespace octo::init
