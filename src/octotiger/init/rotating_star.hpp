#pragma once

/// \file rotating_star.hpp
/// The paper's benchmark problem: "a single rotating star with gravity and
/// hydro solvers enabled" (§6.2). The star is an n = 1 polytrope — the one
/// Lane-Emden index with a closed-form solution —
///   rho(r) = rho_c sin(xi)/xi,  xi = pi r / R,   P = K rho^2,
///   K = 2 G R^2 / pi^2  (hydrostatic equilibrium),
/// in rigid rotation omega about the z axis, embedded in a floor-density
/// ambient medium.

#include "octotiger/octree.hpp"
#include "octotiger/options.hpp"

namespace octo::init {

/// Density of the n=1 polytrope at radius \p r (floor outside the star).
double polytrope_density(double r, double radius, double rho_c);

/// Pressure of the polytrope at density \p rho: P = K rho^2.
double polytrope_pressure(double rho, double radius);

/// Total mass of the analytic model: M = 4 rho_c R^3 / pi.
double polytrope_mass(double radius, double rho_c);

/// Fill every leaf of \p tree with the rotating-star initial condition.
void rotating_star(Octree& tree, const Options& opt);

}  // namespace octo::init
