#include "octotiger/init/rotating_star.hpp"

#include <cmath>
#include <numbers>

#include "octotiger/hydro/eos.hpp"

namespace octo::init {

namespace {
constexpr double pi = std::numbers::pi;
}

double polytrope_density(double r, double radius, double rho_c) {
  if (r >= radius) {
    return rho_floor;
  }
  if (r < 1e-12) {
    return rho_c;
  }
  const double xi = pi * r / radius;
  return std::max(rho_c * std::sin(xi) / xi, rho_floor);
}

double polytrope_pressure(double rho, double radius) {
  // n = 1 Lane-Emden: alpha = R/pi = sqrt(K / (2 pi G))
  //   => K = 2 G R^2 / pi^2,   P = K rho^2.
  const double k = 2.0 * G_newton * radius * radius / (pi * pi);
  return std::max(k * rho * rho, p_floor);
}

double polytrope_mass(double radius, double rho_c) {
  // M = int 4 pi r^2 rho dr = 4 rho_c R^3 / pi.
  return 4.0 * rho_c * radius * radius * radius / pi;
}

void rotating_star(Octree& tree, const Options& opt) {
  tree.for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const Vec3 p = g.cell_center(i, j, k);
          const double r = p.norm();
          const double rho =
              polytrope_density(r, opt.star_radius, opt.star_rho_c);
          const double pres = polytrope_pressure(rho, opt.star_radius);
          // Rigid rotation about z: v = omega x r (only inside the star;
          // the ambient stays at rest).
          const bool inside = r < opt.star_radius;
          const double vx = inside ? -opt.star_omega * p.y : 0.0;
          const double vy = inside ? opt.star_omega * p.x : 0.0;
          g.u(f_rho, i, j, k) = rho;
          g.u(f_sx, i, j, k) = rho * vx;
          g.u(f_sy, i, j, k) = rho * vy;
          g.u(f_sz, i, j, k) = 0.0;
          g.u(f_egas, i, j, k) =
              pres / (gamma_gas - 1.0) + 0.5 * rho * (vx * vx + vy * vy);
        }
      }
    }
  });
}

}  // namespace octo::init
