#pragma once

/// \file grid.hpp
/// One sub-grid: the 8x8x8 block of cells (plus ghost layers) every octree
/// leaf carries. Fields live in minikokkos Views so both kernel flavours
/// (legacy loops and Kokkos parallel dispatch) operate on the same storage.

#include <array>
#include <cmath>

#include "minikokkos/view.hpp"
#include "octotiger/defs.hpp"

namespace octo {

/// A 3-vector of doubles (cell-center coordinates etc.).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator*(double s, Vec3 v) {
    return {s * v.x, s * v.y, s * v.z};
  }
  [[nodiscard]] double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

/// Conserved state of one cell.
struct Cons {
  double rho = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  double sz = 0.0;
  double egas = 0.0;

  template <typename Ar>
  void serialize(Ar& ar) {
    ar& rho& sx& sy& sz& egas;
  }
};

/// The per-leaf computational block.
///
/// Layout: U(field, i, j, k) on the *extended* index space
/// [0, NXE)^3; interior cells are [GHOST, GHOST+NX). Gravity results
/// (potential and acceleration) live on the interior only.
class SubGrid {
 public:
  SubGrid() = default;

  /// \p origin is the coordinate of the low corner of the *interior*
  /// region; \p dx the cell width.
  SubGrid(Vec3 origin, double dx)
      : origin_(origin),
        dx_(dx),
        u_("U", NF, NXE, NXE, NXE),
        u0_("U0", NF, NX, NX, NX),
        rhs_("rhs", NF, NX, NX, NX),
        phi_("phi", NX, NX, NX),
        g_("g", 3, NX, NX, NX) {}

  [[nodiscard]] bool allocated() const { return u_.allocated(); }
  [[nodiscard]] double dx() const noexcept { return dx_; }
  [[nodiscard]] Vec3 origin() const noexcept { return origin_; }

  /// Conserved field on the extended grid (ghosts included), extended
  /// indices in [0, NXE).
  [[nodiscard]] double& ue(std::size_t f, std::size_t i, std::size_t j,
                           std::size_t k) const {
    return u_(f, i, j, k);
  }

  /// Conserved field at an interior cell, indices in [0, NX).
  [[nodiscard]] double& u(std::size_t f, std::size_t i, std::size_t j,
                          std::size_t k) const {
    return u_(f, i + GHOST, j + GHOST, k + GHOST);
  }

  /// Gravitational potential / acceleration at an interior cell.
  [[nodiscard]] double& phi(std::size_t i, std::size_t j,
                            std::size_t k) const {
    return phi_(i, j, k);
  }
  [[nodiscard]] double& g(std::size_t axis, std::size_t i, std::size_t j,
                          std::size_t k) const {
    return g_(axis, i, j, k);
  }

  /// Hydro RHS (flux divergence + sources) at an interior cell; written by
  /// the hydro kernel, consumed by the Runge-Kutta update.
  [[nodiscard]] double& rhs(std::size_t f, std::size_t i, std::size_t j,
                            std::size_t k) const {
    return rhs_(f, i, j, k);
  }

  /// Step-start snapshot of the interior state (for the RK2 combination).
  [[nodiscard]] double& u0(std::size_t f, std::size_t i, std::size_t j,
                           std::size_t k) const {
    return u0_(f, i, j, k);
  }

  /// Snapshot interior state into u0.
  void save_state() const {
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            u0_(f, i, j, k) = u(f, i, j, k);
          }
        }
      }
    }
  }

  /// Raw pointer to interior cell (0,0,0) of field \p f, for hot kernels:
  /// element (i,j,k) lives at ptr[i*stride_i + j*stride_j + k].
  [[nodiscard]] const double* interior_ptr(std::size_t f) const {
    return &u_(f, GHOST, GHOST, GHOST);
  }
  static constexpr std::size_t stride_i = NXE * NXE;
  static constexpr std::size_t stride_j = NXE;

  /// Raw pointers for the flat-index SIMD kernels (hydro/simd_kernels.hpp,
  /// gravity/solver.cpp). Extended element (ei,ej,ek) of field \p f lives
  /// at extended_ptr(f)[ei*stride_i + ej*stride_j + ek]; interior-shaped
  /// arrays use rhs_stride_i/j. View storage comes from plain new[] with
  /// no vector-width alignment guarantee, so SIMD access through these
  /// pointers must use the load_unaligned/store_unaligned pair
  /// (rveval::simd's aligned load/store assert otherwise).
  [[nodiscard]] const double* extended_ptr(std::size_t f) const {
    return &u_(f, 0, 0, 0);
  }
  [[nodiscard]] double* rhs_ptr(std::size_t f) const {
    return &rhs_(f, 0, 0, 0);
  }
  [[nodiscard]] double* phi_ptr() const { return &phi_(0, 0, 0); }
  [[nodiscard]] double* g_ptr(std::size_t axis) const {
    return &g_(axis, 0, 0, 0);
  }
  static constexpr std::size_t rhs_stride_i = NX * NX;
  static constexpr std::size_t rhs_stride_j = NX;

  /// Underlying views (for the Kokkos kernel flavours).
  [[nodiscard]] const mkk::View<double, 4>& field_view() const { return u_; }
  [[nodiscard]] const mkk::View<double, 4>& rhs_view() const { return rhs_; }
  [[nodiscard]] const mkk::View<double, 3>& phi_view() const { return phi_; }
  [[nodiscard]] const mkk::View<double, 4>& g_view() const { return g_; }

  /// Center coordinate of interior cell (i, j, k).
  [[nodiscard]] Vec3 cell_center(std::size_t i, std::size_t j,
                                 std::size_t k) const {
    return {origin_.x + (static_cast<double>(i) + 0.5) * dx_,
            origin_.y + (static_cast<double>(j) + 0.5) * dx_,
            origin_.z + (static_cast<double>(k) + 0.5) * dx_};
  }

  [[nodiscard]] double cell_volume() const { return dx_ * dx_ * dx_; }

  /// Cell mass at an interior cell.
  [[nodiscard]] double cell_mass(std::size_t i, std::size_t j,
                                 std::size_t k) const {
    return u(f_rho, i, j, k) * cell_volume();
  }

  /// Conserved totals over the interior (for conservation property tests).
  [[nodiscard]] Cons totals() const {
    Cons t;
    const double vol = cell_volume();
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          t.rho += u(f_rho, i, j, k) * vol;
          t.sx += u(f_sx, i, j, k) * vol;
          t.sy += u(f_sy, i, j, k) * vol;
          t.sz += u(f_sz, i, j, k) * vol;
          t.egas += u(f_egas, i, j, k) * vol;
        }
      }
    }
    return t;
  }

 private:
  Vec3 origin_{};
  double dx_ = 0.0;
  mkk::View<double, 4> u_;
  mkk::View<double, 4> u0_;
  mkk::View<double, 4> rhs_;
  mkk::View<double, 3> phi_;
  mkk::View<double, 4> g_;
};

}  // namespace octo
