#pragma once

/// \file device_placement.hpp
/// Helpers for the modelled device placement of the Octo-Tiger kernels
/// (hydro_host_kernel_type=KOKKOS_DEVICE / KOKKOS_DEVICE_REPLAY).
///
/// Placement shape per sub-grid, mirroring Octo-Tiger's CUDA work
/// aggregation: stage the inputs onto a device stream (H2D), launch the
/// kernel, stage the outputs back (D2H), fence the stream. Sub-grids map
/// to streams by identity, so sibling leaves overlap on the modelled
/// device timeline while each leaf's own ops stay FIFO.

#include <cstdint>

#include "minikokkos/device.hpp"

namespace octo {

/// Stable stream assignment for a sub-grid (or any per-task key).
inline unsigned device_stream_for(const void* key) {
  auto& dev = mkk::device::Device::instance();
  const auto bits = reinterpret_cast<std::uintptr_t>(key);
  // Drop alignment zeros so consecutive allocations spread over streams.
  return static_cast<unsigned>((bits >> 6) % dev.num_streams());
}

/// Enqueue a model-only staging transfer: the data is physically
/// host-resident (DESIGN.md §9 modelled-placement simplification), so the
/// body is empty — only the priced link time, energy and counters move.
inline void device_stage_copy(unsigned stream, const char* name, double bytes,
                              bool h2d) {
  mkk::device::LaunchSpec spec;
  spec.name = mhpx::apex::trace::intern(name);
  spec.kind = h2d ? mkk::device::OpRecord::Kind::copy_h2d
                  : mkk::device::OpRecord::Kind::copy_d2h;
  spec.bytes = bytes;
  mkk::device::Device::instance().enqueue(stream, std::move(spec), {});
}

}  // namespace octo
