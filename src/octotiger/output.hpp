#pragma once

/// \file output.hpp
/// Field output for analysis/plotting — the miniapp's analogue of
/// Octo-Tiger's silo output: CSV slices through the midplane and radial
/// profiles (the natural views of a rotating star / binary).

#include <string>

#include "octotiger/octree.hpp"

namespace octo {

/// Write a CSV slice of the z ~ 0 midplane sampled on a uniform
/// resolution x resolution grid: columns x, y, rho, vx, vy, phi.
void write_midplane_slice(const Octree& tree, const std::string& path,
                          std::size_t resolution = 64);

/// Write a CSV radial profile (spherical averages about the origin):
/// columns r, rho_avg, rho_max, p_implied. \p bins radial bins to the
/// domain edge.
void write_radial_profile(const Octree& tree, const std::string& path,
                          std::size_t bins = 48);

}  // namespace octo
