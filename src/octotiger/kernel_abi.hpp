#pragma once

/// \file kernel_abi.hpp
/// Maps a host-kernel flavour (--xxx_host_kernel_type) plus the requested
/// simd ABI (--simd_abi) to the ABI the kernel actually executes. Shared by
/// the hydro and gravity kernel dispatchers so both families follow the
/// same rule.

#include "core/simd/abi.hpp"
#include "minikokkos/spaces.hpp"

namespace octo {

/// The ABI a kernel flavour actually runs: legacy is the historical scalar
/// pure-HPX kernel, and the modelled device executes one scalar lane per
/// modelled GPU thread; only the host Kokkos flavours vectorise.
inline rveval::simd::AbiKind kernel_abi(mkk::KernelType kind,
                                        rveval::simd::AbiKind requested) {
  switch (kind) {
    case mkk::KernelType::legacy:
    case mkk::KernelType::kokkos_device:
    case mkk::KernelType::kokkos_device_replay:
      return rveval::simd::AbiKind::scalar;
    case mkk::KernelType::kokkos_serial:
    case mkk::KernelType::kokkos_hpx:
      return requested;
  }
  return rveval::simd::AbiKind::scalar;
}

}  // namespace octo
