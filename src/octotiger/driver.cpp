#include "octotiger/driver.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "minihpx/futures/future.hpp"
#include "minihpx/runtime.hpp"
#include "octotiger/gravity/solver.hpp"
#include "octotiger/hydro/kernels.hpp"
#include "octotiger/scenario/scenario.hpp"

namespace octo {

// Mesh policy and initial condition come from the scenario registry —
// the single source both this driver and the distributed one build from.
Simulation::Simulation(Options opt)
    : opt_(std::move(opt)), tree_(opt_.max_level, scenario::refinement(opt_)) {
  scenario::initialize(tree_, opt_);
  step_telemetry_ = std::make_unique<StepTelemetry>();
  step_telemetry_->block.attach("/octotiger/step", step_telemetry_->hist,
                                "driver wall time per time step");
}

void Simulation::mark(const std::string& phase) {
  trace_phases_.begin(phase);
  if (phase_marker_) {
    phase_marker_(phase);
  }
}

void Simulation::for_each_leaf_task(
    const std::function<void(TreeNode&)>& f) {
  auto* sched = mhpx::detail::ambient_scheduler();
  if (sched == nullptr) {
    // No runtime (plain unit tests): run inline.
    for (TreeNode* leaf : tree_.leaves()) {
      f(*leaf);
    }
    return;
  }
  // One task per sub-grid — the Octo-Tiger execution model.
  std::vector<mhpx::future<void>> futs;
  futs.reserve(tree_.leaf_count());
  for (TreeNode* leaf : tree_.leaves()) {
    futs.push_back(mhpx::async([&f, leaf] { f(*leaf); }));
  }
  for (auto& fut : mhpx::when_all(std::move(futs)).get()) {
    fut.get();
  }
  // A future resolves inside its task, slightly before the task's fiber
  // retires (and fires the instrumentation finish hook). Wait for full
  // quiescence so trace records cannot smear into the next phase.
  if (!mhpx::threads::Scheduler::inside_task()) {
    sched->wait_idle();
  }
}

double Simulation::compute_dt() const {
  double dt = std::numeric_limits<double>::max();
  for (const TreeNode* leaf : tree_.leaves()) {
    const double s = hydro::max_signal_speed(leaf->grid, opt_.simd_abi);
    if (s > 0.0) {
      dt = std::min(dt, opt_.cfl * leaf->grid.dx() / s);
    }
  }
  return dt;
}

void Simulation::solve_gravity() {
  mark("gravity.moments");
  gravity::compute_moments(tree_.root());
  mark("gravity.kernels");
  const TreeNode& root = tree_.root();
  for_each_leaf_task([&](TreeNode& leaf) {
    gravity::solve_leaf(root, leaf, opt_.theta, opt_.multipole_kernel,
                        opt_.monopole_kernel, opt_.simd_abi);
  });
}

void Simulation::hydro_stage(double dt, bool second_stage) {
  mark("hydro.exchange");
  for_each_leaf_task([&](TreeNode& leaf) { tree_.fill_ghosts(leaf); });

  mark("hydro.kernels");
  for_each_leaf_task([&](TreeNode& leaf) {
    hydro::compute_rhs(leaf.grid, opt_.hydro_kernel, opt_.simd_abi);
  });

  mark("hydro.update");
  for_each_leaf_task([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t f = 0; f < NF; ++f) {
      for (std::size_t i = 0; i < NX; ++i) {
        for (std::size_t j = 0; j < NX; ++j) {
          for (std::size_t k = 0; k < NX; ++k) {
            if (!second_stage) {
              // u1 = u0 + dt L(u0)
              g.u(f, i, j, k) = g.u0(f, i, j, k) + dt * g.rhs(f, i, j, k);
            } else {
              // u^{n+1} = (u0 + u1 + dt L(u1)) / 2
              g.u(f, i, j, k) = 0.5 * (g.u0(f, i, j, k) + g.u(f, i, j, k) +
                                       dt * g.rhs(f, i, j, k));
            }
          }
        }
      }
    }
    // Keep the state physical after the update.
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          g.u(f_rho, i, j, k) = std::max(g.u(f_rho, i, j, k), rho_floor);
        }
      }
    }
  });
}

double Simulation::step() {
  const std::uint64_t step_from = mhpx::apex::now_ns();
  const double dt = compute_dt();

  for (TreeNode* leaf : tree_.leaves()) {
    leaf->grid.save_state();
  }

  // Gravity once per step; both RK stages use the same acceleration — a
  // documented miniapp simplification (DESIGN.md §6).
  if (opt_.gravity) {
    solve_gravity();
  }

  hydro_stage(dt, /*second_stage=*/false);
  hydro_stage(dt, /*second_stage=*/true);
  trace_phases_.close();

  ++stats_.steps;
  stats_.sim_time += dt;
  stats_.last_dt = dt;
  stats_.cells_processed += tree_.total_cells();
  step_telemetry_->hist.record_ns(mhpx::apex::now_ns() - step_from);
  return dt;
}

void Simulation::run() {
  for (unsigned s = 0; s < opt_.stop_step; ++s) {
    step();
  }
}

std::size_t Simulation::regrid(double rho_threshold) {
  mhpx::apex::trace::ScopedRegion region("phase", "regrid");
  // Refinement criterion from the *current* solution: split a node when
  // any probe of its region sees density above the threshold. The probe
  // lattice must be dense enough that a compact feature cannot slip
  // between probes: 5 points per axis resolves anything wider than a
  // quarter of the node (a 3-point lattice coarsened away off-centre
  // binary lobes and cost ~15% of the total mass in one regrid).
  const Octree& old = tree_;
  auto pred = [&old, rho_threshold](const TreeNode& node) {
    const Vec3 lo = node.low();
    const double w = node.width();
    const double eps = 0.05 * w;
    const double probes[] = {eps, 0.25 * w, 0.5 * w, 0.75 * w, w - eps};
    for (const double fx : probes) {
      for (const double fy : probes) {
        for (const double fz : probes) {
          const Vec3 p{lo.x + fx, lo.y + fy, lo.z + fz};
          if (old.sample(f_rho, p) > rho_threshold) {
            return true;
          }
        }
      }
    }
    return false;
  };

  Octree next(opt_.max_level, pred);
  // Resample the conserved state onto the new mesh (piecewise constant —
  // same operator as the ghost fill).
  next.for_each_leaf([&](TreeNode& leaf) {
    SubGrid& g = leaf.grid;
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const Vec3 p = g.cell_center(i, j, k);
          for (std::size_t f = 0; f < NF; ++f) {
            g.u(f, i, j, k) = old.sample(f, p);
          }
        }
      }
    }
  });
  tree_ = std::move(next);
  return tree_.leaf_count();
}

Cons Simulation::totals() const {
  Cons t;
  for (const TreeNode* leaf : tree_.leaves()) {
    const Cons l = leaf->grid.totals();
    t.rho += l.rho;
    t.sx += l.sx;
    t.sy += l.sy;
    t.sz += l.sz;
    t.egas += l.egas;
  }
  return t;
}

}  // namespace octo
