#pragma once

/// \file options.hpp
/// Run configuration: the analogue of Octo-Tiger's config file plus command
/// line (paper Listings 2-3: --config_file=rotating_star.ini --max_level=4
/// --stop_step=5 --theta=0.5 --xxx_host_kernel_type=KOKKOS ...).

#include <cstddef>
#include <string>
#include <vector>

#include "core/simd/abi.hpp"
#include "minikokkos/spaces.hpp"

namespace octo {

struct Options {
  /// Which initial model to evolve.
  enum class Problem { rotating_star, binary_star };
  Problem problem = Problem::rotating_star;

  /// Registered scenario driving this run (scenario/scenario.hpp): set by
  /// --scenario=/--problem= via scenario::apply, which also stamps the
  /// scenario's problem family and parameter defaults. Empty = inferred
  /// from `problem` (plain rotating_star / binary_merger).
  std::string scenario;

  // --- mesh ---
  unsigned max_level = 3;      ///< --max_level (paper runs use 4)
  double refine_radius = 0.45; ///< refine nodes within this radius of origin

  // --- run control ---
  unsigned stop_step = 5;  ///< --stop_step (paper: 5 time steps)
  double cfl = 0.4;
  double theta = 0.5;      ///< FMM opening criterion, --theta=0.5
  bool gravity = true;     ///< disable for pure-hydro validation problems

  // --- star model ([star] section of rotating_star.ini) ---
  double star_radius = 0.35;
  double star_rho_c = 1.0;
  double star_omega = 0.2;  ///< rigid rotation rate around z

  // --- binary model ([binary] section; problem = binary_star) ---
  double binary_separation = 0.8;
  double binary_radius1 = 0.22;
  double binary_radius2 = 0.18;
  double binary_rho_c1 = 1.0;
  double binary_rho_c2 = 0.6;

  // --- kernels (--xxx_host_kernel_type) ---
  mkk::KernelType hydro_kernel = mkk::KernelType::kokkos_serial;
  mkk::KernelType multipole_kernel = mkk::KernelType::kokkos_serial;
  mkk::KernelType monopole_kernel = mkk::KernelType::kokkos_serial;

  /// SIMD lane width of the host Kokkos kernels (--simd_abi=SCALAR/SSE2/
  /// AVX2/NATIVE). NATIVE resolves at runtime to the widest backend the
  /// build and CPU support; results are bit-identical at every width
  /// (metamorphic gates enforce this), so the ABI is purely a speed knob —
  /// the knob the paper's vectorless U74-MC is missing.
  rveval::simd::AbiKind simd_abi = rveval::simd::AbiKind::native;

  // --- runtime (--hpx:threads / --hpx:localities analogues) ---
  unsigned threads = 4;
  unsigned localities = 1;

  /// Parse an INI-style config file ([sim]/[star] sections); throws
  /// std::runtime_error with a line diagnostic on malformed input.
  void load_ini(const std::string& path);

  /// Parse --key=value command-line arguments over the current values.
  /// Recognised keys mirror the paper's listings; unknown keys throw.
  void parse_cli(const std::vector<std::string>& args);

  /// Parse a kernel-type string (KOKKOS, KOKKOS_HPX, LEGACY).
  static mkk::KernelType parse_kernel_type(const std::string& value);

  /// One-line summary for logs.
  [[nodiscard]] std::string summary() const;

  /// Options travel inside component-creation parcels for distributed runs.
  template <typename Ar>
  void serialize(Ar& ar) {
    ar& problem& max_level& refine_radius& stop_step& cfl& theta& gravity&
        star_radius& star_rho_c& star_omega& binary_separation&
        binary_radius1& binary_radius2& binary_rho_c1& binary_rho_c2&
        hydro_kernel& multipole_kernel& monopole_kernel& simd_abi& threads&
        localities& scenario;
  }
};

}  // namespace octo
