#include "octotiger/diagnostics.hpp"

#include "octotiger/hydro/eos.hpp"

namespace octo {

Diagnostics compute_diagnostics(const Octree& tree) {
  Diagnostics d;
  for (const TreeNode* leaf : tree.leaves()) {
    const SubGrid& g = leaf->grid;
    const double vol = g.cell_volume();
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const double rho = g.u(f_rho, i, j, k);
          const double sx = g.u(f_sx, i, j, k);
          const double sy = g.u(f_sy, i, j, k);
          const double sz = g.u(f_sz, i, j, k);
          const double egas = g.u(f_egas, i, j, k);
          const Vec3 p = g.cell_center(i, j, k);

          d.mass += rho * vol;
          d.momentum.x += sx * vol;
          d.momentum.y += sy * vol;
          d.momentum.z += sz * vol;
          d.angular_momentum_z += (p.x * sy - p.y * sx) * vol;

          const double kin =
              0.5 * (sx * sx + sy * sy + sz * sz) / std::max(rho, rho_floor);
          d.kinetic_energy += kin * vol;
          d.internal_energy += std::max(egas - kin, 0.0) * vol;
          d.potential_energy += 0.5 * rho * g.phi(i, j, k) * vol;

          if (rho > d.rho_max) {
            d.rho_max = rho;
            d.rho_max_location = p;
          }
        }
      }
    }
  }
  return d;
}

}  // namespace octo
