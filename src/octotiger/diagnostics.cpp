#include "octotiger/diagnostics.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "octotiger/hydro/eos.hpp"

namespace octo {

Diagnostics compute_diagnostics(const Octree& tree) {
  Diagnostics d;
  for (const TreeNode* leaf : tree.leaves()) {
    const SubGrid& g = leaf->grid;
    const double vol = g.cell_volume();
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const double rho = g.u(f_rho, i, j, k);
          const double sx = g.u(f_sx, i, j, k);
          const double sy = g.u(f_sy, i, j, k);
          const double sz = g.u(f_sz, i, j, k);
          const double egas = g.u(f_egas, i, j, k);
          const Vec3 p = g.cell_center(i, j, k);

          d.mass += rho * vol;
          d.momentum.x += sx * vol;
          d.momentum.y += sy * vol;
          d.momentum.z += sz * vol;
          d.angular_momentum_z += (p.x * sy - p.y * sx) * vol;

          const double kin =
              0.5 * (sx * sx + sy * sy + sz * sz) / std::max(rho, rho_floor);
          d.kinetic_energy += kin * vol;
          d.internal_energy += std::max(egas - kin, 0.0) * vol;
          d.potential_energy += 0.5 * rho * g.phi(i, j, k) * vol;

          if (rho > d.rho_max) {
            d.rho_max = rho;
            d.rho_max_location = p;
          }
        }
      }
    }
  }
  return d;
}

Diagnostics compute_diagnostics_rot180(const Octree& tree) {
  struct CellContrib {
    double key_z, key_x, key_y;  // rotation-invariant canonical coordinate
    double x, y;                 // actual coordinate (deterministic order)
    double mass, px, py, pz, lz, kin, internal, pot, rho;
  };
  std::vector<CellContrib> cells;
  cells.reserve(tree.leaf_count() * CELLS_PER_GRID);

  for (const TreeNode* leaf : tree.leaves()) {
    const SubGrid& g = leaf->grid;
    const double vol = g.cell_volume();
    for (std::size_t i = 0; i < NX; ++i) {
      for (std::size_t j = 0; j < NX; ++j) {
        for (std::size_t k = 0; k < NX; ++k) {
          const double rho = g.u(f_rho, i, j, k);
          const double sx = g.u(f_sx, i, j, k);
          const double sy = g.u(f_sy, i, j, k);
          const double sz = g.u(f_sz, i, j, k);
          const double egas = g.u(f_egas, i, j, k);
          const Vec3 p = g.cell_center(i, j, k);

          CellContrib c;
          // Canonical representative of the orbit {(x,y), (-x,-y)}: the
          // lexicographically larger pair. Cell centres are never on the
          // axis (half-integer multiples of dx), so the orbit has two
          // distinct members.
          if (std::make_pair(p.x, p.y) > std::make_pair(-p.x, -p.y)) {
            c.key_x = p.x;
            c.key_y = p.y;
          } else {
            c.key_x = -p.x;
            c.key_y = -p.y;
          }
          c.key_z = p.z;
          c.x = p.x;
          c.y = p.y;
          c.mass = rho * vol;
          c.px = sx * vol;
          c.py = sy * vol;
          c.pz = sz * vol;
          c.lz = (p.x * sy - p.y * sx) * vol;
          const double kin =
              0.5 * (sx * sx + sy * sy + sz * sz) / std::max(rho, rho_floor);
          c.kin = kin * vol;
          c.internal = std::max(egas - kin, 0.0) * vol;
          c.pot = 0.5 * rho * g.phi(i, j, k) * vol;
          c.rho = rho;
          cells.push_back(c);
        }
      }
    }
  }

  std::sort(cells.begin(), cells.end(),
            [](const CellContrib& a, const CellContrib& b) {
              return std::tie(a.key_z, a.key_x, a.key_y, a.x, a.y) <
                     std::tie(b.key_z, b.key_x, b.key_y, b.x, b.y);
            });

  Diagnostics d;
  std::size_t i = 0;
  while (i < cells.size()) {
    // Group = all cells sharing a canonical key: the cell and its rotated
    // partner when the mesh holds both, a singleton where the rotated
    // region is at a different refinement level. Pair-summing inside the
    // group relies only on commutativity, so the group sum is exactly
    // covariant whichever member the rotated run visits first.
    std::size_t j = i + 1;
    while (j < cells.size() && cells[j].key_z == cells[i].key_z &&
           cells[j].key_x == cells[i].key_x &&
           cells[j].key_y == cells[i].key_y) {
      ++j;
    }
    CellContrib group = cells[i];
    for (std::size_t m = i + 1; m < j; ++m) {
      group.mass += cells[m].mass;
      group.px += cells[m].px;
      group.py += cells[m].py;
      group.pz += cells[m].pz;
      group.lz += cells[m].lz;
      group.kin += cells[m].kin;
      group.internal += cells[m].internal;
      group.pot += cells[m].pot;
      group.rho = std::max(group.rho, cells[m].rho);
    }
    d.mass += group.mass;
    d.momentum.x += group.px;
    d.momentum.y += group.py;
    d.momentum.z += group.pz;
    d.angular_momentum_z += group.lz;
    d.kinetic_energy += group.kin;
    d.internal_energy += group.internal;
    d.potential_energy += group.pot;
    if (group.rho > d.rho_max) {
      d.rho_max = group.rho;
      d.rho_max_location = Vec3{group.key_x, group.key_y, group.key_z};
    }
    i = j;
  }
  return d;
}

}  // namespace octo
