#pragma once

/// \file defs.hpp
/// Global constants of the Octo-Tiger miniapp.
///
/// Octo-Tiger simulates self-gravitating astrophysical fluids on an
/// adaptive octree whose every node carries an 8x8x8 sub-grid (paper §3.3).
/// This miniapp keeps the same structure: 512 cells per sub-grid, five
/// conserved fields (inviscid Euler + total energy), interleaved hydro and
/// FMM gravity solvers, and the three host-kernel families the paper's
/// command lines select (hydro / multipole / monopole).

#include <cstddef>

namespace octo {

/// Cells per sub-grid edge (Octo-Tiger's 8x8x8 sub-grids).
inline constexpr std::size_t NX = 8;
/// Ghost-layer width: linear (minmod) reconstruction needs slopes in the
/// first exterior cell, hence two layers.
inline constexpr std::size_t GHOST = 2;
/// Extended edge including ghosts.
inline constexpr std::size_t NXE = NX + 2 * GHOST;
/// Cells per sub-grid (the paper's "512 cells per sub-grid").
inline constexpr std::size_t CELLS_PER_GRID = NX * NX * NX;

/// Conserved fields.
enum Field : std::size_t {
  f_rho = 0,  ///< mass density
  f_sx = 1,   ///< x momentum density
  f_sy = 2,   ///< y momentum density
  f_sz = 3,   ///< z momentum density
  f_egas = 4, ///< total (gas) energy density
  NF = 5,
};

/// Ideal-gas adiabatic index (monatomic / n=1.5 polytrope convention kept
/// at 5/3, as in Octo-Tiger's default EoS).
inline constexpr double gamma_gas = 5.0 / 3.0;

/// Gravitational constant (code units).
inline constexpr double G_newton = 1.0;

/// Density and pressure floors.
inline constexpr double rho_floor = 1.0e-10;
inline constexpr double p_floor = 1.0e-12;

}  // namespace octo
