#pragma once

/// \file diagnostics.hpp
/// Physical diagnostics over the whole mesh — the analogue of Octo-Tiger's
/// per-step diagnostics output (conserved totals, energies, angular
/// momentum, density extrema). Property tests use these as invariants; the
/// binary-merger example prints them per step.

#include "octotiger/octree.hpp"

namespace octo {

struct Diagnostics {
  double mass = 0.0;
  Vec3 momentum{};
  /// Angular momentum about the z axis through the origin.
  double angular_momentum_z = 0.0;
  double kinetic_energy = 0.0;
  double internal_energy = 0.0;
  /// Gravitational potential energy, 1/2 sum rho phi dV (needs a prior
  /// gravity solve; zero otherwise).
  double potential_energy = 0.0;
  double rho_max = 0.0;
  Vec3 rho_max_location{};
  /// |virial| = |2 E_kin + E_pot| / |E_pot| — ~O(0.1) for a star near
  /// equilibrium, meaningless without gravity.
  [[nodiscard]] double virial_error() const {
    if (potential_energy == 0.0) {
      return 0.0;
    }
    return std::abs(2.0 * kinetic_energy + potential_energy) /
           std::abs(potential_energy);
  }
};

/// Compute all diagnostics in one sweep over the leaves.
Diagnostics compute_diagnostics(const Octree& tree);

/// Diagnostics with a summation order that is *exactly covariant* under a
/// 180° rotation of the domain about the z axis ((x,y,z) -> (-x,-y,z)).
///
/// Per-cell contributions are keyed by the rotation-invariant canonical
/// coordinate (z, lexmax((x,y), (-x,-y))) — exact, because every cell
/// centre is a dyadic rational computed without rounding — then cells
/// sharing a key (a cell and its rotated partner, when both exist) are
/// pair-summed first and the pair sums accumulated in sorted key order.
/// IEEE addition is commutative (not associative), so two runs whose
/// states are images of each other under the rotation produce *bitwise*
/// equal mass/energies/L_z and bitwise negated momenta — the metamorphic
/// oracle for the binary-merger scenario. rho_max_location is reported in
/// canonical coordinates.
Diagnostics compute_diagnostics_rot180(const Octree& tree);

}  // namespace octo
