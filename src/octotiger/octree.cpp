#include "octotiger/octree.hpp"

#include <algorithm>
#include <cmath>

namespace octo {

double TreeNode::distance_to(Vec3 p) const {
  const Vec3 l = low();
  const double w = width();
  const double dx = std::max({l.x - p.x, 0.0, p.x - (l.x + w)});
  const double dy = std::max({l.y - p.y, 0.0, p.y - (l.y + w)});
  const double dz = std::max({l.z - p.z, 0.0, p.z - (l.z + w)});
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

Octree::Octree(unsigned max_level, double refine_radius)
    : Octree(max_level, [refine_radius](const TreeNode& node) {
        return node.distance_to(Vec3{0, 0, 0}) < refine_radius;
      }) {}

Octree::Octree(unsigned max_level, const refine_predicate& refine) {
  root_ = std::make_unique<TreeNode>();
  build(*root_, max_level, refine);
  collect_leaves(*root_);
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    leaves_[i]->leaf_id = i;
  }
}

void Octree::build(TreeNode& node, unsigned max_level,
                   const refine_predicate& refine_pred) {
  const bool refine = node.level < max_level && refine_pred(node);
  if (!refine) {
    const double dx = node.width() / static_cast<double>(NX);
    node.grid = SubGrid(node.low(), dx);
    return;
  }
  for (std::size_t c = 0; c < 8; ++c) {
    auto child = std::make_unique<TreeNode>();
    child->level = node.level + 1;
    child->index = {2 * node.index[0] + ((c >> 0) & 1u),
                    2 * node.index[1] + ((c >> 1) & 1u),
                    2 * node.index[2] + ((c >> 2) & 1u)};
    build(*child, max_level, refine_pred);
    node.children[c] = std::move(child);
  }
}

void Octree::collect_leaves(TreeNode& node) {
  if (node.is_leaf()) {
    leaves_.push_back(&node);
    return;
  }
  for (auto& c : node.children) {
    collect_leaves(*c);
  }
}

const TreeNode& Octree::leaf_containing(Vec3 p) const {
  // Clamp into the domain interior (outflow-style sampling beyond edges).
  const double eps = 1e-12;
  p.x = std::clamp(p.x, -domain_half + eps, domain_half - eps);
  p.y = std::clamp(p.y, -domain_half + eps, domain_half - eps);
  p.z = std::clamp(p.z, -domain_half + eps, domain_half - eps);
  const TreeNode* node = root_.get();
  while (!node->is_leaf()) {
    const Vec3 c = node->center();
    const std::size_t child = (p.x >= c.x ? 1u : 0u) |
                              (p.y >= c.y ? 2u : 0u) |
                              (p.z >= c.z ? 4u : 0u);
    node = node->children[child].get();
  }
  return *node;
}

double Octree::sample(std::size_t field, Vec3 p) const {
  const TreeNode& leaf = leaf_containing(p);
  const SubGrid& grid = leaf.grid;
  const Vec3 o = grid.origin();
  const double dx = grid.dx();
  auto idx = [&](double coord, double org) {
    const auto raw = static_cast<long>(std::floor((coord - org) / dx));
    return static_cast<std::size_t>(
        std::clamp<long>(raw, 0, static_cast<long>(NX) - 1));
  };
  return grid.u(field, idx(p.x, o.x), idx(p.y, o.y), idx(p.z, o.z));
}

void Octree::fill_ghosts(TreeNode& leaf) const {
  SubGrid& grid = leaf.grid;
  const Vec3 o = grid.origin();
  const double dx = grid.dx();
  const auto g = static_cast<long>(GHOST);
  for (long i = -g; i < static_cast<long>(NX) + g; ++i) {
    for (long j = -g; j < static_cast<long>(NX) + g; ++j) {
      for (long k = -g; k < static_cast<long>(NX) + g; ++k) {
        const bool interior = i >= 0 && i < static_cast<long>(NX) &&
                              j >= 0 && j < static_cast<long>(NX) &&
                              k >= 0 && k < static_cast<long>(NX);
        if (interior) {
          continue;
        }
        const Vec3 p{o.x + (static_cast<double>(i) + 0.5) * dx,
                     o.y + (static_cast<double>(j) + 0.5) * dx,
                     o.z + (static_cast<double>(k) + 0.5) * dx};
        for (std::size_t f = 0; f < NF; ++f) {
          grid.ue(f, static_cast<std::size_t>(i + g),
                  static_cast<std::size_t>(j + g),
                  static_cast<std::size_t>(k + g)) = sample(f, p);
        }
      }
    }
  }
}

void Octree::for_each_leaf(const std::function<void(TreeNode&)>& f) {
  for (TreeNode* leaf : leaves_) {
    f(*leaf);
  }
}

}  // namespace octo
